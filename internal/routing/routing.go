// Package routing analyses the dynamics of paths over the LEO network: how
// long a ground-to-ground route stays usable, how often the shortest path
// changes, and what latency variation endpoints observe. This quantifies
// the §5 observation that the infrastructure is "highly dynamic yet
// predictable" for the network-transit case, complementing the
// meetup-server analysis.
package routing

import (
	"fmt"
	"math"

	"repro/internal/netgraph"
	"repro/internal/stats"
)

// PathChange is one routing event on a monitored pair.
type PathChange struct {
	// TimeSec is when the shortest path changed.
	TimeSec float64
	// OldMs and NewMs are the one-way latencies before and after.
	OldMs, NewMs float64
	// HopsChanged counts nodes present in exactly one of the two paths.
	HopsChanged int
}

// PairReport summarises the route dynamics of one ground pair.
type PairReport struct {
	// Changes lists the path-change events in time order.
	Changes []PathChange
	// Latency aggregates the one-way latency samples.
	Latency stats.Summary
	// PathLifetimes collects the durations between path changes.
	PathLifetimes *stats.CDF
	// UnreachableSamples counts instants with no path at all.
	UnreachableSamples int
	// Samples is the number of instants evaluated.
	Samples int
}

// JitterMs returns max-min of the observed latency — the latency swing an
// application sees as the constellation rotates beneath the route.
func (r PairReport) JitterMs() float64 {
	if r.Latency.N() == 0 {
		return 0
	}
	return r.Latency.Max() - r.Latency.Min()
}

// samePath reports whether two paths visit the same node sequence.
func samePath(a, b netgraph.Path) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return true
}

// hopDelta counts nodes in exactly one of the two paths.
func hopDelta(a, b netgraph.Path) int {
	inA := make(map[netgraph.NodeID]bool, len(a.Nodes))
	for _, n := range a.Nodes {
		inA[n] = true
	}
	delta := 0
	for _, n := range b.Nodes {
		if inA[n] {
			delete(inA, n)
		} else {
			delta++
		}
	}
	return delta + len(inA)
}

// MonitorPair samples the shortest path between ground stations gi and gj
// every stepSec over [t0, t0+durationSec] and reports the route dynamics.
func MonitorPair(net *netgraph.Network, gi, gj int, t0, durationSec, stepSec float64) (PairReport, error) {
	if gi == gj {
		return PairReport{}, fmt.Errorf("routing: same endpoint %d", gi)
	}
	if durationSec <= 0 || stepSec <= 0 {
		return PairReport{}, fmt.Errorf("routing: positive duration and step required")
	}
	rep := PairReport{PathLifetimes: stats.NewCDF()}
	var (
		havePath  bool
		current   netgraph.Path
		pathSince float64
		snap      *netgraph.Snapshot
	)
	for t := t0; t <= t0+durationSec; t += stepSec {
		rep.Samples++
		snap = net.AtAfter(snap, t)
		p, err := snap.ShortestPath(net.GroundNode(gi), net.GroundNode(gj))
		if err != nil {
			rep.UnreachableSamples++
			if havePath {
				rep.PathLifetimes.Add(t - pathSince)
				havePath = false
			}
			continue
		}
		rep.Latency.Add(p.OneWayMs)
		if !havePath {
			current = p
			pathSince = t
			havePath = true
			continue
		}
		if !samePath(current, p) {
			rep.Changes = append(rep.Changes, PathChange{
				TimeSec:     t,
				OldMs:       current.OneWayMs,
				NewMs:       p.OneWayMs,
				HopsChanged: hopDelta(current, p),
			})
			rep.PathLifetimes.Add(t - pathSince)
			current = p
			pathSince = t
		}
	}
	if havePath {
		rep.PathLifetimes.Add(t0 + durationSec - pathSince)
	}
	return rep, nil
}

// StabilityVsDistance is one distance bucket of a churn study.
type StabilityVsDistance struct {
	GeodesicKm        float64
	MedianLifetimeSec float64
	Changes           int
	MeanLatencyMs     float64
	JitterMs          float64
}

// CompareWithGeodesic returns the path-stretch of the observed mean latency
// over the straight-line great-circle propagation bound.
func CompareWithGeodesic(rep PairReport, geodesicKm float64) float64 {
	bound := geodesicKm / 299792.458 * 1000
	if bound <= 0 || rep.Latency.N() == 0 {
		return math.Inf(1)
	}
	return rep.Latency.Mean() / bound
}
