package routing

import (
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/netgraph"
)

func testNet(t *testing.T, grounds []geo.LatLon) *netgraph.Network {
	t.Helper()
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 10},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return netgraph.New(c, grounds)
}

func TestMonitorPairBasics(t *testing.T) {
	grounds := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01}, // New York
		{LatDeg: 51.51, LonDeg: -0.13},  // London
	}
	net := testNet(t, grounds)
	rep, err := MonitorPair(net, 0, 1, 0, 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 61 {
		t.Fatalf("Samples = %d", rep.Samples)
	}
	if rep.Latency.N()+rep.UnreachableSamples != rep.Samples {
		t.Fatalf("sample accounting broken: %d + %d != %d",
			rep.Latency.N(), rep.UnreachableSamples, rep.Samples)
	}
	// Transatlantic latency stays within physical bounds.
	geodesic := geo.GreatCircleKm(grounds[0], grounds[1]) / 299792.458 * 1000
	if rep.Latency.N() > 0 && rep.Latency.Min() < geodesic {
		t.Fatalf("latency %v beats the geodesic bound %v", rep.Latency.Min(), geodesic)
	}
	// Changes are time-ordered with consistent latencies.
	prev := -1.0
	for _, ch := range rep.Changes {
		if ch.TimeSec <= prev {
			t.Fatalf("changes out of order at %v", ch.TimeSec)
		}
		prev = ch.TimeSec
		if ch.HopsChanged <= 0 {
			t.Fatalf("change without hop delta: %+v", ch)
		}
		if ch.OldMs <= 0 || ch.NewMs <= 0 {
			t.Fatalf("degenerate change latencies: %+v", ch)
		}
	}
	// Lifetime accounting: one lifetime per change plus the final open
	// period, when the pair stays reachable throughout.
	if rep.UnreachableSamples == 0 && rep.PathLifetimes.N() != len(rep.Changes)+1 {
		t.Fatalf("lifetimes %d, want changes+1 = %d", rep.PathLifetimes.N(), len(rep.Changes)+1)
	}
	// Over 10 minutes the shortest transatlantic path changes at least once
	// (satellites move ~4,500 km in that time).
	if len(rep.Changes) == 0 {
		t.Fatal("no path change in 10 minutes of LEO motion")
	}
	if rep.JitterMs() <= 0 {
		t.Fatal("no latency jitter recorded")
	}
}

func TestMonitorPairValidation(t *testing.T) {
	net := testNet(t, []geo.LatLon{{LatDeg: 0}, {LatDeg: 10}})
	if _, err := MonitorPair(net, 0, 0, 0, 10, 1); err == nil {
		t.Fatal("same endpoints accepted")
	}
	if _, err := MonitorPair(net, 0, 1, 0, 0, 1); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := MonitorPair(net, 0, 1, 0, 10, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestUnreachablePair(t *testing.T) {
	// A polar ground station the 53° shell cannot see.
	grounds := []geo.LatLon{
		{LatDeg: 89.5, LonDeg: 0},
		{LatDeg: 0, LonDeg: 0},
	}
	net := testNet(t, grounds)
	rep, err := MonitorPair(net, 0, 1, 0, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnreachableSamples == 0 {
		t.Skip("pole unexpectedly covered")
	}
	if rep.Latency.N() != rep.Samples-rep.UnreachableSamples {
		t.Fatal("latency samples inconsistent with unreachable count")
	}
}

func TestCompareWithGeodesic(t *testing.T) {
	grounds := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01},
		{LatDeg: 51.51, LonDeg: -0.13},
	}
	net := testNet(t, grounds)
	rep, err := MonitorPair(net, 0, 1, 0, 300, 30)
	if err != nil {
		t.Fatal(err)
	}
	stretch := CompareWithGeodesic(rep, geo.GreatCircleKm(grounds[0], grounds[1]))
	// LEO paths stretch the geodesic but not absurdly (the up/down legs and
	// grid detours dominate at this distance).
	if stretch < 1 || stretch > 4 {
		t.Fatalf("stretch = %v, want [1,4]", stretch)
	}
	if !math.IsInf(CompareWithGeodesic(PairReport{}, 100), 1) {
		t.Fatal("empty report should give +Inf stretch")
	}
}
