package capacity

import (
	"math"
	"testing"

	"repro/internal/compute"
	"repro/internal/constellation"
)

func starlink(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDemandValidate(t *testing.T) {
	if err := (Demand{AdoptionFraction: 0.01, CoresPerThousandUsers: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Demand{AdoptionFraction: 1.5}).Validate(); err == nil {
		t.Fatal("bad adoption accepted")
	}
	if err := (Demand{AdoptionFraction: 0.5, CoresPerThousandUsers: -1}).Validate(); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestCityCores(t *testing.T) {
	d := Demand{AdoptionFraction: 0.01, CoresPerThousandUsers: 2}
	// 1M people × 1% × 2/1000 = 20 cores.
	if got := d.CityCores(1000000); math.Abs(got-20) > 1e-9 {
		t.Fatalf("CityCores = %v", got)
	}
}

func TestBalanceValidation(t *testing.T) {
	c := starlink(t)
	spec := compute.DefaultServerSpec()
	good := Demand{AdoptionFraction: 0.01, CoresPerThousandUsers: 1}
	if _, err := Balance(c, compute.ServerSpec{}, good, 100, 0); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := Balance(c, spec, Demand{AdoptionFraction: 2}, 100, 0); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := Balance(c, spec, good, 0, 0); err == nil {
		t.Fatal("topN=0 accepted")
	}
}

func TestBalanceConservation(t *testing.T) {
	c := starlink(t)
	spec := compute.DefaultServerSpec()
	d := Demand{AdoptionFraction: 0.02, CoresPerThousandUsers: 1}
	rep, err := Balance(c, spec, d, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Allocation never exceeds demand or fleet capacity.
	if rep.TotalAllocatedCores > rep.TotalDemandCores+1e-6 {
		t.Fatalf("allocated %v exceeds demand %v", rep.TotalAllocatedCores, rep.TotalDemandCores)
	}
	fleet := float64(c.Size()) * spec.EffectiveCores()
	if rep.TotalAllocatedCores > fleet+1e-6 {
		t.Fatalf("allocated %v exceeds fleet %v", rep.TotalAllocatedCores, fleet)
	}
	// Per-city: allocation ≤ demand; visible sats consistent with Fig 2
	// scale (tens for mid-latitude cities).
	for _, cb := range rep.Cities {
		if cb.AllocatedCores > cb.DemandCores+1e-6 {
			t.Fatalf("%s over-allocated: %+v", cb.Name, cb)
		}
		if cb.SatisfiedFraction() < 0 || cb.SatisfiedFraction() > 1 {
			t.Fatalf("%s satisfaction out of range", cb.Name)
		}
	}
	if rep.FleetUtilization <= 0 || rep.FleetUtilization > 1 {
		t.Fatalf("utilization = %v", rep.FleetUtilization)
	}
	// The Fig 4 connection: a large fraction of the fleet sees no city.
	idleFrac := float64(rep.IdleSats) / float64(c.Size())
	if idleFrac < 0.3 {
		t.Fatalf("idle fraction = %v, expected > 0.3 with 300 cities", idleFrac)
	}
}

func TestBalanceScalesWithAdoption(t *testing.T) {
	c := starlink(t)
	spec := compute.DefaultServerSpec()
	low, err := Balance(c, spec, Demand{AdoptionFraction: 0.001, CoresPerThousandUsers: 1}, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Balance(c, spec, Demand{AdoptionFraction: 0.2, CoresPerThousandUsers: 1}, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Light demand: everyone satisfied. Heavy demand: metros oversubscribe
	// their footprint (the paper's "one satellite may not offer a large
	// amount of available compute").
	if low.SatisfiedFraction() < 0.999 {
		t.Fatalf("light demand not fully served: %v", low.SatisfiedFraction())
	}
	if high.SatisfiedFraction() >= 0.999 {
		t.Fatalf("heavy demand fully served — model has no scarcity: %v", high.SatisfiedFraction())
	}
	if high.FleetUtilization <= low.FleetUtilization {
		t.Fatal("utilization should grow with adoption")
	}
	worst, ok := high.WorstCity()
	if !ok {
		t.Fatal("no worst city")
	}
	if worst.SatisfiedFraction() >= 1 {
		t.Fatalf("worst city fully satisfied under heavy load: %+v", worst)
	}
}

func TestZeroDemandFullySatisfied(t *testing.T) {
	c := starlink(t)
	rep, err := Balance(c, compute.DefaultServerSpec(), Demand{AdoptionFraction: 0, CoresPerThousandUsers: 1}, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SatisfiedFraction() != 1 || rep.TotalAllocatedCores != 0 {
		t.Fatalf("zero demand mishandled: %+v", rep)
	}
	if _, ok := rep.WorstCity(); !ok {
		t.Fatal("WorstCity should exist")
	}
}

func TestGroundsOf(t *testing.T) {
	if got := len(GroundsOf(123)); got != 123 {
		t.Fatalf("GroundsOf = %d", got)
	}
}
