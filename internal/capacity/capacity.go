// Package capacity balances in-orbit compute supply against terrestrial
// demand: each satellite carries one server's worth of cores, each
// population center demands cores in proportion to its population, and
// satellites serve the cities inside their footprint. The analysis
// quantifies two of the paper's observations at once — "one satellite may
// not offer a large amount of available compute" (metros oversubscribe
// their footprint) and Fig 4/5's idle fleet (most satellites see no
// demand at all).
package capacity

import (
	"fmt"

	"repro/internal/cities"
	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/visibility"
)

// Demand converts population into core demand.
type Demand struct {
	// AdoptionFraction is the share of the population using the service.
	AdoptionFraction float64
	// CoresPerThousandUsers is the concurrent core demand per 1,000 active
	// users (edge inference, game servers, CDN logic).
	CoresPerThousandUsers float64
}

// Validate reports whether the demand model is usable.
func (d Demand) Validate() error {
	if d.AdoptionFraction < 0 || d.AdoptionFraction > 1 {
		return fmt.Errorf("capacity: adoption fraction %v outside [0,1]", d.AdoptionFraction)
	}
	if d.CoresPerThousandUsers < 0 {
		return fmt.Errorf("capacity: negative core demand")
	}
	return nil
}

// CityCores returns the core demand of one city.
func (d Demand) CityCores(population int) float64 {
	return float64(population) * d.AdoptionFraction * d.CoresPerThousandUsers / 1000
}

// CityBalance is one city's supply/demand outcome.
type CityBalance struct {
	// Name of the city.
	Name string
	// DemandCores is the city's concurrent core demand.
	DemandCores float64
	// AllocatedCores is what the visible satellites could allocate to it.
	AllocatedCores float64
	// VisibleSats counts satellites in the city's footprint.
	VisibleSats int
}

// SatisfiedFraction returns allocated/demand (1 when demand is zero).
func (b CityBalance) SatisfiedFraction() float64 {
	if b.DemandCores <= 0 {
		return 1
	}
	f := b.AllocatedCores / b.DemandCores
	if f > 1 {
		return 1
	}
	return f
}

// Report is the fleet-wide balance at one instant.
type Report struct {
	// Cities holds the per-city outcomes (largest first).
	Cities []CityBalance
	// TotalDemandCores and TotalAllocatedCores aggregate over cities.
	TotalDemandCores, TotalAllocatedCores float64
	// IdleSats counts satellites with no demand in their footprint.
	IdleSats int
	// FleetUtilization is allocated cores / fleet cores.
	FleetUtilization float64
}

// SatisfiedFraction returns the demand-weighted satisfaction.
func (r Report) SatisfiedFraction() float64 {
	if r.TotalDemandCores <= 0 {
		return 1
	}
	f := r.TotalAllocatedCores / r.TotalDemandCores
	if f > 1 {
		return 1
	}
	return f
}

// Balance allocates the fleet's cores to the top-n cities at a snapshot.
// Allocation is proportional water-filling: in each round every satellite
// splits its remaining capacity among its unsatisfied visible cities in
// proportion to their residual demand; a few rounds converge to within a
// fraction of a core.
func Balance(c *constellation.Constellation, spec compute.ServerSpec, d Demand, topN int, tSec float64) (Report, error) {
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	if err := d.Validate(); err != nil {
		return Report{}, err
	}
	if topN <= 0 || topN > cities.MaxCities {
		return Report{}, fmt.Errorf("capacity: topN %d out of range", topN)
	}
	top := cities.TopN(topN)
	grounds := cities.ECEF(top)
	obs := visibility.NewObserver(c)
	snap := c.Snapshot(tSec)

	// visibleCities[sat] lists city indices in the satellite's footprint.
	visibleCities := make([][]int, c.Size())
	visCount := make([]int, len(top))
	for sat, pos := range snap {
		for ci, g := range grounds {
			if obs.Visible(g, sat, pos) {
				visibleCities[sat] = append(visibleCities[sat], ci)
				visCount[ci]++
			}
		}
	}

	residual := make([]float64, len(top))
	allocated := make([]float64, len(top))
	var totalDemand float64
	for i, city := range top {
		residual[i] = d.CityCores(city.Population)
		totalDemand += residual[i]
	}
	capLeft := make([]float64, c.Size())
	for sat := range capLeft {
		capLeft[sat] = spec.EffectiveCores()
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		moved := false
		for sat := range capLeft {
			if capLeft[sat] <= 1e-9 || len(visibleCities[sat]) == 0 {
				continue
			}
			var want float64
			for _, ci := range visibleCities[sat] {
				want += residual[ci]
			}
			if want <= 1e-9 {
				continue
			}
			give := capLeft[sat]
			if give > want {
				give = want
			}
			for _, ci := range visibleCities[sat] {
				share := give * residual[ci] / want
				if share <= 0 {
					continue
				}
				allocated[ci] += share
				residual[ci] -= share
				capLeft[sat] -= share
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	rep := Report{TotalDemandCores: totalDemand}
	for i, city := range top {
		rep.Cities = append(rep.Cities, CityBalance{
			Name:           city.Name,
			DemandCores:    allocated[i] + residual[i],
			AllocatedCores: allocated[i],
			VisibleSats:    visCount[i],
		})
		rep.TotalAllocatedCores += allocated[i]
	}
	fleetCores := float64(c.Size()) * spec.EffectiveCores()
	if fleetCores > 0 {
		rep.FleetUtilization = rep.TotalAllocatedCores / fleetCores
	}
	for sat := range visibleCities {
		if len(visibleCities[sat]) == 0 {
			rep.IdleSats++
		}
	}
	return rep, nil
}

// worstCity returns the city with the lowest satisfaction (ties: largest
// demand). Exposed for diagnostics in examples and experiments.
func (r Report) WorstCity() (CityBalance, bool) {
	if len(r.Cities) == 0 {
		return CityBalance{}, false
	}
	worst := r.Cities[0]
	for _, cb := range r.Cities[1:] {
		wf, cf := worst.SatisfiedFraction(), cb.SatisfiedFraction()
		if cf < wf || (cf == wf && cb.DemandCores > worst.DemandCores) {
			worst = cb
		}
	}
	return worst, true
}

// GroundsOf exposes the evaluated city set for callers that want to join
// results against coordinates.
func GroundsOf(topN int) []geo.LatLon {
	return cities.Locations(cities.TopN(topN))
}
