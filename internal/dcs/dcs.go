// Package dcs embeds the terrestrial cloud data-center regions used as the
// paper's Fig 3 baseline. The list approximates Microsoft Azure's 2020
// public region map — the provider the paper picks because it "has more
// global regions than any other cloud provider" — with each region placed at
// its host metro. Fig 3 depends only on nearest-region distances, which are
// robust to city-level coordinate approximation (DESIGN.md §5.2).
package dcs

import (
	"math"

	"repro/internal/geo"
)

// Region is one cloud data-center region.
type Region struct {
	// Name is the provider's region name ("South Africa North", ...).
	Name string
	// Metro is the host metropolitan area.
	Metro string
	// Loc is the region's approximate location.
	Loc geo.LatLon
}

// Regions returns the embedded region list (fresh copy).
func Regions() []Region {
	out := make([]Region, len(regions))
	copy(out, regions)
	return out
}

// ByName returns the region with the given name and whether it exists.
func ByName(name string) (Region, bool) {
	for _, r := range regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Nearest returns the region closest (great-circle) to the given point.
func Nearest(p geo.LatLon) Region {
	best := regions[0]
	bestD := math.Inf(1)
	for _, r := range regions {
		if d := geo.GreatCircleKm(p, r.Loc); d < bestD {
			bestD = d
			best = r
		}
	}
	return best
}

// MinimaxRegion returns the region minimising the maximum great-circle
// distance to any of the given user locations — the best possible
// terrestrial meetup-server placement in the paper's Fig 3 sense — along
// with that maximum distance in km.
func MinimaxRegion(users []geo.LatLon) (Region, float64) {
	best := regions[0]
	bestMax := math.Inf(1)
	for _, r := range regions {
		worst := 0.0
		for _, u := range users {
			if d := geo.GreatCircleKm(u, r.Loc); d > worst {
				worst = d
			}
		}
		if worst < bestMax {
			bestMax = worst
			best = r
		}
	}
	return best, bestMax
}

// regions approximates the Azure 2020 region map. Coordinates are the host
// metros'.
var regions = []Region{
	{"East US", "Virginia", geo.LatLon{LatDeg: 37.37, LonDeg: -79.82}},
	{"East US 2", "Virginia", geo.LatLon{LatDeg: 36.85, LonDeg: -78.39}},
	{"Central US", "Iowa", geo.LatLon{LatDeg: 41.59, LonDeg: -93.62}},
	{"North Central US", "Illinois", geo.LatLon{LatDeg: 41.88, LonDeg: -87.63}},
	{"South Central US", "Texas", geo.LatLon{LatDeg: 29.42, LonDeg: -98.49}},
	{"West Central US", "Wyoming", geo.LatLon{LatDeg: 41.14, LonDeg: -104.82}},
	{"West US", "California", geo.LatLon{LatDeg: 37.37, LonDeg: -121.92}},
	{"West US 2", "Washington", geo.LatLon{LatDeg: 47.23, LonDeg: -119.85}},
	{"Canada Central", "Toronto", geo.LatLon{LatDeg: 43.65, LonDeg: -79.38}},
	{"Canada East", "Quebec City", geo.LatLon{LatDeg: 46.81, LonDeg: -71.21}},
	{"Brazil South", "Sao Paulo", geo.LatLon{LatDeg: -23.55, LonDeg: -46.63}},
	{"North Europe", "Dublin", geo.LatLon{LatDeg: 53.35, LonDeg: -6.26}},
	{"West Europe", "Amsterdam", geo.LatLon{LatDeg: 52.37, LonDeg: 4.90}},
	{"UK South", "London", geo.LatLon{LatDeg: 51.51, LonDeg: -0.13}},
	{"UK West", "Cardiff", geo.LatLon{LatDeg: 51.48, LonDeg: -3.18}},
	{"France Central", "Paris", geo.LatLon{LatDeg: 48.86, LonDeg: 2.35}},
	{"France South", "Marseille", geo.LatLon{LatDeg: 43.30, LonDeg: 5.37}},
	{"Germany West Central", "Frankfurt", geo.LatLon{LatDeg: 50.11, LonDeg: 8.68}},
	{"Germany North", "Berlin", geo.LatLon{LatDeg: 52.52, LonDeg: 13.40}},
	{"Switzerland North", "Zurich", geo.LatLon{LatDeg: 47.38, LonDeg: 8.54}},
	{"Switzerland West", "Geneva", geo.LatLon{LatDeg: 46.20, LonDeg: 6.14}},
	{"Norway East", "Oslo", geo.LatLon{LatDeg: 59.91, LonDeg: 10.75}},
	{"Norway West", "Stavanger", geo.LatLon{LatDeg: 58.97, LonDeg: 5.73}},
	{"Sweden Central", "Gavle", geo.LatLon{LatDeg: 60.67, LonDeg: 17.14}},
	{"East Asia", "Hong Kong", geo.LatLon{LatDeg: 22.32, LonDeg: 114.17}},
	{"Southeast Asia", "Singapore", geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}},
	{"Japan East", "Tokyo", geo.LatLon{LatDeg: 35.68, LonDeg: 139.69}},
	{"Japan West", "Osaka", geo.LatLon{LatDeg: 34.69, LonDeg: 135.50}},
	{"Korea Central", "Seoul", geo.LatLon{LatDeg: 37.57, LonDeg: 126.98}},
	{"Korea South", "Busan", geo.LatLon{LatDeg: 35.18, LonDeg: 129.08}},
	{"Central India", "Pune", geo.LatLon{LatDeg: 18.52, LonDeg: 73.86}},
	{"South India", "Chennai", geo.LatLon{LatDeg: 13.08, LonDeg: 80.27}},
	{"West India", "Mumbai", geo.LatLon{LatDeg: 19.08, LonDeg: 72.88}},
	{"Australia East", "Sydney", geo.LatLon{LatDeg: -33.87, LonDeg: 151.21}},
	{"Australia Southeast", "Melbourne", geo.LatLon{LatDeg: -37.81, LonDeg: 144.96}},
	{"Australia Central", "Canberra", geo.LatLon{LatDeg: -35.28, LonDeg: 149.13}},
	{"UAE North", "Dubai", geo.LatLon{LatDeg: 25.20, LonDeg: 55.27}},
	{"UAE Central", "Abu Dhabi", geo.LatLon{LatDeg: 24.45, LonDeg: 54.38}},
	{"South Africa North", "Johannesburg", geo.LatLon{LatDeg: -26.20, LonDeg: 28.05}},
	{"South Africa West", "Cape Town", geo.LatLon{LatDeg: -33.93, LonDeg: 18.42}},
}
