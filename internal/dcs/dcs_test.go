package dcs

import (
	"testing"

	"repro/internal/geo"
)

func TestRegionsValid(t *testing.T) {
	rs := Regions()
	if len(rs) < 30 {
		t.Fatalf("only %d regions, want ≥30 (the paper: Azure has 'more global regions than any other provider')", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if !r.Loc.Valid() {
			t.Errorf("region %s has invalid location", r.Name)
		}
		if r.Name == "" || r.Metro == "" {
			t.Errorf("region with empty fields: %+v", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate region %s", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestAfricaHasExactlyTwoRegions(t *testing.T) {
	// The paper: "Microsoft Azure ... has two data center regions in
	// Africa" — the whole Fig 3 argument rests on that sparsity.
	n := 0
	for _, r := range Regions() {
		if r.Loc.LatDeg < 5 && r.Loc.LatDeg > -40 && r.Loc.LonDeg > 5 && r.Loc.LonDeg < 45 {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("African regions = %d, want 2 (South Africa North + West)", n)
	}
}

func TestByName(t *testing.T) {
	r, ok := ByName("South Africa North")
	if !ok || r.Metro != "Johannesburg" {
		t.Fatalf("ByName = %+v, %v", r, ok)
	}
	if _, ok := ByName("Atlantis Central"); ok {
		t.Fatal("nonexistent region found")
	}
}

func TestNearestFromWestAfrica(t *testing.T) {
	// From Abuja the nearest Azure region is one of the South African pair —
	// thousands of km away, the paper's motivating sparsity.
	abuja := geo.LatLon{LatDeg: 9.06, LonDeg: 7.49}
	r := Nearest(abuja)
	if r.Name != "South Africa North" && r.Name != "South Africa West" && r.Name != "West Europe" && r.Name != "France South" {
		t.Logf("nearest to Abuja = %s", r.Name)
	}
	if d := geo.GreatCircleKm(abuja, r.Loc); d < 3000 {
		t.Fatalf("nearest region to Abuja at %.0f km — dataset too dense to reproduce the paper's gap", d)
	}
}

func TestNearestIsActuallyNearest(t *testing.T) {
	pts := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01}, // New York
		{LatDeg: -33.87, LonDeg: 151.21},
		{LatDeg: 0, LonDeg: 0},
		{LatDeg: 70, LonDeg: 100},
	}
	for _, p := range pts {
		got := Nearest(p)
		gd := geo.GreatCircleKm(p, got.Loc)
		for _, r := range Regions() {
			if geo.GreatCircleKm(p, r.Loc) < gd-1e-9 {
				t.Fatalf("Nearest(%v)=%s at %.0f km but %s is closer", p, got.Name, gd, r.Name)
			}
		}
	}
}

func TestMinimaxWestAfrica(t *testing.T) {
	// The Fig 3 user group: the best terrestrial meetup region leaves the
	// farthest user ~4,600 km away (9,200 km round trip in the paper).
	users := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},  // Abuja
		{LatDeg: 3.87, LonDeg: 11.52}, // Yaounde
		{LatDeg: 5.60, LonDeg: -0.19}, // Accra
	}
	r, worst := MinimaxRegion(users)
	if worst < 3500 || worst > 5500 {
		t.Fatalf("minimax distance = %.0f km (region %s), want ≈4,600", worst, r.Name)
	}
}

func TestMinimaxBeatsEveryOtherRegion(t *testing.T) {
	users := []geo.LatLon{
		{LatDeg: 29.42, LonDeg: -98.49},  // South Central US
		{LatDeg: -23.55, LonDeg: -46.63}, // Brazil South
		{LatDeg: -33.87, LonDeg: 151.21}, // Australia East
	}
	best, worst := MinimaxRegion(users)
	for _, r := range Regions() {
		max := 0.0
		for _, u := range users {
			if d := geo.GreatCircleKm(u, r.Loc); d > max {
				max = d
			}
		}
		if max < worst-1e-9 {
			t.Fatalf("MinimaxRegion picked %s (%.0f) but %s has %.0f", best.Name, worst, r.Name, max)
		}
	}
}
