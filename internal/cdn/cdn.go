// Package cdn models §3.1, CDN and edge computing: latency from clients to
// the nearest terrestrial CDN point of presence versus the nearest
// satellite-server. Terrestrial paths ride fiber (2/3 c) with Internet
// route circuity; satellite paths are free-space slant ranges.
package cdn

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/units"
	"repro/internal/visibility"
)

// Terrestrial models the ground CDN.
type Terrestrial struct {
	// PoPs are the CDN points of presence.
	PoPs []geo.LatLon
	// FiberSpeedFraction is signal speed in fiber as a fraction of c
	// (default 0.67).
	FiberSpeedFraction float64
	// PathInflation multiplies great-circle distance to account for route
	// circuity (default 2.0, a common Internet measurement figure).
	PathInflation float64
	// LastMileMs is fixed per-direction access latency added to every path
	// (default 5 ms: access network + peering).
	LastMileMs float64
}

// Defaults fills zero fields with the standard model parameters.
func (t Terrestrial) Defaults() Terrestrial {
	if t.FiberSpeedFraction == 0 {
		t.FiberSpeedFraction = 0.67
	}
	if t.PathInflation == 0 {
		t.PathInflation = 2.0
	}
	if t.LastMileMs == 0 {
		t.LastMileMs = 5
	}
	return t
}

// Validate reports whether the model is usable.
func (t Terrestrial) Validate() error {
	if len(t.PoPs) == 0 {
		return fmt.Errorf("cdn: no PoPs")
	}
	if t.FiberSpeedFraction <= 0 || t.FiberSpeedFraction > 1 {
		return fmt.Errorf("cdn: fiber speed fraction %v outside (0,1]", t.FiberSpeedFraction)
	}
	if t.PathInflation < 1 {
		return fmt.Errorf("cdn: path inflation %v must be >= 1", t.PathInflation)
	}
	if t.LastMileMs < 0 {
		return fmt.Errorf("cdn: negative last-mile latency")
	}
	return nil
}

// RTTMs returns the client's round-trip time to the nearest PoP under the
// terrestrial model.
func (t Terrestrial) RTTMs(client geo.LatLon) (float64, error) {
	t = t.Defaults()
	if err := t.Validate(); err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for _, p := range t.PoPs {
		if d := geo.GreatCircleKm(client, p); d < best {
			best = d
		}
	}
	oneWay := best*t.PathInflation/(units.SpeedOfLightKmS*t.FiberSpeedFraction)*1000 + t.LastMileMs
	return 2 * oneWay, nil
}

// NearestPoPKm returns the great-circle distance to the closest PoP.
func (t Terrestrial) NearestPoPKm(client geo.LatLon) float64 {
	best := math.Inf(1)
	for _, p := range t.PoPs {
		if d := geo.GreatCircleKm(client, p); d < best {
			best = d
		}
	}
	return best
}

// Orbital models the satellite edge.
type Orbital struct {
	// Observer evaluates satellite visibility.
	Observer *visibility.Observer
	// ProcessingMs is fixed per-request server time added to the RTT.
	ProcessingMs float64
}

// RTTMs returns the client's RTT to the nearest reachable satellite-server
// at the given constellation snapshot, with ok=false during coverage gaps.
func (o Orbital) RTTMs(client geo.LatLon, snapshot []geo.Vec3) (float64, bool) {
	_, slant, ok := o.Observer.Nearest(client.ECEF(), snapshot)
	if !ok {
		return 0, false
	}
	return units.RTTMs(slant) + o.ProcessingMs, true
}

// Comparison is one client's terrestrial-vs-orbital latency pair.
type Comparison struct {
	Client        geo.LatLon
	TerrestrialMs float64
	OrbitalMs     float64
	// OrbitalCovered is false when no satellite was reachable.
	OrbitalCovered bool
}

// Advantage returns how many times lower the orbital RTT is (values > 1
// mean the satellite edge wins).
func (c Comparison) Advantage() float64 {
	if !c.OrbitalCovered || c.OrbitalMs <= 0 {
		return 0
	}
	return c.TerrestrialMs / c.OrbitalMs
}

// Compare evaluates both models for a set of clients at one snapshot.
func Compare(t Terrestrial, o Orbital, clients []geo.LatLon, snapshot []geo.Vec3) ([]Comparison, error) {
	t = t.Defaults()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if o.Observer == nil {
		return nil, fmt.Errorf("cdn: orbital model needs an observer")
	}
	out := make([]Comparison, 0, len(clients))
	for _, cl := range clients {
		ter, err := t.RTTMs(cl)
		if err != nil {
			return nil, err
		}
		orb, ok := o.RTTMs(cl, snapshot)
		out = append(out, Comparison{Client: cl, TerrestrialMs: ter, OrbitalMs: orb, OrbitalCovered: ok})
	}
	return out, nil
}
