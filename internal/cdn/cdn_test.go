package cdn

import (
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/visibility"
)

func popSet() []geo.LatLon {
	// A sparse CDN: PoPs in the usual metro hubs only, mirroring the
	// paper's point that large regions have no nearby edge.
	return []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01},  // New York
		{LatDeg: 51.51, LonDeg: -0.13},   // London
		{LatDeg: 1.35, LonDeg: 103.82},   // Singapore
		{LatDeg: -33.87, LonDeg: 151.21}, // Sydney
		{LatDeg: -26.20, LonDeg: 28.05},  // Johannesburg
		{LatDeg: -23.55, LonDeg: -46.63}, // Sao Paulo
	}
}

func TestTerrestrialValidate(t *testing.T) {
	if err := (Terrestrial{}).Defaults().Validate(); err == nil {
		t.Fatal("no PoPs accepted")
	}
	bad := Terrestrial{PoPs: popSet(), FiberSpeedFraction: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad fiber speed accepted")
	}
	bad2 := Terrestrial{PoPs: popSet(), FiberSpeedFraction: 0.67, PathInflation: 0.5}
	if err := bad2.Validate(); err == nil {
		t.Fatal("inflation < 1 accepted")
	}
	bad3 := Terrestrial{PoPs: popSet(), FiberSpeedFraction: 0.67, PathInflation: 2, LastMileMs: -1}
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative last mile accepted")
	}
}

func TestTerrestrialRTTNearPoP(t *testing.T) {
	m := Terrestrial{PoPs: popSet()}
	// A client in London is basically at a PoP: RTT ≈ 2×last-mile = 10 ms.
	rtt, err := m.RTTMs(geo.LatLon{LatDeg: 51.50, LonDeg: -0.12})
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 9 || rtt > 12 {
		t.Fatalf("near-PoP RTT = %v ms", rtt)
	}
}

func TestTerrestrialRTTRemote(t *testing.T) {
	// The paper: CDN edge latencies exceed 100 ms in many places. A client
	// in Chad is ~4,000 km from Johannesburg/London-class PoPs.
	m := Terrestrial{PoPs: popSet()}
	rtt, err := m.RTTMs(geo.LatLon{LatDeg: 12.13, LonDeg: 15.06}) // N'Djamena
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 80 {
		t.Fatalf("remote RTT = %v ms, expected ≥80 (the paper's 100+ regime)", rtt)
	}
}

func TestNearestPoPKm(t *testing.T) {
	m := Terrestrial{PoPs: popSet()}
	d := m.NearestPoPKm(geo.LatLon{LatDeg: 40.71, LonDeg: -74.01})
	if d > 1 {
		t.Fatalf("distance at PoP = %v", d)
	}
}

func TestOrbitalRTT(t *testing.T) {
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := Orbital{Observer: visibility.NewObserver(c), ProcessingMs: 1}
	snap := c.Snapshot(0)
	rtt, ok := o.RTTMs(geo.LatLon{LatDeg: 12.13, LonDeg: 15.06}, snap)
	if !ok {
		t.Skip("coverage gap at the sample instant")
	}
	// Nearest-satellite RTT: ≥ overhead RTT (3.7 ms) + 1 ms processing,
	// ≤ mask worst case (7.5 ms) + 1.
	if rtt < 4.5 || rtt > 9 {
		t.Fatalf("orbital RTT = %v ms", rtt)
	}
	// Polar client with a 53° shell: no coverage.
	if _, ok := o.RTTMs(geo.LatLon{LatDeg: 89, LonDeg: 0}, snap); ok {
		t.Fatal("polar client should be uncovered")
	}
}

func TestCompareAdvantage(t *testing.T) {
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ter := Terrestrial{PoPs: popSet()}
	orb := Orbital{Observer: visibility.NewObserver(c)}
	clients := []geo.LatLon{
		{LatDeg: 12.13, LonDeg: 15.06}, // N'Djamena: remote from CDN
		{LatDeg: 51.50, LonDeg: -0.12}, // London: at a PoP
	}
	comps, err := Compare(ter, orb, clients, c.Snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("got %d comparisons", len(comps))
	}
	remote, london := comps[0], comps[1]
	if remote.OrbitalCovered && remote.Advantage() < 5 {
		t.Fatalf("remote advantage = %.1f, expected large", remote.Advantage())
	}
	if london.OrbitalCovered && london.Advantage() > 3 {
		t.Fatalf("london advantage = %.1f, expected modest", london.Advantage())
	}
	// Advantage of an uncovered client is 0.
	uncov := Comparison{TerrestrialMs: 100, OrbitalCovered: false}
	if uncov.Advantage() != 0 {
		t.Fatal("uncovered advantage should be 0")
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(Terrestrial{}, Orbital{}, nil, nil); err == nil {
		t.Fatal("empty models accepted")
	}
	if _, err := Compare(Terrestrial{PoPs: popSet()}, Orbital{}, nil, nil); err == nil {
		t.Fatal("nil observer accepted")
	}
}

func TestDefaultsIdempotent(t *testing.T) {
	m := Terrestrial{PoPs: popSet(), FiberSpeedFraction: 0.9, PathInflation: 1.2, LastMileMs: 1}
	d := m.Defaults()
	if d.FiberSpeedFraction != 0.9 || d.PathInflation != 1.2 || d.LastMileMs != 1 {
		t.Fatal("Defaults overwrote explicit values")
	}
	z := (Terrestrial{PoPs: popSet()}).Defaults()
	if z.FiberSpeedFraction != 0.67 || z.PathInflation != 2.0 || math.Abs(z.LastMileMs-5) > 1e-12 {
		t.Fatalf("zero defaults wrong: %+v", z)
	}
}
