package orbit

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/units"
)

// EllipticalElements describes a general closed orbit. The mega-
// constellation shells are circular, but imported TLEs (ISS, imaging
// satellites) carry small eccentricities; this propagator handles them
// exactly via the Kepler equation.
type EllipticalElements struct {
	// SemiMajorAxisKm is the orbit's semi-major axis.
	SemiMajorAxisKm float64
	// Eccentricity in [0, 1).
	Eccentricity float64
	// InclinationDeg, RAANDeg, ArgPerigeeDeg are the usual angles.
	InclinationDeg, RAANDeg, ArgPerigeeDeg float64
	// MeanAnomalyDeg at epoch.
	MeanAnomalyDeg float64
}

// Validate reports whether the elements describe a bound orbit above the
// surface.
func (e EllipticalElements) Validate() error {
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %v outside [0,1)", e.Eccentricity)
	}
	if e.SemiMajorAxisKm <= 0 {
		return fmt.Errorf("orbit: non-positive semi-major axis %v", e.SemiMajorAxisKm)
	}
	if peri := e.PerigeeKm(); peri < units.EarthRadiusKm {
		return fmt.Errorf("orbit: perigee %v km below the surface", peri-units.EarthRadiusKm)
	}
	if e.InclinationDeg < 0 || e.InclinationDeg > 180 {
		return fmt.Errorf("orbit: inclination %v outside [0,180]", e.InclinationDeg)
	}
	return nil
}

// PerigeeKm returns the perigee radius (from the Earth's centre).
func (e EllipticalElements) PerigeeKm() float64 {
	return e.SemiMajorAxisKm * (1 - e.Eccentricity)
}

// ApogeeKm returns the apogee radius.
func (e EllipticalElements) ApogeeKm() float64 {
	return e.SemiMajorAxisKm * (1 + e.Eccentricity)
}

// PeriodSec returns the orbital period.
func (e EllipticalElements) PeriodSec() float64 {
	a := e.SemiMajorAxisKm
	return 2 * math.Pi * math.Sqrt(a*a*a/units.EarthMuKm3S2)
}

// FromCircular lifts circular elements into the general form.
func FromCircular(c Elements) EllipticalElements {
	return EllipticalElements{
		SemiMajorAxisKm: c.SemiMajorAxisKm(),
		Eccentricity:    0,
		InclinationDeg:  c.InclinationDeg,
		RAANDeg:         c.RAANDeg,
		ArgPerigeeDeg:   0,
		MeanAnomalyDeg:  c.ArgLatDeg,
	}
}

// SolveKepler solves Kepler's equation M = E − e·sin(E) for the eccentric
// anomaly E (radians), given mean anomaly M (radians) and eccentricity e.
// Newton iteration with a series starter; converges to 1e-12 for e < 0.99.
func SolveKepler(M, e float64) float64 {
	M = math.Mod(M, 2*math.Pi)
	if M < 0 {
		M += 2 * math.Pi
	}
	// Starter: E ≈ M + e·sin(M) works well for small-to-moderate e.
	E := M + e*math.Sin(M)
	for i := 0; i < 30; i++ {
		f := E - e*math.Sin(E) - M
		fp := 1 - e*math.Cos(E)
		d := f / fp
		E -= d
		if math.Abs(d) < 1e-13 {
			break
		}
	}
	return E
}

// TrueAnomalyFromEccentric converts eccentric anomaly to true anomaly.
func TrueAnomalyFromEccentric(E, e float64) float64 {
	s := math.Sqrt(1+e) * math.Sin(E/2)
	c := math.Sqrt(1-e) * math.Cos(E/2)
	return 2 * math.Atan2(s, c)
}

// EllipticalPropagator propagates general closed orbits.
type EllipticalPropagator struct {
	e        EllipticalElements
	meanRate float64
	m0       float64
}

// NewEllipticalPropagator builds a propagator for the elements.
func NewEllipticalPropagator(e EllipticalElements) (*EllipticalPropagator, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &EllipticalPropagator{
		e:        e,
		meanRate: 2 * math.Pi / e.PeriodSec(),
		m0:       units.Deg2Rad(e.MeanAnomalyDeg),
	}, nil
}

// Elements returns the epoch elements.
func (p *EllipticalPropagator) Elements() EllipticalElements { return p.e }

// ECIAt returns the inertial position at t seconds after epoch.
func (p *EllipticalPropagator) ECIAt(tSec float64) geo.Vec3 {
	M := p.m0 + p.meanRate*tSec
	E := SolveKepler(M, p.e.Eccentricity)
	nu := TrueAnomalyFromEccentric(E, p.e.Eccentricity)
	r := p.e.SemiMajorAxisKm * (1 - p.e.Eccentricity*math.Cos(E))

	// Perifocal → ECI rotation.
	u := units.Deg2Rad(p.e.ArgPerigeeDeg) + nu
	su, cu := math.Sincos(u)
	sR, cR := math.Sincos(units.Deg2Rad(p.e.RAANDeg))
	si, ci := math.Sincos(units.Deg2Rad(p.e.InclinationDeg))
	return geo.Vec3{
		X: r * (cR*cu - sR*su*ci),
		Y: r * (sR*cu + cR*su*ci),
		Z: r * (su * si),
	}
}

// ECEFAt returns the Earth-fixed position at t seconds after epoch with the
// same GMST(0)=0 convention as the circular propagator.
func (p *EllipticalPropagator) ECEFAt(tSec float64) geo.Vec3 {
	return p.ECIAt(tSec).RotateZ(-units.EarthRotationRadS * tSec)
}

// RadiusAt returns the geocentric distance at t seconds after epoch.
func (p *EllipticalPropagator) RadiusAt(tSec float64) float64 {
	M := p.m0 + p.meanRate*tSec
	E := SolveKepler(M, p.e.Eccentricity)
	return p.e.SemiMajorAxisKm * (1 - p.e.Eccentricity*math.Cos(E))
}

// VisVivaSpeedKmS returns the orbital speed at radius r (vis-viva).
func (e EllipticalElements) VisVivaSpeedKmS(rKm float64) float64 {
	return math.Sqrt(units.EarthMuKm3S2 * (2/rKm - 1/e.SemiMajorAxisKm))
}
