// Package orbit implements the orbital-mechanics substrate: circular
// Keplerian propagation of LEO satellites, the inertial→Earth-fixed frame
// rotation, nodal precession under J2, and Earth-shadow (eclipse) geometry.
//
// The paper's analysis needs positions accurate to a few kilometres over
// two-hour windows; ideal circular two-body motion (optionally with secular
// J2 RAAN drift) is more than sufficient and is what LEO constellation
// simulators such as Hypatia use for the same figures.
package orbit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/units"
)

// Elements describes a circular orbit by its Keplerian elements. Eccentricity
// is fixed at zero: every constellation shell in the paper is circular.
type Elements struct {
	// AltitudeKm is the orbit altitude above the Earth's surface.
	AltitudeKm float64
	// InclinationDeg is the orbital inclination.
	InclinationDeg float64
	// RAANDeg is the right ascension of the ascending node at epoch.
	RAANDeg float64
	// ArgLatDeg is the argument of latitude (angle from the ascending node
	// along the orbit) at epoch. For circular orbits this replaces the
	// argument of perigee + true anomaly pair.
	ArgLatDeg float64
}

// Validate reports whether the elements describe a physically meaningful
// LEO-ish orbit.
func (e Elements) Validate() error {
	if e.AltitudeKm <= 0 {
		return fmt.Errorf("orbit: altitude %.1f km must be positive", e.AltitudeKm)
	}
	if e.InclinationDeg < 0 || e.InclinationDeg > 180 {
		return fmt.Errorf("orbit: inclination %.1f° outside [0,180]", e.InclinationDeg)
	}
	return nil
}

// SemiMajorAxisKm returns the orbit's semi-major axis (= radius, circular).
func (e Elements) SemiMajorAxisKm() float64 {
	return units.EarthRadiusKm + e.AltitudeKm
}

// PeriodSec returns the orbital period in seconds.
func (e Elements) PeriodSec() float64 {
	return units.OrbitalPeriodSec(e.AltitudeKm)
}

// MeanMotionRadS returns the angular rate in radians per second.
func (e Elements) MeanMotionRadS() float64 {
	return 2 * math.Pi / e.PeriodSec()
}

// VelocityKmS returns the orbital speed in km/s.
func (e Elements) VelocityKmS() float64 {
	return units.OrbitalVelocityKmS(e.AltitudeKm)
}

// J2NodalRateRadS returns the secular RAAN drift rate due to the Earth's
// oblateness (J2). Negative for prograde orbits (westward regression).
func (e Elements) J2NodalRateRadS() float64 {
	a := e.SemiMajorAxisKm()
	n := e.MeanMotionRadS()
	re := units.EarthRadiusKm
	return -1.5 * n * units.J2 * (re / a) * (re / a) * math.Cos(units.Deg2Rad(e.InclinationDeg))
}

// Propagator turns elements into time-parameterised positions. The zero
// value is not useful; construct with NewPropagator.
type Propagator struct {
	elems    Elements
	incRad   float64
	raan0    float64 // radians at epoch
	argLat0  float64 // radians at epoch
	meanRate float64 // rad/s
	raanRate float64 // rad/s (0 unless J2 enabled)
	radius   float64 // km
}

// Options adjusts propagation fidelity.
type Options struct {
	// J2 enables secular nodal precession. The paper's two-hour windows make
	// this a sub-10 km effect, but it is cheap and keeps multi-day scenarios
	// honest.
	J2 bool
}

// NewPropagator builds a propagator for the given circular elements.
func NewPropagator(e Elements, opts Options) (*Propagator, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	p := &Propagator{
		elems:    e,
		incRad:   units.Deg2Rad(e.InclinationDeg),
		raan0:    units.Deg2Rad(e.RAANDeg),
		argLat0:  units.Deg2Rad(e.ArgLatDeg),
		meanRate: e.MeanMotionRadS(),
		radius:   e.SemiMajorAxisKm(),
	}
	if opts.J2 {
		p.raanRate = e.J2NodalRateRadS()
	}
	return p, nil
}

// Elements returns the epoch elements the propagator was built from.
func (p *Propagator) Elements() Elements { return p.elems }

// RAANRateRadS returns the secular RAAN drift rate the propagator actually
// applies — J2NodalRateRadS when the J2 option is enabled, zero otherwise.
// Consumers that model orbital-plane motion analytically (netgraph's
// incremental freeze certificates) need the applied rate, not the nominal
// one, so their plane normals track the propagated positions exactly.
func (p *Propagator) RAANRateRadS() float64 { return p.raanRate }

// ECIAt returns the inertial-frame position at t seconds after epoch.
func (p *Propagator) ECIAt(tSec float64) geo.Vec3 {
	u := p.argLat0 + p.meanRate*tSec
	raan := p.raan0 + p.raanRate*tSec
	su, cu := math.Sincos(u)
	sR, cR := math.Sincos(raan)
	si, ci := math.Sincos(p.incRad)
	return geo.Vec3{
		X: p.radius * (cR*cu - sR*su*ci),
		Y: p.radius * (sR*cu + cR*su*ci),
		Z: p.radius * (su * si),
	}
}

// ECEFAt returns the Earth-fixed position at t seconds after epoch, assuming
// the inertial and Earth-fixed frames coincide at epoch (GMST(0) = 0). All
// positions in a simulation share the epoch, so this convention cancels out
// of every relative quantity.
func (p *Propagator) ECEFAt(tSec float64) geo.Vec3 {
	return p.ECIAt(tSec).RotateZ(-units.EarthRotationRadS * tSec)
}

// SubpointAt returns the geographic point directly beneath the satellite at
// t seconds after epoch (altitude = orbit altitude).
func (p *Propagator) SubpointAt(tSec float64) geo.LatLon {
	return geo.FromECEF(p.ECEFAt(tSec))
}

// ECIVelocityAt returns the inertial-frame velocity (km/s) at t seconds
// after epoch, by analytic differentiation of the circular motion.
func (p *Propagator) ECIVelocityAt(tSec float64) geo.Vec3 {
	u := p.argLat0 + p.meanRate*tSec
	raan := p.raan0 + p.raanRate*tSec
	su, cu := math.Sincos(u)
	sR, cR := math.Sincos(raan)
	si, ci := math.Sincos(p.incRad)
	v := p.radius * p.meanRate
	// d/du of the position, times du/dt (RAAN drift is ~5 orders smaller
	// and ignored in the velocity).
	return geo.Vec3{
		X: v * (-cR*su - sR*cu*ci),
		Y: v * (-sR*su + cR*cu*ci),
		Z: v * (cu * si),
	}
}

// ECEFVelocityAt returns the Earth-fixed-frame velocity (km/s) at t seconds
// after epoch: the rotated inertial velocity minus the frame-rotation term
// ω × r.
func (p *Propagator) ECEFVelocityAt(tSec float64) geo.Vec3 {
	theta := -units.EarthRotationRadS * tSec
	vRot := p.ECIVelocityAt(tSec).RotateZ(theta)
	r := p.ECEFAt(tSec)
	// ω × r with ω = ω_e ẑ: subtracting the frame's own motion.
	omegaCrossR := geo.Vec3{X: -units.EarthRotationRadS * r.Y, Y: units.EarthRotationRadS * r.X}
	return vRot.Sub(omegaCrossR)
}

// ErrNeverVisible is returned by visibility search helpers when the target
// condition cannot occur for the given geometry.
var ErrNeverVisible = errors.New("orbit: condition never satisfied for this geometry")

// InShadowAt reports whether the satellite is inside the Earth's shadow at
// t seconds after epoch, given the unit vector pointing from the Earth to
// the Sun in the inertial frame. A cylindrical shadow model is used: the
// satellite is eclipsed when it is behind the terminator plane and within
// one Earth radius of the anti-solar axis. This drives the power/battery
// duty-cycle model in §4.
func (p *Propagator) InShadowAt(tSec float64, sunUnitECI geo.Vec3) bool {
	r := p.ECIAt(tSec)
	along := r.Dot(sunUnitECI)
	if along >= 0 {
		return false // sun side of the terminator plane
	}
	perp := r.Sub(sunUnitECI.Scale(along))
	return perp.Norm() < units.EarthRadiusKm
}

// EclipseFraction numerically integrates the fraction of one orbital period
// spent in the Earth's shadow, sampling at the given step. A step of a few
// seconds gives three-decimal accuracy, ample for the power budget model.
func (p *Propagator) EclipseFraction(sunUnitECI geo.Vec3, stepSec float64) float64 {
	if stepSec <= 0 {
		stepSec = 5
	}
	period := p.elems.PeriodSec()
	var dark, total int
	for t := 0.0; t < period; t += stepSec {
		total++
		if p.InShadowAt(t, sunUnitECI) {
			dark++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dark) / float64(total)
}
