package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEllipticalValidate(t *testing.T) {
	tests := []struct {
		name string
		e    EllipticalElements
		ok   bool
	}{
		{"circular-leo", EllipticalElements{SemiMajorAxisKm: 6928, InclinationDeg: 53}, true},
		{"molniya-ish", EllipticalElements{SemiMajorAxisKm: 26600, Eccentricity: 0.74, InclinationDeg: 63.4}, true},
		{"hyperbolic", EllipticalElements{SemiMajorAxisKm: 6928, Eccentricity: 1.0}, false},
		{"negative-e", EllipticalElements{SemiMajorAxisKm: 6928, Eccentricity: -0.1}, false},
		{"zero-sma", EllipticalElements{SemiMajorAxisKm: 0}, false},
		{"subsurface-perigee", EllipticalElements{SemiMajorAxisKm: 6928, Eccentricity: 0.2}, false},
		{"bad-inc", EllipticalElements{SemiMajorAxisKm: 6928, InclinationDeg: 200}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.e.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSolveKeplerIdentity(t *testing.T) {
	// E - e·sin(E) must reproduce M.
	f := func(mSeed, eSeed uint16) bool {
		M := float64(mSeed) / 65535 * 2 * math.Pi
		e := float64(eSeed) / 65535 * 0.95
		E := SolveKepler(M, e)
		back := E - e*math.Sin(E)
		diff := math.Mod(back-M, 2*math.Pi)
		if diff > math.Pi {
			diff -= 2 * math.Pi
		}
		if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		return math.Abs(diff) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveKeplerCircular(t *testing.T) {
	// e=0: E == M.
	for _, m := range []float64{0, 1, math.Pi, 5} {
		if got := SolveKepler(m, 0); math.Abs(got-math.Mod(m, 2*math.Pi)) > 1e-12 {
			t.Fatalf("SolveKepler(%v, 0) = %v", m, got)
		}
	}
}

func TestTrueAnomalySymmetry(t *testing.T) {
	// At E=0 (perigee) and E=π (apogee) true anomaly matches exactly.
	for _, e := range []float64{0, 0.1, 0.7} {
		if nu := TrueAnomalyFromEccentric(0, e); math.Abs(nu) > 1e-12 {
			t.Fatalf("perigee true anomaly = %v", nu)
		}
		if nu := TrueAnomalyFromEccentric(math.Pi, e); math.Abs(nu-math.Pi) > 1e-9 {
			t.Fatalf("apogee true anomaly = %v", nu)
		}
	}
}

func TestEllipticalMatchesCircular(t *testing.T) {
	// With e=0 the elliptical propagator reproduces the circular one.
	c := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 40, ArgLatDeg: 70}
	pc := mustProp(t, c, Options{})
	pe, err := NewEllipticalPropagator(FromCircular(c))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 500, 3000, 5739} {
		d := pc.ECIAt(tt).Distance(pe.ECIAt(tt))
		if d > 1e-6 {
			t.Fatalf("t=%v: circular/elliptical diverge by %v km", tt, d)
		}
		de := pc.ECEFAt(tt).Distance(pe.ECEFAt(tt))
		if de > 1e-6 {
			t.Fatalf("t=%v: ECEF diverge by %v km", tt, de)
		}
	}
}

func TestEllipticalRadiusBounds(t *testing.T) {
	e := EllipticalElements{
		SemiMajorAxisKm: 26600,
		Eccentricity:    0.74,
		InclinationDeg:  63.4,
		ArgPerigeeDeg:   270,
	}
	p, err := NewEllipticalPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	period := e.PeriodSec()
	minR, maxR := math.Inf(1), math.Inf(-1)
	for tt := 0.0; tt < period; tt += period / 2000 {
		r := p.ECIAt(tt).Norm()
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
		// RadiusAt agrees with the position norm.
		if math.Abs(p.RadiusAt(tt)-r) > 1e-6 {
			t.Fatalf("RadiusAt disagrees with |ECI| at t=%v", tt)
		}
	}
	if math.Abs(minR-e.PerigeeKm()) > 30 { // 2000 samples quantise the extremes
		t.Fatalf("min radius %v vs perigee %v", minR, e.PerigeeKm())
	}
	if math.Abs(maxR-e.ApogeeKm()) > 30 {
		t.Fatalf("max radius %v vs apogee %v", maxR, e.ApogeeKm())
	}
}

func TestEllipticalPeriodicity(t *testing.T) {
	e := EllipticalElements{SemiMajorAxisKm: 8000, Eccentricity: 0.15, InclinationDeg: 30, MeanAnomalyDeg: 123}
	p, err := NewEllipticalPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.ECIAt(77).Distance(p.ECIAt(77 + e.PeriodSec())); d > 1e-6 {
		t.Fatalf("not periodic: %v km drift", d)
	}
}

func TestKeplerSecondLaw(t *testing.T) {
	// Angular momentum (r × v) magnitude is constant — Kepler's 2nd law.
	e := EllipticalElements{SemiMajorAxisKm: 10000, Eccentricity: 0.3, InclinationDeg: 45}
	p, err := NewEllipticalPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	h0 := -1.0
	dt := 0.01
	for _, tt := range []float64{0, 1000, 3000, 6000} {
		r := p.ECIAt(tt)
		v := p.ECIAt(tt + dt).Sub(p.ECIAt(tt - dt)).Scale(1 / (2 * dt))
		h := r.Cross(v).Norm()
		if h0 < 0 {
			h0 = h
			continue
		}
		if math.Abs(h-h0)/h0 > 1e-4 {
			t.Fatalf("angular momentum drifts: %v vs %v", h, h0)
		}
	}
}

func TestVisVivaAtExtremes(t *testing.T) {
	e := EllipticalElements{SemiMajorAxisKm: 10000, Eccentricity: 0.3, InclinationDeg: 0}
	p, err := NewEllipticalPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric speed at perigee (t=0, M=0) matches vis-viva.
	dt := 0.01
	v := p.ECIAt(dt).Sub(p.ECIAt(-dt)).Scale(1 / (2 * dt)).Norm()
	want := e.VisVivaSpeedKmS(e.PerigeeKm())
	if math.Abs(v-want) > 0.01 {
		t.Fatalf("perigee speed %v, vis-viva %v", v, want)
	}
	// Perigee is the fastest point.
	half := e.PeriodSec() / 2
	vApo := p.ECIAt(half + dt).Sub(p.ECIAt(half - dt)).Scale(1 / (2 * dt)).Norm()
	if vApo >= v {
		t.Fatalf("apogee speed %v not below perigee %v", vApo, v)
	}
}

func TestEllipticalISSFromTLEValues(t *testing.T) {
	// ISS-like orbit: a ≈ 6798 km, e ≈ 0.0001731.
	e := EllipticalElements{
		SemiMajorAxisKm: 6798,
		Eccentricity:    0.0001731,
		InclinationDeg:  51.64,
		RAANDeg:         165.45,
		ArgPerigeeDeg:   35.93,
		MeanAnomalyDeg:  90.58,
	}
	p, err := NewEllipticalPropagator(e)
	if err != nil {
		t.Fatal(err)
	}
	// ~92.8-minute period, altitude stays in the 405-430 km band.
	if per := e.PeriodSec() / 60; per < 92 || per > 94 {
		t.Fatalf("ISS period = %v min", per)
	}
	for tt := 0.0; tt < e.PeriodSec(); tt += 60 {
		alt := p.ECIAt(tt).Norm() - units.EarthRadiusKm
		if alt < 405 || alt > 435 {
			t.Fatalf("ISS altitude %v km at t=%v", alt, tt)
		}
	}
}
