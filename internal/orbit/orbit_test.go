package orbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/units"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustProp(t *testing.T, e Elements, opts Options) *Propagator {
	t.Helper()
	p, err := NewPropagator(e, opts)
	if err != nil {
		t.Fatalf("NewPropagator(%+v): %v", e, err)
	}
	return p
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		e       Elements
		wantErr bool
	}{
		{"starlink", Elements{AltitudeKm: 550, InclinationDeg: 53}, false},
		{"polar", Elements{AltitudeKm: 1015, InclinationDeg: 98.98}, false},
		{"zero-alt", Elements{AltitudeKm: 0, InclinationDeg: 53}, true},
		{"neg-alt", Elements{AltitudeKm: -10, InclinationDeg: 53}, true},
		{"bad-inc", Elements{AltitudeKm: 550, InclinationDeg: 190}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.e.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err=%v, wantErr=%v", err, tc.wantErr)
			}
			if tc.wantErr {
				if _, err := NewPropagator(tc.e, Options{}); err == nil {
					t.Fatal("NewPropagator should reject invalid elements")
				}
			}
		})
	}
}

func TestRadiusConstant(t *testing.T) {
	p := mustProp(t, Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 10, ArgLatDeg: 77}, Options{})
	want := units.EarthRadiusKm + 550
	for _, tt := range []float64{0, 100, 1000, 5739, 86400} {
		if got := p.ECIAt(tt).Norm(); !almostEq(got, want, 1e-6) {
			t.Fatalf("|ECI(%v)| = %v, want %v", tt, got, want)
		}
		if got := p.ECEFAt(tt).Norm(); !almostEq(got, want, 1e-6) {
			t.Fatalf("|ECEF(%v)| = %v, want %v", tt, got, want)
		}
	}
}

func TestPeriodicityECI(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 42, ArgLatDeg: 13}
	p := mustProp(t, e, Options{})
	period := e.PeriodSec()
	a := p.ECIAt(123)
	b := p.ECIAt(123 + period)
	if a.Distance(b) > 1e-6 {
		t.Fatalf("ECI not periodic: moved %v km over one period", a.Distance(b))
	}
}

func TestInclinationBoundsLatitude(t *testing.T) {
	// |latitude of subpoint| never exceeds inclination (prograde orbits).
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 0, ArgLatDeg: 0}
	p := mustProp(t, e, Options{})
	for tt := 0.0; tt < 2*e.PeriodSec(); tt += 10 {
		lat := p.SubpointAt(tt).LatDeg
		if math.Abs(lat) > 53.0001 {
			t.Fatalf("subpoint latitude %v exceeds inclination at t=%v", lat, tt)
		}
	}
}

func TestLatitudeReachesInclination(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 0, ArgLatDeg: 0}
	p := mustProp(t, e, Options{})
	maxLat := 0.0
	for tt := 0.0; tt < e.PeriodSec(); tt += 5 {
		if lat := math.Abs(p.SubpointAt(tt).LatDeg); lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat < 52.5 {
		t.Fatalf("max |latitude| = %v, should approach inclination 53", maxLat)
	}
}

func TestEquatorialOrbitStaysEquatorial(t *testing.T) {
	e := Elements{AltitudeKm: 800, InclinationDeg: 0}
	p := mustProp(t, e, Options{})
	for tt := 0.0; tt < e.PeriodSec(); tt += 60 {
		if z := p.ECIAt(tt).Z; math.Abs(z) > 1e-9 {
			t.Fatalf("equatorial orbit left the equator: z=%v at t=%v", z, tt)
		}
	}
}

func TestAscendingNodeStart(t *testing.T) {
	// At ArgLat 0, the satellite sits on the ascending node: latitude 0,
	// moving north.
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 30, ArgLatDeg: 0}
	p := mustProp(t, e, Options{})
	at0 := p.ECIAt(0)
	if !almostEq(at0.Z, 0, 1e-9) {
		t.Fatalf("z at ascending node = %v, want 0", at0.Z)
	}
	if p.ECIAt(1).Z <= 0 {
		t.Fatal("satellite should be moving north at the ascending node")
	}
	// And the node itself is at longitude = RAAN when frames coincide.
	ll := geo.FromECEF(at0)
	if !almostEq(ll.LonDeg, 30, 1e-6) {
		t.Fatalf("ascending node longitude = %v, want 30", ll.LonDeg)
	}
}

func TestSpeedMatchesCircularVelocity(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	p := mustProp(t, e, Options{})
	dt := 0.1
	v := p.ECIAt(dt).Sub(p.ECIAt(0)).Norm() / dt
	if !almostEq(v, e.VelocityKmS(), 0.01) {
		t.Fatalf("numeric speed %v, want %v", v, e.VelocityKmS())
	}
}

func TestECEFDriftsWestward(t *testing.T) {
	// In the Earth-fixed frame an equatorial-prograde satellite still moves
	// east (orbital motion beats Earth rotation at LEO), but slower than in
	// ECI. Check the relative rate is orbital minus Earth rate.
	e := Elements{AltitudeKm: 550, InclinationDeg: 0}
	p := mustProp(t, e, Options{})
	dt := 10.0
	lon0 := geo.FromECEF(p.ECEFAt(0)).LonDeg
	lon1 := geo.FromECEF(p.ECEFAt(dt)).LonDeg
	gotRate := units.Deg2Rad(lon1-lon0) / dt
	wantRate := e.MeanMotionRadS() - units.EarthRotationRadS
	if !almostEq(gotRate, wantRate, 1e-6) {
		t.Fatalf("ECEF angular rate %v, want %v", gotRate, wantRate)
	}
}

func TestJ2RegressionDirection(t *testing.T) {
	// Prograde orbits regress westward (negative RAAN rate); retrograde
	// (sun-synchronous-like) orbits precess eastward.
	pro := Elements{AltitudeKm: 550, InclinationDeg: 53}
	retro := Elements{AltitudeKm: 1015, InclinationDeg: 98.98}
	if pro.J2NodalRateRadS() >= 0 {
		t.Fatal("prograde J2 nodal rate should be negative")
	}
	if retro.J2NodalRateRadS() <= 0 {
		t.Fatal("retrograde J2 nodal rate should be positive")
	}
}

func TestJ2MagnitudeStarlink(t *testing.T) {
	// For 550 km / 53°, nodal regression is about -5°/day.
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	degPerDay := units.Rad2Deg(e.J2NodalRateRadS()) * 86400
	if degPerDay > -4 || degPerDay < -6 {
		t.Fatalf("J2 regression = %v °/day, want ≈ -5", degPerDay)
	}
}

func TestJ2OptionChangesTrajectory(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	plain := mustProp(t, e, Options{})
	j2 := mustProp(t, e, Options{J2: true})
	// After a day the RAAN drift displaces the satellite by hundreds of km.
	d := plain.ECIAt(86400).Distance(j2.ECIAt(86400))
	if d < 100 {
		t.Fatalf("J2 option had too little effect: %v km after one day", d)
	}
	// At epoch they agree exactly.
	if plain.ECIAt(0).Distance(j2.ECIAt(0)) != 0 {
		t.Fatal("J2 option should not change the epoch position")
	}
}

func TestEclipseFractionRange(t *testing.T) {
	sun := geo.Vec3{X: 1} // sun along +X
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	p := mustProp(t, e, Options{})
	f := p.EclipseFraction(sun, 5)
	// LEO at 550 km spends roughly 30-40% of each orbit in shadow when the
	// orbit plane contains the sun vector; never more than half.
	if f <= 0.2 || f >= 0.5 {
		t.Fatalf("eclipse fraction = %v, want in (0.2, 0.5)", f)
	}
}

func TestEclipseNoneWhenOrbitFaceOn(t *testing.T) {
	// Sun along +Z, equatorial orbit: the orbit plane is perpendicular to
	// the sun direction... the satellite circles the terminator and, at
	// altitude, stays in sunlight the whole orbit.
	sun := geo.Vec3{Z: 1}
	e := Elements{AltitudeKm: 550, InclinationDeg: 0}
	p := mustProp(t, e, Options{})
	if f := p.EclipseFraction(sun, 5); f != 0 {
		t.Fatalf("face-on orbit eclipse fraction = %v, want 0", f)
	}
}

func TestInShadowGeometry(t *testing.T) {
	sun := geo.Vec3{X: 1}
	e := Elements{AltitudeKm: 550, InclinationDeg: 0, ArgLatDeg: 180}
	p := mustProp(t, e, Options{})
	// ArgLat 180 with RAAN 0 puts the satellite at -X: directly anti-solar,
	// inside the shadow cylinder.
	if !p.InShadowAt(0, sun) {
		t.Fatal("satellite at anti-solar point should be in shadow")
	}
	// ArgLat 0 puts it at +X: sunlit.
	e2 := Elements{AltitudeKm: 550, InclinationDeg: 0, ArgLatDeg: 0}
	p2 := mustProp(t, e2, Options{})
	if p2.InShadowAt(0, sun) {
		t.Fatal("satellite at sub-solar point should be sunlit")
	}
}

func TestPropertyRadiusInvariant(t *testing.T) {
	f := func(altSeed, incSeed, raanSeed, argSeed, tSeed float64) bool {
		alt := 300 + math.Mod(math.Abs(altSeed), 1700)
		inc := math.Mod(math.Abs(incSeed), 180)
		raan := math.Mod(math.Abs(raanSeed), 360)
		arg := math.Mod(math.Abs(argSeed), 360)
		tt := math.Mod(math.Abs(tSeed), 1e5)
		if math.IsNaN(alt + inc + raan + arg + tt) {
			return true
		}
		p, err := NewPropagator(Elements{AltitudeKm: alt, InclinationDeg: inc, RAANDeg: raan, ArgLatDeg: arg}, Options{J2: true})
		if err != nil {
			return false
		}
		want := units.EarthRadiusKm + alt
		return almostEq(p.ECEFAt(tt).Norm(), want, 1e-6*want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElementsAccessors(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 10, ArgLatDeg: 20}
	p := mustProp(t, e, Options{})
	if p.Elements() != e {
		t.Fatalf("Elements() = %+v, want %+v", p.Elements(), e)
	}
	if !almostEq(e.SemiMajorAxisKm(), units.EarthRadiusKm+550, 1e-9) {
		t.Fatal("SemiMajorAxisKm mismatch")
	}
	if !almostEq(e.MeanMotionRadS(), 2*math.Pi/e.PeriodSec(), 1e-15) {
		t.Fatal("MeanMotionRadS mismatch")
	}
}

func TestManySatellitesDistinctPositions(t *testing.T) {
	// Two satellites with different phases never coincide.
	r := rand.New(rand.NewSource(7))
	base := Elements{AltitudeKm: 550, InclinationDeg: 53}
	for i := 0; i < 50; i++ {
		a, b := base, base
		a.ArgLatDeg = r.Float64() * 360
		b.ArgLatDeg = a.ArgLatDeg + 10 + r.Float64()*340
		pa := mustProp(t, a, Options{})
		pb := mustProp(t, b, Options{})
		if pa.ECIAt(0).Distance(pb.ECIAt(0)) < 100 {
			t.Fatalf("satellites too close: args %v vs %v", a.ArgLatDeg, b.ArgLatDeg)
		}
	}
}

func TestECIVelocityAnalytic(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 40, ArgLatDeg: 10}
	p := mustProp(t, e, Options{})
	for _, tt := range []float64{0, 100, 2500} {
		v := p.ECIVelocityAt(tt)
		// Speed equals the circular orbital velocity.
		if !almostEq(v.Norm(), e.VelocityKmS(), 1e-9) {
			t.Fatalf("speed %v, want %v", v.Norm(), e.VelocityKmS())
		}
		// Velocity is perpendicular to the radius (circular orbit).
		r := p.ECIAt(tt)
		if math.Abs(v.Dot(r)) > 1e-6 {
			t.Fatalf("velocity not tangential at t=%v: v·r=%v", tt, v.Dot(r))
		}
		// Matches the numeric derivative.
		h := 0.01
		num := p.ECIAt(tt + h).Sub(p.ECIAt(tt - h)).Scale(1 / (2 * h))
		if num.Sub(v).Norm() > 1e-3 {
			t.Fatalf("numeric/analytic velocity mismatch: %v vs %v", num, v)
		}
	}
}

func TestECEFVelocityNumeric(t *testing.T) {
	e := Elements{AltitudeKm: 1110, InclinationDeg: 53.8, RAANDeg: 77, ArgLatDeg: 200}
	p := mustProp(t, e, Options{})
	for _, tt := range []float64{0, 333, 5000} {
		v := p.ECEFVelocityAt(tt)
		h := 0.01
		num := p.ECEFAt(tt + h).Sub(p.ECEFAt(tt - h)).Scale(1 / (2 * h))
		if num.Sub(v).Norm() > 1e-3 {
			t.Fatalf("t=%v: ECEF velocity %v vs numeric %v", tt, v, num)
		}
	}
}

func TestECEFSpeedBelowECISpeed(t *testing.T) {
	// A prograde equatorial orbit moves with the Earth's rotation: its
	// ground-relative speed is lower than its inertial speed.
	e := Elements{AltitudeKm: 550, InclinationDeg: 0}
	p := mustProp(t, e, Options{})
	if p.ECEFVelocityAt(0).Norm() >= p.ECIVelocityAt(0).Norm() {
		t.Fatal("prograde equatorial ECEF speed should be below ECI speed")
	}
}
