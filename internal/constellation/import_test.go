package constellation

import (
	"math"
	"strings"
	"testing"

	"repro/internal/orbit"
	"repro/internal/tle"
)

func TestTLERoundTrip(t *testing.T) {
	// Export the Kuiper preset as TLEs, re-import, and check the imported
	// constellation matches satellite-for-satellite in position.
	orig, err := Kuiper(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tles := orig.ExportTLEs(90000, 20, 310.5)
	if len(tles) != orig.Size() {
		t.Fatalf("exported %d TLEs for %d satellites", len(tles), orig.Size())
	}
	// Every exported TLE encodes and decodes cleanly.
	for i, tt := range tles[:50] {
		dec, err := tle.Decode(tt.Encode(), true)
		if err != nil {
			t.Fatalf("TLE %d: %v", i, err)
		}
		if dec.CatalogNumber != 90000+i {
			t.Fatalf("TLE %d catalog = %d", i, dec.CatalogNumber)
		}
	}

	imp, err := FromTLEs("kuiper-import", tles, 35, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if imp.Size() != orig.Size() {
		t.Fatalf("imported %d, want %d", imp.Size(), orig.Size())
	}
	// Three altitude/inclination groups → three synthetic shells.
	if len(imp.Shells) != 3 {
		t.Fatalf("imported %d shells, want 3", len(imp.Shells))
	}
	for _, sh := range imp.Shells {
		if !strings.HasPrefix(sh.Name, "import-") {
			t.Fatalf("shell name %q", sh.Name)
		}
		if sh.MinElevationDeg != 35 {
			t.Fatalf("shell mask %v", sh.MinElevationDeg)
		}
	}
	// Positions agree with the originals to within TLE encoding precision.
	// Satellite order differs (grouped by shell), so match by best
	// distance over a sample.
	snapO := orig.Snapshot(0)
	snapI := imp.Snapshot(0)
	for i := 0; i < len(snapO); i += 97 {
		best := math.Inf(1)
		for j := range snapI {
			if d := snapO[i].Distance(snapI[j]); d < best {
				best = d
			}
		}
		// 4 decimal degrees of angle at ~7000 km radius ≈ 1.2 km; allow
		// a few km for compounding.
		if best > 10 {
			t.Fatalf("original sat %d has no imported counterpart within 10 km (best %v)", i, best)
		}
	}
}

func TestFromTLEsValidation(t *testing.T) {
	if _, err := FromTLEs("x", nil, 25, Config{}); err == nil {
		t.Fatal("empty catalog accepted")
	}
	good := tle.FromElements("A", 1, mustElements(550, 53), 20, 1)
	if _, err := FromTLEs("x", []tle.TLE{good}, 95, Config{}); err == nil {
		t.Fatal("bad elevation accepted")
	}
	// A TLE decoding to an unusable orbit (mean motion → negative altitude).
	bad := good
	bad.MeanMotionRevPerDay = 30 // implies an orbit inside the Earth
	if _, err := FromTLEs("x", []tle.TLE{bad}, 25, Config{}); err == nil {
		t.Fatal("subterranean orbit accepted")
	}
}

func TestFromTLEsGrouping(t *testing.T) {
	var tles []tle.TLE
	// Two shells: 550/53 and 1110/53.8, five satellites each.
	for i := 0; i < 5; i++ {
		tles = append(tles, tle.FromElements("low", i, mustElements(550, 53), 20, 1))
		tles = append(tles, tle.FromElements("high", 100+i, mustElements(1110, 53.8), 20, 1))
	}
	c, err := FromTLEs("two-shell", tles, 25, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Shells) != 2 {
		t.Fatalf("shells = %d, want 2", len(c.Shells))
	}
	// Shells sorted by altitude.
	if c.Shells[0].AltitudeKm > c.Shells[1].AltitudeKm {
		t.Fatal("shells not sorted by altitude")
	}
	if c.Shells[0].Count() != 5 || c.Shells[1].Count() != 5 {
		t.Fatalf("shell sizes %d/%d", c.Shells[0].Count(), c.Shells[1].Count())
	}
	// IDs dense and shell indices consistent.
	for i, s := range c.Satellites {
		if s.ID != i {
			t.Fatalf("sat %d has ID %d", i, s.ID)
		}
	}
}

func mustElements(alt, inc float64) orbit.Elements {
	return orbit.Elements{AltitudeKm: alt, InclinationDeg: inc}
}
