package constellation

// Preset shell parameters, taken from the FCC filings the paper relies on.
// Phase factors are not public; we use small fixed offsets, which shifts
// individual satellites but not the latitude-aggregated statistics the paper
// reports (see DESIGN.md §5.3).

// StarlinkPhase1Shells returns the five shells of SpaceX's Starlink Phase I
// filing: 4,409 satellites in total. The 550 km shell uses the 25° elevation
// mask from the 2019 modification; the higher shells use 40°-class masks in
// the filing, but the paper (like Hypatia) applies a single 25° mask, which
// we follow for shape fidelity.
func StarlinkPhase1Shells() []Shell {
	return []Shell{
		{Name: "starlink-550", AltitudeKm: 550, InclinationDeg: 53.0, Planes: 72, SatsPerPlane: 22, PhaseFactor: 17, MinElevationDeg: 25},
		{Name: "starlink-1110", AltitudeKm: 1110, InclinationDeg: 53.8, Planes: 32, SatsPerPlane: 50, PhaseFactor: 9, MinElevationDeg: 25},
		{Name: "starlink-1130", AltitudeKm: 1130, InclinationDeg: 74.0, Planes: 8, SatsPerPlane: 50, PhaseFactor: 3, MinElevationDeg: 25},
		{Name: "starlink-1275", AltitudeKm: 1275, InclinationDeg: 81.0, Planes: 5, SatsPerPlane: 75, PhaseFactor: 2, MinElevationDeg: 25},
		{Name: "starlink-1325", AltitudeKm: 1325, InclinationDeg: 70.0, Planes: 6, SatsPerPlane: 75, PhaseFactor: 2, MinElevationDeg: 25},
	}
}

// KuiperShells returns the three shells of Amazon's Kuiper filing: 3,236
// satellites, 35° elevation mask, no service above ~60° latitude (the paper
// notes "Kuiper's design does not provide service beyond 60° latitude" —
// that falls out of the 51.9° maximum inclination plus the mask).
func KuiperShells() []Shell {
	return []Shell{
		{Name: "kuiper-630", AltitudeKm: 630, InclinationDeg: 51.9, Planes: 34, SatsPerPlane: 34, PhaseFactor: 1, MinElevationDeg: 35},
		{Name: "kuiper-610", AltitudeKm: 610, InclinationDeg: 42.0, Planes: 36, SatsPerPlane: 36, PhaseFactor: 1, MinElevationDeg: 35},
		{Name: "kuiper-590", AltitudeKm: 590, InclinationDeg: 33.0, Planes: 28, SatsPerPlane: 28, PhaseFactor: 1, MinElevationDeg: 35},
	}
}

// TelesatShells returns Telesat's two-shell Lightspeed configuration
// (polar + inclined), 1,671 satellites, 10° elevation mask. The paper
// mentions Telesat as the third >1,000-satellite proposal; we include it for
// completeness and extension experiments.
func TelesatShells() []Shell {
	return []Shell{
		{Name: "telesat-polar", AltitudeKm: 1015, InclinationDeg: 98.98, Planes: 27, SatsPerPlane: 13, PhaseFactor: 1, MinElevationDeg: 10},
		{Name: "telesat-inclined", AltitudeKm: 1325, InclinationDeg: 50.88, Planes: 40, SatsPerPlane: 33, PhaseFactor: 1, MinElevationDeg: 10},
	}
}

// StarlinkPhase1 builds the Starlink Phase I constellation (4,409 sats).
func StarlinkPhase1(cfg Config) (*Constellation, error) {
	return Build("Starlink Phase I", StarlinkPhase1Shells(), cfg)
}

// Kuiper builds the Kuiper constellation (3,236 sats).
func Kuiper(cfg Config) (*Constellation, error) {
	return Build("Kuiper", KuiperShells(), cfg)
}

// Telesat builds the Telesat constellation (1,671 sats).
func Telesat(cfg Config) (*Constellation, error) {
	return Build("Telesat", TelesatShells(), cfg)
}
