package constellation

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/orbit"
	"repro/internal/tle"
)

// FromTLEs builds a constellation from a parsed TLE catalog, grouping
// satellites into synthetic shells by (altitude, inclination). The result
// is fully usable for visibility, latency, and coverage analysis.
//
// Caveat: real plane/slot assignments are not recoverable from a TLE
// catalog, so each synthetic shell is modelled as a single plane holding
// all its satellites. A +grid built over an imported constellation
// therefore wires one ring per shell rather than the operator's actual
// cross-plane topology — use the Walker presets when ISL routing fidelity
// matters.
func FromTLEs(name string, tles []tle.TLE, minElevationDeg float64, cfg Config) (*Constellation, error) {
	if len(tles) == 0 {
		return nil, fmt.Errorf("constellation: empty TLE catalog")
	}
	if minElevationDeg < 0 || minElevationDeg >= 90 {
		return nil, fmt.Errorf("constellation: min elevation %v outside [0,90)", minElevationDeg)
	}

	type key struct {
		altBucket int // 10 km buckets
		incBucket int // 0.5° buckets
	}
	groups := make(map[key][]orbit.Elements)
	var order []key
	for i, t := range tles {
		e := t.Elements()
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("constellation: TLE %d (%s): %w", i, t.Name, err)
		}
		k := key{
			altBucket: int(math.Round(e.AltitudeKm / 10)),
			incBucket: int(math.Round(e.InclinationDeg * 2)),
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	// Deterministic shell order: by altitude then inclination.
	sort.Slice(order, func(i, j int) bool {
		if order[i].altBucket != order[j].altBucket {
			return order[i].altBucket < order[j].altBucket
		}
		return order[i].incBucket < order[j].incBucket
	})

	c := &Constellation{Name: name}
	id := 0
	for si, k := range order {
		members := groups[k]
		// Representative altitude/inclination: the group mean.
		var altSum, incSum float64
		for _, e := range members {
			altSum += e.AltitudeKm
			incSum += e.InclinationDeg
		}
		sh := Shell{
			Name:            fmt.Sprintf("import-%04.0fkm-%04.1fdeg", altSum/float64(len(members)), incSum/float64(len(members))),
			AltitudeKm:      altSum / float64(len(members)),
			InclinationDeg:  incSum / float64(len(members)),
			Planes:          1,
			SatsPerPlane:    len(members),
			MinElevationDeg: minElevationDeg,
		}
		c.Shells = append(c.Shells, sh)
		for slot, e := range members {
			prop, err := orbit.NewPropagator(e, cfg.Orbit)
			if err != nil {
				return nil, fmt.Errorf("constellation: shell %q member %d: %w", sh.Name, slot, err)
			}
			c.Satellites = append(c.Satellites, Satellite{
				ID:         id,
				ShellIndex: si,
				Plane:      0,
				Slot:       slot,
				Prop:       prop,
			})
			id++
		}
	}
	return c, nil
}

// ExportTLEs renders the constellation as a TLE catalog with sequential
// catalog numbers starting at firstCatalog.
func (c *Constellation) ExportTLEs(firstCatalog, epochYear int, epochDay float64) []tle.TLE {
	out := make([]tle.TLE, 0, c.Size())
	for _, s := range c.Satellites {
		out = append(out, tle.FromElements(s.Name(c.Shells), firstCatalog+s.ID, s.Prop.Elements(), epochYear, epochDay))
	}
	return out
}
