// Package constellation builds LEO mega-constellations out of Walker-delta
// shells and provides the published Starlink, Kuiper, and Telesat
// configurations that the paper evaluates.
package constellation

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/orbit"
	"repro/internal/units"
)

// Shell is one Walker-delta shell: Planes orbital planes spread evenly over
// 360° of RAAN, each with SatsPerPlane satellites spread evenly in argument
// of latitude, all at the same altitude and inclination.
type Shell struct {
	// Name labels the shell in diagnostics ("starlink-550", ...).
	Name string
	// AltitudeKm is the shell altitude above the surface.
	AltitudeKm float64
	// InclinationDeg is the orbital inclination of every plane.
	InclinationDeg float64
	// Planes is the number of orbital planes.
	Planes int
	// SatsPerPlane is the number of satellites per plane.
	SatsPerPlane int
	// PhaseFactor is the Walker phasing parameter F in [0, Planes): satellite
	// k of plane p is offset by p·F·360/(Planes·SatsPerPlane) degrees of
	// argument of latitude relative to plane 0.
	PhaseFactor int
	// MinElevationDeg is the minimum elevation angle at which a ground
	// terminal can communicate with satellites of this shell, per the
	// operator's filing.
	MinElevationDeg float64
}

// Count returns the number of satellites in the shell.
func (s Shell) Count() int { return s.Planes * s.SatsPerPlane }

// Validate reports whether the shell parameters are usable.
func (s Shell) Validate() error {
	if s.Planes <= 0 || s.SatsPerPlane <= 0 {
		return fmt.Errorf("constellation: shell %q needs positive planes (%d) and sats/plane (%d)",
			s.Name, s.Planes, s.SatsPerPlane)
	}
	if s.AltitudeKm <= 0 {
		return fmt.Errorf("constellation: shell %q altitude %.1f km must be positive", s.Name, s.AltitudeKm)
	}
	if s.MinElevationDeg < 0 || s.MinElevationDeg >= 90 {
		return fmt.Errorf("constellation: shell %q min elevation %.1f° outside [0,90)", s.Name, s.MinElevationDeg)
	}
	return nil
}

// Satellite is one satellite of a built constellation.
type Satellite struct {
	// ID is the index of the satellite within its constellation, dense from 0.
	ID int
	// ShellIndex identifies the shell the satellite belongs to.
	ShellIndex int
	// Plane is the orbital plane index within the shell.
	Plane int
	// Slot is the satellite index within the plane.
	Slot int
	// Prop propagates the satellite's position.
	Prop *orbit.Propagator
}

// Name returns a stable human-readable identifier such as
// "starlink-550/p12s03".
func (s Satellite) Name(shells []Shell) string {
	shell := "?"
	if s.ShellIndex >= 0 && s.ShellIndex < len(shells) {
		shell = shells[s.ShellIndex].Name
	}
	return fmt.Sprintf("%s/p%02ds%02d", shell, s.Plane, s.Slot)
}

// Constellation is a named collection of shells with all satellites built.
type Constellation struct {
	// Name of the constellation ("Starlink Phase I", ...).
	Name string
	// Shells in the constellation, in construction order.
	Shells []Shell
	// Satellites across all shells, IDs dense from 0.
	Satellites []Satellite
}

// Config controls constellation construction.
type Config struct {
	// Orbit selects propagation fidelity for every satellite.
	Orbit orbit.Options
}

// Build constructs a constellation from shells.
func Build(name string, shells []Shell, cfg Config) (*Constellation, error) {
	c := &Constellation{Name: name, Shells: shells}
	id := 0
	for si, sh := range shells {
		if err := sh.Validate(); err != nil {
			return nil, err
		}
		raanStep := 360.0 / float64(sh.Planes)
		slotStep := 360.0 / float64(sh.SatsPerPlane)
		phaseStep := float64(sh.PhaseFactor) * 360.0 / float64(sh.Planes*sh.SatsPerPlane)
		for p := 0; p < sh.Planes; p++ {
			for k := 0; k < sh.SatsPerPlane; k++ {
				e := orbit.Elements{
					AltitudeKm:     sh.AltitudeKm,
					InclinationDeg: sh.InclinationDeg,
					RAANDeg:        units.WrapDegrees(float64(p) * raanStep),
					ArgLatDeg:      units.WrapDegrees(float64(k)*slotStep + float64(p)*phaseStep),
				}
				prop, err := orbit.NewPropagator(e, cfg.Orbit)
				if err != nil {
					return nil, fmt.Errorf("constellation %q shell %q: %w", name, sh.Name, err)
				}
				c.Satellites = append(c.Satellites, Satellite{
					ID:         id,
					ShellIndex: si,
					Plane:      p,
					Slot:       k,
					Prop:       prop,
				})
				id++
			}
		}
	}
	return c, nil
}

// Size returns the total number of satellites.
func (c *Constellation) Size() int { return len(c.Satellites) }

// MinElevationDeg returns the elevation mask for the given satellite,
// taken from its shell.
func (c *Constellation) MinElevationDeg(satID int) float64 {
	return c.Shells[c.Satellites[satID].ShellIndex].MinElevationDeg
}

// Snapshot returns the ECEF position of every satellite at t seconds after
// epoch, indexed by satellite ID. The slice is freshly allocated.
func (c *Constellation) Snapshot(tSec float64) []geo.Vec3 {
	out := make([]geo.Vec3, len(c.Satellites))
	for i, s := range c.Satellites {
		out[i] = s.Prop.ECEFAt(tSec)
	}
	return out
}

// SnapshotInto fills dst (which must have length Size()) with ECEF positions
// at t seconds after epoch, avoiding allocation in sweeps. A wrong-sized
// dst panics immediately with a descriptive message rather than an
// index-out-of-range deep in the loop (or, worse, silently filling a
// prefix when dst is too long).
func (c *Constellation) SnapshotInto(tSec float64, dst []geo.Vec3) {
	if len(dst) != len(c.Satellites) {
		panic(fmt.Sprintf("constellation: SnapshotInto dst length %d, want %d satellites (%s)",
			len(dst), len(c.Satellites), c.Name))
	}
	for i, s := range c.Satellites {
		dst[i] = s.Prop.ECEFAt(tSec)
	}
}

// MaxAltitudeKm returns the highest shell altitude, useful for sizing
// worst-case slant ranges.
func (c *Constellation) MaxAltitudeKm() float64 {
	maxAlt := 0.0
	for _, sh := range c.Shells {
		if sh.AltitudeKm > maxAlt {
			maxAlt = sh.AltitudeKm
		}
	}
	return maxAlt
}
