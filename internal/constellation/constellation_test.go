package constellation

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/units"
)

func build(t *testing.T, name string, shells []Shell) *Constellation {
	t.Helper()
	c, err := Build(name, shells, Config{})
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return c
}

func TestPresetSizes(t *testing.T) {
	tests := []struct {
		name  string
		build func(Config) (*Constellation, error)
		want  int
	}{
		// The paper: Starlink Phase I comprises 4,409 satellites.
		{"starlink-p1", StarlinkPhase1, 4409},
		// Kuiper's FCC filing: 3,236 satellites.
		{"kuiper", Kuiper, 3236},
		// Telesat: 1,671.
		{"telesat", Telesat, 1671},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build(Config{})
			if err != nil {
				t.Fatal(err)
			}
			if c.Size() != tc.want {
				t.Fatalf("Size() = %d, want %d", c.Size(), tc.want)
			}
			if len(c.Satellites) != tc.want {
				t.Fatalf("len(Satellites) = %d, want %d", len(c.Satellites), tc.want)
			}
		})
	}
}

func TestShellValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Shell
		wantErr bool
	}{
		{"good", Shell{Name: "x", AltitudeKm: 550, InclinationDeg: 53, Planes: 10, SatsPerPlane: 10, MinElevationDeg: 25}, false},
		{"no-planes", Shell{Name: "x", AltitudeKm: 550, Planes: 0, SatsPerPlane: 10}, true},
		{"no-sats", Shell{Name: "x", AltitudeKm: 550, Planes: 10, SatsPerPlane: 0}, true},
		{"bad-alt", Shell{Name: "x", AltitudeKm: -1, Planes: 10, SatsPerPlane: 10}, true},
		{"bad-elev", Shell{Name: "x", AltitudeKm: 550, Planes: 10, SatsPerPlane: 10, MinElevationDeg: 95}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestBuildRejectsBadShell(t *testing.T) {
	if _, err := Build("bad", []Shell{{Name: "x", AltitudeKm: 550, Planes: 0, SatsPerPlane: 1}}, Config{}); err == nil {
		t.Fatal("Build should reject an invalid shell")
	}
}

func TestIDsDenseAndOrdered(t *testing.T) {
	c := build(t, "t", []Shell{
		{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 3, SatsPerPlane: 4, MinElevationDeg: 25},
		{Name: "b", AltitudeKm: 1110, InclinationDeg: 53.8, Planes: 2, SatsPerPlane: 5, MinElevationDeg: 25},
	})
	if c.Size() != 3*4+2*5 {
		t.Fatalf("Size = %d", c.Size())
	}
	for i, s := range c.Satellites {
		if s.ID != i {
			t.Fatalf("satellite %d has ID %d", i, s.ID)
		}
	}
	// First shell occupies IDs 0..11, second 12..21.
	if c.Satellites[11].ShellIndex != 0 || c.Satellites[12].ShellIndex != 1 {
		t.Fatal("shell boundaries wrong")
	}
}

func TestWalkerSpacingWithinPlane(t *testing.T) {
	c := build(t, "t", []Shell{
		{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 4, SatsPerPlane: 8, MinElevationDeg: 25},
	})
	// Satellites in one plane are separated by equal central angles of
	// 360/8 = 45°, i.e. equal chord distances.
	snap := c.Snapshot(0)
	r := units.EarthRadiusKm + 550
	wantChord := 2 * r * math.Sin(units.Deg2Rad(45)/2)
	for k := 0; k < 8; k++ {
		a := snap[k]
		b := snap[(k+1)%8]
		if math.Abs(a.Distance(b)-wantChord) > 1e-6 {
			t.Fatalf("in-plane neighbour chord = %v, want %v", a.Distance(b), wantChord)
		}
	}
}

func TestWalkerPlanesEvenRAAN(t *testing.T) {
	sh := Shell{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 5, SatsPerPlane: 3, MinElevationDeg: 25}
	c := build(t, "t", []Shell{sh})
	for _, s := range c.Satellites {
		wantRAAN := units.WrapDegrees(float64(s.Plane) * 360 / 5)
		if got := s.Prop.Elements().RAANDeg; math.Abs(got-wantRAAN) > 1e-9 {
			t.Fatalf("plane %d RAAN = %v, want %v", s.Plane, got, wantRAAN)
		}
	}
}

func TestPhaseFactorOffsets(t *testing.T) {
	sh := Shell{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 4, SatsPerPlane: 6, PhaseFactor: 2, MinElevationDeg: 25}
	c := build(t, "t", []Shell{sh})
	// Slot 0 of plane p is offset by p * F * 360/(P*S) = p * 2 * 15 = 30p degrees.
	for _, s := range c.Satellites {
		if s.Slot != 0 {
			continue
		}
		want := units.WrapDegrees(float64(s.Plane) * 30)
		if got := s.Prop.Elements().ArgLatDeg; math.Abs(got-want) > 1e-9 {
			t.Fatalf("plane %d slot 0 arg lat = %v, want %v", s.Plane, got, want)
		}
	}
}

func TestSnapshotAltitudes(t *testing.T) {
	c, err := StarlinkPhase1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(1234)
	for id, pos := range snap {
		sh := c.Shells[c.Satellites[id].ShellIndex]
		want := units.EarthRadiusKm + sh.AltitudeKm
		if math.Abs(pos.Norm()-want) > 1e-6 {
			t.Fatalf("sat %d radius %v, want %v", id, pos.Norm(), want)
		}
	}
}

func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	c, err := Kuiper(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Snapshot(777)
	b := make([]geo.Vec3, c.Size())
	c.SnapshotInto(777, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSnapshotIntoWrongLengthPanics(t *testing.T) {
	c, err := Telesat(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, c.Size() - 1, c.Size() + 1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("dst length %d: want panic", n)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "SnapshotInto dst length") {
					t.Fatalf("dst length %d: unhelpful panic %v", n, r)
				}
			}()
			c.SnapshotInto(0, make([]geo.Vec3, n))
		}()
	}
}

func TestMinElevationPerShell(t *testing.T) {
	c, err := StarlinkPhase1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MinElevationDeg(0); got != 25 {
		t.Fatalf("Starlink mask = %v, want 25", got)
	}
	k, err := Kuiper(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := k.MinElevationDeg(0); got != 35 {
		t.Fatalf("Kuiper mask = %v, want 35", got)
	}
}

func TestMaxAltitude(t *testing.T) {
	c, err := StarlinkPhase1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxAltitudeKm(); got != 1325 {
		t.Fatalf("MaxAltitudeKm = %v, want 1325", got)
	}
}

func TestSatelliteName(t *testing.T) {
	c := build(t, "t", []Shell{
		{Name: "starlink-550", AltitudeKm: 550, InclinationDeg: 53, Planes: 2, SatsPerPlane: 2, MinElevationDeg: 25},
	})
	if got := c.Satellites[3].Name(c.Shells); got != "starlink-550/p01s01" {
		t.Fatalf("Name = %q", got)
	}
	bad := Satellite{ShellIndex: 99, Plane: 1, Slot: 2}
	if got := bad.Name(c.Shells); got != "?/p01s02" {
		t.Fatalf("Name with bad shell = %q", got)
	}
}

func TestNoTwoSatellitesCoincide(t *testing.T) {
	// Within a shell, all satellites occupy distinct positions at epoch.
	sh := Shell{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 6, SatsPerPlane: 6, PhaseFactor: 1, MinElevationDeg: 25}
	c := build(t, "t", []Shell{sh})
	snap := c.Snapshot(0)
	for i := 0; i < len(snap); i++ {
		for j := i + 1; j < len(snap); j++ {
			if snap[i].Distance(snap[j]) < 1 {
				t.Fatalf("satellites %d and %d coincide", i, j)
			}
		}
	}
}

func TestPropertyShellCount(t *testing.T) {
	f := func(p, s uint8) bool {
		planes := int(p%20) + 1
		sats := int(s%20) + 1
		sh := Shell{Name: "q", AltitudeKm: 600, InclinationDeg: 50, Planes: planes, SatsPerPlane: sats, MinElevationDeg: 25}
		c, err := Build("q", []Shell{sh}, Config{})
		if err != nil {
			return false
		}
		return c.Size() == planes*sats && sh.Count() == planes*sats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStarlinkShellBreakdown(t *testing.T) {
	// 1584 + 1600 + 400 + 375 + 450 = 4409
	shells := StarlinkPhase1Shells()
	wants := []int{1584, 1600, 400, 375, 450}
	if len(shells) != len(wants) {
		t.Fatalf("got %d shells", len(shells))
	}
	total := 0
	for i, sh := range shells {
		if sh.Count() != wants[i] {
			t.Errorf("shell %s count = %d, want %d", sh.Name, sh.Count(), wants[i])
		}
		total += sh.Count()
	}
	if total != 4409 {
		t.Fatalf("total = %d, want 4409", total)
	}
}
