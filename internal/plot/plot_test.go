package plot

import (
	"strings"
	"testing"
)

func TestSeriesValid(t *testing.T) {
	if (Series{}).Valid() {
		t.Fatal("empty series valid")
	}
	if (Series{X: []float64{1}, Y: []float64{1, 2}}).Valid() {
		t.Fatal("mismatched series valid")
	}
	if !(Series{X: []float64{1}, Y: []float64{2}}).Valid() {
		t.Fatal("good series invalid")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b,
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{0.5, 1.25}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10,0.5000" {
		t.Fatalf("row = %q", lines[1])
	}
	if lines[2] != "2,20,1.2500" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b); err == nil {
		t.Fatal("no series accepted")
	}
	err := WriteCSV(&b,
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{1}, Y: []float64{5}},
	)
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteCSVRagged(t *testing.T) {
	var b strings.Builder
	err := WriteCSVRagged(&b,
		Series{Name: "cdf1", X: []float64{1}, Y: []float64{1}},
		Series{Name: "cdf2", X: []float64{5, 6}, Y: []float64{0.5, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "cdf2,5,0.5000") {
		t.Fatalf("row missing: %q", out)
	}
	if err := WriteCSVRagged(&b, Series{Name: "bad"}); err == nil {
		t.Fatal("invalid series accepted")
	}
}

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), b.String())
	}
	// Columns align: "alpha" is the widest first column.
	if !strings.HasPrefix(lines[2], "alpha  1") {
		t.Fatalf("row = %q", lines[2])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestTableNoHeader(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, nil, [][]string{{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "-") {
		t.Fatal("separator without header")
	}
	// Empty table is a no-op.
	var e strings.Builder
	if err := Table(&e, nil, nil); err != nil || e.Len() != 0 {
		t.Fatal("empty table should write nothing")
	}
}

func TestTableRaggedRows(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"a"}, [][]string{{"1", "2", "3"}, {"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3") {
		t.Fatal("extra columns dropped")
	}
}

func TestASCIIChart(t *testing.T) {
	var b strings.Builder
	err := ASCIIChart(&b, "title", 40, 8,
		Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("glyphs missing")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "+=down") {
		t.Fatal("legend missing")
	}
}

func TestASCIIChartErrors(t *testing.T) {
	var b strings.Builder
	if err := ASCIIChart(&b, "", 5, 2); err == nil {
		t.Fatal("tiny chart accepted")
	}
	if err := ASCIIChart(&b, "", 40, 8); err == nil {
		t.Fatal("no series accepted")
	}
	if err := ASCIIChart(&b, "", 40, 8, Series{Name: "bad", X: []float64{1}}); err == nil {
		t.Fatal("invalid series accepted")
	}
}

func TestASCIIChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	var b strings.Builder
	err := ASCIIChart(&b, "", 40, 8, Series{Name: "flat", X: []float64{1, 1}, Y: []float64{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldMap(t *testing.T) {
	m := NewWorldMap(80, 24)
	m.Plot([]float64{0, 90, -90}, []float64{0, 180, -180}, 'X')
	var b strings.Builder
	if err := m.Render(&b, "map"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "map") || !strings.Contains(out, "X") {
		t.Fatalf("render missing content")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + border + 24 rows + border
	if len(lines) != 27 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Equator/prime-meridian point lands mid-map: row = (90-0)/180 × 23 = 11
	// (truncated), which is line 2+11 after the title and border.
	mid := lines[2+11]
	if !strings.Contains(mid, "X") {
		t.Fatalf("centre point missing from row %q", mid)
	}
}

func TestWorldMapClamping(t *testing.T) {
	m := NewWorldMap(5, 5) // clamps to minimum 20x10
	m.Plot([]float64{200, -200}, []float64{999, -999}, 'Y')
	var b strings.Builder
	if err := m.Render(&b, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Y") {
		t.Fatal("out-of-range points should clamp onto the map")
	}
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(5); got != "5" {
		t.Fatalf("formatNum(5) = %q", got)
	}
	if got := formatNum(5.5); got != "5.5000" {
		t.Fatalf("formatNum(5.5) = %q", got)
	}
}
