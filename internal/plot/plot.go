// Package plot renders experiment output as text: CSV series, aligned
// tables, ASCII line charts, and the ASCII world map used for the paper's
// Fig 5. Keeping rendering in-repo (stdlib only) means every figure can be
// regenerated without external tooling.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named (x, y) data series.
type Series struct {
	Name string
	X, Y []float64
}

// Valid reports whether the series has matching non-empty coordinates.
func (s Series) Valid() bool { return len(s.X) > 0 && len(s.X) == len(s.Y) }

// WriteCSV emits "x,name1,name2,..." rows for series sharing an x-grid. The
// first series defines the grid; others must be the same length.
func WriteCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	n := len(series[0].X)
	header := []string{"x"}
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("plot: series %q length mismatch (%d vs %d)", s.Name, len(s.Y), n)
		}
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := []string{formatNum(series[0].X[i])}
		for _, s := range series {
			row = append(row, formatNum(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVRagged emits each series as its own "name,x,y" rows; series may
// have different x-grids (CDFs usually do).
func WriteCSVRagged(w io.Writer, series ...Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		if !s.Valid() {
			return fmt.Errorf("plot: invalid series %q", s.Name)
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n", s.Name, formatNum(s.X[i]), formatNum(s.Y[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// Table renders rows with aligned columns. header may be nil.
func Table(w io.Writer, header []string, rows [][]string) error {
	all := rows
	if header != nil {
		all = append([][]string{header}, rows...)
	}
	if len(all) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range all {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	write := func(row []string) error {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if header != nil {
		if err := write(header); err != nil {
			return err
		}
		var sep []string
		for _, wd := range widths[:len(header)] {
			sep = append(sep, strings.Repeat("-", wd))
		}
		if err := write(sep); err != nil {
			return err
		}
	}
	for _, row := range rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders series as a width×height character chart with simple
// axes. Series are drawn with distinct glyphs in order: '*', '+', 'o', 'x'.
func ASCIIChart(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("plot: chart too small (%dx%d)", width, height)
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		if !s.Valid() {
			return fmt.Errorf("plot: invalid series %q", s.Name)
		}
		any = true
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return fmt.Errorf("plot: no series")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = g
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for ri, row := range grid {
		label := "        "
		switch ri {
		case 0:
			label = fmt.Sprintf("%8.1f", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.1f", minY)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %-10.1f%*s%10.1f\n", "", minX, width-20, "", maxX); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintln(w, "          "+strings.Join(legend, "  "))
	return err
}

// WorldMap renders points on an equirectangular ASCII map (Fig 5 style).
// Layers are drawn in order, later layers overwrite earlier ones.
type WorldMap struct {
	width, height int
	grid          [][]byte
}

// NewWorldMap creates a map of the given character dimensions.
func NewWorldMap(width, height int) *WorldMap {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	m := &WorldMap{width: width, height: height, grid: make([][]byte, height)}
	for r := range m.grid {
		m.grid[r] = []byte(strings.Repeat(".", width))
	}
	return m
}

// Plot marks each (lat, lon) point with glyph.
func (m *WorldMap) Plot(lats, lons []float64, glyph byte) {
	for i := range lats {
		col := int((lons[i] + 180) / 360 * float64(m.width-1))
		row := int((90 - lats[i]) / 180 * float64(m.height-1))
		if col < 0 {
			col = 0
		}
		if col >= m.width {
			col = m.width - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= m.height {
			row = m.height - 1
		}
		m.grid[row][col] = glyph
	}
}

// Render writes the map with a simple frame.
func (m *WorldMap) Render(w io.Writer, title string) error {
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	border := "+" + strings.Repeat("-", m.width) + "+"
	if _, err := fmt.Fprintln(w, border); err != nil {
		return err
	}
	for _, row := range m.grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, border)
	return err
}
