package ephem

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// Interpolated fills dst (length Size()) with positions at t interpolated
// between the two keyframes bracketing t on the GridStepSec grid. Exact
// grid instants are copied from the keyframe (bit-identical to
// SnapshotAt); off-grid instants use the configured Mode:
//
//   - Hermite evaluates a cubic through both keyframes' positions and
//     velocities. For a circular orbit the error is O((ωh)⁴) — metres at
//     the default 60 s grid (see MeasureError for the empirical bound).
//   - Linear draws the chord between the keyframe positions. The chord of
//     a circular arc sags by r(ωh)²/8 — kilometres at a 60 s grid.
//
// Interpolation replaces per-satellite trigonometry with a handful of
// fused multiply-adds, so dense sub-step sweeps cost a fraction of exact
// propagation once the bracketing keyframes are cached.
func (e *Engine) Interpolated(t float64, dst []geo.Vec3) error {
	if len(dst) != e.c.Size() {
		return fmt.Errorf("ephem: Interpolated dst length %d, want %d satellites", len(dst), e.c.Size())
	}
	h := e.cfg.GridStepSec
	t0 := math.Floor(t/h) * h
	if t0 == t {
		return e.SnapshotInto(t, dst)
	}
	t1 := t0 + h
	s := (t - t0) / h

	f0 := e.keyframe(t0)
	f1 := e.keyframe(t1)
	e.mu.Lock()
	e.interpolations++
	e.mu.Unlock()
	e.m.interpolations.Inc()

	if e.cfg.Interp == Linear {
		e.parallelFor(len(dst), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dst[i] = f0.pos[i].Add(f1.pos[i].Sub(f0.pos[i]).Scale(s))
			}
		})
		return nil
	}

	e.ensureVel(f0)
	e.ensureVel(f1)
	// Cubic Hermite basis on s ∈ (0,1); velocity terms scale by h because
	// the basis is expressed in normalised time.
	s2, s3 := s*s, s*s*s
	h00 := 2*s3 - 3*s2 + 1
	h10 := (s3 - 2*s2 + s) * h
	h01 := -2*s3 + 3*s2
	h11 := (s3 - s2) * h
	e.parallelFor(len(dst), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := f0.pos[i].Scale(h00)
			p = p.Add(f0.vel[i].Scale(h10))
			p = p.Add(f1.pos[i].Scale(h01))
			p = p.Add(f1.vel[i].Scale(h11))
			dst[i] = p
		}
	})
	return nil
}

// keyframe returns the cached frame at exact grid instant t, propagating
// on a miss.
func (e *Engine) keyframe(t float64) *frame {
	e.mu.Lock()
	if f := e.lookup(t); f != nil {
		e.hits++
		e.mu.Unlock()
		e.m.hits.Inc()
		return f
	}
	e.misses++
	e.mu.Unlock()
	e.m.misses.Inc()

	pos := make([]geo.Vec3, e.c.Size())
	e.propagate(t, pos)
	e.mu.Lock()
	f := e.insert(&frame{t: t, pos: pos})
	e.mu.Unlock()
	return f
}

// ensureVel fills f.vel on first use. Racing fills compute identical
// values, so whichever publication wins is correct.
func (e *Engine) ensureVel(f *frame) {
	e.mu.Lock()
	have := f.vel != nil
	e.mu.Unlock()
	if have {
		return
	}
	vel := make([]geo.Vec3, e.c.Size())
	e.velocities(f.t, vel)
	e.mu.Lock()
	if f.vel == nil {
		f.vel = vel
	}
	e.mu.Unlock()
}

// MeasureError empirically bounds the interpolation error of the engine's
// configured mode and grid: it samples `samples` instants uniformly inside
// [t0, t0+spanSec), compares Interpolated against exact propagation, and
// returns the maximum satellite position error in kilometres. Used by the
// tests to pin the documented error bounds and available to callers that
// want to budget interpolation against their latency tolerance.
func (e *Engine) MeasureError(t0, spanSec float64, samples int) (maxKm float64, err error) {
	if samples <= 0 || spanSec <= 0 {
		return 0, fmt.Errorf("ephem: MeasureError needs positive samples (%d) and span (%g)", samples, spanSec)
	}
	interp := make([]geo.Vec3, e.c.Size())
	exact := make([]geo.Vec3, e.c.Size())
	for k := 0; k < samples; k++ {
		// Deterministic low-discrepancy offsets; avoid exact grid points,
		// where interpolation is exact by construction.
		t := t0 + spanSec*(float64(k)+0.382)/float64(samples)
		if err := e.Interpolated(t, interp); err != nil {
			return 0, err
		}
		e.propagate(t, exact)
		for i := range exact {
			if d := interp[i].Sub(exact[i]).Norm(); d > maxKm {
				maxKm = d
			}
		}
	}
	return maxKm, nil
}
