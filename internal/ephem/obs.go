package ephem

import "repro/internal/obs"

// Metric families the engine maintains. Registered on the configured
// registry (obs.Default() unless overridden); several engines on one
// registry share families, so counters aggregate — use Engine.Stats for
// per-engine numbers.
type metricsSet struct {
	hits           *obs.Counter   // ephem_cache_hits_total
	misses         *obs.Counter   // ephem_cache_misses_total
	propagated     *obs.Counter   // ephem_propagated_satellites_total
	interpolations *obs.Counter   // ephem_interpolations_total
	frames         *obs.Gauge     // ephem_cache_frames
	propagateSec   *obs.Histogram // ephem_propagate_seconds
	propagateQ     *obs.Quantile  // ephem_propagate_ms — cache-miss batch latency
}

// One full-constellation batch is hundreds of µs serial, tens of µs when
// fanned out; sub-µs buckets catch degenerate tiny constellations.
var propagateBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2}

func newMetrics(reg *obs.Registry) *metricsSet {
	return &metricsSet{
		hits: reg.Counter("ephem_cache_hits_total",
			"Snapshot requests served from the keyframe cache."),
		misses: reg.Counter("ephem_cache_misses_total",
			"Snapshot requests that had to propagate the constellation."),
		propagated: reg.Counter("ephem_propagated_satellites_total",
			"Individual satellite position/velocity propagations performed."),
		interpolations: reg.Counter("ephem_interpolations_total",
			"Sub-step snapshot requests served by keyframe interpolation."),
		frames: reg.Gauge("ephem_cache_frames",
			"Full-constellation frames currently held across cache tiers."),
		propagateSec: reg.Histogram("ephem_propagate_seconds",
			"Wall-clock time of one full-constellation propagation batch.", propagateBuckets),
		propagateQ: reg.Quantile("ephem_propagate_ms",
			"Streaming quantile of cache-miss propagation-batch latency in ms."),
	}
}
