package ephem_test

// The ephemeris engine benchmark harness. External test package so the
// fleet benchmark can import repro/internal/fleet without a cycle
// (fleet depends on ephem).
//
// Speedup metrics use manual timing over a fixed number of internal
// repetitions so the numbers stay meaningful at -benchtime=1x, the CI
// smoke setting; serial and parallel paths are cross-checked bit-for-bit
// via a frame checksum. Results feed BENCH_ephem.json through the
// cmd/figures -benchjson pipeline.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/geo"
)

var (
	starlinkOnce sync.Once
	starlinkC    *constellation.Constellation
	telesatOnce  sync.Once
	telesatC     *constellation.Constellation
)

func starlink(b *testing.B) *constellation.Constellation {
	b.Helper()
	starlinkOnce.Do(func() {
		c, err := constellation.StarlinkPhase1(constellation.Config{})
		if err != nil {
			b.Fatal(err)
		}
		starlinkC = c
	})
	return starlinkC
}

func telesat(b *testing.B) *constellation.Constellation {
	b.Helper()
	telesatOnce.Do(func() {
		c, err := constellation.Telesat(constellation.Config{})
		if err != nil {
			b.Fatal(err)
		}
		telesatC = c
	})
	return telesatC
}

// checksum folds a frame into one float so the compiler cannot elide
// propagation and so two code paths can be compared bit-for-bit.
func checksum(snap []geo.Vec3) float64 {
	s := 0.0
	for _, v := range snap {
		s += v.X + v.Y + v.Z
	}
	return s
}

// frameReps is the fixed internal repetition count behind each manual
// timing; distinct instants per rep keep every propagation real work.
const frameReps = 4

// BenchmarkSnapshotSerial is the baseline: direct per-satellite propagation
// of one full Starlink frame with no engine at all.
func BenchmarkSnapshotSerial(b *testing.B) {
	c := starlink(b)
	dst := make([]geo.Vec3, c.Size())
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SnapshotInto(float64(i), dst)
		sink = checksum(dst)
	}
	b.ReportMetric(float64(c.Size()), "sats")
	_ = sink
}

// BenchmarkSnapshotParallel compares one-worker and GOMAXPROCS propagation
// through the engine with caching disabled, asserting the frames are
// bit-identical. On a 1-CPU runner the speedup is necessarily ~1x; the
// metric records whatever the hardware delivers.
func BenchmarkSnapshotParallel(b *testing.B) {
	c := starlink(b)
	serial := ephem.New(c, ephem.Config{Workers: 1, CacheFrames: -1, GridFrames: -1})
	par := ephem.New(c, ephem.Config{CacheFrames: -1, GridFrames: -1})
	dst := make([]geo.Vec3, c.Size())
	var serialNs, parNs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := float64(i * frameReps)
		var csSerial, csPar float64
		t0 := time.Now()
		for r := 0; r < frameReps; r++ {
			if err := serial.SnapshotInto(base+float64(r), dst); err != nil {
				b.Fatal(err)
			}
			csSerial += checksum(dst)
		}
		serialNs += float64(time.Since(t0).Nanoseconds())
		t0 = time.Now()
		for r := 0; r < frameReps; r++ {
			if err := par.SnapshotInto(base+float64(r), dst); err != nil {
				b.Fatal(err)
			}
			csPar += checksum(dst)
		}
		parNs += float64(time.Since(t0).Nanoseconds())
		if csSerial != csPar {
			b.Fatalf("serial and parallel frames diverge: %v vs %v", csSerial, csPar)
		}
	}
	frames := float64(b.N * frameReps)
	b.ReportMetric(serialNs/frames, "serial-ns-per-frame")
	b.ReportMetric(parNs/frames, "parallel-ns-per-frame")
	b.ReportMetric(serialNs/parNs, "parallel-speedup-x")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkSnapshotCached measures the shared-frame hit path against cold
// propagation of the same instants.
func BenchmarkSnapshotCached(b *testing.B) {
	c := starlink(b)
	var coldNs, hitNs float64
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := ephem.New(c, ephem.Config{CacheFrames: frameReps + 1, GridFrames: frameReps + 1})
		t0 := time.Now()
		for r := 0; r < frameReps; r++ {
			sink = checksum(eng.SnapshotAt(float64(r) * 60))
		}
		coldNs += float64(time.Since(t0).Nanoseconds())
		t0 = time.Now()
		for r := 0; r < frameReps; r++ {
			sink = checksum(eng.SnapshotAt(float64(r) * 60))
		}
		hitNs += float64(time.Since(t0).Nanoseconds())
		if s := eng.Stats(); s.Hits != uint64(frameReps) || s.Misses != uint64(frameReps) {
			b.Fatalf("stats %+v, want %d hits / %[2]d misses", s, frameReps)
		}
	}
	_ = sink
	frames := float64(b.N * frameReps)
	b.ReportMetric(coldNs/frames, "cold-ns-per-frame")
	b.ReportMetric(hitNs/frames, "hit-ns-per-frame")
	b.ReportMetric(coldNs/hitNs, "cache-speedup-x")
}

// BenchmarkInterpolated compares exact sub-step propagation against cubic
// Hermite interpolation between warmed keyframes, and records the measured
// worst-case interpolation error over one grid interval.
func BenchmarkInterpolated(b *testing.B) {
	c := starlink(b)
	eng := ephem.New(c, ephem.Config{})
	eng.SnapshotAt(0)
	eng.SnapshotAt(60)
	dst := make([]geo.Vec3, c.Size())
	var exactNs, interpNs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for r := 0; r < frameReps; r++ {
			if err := eng.SnapshotInto(7.3+float64(r)*11, dst); err != nil {
				b.Fatal(err)
			}
		}
		exactNs += float64(time.Since(t0).Nanoseconds())
		t0 = time.Now()
		for r := 0; r < frameReps; r++ {
			if err := eng.Interpolated(7.3+float64(r)*11, dst); err != nil {
				b.Fatal(err)
			}
		}
		interpNs += float64(time.Since(t0).Nanoseconds())
	}
	b.StopTimer()
	maxKm, err := eng.MeasureError(0, 60, 16)
	if err != nil {
		b.Fatal(err)
	}
	frames := float64(b.N * frameReps)
	b.ReportMetric(exactNs/frames, "exact-ns-per-frame")
	b.ReportMetric(interpNs/frames, "interp-ns-per-frame")
	b.ReportMetric(exactNs/interpNs, "interp-speedup-x")
	b.ReportMetric(maxKm, "hermite-max-err-km")
}

// BenchmarkFleetRun2h drives the fleet orchestrator through a simulated
// two-hour Telesat run (120 one-minute epochs, 60 two-user sessions) over
// its private engine and reports the wall clock plus cache occupancy.
func BenchmarkFleetRun2h(b *testing.B) {
	c := telesat(b)
	const (
		epochs   = 120
		sessions = 60
	)
	var frames int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		orch, err := fleet.New(c, nil, fleet.Config{StepSec: 60})
		if err != nil {
			b.Fatal(err)
		}
		for id := uint64(1); id <= sessions; id++ {
			lat := -55 + float64(id*2%110)
			lon := -180 + float64(id*7%360)
			s, err := fleet.NewSession(id, []geo.LatLon{
				{LatDeg: lat, LonDeg: lon},
				{LatDeg: lat + 1, LonDeg: lon + 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := orch.Submit(s); err != nil {
				b.Fatal(err)
			}
		}
		if err := orch.Start(0); err != nil {
			b.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			if _, err := orch.Step(); err != nil {
				b.Fatal(err)
			}
		}
		frames = orch.Ephemeris().Stats().Frames
	}
	b.ReportMetric(epochs, "epochs")
	b.ReportMetric(sessions, "sessions")
	b.ReportMetric(float64(frames), "ephem-frames-live")
}

// BenchmarkFigureSuiteReuse runs the reduced Fig 1 latitude sweep twice:
// the first pass fills the experiments-wide engine pool, the second replays
// it. The reuse speedup is the hardware-independent half of the engine's
// win (the figure binary sees the same effect across its six figures).
func BenchmarkFigureSuiteReuse(b *testing.B) {
	cfg := experiments.LatitudeSweepConfig{
		LatStepDeg:     10,
		SampleEverySec: 600,
		DurationSec:    3600,
	}
	var coldNs, warmNs float64
	hits0 := experiments.EphemStats().Hits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := experiments.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
		coldNs += float64(time.Since(t0).Nanoseconds())
		t0 = time.Now()
		if _, err := experiments.Fig1(cfg); err != nil {
			b.Fatal(err)
		}
		warmNs += float64(time.Since(t0).Nanoseconds())
	}
	b.StopTimer()
	if experiments.EphemStats().Hits == hits0 {
		b.Fatal("second sweep should replay pooled frames")
	}
	b.ReportMetric(coldNs/float64(b.N)/1e6, "cold-ms-per-sweep")
	b.ReportMetric(warmNs/float64(b.N)/1e6, "warm-ms-per-sweep")
	b.ReportMetric(coldNs/warmNs, "reuse-speedup-x")
}
