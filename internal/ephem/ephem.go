// Package ephem is the shared ephemeris engine: the one place that answers
// "where is every satellite at time t" for the whole repository. Every
// consumer that used to call Constellation.Snapshot in its own loop — fleet
// epochs, visibility sweeps, meetup sessions, the figure pipelines — goes
// through an Engine instead, which
//
//   - propagates full-constellation snapshots with a chunked worker pool
//     sized to GOMAXPROCS (a snapshot is embarrassingly parallel: each
//     satellite's position is an independent closed-form evaluation);
//   - keeps a time-keyed keyframe cache so consumers querying the same or
//     nearby instants reuse one propagation instead of repeating it. The
//     cache is two-tier: frames on the keyframe grid (multiples of
//     GridStepSec) live in a protected ring that sequential sweeps cannot
//     flush, all other instants share an LRU pool; and
//   - offers optional Hermite/linear interpolation between grid keyframes
//     for sub-step queries, trading a measured, bounded position error
//     (see interp.go) for a large reduction in trigonometric work.
//
// Frames returned by SnapshotAt are immutable and shared: callers must not
// modify them, and may retain them for as long as they like (eviction only
// drops the engine's reference, never reuses the memory). With
// interpolation off every position is bit-identical to calling
// Prop.ECEFAt directly, so engine-backed pipelines reproduce pre-engine
// outputs byte for byte.
package ephem

import (
	"container/list"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/obs"
)

// Mode selects the interpolation scheme used by Interpolated.
type Mode int

const (
	// Hermite is cubic Hermite interpolation over position + velocity
	// keyframes: O(h⁴) error, metre-scale at the default 60 s grid.
	Hermite Mode = iota
	// Linear is chordal interpolation over position keyframes only:
	// O(h²) error, kilometre-scale at the default 60 s grid.
	Linear
)

func (m Mode) String() string {
	switch m {
	case Hermite:
		return "hermite"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes an Engine. The zero value picks the defaults noted on each
// field.
type Config struct {
	// Workers bounds snapshot propagation parallelism (default GOMAXPROCS).
	// Workers == 1 propagates inline with no goroutine hand-off.
	Workers int
	// CacheFrames is the LRU capacity, in frames, for snapshots at
	// off-grid instants (default 64; negative disables the LRU tier).
	// One Starlink-scale frame is ~105 KiB.
	CacheFrames int
	// GridFrames is the capacity, in frames, of the protected keyframe
	// ring holding snapshots at multiples of GridStepSec (default 64;
	// negative disables the tier). Grid frames are evicted FIFO and only
	// by other grid frames, so a long off-grid sweep cannot flush the
	// keyframes that interpolation and lookahead queries keep returning to.
	GridFrames int
	// GridStepSec is the keyframe grid spacing in seconds (default 60,
	// the meetup/fleet lookahead sampling step).
	GridStepSec float64
	// Interp selects the Interpolated scheme (default Hermite).
	Interp Mode
	// Registry receives the ephem_* metric families (default obs.Default()).
	Registry *obs.Registry
	// Tracer, when set, records one span per propagation batch.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheFrames == 0 {
		c.CacheFrames = 64
	}
	if c.GridFrames == 0 {
		c.GridFrames = 64
	}
	if c.GridStepSec <= 0 {
		c.GridStepSec = 60
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// frame is one cached full-constellation snapshot. pos is immutable once
// published; vel is filled lazily (under the engine lock) the first time a
// Hermite interpolation needs this keyframe.
type frame struct {
	t   float64
	pos []geo.Vec3
	vel []geo.Vec3
}

// Stats is a point-in-time view of one engine's cache behaviour.
type Stats struct {
	// Hits and Misses count cache lookups across SnapshotAt, SnapshotInto,
	// and keyframe fetches.
	Hits, Misses uint64
	// Frames is the number of cached frames currently held (both tiers).
	Frames int
	// PropagatedSats counts individual satellite propagations performed.
	PropagatedSats uint64
	// Interpolations counts Interpolated calls served between keyframes.
	Interpolations uint64
}

// Engine is a shared, parallel, cached ephemeris for one constellation.
// All methods are safe for concurrent use.
type Engine struct {
	c   *constellation.Constellation
	cfg Config
	m   *metricsSet

	mu        sync.Mutex
	misc      map[uint64]*list.Element // Float64bits(t) → *frame element
	lru       *list.List               // misc eviction order, front = most recent
	grid      map[int64]*frame         // grid index → keyframe
	gridOrder []int64                  // grid insertion order (FIFO eviction)

	hits, misses, propagated, interpolations uint64 // guarded by mu
}

// New builds an engine over c. c must be non-nil and already built.
func New(c *constellation.Constellation, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		c:    c,
		cfg:  cfg,
		m:    newMetrics(cfg.Registry),
		misc: make(map[uint64]*list.Element),
		lru:  list.New(),
		grid: make(map[int64]*frame),
	}
}

// Constellation returns the constellation the engine propagates.
func (e *Engine) Constellation() *constellation.Constellation { return e.c }

// Size returns the number of satellites per frame.
func (e *Engine) Size() int { return e.c.Size() }

// GridStepSec returns the keyframe grid spacing.
func (e *Engine) GridStepSec() float64 { return e.cfg.GridStepSec }

// Stats returns this engine's cache counters. Metrics on the configured
// registry aggregate across engines; Stats is always per-engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Hits:           e.hits,
		Misses:         e.misses,
		Frames:         len(e.misc) + len(e.grid),
		PropagatedSats: e.propagated,
		Interpolations: e.interpolations,
	}
}

// gridIndex reports whether t lies exactly on the keyframe grid and, if
// so, its grid index.
func (e *Engine) gridIndex(t float64) (int64, bool) {
	q := t / e.cfg.GridStepSec
	r := math.Round(q)
	if q != r || math.Abs(r) > 1e15 { // beyond 2^53 the grid is meaningless
		return 0, false
	}
	return int64(r), true
}

// lookup returns the cached frame for t, or nil. Caller holds e.mu.
func (e *Engine) lookup(t float64) *frame {
	if gi, ok := e.gridIndex(t); ok {
		if f, ok := e.grid[gi]; ok {
			return f
		}
		// A grid instant may still sit in the LRU tier if the grid tier is
		// disabled; fall through.
	}
	if el, ok := e.misc[math.Float64bits(t)]; ok {
		e.lru.MoveToFront(el)
		return el.Value.(*frame)
	}
	return nil
}

// insert publishes f in the cache, evicting per-tier as needed, and
// returns the canonical frame for f.t (an earlier racer's frame wins so
// same-time callers share one buffer). Caller holds e.mu.
func (e *Engine) insert(f *frame) *frame {
	if gi, ok := e.gridIndex(f.t); ok && e.cfg.GridFrames > 0 {
		if have, ok := e.grid[gi]; ok {
			return have
		}
		e.grid[gi] = f
		e.gridOrder = append(e.gridOrder, gi)
		if len(e.gridOrder) > e.cfg.GridFrames {
			delete(e.grid, e.gridOrder[0])
			e.gridOrder = e.gridOrder[1:]
		}
		e.m.frames.Set(float64(len(e.misc) + len(e.grid)))
		return f
	}
	if e.cfg.CacheFrames <= 0 {
		return f
	}
	key := math.Float64bits(f.t)
	if el, ok := e.misc[key]; ok {
		return el.Value.(*frame)
	}
	e.misc[key] = e.lru.PushFront(f)
	if e.lru.Len() > e.cfg.CacheFrames {
		last := e.lru.Back()
		e.lru.Remove(last)
		delete(e.misc, math.Float64bits(last.Value.(*frame).t))
	}
	e.m.frames.Set(float64(len(e.misc) + len(e.grid)))
	return f
}

// SnapshotAt returns the ECEF position of every satellite at t seconds
// after epoch, indexed by satellite ID. The returned slice is shared and
// immutable: do not modify it. Repeated calls for the same t return the
// same backing array while the frame is cached.
func (e *Engine) SnapshotAt(t float64) []geo.Vec3 {
	e.mu.Lock()
	if f := e.lookup(t); f != nil {
		e.hits++
		e.mu.Unlock()
		e.m.hits.Inc()
		return f.pos
	}
	e.misses++
	e.mu.Unlock()
	e.m.misses.Inc()

	pos := make([]geo.Vec3, e.c.Size())
	e.propagate(t, pos)

	e.mu.Lock()
	f := e.insert(&frame{t: t, pos: pos})
	e.mu.Unlock()
	return f.pos
}

// SnapshotInto fills dst (length Size()) with ECEF positions at t seconds
// after epoch. A cache hit is copied out; a miss propagates directly into
// dst without caching, so sweeps over many distinct instants do not churn
// the cache. dst is the caller's to mutate.
func (e *Engine) SnapshotInto(t float64, dst []geo.Vec3) error {
	if len(dst) != e.c.Size() {
		return fmt.Errorf("ephem: SnapshotInto dst length %d, want %d satellites", len(dst), e.c.Size())
	}
	e.mu.Lock()
	if f := e.lookup(t); f != nil {
		e.hits++
		e.mu.Unlock()
		e.m.hits.Inc()
		copy(dst, f.pos)
		return nil
	}
	e.misses++
	e.mu.Unlock()
	e.m.misses.Inc()
	e.propagate(t, dst)
	return nil
}

// Keyframe returns the cached grid keyframe nearest at-or-below t,
// propagating it on a miss. It always queries an exact grid instant, so
// the protected tier absorbs it.
func (e *Engine) Keyframe(t float64) []geo.Vec3 {
	t0 := math.Floor(t/e.cfg.GridStepSec) * e.cfg.GridStepSec
	return e.SnapshotAt(t0)
}

// propagate fills dst with exact positions at t using the worker pool.
// The chunked parallel loop performs, per satellite, the identical
// float64 operations as the serial loop — only the goroutine doing them
// differs — so results are bit-identical regardless of Workers.
func (e *Engine) propagate(t float64, dst []geo.Vec3) {
	var sp *obs.Span
	if e.cfg.Tracer != nil {
		sp = e.cfg.Tracer.Start("ephem.propagate")
		sp.SetAttr("t_sec", fmt.Sprintf("%g", t))
		sp.SetAttr("sats", fmt.Sprintf("%d", len(dst)))
	}
	start := time.Now()
	sats := e.c.Satellites
	e.parallelFor(len(sats), minParallelSats, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = sats[i].Prop.ECEFAt(t)
		}
	})
	elapsed := time.Since(start)
	e.m.propagateSec.Observe(elapsed.Seconds())
	e.m.propagateQ.Observe(float64(elapsed) / float64(time.Millisecond))
	e.m.propagated.Add(uint64(len(sats)))
	e.mu.Lock()
	e.propagated += uint64(len(sats))
	e.mu.Unlock()
	if sp != nil {
		sp.End()
	}
}

// velocities fills dst with exact ECEF velocities at t using the worker
// pool.
func (e *Engine) velocities(t float64, dst []geo.Vec3) {
	sats := e.c.Satellites
	e.parallelFor(len(sats), minParallelSats, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = sats[i].Prop.ECEFVelocityAt(t)
		}
	})
	e.m.propagated.Add(uint64(len(sats)))
	e.mu.Lock()
	e.propagated += uint64(len(sats))
	e.mu.Unlock()
}

// minParallelSats is the frame size below which fan-out costs more than
// the propagation it parallelises.
const minParallelSats = 512

// parallelFor splits [0, n) into one contiguous chunk per worker and runs
// f on each. With one worker (or a small n) it runs inline.
func (e *Engine) parallelFor(n, minN int, f func(lo, hi int)) {
	w := e.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 || n < minN {
		f(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
