package ephem

import (
	"math"
	"sync"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/obs"
)

// testConst builds a mid-size single-shell constellation: big enough
// (576 sats) to engage the parallel propagation path under Workers > 1.
func testConst(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("ephem-test", []constellation.Shell{{
		Name: "shell-550", AltitudeKm: 550, InclinationDeg: 53,
		Planes: 24, SatsPerPlane: 24, PhaseFactor: 11, MinElevationDeg: 25,
	}}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return New(testConst(t), cfg)
}

// TestDifferentialExact pins the engine — parallel propagation, cached and
// uncached, grid and off-grid — byte-for-byte against direct Prop.ECEFAt
// across a full orbital period. This is the guarantee that rewiring
// consumers onto the engine cannot change any published figure.
func TestDifferentialExact(t *testing.T) {
	c := testConst(t)
	eng := New(c, Config{Workers: 4, Registry: obs.NewRegistry()})
	period := c.Satellites[0].Prop.Elements().PeriodSec()
	want := make([]geo.Vec3, c.Size())
	into := make([]geo.Vec3, c.Size())
	interp := make([]geo.Vec3, c.Size())
	for k := 0; k <= 97; k++ {
		// Mix of grid (multiples of 60) and ragged off-grid instants.
		tt := float64(k) / 97 * period
		for i, s := range c.Satellites {
			want[i] = s.Prop.ECEFAt(tt)
		}
		got := eng.SnapshotAt(tt)
		again := eng.SnapshotAt(tt) // cached path
		if err := eng.SnapshotInto(tt, into); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] || want[i] != again[i] || want[i] != into[i] {
				t.Fatalf("t=%g sat=%d: engine %v / %v / %v != direct %v", tt, i, got[i], again[i], into[i], want[i])
			}
		}
	}
	// Exact grid instants through Interpolated are copies of the exact
	// keyframe, not interpolants.
	if err := eng.Interpolated(120, interp); err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Satellites {
		if interp[i] != s.Prop.ECEFAt(120) {
			t.Fatalf("grid-instant Interpolated differs at sat %d", i)
		}
	}
}

func TestSnapshotSharingAndStats(t *testing.T) {
	eng := testEngine(t, Config{})
	a := eng.SnapshotAt(100)
	b := eng.SnapshotAt(100)
	if &a[0] != &b[0] {
		t.Fatal("same-time snapshots should share one backing array")
	}
	st := eng.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.PropagatedSats != uint64(eng.Size()) {
		t.Fatalf("propagated %d sats, want %d", st.PropagatedSats, eng.Size())
	}
}

func TestLRUEvictionBounded(t *testing.T) {
	eng := testEngine(t, Config{CacheFrames: 4, GridFrames: 4})
	for k := 0; k < 100; k++ {
		eng.SnapshotAt(float64(k) + 0.5) // off-grid → LRU tier
	}
	if st := eng.Stats(); st.Frames > 4 {
		t.Fatalf("LRU held %d frames, cap 4", st.Frames)
	}
	for k := 0; k < 100; k++ {
		eng.SnapshotAt(float64(k) * 60) // grid tier
	}
	if st := eng.Stats(); st.Frames > 8 {
		t.Fatalf("both tiers held %d frames, caps 4+4", st.Frames)
	}
}

// TestGridTierProtected is the point of the two-tier cache: a long
// off-grid sweep (the LRU-adversarial access pattern of session
// simulations) must not flush grid keyframes.
func TestGridTierProtected(t *testing.T) {
	eng := testEngine(t, Config{CacheFrames: 2, GridFrames: 8})
	kf := eng.SnapshotAt(60) // grid keyframe
	for k := 0; k < 50; k++ {
		eng.SnapshotAt(float64(k) + 0.25) // flood the LRU tier
	}
	before := eng.Stats()
	again := eng.SnapshotAt(60)
	after := eng.Stats()
	if after.Hits != before.Hits+1 {
		t.Fatal("grid keyframe was evicted by the off-grid sweep")
	}
	if &kf[0] != &again[0] {
		t.Fatal("grid keyframe re-propagated instead of shared")
	}
}

func TestSnapshotIntoLengthError(t *testing.T) {
	eng := testEngine(t, Config{})
	if err := eng.SnapshotInto(0, make([]geo.Vec3, 3)); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if err := eng.Interpolated(0.5, make([]geo.Vec3, 3)); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

// TestInterpolationErrorBounds pins the documented error bounds at the
// default 60 s grid: Hermite stays metre-scale, Linear kilometre-scale
// (chord sag r(ωh)²/8 ≈ 3.7 km for a 550 km shell).
func TestInterpolationErrorBounds(t *testing.T) {
	period := testConst(t).Satellites[0].Prop.Elements().PeriodSec()

	herm := testEngine(t, Config{Interp: Hermite, GridFrames: 256})
	hermKm, err := herm.MeasureError(0, period, 50)
	if err != nil {
		t.Fatal(err)
	}
	if hermKm > 0.01 {
		t.Fatalf("Hermite max error %.4f km, want metre-scale (< 0.01 km)", hermKm)
	}

	lin := testEngine(t, Config{Interp: Linear, GridFrames: 256})
	linKm, err := lin.MeasureError(0, period, 50)
	if err != nil {
		t.Fatal(err)
	}
	if linKm < 0.5 || linKm > 10 {
		t.Fatalf("Linear max error %.3f km, want chord-sag scale (0.5..10 km)", linKm)
	}
	if hermKm*50 > linKm {
		t.Fatalf("Hermite (%.4f km) should beat Linear (%.3f km) by orders of magnitude", hermKm, linKm)
	}
}

func TestKeyframeFloors(t *testing.T) {
	eng := testEngine(t, Config{})
	kf := eng.Keyframe(119.9)
	want := eng.SnapshotAt(60)
	if &kf[0] != &want[0] {
		t.Fatal("Keyframe(119.9) should return the t=60 grid frame")
	}
	neg := eng.Keyframe(-0.5)
	wantNeg := eng.SnapshotAt(-60)
	if &neg[0] != &wantNeg[0] {
		t.Fatal("Keyframe(-0.5) should floor to the t=-60 grid frame")
	}
}

func TestMeasureErrorValidates(t *testing.T) {
	eng := testEngine(t, Config{})
	if _, err := eng.MeasureError(0, 0, 10); err == nil {
		t.Fatal("want error for zero span")
	}
	if _, err := eng.MeasureError(0, 100, 0); err == nil {
		t.Fatal("want error for zero samples")
	}
}

// TestConcurrent hammers all entry points from many goroutines over
// overlapping instants; run under -race in CI.
func TestConcurrent(t *testing.T) {
	eng := testEngine(t, Config{Workers: 2, CacheFrames: 8, GridFrames: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]geo.Vec3, eng.Size())
			for k := 0; k < 30; k++ {
				tt := float64((g*k)%7) * 30
				snap := eng.SnapshotAt(tt)
				if snap[0].Norm() < 6000 {
					t.Errorf("implausible radius %v", snap[0])
					return
				}
				if err := eng.SnapshotInto(tt+0.5, dst); err != nil {
					t.Error(err)
					return
				}
				if err := eng.Interpolated(tt+7.3, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestModeString(t *testing.T) {
	if Hermite.String() != "hermite" || Linear.String() != "linear" {
		t.Fatal("mode names changed")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Fatal("unknown mode formatting changed")
	}
}

// TestGridIndex covers grid classification edge cases, including
// negative times.
func TestGridIndex(t *testing.T) {
	eng := testEngine(t, Config{})
	cases := []struct {
		t    float64
		idx  int64
		grid bool
	}{
		{0, 0, true}, {60, 1, true}, {-60, -1, true}, {120, 2, true},
		{30, 0, false}, {59.999, 0, false}, {-0.5, 0, false},
	}
	for _, c := range cases {
		idx, ok := eng.gridIndex(c.t)
		if ok != c.grid || (ok && idx != c.idx) {
			t.Fatalf("gridIndex(%g) = %d,%v want %d,%v", c.t, idx, ok, c.idx, c.grid)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	eng := testEngine(t, Config{CacheFrames: -1, GridFrames: -1})
	a := eng.SnapshotAt(0)
	b := eng.SnapshotAt(0)
	if &a[0] == &b[0] {
		t.Fatal("caching disabled, snapshots should be distinct buffers")
	}
	if st := eng.Stats(); st.Frames != 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want no frames/hits with caching off", st)
	}
	// Values still exact.
	if a[0] != b[0] {
		t.Fatal("uncached snapshots disagree")
	}
	if math.IsNaN(a[0].X) {
		t.Fatal("NaN position")
	}
}
