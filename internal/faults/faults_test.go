package faults

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/netsim"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"typical", Config{SatMTBFHours: 100, ISLFlapPerHour: 0.5, MigrationFailProb: 0.01}, true},
		{"permanent failures", Config{SatMTBFHours: 100, SatMTTRSec: -1}, true},
		{"negative MTBF", Config{SatMTBFHours: -1}, false},
		{"negative flap rate", Config{ISLFlapPerHour: -0.1}, false},
		{"saturated flap window", Config{ISLFlapPerHour: 100, ISLFlapWindowSec: 60}, false},
		{"migration prob 1", Config{MigrationFailProb: 1}, false},
		{"negative migration prob", Config{MigrationFailProb: -0.5}, false},
	}
	for _, c := range cases {
		_, err := New(10, c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: New err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
	if _, err := New(0, Config{}); err == nil {
		t.Error("New(0, ...) should fail")
	}
}

// timeline collects the full fault schedule over a horizon in fixed steps.
func timeline(t *testing.T, seed int64, step, horizon float64) []Event {
	t.Helper()
	in, err := New(64, Config{Seed: seed, SatMTBFHours: 2, SatMTTRSec: 600})
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	for tm := step; tm <= horizon; tm += step {
		out = append(out, in.Advance(tm)...)
	}
	return out
}

func TestAdvanceDeterministic(t *testing.T) {
	a := timeline(t, 7, 60, 4*3600)
	b := timeline(t, 7, 60, 4*3600)
	if len(a) == 0 {
		t.Fatal("expected events over 4 h at 2 h MTBF")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different timelines")
	}
	// A different seed must produce a different timeline.
	c := timeline(t, 8, 60, 4*3600)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestAdvanceStepInvariance: the event sequence must not depend on how the
// caller slices time — one big Advance or many small ones see the same
// (time, sat)-ordered events.
func TestAdvanceStepInvariance(t *testing.T) {
	mk := func() *Injector {
		in, err := New(64, Config{Seed: 3, SatMTBFHours: 1, SatMTTRSec: 300})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	big := mk().Advance(2 * 3600)
	fine := mk()
	var small []Event
	for tm := 10.0; tm <= 2*3600; tm += 10 {
		small = append(small, fine.Advance(tm)...)
	}
	if !reflect.DeepEqual(big, small) {
		t.Fatalf("step size changed the timeline: %d vs %d events", len(big), len(small))
	}
}

func TestAdvanceOrderingAndState(t *testing.T) {
	in, err := New(128, Config{Seed: 11, SatMTBFHours: 0.5, SatMTTRSec: 120})
	if err != nil {
		t.Fatal(err)
	}
	evs := in.Advance(3600)
	if len(evs) == 0 {
		t.Fatal("expected events")
	}
	downAt := map[int]bool{}
	for i, ev := range evs {
		if i > 0 {
			prev := evs[i-1]
			if ev.TSec < prev.TSec {
				t.Fatalf("events out of time order: %v after %v", ev, prev)
			}
			if ev.TSec == prev.TSec && ev.Sat < prev.Sat {
				t.Fatalf("tie not broken by satellite ID: %v after %v", ev, prev)
			}
		}
		switch ev.Kind {
		case SatFail:
			if downAt[ev.Sat] {
				t.Fatalf("satellite %d failed twice without recovering", ev.Sat)
			}
			downAt[ev.Sat] = true
		case SatRecover:
			if !downAt[ev.Sat] {
				t.Fatalf("satellite %d recovered while up", ev.Sat)
			}
			downAt[ev.Sat] = false
		default:
			t.Fatalf("unknown kind %v", ev.Kind)
		}
	}
	nDown := 0
	for id, down := range downAt {
		if down {
			nDown++
		}
		if in.SatUp(id) == down {
			t.Fatalf("SatUp(%d)=%v contradicts the event log", id, in.SatUp(id))
		}
	}
	if in.DownCount() != nDown {
		t.Fatalf("DownCount=%d, event log says %d", in.DownCount(), nDown)
	}
	if got := int(in.Failures() - in.Recoveries()); got != nDown {
		t.Fatalf("Failures-Recoveries=%d, want %d", got, nDown)
	}
}

func TestPermanentFailuresNeverRecover(t *testing.T) {
	in, err := New(64, Config{Seed: 5, SatMTBFHours: 0.25, SatMTTRSec: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range in.Advance(24 * 3600) {
		if ev.Kind == SatRecover {
			t.Fatalf("recovery %v under the no-repairs regime", ev)
		}
	}
	if in.Recoveries() != 0 {
		t.Fatalf("Recoveries=%d, want 0", in.Recoveries())
	}
	if in.DownCount() == 0 {
		t.Fatal("no satellite failed in 24 h at 15 min MTBF")
	}
}

// TestFailureRate: at MTBF m the long-run failure count over horizon h on n
// satellites should approach n·h/m (recoveries are fast relative to MTBF).
func TestFailureRate(t *testing.T) {
	const (
		n    = 500
		mtbf = 10.0 // hours
		hrs  = 50.0
	)
	in, err := New(n, Config{Seed: 1, SatMTBFHours: mtbf, SatMTTRSec: 60})
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(hrs * 3600)
	want := n * hrs / mtbf
	got := float64(in.Failures())
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("failures=%v, want about %v (±20%%)", got, want)
	}
}

func TestISLDegraded(t *testing.T) {
	in, err := New(100, Config{Seed: 2, ISLFlapPerHour: 30, ISLFlapWindowSec: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric in the pair, stable within a window, and off for a==b.
	if in.ISLDegraded(3, 3, 100) {
		t.Error("self-link degraded")
	}
	hits := 0
	const pairs, windows = 50, 100
	for a := 0; a < pairs; a++ {
		for w := 0; w < windows; w++ {
			tm := float64(w)*60 + 30
			d := in.ISLDegraded(a, a+1, tm)
			if d != in.ISLDegraded(a+1, a, tm) {
				t.Fatalf("asymmetric degradation for pair (%d,%d)", a, a+1)
			}
			if d != in.ISLDegraded(a, a+1, tm+20) {
				t.Fatalf("degradation not stable within window (pair %d, window %d)", a, w)
			}
			if d {
				hits++
			}
		}
	}
	// p = 30/h * 60s / 3600 = 0.5; expect 50% ± 10 points over 5000 draws.
	frac := float64(hits) / (pairs * windows)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("degraded fraction %v, want about 0.5", frac)
	}
	// Rate 0 disables.
	off, _ := New(100, Config{Seed: 2})
	for w := 0; w < 100; w++ {
		if off.ISLDegraded(1, 2, float64(w)*60) {
			t.Fatal("degradation with zero flap rate")
		}
	}
}

func TestMigrationOK(t *testing.T) {
	in, err := New(10, Config{Seed: 4, MigrationFailProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	const trials = 4000
	for s := uint64(0); s < trials; s++ {
		ok := in.MigrationOK(s, 1, 2, 0)
		if ok != in.MigrationOK(s, 1, 2, 0) {
			t.Fatal("MigrationOK not deterministic")
		}
		if !ok {
			fails++
		}
	}
	frac := float64(fails) / trials
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("failure fraction %v, want about 0.3", frac)
	}
	// Retries draw independently: across sessions, attempt 1 must not
	// always repeat attempt 0's outcome.
	same := 0
	for s := uint64(0); s < trials; s++ {
		if in.MigrationOK(s, 1, 2, 0) == in.MigrationOK(s, 1, 2, 1) {
			same++
		}
	}
	if same == trials {
		t.Fatal("attempt index does not affect the draw")
	}
	// Prob 0 always succeeds.
	sure, _ := New(10, Config{Seed: 4})
	for s := uint64(0); s < 100; s++ {
		if !sure.MigrationOK(s, 1, 2, 0) {
			t.Fatal("failure with zero failure probability")
		}
	}
}

func TestDrive(t *testing.T) {
	in, err := New(32, Config{Seed: 9, SatMTBFHours: 0.5, SatMTTRSec: 300})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New()
	var fired []Event
	n, err := Drive(sim, in, 3600, func(ev Event) {
		if got := sim.Now(); math.Abs(got-ev.TSec) > 1e-9 {
			t.Errorf("event %v fired at sim time %v", ev, got)
		}
		fired = append(fired, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events scheduled")
	}
	sim.RunAll()
	if len(fired) != n {
		t.Fatalf("fired %d of %d scheduled events", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].TSec < fired[i-1].TSec {
			t.Fatalf("events fired out of order: %v after %v", fired[i], fired[i-1])
		}
	}
	if _, err := Drive(nil, in, 10, func(Event) {}); err == nil {
		t.Error("Drive(nil sim) should fail")
	}
}
