// Package faults is the deterministic fault-injection layer of the
// simulator: seeded satellite hard failures and recoveries, ISL link
// degradation windows, and migration transfer failures. §4 of the paper
// argues satellite-servers live with radiation-induced faults, no repairs,
// and 5–7 year life-cycles — failure is the steady state — so the fleet
// orchestrator, the netsim kernel, and the migrate protocol all consume
// this package to answer "what does a 1% satellite failure rate do to
// hand-off rate and session survival?" reproducibly.
//
// Everything is a pure function of (Config.Seed, inputs): two injectors
// with the same seed produce byte-identical fault timelines regardless of
// wall clock or call interleaving, as long as state-mutating calls
// (Advance) happen in the same order. Per-satellite failure draws use
// independent counter-based streams, so adding satellites or reordering
// queries never perturbs another satellite's timeline. ISL degradation and
// migration failures are stateless hashes and can be queried in any order.
package faults

import (
	"fmt"
	"math"

	"repro/internal/netsim"
)

// Kind tags a fault event.
type Kind uint8

// The fault event kinds.
const (
	// SatFail is a satellite hard failure: the payload stops serving and
	// every session on it must be evacuated.
	SatFail Kind = iota + 1
	// SatRecover is a satellite returning to service (redundant payload
	// rebooted); new placements may target it again.
	SatRecover
)

// String names the kind for logs and metric labels.
func (k Kind) String() string {
	switch k {
	case SatFail:
		return "sat_fail"
	case SatRecover:
		return "sat_recover"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one injected fault, in simulated time.
type Event struct {
	// TSec is when the event fires.
	TSec float64
	// Kind is what happened.
	Kind Kind
	// Sat is the affected satellite ID.
	Sat int
}

// Config tunes the injector. The zero value injects nothing.
type Config struct {
	// Seed fixes every draw; the same seed reproduces the same timeline
	// bit-for-bit.
	Seed int64
	// SatMTBFHours is the per-satellite mean time between hard failures
	// (exponential inter-failure times). Zero disables satellite failures.
	// 100 h means each satellite fails with ~1%/hour probability.
	SatMTBFHours float64
	// SatMTTRSec is the mean time to recovery after a hard failure
	// (exponential). Zero picks DefaultMTTRSec; negative means failures are
	// permanent — the paper's no-repairs regime.
	SatMTTRSec float64
	// ISLFlapPerHour is the per-satellite-pair rate of ISL degradation
	// windows. Zero disables link degradation.
	ISLFlapPerHour float64
	// ISLFlapWindowSec quantises link degradation: a flapped pair stays
	// degraded for one whole window (default DefaultFlapWindowSec).
	ISLFlapWindowSec float64
	// MigrationFailProb is the probability one migration transfer attempt
	// fails in flight, in [0, 1). Retries re-draw independently.
	MigrationFailProb float64
}

// DefaultMTTRSec is the default mean recovery time: a half-hour payload
// fail-over to cold redundant hardware.
const DefaultMTTRSec = 1800

// DefaultFlapWindowSec is the default ISL degradation window.
const DefaultFlapWindowSec = 60

func (c Config) withDefaults() (Config, error) {
	if c.SatMTBFHours < 0 {
		return c, fmt.Errorf("faults: MTBF %v h must be non-negative", c.SatMTBFHours)
	}
	if c.SatMTTRSec == 0 {
		c.SatMTTRSec = DefaultMTTRSec
	}
	if c.ISLFlapPerHour < 0 {
		return c, fmt.Errorf("faults: ISL flap rate %v must be non-negative", c.ISLFlapPerHour)
	}
	if c.ISLFlapWindowSec == 0 {
		c.ISLFlapWindowSec = DefaultFlapWindowSec
	}
	if c.ISLFlapWindowSec < 0 {
		return c, fmt.Errorf("faults: flap window %v s must be positive", c.ISLFlapWindowSec)
	}
	if p := c.ISLFlapPerHour * c.ISLFlapWindowSec / 3600; p >= 1 {
		return c, fmt.Errorf("faults: flap rate %v/h saturates the %v s window (p=%.2f)", c.ISLFlapPerHour, c.ISLFlapWindowSec, p)
	}
	if c.MigrationFailProb < 0 || c.MigrationFailProb >= 1 {
		return c, fmt.Errorf("faults: migration failure probability %v outside [0,1)", c.MigrationFailProb)
	}
	return c, nil
}

// Injector holds the fault timeline. Build with New; move simulated time
// forward with Advance. Advance is not safe concurrently with anything;
// the query methods (SatUp, ISLDegraded, MigrationOK, …) are read-only and
// safe concurrently with each other between Advances.
type Injector struct {
	cfg Config
	n   int
	now float64

	up    []bool
	nDown int

	// nextT[i] is satellite i's next pending event time (+Inf when
	// failures are disabled); draws[i] counts that satellite's consumed
	// exponential draws so its stream is independent of every other's.
	nextT []float64
	draws []uint64

	failures, recoveries uint64
}

// New builds an injector over n satellites starting at time 0 with every
// satellite up.
func New(n int, cfg Config) (*Injector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: need at least one satellite, got %d", n)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	in := &Injector{
		cfg:   cfg,
		n:     n,
		up:    make([]bool, n),
		nextT: make([]float64, n),
		draws: make([]uint64, n),
	}
	for i := range in.up {
		in.up[i] = true
		in.nextT[i] = math.Inf(1)
		if cfg.SatMTBFHours > 0 {
			in.nextT[i] = in.expDraw(i, cfg.SatMTBFHours*3600)
		}
	}
	return in, nil
}

// N returns the satellite count the injector covers.
func (in *Injector) N() int { return in.n }

// Now returns the injector's current simulated time.
func (in *Injector) Now() float64 { return in.now }

// Failures and Recoveries return the cumulative event counts fired so far.
func (in *Injector) Failures() uint64   { return in.failures }
func (in *Injector) Recoveries() uint64 { return in.recoveries }

// DownCount returns how many satellites are currently failed.
func (in *Injector) DownCount() int { return in.nDown }

// SatUp reports whether satellite id is serving at the current time.
func (in *Injector) SatUp(id int) bool { return in.up[id] }

// Advance moves the clock to t and returns the events that fired in
// (Now, t], ordered by (time, satellite). Times before Now are a no-op.
func (in *Injector) Advance(t float64) []Event {
	if t <= in.now {
		return nil
	}
	var out []Event
	for {
		// Argmin scan (ascending IDs, so ties break toward the lower
		// satellite): events are rare enough that a heap is not worth it.
		sat, best := -1, math.Inf(1)
		for i, nt := range in.nextT {
			if nt < best {
				sat, best = i, nt
			}
		}
		if sat < 0 || best > t {
			break
		}
		ev := Event{TSec: best, Sat: sat}
		if in.up[sat] {
			ev.Kind = SatFail
			in.up[sat] = false
			in.nDown++
			in.failures++
			if in.cfg.SatMTTRSec < 0 {
				in.nextT[sat] = math.Inf(1) // permanent loss
			} else {
				in.nextT[sat] = best + in.expSec(sat, in.cfg.SatMTTRSec)
			}
		} else {
			ev.Kind = SatRecover
			in.up[sat] = true
			in.nDown--
			in.recoveries++
			in.nextT[sat] = best + in.expSec(sat, in.cfg.SatMTBFHours*3600)
		}
		out = append(out, ev)
	}
	in.now = t
	return out
}

// expDraw returns an absolute first-event time; expSec a relative
// exponential interval, both from satellite sat's private stream.
func (in *Injector) expDraw(sat int, meanSec float64) float64 {
	return in.expSec(sat, meanSec)
}

func (in *Injector) expSec(sat int, meanSec float64) float64 {
	u := in.hash01(streamSat, uint64(sat), in.draws[sat])
	in.draws[sat]++
	return -meanSec * math.Log(1-u)
}

// ISLDegraded reports whether the ISL path between satellites a and b is
// degraded in the flap window containing t. Degradation is quantised to
// whole windows and is a stateless hash of (seed, pair, window), so the
// answer is reproducible in any query order. Callers should treat a
// degraded path as unusable for state transfer (fall back to ground
// relay).
func (in *Injector) ISLDegraded(a, b int, t float64) bool {
	if in.cfg.ISLFlapPerHour == 0 || a == b {
		return false
	}
	if a > b {
		a, b = b, a
	}
	w := uint64(math.Floor(t / in.cfg.ISLFlapWindowSec))
	p := in.cfg.ISLFlapPerHour * in.cfg.ISLFlapWindowSec / 3600
	return in.hash01(streamISL, uint64(a)<<32|uint64(b), w) < p
}

// MigrationOK reports whether one migration transfer attempt succeeds.
// attempt distinguishes retries of the same hand-off so each retry
// re-draws independently; the draw is a stateless hash of
// (seed, session, from, to, attempt).
func (in *Injector) MigrationOK(session uint64, from, to, attempt int) bool {
	if in.cfg.MigrationFailProb == 0 {
		return true
	}
	h := in.hash01(streamMigration, session, uint64(from)<<32|uint64(to), uint64(attempt))
	return h >= in.cfg.MigrationFailProb
}

// Drive replays the injector's satellite fault timeline onto a netsim
// kernel: every failure/recovery up to horizon is scheduled as a
// simulation event that calls fn at its fault time. It consumes the
// injector's timeline (Advance to horizon) and returns how many events
// were scheduled.
func Drive(sim *netsim.Sim, in *Injector, horizon float64, fn func(Event)) (int, error) {
	if sim == nil || in == nil || fn == nil {
		return 0, fmt.Errorf("faults: Drive needs a sim, an injector, and a callback")
	}
	evs := in.Advance(horizon)
	for _, ev := range evs {
		ev := ev
		if _, err := sim.At(ev.TSec, func() { fn(ev) }); err != nil {
			return 0, err
		}
	}
	return len(evs), nil
}

// Independent draw streams, folded into the hash so satellite failures,
// ISL flaps, and migration coins never correlate.
const (
	streamSat       = 0x5361744661696c73 // "SatFails"
	streamISL       = 0x49534c466c617073 // "ISLFlaps"
	streamMigration = 0x4d69674661696c73 // "MigFails"
)

// mix64 is the SplitMix64 finaliser: a cheap, well-distributed 64-bit
// permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash01 folds the seed, a stream tag, and the given words into a uniform
// float64 in [0, 1).
func (in *Injector) hash01(stream uint64, vals ...uint64) float64 {
	h := mix64(uint64(in.cfg.Seed) ^ stream)
	for _, v := range vals {
		h = mix64(h ^ v)
	}
	return float64(h>>11) / (1 << 53)
}
