// Package geo provides the geodetic substrate: geographic coordinates,
// Earth-centred Cartesian vectors, and great-circle geometry on the spherical
// Earth model used throughout the simulation.
package geo

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Vec3 is a Cartesian vector in kilometres. Depending on context it is
// expressed in the ECI (inertial) or ECEF (Earth-fixed) frame; the two share
// the Z axis (north) and differ by a rotation about it.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Distance returns |v - w| in kilometres.
func (v Vec3) Distance(w Vec3) float64 { return v.Sub(w).Norm() }

// RotateZ rotates v about the Z axis by angle radians (counter-clockwise
// looking down the +Z axis). It converts between ECI and ECEF frames given
// the Earth rotation angle.
func (v Vec3) RotateZ(angle float64) Vec3 {
	s, c := math.Sincos(angle)
	return Vec3{
		X: c*v.X - s*v.Y,
		Y: s*v.X + c*v.Y,
		Z: v.Z,
	}
}

// LatLon is a geographic position in degrees. Latitude is positive north,
// longitude positive east. AltKm is height above the spherical Earth surface.
type LatLon struct {
	LatDeg, LonDeg float64
	AltKm          float64
}

// String renders the position as "lat,lon" with two decimals.
func (p LatLon) String() string {
	return fmt.Sprintf("%.2f,%.2f", p.LatDeg, p.LonDeg)
}

// Valid reports whether the coordinates are within the conventional ranges
// (|lat| <= 90, |lon| <= 180) and non-NaN.
func (p LatLon) Valid() bool {
	if math.IsNaN(p.LatDeg) || math.IsNaN(p.LonDeg) {
		return false
	}
	return p.LatDeg >= -90 && p.LatDeg <= 90 && p.LonDeg >= -180 && p.LonDeg <= 180
}

// ECEF converts the geographic position to Earth-fixed Cartesian coordinates
// on the spherical Earth model.
func (p LatLon) ECEF() Vec3 {
	r := units.EarthRadiusKm + p.AltKm
	lat := units.Deg2Rad(p.LatDeg)
	lon := units.Deg2Rad(p.LonDeg)
	cl := math.Cos(lat)
	return Vec3{
		X: r * cl * math.Cos(lon),
		Y: r * cl * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}

// FromECEF converts an Earth-fixed Cartesian position to geographic
// coordinates (spherical Earth).
func FromECEF(v Vec3) LatLon {
	r := v.Norm()
	if r == 0 {
		return LatLon{}
	}
	return LatLon{
		LatDeg: units.Rad2Deg(math.Asin(v.Z / r)),
		LonDeg: units.Rad2Deg(math.Atan2(v.Y, v.X)),
		AltKm:  r - units.EarthRadiusKm,
	}
}

// GreatCircleKm returns the great-circle (surface) distance between two
// geographic positions in kilometres, ignoring altitude.
func GreatCircleKm(a, b LatLon) float64 {
	la1 := units.Deg2Rad(a.LatDeg)
	la2 := units.Deg2Rad(b.LatDeg)
	dLat := la2 - la1
	dLon := units.Deg2Rad(b.LonDeg - a.LonDeg)
	// Haversine formulation: numerically robust for small distances.
	sLat := math.Sin(dLat / 2)
	sLon := math.Sin(dLon / 2)
	h := sLat*sLat + math.Cos(la1)*math.Cos(la2)*sLon*sLon
	return 2 * units.EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// CentralAngleRad returns the Earth-central angle in radians subtended by the
// great-circle arc between a and b.
func CentralAngleRad(a, b LatLon) float64 {
	return GreatCircleKm(a, b) / units.EarthRadiusKm
}

// Midpoint returns the great-circle midpoint of a and b (altitude zero).
func Midpoint(a, b LatLon) LatLon {
	va := LatLon{LatDeg: a.LatDeg, LonDeg: a.LonDeg}.ECEF()
	vb := LatLon{LatDeg: b.LatDeg, LonDeg: b.LonDeg}.ECEF()
	m := va.Add(vb)
	if m.Norm() < 1e-6 {
		// Antipodal points: every great circle through a and b is a valid
		// path, so the midpoint is ill-defined. Pick a's pole-ward
		// neighbour deterministically: the point 90° from a along the
		// meridian toward a's nearer pole (the north pole for equatorial
		// a). When a is itself a pole, fall back to the equator point at
		// a's longitude.
		ua := va.Unit()
		pole := Vec3{Z: 1}
		if a.LatDeg < 0 {
			pole.Z = -1
		}
		n := pole.Sub(ua.Scale(ua.Dot(pole)))
		if n.Norm() < 1e-9 {
			return LatLon{LatDeg: 0, LonDeg: a.LonDeg}
		}
		return FromECEF(n.Unit().Scale(units.EarthRadiusKm))
	}
	return FromECEF(m.Unit().Scale(units.EarthRadiusKm))
}

// Centroid returns the normalised spherical centroid of the given positions.
// It is the point on the sphere minimising the sum of squared chord lengths,
// a good "centre of a user group" for meetup-server reasoning.
func Centroid(pts []LatLon) LatLon {
	if len(pts) == 0 {
		return LatLon{}
	}
	var sum Vec3
	for _, p := range pts {
		sum = sum.Add(LatLon{LatDeg: p.LatDeg, LonDeg: p.LonDeg}.ECEF().Unit())
	}
	if sum.Norm() < 1e-9 {
		return LatLon{}
	}
	return FromECEF(sum.Unit().Scale(units.EarthRadiusKm))
}

// InitialBearingDeg returns the initial great-circle bearing from a to b in
// degrees clockwise from north.
func InitialBearingDeg(a, b LatLon) float64 {
	la1 := units.Deg2Rad(a.LatDeg)
	la2 := units.Deg2Rad(b.LatDeg)
	dLon := units.Deg2Rad(b.LonDeg - a.LonDeg)
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	return units.WrapDegrees(units.Rad2Deg(math.Atan2(y, x)))
}

// Destination returns the point reached by travelling distanceKm from start
// along the given initial bearing (degrees clockwise from north).
func Destination(start LatLon, bearingDeg, distanceKm float64) LatLon {
	la1 := units.Deg2Rad(start.LatDeg)
	lo1 := units.Deg2Rad(start.LonDeg)
	brg := units.Deg2Rad(bearingDeg)
	d := distanceKm / units.EarthRadiusKm

	la2 := math.Asin(math.Sin(la1)*math.Cos(d) + math.Cos(la1)*math.Sin(d)*math.Cos(brg))
	lo2 := lo1 + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(la1),
		math.Cos(d)-math.Sin(la1)*math.Sin(la2),
	)
	lon := units.Rad2Deg(lo2)
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return LatLon{LatDeg: units.Rad2Deg(la2), LonDeg: lon}
}
