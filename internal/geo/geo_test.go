package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randLatLon(r *rand.Rand) LatLon {
	return LatLon{
		LatDeg: r.Float64()*180 - 90,
		LonDeg: r.Float64()*360 - 180,
	}
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{X: 5, Y: -3, Z: 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{X: -3, Y: 7, Z: -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{X: 2, Y: 4, Z: 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		bound := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e3)
		}
		a := Vec3{bound(ax), bound(ay), bound(az)}
		b := Vec3{bound(bx), bound(by), bound(bz)}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitLength(t *testing.T) {
	v := Vec3{10, -20, 5}.Unit()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Fatalf("Unit().Norm() = %v", v.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Fatal("Unit of zero vector should be zero")
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	v := Vec3{1, 0, 5}.RotateZ(math.Pi / 2)
	if !almostEq(v.X, 0, 1e-12) || !almostEq(v.Y, 1, 1e-12) || v.Z != 5 {
		t.Fatalf("RotateZ(π/2) = %v", v)
	}
}

func TestRotateZPreservesNorm(t *testing.T) {
	f := func(x, y, z, ang float64) bool {
		if math.IsNaN(x+y+z+ang) || math.IsInf(x+y+z+ang, 0) {
			return true
		}
		x, y, z = math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)
		v := Vec3{x, y, z}
		return almostEq(v.RotateZ(ang).Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECEFKnownPoints(t *testing.T) {
	tests := []struct {
		name string
		p    LatLon
		want Vec3
	}{
		{"equator-prime", LatLon{0, 0, 0}, Vec3{units.EarthRadiusKm, 0, 0}},
		{"north-pole", LatLon{90, 0, 0}, Vec3{0, 0, units.EarthRadiusKm}},
		{"equator-90E", LatLon{0, 90, 0}, Vec3{0, units.EarthRadiusKm, 0}},
		{"south-pole", LatLon{-90, 45, 0}, Vec3{0, 0, -units.EarthRadiusKm}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.p.ECEF()
			if !almostEq(got.X, tc.want.X, 1e-6) || !almostEq(got.Y, tc.want.Y, 1e-6) || !almostEq(got.Z, tc.want.Z, 1e-6) {
				t.Fatalf("ECEF(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestECEFRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := randLatLon(r)
		p.AltKm = r.Float64() * 2000
		got := FromECEF(p.ECEF())
		if !almostEq(got.LatDeg, p.LatDeg, 1e-9) || !almostEq(got.AltKm, p.AltKm, 1e-6) {
			t.Fatalf("round trip %v -> %v", p, got)
		}
		// Longitude is degenerate at the poles; skip there.
		if math.Abs(p.LatDeg) < 89.999 && !almostEq(got.LonDeg, p.LonDeg, 1e-9) {
			t.Fatalf("lon round trip %v -> %v", p, got)
		}
	}
}

func TestGreatCircleKnownDistances(t *testing.T) {
	tests := []struct {
		name   string
		a, b   LatLon
		wantKm float64
		tolKm  float64
	}{
		{"same-point", LatLon{10, 20, 0}, LatLon{10, 20, 0}, 0, 1e-9},
		{"quarter-equator", LatLon{0, 0, 0}, LatLon{0, 90, 0}, math.Pi / 2 * units.EarthRadiusKm, 1},
		{"pole-to-pole", LatLon{90, 0, 0}, LatLon{-90, 0, 0}, math.Pi * units.EarthRadiusKm, 1},
		// Abuja -> Johannesburg, the Fig 3 baseline leg: roughly 4,500 km
		// great-circle (the paper's 9,200 km round trip to the *farthest*
		// user is consistent with this scale).
		{"abuja-johannesburg", LatLon{9.06, 7.49, 0}, LatLon{-26.20, 28.05, 0}, 4510, 120},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := GreatCircleKm(tc.a, tc.b); !almostEq(got, tc.wantKm, tc.tolKm) {
				t.Fatalf("GreatCircleKm = %.1f, want %.1f±%.1f", got, tc.wantKm, tc.tolKm)
			}
		})
	}
}

func TestGreatCircleSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := randLatLon(r), randLatLon(r)
		d1, d2 := GreatCircleKm(a, b), GreatCircleKm(b, a)
		if !almostEq(d1, d2, 1e-6) {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
	}
}

func TestGreatCircleTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b, c := randLatLon(r), randLatLon(r), randLatLon(r)
		if GreatCircleKm(a, c) > GreatCircleKm(a, b)+GreatCircleKm(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestCentralAngleMatchesDistance(t *testing.T) {
	a := LatLon{0, 0, 0}
	b := LatLon{0, 60, 0}
	if got := CentralAngleRad(a, b); !almostEq(got, math.Pi/3, 1e-9) {
		t.Fatalf("CentralAngleRad = %v, want π/3", got)
	}
}

func TestMidpointEquidistant(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a, b := randLatLon(r), randLatLon(r)
		if GreatCircleKm(a, b) > 19000 {
			continue // skip near-antipodal degeneracy
		}
		m := Midpoint(a, b)
		da, db := GreatCircleKm(m, a), GreatCircleKm(m, b)
		if !almostEq(da, db, 1e-3) {
			t.Fatalf("midpoint not equidistant: %v vs %v (a=%v b=%v)", da, db, a, b)
		}
	}
}

func TestCentroidOfSinglePoint(t *testing.T) {
	p := LatLon{42, -71, 0}
	c := Centroid([]LatLon{p})
	if !almostEq(c.LatDeg, p.LatDeg, 1e-9) || !almostEq(c.LonDeg, p.LonDeg, 1e-9) {
		t.Fatalf("Centroid([p]) = %v, want %v", c, p)
	}
}

func TestCentroidEmpty(t *testing.T) {
	if got := Centroid(nil); got != (LatLon{}) {
		t.Fatalf("Centroid(nil) = %v, want zero", got)
	}
}

func TestCentroidBetweenTwoPoints(t *testing.T) {
	a := LatLon{0, 10, 0}
	b := LatLon{0, 30, 0}
	c := Centroid([]LatLon{a, b})
	if !almostEq(c.LonDeg, 20, 1e-6) || !almostEq(c.LatDeg, 0, 1e-6) {
		t.Fatalf("Centroid = %v, want 0,20", c)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		start := randLatLon(r)
		if math.Abs(start.LatDeg) > 80 {
			continue // bearing arithmetic is degenerate near poles
		}
		brg := r.Float64() * 360
		dist := r.Float64() * 5000
		end := Destination(start, brg, dist)
		if got := GreatCircleKm(start, end); !almostEq(got, dist, 1) {
			t.Fatalf("Destination distance %.2f, want %.2f", got, dist)
		}
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := LatLon{0, 0, 0}
	tests := []struct {
		to   LatLon
		want float64
	}{
		{LatLon{10, 0, 0}, 0},    // north
		{LatLon{0, 10, 0}, 90},   // east
		{LatLon{-10, 0, 0}, 180}, // south
		{LatLon{0, -10, 0}, 270}, // west
	}
	for _, tc := range tests {
		if got := InitialBearingDeg(origin, tc.to); !almostEq(got, tc.want, 1e-6) {
			t.Errorf("bearing to %v = %v, want %v", tc.to, got, tc.want)
		}
	}
}

func TestLatLonValid(t *testing.T) {
	tests := []struct {
		p    LatLon
		want bool
	}{
		{LatLon{0, 0, 0}, true},
		{LatLon{90, 180, 0}, true},
		{LatLon{-90.01, 0, 0}, false},
		{LatLon{0, 180.01, 0}, false},
		{LatLon{math.NaN(), 0, 0}, false},
	}
	for _, tc := range tests {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestStringFormat(t *testing.T) {
	if got := (LatLon{9.058, 7.494, 0}).String(); got != "9.06,7.49" {
		t.Fatalf("String() = %q", got)
	}
}

// TestMidpointAntipodal: for antipodal inputs the midpoint is ill-defined,
// and the documented contract picks the point 90° from a toward a's nearer
// pole, on a's meridian. The old code returned an equator point regardless
// of a (a point 90° from a only when a itself sat on the equator).
func TestMidpointAntipodal(t *testing.T) {
	cases := []struct {
		a, want LatLon
	}{
		// Northern-hemisphere a: midpoint is pole-ward along a's meridian.
		{LatLon{LatDeg: 45, LonDeg: 10}, LatLon{LatDeg: 45, LonDeg: -170}},
		{LatLon{LatDeg: 30, LonDeg: -100}, LatLon{LatDeg: 60, LonDeg: 80}},
		// Southern-hemisphere a leans toward the south pole.
		{LatLon{LatDeg: -30, LonDeg: -100}, LatLon{LatDeg: -60, LonDeg: 80}},
		// Equatorial a: 90° toward the north pole IS the north pole.
		{LatLon{LatDeg: 0, LonDeg: 0}, LatLon{LatDeg: 90, LonDeg: 0}},
		// A pole itself has no pole-ward neighbour: documented fallback is
		// the equator point at a's longitude.
		{LatLon{LatDeg: 90, LonDeg: 0}, LatLon{LatDeg: 0, LonDeg: 0}},
		{LatLon{LatDeg: -90, LonDeg: 25}, LatLon{LatDeg: 0, LonDeg: 25}},
	}
	for _, c := range cases {
		b := LatLon{LatDeg: -c.a.LatDeg, LonDeg: c.a.LonDeg + 180}
		if b.LonDeg > 180 {
			b.LonDeg -= 360
		}
		m := Midpoint(c.a, b)
		// Compare positions on the sphere, not raw coordinates: at the pole
		// every longitude names the same point.
		if d := GreatCircleKm(m, c.want); d > 1 {
			t.Errorf("Midpoint(%v, %v) = %v, want %v (off by %.1f km)", c.a, b, m, c.want, d)
		}
		// The pick must still be equidistant from both endpoints.
		da, db := GreatCircleKm(m, c.a), GreatCircleKm(m, b)
		if !almostEq(da, db, 1e-3) {
			t.Errorf("antipodal midpoint %v not equidistant: %v vs %v", m, da, db)
		}
	}
}
