// Package stats provides the summary statistics the experiment harness
// reports: empirical CDFs, quantiles, and running summaries. Everything is
// deterministic and allocation-conscious so benches can call it in loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/min/max/mean/variance in one pass (Welford).
// The zero value is ready to use.
type Summary struct {
	n    int
	min  float64
	max  float64
	mean float64
	m2   float64
}

// Add folds a value into the summary. NaN values are dropped: one NaN
// would make every later Mean/Variance NaN.
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the number of values added.
func (s *Summary) N() int { return s.n }

// Min returns the smallest value added (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest value added (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the sample variance (0 for fewer than two values).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// String renders "n=... min=... mean=... max=...".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f mean=%.3f max=%.3f sd=%.3f", s.n, s.min, s.mean, s.max, s.Stddev())
}

// CDF is an empirical cumulative distribution over collected samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF creates a CDF, optionally pre-seeded with samples.
func NewCDF(samples ...float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add appends one sample. NaN samples are dropped: NaN compares false
// with everything, so a single one would poison every later
// Quantile/Median/At/Min (NaN order statistics and skewed ranks) with no
// error surfacing.
func (c *CDF) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll appends samples, dropping NaNs (see Add).
func (c *CDF) AddAll(vs []float64) {
	for _, v := range vs {
		c.Add(v)
	}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0,1]) using linear interpolation
// between order statistics. It panics on an empty CDF or q outside [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) outside [0,1]", q))
	}
	c.ensureSorted()
	if len(c.samples) == 1 {
		return c.samples[0]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// At returns P(X <= v), the empirical CDF evaluated at v.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Min returns the smallest sample; panics when empty.
func (c *CDF) Min() float64 {
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample; panics when empty.
func (c *CDF) Max() float64 {
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Mean returns the sample mean (0 when empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns (x, P(X<=x)) pairs suitable for plotting: one per distinct
// sample value, monotone in both coordinates.
func (c *CDF) Points() (xs, ps []float64) {
	if len(c.samples) == 0 {
		return nil, nil
	}
	c.ensureSorted()
	n := float64(len(c.samples))
	for i := 0; i < len(c.samples); i++ {
		// Emit only the last occurrence of each distinct x so P is the
		// proper right-continuous CDF value.
		if i+1 < len(c.samples) && c.samples[i+1] == c.samples[i] {
			continue
		}
		xs = append(xs, c.samples[i])
		ps = append(ps, float64(i+1)/n)
	}
	return xs, ps
}

// Histogram counts samples into nBins equal-width bins over [min,max].
type Histogram struct {
	// Lo and Hi are the histogram bounds.
	Lo, Hi float64
	// Counts holds the per-bin counts; out-of-range samples clamp into the
	// first/last bins.
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nBins bins over [lo,hi). It panics
// if nBins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nBins int) *Histogram {
	if nBins <= 0 {
		panic("stats: nBins must be positive")
	}
	if hi <= lo {
		panic("stats: hi must exceed lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nBins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of samples in bin i (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
