package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero Summary not neutral")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic set is 32/7.
	if !almostEq(s.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if !almostEq(s.Stddev(), math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 || s.Mean() != 42 {
		t.Fatalf("single-value summary wrong: %v", s.String())
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		var s Summary
		vals := make([]float64, n)
		sum := 0.0
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
			s.Add(vals[i])
			sum += vals[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		wantVar := ss / float64(n-1)
		return almostEq(s.Mean(), mean, 1e-9*math.Max(1, math.Abs(mean))) &&
			almostEq(s.Variance(), wantVar, 1e-6*math.Max(1, wantVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF(1, 2, 3, 4, 5)
	if c.Median() != 3 {
		t.Fatalf("Median = %v", c.Median())
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := c.Quantile(0.25); !almostEq(got, 2, 1e-12) {
		t.Fatalf("Q25 = %v", got)
	}
	// Interpolation between order stats.
	c2 := NewCDF(0, 10)
	if got := c2.Quantile(0.3); !almostEq(got, 3, 1e-12) {
		t.Fatalf("interpolated Q30 = %v", got)
	}
}

func TestCDFQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Quantile should panic")
		}
	}()
	NewCDF().Quantile(0.5)
}

func TestCDFQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(1.5) should panic")
		}
	}()
	NewCDF(1).Quantile(1.5)
}

func TestCDFAt(t *testing.T) {
	c := NewCDF(1, 2, 2, 3)
	tests := []struct{ v, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := c.At(tc.v); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if NewCDF().At(1) != 0 {
		t.Fatal("empty CDF At != 0")
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCDF()
		for i := 0; i < 200; i++ {
			c.Add(r.NormFloat64())
		}
		xs, ps := c.Points()
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] || ps[i] <= ps[i-1] {
				return false
			}
		}
		return len(ps) > 0 && almostEq(ps[len(ps)-1], 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileAtInverse(t *testing.T) {
	// For continuous samples, At(Quantile(q)) ≈ q.
	r := rand.New(rand.NewSource(9))
	c := NewCDF()
	for i := 0; i < 1000; i++ {
		c.Add(r.Float64() * 100)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := c.At(c.Quantile(q)); math.Abs(got-q) > 0.01 {
			t.Fatalf("At(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestCDFMinMaxMean(t *testing.T) {
	c := NewCDF(5, 1, 3)
	if c.Min() != 1 || c.Max() != 5 {
		t.Fatal("Min/Max wrong")
	}
	if !almostEq(c.Mean(), 3, 1e-12) {
		t.Fatalf("Mean = %v", c.Mean())
	}
	if NewCDF().Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
}

func TestCDFAddAllAndN(t *testing.T) {
	c := NewCDF()
	c.AddAll([]float64{3, 1, 2})
	c.Add(0)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	// Sorting happens lazily and samples stay correct after more adds.
	if c.Median() != 1.5 {
		t.Fatalf("Median = %v", c.Median())
	}
	c.Add(100)
	if c.Max() != 100 {
		t.Fatal("Max after late Add wrong")
	}
}

func TestCDFPointsDedup(t *testing.T) {
	c := NewCDF(1, 1, 1, 2)
	xs, ps := c.Points()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("xs = %v", xs)
	}
	if !almostEq(ps[0], 0.75, 1e-12) || !almostEq(ps[1], 1, 1e-12) {
		t.Fatalf("ps = %v", ps)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9, -1, 42} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -1 clamps to bin 0; 42 clamps to bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -1
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9, 42
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) || !almostEq(h.BinCenter(4), 9, 1e-12) {
		t.Fatal("BinCenter wrong")
	}
	if !almostEq(h.Fraction(0), 3.0/8, 1e-12) {
		t.Fatalf("Fraction = %v", h.Fraction(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = r.Float64() * 1000
	}
	c := NewCDF(vals...)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	// With 101 samples, quantile q lands exactly on index 100q.
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		want := sorted[int(q*100)]
		if got := c.Quantile(q); !almostEq(got, want, 1e-9) {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestSummaryDropsNaN(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.NaN())
	s.Add(3)
	if s.N() != 2 {
		t.Fatalf("N = %d, want 2 (NaN dropped)", s.N())
	}
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("mean/min/max = %v/%v/%v, want 2/1/3", s.Mean(), s.Min(), s.Max())
	}
	if math.IsNaN(s.Variance()) || math.IsNaN(s.Stddev()) {
		t.Fatal("NaN leaked into variance")
	}
	// A summary fed only NaNs stays empty.
	var empty Summary
	empty.Add(math.NaN())
	if empty.N() != 0 {
		t.Fatalf("N = %d, want 0", empty.N())
	}
}

func TestCDFDropsNaN(t *testing.T) {
	c := NewCDF(5, math.NaN(), 1, 3, math.NaN())
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3 (NaNs dropped)", c.N())
	}
	// NaN compares false with everything, so before the fix a single NaN
	// skewed sort order and poisoned the order statistics.
	if got := c.Median(); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
	if got := c.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := c.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if v := c.Quantile(q); math.IsNaN(v) {
			t.Fatalf("Quantile(%v) is NaN", q)
		}
	}
	if math.IsNaN(c.Mean()) {
		t.Fatal("Mean is NaN")
	}
	c.Add(math.NaN())
	if c.N() != 3 {
		t.Fatal("Add(NaN) grew the sample set")
	}
}
