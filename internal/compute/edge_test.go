package compute

import (
	"strings"
	"testing"
)

func TestPowerCapBoundaryValues(t *testing.T) {
	base := ServerSpec{Cores: 64, MemoryGB: 2048}
	cases := []struct {
		cap float64
		ok  bool
	}{
		{0, false},
		{-0.1, false},
		{1e-9, true}, // tiny but positive
		{0.15, true}, // the paper's budget-pressure regime
		{1, true},    // unconstrained is the inclusive upper bound
		{1.0000001, false},
		{2, false},
	}
	for _, c := range cases {
		s := base
		s.PowerCapFraction = c.cap
		if err := s.Validate(); (err == nil) != c.ok {
			t.Fatalf("cap %v: err=%v, want ok=%v", c.cap, err, c.ok)
		}
	}
	s := base
	s.PowerCapFraction = 1e-9
	if got := s.EffectiveCores(); got <= 0 || got >= 1 {
		t.Fatalf("tiny cap effective cores %v", got)
	}
}

func TestPlaceRejectsBeyondEffectiveCores(t *testing.T) {
	// 64 cores capped to 25%: 16 effective. A 20-core task fits the raw
	// hardware but not the power budget.
	n, err := NewNode(1, ServerSpec{Cores: 64, MemoryGB: 256, PowerCapFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if n.Fits(Task{ID: 1, Cores: 20, MemoryGB: 1}) {
		t.Fatal("power-capped node claims to fit a 20-core task with 16 effective cores")
	}
	err = n.Place(Task{ID: 1, Cores: 20, MemoryGB: 1})
	if err == nil {
		t.Fatal("placement beyond effective cores accepted")
	}
	if !strings.Contains(err.Error(), "does not fit") {
		t.Fatalf("unexpected rejection message: %v", err)
	}
	// Exactly at the cap fits; one more core does not.
	if err := n.Place(Task{ID: 2, Cores: 16, MemoryGB: 1}); err != nil {
		t.Fatalf("task at exactly the effective capacity rejected: %v", err)
	}
	if n.Fits(Task{ID: 3, Cores: 1, MemoryGB: 1}) {
		t.Fatal("full node claims spare capacity")
	}
}

func TestPlaceRejectsBeyondMemory(t *testing.T) {
	n, err := NewNode(1, ServerSpec{Cores: 8, MemoryGB: 32, PowerCapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Place(Task{ID: 1, Cores: 1, MemoryGB: 40}); err == nil {
		t.Fatal("placement beyond memory accepted")
	}
}

func TestPlaceErrorPaths(t *testing.T) {
	n, err := NewNode(1, ServerSpec{Cores: 8, MemoryGB: 32, PowerCapFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Place(Task{ID: 1, Cores: -1}); err == nil {
		t.Fatal("negative core demand accepted")
	}
	if err := n.Place(Task{ID: 1, Cores: 1, MemoryGB: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Place(Task{ID: 1, Cores: 1, MemoryGB: 1}); err == nil {
		t.Fatal("duplicate task ID accepted")
	}
	if err := n.Release(99); err == nil {
		t.Fatal("release of unknown task accepted")
	}
}

func TestClusterRejectsWhenNothingFits(t *testing.T) {
	c := NewCluster()
	for id := 0; id < 3; id++ {
		n, err := NewNode(id, ServerSpec{Cores: 4, MemoryGB: 16, PowerCapFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	reach := []Reachable{{SatID: 0, RTTMs: 5}, {SatID: 1, RTTMs: 6}, {SatID: 2, RTTMs: 7}}
	// 3 cores demanded, 2 effective per node.
	if _, err := c.PlaceLatencyGreedy(Task{ID: 1, Cores: 3, MemoryGB: 1}, reach); err == nil {
		t.Fatal("placement succeeded with no fitting node")
	}
	// Reachable satellites not in the cluster are skipped, not errors.
	if _, err := c.PlaceLatencyGreedy(Task{ID: 2, Cores: 1, MemoryGB: 1},
		[]Reachable{{SatID: 42, RTTMs: 1}, {SatID: 1, RTTMs: 6}}); err != nil {
		t.Fatalf("unknown reachable satellite broke placement: %v", err)
	}
}

func TestPlaceLatencyGreedyTieBreak(t *testing.T) {
	// Equal RTTs must break to the lower satellite ID, regardless of the
	// order the candidates arrive in.
	for _, order := range [][]Reachable{
		{{SatID: 7, RTTMs: 10}, {SatID: 3, RTTMs: 10}, {SatID: 5, RTTMs: 10}},
		{{SatID: 3, RTTMs: 10}, {SatID: 5, RTTMs: 10}, {SatID: 7, RTTMs: 10}},
		{{SatID: 5, RTTMs: 10}, {SatID: 7, RTTMs: 10}, {SatID: 3, RTTMs: 10}},
	} {
		c := NewCluster()
		for _, id := range []int{3, 5, 7} {
			n, err := NewNode(id, ServerSpec{Cores: 4, MemoryGB: 16, PowerCapFraction: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.AddNode(n); err != nil {
				t.Fatal(err)
			}
		}
		got, err := c.PlaceLatencyGreedy(Task{ID: 1, Cores: 1, MemoryGB: 1}, order)
		if err != nil {
			t.Fatal(err)
		}
		if got.SatID != 3 {
			t.Fatalf("order %v: placed on sat %d, want 3", order, got.SatID)
		}
	}
}

func TestPlaceLatencyGreedySpillsInRTTOrder(t *testing.T) {
	c := NewCluster()
	for _, id := range []int{0, 1} {
		n, err := NewNode(id, ServerSpec{Cores: 2, MemoryGB: 16, PowerCapFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	reach := []Reachable{{SatID: 1, RTTMs: 20}, {SatID: 0, RTTMs: 5}}
	first, err := c.PlaceLatencyGreedy(Task{ID: 1, Cores: 2, MemoryGB: 1}, reach)
	if err != nil || first.SatID != 0 {
		t.Fatalf("first placement on %d (%v), want nearest sat 0", first.SatID, err)
	}
	second, err := c.PlaceLatencyGreedy(Task{ID: 2, Cores: 2, MemoryGB: 1}, reach)
	if err != nil || second.SatID != 1 {
		t.Fatalf("spill placement on %d (%v), want sat 1", second.SatID, err)
	}
}
