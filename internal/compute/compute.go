// Package compute models the satellite-server resources and request
// scheduling of the in-orbit compute service: per-satellite capacity
// (cores, memory, power-capped utilisation) and placement of workloads onto
// reachable satellites.
package compute

import (
	"fmt"
	"sort"
)

// ServerSpec is the compute capacity carried by one satellite.
type ServerSpec struct {
	// Cores is the number of CPU cores.
	Cores int
	// MemoryGB is the installed memory.
	MemoryGB int
	// PowerCapFraction limits sustained utilisation to respect the
	// satellite's power budget (§4): 1.0 means unconstrained.
	PowerCapFraction float64
}

// DefaultServerSpec mirrors the paper's HPE DL325 reference with a power
// cap reflecting the ~15-23% budget pressure.
func DefaultServerSpec() ServerSpec {
	return ServerSpec{Cores: 64, MemoryGB: 2048, PowerCapFraction: 1.0}
}

// Validate reports whether the spec is usable.
func (s ServerSpec) Validate() error {
	if s.Cores <= 0 || s.MemoryGB <= 0 {
		return fmt.Errorf("compute: cores (%d) and memory (%d GB) must be positive", s.Cores, s.MemoryGB)
	}
	if s.PowerCapFraction <= 0 || s.PowerCapFraction > 1 {
		return fmt.Errorf("compute: power cap %v outside (0,1]", s.PowerCapFraction)
	}
	return nil
}

// EffectiveCores returns the sustained core capacity under the power cap.
func (s ServerSpec) EffectiveCores() float64 {
	return float64(s.Cores) * s.PowerCapFraction
}

// Task is a compute request to place.
type Task struct {
	// ID identifies the task.
	ID int
	// Cores and MemoryGB are the task's demands.
	Cores    float64
	MemoryGB float64
}

// Node is one satellite-server's allocatable state.
type Node struct {
	// SatID is the hosting satellite.
	SatID int
	// Spec is the server hardware.
	Spec ServerSpec

	usedCores float64
	usedMemGB float64
	tasks     map[int]Task
}

// NewNode creates an empty node.
func NewNode(satID int, spec ServerSpec) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Node{SatID: satID, Spec: spec, tasks: make(map[int]Task)}, nil
}

// Fits reports whether the task fits in the node's remaining capacity.
func (n *Node) Fits(t Task) bool {
	return n.usedCores+t.Cores <= n.Spec.EffectiveCores()+1e-9 &&
		n.usedMemGB+t.MemoryGB <= float64(n.Spec.MemoryGB)+1e-9
}

// Place reserves capacity for the task.
func (n *Node) Place(t Task) error {
	if t.Cores < 0 || t.MemoryGB < 0 {
		return fmt.Errorf("compute: negative task demands %+v", t)
	}
	if _, dup := n.tasks[t.ID]; dup {
		return fmt.Errorf("compute: task %d already placed on sat %d", t.ID, n.SatID)
	}
	if !n.Fits(t) {
		return fmt.Errorf("compute: task %d does not fit on sat %d (%.1f/%.1f cores, %.0f/%d GB)",
			t.ID, n.SatID, n.usedCores, n.Spec.EffectiveCores(), n.usedMemGB, n.Spec.MemoryGB)
	}
	n.usedCores += t.Cores
	n.usedMemGB += t.MemoryGB
	n.tasks[t.ID] = t
	return nil
}

// Release frees the capacity of a placed task.
func (n *Node) Release(taskID int) error {
	t, ok := n.tasks[taskID]
	if !ok {
		return fmt.Errorf("compute: task %d not on sat %d", taskID, n.SatID)
	}
	n.usedCores -= t.Cores
	n.usedMemGB -= t.MemoryGB
	delete(n.tasks, taskID)
	return nil
}

// Tasks returns the number of placed tasks.
func (n *Node) Tasks() int { return len(n.tasks) }

// UtilizationCores returns used/effective core fraction.
func (n *Node) UtilizationCores() float64 {
	return n.usedCores / n.Spec.EffectiveCores()
}

// Cluster is the set of satellite-servers reachable for some placement
// decision, with a latency for each.
type Cluster struct {
	nodes map[int]*Node
}

// NewCluster creates an empty cluster.
func NewCluster() *Cluster { return &Cluster{nodes: make(map[int]*Node)} }

// AddNode registers a satellite-server.
func (c *Cluster) AddNode(n *Node) error {
	if _, dup := c.nodes[n.SatID]; dup {
		return fmt.Errorf("compute: sat %d already in cluster", n.SatID)
	}
	c.nodes[n.SatID] = n
	return nil
}

// Node returns the node for a satellite, if present.
func (c *Cluster) Node(satID int) (*Node, bool) {
	n, ok := c.nodes[satID]
	return n, ok
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Reachable is a placement candidate: a satellite with its current RTT to
// the requesting user (or user group).
type Reachable struct {
	SatID int
	RTTMs float64
}

// PlaceLatencyGreedy places the task on the lowest-RTT reachable node with
// room, returning the chosen candidate. This is the edge-computing
// placement of §3.1: nearest satellite first, spill to the next.
func (c *Cluster) PlaceLatencyGreedy(t Task, reachable []Reachable) (Reachable, error) {
	sorted := append([]Reachable(nil), reachable...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RTTMs != sorted[j].RTTMs {
			return sorted[i].RTTMs < sorted[j].RTTMs
		}
		return sorted[i].SatID < sorted[j].SatID
	})
	for _, cand := range sorted {
		n, ok := c.nodes[cand.SatID]
		if !ok {
			continue
		}
		if n.Fits(t) {
			if err := n.Place(t); err != nil {
				return Reachable{}, err
			}
			return cand, nil
		}
	}
	return Reachable{}, fmt.Errorf("compute: no reachable node can fit task %d", t.ID)
}

// TotalUtilization returns the mean core utilisation across nodes.
func (c *Cluster) TotalUtilization() float64 {
	if len(c.nodes) == 0 {
		return 0
	}
	sum := 0.0
	for _, n := range c.nodes {
		sum += n.UtilizationCores()
	}
	return sum / float64(len(c.nodes))
}
