package compute

import (
	"math"
	"testing"
)

func newNode(t *testing.T, satID int, spec ServerSpec) *Node {
	t.Helper()
	n, err := NewNode(satID, spec)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		s    ServerSpec
		ok   bool
	}{
		{"default", DefaultServerSpec(), true},
		{"no-cores", ServerSpec{Cores: 0, MemoryGB: 1, PowerCapFraction: 1}, false},
		{"no-mem", ServerSpec{Cores: 1, MemoryGB: 0, PowerCapFraction: 1}, false},
		{"bad-cap", ServerSpec{Cores: 1, MemoryGB: 1, PowerCapFraction: 1.5}, false},
		{"zero-cap", ServerSpec{Cores: 1, MemoryGB: 1, PowerCapFraction: 0}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestEffectiveCoresUnderPowerCap(t *testing.T) {
	s := ServerSpec{Cores: 64, MemoryGB: 2048, PowerCapFraction: 0.5}
	if got := s.EffectiveCores(); got != 32 {
		t.Fatalf("EffectiveCores = %v", got)
	}
}

func TestPlaceReleaseAccounting(t *testing.T) {
	n := newNode(t, 7, ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1})
	if err := n.Place(Task{ID: 1, Cores: 4, MemoryGB: 32}); err != nil {
		t.Fatal(err)
	}
	if n.Tasks() != 1 {
		t.Fatalf("Tasks = %d", n.Tasks())
	}
	if got := n.UtilizationCores(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Utilization = %v", got)
	}
	// Duplicate ID rejected.
	if err := n.Place(Task{ID: 1, Cores: 1}); err == nil {
		t.Fatal("duplicate task accepted")
	}
	// Negative demands rejected.
	if err := n.Place(Task{ID: 2, Cores: -1}); err == nil {
		t.Fatal("negative demand accepted")
	}
	// Overflow rejected.
	if err := n.Place(Task{ID: 3, Cores: 5}); err == nil {
		t.Fatal("core overflow accepted")
	}
	if err := n.Place(Task{ID: 4, Cores: 1, MemoryGB: 64}); err == nil {
		t.Fatal("memory overflow accepted")
	}
	// Release frees capacity.
	if err := n.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := n.Release(1); err == nil {
		t.Fatal("double release accepted")
	}
	if err := n.Place(Task{ID: 3, Cores: 8, MemoryGB: 64}); err != nil {
		t.Fatalf("full-capacity placement after release failed: %v", err)
	}
}

func TestNodeRejectsBadSpec(t *testing.T) {
	if _, err := NewNode(1, ServerSpec{}); err == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestClusterPlacementGreedy(t *testing.T) {
	c := NewCluster()
	for sat := 0; sat < 3; sat++ {
		if err := c.AddNode(newNode(t, sat, ServerSpec{Cores: 4, MemoryGB: 16, PowerCapFraction: 1})); err != nil {
			t.Fatal(err)
		}
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	if err := c.AddNode(newNode(t, 0, DefaultServerSpec())); err == nil {
		t.Fatal("duplicate node accepted")
	}
	reach := []Reachable{{SatID: 2, RTTMs: 9}, {SatID: 0, RTTMs: 4}, {SatID: 1, RTTMs: 6}}

	// First task goes to the lowest-latency satellite.
	got, err := c.PlaceLatencyGreedy(Task{ID: 1, Cores: 4, MemoryGB: 8}, reach)
	if err != nil || got.SatID != 0 {
		t.Fatalf("placement = %+v, %v", got, err)
	}
	// Second task spills to the next-lowest (sat 0 is core-full).
	got, err = c.PlaceLatencyGreedy(Task{ID: 2, Cores: 4, MemoryGB: 8}, reach)
	if err != nil || got.SatID != 1 {
		t.Fatalf("spill placement = %+v, %v", got, err)
	}
	// A task no node can fit fails.
	if _, err := c.PlaceLatencyGreedy(Task{ID: 3, Cores: 100}, reach); err == nil {
		t.Fatal("oversize task accepted")
	}
	// Unknown satellites in the reachable list are skipped gracefully.
	got, err = c.PlaceLatencyGreedy(Task{ID: 4, Cores: 1, MemoryGB: 1},
		[]Reachable{{SatID: 99, RTTMs: 1}, {SatID: 2, RTTMs: 9}})
	if err != nil || got.SatID != 2 {
		t.Fatalf("unknown-sat handling = %+v, %v", got, err)
	}
}

func TestClusterUtilization(t *testing.T) {
	c := NewCluster()
	n0 := newNode(t, 0, ServerSpec{Cores: 4, MemoryGB: 16, PowerCapFraction: 1})
	n1 := newNode(t, 1, ServerSpec{Cores: 4, MemoryGB: 16, PowerCapFraction: 1})
	if err := c.AddNode(n0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(n1); err != nil {
		t.Fatal(err)
	}
	if err := n0.Place(Task{ID: 1, Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalUtilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("TotalUtilization = %v", got)
	}
	if NewCluster().TotalUtilization() != 0 {
		t.Fatal("empty cluster utilization != 0")
	}
	if _, ok := c.Node(0); !ok {
		t.Fatal("Node lookup failed")
	}
	if _, ok := c.Node(42); ok {
		t.Fatal("phantom node found")
	}
}
