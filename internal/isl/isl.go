// Package isl builds the inter-satellite link topology. The planned
// constellations use the "+grid" design: every satellite keeps four laser
// links — two to its in-plane neighbours and two to the same-slot satellite
// in the adjacent planes of its shell. Shells are not cross-linked (their
// relative geometry drifts too fast for laser pointing).
package isl

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
)

// Link is one inter-satellite link between satellites A and B (IDs in the
// owning constellation, A < B).
type Link struct {
	A, B int
}

// Grid is the +grid ISL topology for one constellation.
type Grid struct {
	c     *constellation.Constellation
	links []Link
	// neighbors[id] lists the satellite IDs adjacent to id.
	neighbors [][]int
}

// BandwidthGbps is the default ISL capacity, matching the multi-Gbps laser
// terminals the paper cites (Mynaric-class hardware); up/down links are an
// order of magnitude more constrained.
const BandwidthGbps = 20.0

// NewPlusGrid wires the +grid topology over the constellation.
func NewPlusGrid(c *constellation.Constellation) *Grid {
	g := &Grid{c: c, neighbors: make([][]int, c.Size())}
	addLink := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		g.links = append(g.links, Link{A: a, B: b})
		g.neighbors[a] = append(g.neighbors[a], b)
		g.neighbors[b] = append(g.neighbors[b], a)
	}

	base := 0
	for _, sh := range c.Shells {
		idOf := func(plane, slot int) int {
			plane = (plane + sh.Planes) % sh.Planes
			slot = (slot + sh.SatsPerPlane) % sh.SatsPerPlane
			return base + plane*sh.SatsPerPlane + slot
		}
		for p := 0; p < sh.Planes; p++ {
			for k := 0; k < sh.SatsPerPlane; k++ {
				id := idOf(p, k)
				// Intra-plane successor (ring). Guard against degenerate
				// one-satellite planes producing self-links.
				if sh.SatsPerPlane > 1 {
					addLink(id, idOf(p, k+1))
				}
				// Cross-plane neighbour (ring of planes).
				if sh.Planes > 1 {
					addLink(id, idOf(p+1, k))
				}
			}
		}
		base += sh.Count()
	}
	// Deduplicate: rings of size 2 generate each link twice.
	g.dedupe()
	return g
}

func (g *Grid) dedupe() {
	seen := make(map[Link]bool, len(g.links))
	out := g.links[:0]
	for _, l := range g.links {
		if seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	g.links = out
	for id := range g.neighbors {
		nset := make(map[int]bool, len(g.neighbors[id]))
		ns := g.neighbors[id][:0]
		for _, n := range g.neighbors[id] {
			if n == id || nset[n] {
				continue
			}
			nset[n] = true
			ns = append(ns, n)
		}
		g.neighbors[id] = ns
	}
}

// Links returns the link list (shared slice; do not mutate).
func (g *Grid) Links() []Link { return g.links }

// Neighbors returns the IDs adjacent to sat id (shared slice; do not mutate).
func (g *Grid) Neighbors(id int) []int { return g.neighbors[id] }

// Degree returns the number of ISLs terminating at satellite id.
func (g *Grid) Degree(id int) int { return len(g.neighbors[id]) }

// LengthKm returns the instantaneous length of link l given a position
// snapshot indexed by satellite ID.
func LengthKm(l Link, snapshot []geo.Vec3) float64 {
	return snapshot[l.A].Distance(snapshot[l.B])
}

// LatencyMs returns the one-way propagation latency of link l at the given
// snapshot.
func LatencyMs(l Link, snapshot []geo.Vec3) float64 {
	return units.PropagationDelayMs(LengthKm(l, snapshot))
}

// Stats summarises the geometry of the topology at a snapshot.
type Stats struct {
	Links                int
	MinKm, MaxKm, MeanKm float64
	MinDegree, MaxDegree int
	MeanLatencyMs        float64
}

// StatsAt computes topology statistics for a snapshot.
func (g *Grid) StatsAt(snapshot []geo.Vec3) (Stats, error) {
	if len(snapshot) != g.c.Size() {
		return Stats{}, fmt.Errorf("isl: snapshot size %d, constellation %d", len(snapshot), g.c.Size())
	}
	s := Stats{Links: len(g.links), MinDegree: 1 << 30}
	if len(g.links) == 0 {
		s.MinDegree = 0
		return s, nil
	}
	s.MinKm = 1e18
	var sum float64
	for _, l := range g.links {
		d := LengthKm(l, snapshot)
		sum += d
		if d < s.MinKm {
			s.MinKm = d
		}
		if d > s.MaxKm {
			s.MaxKm = d
		}
	}
	s.MeanKm = sum / float64(len(g.links))
	s.MeanLatencyMs = units.PropagationDelayMs(s.MeanKm)
	for id := range g.neighbors {
		d := len(g.neighbors[id])
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s, nil
}
