package isl

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/units"
)

func smallConst(t *testing.T, planes, sats int) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: planes, SatsPerPlane: sats, PhaseFactor: 1, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlusGridDegreeFour(t *testing.T) {
	// Classic +grid: every satellite has exactly 4 ISLs when planes>2 and
	// sats/plane>2.
	c := smallConst(t, 6, 8)
	g := NewPlusGrid(c)
	for id := 0; id < c.Size(); id++ {
		if got := g.Degree(id); got != 4 {
			t.Fatalf("sat %d degree = %d, want 4", id, got)
		}
	}
	// Total links = 2 per satellite (each of the 4 links shared by 2).
	if got, want := len(g.Links()), c.Size()*2; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
}

func TestPlusGridSmallRings(t *testing.T) {
	// With 2 planes the cross-plane ring degenerates: each satellite has
	// one cross-plane neighbour, not two.
	c := smallConst(t, 2, 4)
	g := NewPlusGrid(c)
	for id := 0; id < c.Size(); id++ {
		if got := g.Degree(id); got != 3 {
			t.Fatalf("sat %d degree = %d, want 3 (2 in-plane + 1 cross)", id, got)
		}
	}
}

func TestPlusGridNoSelfLinksNoDuplicates(t *testing.T) {
	for _, dims := range [][2]int{{1, 2}, {2, 2}, {3, 1}, {1, 1}, {5, 7}} {
		c := smallConst(t, dims[0], dims[1])
		g := NewPlusGrid(c)
		seen := map[Link]bool{}
		for _, l := range g.Links() {
			if l.A == l.B {
				t.Fatalf("%v: self link %v", dims, l)
			}
			if l.A > l.B {
				t.Fatalf("%v: unnormalised link %v", dims, l)
			}
			if seen[l] {
				t.Fatalf("%v: duplicate link %v", dims, l)
			}
			seen[l] = true
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	c := smallConst(t, 5, 6)
	g := NewPlusGrid(c)
	for id := 0; id < c.Size(); id++ {
		for _, nb := range g.Neighbors(id) {
			found := false
			for _, back := range g.Neighbors(nb) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %d->%d", id, nb)
			}
		}
	}
}

func TestShellsNotCrossLinked(t *testing.T) {
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "a", AltitudeKm: 550, InclinationDeg: 53, Planes: 3, SatsPerPlane: 4, MinElevationDeg: 25},
		{Name: "b", AltitudeKm: 1110, InclinationDeg: 54, Planes: 3, SatsPerPlane: 4, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewPlusGrid(c)
	for _, l := range g.Links() {
		sa := c.Satellites[l.A].ShellIndex
		sb := c.Satellites[l.B].ShellIndex
		if sa != sb {
			t.Fatalf("cross-shell link %v (%d vs %d)", l, sa, sb)
		}
	}
}

func TestLinkGeometry(t *testing.T) {
	c := smallConst(t, 6, 8)
	g := NewPlusGrid(c)
	snap := c.Snapshot(0)
	// Any link is bounded by the orbital diameter; with 6 planes the
	// cross-plane links legitimately span up to 60° of RAAN.
	diameter := 2 * (units.EarthRadiusKm + 550)
	for _, l := range g.Links() {
		d := LengthKm(l, snap)
		if d <= 0 || d >= diameter {
			t.Fatalf("link %v length %v km implausible", l, d)
		}
		if lat := LatencyMs(l, snap); lat != units.PropagationDelayMs(d) {
			t.Fatalf("latency mismatch for %v", l)
		}
	}
}

func TestInPlaneLinkLengthExact(t *testing.T) {
	// In-plane neighbours sit 360/S apart on a circle of radius Re+alt.
	c := smallConst(t, 4, 8)
	g := NewPlusGrid(c)
	snap := c.Snapshot(0)
	// Find an in-plane link (both sats in plane 0).
	for _, l := range g.Links() {
		if c.Satellites[l.A].Plane == 0 && c.Satellites[l.B].Plane == 0 {
			want := 2 * (units.EarthRadiusKm + 550) * 0.3826834323650898 // sin(22.5°)
			if d := LengthKm(l, snap); d < want-1 || d > want+1 {
				t.Fatalf("in-plane link length %v, want %v", d, want)
			}
			return
		}
	}
	t.Fatal("no in-plane link found")
}

func TestStatsAt(t *testing.T) {
	c := smallConst(t, 6, 8)
	g := NewPlusGrid(c)
	snap := c.Snapshot(100)
	s, err := g.StatsAt(snap)
	if err != nil {
		t.Fatal(err)
	}
	if s.Links != len(g.Links()) {
		t.Fatalf("Stats.Links = %d", s.Links)
	}
	if s.MinKm <= 0 || s.MinKm > s.MeanKm || s.MeanKm > s.MaxKm {
		t.Fatalf("stats ordering broken: %+v", s)
	}
	if s.MinDegree != 4 || s.MaxDegree != 4 {
		t.Fatalf("degrees: %+v", s)
	}
	if s.MeanLatencyMs != units.PropagationDelayMs(s.MeanKm) {
		t.Fatalf("mean latency mismatch: %+v", s)
	}
}

func TestStatsSizeMismatch(t *testing.T) {
	c := smallConst(t, 3, 3)
	g := NewPlusGrid(c)
	if _, err := g.StatsAt(nil); err == nil {
		t.Fatal("want error for wrong snapshot size")
	}
}

func TestStarlinkGridScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewPlusGrid(c)
	// 4409 satellites × 4 links / 2 = 8818 links.
	if got := len(g.Links()); got != 8818 {
		t.Fatalf("Starlink +grid links = %d, want 8818", got)
	}
}
