// Package fleet is the fleet-scale session orchestrator — the control
// plane of the in-orbit compute service. Where internal/meetup places one
// user group at a time with full per-group machinery, fleet places and
// migrates hundreds of thousands of concurrent sessions across the whole
// constellation under per-satellite capacity constraints:
//
//   - a spherical lat/lon-grid footprint index (Index) makes reachable-set
//     queries O(cells touched) instead of the O(N) scan of
//     visibility.Observer.Reachable, rebuilt once per epoch and shared by
//     every query of that epoch;
//   - a sharded session table (Table) holds the session population with
//     per-shard locking so ingest and scans scale across cores;
//   - an epoch-batched hand-off planner (Orchestrator) advances simulated
//     time in fixed steps, detects assignments about to lose visibility,
//     re-places them Sticky-style (longest remaining visibility within a
//     latency band) under load-aware admission, and costs every migration
//     over the ISL grid (internal/netgraph) with the live-migration model
//     (internal/migrate).
//
// Everything is deterministic under a fixed workload: parallel phases write
// to disjoint slots and all order-sensitive decisions happen in session-ID
// order.
package fleet

import (
	"fmt"
	"math"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
	"repro/internal/visibility"
)

// DefaultCellDeg is the default footprint-index cell size. ~4° keeps the
// per-cell occupancy near one satellite for the constellations the paper
// studies while a query window stays around a hundred cells.
const DefaultCellDeg = 4

// Index is a spherical lat/lon-grid footprint index over one constellation
// snapshot. Each satellite is bucketed by its sub-satellite point; a
// reachability query visits only the cells whose great-circle distance to
// the ground point can be within the constellation's largest coverage cone,
// then applies the exact per-satellite chord test. Queries assume ground
// points on the Earth surface (AltKm 0) — the same regime where the
// elevation mask is equivalent to a central-angle bound.
//
// Rebuild the index whenever the snapshot moves (once per epoch); queries
// between rebuilds share the indexed snapshot. Rebuild is not safe
// concurrently with queries; concurrent queries are read-only and safe.
type Index struct {
	c   *constellation.Constellation
	obs *visibility.Observer

	cellDeg    float64
	rows, cols int
	// maxRadDeg is the search radius: the largest coverage central angle
	// over all shells, in degrees. A satellite visible from a surface point
	// has its subpoint within this angle of the point.
	maxRadDeg float64

	// CSR cell storage, rebuilt per epoch: satellites of cell i are
	// sats[start[i]:start[i+1]], ascending by ID. posCSR and chord2CSR
	// mirror sats in the same order so a query streams contiguous memory
	// (the linear scan's one advantage) instead of gathering random IDs.
	start     []int32
	sats      []int32
	posCSR    []geo.Vec3
	chord2CSR []float64
	cellOfSat []int32
	cursor    []int32
	snap      []geo.Vec3

	// chord2[id] is the squared max slant range of satellite id — the same
	// threshold visibility.Observer applies.
	chord2 []float64
	// cosRow[r] is the minimum |cos lat| over row r's latitude band,
	// precomputed so the query's per-row haversine bound does no trig.
	cosRow []float64
}

// NewIndex builds an empty index for the constellation. cellDeg is the grid
// cell size in degrees; zero means DefaultCellDeg. Call Rebuild before
// querying.
func NewIndex(c *constellation.Constellation, cellDeg float64) (*Index, error) {
	if cellDeg == 0 {
		cellDeg = DefaultCellDeg
	}
	if cellDeg < 0.1 || cellDeg > 30 {
		return nil, fmt.Errorf("fleet: cell size %v° outside [0.1,30]", cellDeg)
	}
	if c == nil || c.Size() == 0 {
		return nil, fmt.Errorf("fleet: empty constellation")
	}
	ix := &Index{
		c:       c,
		obs:     visibility.NewObserver(c),
		cellDeg: cellDeg,
		rows:    int(math.Ceil(180 / cellDeg)),
		cols:    int(math.Ceil(360 / cellDeg)),
	}
	for _, sh := range c.Shells {
		rad := units.Rad2Deg(visibility.CoverageCentralAngleRad(sh.AltitudeKm, sh.MinElevationDeg))
		if rad > ix.maxRadDeg {
			ix.maxRadDeg = rad
		}
	}
	cells := ix.rows * ix.cols
	ix.start = make([]int32, cells+1)
	ix.cursor = make([]int32, cells)
	ix.sats = make([]int32, c.Size())
	ix.posCSR = make([]geo.Vec3, c.Size())
	ix.chord2CSR = make([]float64, c.Size())
	ix.cellOfSat = make([]int32, c.Size())
	ix.chord2 = make([]float64, c.Size())
	for id := range c.Satellites {
		sh := c.Shells[c.Satellites[id].ShellIndex]
		d := visibility.MaxSlantRangeKm(sh.AltitudeKm, sh.MinElevationDeg)
		ix.chord2[id] = d * d
	}
	ix.cosRow = make([]float64, ix.rows)
	for r := range ix.cosRow {
		latTop := 90 - float64(r)*cellDeg
		latBot := latTop - cellDeg
		ix.cosRow[r] = math.Min(math.Cos(units.Deg2Rad(latTop)), math.Cos(units.Deg2Rad(latBot)))
	}
	return ix, nil
}

// Observer returns the exact visibility evaluator the index filters with.
func (ix *Index) Observer() *visibility.Observer { return ix.obs }

// CellDeg returns the grid cell size in degrees.
func (ix *Index) CellDeg() float64 { return ix.cellDeg }

// rowOf maps a latitude to a grid row (clamped).
func (ix *Index) rowOf(latDeg float64) int {
	r := int((90 - latDeg) / ix.cellDeg)
	if r < 0 {
		return 0
	}
	if r >= ix.rows {
		return ix.rows - 1
	}
	return r
}

// colOf maps a longitude to a grid column (wrapped).
func (ix *Index) colOf(lonDeg float64) int {
	c := int(math.Floor((lonDeg + 180) / ix.cellDeg))
	c %= ix.cols
	if c < 0 {
		c += ix.cols
	}
	return c
}

// Rebuild re-buckets every satellite by its subpoint in the snapshot.
// snapshot must be indexed by satellite ID (Constellation.Snapshot order)
// and is retained by reference until the next Rebuild — callers that reuse
// snapshot buffers must not overwrite them while queries are in flight.
func (ix *Index) Rebuild(snapshot []geo.Vec3) {
	if len(snapshot) != ix.c.Size() {
		panic(fmt.Sprintf("fleet: snapshot has %d satellites, constellation %d", len(snapshot), ix.c.Size()))
	}
	ix.snap = snapshot
	for id, pos := range snapshot {
		ll := geo.FromECEF(pos)
		ix.cellOfSat[id] = int32(ix.rowOf(ll.LatDeg)*ix.cols + ix.colOf(ll.LonDeg))
	}
	for i := range ix.start {
		ix.start[i] = 0
	}
	for _, cell := range ix.cellOfSat {
		ix.start[cell+1]++
	}
	for i := 1; i < len(ix.start); i++ {
		ix.start[i] += ix.start[i-1]
	}
	copy(ix.cursor, ix.start[:len(ix.cursor)])
	for id, cell := range ix.cellOfSat {
		k := ix.cursor[cell]
		ix.sats[k] = int32(id)
		ix.posCSR[k] = snapshot[id]
		ix.chord2CSR[k] = ix.chord2[id]
		ix.cursor[cell]++
	}
}

// Snapshot returns the snapshot the index was last rebuilt on.
func (ix *Index) Snapshot() []geo.Vec3 { return ix.snap }

// Cells returns the total grid cell count.
func (ix *Index) Cells() int { return ix.rows * ix.cols }

// CellIndex maps a surface point to its row-major grid cell — the
// footprint-region key the planner shards its work by. Stable across
// Rebuilds (it depends only on the grid geometry, not the snapshot).
func (ix *Index) CellIndex(latDeg, lonDeg float64) int {
	return ix.rowOf(latDeg)*ix.cols + ix.colOf(lonDeg)
}

// ForEachNear calls fn(satID, pos) for every satellite whose subpoint may
// lie within (max coverage angle + extraKm of surface arc) of the given
// surface point — a superset of the satellites visible from any point
// within extraKm of it. Candidates are a small constant factor over the
// true reachable set; callers apply their own exact test. Iteration order
// is deterministic (row-major cells, ascending IDs within a cell).
func (ix *Index) ForEachNear(latDeg, lonDeg, extraKm float64, fn func(satID int, pos geo.Vec3)) {
	ix.forEachRange(latDeg, lonDeg, extraKm, func(lo, hi int32) {
		for k := lo; k < hi; k++ {
			fn(int(ix.sats[k]), ix.posCSR[k])
		}
	})
}

// forEachRange yields the CSR spans [lo, hi) of the cells a query window
// touches: the row/column windowing shared by every query path.
func (ix *Index) forEachRange(latDeg, lonDeg, extraKm float64, fn func(lo, hi int32)) {
	radDeg := ix.maxRadDeg + units.Rad2Deg(extraKm/units.EarthRadiusKm) + 1e-9
	radRad := units.Deg2Rad(radDeg)
	sinHalfRad := math.Sin(radRad / 2)
	cosG := math.Cos(units.Deg2Rad(latDeg))

	rowLo := ix.rowOf(latDeg + radDeg)
	rowHi := ix.rowOf(latDeg - radDeg)
	for r := rowLo; r <= rowHi; r++ {
		// Haversine bound: sin²(Δλ/2) ≤ sin²(θ/2)/(cos φ₁·cos φ₂), with
		// cos φ₂ the row's precomputed band minimum.
		full := false
		var dLonDeg float64
		prod := cosG * ix.cosRow[r]
		if prod < 1e-9 {
			full = true
		} else if s := sinHalfRad / math.Sqrt(prod); s >= 1 {
			full = true
		} else {
			dLonDeg = units.Rad2Deg(2 * math.Asin(s))
			if 2*dLonDeg >= 360-ix.cellDeg {
				full = true
			}
		}

		// Row-major CSR means a contiguous column window is one contiguous
		// span of sats — visit it as 1–2 flat segments, not per-cell.
		base := r * ix.cols
		if full {
			fn(ix.start[base], ix.start[base+ix.cols])
			continue
		}
		colLo := ix.colOf(lonDeg - dLonDeg)
		colHi := ix.colOf(lonDeg + dLonDeg)
		if colLo <= colHi {
			fn(ix.start[base+colLo], ix.start[base+colHi+1])
		} else { // window wraps the dateline
			fn(ix.start[base+colLo], ix.start[base+ix.cols])
			fn(ix.start[base], ix.start[base+colHi+1])
		}
	}
}

// ReachableFrom appends a Pass for every satellite reachable from the
// surface point ground to dst and returns the extended slice — the indexed
// equivalent of Observer.Reachable over the indexed snapshot, with the same
// dst append/reuse contract. Results are grouped by grid cell, not sorted
// by satellite ID.
func (ix *Index) ReachableFrom(ground geo.Vec3, dst []visibility.Pass) []visibility.Pass {
	ll := geo.FromECEF(ground)
	pos, chord2 := ix.posCSR, ix.chord2CSR
	ix.forEachRange(ll.LatDeg, ll.LonDeg, 0, func(lo, hi int32) {
		for k := lo; k < hi; k++ {
			rel := pos[k].Sub(ground)
			d2 := rel.Dot(rel)
			if d2 > chord2[k] {
				continue
			}
			d := math.Sqrt(d2)
			dst = append(dst, visibility.Pass{
				SatID:        int(ix.sats[k]),
				SlantKm:      d,
				ElevationDeg: visibility.ElevationDeg(ground, pos[k]),
				RTTMs:        units.RTTMs(d),
			})
		}
	})
	return dst
}

// CountReachableFrom returns how many satellites are reachable from the
// surface point without materialising the pass list.
func (ix *Index) CountReachableFrom(ground geo.Vec3) int {
	ll := geo.FromECEF(ground)
	pos, chord2 := ix.posCSR, ix.chord2CSR
	n := 0
	ix.forEachRange(ll.LatDeg, ll.LonDeg, 0, func(lo, hi int32) {
		for k := lo; k < hi; k++ {
			rel := pos[k].Sub(ground)
			if rel.Dot(rel) <= chord2[k] {
				n++
			}
		}
	})
	return n
}
