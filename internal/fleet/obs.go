package fleet

import "repro/internal/obs"

// Metric families the orchestrator maintains. Families are registered on
// the configured registry (obs.Default() unless overridden); hot paths
// hold the concrete metric so an update is one atomic op. Two
// orchestrators on the same registry share families — counters aggregate.
type metricsSet struct {
	sessions     *obs.Gauge     // fleet_sessions
	assigned     *obs.Gauge     // fleet_sessions_assigned
	placeInitial *obs.Counter   // fleet_placements_total{kind="initial"}
	placeHandoff *obs.Counter   // fleet_placements_total{kind="handoff"}
	handoffs     *obs.Counter   // fleet_handoffs_total
	rejections   *obs.Counter   // fleet_rejections_total
	departures   *obs.Counter   // fleet_departures_total
	epochs       *obs.Counter   // fleet_epochs_total
	placeLat     *obs.Histogram // fleet_placement_latency_seconds
	indexQuery   *obs.Histogram // fleet_index_query_seconds
	epochSec     *obs.Histogram // fleet_epoch_seconds
	transferMs   *obs.Histogram // fleet_handoff_transfer_ms

	// Streaming quantiles (no preset bucket bounds) feeding the timeline
	// recorder and the fleetsim SLO report.
	replanQ   *obs.Quantile // fleet_replan_ms — per-session proposal/replan latency
	transferQ *obs.Quantile // fleet_transfer_ms — hand-off one-way transfer latency

	// Streaming-planner families.
	streamChunks *obs.Counter // fleet_planner_chunks_total
	ssspBatched  *obs.Counter // fleet_transfer_sssp_rows_total{mode="batched"}
	ssspLazy     *obs.Counter // fleet_transfer_sssp_rows_total{mode="lazy"}

	// Fault-injection families (all events are counted even when no
	// injector is configured — they then stay at zero).
	faultSatFail  *obs.Counter // fleet_faults_total{kind="sat_fail"}
	faultSatRec   *obs.Counter // fleet_faults_total{kind="sat_recover"}
	faultMig      *obs.Counter // fleet_faults_total{kind="migration_fail"}
	faultISL      *obs.Counter // fleet_faults_total{kind="isl_degraded"}
	downSats      *obs.Gauge   // fleet_faults_down_satellites
	evacOK        *obs.Counter // fleet_evacuations_total{result="ok"}
	evacDeferred  *obs.Counter // fleet_evacuations_total{result="deferred"}
	evacPending   *obs.Gauge   // fleet_evacuations_pending
	migRetries    *obs.Counter // fleet_migration_retries_total
	retryDeferred *obs.Counter // fleet_retry_backoff_deferrals_total
}

var (
	// Wall-clock buckets for per-session planner work (µs-scale).
	placementBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2, 0.1}
	// Footprint-index query buckets (sub-µs to ms).
	queryBuckets = []float64{2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3}
	// One-way state-transfer latency buckets in milliseconds.
	transferBuckets = []float64{1, 2.5, 5, 10, 25, 50, 100, 250}
)

func newMetrics(reg *obs.Registry) *metricsSet {
	placements := reg.CounterVec("fleet_placements_total",
		"Session placements by kind: initial admissions vs hand-off re-placements.", "kind")
	faults := reg.CounterVec("fleet_faults_total",
		"Injected fault events consumed by the orchestrator, by kind.", "kind")
	evac := reg.CounterVec("fleet_evacuations_total",
		"Sessions leaving a failed satellite: ok = re-placed, deferred = awaiting retry or capacity.", "result")
	ssspRows := reg.CounterVec("fleet_transfer_sssp_rows_total",
		"Multi-source SSSP rows computed for hand-off transfer pricing, by mode.", "mode")
	return &metricsSet{
		streamChunks: reg.Counter("fleet_planner_chunks_total",
			"Streaming chunks the epoch planner proposed and admitted."),
		ssspBatched:  ssspRows.With("batched"),
		ssspLazy:     ssspRows.With("lazy"),
		faultSatFail: faults.With("sat_fail"),
		faultSatRec:  faults.With("sat_recover"),
		faultMig:     faults.With("migration_fail"),
		faultISL:     faults.With("isl_degraded"),
		downSats: reg.Gauge("fleet_faults_down_satellites",
			"Satellites currently hard-failed."),
		evacOK:       evac.With("ok"),
		evacDeferred: evac.With("deferred"),
		evacPending: reg.Gauge("fleet_evacuations_pending",
			"Sessions off a failed satellite still waiting for a new assignment."),
		migRetries: reg.Counter("fleet_migration_retries_total",
			"Migration attempts that were retries after an injected transfer failure."),
		retryDeferred: reg.Counter("fleet_retry_backoff_deferrals_total",
			"Per-epoch placement skips while a session waits out its retry backoff."),
		sessions: reg.Gauge("fleet_sessions",
			"Sessions currently tracked by the fleet orchestrator."),
		assigned: reg.Gauge("fleet_sessions_assigned",
			"Sessions currently holding a satellite-server assignment."),
		placeInitial: placements.With("initial"),
		placeHandoff: placements.With("handoff"),
		handoffs: reg.Counter("fleet_handoffs_total",
			"Completed session migrations between satellite-servers."),
		rejections: reg.Counter("fleet_rejections_total",
			"Placement attempts that found no satellite with both visibility and capacity."),
		departures: reg.Counter("fleet_departures_total",
			"Sessions removed at their departure time."),
		epochs: reg.Counter("fleet_epochs_total",
			"Planner epochs executed."),
		placeLat: reg.Histogram("fleet_placement_latency_seconds",
			"Wall-clock time to compute one session's ranked placement proposal.", placementBuckets),
		indexQuery: reg.Histogram("fleet_index_query_seconds",
			"Wall-clock time of one footprint-index candidate query.", queryBuckets),
		epochSec: reg.Histogram("fleet_epoch_seconds",
			"Wall-clock time of one full planner epoch.", obs.DefBuckets),
		transferMs: reg.Histogram("fleet_handoff_transfer_ms",
			"One-way state-transfer latency of hand-offs (ISL path or ground relay).", transferBuckets),
		replanQ: reg.Quantile("fleet_replan_ms",
			"Streaming quantile of per-session placement/replan proposal latency in wall-clock ms."),
		transferQ: reg.Quantile("fleet_transfer_ms",
			"Streaming quantile of hand-off one-way state-transfer latency in simulated ms."),
	}
}
