package fleet

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/meetup"
	"repro/internal/obs"
)

// toyConst: dense single shell so regional groups always see several
// satellites, small enough that multi-epoch tests stay fast under -race.
func toyConst(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("toy", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 32, SatsPerPlane: 32, PhaseFactor: 11, MinElevationDeg: 20},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testConfig() Config {
	return Config{
		StepSec:      60,
		LookaheadSec: 1200,
		Shards:       16,
		Registry:     obs.NewRegistry(),
	}
}

// testGroups scatters n small groups over mid-latitude land-ish points,
// deterministically.
func testGroups(t testing.TB, n int) []*Session {
	t.Helper()
	anchors := []geo.LatLon{
		{LatDeg: 9.1, LonDeg: 7.5},     // Abuja
		{LatDeg: 51.5, LonDeg: -0.1},   // London
		{LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
		{LatDeg: -23.5, LonDeg: -46.6}, // São Paulo
		{LatDeg: 40.7, LonDeg: -74.0},  // New York
	}
	var out []*Session
	for i := 0; i < n; i++ {
		a := anchors[i%len(anchors)]
		users := []geo.LatLon{
			geo.Destination(a, float64(i*37%360), 40+float64(i%7)*30),
			geo.Destination(a, float64(i*91%360), 60+float64(i%5)*25),
			geo.Destination(a, float64(i*151%360), 20+float64(i%3)*50),
		}
		s, err := NewSession(uint64(i+1), users)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	c := toyConst(t)
	if _, err := New(nil, nil, testConfig()); err == nil {
		t.Fatal("nil constellation should fail")
	}
	bad := testConfig()
	bad.LookaheadSec = 10 // < step
	if _, err := New(c, nil, bad); err == nil {
		t.Fatal("lookahead < step should fail")
	}
	bad = testConfig()
	bad.DirtyRateMBps = 1e9 // >= link bandwidth
	if _, err := New(c, nil, bad); err == nil {
		t.Fatal("dirty rate above bandwidth should fail")
	}
	bad = testConfig()
	bad.CellDeg = 0.01
	if _, err := New(c, nil, bad); err == nil {
		t.Fatal("bad cell size should fail")
	}
}

func TestStepRequiresStart(t *testing.T) {
	o, err := New(toyConst(t), nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(); err == nil {
		t.Fatal("Step before Start should fail")
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err == nil {
		t.Fatal("double Start should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	o, err := New(toyConst(t), nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Submit(nil); err == nil {
		t.Fatal("nil session should fail")
	}
	if err := o.Submit(&Session{ID: 1}); err == nil {
		t.Fatal("session without users should fail")
	}
	s := testGroups(t, 1)[0]
	s.CoresDemand = -1
	if err := o.Submit(s); err == nil {
		t.Fatal("negative demand should fail")
	}
}

// TestOrchestratorLifecycle runs the planner long enough that satellites
// set over the groups: sessions place, migrate with costed hand-offs, and
// the capacity books stay balanced every epoch.
func TestOrchestratorLifecycle(t *testing.T) {
	c := toyConst(t)
	o, err := New(c, nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sessions := testGroups(t, 40)
	if err := o.SubmitBatch(sessions); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}

	totalHandoffs := 0
	for epoch := 0; epoch < 40; epoch++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sessions != len(sessions) {
			t.Fatalf("epoch %d: %d sessions tracked, want %d", epoch, rep.Sessions, len(sessions))
		}
		if rep.Assigned > rep.Sessions || rep.Assigned < 0 {
			t.Fatalf("epoch %d: assigned %d out of range", epoch, rep.Assigned)
		}
		// Capacity books: the sum of placed demand must equal the assigned
		// sessions' demand exactly.
		assigned := 0
		demand := 0.0
		for _, s := range sessions {
			if s.Sat >= 0 {
				assigned++
				demand += s.CoresDemand
			}
		}
		if assigned != rep.Assigned {
			t.Fatalf("epoch %d: report says %d assigned, table says %d", epoch, rep.Assigned, assigned)
		}
		used := 0.0
		for _, u := range o.Utilization() {
			used += u * o.cfg.Server.EffectiveCores()
		}
		if math.Abs(used-demand) > 1e-6 {
			t.Fatalf("epoch %d: nodes hold %.3f cores, sessions demand %.3f", epoch, used, demand)
		}
		totalHandoffs += rep.Handoffs
		if rep.Handoffs > 0 {
			if rep.Transfer.N() != rep.Handoffs || rep.Downtime.N() != rep.Handoffs {
				t.Fatalf("epoch %d: %d hand-offs but %d transfer / %d downtime samples",
					epoch, rep.Handoffs, rep.Transfer.N(), rep.Downtime.N())
			}
			if rep.Transfer.Min() <= 0 || rep.Downtime.Min() < 0 {
				t.Fatalf("epoch %d: non-positive migration cost: %v / %v", epoch, rep.Transfer, rep.Downtime)
			}
		}
	}
	if totalHandoffs == 0 {
		t.Fatal("no hand-offs over 40 min of simulated LEO motion")
	}
	if o.Stats().ReplanMs.Count == 0 {
		t.Fatal("no placement-latency samples recorded")
	}
	for _, s := range sessions {
		if s.Sat >= 0 && s.RTTMs <= 0 {
			t.Fatalf("session %d assigned with zero RTT", s.ID)
		}
	}
}

// TestDeterminism: two orchestrators over the same workload must emit the
// same epoch reports and end with identical assignments.
func TestDeterminism(t *testing.T) {
	c := toyConst(t)
	run := func(workers int) ([]EpochReport, map[uint64]int) {
		cfg := testConfig()
		cfg.Workers = workers
		o, err := New(c, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sessions := testGroups(t, 30)
		if err := o.SubmitBatch(sessions); err != nil {
			t.Fatal(err)
		}
		if err := o.Start(0); err != nil {
			t.Fatal(err)
		}
		var reps []EpochReport
		for i := 0; i < 15; i++ {
			rep, err := o.Step()
			if err != nil {
				t.Fatal(err)
			}
			rep.WallSec = 0 // wall clock is the one nondeterministic field
			reps = append(reps, rep)
		}
		final := map[uint64]int{}
		for _, s := range sessions {
			final[s.ID] = s.Sat
		}
		return reps, final
	}
	reps1, final1 := run(1)
	reps2, final2 := run(8)
	for i := range reps1 {
		if reps1[i] != reps2[i] {
			t.Fatalf("epoch %d diverges:\n  1 worker : %+v\n  8 workers: %+v", i, reps1[i], reps2[i])
		}
	}
	for id, sat := range final1 {
		if final2[id] != sat {
			t.Fatalf("session %d on sat %d vs %d", id, sat, final2[id])
		}
	}
}

// TestCapacitySpill: with one-session satellites, co-located sessions must
// fan out over distinct satellites instead of stacking or being rejected.
func TestCapacitySpill(t *testing.T) {
	c := toyConst(t)
	cfg := testConfig()
	cfg.Server = compute.ServerSpec{Cores: 1, MemoryGB: 4, PowerCapFraction: 1}
	o, err := New(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loc := []geo.LatLon{{LatDeg: 9.1, LonDeg: 7.5}}
	var sessions []*Session
	for i := 0; i < 5; i++ {
		s, err := NewSession(uint64(i+1), loc)
		if err != nil {
			t.Fatal(err)
		}
		s.CoresDemand = 0.6 // two would exceed one core
		sessions = append(sessions, s)
	}
	if err := o.SubmitBatch(sessions); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := o.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placements != 5 || rep.Rejections != 0 {
		t.Fatalf("placements %d rejections %d, want 5/0: %+v", rep.Placements, rep.Rejections, rep)
	}
	used := map[int]bool{}
	for _, s := range sessions {
		if s.Sat < 0 {
			t.Fatalf("session %d unassigned", s.ID)
		}
		if used[s.Sat] {
			t.Fatalf("two sessions stacked on sat %d with capacity for one", s.Sat)
		}
		used[s.Sat] = true
	}
}

// TestRejectionAndRetry: an oversized session is rejected every epoch but
// stays in the table.
func TestRejectionAndRetry(t *testing.T) {
	c := toyConst(t)
	cfg := testConfig()
	cfg.Server = compute.ServerSpec{Cores: 1, MemoryGB: 4, PowerCapFraction: 1}
	o, err := New(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := testGroups(t, 1)[0]
	s.CoresDemand = 2 // larger than any satellite-server
	if err := o.Submit(s); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rejections != 1 || rep.Assigned != 0 || rep.Sessions != 1 {
			t.Fatalf("epoch %d: %+v, want 1 rejection, 0 assigned, 1 session", i, rep)
		}
	}
}

// TestDepartures: sessions leave at ExpiresAt and release their capacity.
func TestDepartures(t *testing.T) {
	c := toyConst(t)
	o, err := New(c, nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sessions := testGroups(t, 4)
	for _, s := range sessions {
		s.ExpiresAt = 90 // departs once now reaches 120
	}
	if err := o.SubmitBatch(sessions); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := o.Step() // t=0: all place
	if err != nil {
		t.Fatal(err)
	}
	if rep.Departures != 0 || rep.Sessions != 4 {
		t.Fatalf("t=0: %+v", rep)
	}
	rep, err = o.Step() // t=60 < 90: still live
	if err != nil {
		t.Fatal(err)
	}
	if rep.Departures != 0 || rep.Sessions != 4 {
		t.Fatalf("t=60: %+v", rep)
	}
	rep, err = o.Step() // t=120 >= 90: all depart
	if err != nil {
		t.Fatal(err)
	}
	if rep.Departures != 4 || rep.Sessions != 0 || rep.Assigned != 0 {
		t.Fatalf("t=120: %+v", rep)
	}
	for _, u := range o.Utilization() {
		if u != 0 {
			t.Fatal("capacity not released on departure")
		}
	}
	if o.Table().Len() != 0 {
		t.Fatal("table not empty after departures")
	}
}

func TestRemoveReleasesCapacity(t *testing.T) {
	o, err := New(toyConst(t), nil, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := testGroups(t, 1)[0]
	if err := o.Submit(s); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Sat < 0 {
		t.Fatal("session did not place")
	}
	if !o.Remove(s.ID) {
		t.Fatal("Remove failed")
	}
	if o.Remove(s.ID) {
		t.Fatal("double Remove succeeded")
	}
	for _, u := range o.Utilization() {
		if u != 0 {
			t.Fatal("capacity not released on Remove")
		}
	}
}

// TestTimeToExpiryMatchesMeetup cross-validates the fleet's ring-based
// expiry against meetup.Planner.TimeToExpiry configured to the same step
// and horizon: both must agree exactly for the same group, satellite, and
// epoch.
func TestTimeToExpiryMatchesMeetup(t *testing.T) {
	c := toyConst(t)
	cfg := testConfig()
	o, err := New(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sessions := testGroups(t, 10)
	if err := o.SubmitBatch(sessions); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(); err != nil {
		t.Fatal(err)
	}
	prov := meetup.NewProvider(c)
	grid := isl.NewPlusGrid(c)
	mCfg := meetup.Config{LookaheadStepSec: cfg.StepSec, LookaheadHorizonSec: cfg.LookaheadSec}
	checked := 0
	for _, s := range sessions {
		if s.Sat < 0 {
			continue
		}
		var users []geo.LatLon
		for _, u := range s.Users {
			users = append(users, geo.FromECEF(u))
		}
		p, err := meetup.NewPlanner(c, grid, users, mCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantWarn, wantCapped := p.TimeToExpiry(prov, s.Sat, o.Now())
		gotWarn, gotCapped, err := o.TimeToExpiry(s)
		if err != nil {
			t.Fatal(err)
		}
		if gotWarn != wantWarn || gotCapped != wantCapped {
			t.Fatalf("session %d sat %d: fleet (%v, %v) vs meetup (%v, %v)",
				s.ID, s.Sat, gotWarn, gotCapped, wantWarn, wantCapped)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no assigned sessions to cross-validate")
	}
}

// TestMetricsExposed: the fleet_* families must render on the registry the
// debug mux serves.
func TestMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Registry = reg
	o, err := New(toyConst(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SubmitBatch(testGroups(t, 5)); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"fleet_sessions 5",
		"fleet_sessions_assigned",
		`fleet_placements_total{kind="initial"}`,
		"fleet_epochs_total 1",
		"fleet_placement_latency_seconds",
		"fleet_index_query_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metric %q missing from registry render:\n%s", want, text)
		}
	}
}
