package fleet

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// chaosOrch builds an orchestrator over the toy constellation with a fault
// injector, returning both.
func chaosOrch(t testing.TB, nSessions int, fc faults.Config) (*Orchestrator, *faults.Injector) {
	t.Helper()
	c := toyConst(t)
	inj, err := faults.New(c.Size(), fc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Faults = inj
	o, err := New(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SubmitBatch(testGroups(t, nSessions)); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	return o, inj
}

// auditSessions scans the whole table and returns (assigned, evacuating,
// onDownSat) counts.
func auditSessions(o *Orchestrator, inj *faults.Injector) (assigned, evacuating, onDown int) {
	tab := o.Table()
	for si := 0; si < tab.NumShards(); si++ {
		tab.Shard(si, func(m map[uint64]*Session) {
			for _, s := range m {
				if s.Sat >= 0 {
					assigned++
					if !inj.SatUp(s.Sat) {
						onDown++
					}
				}
				if s.Evacuating {
					evacuating++
				}
			}
		})
	}
	return
}

// TestEvacuationOnFailure is the graceful-degradation anchor: under
// permanent satellite failures every session leaves its dead satellite the
// epoch the failure is consumed, no session is ever assigned to a down
// satellite, and every event shows up in both the epoch report and the
// fleet_faults_*/fleet_evacuations_* metrics.
func TestEvacuationOnFailure(t *testing.T) {
	o, inj := chaosOrch(t, 60, faults.Config{
		Seed:         7,
		SatMTBFHours: 2,  // ~0.5%/min per satellite on 1024 sats
		SatMTTRSec:   -1, // the paper's no-repairs regime
	})

	var totFail, totRec, totEvac, totEvacDef, totRej int
	for epoch := 0; epoch < 30; epoch++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		totFail += rep.SatFailures
		totRec += rep.SatRecoveries
		totEvac += rep.Evacuations
		totEvacDef += rep.EvacuationsDeferred
		totRej += rep.Rejections

		assigned, _, onDown := auditSessions(o, inj)
		if onDown != 0 {
			t.Fatalf("epoch %d: %d sessions still assigned to down satellites", epoch, onDown)
		}
		if assigned != rep.Assigned {
			t.Fatalf("epoch %d: table says %d assigned, report says %d", epoch, assigned, rep.Assigned)
		}
		if rep.DownSats != inj.DownCount() {
			t.Fatalf("epoch %d: report DownSats=%d, injector says %d", epoch, rep.DownSats, inj.DownCount())
		}
		// No silently dropped sessions: everything is tracked, and every
		// unassigned session is pending (evacuating or retrying next epoch).
		if rep.Sessions != 60 {
			t.Fatalf("epoch %d: %d sessions tracked, want 60", epoch, rep.Sessions)
		}
	}

	if totFail == 0 {
		t.Fatal("no satellite failures in 30 min at 2 h MTBF over 1024 satellites")
	}
	if totRec != 0 {
		t.Fatalf("%d recoveries under permanent failures", totRec)
	}
	if totEvac == 0 {
		t.Fatal("failures hit no session satellite — evacuation path untested (tune seed/rates)")
	}

	// The metrics must agree with the summed reports exactly.
	if got := int(o.m.faultSatFail.Value()); got != totFail {
		t.Errorf("fleet_faults_total{sat_fail} = %d, want %d", got, totFail)
	}
	if got := int(o.m.evacOK.Value()); got != totEvac {
		t.Errorf("fleet_evacuations_total{ok} = %d, want %d", got, totEvac)
	}
	if got := int(o.m.evacDeferred.Value()); got != totEvacDef {
		t.Errorf("fleet_evacuations_total{deferred} = %d, want %d", got, totEvacDef)
	}
	if got := int(o.m.rejections.Value()); got != totRej {
		t.Errorf("fleet_rejections_total = %d, want %d", got, totRej)
	}
	_, evacuating, _ := auditSessions(o, inj)
	if got := int(o.m.evacPending.Value()); got != evacuating {
		t.Errorf("fleet_evacuations_pending = %d, table says %d", got, evacuating)
	}
}

// TestMigrationFailureBackoff: with a high injected transfer-failure
// probability, hand-offs fail and retry under capped exponential backoff —
// failures and deferrals are counted, and no session is lost.
func TestMigrationFailureBackoff(t *testing.T) {
	o, inj := chaosOrch(t, 60, faults.Config{
		Seed:              3,
		MigrationFailProb: 0.9,
	})

	var totMigFail, totBackoff, totHandoffs int
	for epoch := 0; epoch < 60; epoch++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		totMigFail += rep.MigrationFailures
		totBackoff += rep.BackoffDeferrals
		totHandoffs += rep.Handoffs
		if rep.Sessions != 60 {
			t.Fatalf("epoch %d: session count %d, want 60", epoch, rep.Sessions)
		}
		if _, _, onDown := auditSessions(o, inj); onDown != 0 {
			t.Fatalf("epoch %d: session on a down satellite with failures disabled", epoch)
		}
	}
	if totMigFail == 0 {
		t.Fatal("no migration failures at p=0.9 over 60 epochs")
	}
	if totBackoff == 0 {
		t.Fatal("no backoff deferrals despite migration failures")
	}
	if totHandoffs == 0 {
		t.Fatal("no hand-off ever succeeded at p=0.9 — retries appear broken")
	}
	if got := int(o.m.faultMig.Value()); got != totMigFail {
		t.Errorf("fleet_faults_total{migration_fail} = %d, want %d", got, totMigFail)
	}
	if got := int(o.m.retryDeferred.Value()); got != totBackoff {
		t.Errorf("fleet_retry_backoff_deferrals_total = %d, want %d", got, totBackoff)
	}

	// Any session that completed a hand-off must have its backoff cleared.
	tab := o.Table()
	for si := 0; si < tab.NumShards(); si++ {
		tab.Shard(si, func(m map[uint64]*Session) {
			for _, s := range m {
				if s.Handoffs > 0 && s.Sat >= 0 && s.Retries != 0 && s.RetryAt == 0 {
					t.Errorf("session %d: retries not reset after successful hand-off", s.ID)
				}
			}
		})
	}
}

// TestBackoffGrowth pins the capped exponential schedule.
func TestBackoffGrowth(t *testing.T) {
	cfg := testConfig()
	cfg.RetryBaseSec = 60
	cfg.RetryCapSec = 480
	o, err := New(toyConst(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{60, 120, 240, 480, 480, 480}
	for i, w := range want {
		if got := o.backoffSec(i + 1); got != w {
			t.Fatalf("backoffSec(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestChaosDeterminism: two orchestrators with identical seeds and fault
// configs must produce identical epoch report sequences (wall time aside)
// — the property the fleetsim CSV reproducibility contract rests on.
func TestChaosDeterminism(t *testing.T) {
	run := func() []EpochReport {
		o, _ := chaosOrch(t, 50, faults.Config{
			Seed:              11,
			SatMTBFHours:      1,
			SatMTTRSec:        300,
			ISLFlapPerHour:    10,
			MigrationFailProb: 0.2,
		})
		var out []EpochReport
		for epoch := 0; epoch < 25; epoch++ {
			rep, err := o.Step()
			if err != nil {
				t.Fatal(err)
			}
			rep.WallSec = 0 // the only nondeterministic field
			out = append(out, rep)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("epoch %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
			}
		}
		t.Fatal("runs diverged")
	}
}

// TestNoPlacementsOnDownSatellites: with most of the constellation failed,
// proposals must only ever target live satellites.
func TestNoPlacementsOnDownSatellites(t *testing.T) {
	o, inj := chaosOrch(t, 40, faults.Config{
		Seed:         2,
		SatMTBFHours: 0.2, // aggressive: most satellites die within the run
		SatMTTRSec:   -1,
	})
	for epoch := 0; epoch < 20; epoch++ {
		if _, err := o.Step(); err != nil {
			t.Fatal(err)
		}
		if _, _, onDown := auditSessions(o, inj); onDown != 0 {
			t.Fatalf("epoch %d: placement on a down satellite", epoch)
		}
	}
	if inj.DownCount() == 0 {
		t.Fatal("no satellite went down — test exercised nothing")
	}
}
