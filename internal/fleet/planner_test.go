package fleet

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/geo"
)

// runEpochs drives one orchestrator over a fixed workload and returns its
// epoch reports plus the final (session → satellite) assignment map.
func runEpochs(t testing.TB, cfg Config, nSessions, epochs int) ([]EpochReport, map[uint64]int) {
	t.Helper()
	o, err := New(toyConst(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SubmitBatch(testGroups(t, nSessions)); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	reps := make([]EpochReport, 0, epochs)
	for i := 0; i < epochs; i++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	sats := map[uint64]int{}
	tab := o.Table()
	for si := 0; si < tab.NumShards(); si++ {
		tab.Shard(si, func(m map[uint64]*Session) {
			for id, s := range m {
				sats[id] = s.Sat
			}
		})
	}
	return reps, sats
}

// TestPlannerShardInvariance is the planner's core determinism contract:
// the footprint-region shard count (including the 1-shard fast path) and
// the worker count must never change a decision. Every combination
// reproduces the same epoch reports and final assignments.
func TestPlannerShardInvariance(t *testing.T) {
	baseCfg := testConfig()
	baseCfg.PlannerShards = 1
	baseCfg.Workers = 1
	baseReps, baseSats := runEpochs(t, baseCfg, 60, 10)

	for _, tc := range []struct{ shards, workers int }{
		{1, 8}, {3, 1}, {3, 4}, {17, 2}, {64, 8},
	} {
		cfg := testConfig()
		cfg.PlannerShards = tc.shards
		cfg.Workers = tc.workers
		reps, sats := runEpochs(t, cfg, 60, 10)
		for i := range baseReps {
			if !reflect.DeepEqual(stripWallClock(reps[i]), stripWallClock(baseReps[i])) {
				t.Fatalf("shards=%d workers=%d epoch %d diverged:\n%+v\nwant\n%+v",
					tc.shards, tc.workers, i, reps[i], baseReps[i])
			}
		}
		if !reflect.DeepEqual(sats, baseSats) {
			t.Fatalf("shards=%d workers=%d final assignments diverged", tc.shards, tc.workers)
		}
	}
}

// stripWallClock zeroes the non-deterministic wall-clock field so reports
// compare on decisions only.
func stripWallClock(rep EpochReport) EpochReport {
	rep.WallSec = 0
	return rep
}

// TestPlannerEmptyRegions: a workload clustered in one footprint cell
// leaves most region queues empty every epoch. The merge must skip them
// cleanly and the shard-work view must show the imbalance.
func TestPlannerEmptyRegions(t *testing.T) {
	cfg := testConfig()
	cfg.PlannerShards = 32
	o, err := New(toyConst(t), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All groups within ~50 km of one anchor: one footprint cell.
	anchor := geo.LatLon{LatDeg: 35.7, LonDeg: 139.7}
	for i := 0; i < 40; i++ {
		users := []geo.LatLon{
			geo.Destination(anchor, float64(i*37%360), 10+float64(i%5)*8),
			geo.Destination(anchor, float64(i*91%360), 15+float64(i%3)*10),
		}
		s, err := NewSession(uint64(i+1), users)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Start(0); err != nil {
		t.Fatal(err)
	}
	var last EpochReport
	for i := 0; i < 5; i++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = rep
	}
	if last.Assigned != 40 {
		t.Fatalf("assigned %d of 40 clustered sessions", last.Assigned)
	}
	st := o.Stats()
	if len(st.ShardWork) != 32 {
		t.Fatalf("shard work has %d entries, want 32", len(st.ShardWork))
	}
	nonEmpty := 0
	for _, w := range st.ShardWork {
		if w > 0 {
			nonEmpty++
		}
	}
	// One cluster can straddle a cell boundary, but it cannot fill many
	// regions; most queues must have been empty in the last epoch.
	if nonEmpty > 4 {
		t.Fatalf("clustered workload touched %d of 32 regions: %v", nonEmpty, st.ShardWork)
	}
}

// TestPlannerAllCandidatesDead: an immediate permanent all-satellite
// failure leaves every session's candidate set dead mid-epoch. The
// streaming loop must keep rejecting (not crash, not assign to a corpse)
// and account every session as evacuating.
func TestPlannerAllCandidatesDead(t *testing.T) {
	o, inj := chaosOrch(t, 30, faults.Config{
		Seed:         3,
		SatMTBFHours: 1e-6, // every satellite fails in the first epoch
		SatMTTRSec:   -1,   // permanently
	})
	for epoch := 0; epoch < 4; epoch++ {
		rep, err := o.Step()
		if err != nil {
			t.Fatal(err)
		}
		// Epoch 0 runs at t=0, before any failure fires; epoch 1 consumes
		// the full burst (every draw lands within milliseconds of t=0).
		if epoch == 1 && rep.SatFailures != o.Constellation().Size() {
			t.Fatalf("epoch 1: %d failures, want all %d satellites", rep.SatFailures, o.Constellation().Size())
		}
		if epoch > 0 && rep.Assigned != 0 {
			t.Fatalf("epoch %d: %d sessions assigned with zero live satellites", epoch, rep.Assigned)
		}
	}
	assigned, evacuating, onDown := auditSessions(o, inj)
	if assigned != 0 || onDown != 0 {
		t.Fatalf("%d assigned (%d on down sats) after total failure", assigned, onDown)
	}
	if evacuating != 30 {
		t.Fatalf("%d sessions evacuating, want all 30", evacuating)
	}
	st := o.Stats()
	if st.DownSats != o.Constellation().Size() || st.EvacuationsPending != 30 {
		t.Fatalf("Stats down=%d pending=%d, want %d/%d",
			st.DownSats, st.EvacuationsPending, o.Constellation().Size(), 30)
	}
}
