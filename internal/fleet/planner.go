package fleet

// The streaming, region-sharded epoch planner. One Step runs:
//
//	A0  fault events (serial)
//	A   detection over table shards (parallel, disjoint output slots)
//	A2  scatter work into footprint-region queues (serial, shard order)
//	A3  per-region sort by session ID (parallel over regions)
//	A4  batched SSSP transfer pricing over the epoch's source satellites
//	B/C streaming rounds: merge the region queues back into global
//	    session-ID order one chunk at a time, propose the chunk in
//	    parallel into per-worker arenas, admit it serially
//	D   ring rotation, index rebuild, clock advance (serial)
//
// Region queues exist for parallelism and bounded memory, not ordering:
// the merge in B/C restores one global session-ID order before any
// capacity decision, so the planner's output is byte-identical for every
// PlannerShards and Workers setting. Streaming in chunks keeps the
// per-epoch footprint at O(chunk · candidates) instead of materialising a
// proposal list for the whole work set — the difference between 100k and
// 1M+ sessions fitting the same epoch loop.
//
// Transfer pricing rides the frozen-CSR engine: the orchestrator chains a
// groundless netgraph snapshot through Network.AtAfter each epoch and
// prices migrations with multi-source SSSP rows (one row per source
// satellite, batched through AllSourcesNodeLatencies when a source has
// several pending moves, lazily via LatencyToAllNodesInto otherwise)
// instead of one point-to-point Dijkstra per satellite pair. The frozen
// CSR's ISL weights are the same PropagationDelayMs values the pairwise
// path computed on the fly, so pricing is bit-identical to the old
// per-pair queries.

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/compute"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/migrate"
	"repro/internal/netgraph"
	"repro/internal/units"
)

// streamChunk is how many merged work items one streaming round proposes
// and admits. Large enough to amortise the fan-out, small enough that a
// round's proposal arenas stay cache-resident.
const streamChunk = 8192

// batchMinWork is the pending-move count at which a source satellite's
// SSSP row joins the parallel batch; sources below it are priced lazily,
// one row on first use, since a rejected or holding session may never need
// its row at all.
const batchMinWork = 2

// proposal locates one session's ranked candidate list inside a worker
// arena: pl.workers[w].arena[lo:hi], best candidate first.
type proposal struct {
	w      int32
	lo, hi int32
	latSec float64
}

// workerScratch is one proposal worker's private memory: the candidate
// build buffer and the arena that holds the round's ranked lists. Padded
// so neighbouring workers' slice headers do not false-share.
type workerScratch struct {
	cands []candidate
	arena []candidate
	_     [64]byte
}

// plannerState is the orchestrator's reusable per-epoch scratch. Every
// slice is reset to length zero between epochs and grows to the workload's
// high-water mark once.
type plannerState struct {
	workByShard  [][]workItem
	goneByShard  [][]*Session
	deferByShard []int

	rq         [][]workItem // footprint-region queues
	regionWork []int        // per-region item counts of the last epoch
	heads      []int        // merge cursors into rq
	chunk      []workItem
	props      []proposal
	workers    []workerScratch
	gone       []*Session

	srcCount []int32           // per-satellite pending re-placement count
	srcTouch []int32           // satellites with non-zero srcCount (reset list)
	batch    []netgraph.NodeID // batched SSSP sources, ascending
	rows     map[int][]float64 // source satellite → one-way latency row
	lazyRows [][]float64       // reusable row buffers for lazy sources
	lazyUsed int
}

func (pl *plannerState) init(o *Orchestrator) {
	nShards := o.tab.NumShards()
	pl.workByShard = make([][]workItem, nShards)
	pl.goneByShard = make([][]*Session, nShards)
	pl.deferByShard = make([]int, nShards)
	p := o.cfg.PlannerShards
	if p < 1 {
		p = 1
	}
	pl.rq = make([][]workItem, p)
	pl.regionWork = make([]int, p)
	pl.heads = make([]int, p)
	pl.chunk = make([]workItem, 0, streamChunk)
	pl.props = make([]proposal, streamChunk)
	pl.workers = make([]workerScratch, o.cfg.Workers)
	pl.srcCount = make([]int32, o.c.Size())
	pl.rows = make(map[int][]float64)
}

// reset clears the scratch for a new epoch, keeping every allocation.
func (pl *plannerState) reset() {
	for i := range pl.workByShard {
		pl.workByShard[i] = pl.workByShard[i][:0]
	}
	for i := range pl.goneByShard {
		pl.goneByShard[i] = pl.goneByShard[i][:0]
	}
	for i := range pl.deferByShard {
		pl.deferByShard[i] = 0
	}
	for i := range pl.rq {
		pl.rq[i] = pl.rq[i][:0]
	}
	for i := range pl.heads {
		pl.heads[i] = 0
	}
	for _, sat := range pl.srcTouch {
		pl.srcCount[sat] = 0
	}
	pl.srcTouch = pl.srcTouch[:0]
	pl.batch = pl.batch[:0]
	for k := range pl.rows {
		delete(pl.rows, k)
	}
	pl.lazyUsed = 0
}

// lazyRow hands out the next reusable SSSP row buffer.
func (pl *plannerState) lazyRow(nodes int) []float64 {
	if pl.lazyUsed == len(pl.lazyRows) {
		pl.lazyRows = append(pl.lazyRows, make([]float64, nodes))
	}
	r := pl.lazyRows[pl.lazyUsed]
	pl.lazyUsed++
	return r
}

// regionOf maps a session to its footprint-region planner shard: the
// row-major footprint-index cell of its centroid, scaled onto the shard
// count. Contiguous cells land in the same region, so a region's sessions
// query neighbouring index cells.
func (o *Orchestrator) regionOf(s *Session) int32 {
	p := len(o.pl.rq)
	if p <= 1 {
		return 0
	}
	return int32(o.idx.CellIndex(s.CentroidLL.LatDeg, s.CentroidLL.LonDeg) * p / o.idx.Cells())
}

// nextChunk fills the next streaming chunk from the region queues in
// ascending session-ID order. The queues are each ID-sorted, so this is a
// k-way merge; with one region it degenerates to a plain cursor.
func (pl *plannerState) nextChunk() []workItem {
	chunk := pl.chunk[:0]
	if len(pl.rq) == 1 {
		q, h := pl.rq[0], pl.heads[0]
		n := len(q) - h
		if n > streamChunk {
			n = streamChunk
		}
		chunk = append(chunk, q[h:h+n]...)
		pl.heads[0] = h + n
		pl.chunk = chunk
		return chunk
	}
	for len(chunk) < streamChunk {
		best := -1
		var bestID uint64
		for p := range pl.rq {
			if pl.heads[p] < len(pl.rq[p]) {
				if id := pl.rq[p][pl.heads[p]].sess.ID; best < 0 || id < bestID {
					best, bestID = p, id
				}
			}
		}
		if best < 0 {
			break
		}
		chunk = append(chunk, pl.rq[best][pl.heads[best]])
		pl.heads[best]++
	}
	pl.chunk = chunk
	return chunk
}

// cmpByRTT orders candidates by latency, ties by ID — the spill order.
func cmpByRTT(a, b candidate) int {
	if a.rtt != b.rtt {
		if a.rtt < b.rtt {
			return -1
		}
		return 1
	}
	if a.id < b.id {
		return -1
	}
	if a.id > b.id {
		return 1
	}
	return 0
}

// cmpBand orders band candidates Sticky-style: longest remaining
// visibility first, then latency, then ID.
func cmpBand(a, b candidate) int {
	if a.life != b.life {
		if a.life > b.life {
			return -1
		}
		return 1
	}
	return cmpByRTT(a, b)
}

// Step runs one planner epoch at the current simulated time: removes
// departed sessions, detects assignments about to lose visibility,
// re-places them (and places arrivals) under load-aware admission, costs
// the resulting migrations, then advances the clock by one step.
func (o *Orchestrator) Step() (EpochReport, error) {
	if !o.started {
		return EpochReport{}, fmt.Errorf("fleet: Start must be called before Step")
	}
	wall := time.Now()
	rep := EpochReport{TSec: o.now}
	o.epochISL = 0
	pl := &o.pl
	pl.reset()

	// Phase A0 — fault events: consume everything the injector fired up to
	// this epoch. Failed satellites are detected below; recovered ones are
	// simply eligible again.
	if f := o.cfg.Faults; f != nil {
		for _, ev := range f.Advance(o.now) {
			switch ev.Kind {
			case faults.SatFail:
				rep.SatFailures++
				o.m.faultSatFail.Inc()
			case faults.SatRecover:
				rep.SatRecoveries++
				o.m.faultSatRec.Inc()
			}
		}
		rep.DownSats = f.DownCount()
	}

	// Chain the routing snapshot to this epoch. AtAfter rides the
	// delta-freeze path; with no ground nodes the freeze is a bare CSR
	// assembly over the static ISL grid, deferred until the first SSSP.
	o.nsnap = o.net.AtAfter(o.nsnap, o.now)

	// Phase A — detection, parallel across table shards: find departures
	// and sessions needing (re-)placement. Sessions on a hard-failed
	// satellite evacuate immediately, ahead of their visibility expiry;
	// sessions inside a retry backoff window are deferred.
	o.parallelFor(o.tab.NumShards(), func(lo, hi int) {
		for si := lo; si < hi; si++ {
			o.tab.Shard(si, func(m map[uint64]*Session) {
				for _, s := range m {
					switch {
					case s.ExpiresAt <= o.now:
						pl.goneByShard[si] = append(pl.goneByShard[si], s)
					case s.Sat >= 0 && !o.satUp(s.Sat):
						// A dead satellite overrides any retry backoff: the
						// session must evacuate now, not when its timer says.
						pl.workByShard[si] = append(pl.workByShard[si],
							workItem{sess: s, region: o.regionOf(s), evacuating: true})
					case s.RetryAt > o.now:
						pl.deferByShard[si]++
					case s.Sat < 0:
						pl.workByShard[si] = append(pl.workByShard[si],
							workItem{sess: s, region: o.regionOf(s)})
					case !o.visibleAll(s, s.Sat, o.ring[1]):
						pl.workByShard[si] = append(pl.workByShard[si],
							workItem{sess: s, region: o.regionOf(s), expiring: true})
					}
				}
			})
		}
	})
	for _, n := range pl.deferByShard {
		rep.BackoffDeferrals += n
	}
	o.m.retryDeferred.Add(uint64(rep.BackoffDeferrals))

	// Departures leave before placement so their capacity frees this epoch.
	gone := pl.gone[:0]
	for si := range pl.goneByShard {
		gone = append(gone, pl.goneByShard[si]...)
	}
	slices.SortFunc(gone, func(a, b *Session) int {
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	for _, s := range gone {
		if s.Sat >= 0 {
			_ = o.nodes[s.Sat].Release(int(s.ID))
			s.Sat = -1
			o.nAssigned--
		}
		if s.Evacuating {
			s.Evacuating = false
			o.nEvacPending--
		}
		o.tab.Delete(s.ID)
		rep.Departures++
	}
	o.m.departures.Add(uint64(rep.Departures))
	pl.gone = gone[:0]

	// Phase A2 — scatter work into region queues (serial, shard order; the
	// per-region sort below makes the arrival order irrelevant) and count
	// pending moves per source satellite for the SSSP batch.
	for si := range pl.workByShard {
		for _, w := range pl.workByShard[si] {
			pl.rq[w.region] = append(pl.rq[w.region], w)
			if sat := w.sess.Sat; sat >= 0 {
				if pl.srcCount[sat] == 0 {
					pl.srcTouch = append(pl.srcTouch, int32(sat))
				}
				pl.srcCount[sat]++
			}
		}
	}

	// Phase A3 — per-region sort by session ID, parallel over regions.
	o.parallelFor(len(pl.rq), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			slices.SortFunc(pl.rq[p], func(a, b workItem) int {
				if a.sess.ID < b.sess.ID {
					return -1
				}
				if a.sess.ID > b.sess.ID {
					return 1
				}
				return 0
			})
		}
	})
	for p := range pl.rq {
		pl.regionWork[p] = len(pl.rq[p])
	}

	// Phase A4 — batched transfer pricing: every source satellite with
	// several pending moves gets its SSSP row up front through the adaptive
	// multi-source fan-out; stragglers fill in lazily inside admission.
	slices.Sort(pl.srcTouch)
	for _, sat := range pl.srcTouch {
		if pl.srcCount[sat] >= batchMinWork {
			pl.batch = append(pl.batch, netgraph.NodeID(sat))
		}
	}
	if len(pl.batch) > 0 {
		rows := o.nsnap.AllSourcesNodeLatencies(pl.batch)
		for i, src := range pl.batch {
			pl.rows[int(src)] = rows[i]
		}
		o.m.ssspBatched.Add(uint64(len(pl.batch)))
	}

	// Phases B/C — streaming rounds over the merged work: propose a chunk
	// in parallel, admit it serially in session-ID order. Proposals read
	// only the ring and index, never capacity, so chunking cannot change
	// any admission decision.
	for {
		chunk := pl.nextChunk()
		if len(chunk) == 0 {
			break
		}
		o.m.streamChunks.Inc()
		o.parallelForW(len(chunk), func(w, lo, hi int) {
			sc := &pl.workers[w]
			for i := lo; i < hi; i++ {
				pl.props[i] = o.propose(sc, int32(w), chunk[i].sess)
			}
		})
		if err := o.admitChunk(chunk, &rep); err != nil {
			return rep, err
		}
		for i := range chunk {
			o.m.placeLat.Observe(pl.props[i].latSec)
			o.m.replanQ.Observe(pl.props[i].latSec * 1e3)
		}
		for w := range pl.workers {
			pl.workers[w].arena = pl.workers[w].arena[:0]
		}
	}
	o.m.rejections.Add(uint64(rep.Rejections))

	// Phase D — advance the epoch clock: rotate the ring, fetch the new
	// horizon snapshot from the ephemeris engine (every other ring frame
	// is a cache hit), re-bucket the index.
	o.now += o.cfg.StepSec
	copy(o.ring, o.ring[1:])
	o.ring[o.k] = o.eng.SnapshotAt(o.now + float64(o.k)*o.cfg.StepSec)
	o.idx.Rebuild(o.ring[0])

	rep.Sessions = o.tab.Len()
	rep.Assigned = o.nAssigned
	util := 0.0
	for _, n := range o.nodes {
		util += n.UtilizationCores()
	}
	rep.MeanUtilization = util / float64(len(o.nodes))
	rep.ISLDegradations = o.epochISL
	rep.WallSec = time.Since(wall).Seconds()

	o.tot.fold(rep)
	o.m.sessions.Set(float64(rep.Sessions))
	o.m.assigned.Set(float64(rep.Assigned))
	o.m.downSats.Set(float64(rep.DownSats))
	o.m.evacPending.Set(float64(o.nEvacPending))
	o.m.epochs.Inc()
	o.m.epochSec.Observe(rep.WallSec)
	return rep, nil
}

// admitChunk runs the serial admission phase over one streaming chunk:
// first ranked candidate with spare capacity wins; sessions spill down
// their ranking when a satellite is full, and are rejected (retrying next
// epoch) when none fits.
func (o *Orchestrator) admitChunk(chunk []workItem, rep *EpochReport) error {
	pl := &o.pl
	task := func(s *Session) compute.Task {
		return compute.Task{ID: int(s.ID), Cores: s.CoresDemand, MemoryGB: s.MemoryGB}
	}
	for i, w := range chunk {
		s := w.sess
		evac := w.evacuating || s.Evacuating
		if w.expiring {
			rep.Expiring++
		}
		if s.Retries > 0 {
			o.m.migRetries.Inc()
		}
		pr := pl.props[i]
		ranked := pl.workers[pr.w].arena[pr.lo:pr.hi]
		chosen := candidate{id: -1}
		for _, cand := range ranked {
			if cand.id == s.Sat || o.nodes[cand.id].Fits(task(s)) {
				chosen = cand
				break
			}
		}
		if chosen.id < 0 {
			if s.Sat >= 0 {
				_ = o.nodes[s.Sat].Release(int(s.ID))
				s.Sat = -1
				o.nAssigned--
			}
			rep.Rejections++
			if evac {
				o.deferEvacuation(s, rep)
			}
			continue
		}
		if chosen.id == s.Sat {
			// Nothing better had room; hold the current satellite until it
			// actually sets. (A failed satellite is never ranked, so an
			// evacuating session cannot take this path.)
			s.RTTMs = chosen.rtt
			continue
		}
		if s.Sat >= 0 {
			from := s.Sat
			// An injected transfer failure aborts the migration before any
			// capacity moves: the session backs off and retries later,
			// holding its current satellite when that is still alive.
			if f := o.cfg.Faults; f != nil && !f.MigrationOK(s.ID, from, chosen.id, s.Retries) {
				rep.MigrationFailures++
				o.m.faultMig.Inc()
				s.Retries++
				s.RetryAt = o.now + o.backoffSec(s.Retries)
				if evac {
					// The source is gone: the session rides out the backoff
					// unassigned (its state restores from the replicated
					// checkpoint on the next attempt).
					_ = o.nodes[from].Release(int(s.ID))
					s.Sat = -1
					o.nAssigned--
					o.deferEvacuation(s, rep)
				}
				continue
			}
			if err := o.nodes[chosen.id].Place(task(s)); err != nil {
				return fmt.Errorf("fleet: admission of session %d: %w", s.ID, err)
			}
			_ = o.nodes[from].Release(int(s.ID))
			transfer := o.transferMs(from, chosen.id, s.Centroid)
			res, merr := migrate.Live(
				migrate.State{SessionMB: s.StateMB, DirtyRateMBps: o.cfg.DirtyRateMBps},
				migrate.Link{BandwidthMBps: migrate.GbpsToMBps(o.cfg.ISLBandwidthGbps), OneWayMs: transfer},
				migrate.LiveConfig{GenericReplicatedAhead: true},
			)
			if merr != nil {
				return fmt.Errorf("fleet: migration cost of session %d: %w", s.ID, merr)
			}
			rep.Handoffs++
			s.Handoffs++
			rep.Transfer.Add(transfer)
			rep.Downtime.Add(res.DowntimeSec)
			o.m.transferMs.Observe(transfer)
			o.m.transferQ.Observe(transfer)
			o.m.handoffs.Inc()
			o.m.placeHandoff.Inc()
		} else {
			// Unassigned (re-)placements restore from the pre-replicated
			// generic state plus checkpoint, so no transfer coin is flipped.
			if err := o.nodes[chosen.id].Place(task(s)); err != nil {
				return fmt.Errorf("fleet: admission of session %d: %w", s.ID, err)
			}
			rep.Placements++
			o.nAssigned++
			o.m.placeInitial.Inc()
		}
		if evac {
			rep.Evacuations++
			o.m.evacOK.Inc()
			if s.Evacuating {
				s.Evacuating = false
				o.nEvacPending--
			}
		}
		s.Sat = chosen.id
		s.PlacedAt = o.now
		s.RTTMs = chosen.rtt
		s.Retries, s.RetryAt = 0, 0
	}
	return nil
}

// propose computes a session's ranked candidate list into the worker's
// arena: all satellites visible to the whole group, Sticky-ordered —
// candidates within the latency band ranked by remaining visibility (the
// paper's stationarity objective), then the rest by latency for load
// spill.
func (o *Orchestrator) propose(sc *workerScratch, w int32, s *Session) proposal {
	t0 := time.Now()
	snap := o.ring[0]
	cands := sc.cands[:0]
	qStart := time.Now()
	o.idx.ForEachNear(s.CentroidLL.LatDeg, s.CentroidLL.LonDeg, s.SpreadKm, func(id int, pos geo.Vec3) {
		if !o.satUp(id) {
			return // hard-failed satellites take no placements
		}
		if rtt, ok := o.groupRTT(s, id, snap); ok {
			cands = append(cands, candidate{id: id, rtt: rtt})
		}
	})
	o.m.indexQuery.Observe(time.Since(qStart).Seconds())
	sc.cands = cands
	if len(cands) == 0 {
		return proposal{w: w, latSec: time.Since(t0).Seconds()}
	}
	minRTT := math.Inf(1)
	for _, c := range cands {
		if c.rtt < minRTT {
			minRTT = c.rtt
		}
	}
	bound := minRTT * (1 + o.cfg.LatencyBand)
	band := 0
	for i := range cands {
		if cands[i].rtt <= bound {
			cands[band], cands[i] = cands[i], cands[band]
			band++
		}
	}
	for i := 0; i < band; i++ {
		cands[i].life = o.lifeEpochs(s, cands[i].id)
	}
	slices.SortFunc(cands[:band], cmpBand)
	rest := cands[band:]
	slices.SortFunc(rest, cmpByRTT)
	// Admission order: the Sticky pool first, then everything else by
	// latency. Keeping the full list (not just the pool) is what lets
	// admission spill under load instead of rejecting.
	lo := int32(len(sc.arena))
	if band > o.cfg.PoolSize {
		sc.arena = append(sc.arena, cands[:o.cfg.PoolSize]...)
		overflow := cands[o.cfg.PoolSize:band]
		slices.SortFunc(overflow, cmpByRTT)
		sc.arena = mergeByLatency(sc.arena, overflow, rest)
	} else {
		sc.arena = append(sc.arena, cands...)
	}
	return proposal{w: w, lo: lo, hi: int32(len(sc.arena)), latSec: time.Since(t0).Seconds()}
}

// mergeByLatency appends the merge of two latency-sorted candidate slices
// onto dst.
func mergeByLatency(dst []candidate, a, b []candidate) []candidate {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].rtt < b[j].rtt || (a[i].rtt == b[j].rtt && a[i].id <= b[j].id) {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// transferMs is the one-way state-transfer latency from sat a to b at the
// current epoch: the cheaper of the shortest ISL path (same-shell pairs,
// read off the source's SSSP row) and a ground relay through the session's
// region — the same accounting as meetup.Planner.TransferLatencyMs.
func (o *Orchestrator) transferMs(a, b int, centroid geo.Vec3) float64 {
	snap := o.ring[0]
	relay := units.PropagationDelayMs(snap[a].Distance(centroid) + centroid.Distance(snap[b]))
	if o.c.Satellites[a].ShellIndex != o.c.Satellites[b].ShellIndex {
		return relay // the +grid does not link shells
	}
	if f := o.cfg.Faults; f != nil && f.ISLDegraded(a, b, o.now) {
		o.m.faultISL.Inc()
		o.epochISL++
		return relay // flapped path: spill the transfer to the ground relay
	}
	row, ok := o.pl.rows[a]
	if !ok {
		row = o.nsnap.LatencyToAllNodesInto(netgraph.NodeID(a), o.pl.lazyRow(o.net.Nodes()))
		o.pl.rows[a] = row
		o.m.ssspLazy.Inc()
	}
	// Unreachable pairs read +Inf off the row, so the relay wins — the
	// degenerate-topology fallback of the pairwise path.
	return math.Min(row[b], relay)
}
