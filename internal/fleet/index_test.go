package fleet

import (
	"math"
	"sort"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/visibility"
)

func starlink(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewIndexValidation(t *testing.T) {
	c := starlink(t)
	if _, err := NewIndex(nil, 0); err == nil {
		t.Fatal("nil constellation should fail")
	}
	if _, err := NewIndex(c, 0.01); err == nil {
		t.Fatal("tiny cell should fail")
	}
	if _, err := NewIndex(c, 45); err == nil {
		t.Fatal("huge cell should fail")
	}
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.CellDeg() != DefaultCellDeg {
		t.Fatalf("cell size %v, want default %v", ix.CellDeg(), DefaultCellDeg)
	}
}

func TestRebuildSizeMismatchPanics(t *testing.T) {
	c := starlink(t)
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short snapshot should panic")
		}
	}()
	ix.Rebuild(make([]geo.Vec3, 3))
}

// sortPasses orders passes by satellite ID so index output (cell-grouped)
// can be compared against the linear scan (ID-ordered).
func sortPasses(ps []visibility.Pass) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].SatID < ps[j].SatID })
}

// TestReachableFromMatchesLinear is the index's correctness anchor: at
// several epochs and ground points (equator, mid-latitudes, the dateline,
// beyond-coverage latitudes, both hemispheres), the indexed query must
// return exactly the passes of the exhaustive O(N) Observer.Reachable scan.
func TestReachableFromMatchesLinear(t *testing.T) {
	c := starlink(t)
	obs := visibility.NewObserver(c)
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	grounds := []geo.LatLon{
		{LatDeg: 0, LonDeg: 0},
		{LatDeg: 51.5, LonDeg: -0.1},   // London
		{LatDeg: -33.9, LonDeg: 151.2}, // Sydney
		{LatDeg: 64.1, LonDeg: -21.9},  // Reykjavik, above the 53° shells
		{LatDeg: 0.1, LonDeg: 179.95},  // dateline wrap
		{LatDeg: -5, LonDeg: -179.9},   // dateline wrap, west side
		{LatDeg: 80, LonDeg: 10},       // polar-shell-only coverage
		{LatDeg: -90, LonDeg: 0},       // south pole
	}
	for _, tSec := range []float64{0, 731, 3600} {
		snap := c.Snapshot(tSec)
		ix.Rebuild(snap)
		for _, g := range grounds {
			ground := g.ECEF()
			want := obs.Reachable(ground, snap, nil)
			got := ix.ReachableFrom(ground, nil)
			sortPasses(want)
			sortPasses(got)
			if len(got) != len(want) {
				t.Fatalf("t=%v %v: index %d passes, linear %d", tSec, g, len(got), len(want))
			}
			for i := range want {
				w, h := want[i], got[i]
				if w.SatID != h.SatID {
					t.Fatalf("t=%v %v: pass %d sat %d vs %d", tSec, g, i, h.SatID, w.SatID)
				}
				if math.Abs(w.SlantKm-h.SlantKm) > 1e-9 || math.Abs(w.RTTMs-h.RTTMs) > 1e-12 ||
					math.Abs(w.ElevationDeg-h.ElevationDeg) > 1e-9 {
					t.Fatalf("t=%v %v: pass for sat %d differs: %+v vs %+v", tSec, g, w.SatID, h, w)
				}
			}
			if n := ix.CountReachableFrom(ground); n != len(want) {
				t.Fatalf("t=%v %v: CountReachableFrom %d, want %d", tSec, g, n, len(want))
			}
		}
	}
}

// TestForEachNearMargin checks the group-query guarantee: a satellite
// visible from a point within extraKm of the anchor must appear among the
// candidates of the widened query.
func TestForEachNearMargin(t *testing.T) {
	c := starlink(t)
	obs := visibility.NewObserver(c)
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(500)
	ix.Rebuild(snap)

	anchor := geo.LatLon{LatDeg: 40, LonDeg: -100}
	const spreadKm = 600
	offsets := []geo.LatLon{
		geo.Destination(anchor, 0, spreadKm),
		geo.Destination(anchor, 90, spreadKm),
		geo.Destination(anchor, 225, spreadKm),
	}
	cands := map[int]bool{}
	ix.ForEachNear(anchor.LatDeg, anchor.LonDeg, spreadKm, func(id int, _ geo.Vec3) {
		cands[id] = true
	})
	for _, o := range offsets {
		for _, p := range obs.Reachable(o.ECEF(), snap, nil) {
			if !cands[p.SatID] {
				t.Fatalf("sat %d visible from %v (within %v km of anchor) missing from candidates", p.SatID, o, spreadKm)
			}
		}
	}
}

func TestReachableFromDstReuse(t *testing.T) {
	c := starlink(t)
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(0)
	ix.Rebuild(snap)
	ground := geo.LatLon{LatDeg: 10, LonDeg: 20}.ECEF()

	first := ix.ReachableFrom(ground, nil)
	if len(first) == 0 {
		t.Fatal("no passes at a mid-latitude point")
	}
	// Appending into a recycled buffer must not disturb earlier entries.
	buf := append(first[:0:0], first...)
	again := ix.ReachableFrom(ground, buf[:0])
	if len(again) != len(first) {
		t.Fatalf("reuse changed result size: %d vs %d", len(again), len(first))
	}
	for i := range first {
		if again[i] != first[i] {
			t.Fatalf("pass %d differs after reuse", i)
		}
	}
}

// TestReachableFromEdgeCases pins the index to the exhaustive scan exactly
// at the coordinate singularities: the poles (±90°), the dateline (±180°,
// where colOf wraps), and points just shy of both — where row clamping and
// dateline-window splitting are easiest to get wrong.
func TestReachableFromEdgeCases(t *testing.T) {
	c := starlink(t)
	obs := visibility.NewObserver(c)
	ix, err := NewIndex(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	grounds := []geo.LatLon{
		{LatDeg: 90, LonDeg: 0},    // north pole
		{LatDeg: 90, LonDeg: 137},  // north pole, alternate longitude label
		{LatDeg: -90, LonDeg: 0},   // south pole
		{LatDeg: -90, LonDeg: -45}, // south pole, alternate longitude label
		{LatDeg: 89.9, LonDeg: 10},
		{LatDeg: -89.9, LonDeg: -170},
		{LatDeg: 0, LonDeg: 180},  // dateline, east label
		{LatDeg: 0, LonDeg: -180}, // dateline, west label (same meridian)
		{LatDeg: 53, LonDeg: 180}, // dateline at shell inclination
		{LatDeg: -53, LonDeg: -180},
		{LatDeg: 12, LonDeg: 179.99},
		{LatDeg: -12, LonDeg: -179.99},
		{LatDeg: 89.9, LonDeg: 179.99}, // near-pole AND near-dateline
		{LatDeg: -89.9, LonDeg: -179.99},
	}
	for _, tSec := range []float64{0, 1201} {
		snap := c.Snapshot(tSec)
		ix.Rebuild(snap)
		for _, g := range grounds {
			ground := g.ECEF()
			want := obs.Reachable(ground, snap, nil)
			got := ix.ReachableFrom(ground, nil)
			sortPasses(want)
			sortPasses(got)
			if len(got) != len(want) {
				t.Fatalf("t=%v %v: index %d passes, linear %d", tSec, g, len(got), len(want))
			}
			for i := range want {
				if got[i].SatID != want[i].SatID {
					t.Fatalf("t=%v %v: pass %d sat %d vs %d", tSec, g, i, got[i].SatID, want[i].SatID)
				}
				if math.Abs(got[i].SlantKm-want[i].SlantKm) > 1e-9 {
					t.Fatalf("t=%v %v: sat %d slant %v vs %v", tSec, g, want[i].SatID, got[i].SlantKm, want[i].SlantKm)
				}
			}
			if n := ix.CountReachableFrom(ground); n != len(want) {
				t.Fatalf("t=%v %v: CountReachableFrom %d, want %d", tSec, g, n, len(want))
			}
		}
	}
}
