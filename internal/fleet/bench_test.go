package fleet

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/obs"
)

// benchAnchors are mid-latitude population centres the benchmark workload
// clusters around — the same city-weighted shape fleetsim uses.
var benchAnchors = []geo.LatLon{
	{LatDeg: 9.1, LonDeg: 7.5},     // Abuja
	{LatDeg: 51.5, LonDeg: -0.1},   // London
	{LatDeg: 35.7, LonDeg: 139.7},  // Tokyo
	{LatDeg: -23.5, LonDeg: -46.6}, // São Paulo
	{LatDeg: 40.7, LonDeg: -74.0},  // New York
	{LatDeg: 28.6, LonDeg: 77.2},   // Delhi
	{LatDeg: -33.9, LonDeg: 151.2}, // Sydney
	{LatDeg: 37.8, LonDeg: -122.4}, // San Francisco
}

// benchWorkload builds n two-user sessions scattered around the anchors.
// Demand is 0.02 cores per session so a million sessions fit inside the
// constellation's mid-latitude capacity band (~30% occupancy at 1M).
func benchWorkload(b *testing.B, n int) []*Session {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	out := make([]*Session, 0, n)
	for i := 0; i < n; i++ {
		a := benchAnchors[rng.Intn(len(benchAnchors))]
		users := []geo.LatLon{
			geo.Destination(a, rng.Float64()*360, 20+rng.Float64()*150),
			geo.Destination(a, rng.Float64()*360, 20+rng.Float64()*150),
		}
		s, err := NewSession(uint64(i+1), users)
		if err != nil {
			b.Fatal(err)
		}
		s.CoresDemand = 0.02
		s.MemoryGB = 0.05
		out = append(out, s)
	}
	return out
}

// BenchmarkFleetScale measures the steady-state epoch cost of the sharded
// streaming planner over the full Starlink Phase I constellation at 100k,
// 300k, and 1M concurrent sessions. The reported us-per-session-epoch
// metric is the scaling curve recorded in BENCH_fleet.json: it must not
// grow with the population (sub-linear total cost), because per-epoch work
// is dominated by the sessions that actually need re-placement and the
// batched SSSP amortises better the more movers share a source satellite.
func BenchmarkFleetScale(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{100_000, 300_000, 1_000_000} {
		b.Run(fmt.Sprintf("sessions_%d", n), func(b *testing.B) {
			o, err := New(c, nil, Config{
				StepSec:          60,
				ExpectedSessions: n,
				Registry:         obs.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := o.SubmitBatch(benchWorkload(b, n)); err != nil {
				b.Fatal(err)
			}
			if err := o.Start(0); err != nil {
				b.Fatal(err)
			}
			// Warm epoch: the one-off initial placement of the whole
			// population is not the steady-state cost being measured.
			if _, err := o.Step(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perSession := b.Elapsed().Seconds() * 1e6 / float64(b.N) / float64(n)
			b.ReportMetric(perSession, "us-per-session-epoch")
			b.ReportMetric(float64(n), "sessions")
		})
	}
}
