package fleet

import "repro/internal/stats"

// totals accumulates the orchestrator's lifetime decision counters. They
// duplicate the obs counter families on purpose: Stats reads these plain
// fields instead of scraping metric names off a registry, so the snapshot
// stays stable even when the metric surface evolves.
type totals struct {
	placements, handoffs, rejections, departures uint64
	epochs                                       uint64
	expiring                                     uint64
	evacuations, evacuationsDeferred             uint64
	migrationFailures, backoffDeferrals          uint64
	islDegradations                              uint64
	satFailures, satRecoveries                   uint64
}

func (t *totals) fold(rep EpochReport) {
	t.placements += uint64(rep.Placements)
	t.handoffs += uint64(rep.Handoffs)
	t.rejections += uint64(rep.Rejections)
	t.departures += uint64(rep.Departures)
	t.epochs++
	t.expiring += uint64(rep.Expiring)
	t.evacuations += uint64(rep.Evacuations)
	t.evacuationsDeferred += uint64(rep.EvacuationsDeferred)
	t.migrationFailures += uint64(rep.MigrationFailures)
	t.backoffDeferrals += uint64(rep.BackoffDeferrals)
	t.islDegradations += uint64(rep.ISLDegradations)
	t.satFailures += uint64(rep.SatFailures)
	t.satRecoveries += uint64(rep.SatRecoveries)
}

// QuantileSummary is a compact distribution snapshot inside Stats.
type QuantileSummary struct {
	// Count is how many observations the distribution has absorbed.
	Count uint64
	// Mean, P50, P90, P99, and Max summarise it. All zero when Count is 0.
	Mean, P50, P90, P99, Max float64
}

// Stats is the stable fleet snapshot: everything a report or dashboard
// needs from a running orchestrator in one read, without scraping obs
// metric families by name. Cumulative fields cover the orchestrator's
// whole lifetime; instantaneous fields describe the state after the last
// Step.
type Stats struct {
	// TSec is the current simulated time (the next epoch's timestamp).
	TSec float64

	// Sessions and Assigned are the live population and how many of them
	// hold a satellite-server assignment.
	Sessions, Assigned int

	// Satellites is the constellation size; LoadedSats counts satellites
	// carrying at least one session.
	Satellites, LoadedSats int

	// Cumulative decision counters.
	Placements, Handoffs, Rejections, Departures uint64
	Epochs, Expiring                             uint64

	// Fault-handling counters (all zero without an injector), plus the
	// instantaneous failed-satellite and pending-evacuation counts.
	Evacuations, EvacuationsDeferred    uint64
	MigrationFailures, BackoffDeferrals uint64
	ISLDegradations                     uint64
	SatFailures, SatRecoveries          uint64
	DownSats, EvacuationsPending        int

	// MeanUtilization, UtilizationP50/P90, and UtilizationMax summarise
	// the per-satellite core utilisation distribution.
	MeanUtilization                                float64
	UtilizationP50, UtilizationP90, UtilizationMax float64

	// ReplanMs is the per-session proposal/replan latency distribution in
	// wall-clock milliseconds (non-deterministic); TransferMs is the
	// hand-off one-way state-transfer latency distribution in simulated
	// milliseconds (deterministic).
	ReplanMs, TransferMs QuantileSummary

	// PlannerShards is the footprint-region shard count; ShardWork holds
	// each region's work-item count from the last epoch — the planner's
	// shard-utilization view (empty before the first Step).
	PlannerShards int
	ShardWork     []int
}

// Stats snapshots the orchestrator. Safe to call between Steps; the
// ShardWork slice is a copy.
func (o *Orchestrator) Stats() Stats {
	st := Stats{
		TSec:                o.now,
		Sessions:            o.tab.Len(),
		Assigned:            o.nAssigned,
		Satellites:          o.c.Size(),
		Placements:          o.tot.placements,
		Handoffs:            o.tot.handoffs,
		Rejections:          o.tot.rejections,
		Departures:          o.tot.departures,
		Epochs:              o.tot.epochs,
		Expiring:            o.tot.expiring,
		Evacuations:         o.tot.evacuations,
		EvacuationsDeferred: o.tot.evacuationsDeferred,
		MigrationFailures:   o.tot.migrationFailures,
		BackoffDeferrals:    o.tot.backoffDeferrals,
		ISLDegradations:     o.tot.islDegradations,
		SatFailures:         o.tot.satFailures,
		SatRecoveries:       o.tot.satRecoveries,
		EvacuationsPending:  o.nEvacPending,
		PlannerShards:       o.cfg.PlannerShards,
	}
	if o.cfg.Faults != nil {
		st.DownSats = o.cfg.Faults.DownCount()
	}
	if o.tot.epochs > 0 {
		st.ShardWork = append(st.ShardWork, o.pl.regionWork...)
	}

	util := make([]float64, 0, len(o.nodes))
	sum := 0.0
	for _, n := range o.nodes {
		u := n.UtilizationCores()
		util = append(util, u)
		sum += u
		if u > 0 {
			st.LoadedSats++
		}
	}
	if len(util) > 0 {
		cdf := stats.NewCDF(util...)
		st.MeanUtilization = sum / float64(len(util))
		st.UtilizationP50 = cdf.Quantile(0.50)
		st.UtilizationP90 = cdf.Quantile(0.90)
		st.UtilizationMax = cdf.Max()
	}
	st.ReplanMs = quantileSummary(o.m.replanQ)
	st.TransferMs = quantileSummary(o.m.transferQ)
	return st
}

// quantileSummary reads a QuantileSummary off a streaming sketch.
func quantileSummary(q interface {
	Count() uint64
	Sum() float64
	Max() float64
	Quantiles(...float64) []float64
}) QuantileSummary {
	n := q.Count()
	if n == 0 {
		return QuantileSummary{}
	}
	qs := q.Quantiles(0.50, 0.90, 0.99)
	return QuantileSummary{
		Count: n,
		Mean:  q.Sum() / float64(n),
		P50:   qs[0],
		P90:   qs[1],
		P99:   qs[2],
		Max:   q.Max(),
	}
}
