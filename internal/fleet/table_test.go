package fleet

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geo"
)

func TestNewSessionDefaults(t *testing.T) {
	users := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 3.87, LonDeg: 11.52},
		{LatDeg: 5.60, LonDeg: -0.19},
	}
	s, err := NewSession(42, users)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 42 || len(s.Users) != 3 || s.Sat != -1 {
		t.Fatalf("bad session: %+v", s)
	}
	if s.CoresDemand <= 0 || s.MemoryGB <= 0 || s.StateMB <= 0 {
		t.Fatalf("zero default demand: %+v", s)
	}
	if !math.IsInf(s.ExpiresAt, 1) {
		t.Fatalf("default ExpiresAt %v, want +Inf", s.ExpiresAt)
	}
	if s.SpreadKm < 100 || s.SpreadKm > 2000 {
		t.Fatalf("spread %v km implausible for a regional group", s.SpreadKm)
	}
	// Every user must be within SpreadKm of the centroid — the index-query
	// margin contract.
	for i, u := range users {
		if d := geo.GreatCircleKm(s.CentroidLL, u); d > s.SpreadKm+1e-9 {
			t.Fatalf("user %d is %v km from centroid, beyond spread %v", i, d, s.SpreadKm)
		}
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(1, nil); err == nil {
		t.Fatal("empty group should fail")
	}
	if _, err := NewSession(1, []geo.LatLon{{LatDeg: 91}}); err == nil {
		t.Fatal("invalid location should fail")
	}
}

func TestTableShardSizing(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{-1, DefaultShards}, {0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {100, 128}, {256, 256},
	} {
		if got := NewTable(tc.n).NumShards(); got != tc.want {
			t.Fatalf("NewTable(%d) has %d shards, want %d", tc.n, got, tc.want)
		}
	}
}

func TestTableBasics(t *testing.T) {
	tab := NewTable(8)
	for id := uint64(0); id < 100; id++ {
		if err := tab.Put(&Session{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Put(&Session{ID: 7}); err == nil {
		t.Fatal("duplicate Put should fail")
	}
	if tab.Len() != 100 {
		t.Fatalf("Len %d, want 100", tab.Len())
	}
	if s, ok := tab.Get(55); !ok || s.ID != 55 {
		t.Fatalf("Get(55) = %v, %v", s, ok)
	}
	if _, ok := tab.Get(1000); ok {
		t.Fatal("Get of absent ID succeeded")
	}
	if !tab.Delete(55) || tab.Delete(55) {
		t.Fatal("Delete semantics wrong")
	}
	if tab.Len() != 99 {
		t.Fatalf("Len %d after delete, want 99", tab.Len())
	}
	seen := 0
	for i := 0; i < tab.NumShards(); i++ {
		tab.Shard(i, func(m map[uint64]*Session) { seen += len(m) })
	}
	if seen != 99 {
		t.Fatalf("shard scan saw %d sessions, want 99", seen)
	}
}

// TestTableShardBalance: sequential IDs (the arrival pattern) must spread
// across shards, not pile onto one.
func TestTableShardBalance(t *testing.T) {
	tab := NewTable(16)
	const n = 16 * 64
	for id := uint64(0); id < n; id++ {
		if err := tab.Put(&Session{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tab.NumShards(); i++ {
		var got int
		tab.Shard(i, func(m map[uint64]*Session) { got = len(m) })
		if got == 0 || got > 4*64 {
			t.Fatalf("shard %d holds %d of %d sessions — hash not spreading", i, got, n)
		}
	}
}

func TestTableConcurrent(t *testing.T) {
	tab := NewTable(0)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(w*per + i)
				if err := tab.Put(&Session{ID: id}); err != nil {
					errs <- err
					return
				}
				if _, ok := tab.Get(id); !ok {
					errs <- fmt.Errorf("session %d vanished", id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tab.Len() != workers*per {
		t.Fatalf("Len %d, want %d", tab.Len(), workers*per)
	}
}
