package fleet

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geo"
)

// Session is one placed (or placement-pending) compute session: a small
// user group that wants a shared satellite-server, with its resource
// demand and migratable state size. Immutable fields are set before
// Submit; the assignment fields (Sat, PlacedAt, RTTMs, Handoffs) are
// written only by the orchestrator's serial admission phase.
type Session struct {
	// ID identifies the session; unique within a table.
	ID uint64
	// Users are the group's terminals (ECEF, on the surface).
	Users []geo.Vec3
	// Centroid is the group centroid (ECEF) and CentroidLL its geographic
	// form, the anchor for footprint-index queries.
	Centroid   geo.Vec3
	CentroidLL geo.LatLon
	// SpreadKm is the largest great-circle distance from a user to the
	// centroid — the index query margin.
	SpreadKm float64

	// CoresDemand and MemoryGB are the per-session resource demand.
	CoresDemand float64
	MemoryGB    float64
	// StateMB is the session-specific state that must move on hand-off.
	StateMB float64
	// ExpiresAt is the absolute simulated departure time; +Inf runs
	// forever.
	ExpiresAt float64

	// Sat is the assigned satellite (-1 when unassigned).
	Sat int
	// PlacedAt is when the current assignment was made.
	PlacedAt float64
	// RTTMs is the group max RTT at the last placement.
	RTTMs float64
	// Handoffs counts completed migrations.
	Handoffs int
	// Retries counts consecutive failed migration transfer attempts;
	// RetryAt is the earliest simulated time the next attempt may run
	// (capped exponential backoff). Both reset on a successful placement.
	Retries int
	RetryAt float64
	// Evacuating marks a session that lost its satellite to a hard
	// failure and is still waiting for a new assignment — set and cleared
	// by the orchestrator so every evacuation is accounted for.
	Evacuating bool
}

// NewSession builds a session from user locations with the default demand
// (half a core, 1 GB, 64 MB of session state, no departure). Adjust the
// exported fields before Submit to override.
func NewSession(id uint64, users []geo.LatLon) (*Session, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("fleet: session %d has no users", id)
	}
	s := &Session{
		ID:          id,
		CoresDemand: 0.5,
		MemoryGB:    1,
		StateMB:     64,
		ExpiresAt:   math.Inf(1),
		Sat:         -1,
	}
	for _, u := range users {
		if !u.Valid() {
			return nil, fmt.Errorf("fleet: session %d has invalid user location %v", id, u)
		}
		s.Users = append(s.Users, u.ECEF())
	}
	s.CentroidLL = geo.Centroid(users)
	s.Centroid = s.CentroidLL.ECEF()
	for _, u := range users {
		if d := geo.GreatCircleKm(s.CentroidLL, u); d > s.SpreadKm {
			s.SpreadKm = d
		}
	}
	return s, nil
}

// DefaultShards is the default session-table shard count.
const DefaultShards = 256

// Table is a sharded session store: power-of-two shards, each a mutex plus
// map, so concurrent ingest, lookup, and shard-parallel scans contend only
// within a shard.
type Table struct {
	shards []tableShard
	shift  uint
}

type tableShard struct {
	mu sync.Mutex
	m  map[uint64]*Session
	// pad the shard to its own cache line so neighbouring shard locks do
	// not false-share.
	_ [64 - 16]byte
}

// NewTable creates a table with at least n shards (rounded up to a power
// of two; n <= 0 means DefaultShards).
func NewTable(n int) *Table { return NewTableSized(n, 0) }

// NewTableSized is NewTable with a population hint: each shard map is
// pre-sized for expected/shards sessions, so million-session ingest does
// not pay for incremental map growth. The hint is not a cap.
func NewTableSized(n, expected int) *Table {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table{shards: make([]tableShard, size), shift: 64}
	for size > 1 {
		size >>= 1
		t.shift--
	}
	perShard := 0
	if expected > 0 {
		perShard = expected / len(t.shards)
	}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*Session, perShard)
	}
	return t
}

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// shardFor spreads IDs over shards with a Fibonacci hash, so dense
// sequential IDs (the common arrival pattern) still balance.
func (t *Table) shardFor(id uint64) *tableShard {
	if t.shift >= 64 { // single shard
		return &t.shards[0]
	}
	return &t.shards[(id*0x9E3779B97F4A7C15)>>t.shift]
}

// Put inserts the session; duplicate IDs are an error.
func (t *Table) Put(s *Session) error {
	sh := t.shardFor(s.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[s.ID]; dup {
		return fmt.Errorf("fleet: session %d already in table", s.ID)
	}
	sh.m[s.ID] = s
	return nil
}

// Get returns the session with the given ID, if present.
func (t *Table) Get(id uint64) (*Session, bool) {
	sh := t.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	sh.mu.Unlock()
	return s, ok
}

// Delete removes the session, reporting whether it was present.
func (t *Table) Delete(id uint64) bool {
	sh := t.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	return ok
}

// Len returns the total session count.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].m)
		t.shards[i].mu.Unlock()
	}
	return n
}

// Shard runs f over shard i's map while holding that shard's lock. f must
// not call back into the table.
func (t *Table) Shard(i int, f func(map[uint64]*Session)) {
	sh := &t.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(sh.m)
}
