package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/migrate"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/visibility"
)

// Config tunes the orchestrator. The zero value picks the defaults noted on
// each field.
type Config struct {
	// StepSec is the epoch length in simulated seconds (default 60). All
	// detection, placement, and migration work is batched per epoch.
	StepSec float64
	// LookaheadSec is the visibility lookahead horizon used to rank
	// candidates by remaining visibility and to answer TimeToExpiry
	// (default 1200, the meetup Sticky horizon). Must be at least StepSec.
	LookaheadSec float64
	// LatencyBand is the fractional latency slack over the per-session
	// optimum a candidate may have and still be preferred for longevity
	// (default 0.10, the paper's Sticky band).
	LatencyBand float64
	// PoolSize is how many longest-visible band candidates are tried
	// before admission falls back to the remaining candidates by latency
	// (default 5, the paper's Sticky pool).
	PoolSize int
	// CellDeg is the footprint-index cell size (default DefaultCellDeg).
	CellDeg float64
	// Shards is the session-table shard count (default DefaultShards).
	Shards int
	// Workers bounds the parallelism of the detection and proposal phases
	// (default GOMAXPROCS).
	Workers int
	// Server is the per-satellite compute payload (default the paper's
	// reference server).
	Server compute.ServerSpec
	// ISLBandwidthGbps is the migration link rate (default isl.BandwidthGbps).
	ISLBandwidthGbps float64
	// DirtyRateMBps is how fast session state dirties during live
	// migration (default 4). Must stay below the link bandwidth.
	DirtyRateMBps float64
	// Registry receives the fleet_* metric families (default obs.Default()).
	Registry *obs.Registry
	// Faults injects satellite failures, ISL degradation, and migration
	// transfer failures (nil = fault-free). The orchestrator advances the
	// injector's clock on every Step; do not share one injector between
	// orchestrators.
	Faults *faults.Injector
	// RetryBaseSec and RetryCapSec bound the capped exponential backoff a
	// session waits after a failed migration transfer: attempt n retries
	// after min(RetryBaseSec·2ⁿ⁻¹, RetryCapSec). Defaults: StepSec and
	// 16·RetryBaseSec.
	RetryBaseSec, RetryCapSec float64
	// Ephem is the shared ephemeris engine backing the snapshot ring. Pass
	// one to share propagated frames with other consumers of the same
	// constellation; nil builds a private engine sized to the ring (grid
	// step = StepSec so every ring frame lands in the protected keyframe
	// tier).
	Ephem *ephem.Engine
}

func (c Config) withDefaults() (Config, error) {
	if c.StepSec == 0 {
		c.StepSec = 60
	}
	if c.StepSec <= 0 {
		return c, fmt.Errorf("fleet: step %v must be positive", c.StepSec)
	}
	if c.LookaheadSec == 0 {
		c.LookaheadSec = 1200
	}
	if c.LookaheadSec < c.StepSec {
		return c, fmt.Errorf("fleet: lookahead %vs shorter than step %vs", c.LookaheadSec, c.StepSec)
	}
	if c.LatencyBand <= 0 {
		c.LatencyBand = 0.10
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Server == (compute.ServerSpec{}) {
		c.Server = compute.DefaultServerSpec()
	}
	if err := c.Server.Validate(); err != nil {
		return c, err
	}
	if c.ISLBandwidthGbps == 0 {
		c.ISLBandwidthGbps = isl.BandwidthGbps
	}
	if c.ISLBandwidthGbps <= 0 {
		return c, fmt.Errorf("fleet: ISL bandwidth %v must be positive", c.ISLBandwidthGbps)
	}
	if c.DirtyRateMBps == 0 {
		c.DirtyRateMBps = 4
	}
	if c.DirtyRateMBps < 0 || c.DirtyRateMBps >= migrate.GbpsToMBps(c.ISLBandwidthGbps) {
		return c, fmt.Errorf("fleet: dirty rate %v MB/s must be in [0, link bandwidth)", c.DirtyRateMBps)
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.RetryBaseSec == 0 {
		c.RetryBaseSec = c.StepSec
	}
	if c.RetryBaseSec < 0 {
		return c, fmt.Errorf("fleet: retry base %v s must be positive", c.RetryBaseSec)
	}
	if c.RetryCapSec == 0 {
		c.RetryCapSec = 16 * c.RetryBaseSec
	}
	if c.RetryCapSec < c.RetryBaseSec {
		return c, fmt.Errorf("fleet: retry cap %v s below base %v s", c.RetryCapSec, c.RetryBaseSec)
	}
	return c, nil
}

// EpochReport summarises one planner epoch.
type EpochReport struct {
	// TSec is the simulated time the epoch ran at.
	TSec float64
	// Sessions and Assigned are the table population and assignment count
	// after the epoch.
	Sessions, Assigned int
	// Expiring is how many live assignments were about to lose full-group
	// visibility and entered re-placement.
	Expiring int
	// Placements counts initial admissions; Handoffs counts migrations;
	// Rejections counts sessions no visible satellite could fit;
	// Departures counts sessions removed at their end time.
	Placements, Handoffs, Rejections, Departures int
	// Transfer aggregates the one-way state-transfer latency (ms) of this
	// epoch's hand-offs; Downtime aggregates their live-migration downtime
	// (seconds).
	Transfer, Downtime stats.Summary
	// MeanUtilization is the mean core utilisation across all
	// satellite-servers after the epoch.
	MeanUtilization float64
	// WallSec is the measured wall-clock duration of the epoch
	// (non-deterministic; everything else in the report is deterministic
	// for a fixed workload).
	WallSec float64

	// SatFailures and SatRecoveries count the injected hard-fault events
	// consumed this epoch; DownSats is the failed-satellite count after it.
	SatFailures, SatRecoveries, DownSats int
	// Evacuations counts sessions successfully moved off a failed
	// satellite; EvacuationsDeferred counts evacuation attempts left
	// pending (transfer failure or no capacity — they retry later).
	Evacuations, EvacuationsDeferred int
	// MigrationFailures counts injected transfer failures this epoch;
	// BackoffDeferrals counts sessions skipped while waiting out their
	// retry backoff.
	MigrationFailures, BackoffDeferrals int
	// ISLDegradations counts hand-off transfers this epoch that found
	// their ISL path degraded and spilled to a ground relay.
	ISLDegradations int
}

// Orchestrator is the fleet-wide session control plane. Build with New,
// seed sessions with Submit, call Start once, then Step per epoch. Step is
// not safe to call concurrently with itself or with queries; Submit and
// table reads are safe from other goroutines between steps.
type Orchestrator struct {
	c    *constellation.Constellation
	obs  *visibility.Observer
	grid *isl.Grid
	idx  *Index
	tab  *Table
	cfg  Config

	nodes []*compute.Node

	// ring[k] is the constellation snapshot at now + k·step, k in [0, K].
	// Entries are frames borrowed from the ephemeris engine: shared,
	// immutable, never written in place.
	ring [][]geo.Vec3
	eng  *ephem.Engine
	k    int
	now  float64

	started      bool
	nAssigned    int
	nEvacPending int // sessions off a failed satellite, not yet re-placed
	epochISL     int // ISL-degraded transfers seen this epoch (serial phase)
	m            *metricsSet

	// islMemo caches per-epoch ISL one-way latencies keyed a<<32|b; the
	// underlying Dijkstra dominates hand-off costing without it because
	// city-anchored sessions migrate between the same few satellite pairs.
	islMemo map[uint64]float64

	latSamples []float64
}

// maxLatencySamples bounds the retained placement-latency samples (the obs
// histogram keeps counting past the cap).
const maxLatencySamples = 1 << 21

// New builds an orchestrator over the constellation. grid may be nil to
// build a +grid ISL topology; pass a shared one to avoid rebuilding.
func New(c *constellation.Constellation, grid *isl.Grid, cfg Config) (*Orchestrator, error) {
	if c == nil || c.Size() == 0 {
		return nil, fmt.Errorf("fleet: empty constellation")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	idx, err := NewIndex(c, cfg.CellDeg)
	if err != nil {
		return nil, err
	}
	if grid == nil {
		grid = isl.NewPlusGrid(c)
	}
	eng := cfg.Ephem
	if eng == nil {
		// Private engine: keyframe grid = the epoch grid, protected tier
		// sized to hold the whole lookahead ring plus advance slack.
		ringLen := int(math.Round(cfg.LookaheadSec/cfg.StepSec)) + 1
		eng = ephem.New(c, ephem.Config{
			Workers:     cfg.Workers,
			GridStepSec: cfg.StepSec,
			GridFrames:  ringLen + 2,
			CacheFrames: ringLen + 2,
			Registry:    cfg.Registry,
		})
	}
	o := &Orchestrator{
		c:       c,
		eng:     eng,
		obs:     idx.Observer(),
		grid:    grid,
		idx:     idx,
		tab:     NewTable(cfg.Shards),
		cfg:     cfg,
		nodes:   make([]*compute.Node, c.Size()),
		m:       newMetrics(cfg.Registry),
		islMemo: make(map[uint64]float64),
	}
	for id := range o.nodes {
		n, err := compute.NewNode(id, cfg.Server)
		if err != nil {
			return nil, err
		}
		o.nodes[id] = n
	}
	return o, nil
}

// Table exposes the session table.
func (o *Orchestrator) Table() *Table { return o.tab }

// Index exposes the footprint index (valid after Start).
func (o *Orchestrator) Index() *Index { return o.idx }

// Constellation returns the underlying constellation.
func (o *Orchestrator) Constellation() *constellation.Constellation { return o.c }

// Ephemeris returns the engine backing the snapshot ring (the configured
// shared engine, or the private one built by New).
func (o *Orchestrator) Ephemeris() *ephem.Engine { return o.eng }

// Now returns the current simulated time.
func (o *Orchestrator) Now() float64 { return o.now }

// Utilization returns the per-satellite core utilisation, indexed by
// satellite ID.
func (o *Orchestrator) Utilization() []float64 {
	out := make([]float64, len(o.nodes))
	for i, n := range o.nodes {
		out[i] = n.UtilizationCores()
	}
	return out
}

// PlacementLatencySamples returns the recorded per-session proposal
// latencies in seconds (capped at maxLatencySamples; wall-clock, so values
// are non-deterministic while their order is).
func (o *Orchestrator) PlacementLatencySamples() []float64 { return o.latSamples }

// Submit adds a session to the fleet; it is placed on the next Step.
func (o *Orchestrator) Submit(s *Session) error {
	if s == nil || len(s.Users) == 0 {
		return fmt.Errorf("fleet: submit of empty session")
	}
	if s.CoresDemand < 0 || s.MemoryGB < 0 || s.StateMB < 0 {
		return fmt.Errorf("fleet: session %d has negative demand", s.ID)
	}
	if s.ID > math.MaxInt64 {
		return fmt.Errorf("fleet: session ID %d overflows the compute task ID space", s.ID)
	}
	s.Sat = -1
	return o.tab.Put(s)
}

// SubmitBatch submits many sessions, stopping at the first error.
func (o *Orchestrator) SubmitBatch(ss []*Session) error {
	for _, s := range ss {
		if err := o.Submit(s); err != nil {
			return err
		}
	}
	return nil
}

// Remove drops a session immediately, releasing its capacity.
func (o *Orchestrator) Remove(id uint64) bool {
	s, ok := o.tab.Get(id)
	if !ok {
		return false
	}
	if s.Sat >= 0 {
		_ = o.nodes[s.Sat].Release(int(s.ID))
		s.Sat = -1
		o.nAssigned--
	}
	if s.Evacuating {
		s.Evacuating = false
		o.nEvacPending--
	}
	return o.tab.Delete(id)
}

// Start fixes the epoch clock at t0 and builds the snapshot ring and
// footprint index. Call once before Step.
func (o *Orchestrator) Start(t0 float64) error {
	if o.started {
		return fmt.Errorf("fleet: already started")
	}
	o.k = int(math.Round(o.cfg.LookaheadSec / o.cfg.StepSec))
	if o.k < 1 {
		o.k = 1
	}
	o.ring = make([][]geo.Vec3, o.k+1)
	for i := range o.ring {
		o.ring[i] = o.eng.SnapshotAt(t0 + float64(i)*o.cfg.StepSec)
	}
	o.idx.Rebuild(o.ring[0])
	if o.cfg.Faults != nil {
		// Bring the injector to t0; faults before the run started are not
		// this orchestrator's to handle.
		o.cfg.Faults.Advance(t0)
	}
	o.now = t0
	o.started = true
	return nil
}

// visibleAll reports whether sat is visible to every user of the session
// in the given snapshot.
func (o *Orchestrator) visibleAll(s *Session, satID int, snap []geo.Vec3) bool {
	pos := snap[satID]
	for _, u := range s.Users {
		if !o.obs.Visible(u, satID, pos) {
			return false
		}
	}
	return true
}

// groupRTT returns the session's max user RTT to sat in the snapshot; ok
// is false when some user cannot see it.
func (o *Orchestrator) groupRTT(s *Session, satID int, snap []geo.Vec3) (float64, bool) {
	pos := snap[satID]
	worst := 0.0
	for _, u := range s.Users {
		if !o.obs.Visible(u, satID, pos) {
			return 0, false
		}
		if rtt := units.RTTMs(pos.Distance(u)); rtt > worst {
			worst = rtt
		}
	}
	return worst, true
}

// TimeToExpiry returns how long the session's current assignment stays
// visible to the whole group, at epoch granularity — the fleet-scale
// batched form of meetup.Planner.TimeToExpiry (capped=true when the
// assignment survives the whole lookahead ring).
func (o *Orchestrator) TimeToExpiry(s *Session) (warnSec float64, capped bool, err error) {
	if !o.started {
		return 0, false, fmt.Errorf("fleet: not started")
	}
	if s.Sat < 0 {
		return 0, false, fmt.Errorf("fleet: session %d is unassigned", s.ID)
	}
	for k := 1; k <= o.k; k++ {
		if !o.visibleAll(s, s.Sat, o.ring[k]) {
			return float64(k) * o.cfg.StepSec, false, nil
		}
	}
	return float64(o.k) * o.cfg.StepSec, true, nil
}

// candidate is one placement option for a session.
type candidate struct {
	id   int
	rtt  float64
	life int // remaining epochs of full-group visibility, capped at o.k
}

// proposal is the ranked admission order for one work item.
type proposal struct {
	ranked []candidate
	latSec float64
}

// workItem is one session needing placement this epoch.
type workItem struct {
	sess       *Session
	expiring   bool
	evacuating bool // current satellite hard-failed: move now, not at expiry
}

// satUp reports whether satellite id is serving (always true without an
// injector).
func (o *Orchestrator) satUp(id int) bool {
	return o.cfg.Faults == nil || o.cfg.Faults.SatUp(id)
}

// backoffSec is the capped exponential retry backoff after the n-th
// consecutive failed migration attempt (n >= 1).
func (o *Orchestrator) backoffSec(n int) float64 {
	d := o.cfg.RetryBaseSec * math.Pow(2, float64(n-1))
	if d > o.cfg.RetryCapSec {
		d = o.cfg.RetryCapSec
	}
	return d
}

// deferEvacuation records that a session off a failed satellite could not
// be re-placed this epoch and stays pending.
func (o *Orchestrator) deferEvacuation(s *Session, rep *EpochReport) {
	rep.EvacuationsDeferred++
	o.m.evacDeferred.Inc()
	if !s.Evacuating {
		s.Evacuating = true
		o.nEvacPending++
	}
}

// parallelFor splits [0,n) into contiguous chunks across the configured
// workers. Chunked ranges keep writes to per-index slots deterministic.
func (o *Orchestrator) parallelFor(n int, f func(lo, hi int)) {
	workers := o.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Step runs one planner epoch at the current simulated time: removes
// departed sessions, detects assignments about to lose visibility,
// re-places them (and places arrivals) under load-aware admission, costs
// the resulting migrations, then advances the clock by one step.
func (o *Orchestrator) Step() (EpochReport, error) {
	if !o.started {
		return EpochReport{}, fmt.Errorf("fleet: Start must be called before Step")
	}
	wall := time.Now()
	rep := EpochReport{TSec: o.now}
	o.epochISL = 0
	for k := range o.islMemo {
		delete(o.islMemo, k)
	}

	// Phase A0 — fault events: consume everything the injector fired up to
	// this epoch. Failed satellites are detected below; recovered ones are
	// simply eligible again.
	if f := o.cfg.Faults; f != nil {
		for _, ev := range f.Advance(o.now) {
			switch ev.Kind {
			case faults.SatFail:
				rep.SatFailures++
				o.m.faultSatFail.Inc()
			case faults.SatRecover:
				rep.SatRecoveries++
				o.m.faultSatRec.Inc()
			}
		}
		rep.DownSats = f.DownCount()
	}

	// Phase A — detection, parallel across table shards: find departures
	// and sessions needing (re-)placement. Sessions on a hard-failed
	// satellite evacuate immediately, ahead of their visibility expiry;
	// sessions inside a retry backoff window are deferred.
	nShards := o.tab.NumShards()
	workByShard := make([][]workItem, nShards)
	goneByShard := make([][]*Session, nShards)
	deferByShard := make([]int, nShards)
	o.parallelFor(nShards, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			o.tab.Shard(si, func(m map[uint64]*Session) {
				for _, s := range m {
					switch {
					case s.ExpiresAt <= o.now:
						goneByShard[si] = append(goneByShard[si], s)
					case s.Sat >= 0 && !o.satUp(s.Sat):
						// A dead satellite overrides any retry backoff: the
						// session must evacuate now, not when its timer says.
						workByShard[si] = append(workByShard[si], workItem{sess: s, evacuating: true})
					case s.RetryAt > o.now:
						deferByShard[si]++
					case s.Sat < 0:
						workByShard[si] = append(workByShard[si], workItem{sess: s})
					case !o.visibleAll(s, s.Sat, o.ring[1]):
						workByShard[si] = append(workByShard[si], workItem{sess: s, expiring: true})
					}
				}
			})
		}
	})
	for _, n := range deferByShard {
		rep.BackoffDeferrals += n
	}
	o.m.retryDeferred.Add(uint64(rep.BackoffDeferrals))
	var work []workItem
	var gone []*Session
	for si := 0; si < nShards; si++ {
		work = append(work, workByShard[si]...)
		gone = append(gone, goneByShard[si]...)
	}
	sort.Slice(work, func(i, j int) bool { return work[i].sess.ID < work[j].sess.ID })
	sort.Slice(gone, func(i, j int) bool { return gone[i].ID < gone[j].ID })

	for _, s := range gone {
		if s.Sat >= 0 {
			_ = o.nodes[s.Sat].Release(int(s.ID))
			s.Sat = -1
			o.nAssigned--
		}
		if s.Evacuating {
			s.Evacuating = false
			o.nEvacPending--
		}
		o.tab.Delete(s.ID)
		rep.Departures++
	}
	o.m.departures.Add(uint64(rep.Departures))

	// Phase B — proposals, parallel across work items: each session gets a
	// deterministic ranked candidate list (read-only over ring and index).
	proposals := make([]proposal, len(work))
	o.parallelFor(len(work), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			proposals[i] = o.propose(work[i].sess)
		}
	})

	// Phase C — admission, serial in session-ID order: first candidate
	// with spare capacity wins; sessions spill down their ranking when a
	// satellite is full, and are rejected (retrying next epoch) when none
	// fits.
	task := func(s *Session) compute.Task {
		return compute.Task{ID: int(s.ID), Cores: s.CoresDemand, MemoryGB: s.MemoryGB}
	}
	for i, w := range work {
		s := w.sess
		evac := w.evacuating || s.Evacuating
		if w.expiring {
			rep.Expiring++
		}
		if s.Retries > 0 {
			o.m.migRetries.Inc()
		}
		chosen := candidate{id: -1}
		for _, cand := range proposals[i].ranked {
			if cand.id == s.Sat || o.nodes[cand.id].Fits(task(s)) {
				chosen = cand
				break
			}
		}
		if chosen.id < 0 {
			if s.Sat >= 0 {
				_ = o.nodes[s.Sat].Release(int(s.ID))
				s.Sat = -1
				o.nAssigned--
			}
			rep.Rejections++
			if evac {
				o.deferEvacuation(s, &rep)
			}
			continue
		}
		if chosen.id == s.Sat {
			// Nothing better had room; hold the current satellite until it
			// actually sets. (A failed satellite is never ranked, so an
			// evacuating session cannot take this path.)
			s.RTTMs = chosen.rtt
			continue
		}
		if s.Sat >= 0 {
			from := s.Sat
			// An injected transfer failure aborts the migration before any
			// capacity moves: the session backs off and retries later,
			// holding its current satellite when that is still alive.
			if f := o.cfg.Faults; f != nil && !f.MigrationOK(s.ID, from, chosen.id, s.Retries) {
				rep.MigrationFailures++
				o.m.faultMig.Inc()
				s.Retries++
				s.RetryAt = o.now + o.backoffSec(s.Retries)
				if evac {
					// The source is gone: the session rides out the backoff
					// unassigned (its state restores from the replicated
					// checkpoint on the next attempt).
					_ = o.nodes[from].Release(int(s.ID))
					s.Sat = -1
					o.nAssigned--
					o.deferEvacuation(s, &rep)
				}
				continue
			}
			if err := o.nodes[chosen.id].Place(task(s)); err != nil {
				return rep, fmt.Errorf("fleet: admission of session %d: %w", s.ID, err)
			}
			_ = o.nodes[from].Release(int(s.ID))
			transfer := o.transferMs(from, chosen.id, s.Centroid)
			res, merr := migrate.Live(
				migrate.State{SessionMB: s.StateMB, DirtyRateMBps: o.cfg.DirtyRateMBps},
				migrate.Link{BandwidthMBps: migrate.GbpsToMBps(o.cfg.ISLBandwidthGbps), OneWayMs: transfer},
				migrate.LiveConfig{GenericReplicatedAhead: true},
			)
			if merr != nil {
				return rep, fmt.Errorf("fleet: migration cost of session %d: %w", s.ID, merr)
			}
			rep.Handoffs++
			s.Handoffs++
			rep.Transfer.Add(transfer)
			rep.Downtime.Add(res.DowntimeSec)
			o.m.transferMs.Observe(transfer)
			o.m.transferQ.Observe(transfer)
			o.m.handoffs.Inc()
			o.m.placeHandoff.Inc()
		} else {
			// Unassigned (re-)placements restore from the pre-replicated
			// generic state plus checkpoint, so no transfer coin is flipped.
			if err := o.nodes[chosen.id].Place(task(s)); err != nil {
				return rep, fmt.Errorf("fleet: admission of session %d: %w", s.ID, err)
			}
			rep.Placements++
			o.nAssigned++
			o.m.placeInitial.Inc()
		}
		if evac {
			rep.Evacuations++
			o.m.evacOK.Inc()
			if s.Evacuating {
				s.Evacuating = false
				o.nEvacPending--
			}
		}
		s.Sat = chosen.id
		s.PlacedAt = o.now
		s.RTTMs = chosen.rtt
		s.Retries, s.RetryAt = 0, 0
	}
	o.m.rejections.Add(uint64(rep.Rejections))
	for i := range proposals {
		o.m.placeLat.Observe(proposals[i].latSec)
		o.m.replanQ.Observe(proposals[i].latSec * 1e3)
		if len(o.latSamples) < maxLatencySamples {
			o.latSamples = append(o.latSamples, proposals[i].latSec)
		}
	}

	// Phase D — advance the epoch clock: rotate the ring, fetch the new
	// horizon snapshot from the ephemeris engine (every other ring frame
	// is a cache hit), re-bucket the index.
	o.now += o.cfg.StepSec
	copy(o.ring, o.ring[1:])
	o.ring[o.k] = o.eng.SnapshotAt(o.now + float64(o.k)*o.cfg.StepSec)
	o.idx.Rebuild(o.ring[0])

	rep.Sessions = o.tab.Len()
	rep.Assigned = o.nAssigned
	util := 0.0
	for _, n := range o.nodes {
		util += n.UtilizationCores()
	}
	rep.MeanUtilization = util / float64(len(o.nodes))
	rep.ISLDegradations = o.epochISL
	rep.WallSec = time.Since(wall).Seconds()

	o.m.sessions.Set(float64(rep.Sessions))
	o.m.assigned.Set(float64(rep.Assigned))
	o.m.downSats.Set(float64(rep.DownSats))
	o.m.evacPending.Set(float64(o.nEvacPending))
	o.m.epochs.Inc()
	o.m.epochSec.Observe(rep.WallSec)
	return rep, nil
}

// propose computes a session's ranked candidate list: all satellites
// visible to the whole group, Sticky-ordered — candidates within the
// latency band ranked by remaining visibility (the paper's stationarity
// objective), then the rest by latency for load spill.
func (o *Orchestrator) propose(s *Session) proposal {
	t0 := time.Now()
	snap := o.ring[0]
	var cands []candidate
	qStart := time.Now()
	o.idx.ForEachNear(s.CentroidLL.LatDeg, s.CentroidLL.LonDeg, s.SpreadKm, func(id int, pos geo.Vec3) {
		if !o.satUp(id) {
			return // hard-failed satellites take no placements
		}
		if rtt, ok := o.groupRTT(s, id, snap); ok {
			cands = append(cands, candidate{id: id, rtt: rtt})
		}
	})
	o.m.indexQuery.Observe(time.Since(qStart).Seconds())
	if len(cands) == 0 {
		return proposal{latSec: time.Since(t0).Seconds()}
	}
	minRTT := math.Inf(1)
	for _, c := range cands {
		if c.rtt < minRTT {
			minRTT = c.rtt
		}
	}
	bound := minRTT * (1 + o.cfg.LatencyBand)
	band := 0
	for i := range cands {
		if cands[i].rtt <= bound {
			cands[band], cands[i] = cands[i], cands[band]
			band++
		}
	}
	for i := 0; i < band; i++ {
		cands[i].life = o.lifeEpochs(s, cands[i].id)
	}
	sort.Slice(cands[:band], func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.life != b.life {
			return a.life > b.life
		}
		if a.rtt != b.rtt {
			return a.rtt < b.rtt
		}
		return a.id < b.id
	})
	rest := cands[band:]
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].rtt != rest[j].rtt {
			return rest[i].rtt < rest[j].rtt
		}
		return rest[i].id < rest[j].id
	})
	// Admission order: the Sticky pool first, then everything else by
	// latency. Keeping the full list (not just the pool) is what lets
	// admission spill under load instead of rejecting.
	if band > o.cfg.PoolSize {
		pool := append([]candidate(nil), cands[:o.cfg.PoolSize]...)
		overflow := cands[o.cfg.PoolSize:band]
		sort.Slice(overflow, func(i, j int) bool {
			if overflow[i].rtt != overflow[j].rtt {
				return overflow[i].rtt < overflow[j].rtt
			}
			return overflow[i].id < overflow[j].id
		})
		merged := append(pool, mergeByLatency(overflow, rest)...)
		return proposal{ranked: merged, latSec: time.Since(t0).Seconds()}
	}
	return proposal{ranked: cands, latSec: time.Since(t0).Seconds()}
}

// mergeByLatency merges two latency-sorted candidate slices.
func mergeByLatency(a, b []candidate) []candidate {
	out := make([]candidate, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].rtt < b[j].rtt || (a[i].rtt == b[j].rtt && a[i].id <= b[j].id) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// lifeEpochs returns how many future ring epochs the satellite stays
// visible to the whole session, capped at the ring length.
func (o *Orchestrator) lifeEpochs(s *Session, satID int) int {
	for k := 1; k <= o.k; k++ {
		if !o.visibleAll(s, satID, o.ring[k]) {
			return k - 1
		}
	}
	return o.k
}

// transferMs is the one-way state-transfer latency from sat a to b at the
// current epoch: the cheaper of the shortest ISL path (same-shell pairs,
// memoised per epoch) and a ground relay through the session's region —
// the same accounting as meetup.Planner.TransferLatencyMs.
func (o *Orchestrator) transferMs(a, b int, centroid geo.Vec3) float64 {
	snap := o.ring[0]
	relay := units.PropagationDelayMs(snap[a].Distance(centroid) + centroid.Distance(snap[b]))
	if o.c.Satellites[a].ShellIndex != o.c.Satellites[b].ShellIndex {
		return relay // the +grid does not link shells
	}
	if f := o.cfg.Faults; f != nil && f.ISLDegraded(a, b, o.now) {
		o.m.faultISL.Inc()
		o.epochISL++
		return relay // flapped path: spill the transfer to the ground relay
	}
	key := uint64(a)<<32 | uint64(b)
	islMs, ok := o.islMemo[key]
	if !ok {
		p, err := netgraph.ISLShortest(o.grid, snap, a, b)
		if err != nil {
			islMs = math.Inf(1) // degenerate topology: relay wins
		} else {
			islMs = p.OneWayMs
		}
		o.islMemo[key] = islMs
	}
	return math.Min(islMs, relay)
}
