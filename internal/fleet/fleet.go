package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/migrate"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/visibility"
)

// Config tunes the orchestrator. The zero value picks the defaults noted on
// each field.
type Config struct {
	// StepSec is the epoch length in simulated seconds (default 60). All
	// detection, placement, and migration work is batched per epoch.
	StepSec float64
	// LookaheadSec is the visibility lookahead horizon used to rank
	// candidates by remaining visibility and to answer TimeToExpiry
	// (default 1200, the meetup Sticky horizon). Must be at least StepSec.
	LookaheadSec float64
	// LatencyBand is the fractional latency slack over the per-session
	// optimum a candidate may have and still be preferred for longevity
	// (default 0.10, the paper's Sticky band).
	LatencyBand float64
	// PoolSize is how many longest-visible band candidates are tried
	// before admission falls back to the remaining candidates by latency
	// (default 5, the paper's Sticky pool).
	PoolSize int
	// CellDeg is the footprint-index cell size (default DefaultCellDeg).
	CellDeg float64
	// Shards is the session-table shard count (default DefaultShards, or
	// scaled up from ExpectedSessions when that is larger).
	Shards int
	// PlannerShards is how many footprint-region queues the epoch planner
	// splits its work across (default Workers). Region queues sort and
	// propose independently and merge back in session-ID order, so the
	// planner's output is byte-identical for every shard count; shards only
	// bound parallelism and bowl memory into region-local chunks.
	PlannerShards int
	// ExpectedSessions sizes the session table and per-epoch planner
	// scratch for the intended population (default 0 = modest). It is a
	// hint: the orchestrator grows past it without error.
	ExpectedSessions int
	// Workers bounds the parallelism of the detection and proposal phases
	// (default GOMAXPROCS).
	Workers int
	// Server is the per-satellite compute payload (default the paper's
	// reference server).
	Server compute.ServerSpec
	// ISLBandwidthGbps is the migration link rate (default isl.BandwidthGbps).
	ISLBandwidthGbps float64
	// DirtyRateMBps is how fast session state dirties during live
	// migration (default 4). Must stay below the link bandwidth.
	DirtyRateMBps float64
	// Registry receives the fleet_* metric families (default obs.Default()).
	Registry *obs.Registry
	// Faults injects satellite failures, ISL degradation, and migration
	// transfer failures (nil = fault-free). The orchestrator advances the
	// injector's clock on every Step; do not share one injector between
	// orchestrators.
	Faults *faults.Injector
	// RetryBaseSec and RetryCapSec bound the capped exponential backoff a
	// session waits after a failed migration transfer: attempt n retries
	// after min(RetryBaseSec·2ⁿ⁻¹, RetryCapSec). Defaults: StepSec and
	// 16·RetryBaseSec.
	RetryBaseSec, RetryCapSec float64
	// Ephem is the shared ephemeris engine backing the snapshot ring. Pass
	// one to share propagated frames with other consumers of the same
	// constellation; nil builds a private engine sized to the ring (grid
	// step = StepSec so every ring frame lands in the protected keyframe
	// tier).
	Ephem *ephem.Engine
}

func (c Config) withDefaults() (Config, error) {
	if c.StepSec == 0 {
		c.StepSec = 60
	}
	if c.StepSec <= 0 {
		return c, fmt.Errorf("fleet: step %v must be positive", c.StepSec)
	}
	if c.LookaheadSec == 0 {
		c.LookaheadSec = 1200
	}
	if c.LookaheadSec < c.StepSec {
		return c, fmt.Errorf("fleet: lookahead %vs shorter than step %vs", c.LookaheadSec, c.StepSec)
	}
	if c.LatencyBand <= 0 {
		c.LatencyBand = 0.10
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ExpectedSessions < 0 {
		return c, fmt.Errorf("fleet: expected sessions %d must be non-negative", c.ExpectedSessions)
	}
	if c.PlannerShards == 0 {
		c.PlannerShards = c.Workers
	}
	if c.PlannerShards < 0 {
		return c, fmt.Errorf("fleet: planner shards %d must be positive", c.PlannerShards)
	}
	if c.Shards == 0 && c.ExpectedSessions > 0 {
		// Keep shard occupancy near a few thousand sessions so shard-scan
		// chunks stay cache-friendly at million-session populations.
		c.Shards = c.ExpectedSessions / 2048
	}
	if c.Server == (compute.ServerSpec{}) {
		c.Server = compute.DefaultServerSpec()
	}
	if err := c.Server.Validate(); err != nil {
		return c, err
	}
	if c.ISLBandwidthGbps == 0 {
		c.ISLBandwidthGbps = isl.BandwidthGbps
	}
	if c.ISLBandwidthGbps <= 0 {
		return c, fmt.Errorf("fleet: ISL bandwidth %v must be positive", c.ISLBandwidthGbps)
	}
	if c.DirtyRateMBps == 0 {
		c.DirtyRateMBps = 4
	}
	if c.DirtyRateMBps < 0 || c.DirtyRateMBps >= migrate.GbpsToMBps(c.ISLBandwidthGbps) {
		return c, fmt.Errorf("fleet: dirty rate %v MB/s must be in [0, link bandwidth)", c.DirtyRateMBps)
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.RetryBaseSec == 0 {
		c.RetryBaseSec = c.StepSec
	}
	if c.RetryBaseSec < 0 {
		return c, fmt.Errorf("fleet: retry base %v s must be positive", c.RetryBaseSec)
	}
	if c.RetryCapSec == 0 {
		c.RetryCapSec = 16 * c.RetryBaseSec
	}
	if c.RetryCapSec < c.RetryBaseSec {
		return c, fmt.Errorf("fleet: retry cap %v s below base %v s", c.RetryCapSec, c.RetryBaseSec)
	}
	return c, nil
}

// EpochReport summarises one planner epoch.
type EpochReport struct {
	// TSec is the simulated time the epoch ran at.
	TSec float64
	// Sessions and Assigned are the table population and assignment count
	// after the epoch.
	Sessions, Assigned int
	// Expiring is how many live assignments were about to lose full-group
	// visibility and entered re-placement.
	Expiring int
	// Placements counts initial admissions; Handoffs counts migrations;
	// Rejections counts sessions no visible satellite could fit;
	// Departures counts sessions removed at their end time.
	Placements, Handoffs, Rejections, Departures int
	// Transfer aggregates the one-way state-transfer latency (ms) of this
	// epoch's hand-offs; Downtime aggregates their live-migration downtime
	// (seconds).
	Transfer, Downtime stats.Summary
	// MeanUtilization is the mean core utilisation across all
	// satellite-servers after the epoch.
	MeanUtilization float64
	// WallSec is the measured wall-clock duration of the epoch
	// (non-deterministic; everything else in the report is deterministic
	// for a fixed workload).
	WallSec float64

	// SatFailures and SatRecoveries count the injected hard-fault events
	// consumed this epoch; DownSats is the failed-satellite count after it.
	SatFailures, SatRecoveries, DownSats int
	// Evacuations counts sessions successfully moved off a failed
	// satellite; EvacuationsDeferred counts evacuation attempts left
	// pending (transfer failure or no capacity — they retry later).
	Evacuations, EvacuationsDeferred int
	// MigrationFailures counts injected transfer failures this epoch;
	// BackoffDeferrals counts sessions skipped while waiting out their
	// retry backoff.
	MigrationFailures, BackoffDeferrals int
	// ISLDegradations counts hand-off transfers this epoch that found
	// their ISL path degraded and spilled to a ground relay.
	ISLDegradations int
}

// Orchestrator is the fleet-wide session control plane. Build with New,
// seed sessions with Submit, call Start once, then Step per epoch. Step is
// not safe to call concurrently with itself or with queries; Submit and
// table reads are safe from other goroutines between steps.
type Orchestrator struct {
	c    *constellation.Constellation
	obs  *visibility.Observer
	grid *isl.Grid
	idx  *Index
	tab  *Table
	cfg  Config

	nodes []*compute.Node

	// ring[k] is the constellation snapshot at now + k·step, k in [0, K].
	// Entries are frames borrowed from the ephemeris engine: shared,
	// immutable, never written in place.
	ring [][]geo.Vec3
	eng  *ephem.Engine
	k    int
	now  float64

	// net is the groundless routing view of the constellation: the same
	// ISL grid as the planner, no ground nodes, so an SSSP over its frozen
	// CSR prices exactly the ISL-only transfer paths. nsnap is the current
	// epoch's snapshot, chained through AtAfter on every Step.
	net   *netgraph.Network
	nsnap *netgraph.Snapshot

	started      bool
	nAssigned    int
	nEvacPending int // sessions off a failed satellite, not yet re-placed
	epochISL     int // ISL-degraded transfers seen this epoch (serial phase)
	m            *metricsSet

	tot totals       // cumulative decision counters backing Stats
	pl  plannerState // reusable per-epoch planner scratch (planner.go)
}

// New builds an orchestrator over the constellation. grid may be nil to
// build a +grid ISL topology; pass a shared one to avoid rebuilding.
func New(c *constellation.Constellation, grid *isl.Grid, cfg Config) (*Orchestrator, error) {
	if c == nil || c.Size() == 0 {
		return nil, fmt.Errorf("fleet: empty constellation")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	idx, err := NewIndex(c, cfg.CellDeg)
	if err != nil {
		return nil, err
	}
	if grid == nil {
		grid = isl.NewPlusGrid(c)
	}
	eng := cfg.Ephem
	if eng == nil {
		// Private engine: keyframe grid = the epoch grid, protected tier
		// sized to hold the whole lookahead ring plus advance slack.
		ringLen := int(math.Round(cfg.LookaheadSec/cfg.StepSec)) + 1
		eng = ephem.New(c, ephem.Config{
			Workers:     cfg.Workers,
			GridStepSec: cfg.StepSec,
			GridFrames:  ringLen + 2,
			CacheFrames: ringLen + 2,
			Registry:    cfg.Registry,
		})
	}
	net := netgraph.New(c, nil).UseEphemeris(eng)
	net.Grid = grid // route transfers over the planner's own topology
	o := &Orchestrator{
		c:     c,
		eng:   eng,
		obs:   idx.Observer(),
		grid:  grid,
		idx:   idx,
		tab:   NewTableSized(cfg.Shards, cfg.ExpectedSessions),
		cfg:   cfg,
		nodes: make([]*compute.Node, c.Size()),
		net:   net,
		m:     newMetrics(cfg.Registry),
	}
	for id := range o.nodes {
		n, err := compute.NewNode(id, cfg.Server)
		if err != nil {
			return nil, err
		}
		o.nodes[id] = n
	}
	o.pl.init(o)
	return o, nil
}

// Table exposes the session table.
func (o *Orchestrator) Table() *Table { return o.tab }

// Index exposes the footprint index (valid after Start).
func (o *Orchestrator) Index() *Index { return o.idx }

// Constellation returns the underlying constellation.
func (o *Orchestrator) Constellation() *constellation.Constellation { return o.c }

// Ephemeris returns the engine backing the snapshot ring (the configured
// shared engine, or the private one built by New).
func (o *Orchestrator) Ephemeris() *ephem.Engine { return o.eng }

// Now returns the current simulated time.
func (o *Orchestrator) Now() float64 { return o.now }

// PlannerShards returns the resolved footprint-region shard count.
func (o *Orchestrator) PlannerShards() int { return o.cfg.PlannerShards }

// Utilization returns the per-satellite core utilisation, indexed by
// satellite ID.
func (o *Orchestrator) Utilization() []float64 {
	out := make([]float64, len(o.nodes))
	for i, n := range o.nodes {
		out[i] = n.UtilizationCores()
	}
	return out
}

// Submit adds a session to the fleet; it is placed on the next Step.
func (o *Orchestrator) Submit(s *Session) error {
	if s == nil || len(s.Users) == 0 {
		return fmt.Errorf("fleet: submit of empty session")
	}
	if s.CoresDemand < 0 || s.MemoryGB < 0 || s.StateMB < 0 {
		return fmt.Errorf("fleet: session %d has negative demand", s.ID)
	}
	if s.ID > math.MaxInt64 {
		return fmt.Errorf("fleet: session ID %d overflows the compute task ID space", s.ID)
	}
	s.Sat = -1
	return o.tab.Put(s)
}

// SubmitBatch submits many sessions, stopping at the first error.
func (o *Orchestrator) SubmitBatch(ss []*Session) error {
	for _, s := range ss {
		if err := o.Submit(s); err != nil {
			return err
		}
	}
	return nil
}

// Remove drops a session immediately, releasing its capacity.
func (o *Orchestrator) Remove(id uint64) bool {
	s, ok := o.tab.Get(id)
	if !ok {
		return false
	}
	if s.Sat >= 0 {
		_ = o.nodes[s.Sat].Release(int(s.ID))
		s.Sat = -1
		o.nAssigned--
	}
	if s.Evacuating {
		s.Evacuating = false
		o.nEvacPending--
	}
	return o.tab.Delete(id)
}

// Start fixes the epoch clock at t0 and builds the snapshot ring and
// footprint index. Call once before Step.
func (o *Orchestrator) Start(t0 float64) error {
	if o.started {
		return fmt.Errorf("fleet: already started")
	}
	o.k = int(math.Round(o.cfg.LookaheadSec / o.cfg.StepSec))
	if o.k < 1 {
		o.k = 1
	}
	o.ring = make([][]geo.Vec3, o.k+1)
	for i := range o.ring {
		o.ring[i] = o.eng.SnapshotAt(t0 + float64(i)*o.cfg.StepSec)
	}
	o.idx.Rebuild(o.ring[0])
	if o.cfg.Faults != nil {
		// Bring the injector to t0; faults before the run started are not
		// this orchestrator's to handle.
		o.cfg.Faults.Advance(t0)
	}
	o.now = t0
	o.nsnap = o.net.At(t0)
	o.started = true
	return nil
}

// visibleAll reports whether sat is visible to every user of the session
// in the given snapshot.
func (o *Orchestrator) visibleAll(s *Session, satID int, snap []geo.Vec3) bool {
	pos := snap[satID]
	for _, u := range s.Users {
		if !o.obs.Visible(u, satID, pos) {
			return false
		}
	}
	return true
}

// groupRTT returns the session's max user RTT to sat in the snapshot; ok
// is false when some user cannot see it.
func (o *Orchestrator) groupRTT(s *Session, satID int, snap []geo.Vec3) (float64, bool) {
	pos := snap[satID]
	worst := 0.0
	for _, u := range s.Users {
		if !o.obs.Visible(u, satID, pos) {
			return 0, false
		}
		if rtt := units.RTTMs(pos.Distance(u)); rtt > worst {
			worst = rtt
		}
	}
	return worst, true
}

// TimeToExpiry returns how long the session's current assignment stays
// visible to the whole group, at epoch granularity — the fleet-scale
// batched form of meetup.Planner.TimeToExpiry (capped=true when the
// assignment survives the whole lookahead ring).
func (o *Orchestrator) TimeToExpiry(s *Session) (warnSec float64, capped bool, err error) {
	if !o.started {
		return 0, false, fmt.Errorf("fleet: not started")
	}
	if s.Sat < 0 {
		return 0, false, fmt.Errorf("fleet: session %d is unassigned", s.ID)
	}
	for k := 1; k <= o.k; k++ {
		if !o.visibleAll(s, s.Sat, o.ring[k]) {
			return float64(k) * o.cfg.StepSec, false, nil
		}
	}
	return float64(o.k) * o.cfg.StepSec, true, nil
}

// candidate is one placement option for a session.
type candidate struct {
	id   int
	rtt  float64
	life int // remaining epochs of full-group visibility, capped at o.k
}

// workItem is one session needing placement this epoch.
type workItem struct {
	sess       *Session
	region     int32 // footprint-region planner shard
	expiring   bool
	evacuating bool // current satellite hard-failed: move now, not at expiry
}

// satUp reports whether satellite id is serving (always true without an
// injector).
func (o *Orchestrator) satUp(id int) bool {
	return o.cfg.Faults == nil || o.cfg.Faults.SatUp(id)
}

// backoffSec is the capped exponential retry backoff after the n-th
// consecutive failed migration attempt (n >= 1).
func (o *Orchestrator) backoffSec(n int) float64 {
	d := o.cfg.RetryBaseSec * math.Pow(2, float64(n-1))
	if d > o.cfg.RetryCapSec {
		d = o.cfg.RetryCapSec
	}
	return d
}

// deferEvacuation records that a session off a failed satellite could not
// be re-placed this epoch and stays pending.
func (o *Orchestrator) deferEvacuation(s *Session, rep *EpochReport) {
	rep.EvacuationsDeferred++
	o.m.evacDeferred.Inc()
	if !s.Evacuating {
		s.Evacuating = true
		o.nEvacPending++
	}
}

// lifeEpochs returns how many future ring epochs the satellite stays
// visible to the whole session, capped at the ring length.
func (o *Orchestrator) lifeEpochs(s *Session, satID int) int {
	for k := 1; k <= o.k; k++ {
		if !o.visibleAll(s, satID, o.ring[k]) {
			return k - 1
		}
	}
	return o.k
}

// parallelFor splits [0,n) into contiguous chunks across the configured
// workers. Chunked ranges keep writes to per-index slots deterministic.
func (o *Orchestrator) parallelFor(n int, f func(lo, hi int)) {
	o.parallelForW(n, func(_, lo, hi int) { f(lo, hi) })
}

// parallelForW is parallelFor with the worker slot exposed, for phases that
// keep per-worker scratch. Slot w always owns the w-th contiguous chunk, so
// which slot computed an item never affects what was computed.
func (o *Orchestrator) parallelForW(n int, f func(w, lo, hi int)) {
	workers := o.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	w := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
}
