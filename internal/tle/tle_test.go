package tle

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/orbit"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// A real ISS TLE (historical), checksums valid.
const issTLE = `ISS (ZARYA)
1 25544U 98067A   20344.91667824  .00001264  00000-0  29621-4 0  9993
2 25544  51.6442 165.4474 0001731  35.9279  90.5828 15.49181153259772`

func TestChecksumKnown(t *testing.T) {
	lines := strings.Split(issTLE, "\n")
	for i, l := range lines[1:] {
		if got := Checksum(l[:68]); got != int(l[68]-'0') {
			t.Errorf("line %d checksum = %d, want %c", i+1, got, l[68])
		}
	}
}

func TestDecodeISS(t *testing.T) {
	tt, err := Decode(issTLE, true)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Name != "ISS (ZARYA)" {
		t.Errorf("Name = %q", tt.Name)
	}
	if tt.CatalogNumber != 25544 {
		t.Errorf("CatalogNumber = %d", tt.CatalogNumber)
	}
	if tt.Classification != 'U' {
		t.Errorf("Classification = %c", tt.Classification)
	}
	if !almostEq(tt.InclinationDeg, 51.6442, 1e-9) {
		t.Errorf("Inclination = %v", tt.InclinationDeg)
	}
	if !almostEq(tt.RAANDeg, 165.4474, 1e-9) {
		t.Errorf("RAAN = %v", tt.RAANDeg)
	}
	if !almostEq(tt.Eccentricity, 0.0001731, 1e-12) {
		t.Errorf("Eccentricity = %v", tt.Eccentricity)
	}
	if !almostEq(tt.MeanMotionRevPerDay, 15.49181153, 1e-9) {
		t.Errorf("MeanMotion = %v", tt.MeanMotionRevPerDay)
	}
	if tt.EpochYear != 20 || !almostEq(tt.EpochDay, 344.91667824, 1e-9) {
		t.Errorf("epoch = %d/%v", tt.EpochYear, tt.EpochDay)
	}
	// ISS altitude ≈ 420 km: Elements() recovers it from mean motion.
	el := tt.Elements()
	if el.AltitudeKm < 400 || el.AltitudeKm > 440 {
		t.Errorf("ISS altitude from TLE = %v km, want ≈420", el.AltitudeKm)
	}
}

func TestDecodeRejectsBadChecksum(t *testing.T) {
	bad := strings.Replace(issTLE, "0  9993", "0  9994", 1)
	if _, err := Decode(bad, true); err == nil {
		t.Fatal("want checksum error")
	}
	// But passes with verification off.
	if _, err := Decode(bad, false); err != nil {
		t.Fatalf("verification off should accept: %v", err)
	}
}

func TestDecodeStructuralErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"one-line", "1 25544U"},
		{"wrong-first-char", strings.Replace(issTLE, "\n1 ", "\n9 ", 1)},
		{"short-line2", issTLE[:len(issTLE)-30]},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.in, false); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := orbit.Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 123.4567, ArgLatDeg: 42.42}
	enc := FromElements("STARLINK-TEST", 44713, e, 24, 100.5)
	text := enc.Encode()

	dec, err := Decode(text, true)
	if err != nil {
		t.Fatalf("decode of our own encoding failed: %v\n%s", err, text)
	}
	if dec.Name != "STARLINK-TEST" || dec.CatalogNumber != 44713 {
		t.Fatalf("identity fields: %+v", dec)
	}
	got := dec.Elements()
	if !almostEq(got.AltitudeKm, 550, 0.5) {
		t.Errorf("altitude round trip = %v", got.AltitudeKm)
	}
	if !almostEq(got.InclinationDeg, 53, 1e-3) {
		t.Errorf("inclination round trip = %v", got.InclinationDeg)
	}
	if !almostEq(got.RAANDeg, 123.4567, 1e-3) {
		t.Errorf("RAAN round trip = %v", got.RAANDeg)
	}
	if !almostEq(got.ArgLatDeg, 42.42, 1e-3) {
		t.Errorf("arg lat round trip = %v", got.ArgLatDeg)
	}
}

func TestEncodeChecksumsValid(t *testing.T) {
	f := func(alt8, inc8, raan8, arg8 uint16) bool {
		e := orbit.Elements{
			AltitudeKm:     300 + float64(alt8%1700),
			InclinationDeg: float64(inc8 % 180),
			RAANDeg:        float64(raan8%3600) / 10,
			ArgLatDeg:      float64(arg8%3600) / 10,
		}
		text := FromElements("X", int(alt8), e, 24, 1.0).Encode()
		lines := strings.Split(text, "\n")
		if len(lines) != 3 || len(lines[1]) != 69 || len(lines[2]) != 69 {
			return false
		}
		for _, l := range lines[1:] {
			if Checksum(l[:68]) != int(l[68]-'0') {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAll(t *testing.T) {
	e1 := FromElements("SAT-A", 1, orbit.Elements{AltitudeKm: 550, InclinationDeg: 53}, 24, 1)
	e2 := FromElements("SAT-B", 2, orbit.Elements{AltitudeKm: 1110, InclinationDeg: 53.8, RAANDeg: 90}, 24, 1)
	catalog := e1.Encode() + "\n\n" + e2.Encode() + "\n"

	got, err := DecodeAll(catalog, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(got))
	}
	if got[0].Name != "SAT-A" || got[1].Name != "SAT-B" {
		t.Fatalf("names: %q, %q", got[0].Name, got[1].Name)
	}
	if alt := got[1].Elements().AltitudeKm; !almostEq(alt, 1110, 1) {
		t.Fatalf("second altitude = %v", alt)
	}
}

func TestDecodeAllTruncated(t *testing.T) {
	e1 := FromElements("SAT-A", 1, orbit.Elements{AltitudeKm: 550, InclinationDeg: 53}, 24, 1)
	lines := strings.Split(e1.Encode(), "\n")
	if _, err := DecodeAll(lines[0]+"\n"+lines[1], true); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestDecodeAllNoNames(t *testing.T) {
	e1 := FromElements("", 7, orbit.Elements{AltitudeKm: 550, InclinationDeg: 53}, 24, 1)
	lines := strings.Split(e1.Encode(), "\n")
	noName := lines[1] + "\n" + lines[2]
	got, err := DecodeAll(noName, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].CatalogNumber != 7 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseErrorMessages(t *testing.T) {
	err := &ParseError{Line: 2, Msg: "bad RAAN"}
	if err.Error() != "tle: line 2: bad RAAN" {
		t.Fatalf("Error() = %q", err.Error())
	}
	err0 := &ParseError{Msg: "structural"}
	if err0.Error() != "tle: structural" {
		t.Fatalf("Error() = %q", err0.Error())
	}
}

func TestCbrt(t *testing.T) {
	for _, x := range []float64{1, 8, 27, 1e9, 2.5} {
		if got := cbrt(x); !almostEq(got*got*got, x, 1e-6*x) {
			t.Errorf("cbrt(%v)³ = %v", x, got*got*got)
		}
	}
	if got := cbrt(-8); !almostEq(got, -2, 1e-9) {
		t.Errorf("cbrt(-8) = %v", got)
	}
}
