// Package tle encodes and decodes NORAD Two-Line Element sets, the exchange
// format of practically every satellite toolchain. The package supports the
// circular-orbit subset the simulator produces (zero eccentricity, epoch-
// relative timing) plus general parsing with checksum verification, so
// constellations can be exported to, and ingested from, external tools.
package tle

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/orbit"
	"repro/internal/units"
)

// TLE is one two-line element set plus its optional name line.
type TLE struct {
	// Name is the line-0 satellite name, trimmed.
	Name string
	// CatalogNumber is the NORAD catalog number (columns 3-7 of both lines).
	CatalogNumber int
	// Classification is 'U', 'C' or 'S'.
	Classification byte
	// IntlDesignator is the international designator (launch year/number/piece).
	IntlDesignator string
	// EpochYear is the two-digit epoch year as encoded (57-99 → 19xx, else 20xx).
	EpochYear int
	// EpochDay is the fractional day of year of the epoch.
	EpochDay float64
	// InclinationDeg, RAANDeg, ArgPerigeeDeg, MeanAnomalyDeg are the angles
	// in degrees as encoded on line 2.
	InclinationDeg, RAANDeg, ArgPerigeeDeg, MeanAnomalyDeg float64
	// Eccentricity is the orbit eccentricity (decimal point assumed).
	Eccentricity float64
	// MeanMotionRevPerDay is the mean motion in revolutions per day.
	MeanMotionRevPerDay float64
	// RevolutionNumber is the revolution number at epoch.
	RevolutionNumber int
}

// Checksum returns the TLE checksum digit for a 68-character line body: the
// sum of all digits plus one per '-' sign, modulo 10.
func Checksum(line string) int {
	sum := 0
	for _, r := range line {
		switch {
		case r >= '0' && r <= '9':
			sum += int(r - '0')
		case r == '-':
			sum++
		}
	}
	return sum % 10
}

// Elements converts the TLE into the simulator's circular orbital elements.
// Eccentricity is ignored (the constellations in scope are circular); mean
// anomaly and argument of perigee collapse into the argument of latitude.
func (t TLE) Elements() orbit.Elements {
	// Mean motion n [rev/day] → semi-major axis via Kepler's third law.
	nRadS := t.MeanMotionRevPerDay * 2 * 3.141592653589793 / 86400
	a := cbrt(units.EarthMuKm3S2 / (nRadS * nRadS))
	return orbit.Elements{
		AltitudeKm:     a - units.EarthRadiusKm,
		InclinationDeg: t.InclinationDeg,
		RAANDeg:        t.RAANDeg,
		ArgLatDeg:      units.WrapDegrees(t.ArgPerigeeDeg + t.MeanAnomalyDeg),
	}
}

func cbrt(x float64) float64 {
	if x < 0 {
		return -cbrt(-x)
	}
	// Newton iterations are exact enough and avoid importing math for one call.
	g := x
	for i := 0; i < 64; i++ {
		next := (2*g + x/(g*g)) / 3
		if diff := next - g; diff < 1e-12 && diff > -1e-12 {
			return next
		}
		g = next
	}
	return g
}

// FromElements builds a TLE for circular elements. The epoch is encoded as
// the given year/day; catalog numbers are the caller's to assign.
func FromElements(name string, catalog int, e orbit.Elements, epochYear int, epochDay float64) TLE {
	period := e.PeriodSec()
	return TLE{
		Name:                name,
		CatalogNumber:       catalog,
		Classification:      'U',
		IntlDesignator:      "24001A",
		EpochYear:           epochYear % 100,
		EpochDay:            epochDay,
		InclinationDeg:      e.InclinationDeg,
		RAANDeg:             units.WrapDegrees(e.RAANDeg),
		ArgPerigeeDeg:       0,
		MeanAnomalyDeg:      units.WrapDegrees(e.ArgLatDeg),
		Eccentricity:        0,
		MeanMotionRevPerDay: 86400 / period,
		RevolutionNumber:    1,
	}
}

// Encode renders the TLE as its three lines (name, line 1, line 2) separated
// by newlines, with valid checksums.
func (t TLE) Encode() string {
	cls := t.Classification
	if cls == 0 {
		cls = 'U'
	}
	// Line 1. Drag terms are zeroed: the simulator does not model decay.
	l1 := fmt.Sprintf("1 %05d%c %-8s %02d%012.8f  .00000000  00000-0  00000-0 0  999",
		t.CatalogNumber%100000, cls, t.IntlDesignator, t.EpochYear%100, t.EpochDay)
	l1 = fixWidth(l1, 68)
	l1 += strconv.Itoa(Checksum(l1))

	// Normalise into the fixed-width columns the format affords: angles
	// wrap into [0,360), eccentricity and mean motion clamp to their
	// representable ranges (a >100 rev/day orbit is sub-surface anyway).
	ecc := int(units.Clamp(t.Eccentricity, 0, 0.9999999)*1e7 + 0.5)
	inc := units.Clamp(t.InclinationDeg, 0, 180)
	mm := units.Clamp(t.MeanMotionRevPerDay, 0, 99.99999999)
	rev := t.RevolutionNumber % 100000
	if rev < 0 {
		rev = -rev
	}
	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f%5d",
		t.CatalogNumber%100000, inc, units.WrapDegrees(t.RAANDeg), ecc,
		units.WrapDegrees(t.ArgPerigeeDeg), units.WrapDegrees(t.MeanAnomalyDeg), mm, rev)
	l2 = fixWidth(l2, 68)
	l2 += strconv.Itoa(Checksum(l2))

	name := t.Name
	if name == "" {
		name = fmt.Sprintf("SAT-%05d", t.CatalogNumber)
	}
	return name + "\n" + l1 + "\n" + l2
}

func fixWidth(s string, w int) string {
	if len(s) > w {
		return s[:w]
	}
	for len(s) < w {
		s += " "
	}
	return s
}

// ParseError describes a malformed TLE input.
type ParseError struct {
	Line int // 1 or 2; 0 when structural
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line == 0 {
		return "tle: " + e.Msg
	}
	return fmt.Sprintf("tle: line %d: %s", e.Line, e.Msg)
}

// Decode parses one TLE from text. The name line is optional. Checksums are
// verified; pass verifyChecksum=false to accept hand-edited sets.
func Decode(text string, verifyChecksum bool) (TLE, error) {
	var lines []string
	for _, l := range strings.Split(text, "\n") {
		l = strings.TrimRight(l, "\r ")
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	var t TLE
	switch len(lines) {
	case 2:
	case 3:
		t.Name = strings.TrimSpace(lines[0])
		lines = lines[1:]
	default:
		return TLE{}, &ParseError{Msg: fmt.Sprintf("want 2 or 3 lines, got %d", len(lines))}
	}
	l1, l2 := lines[0], lines[1]
	if len(l1) < 69 || l1[0] != '1' {
		return TLE{}, &ParseError{Line: 1, Msg: "malformed line 1"}
	}
	if len(l2) < 69 || l2[0] != '2' {
		return TLE{}, &ParseError{Line: 2, Msg: "malformed line 2"}
	}
	if verifyChecksum {
		if got := Checksum(l1[:68]); got != int(l1[68]-'0') {
			return TLE{}, &ParseError{Line: 1, Msg: fmt.Sprintf("checksum %c, computed %d", l1[68], got)}
		}
		if got := Checksum(l2[:68]); got != int(l2[68]-'0') {
			return TLE{}, &ParseError{Line: 2, Msg: fmt.Sprintf("checksum %c, computed %d", l2[68], got)}
		}
	}

	var err error
	fieldErr := func(line int, what string) error {
		return &ParseError{Line: line, Msg: "bad " + what}
	}
	t.CatalogNumber, err = strconv.Atoi(strings.TrimSpace(l1[2:7]))
	if err != nil {
		return TLE{}, fieldErr(1, "catalog number")
	}
	t.Classification = l1[7]
	t.IntlDesignator = strings.TrimSpace(l1[9:17])
	t.EpochYear, err = strconv.Atoi(strings.TrimSpace(l1[18:20]))
	if err != nil {
		return TLE{}, fieldErr(1, "epoch year")
	}
	t.EpochDay, err = strconv.ParseFloat(strings.TrimSpace(l1[20:32]), 64)
	if err != nil {
		return TLE{}, fieldErr(1, "epoch day")
	}

	parse2 := func(lo, hi int, what string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(l2[lo:hi]), 64)
		if err != nil {
			return 0, fieldErr(2, what)
		}
		return v, nil
	}
	if t.InclinationDeg, err = parse2(8, 16, "inclination"); err != nil {
		return TLE{}, err
	}
	if t.RAANDeg, err = parse2(17, 25, "RAAN"); err != nil {
		return TLE{}, err
	}
	eccDigits := strings.TrimSpace(l2[26:33])
	eccInt, err := strconv.Atoi(eccDigits)
	if err != nil {
		return TLE{}, fieldErr(2, "eccentricity")
	}
	t.Eccentricity = float64(eccInt) / 1e7
	if t.ArgPerigeeDeg, err = parse2(34, 42, "argument of perigee"); err != nil {
		return TLE{}, err
	}
	if t.MeanAnomalyDeg, err = parse2(43, 51, "mean anomaly"); err != nil {
		return TLE{}, err
	}
	if t.MeanMotionRevPerDay, err = parse2(52, 63, "mean motion"); err != nil {
		return TLE{}, err
	}
	rev := strings.TrimSpace(l2[63:68])
	if rev == "" {
		rev = "0"
	}
	t.RevolutionNumber, err = strconv.Atoi(rev)
	if err != nil {
		return TLE{}, fieldErr(2, "revolution number")
	}
	return t, nil
}

// DecodeAll parses a catalog of concatenated TLEs (with or without name
// lines). Blank lines between entries are ignored.
func DecodeAll(text string, verifyChecksum bool) ([]TLE, error) {
	var lines []string
	for _, l := range strings.Split(text, "\n") {
		l = strings.TrimRight(l, "\r ")
		if strings.TrimSpace(l) != "" {
			lines = append(lines, l)
		}
	}
	var out []TLE
	i := 0
	for i < len(lines) {
		start := i
		// Optional name line.
		if lines[i][0] != '1' || len(lines[i]) < 69 {
			i++
		}
		if i+1 >= len(lines) {
			return nil, &ParseError{Msg: fmt.Sprintf("truncated entry at line %d", start+1)}
		}
		entry := strings.Join(lines[start:i+2], "\n")
		t, err := Decode(entry, verifyChecksum)
		if err != nil {
			return nil, fmt.Errorf("entry starting at line %d: %w", start+1, err)
		}
		out = append(out, t)
		i += 2
	}
	return out, nil
}
