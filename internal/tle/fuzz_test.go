package tle

import (
	"strings"
	"testing"

	"repro/internal/orbit"
)

// FuzzDecode hardens the TLE parser: arbitrary input must never panic, and
// anything that decodes successfully must re-encode to something decodable.
func FuzzDecode(f *testing.F) {
	f.Add(issTLE)
	f.Add(FromElements("SEED", 7, orbit.Elements{AltitudeKm: 550, InclinationDeg: 53}, 24, 1).Encode())
	f.Add("1 short")
	f.Add("")
	f.Add("name only\n1 x\n2 y")
	f.Add(strings.Repeat("9", 200))

	f.Fuzz(func(t *testing.T, input string) {
		tt, err := Decode(input, false)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Round-trip property: our encoding of a decoded TLE parses again.
		re := tt.Encode()
		if _, err := Decode(re, true); err != nil {
			t.Fatalf("re-encoded TLE failed to parse: %v\ninput: %q\nre: %q", err, input, re)
		}
	})
}

// FuzzDecodeAll exercises the catalog splitter.
func FuzzDecodeAll(f *testing.F) {
	one := FromElements("A", 1, orbit.Elements{AltitudeKm: 700, InclinationDeg: 98}, 24, 2).Encode()
	f.Add(one + "\n" + one)
	f.Add("garbage\n" + one)
	f.Add("\n\n\n")

	f.Fuzz(func(t *testing.T, input string) {
		out, err := DecodeAll(input, false)
		if err != nil {
			return
		}
		for i, tt := range out {
			if _, err := Decode(tt.Encode(), true); err != nil {
				t.Fatalf("entry %d re-encode failed: %v", i, err)
			}
		}
	})
}
