package netsim

import (
	"math/rand"
	"testing"
)

// BenchmarkEventHeap measures kernel scheduling throughput: push a batch of
// randomly-timed events, then drain them all, the push/pop mix every
// simulation on the kernel pays for.
func BenchmarkEventHeap(b *testing.B) {
	const batch = 4096
	times := make([]float64, batch)
	r := rand.New(rand.NewSource(1))
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	fired := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, t := range times {
			if _, err := s.At(t, func() { fired++ }); err != nil {
				b.Fatal(err)
			}
		}
		s.RunAll()
	}
	b.StopTimer()
	if fired != b.N*batch {
		b.Fatalf("fired %d events, want %d", fired, b.N*batch)
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEventHeapInterleaved stresses the steady-state pattern where
// each fired event schedules its successor (deep chains, shallow heap), on
// the pooled Schedule path the serve engine's request chains use.
func BenchmarkEventHeapInterleaved(b *testing.B) {
	const chains = 64
	fired := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		var hop func(c int) func()
		hop = func(c int) func() {
			return func() {
				if s.Now() < 1000 {
					if err := s.ScheduleAfter(float64(c+1), hop(c)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		for c := 0; c < chains; c++ {
			if err := s.Schedule(0, hop(c)); err != nil {
				b.Fatal(err)
			}
		}
		s.RunAll()
		fired += s.EventsRun()
	}
	b.StopTimer()
	if fired == 0 {
		b.Fatal("no events fired")
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}
