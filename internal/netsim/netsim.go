// Package netsim is a small discrete-event simulation engine: an event
// queue with deterministic ordering, plus capacity-constrained resources
// (links, processors) modelled as FIFO servers. The Earth-observation
// experiments (§3.3) and the migration timing studies run on it.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Event is a scheduled callback.
type Event struct {
	time   float64
	seq    uint64 // tie-break: schedule order, keeping runs deterministic
	fn     func()
	idx    int
	dead   bool
	pooled bool // recycled onto the free list after firing (Schedule path)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	e.idx = -1
	return e
}

// Sim is the simulation kernel. The zero value is not usable; call New.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap
	free   []*Event // recycled pooled events (Schedule path)
	ran    int
	obs    *simObs // nil unless Instrument was called
}

// simObs holds the kernel's metric handles; the uninstrumented path pays a
// single nil check per update site.
type simObs struct {
	queueDepth *obs.Gauge
	eventsRun  *obs.Counter
	queueWait  *obs.HistogramVec // per-resource job wait before service starts
	util       *obs.GaugeVec     // per-resource busy fraction of sim time
	jobs       *obs.CounterVec   // per-resource jobs submitted
}

// queueWaitBuckets spans sub-millisecond scheduling gaps to multi-minute
// backlogs (simulated seconds).
var queueWaitBuckets = []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 10, 60, 300}

// New creates a simulator starting at time 0.
func New() *Sim { return &Sim{} }

// Instrument registers the kernel's metrics on reg and starts updating them:
// netsim_event_queue_depth, netsim_events_run_total, and per-resource
// netsim_resource_queue_wait_seconds / netsim_resource_utilization /
// netsim_resource_jobs_total. All values are in simulated time. Multiple
// Sims instrumented on one registry share the families (the gauges then
// reflect the most recent updater, counters aggregate).
func (s *Sim) Instrument(reg *obs.Registry) {
	s.obs = &simObs{
		queueDepth: reg.Gauge("netsim_event_queue_depth",
			"Pending events in the simulator queue (includes cancelled-but-unpopped)."),
		eventsRun: reg.Counter("netsim_events_run_total",
			"Events executed by the simulator kernel."),
		queueWait: reg.HistogramVec("netsim_resource_queue_wait_seconds",
			"Simulated seconds a job waits before its resource starts serving it.",
			queueWaitBuckets, "resource"),
		util: reg.GaugeVec("netsim_resource_utilization",
			"Fraction of simulated time the resource has spent serving.", "resource"),
		jobs: reg.CounterVec("netsim_resource_jobs_total",
			"Jobs submitted to the resource.", "resource"),
	}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// EventsRun returns how many events have fired.
func (s *Sim) EventsRun() int { return s.ran }

// At schedules fn at an absolute time (>= Now). It returns the event, which
// can be cancelled.
func (s *Sim) At(t float64, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("netsim: cannot schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return nil, fmt.Errorf("netsim: nil event function")
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	if s.obs != nil {
		s.obs.queueDepth.Set(float64(len(s.events)))
	}
	return e, nil
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("netsim: negative delay %v", delay)
	}
	return s.At(s.now+delay, fn)
}

// Schedule schedules fn at an absolute time like At but returns no handle:
// the event record comes from an internal free list and is recycled after it
// fires, so it cannot be cancelled. High-volume callers that never cancel
// (request chains, refresh ticks) use this path to stop churning the heap
// allocator with one Event per scheduled callback.
func (s *Sim) Schedule(t float64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("netsim: cannot schedule at %v before now %v", t, s.now)
	}
	if fn == nil {
		return fmt.Errorf("netsim: nil event function")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		*e = Event{time: t, seq: s.seq, fn: fn, pooled: true}
	} else {
		e = &Event{time: t, seq: s.seq, fn: fn, pooled: true}
	}
	s.seq++
	heap.Push(&s.events, e)
	if s.obs != nil {
		s.obs.queueDepth.Set(float64(len(s.events)))
	}
	return nil
}

// ScheduleAfter schedules fn delay seconds from now on the pooled path.
func (s *Sim) ScheduleAfter(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("netsim: negative delay %v", delay)
	}
	return s.Schedule(s.now+delay, fn)
}

// Cancel removes a pending event; cancelling an already-fired or already-
// cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.dead || e.idx < 0 {
		if e != nil {
			e.dead = true
		}
		return
	}
	e.dead = true
	heap.Remove(&s.events, e.idx)
}

// Run executes events until the queue empties or the horizon is passed.
// Events scheduled during execution run too. Returns the final time.
func (s *Sim) Run(horizon float64) float64 {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.time > horizon {
			break
		}
		heap.Pop(&s.events)
		if s.obs != nil {
			s.obs.queueDepth.Set(float64(len(s.events)))
		}
		if next.dead {
			continue
		}
		s.now = next.time
		s.ran++
		if s.obs != nil {
			s.obs.eventsRun.Inc()
		}
		next.fn()
		if next.pooled {
			// Recycle only after fn returns: fn may schedule more events, and
			// those must not reuse this record while it is still live.
			next.fn = nil
			s.free = append(s.free, next)
		}
	}
	if s.now < horizon && !math.IsInf(horizon, 1) {
		s.now = horizon
	}
	return s.now
}

// RunAll executes until no events remain.
func (s *Sim) RunAll() float64 { return s.Run(math.Inf(1)) }

// Pending returns the number of queued (uncancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.dead {
			n++
		}
	}
	return n
}

// Resource is a FIFO server with a fixed service rate (units/second): a
// radio downlink, a laser ISL, or a satellite CPU. Jobs queue and are
// serviced in order; each job occupies the resource for size/rate seconds.
type Resource struct {
	sim  *Sim
	name string
	rate float64

	busyUntil float64
	// accounting
	served     int
	busyTime   float64
	queuedMax  int
	queuedNow  int
	outages    int
	outageTime float64
}

// NewResource creates a resource served at rate units/second.
func NewResource(sim *Sim, name string, rate float64) (*Resource, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netsim: resource %q rate must be positive, got %v", name, rate)
	}
	return &Resource{sim: sim, name: name, rate: rate}, nil
}

// Name returns the resource label.
func (r *Resource) Name() string { return r.name }

// Rate returns the service rate.
func (r *Resource) Rate() float64 { return r.rate }

// Submit enqueues a job of the given size; done (optional) fires when the
// job finishes, receiving the completion time. Returns the predicted
// completion time.
func (r *Resource) Submit(size float64, done func(finish float64)) (float64, error) {
	if size < 0 {
		return 0, fmt.Errorf("netsim: negative job size %v", size)
	}
	start := math.Max(r.sim.Now(), r.busyUntil)
	finish := start + size/r.rate
	r.busyUntil = finish
	r.busyTime += size / r.rate
	r.served++
	r.queuedNow++
	if r.queuedNow > r.queuedMax {
		r.queuedMax = r.queuedNow
	}
	if o := r.sim.obs; o != nil {
		o.jobs.With(r.name).Inc()
		o.queueWait.With(r.name).Observe(start - r.sim.Now())
	}
	_, err := r.sim.At(finish, func() {
		r.queuedNow--
		if o := r.sim.obs; o != nil {
			o.util.With(r.name).Set(r.Utilization())
		}
		if done != nil {
			done(finish)
		}
	})
	if err != nil {
		return 0, err
	}
	return finish, nil
}

// Interrupt takes the resource out of service until the given simulated
// time: queued jobs and jobs submitted during the outage start no earlier
// than until. It models an injected fault — a flapped ISL or a satellite
// payload fail-over (internal/faults drives these). Overlapping interrupts
// extend the outage, never shorten it; an interrupt entirely in the past
// or inside an existing commitment only counts the outage event.
func (r *Resource) Interrupt(until float64) {
	r.outages++
	if gap := until - math.Max(r.sim.Now(), r.busyUntil); gap > 0 {
		r.outageTime += gap
	}
	if until > r.busyUntil {
		r.busyUntil = until
	}
}

// Outages returns how many Interrupt calls the resource has absorbed.
func (r *Resource) Outages() int { return r.outages }

// OutageTime returns the total simulated seconds of injected unavailability
// (time added beyond existing service commitments). Outage time does not
// count as busy time in Utilization.
func (r *Resource) OutageTime() float64 { return r.outageTime }

// Utilization returns the fraction of [0, Now] the resource spent serving.
func (r *Resource) Utilization() float64 {
	if r.sim.Now() == 0 {
		return 0
	}
	return math.Min(1, r.busyTime/r.sim.Now())
}

// Served returns the number of jobs submitted so far.
func (r *Resource) Served() int { return r.served }

// MaxQueue returns the largest number of jobs simultaneously in the system.
func (r *Resource) MaxQueue() int { return r.queuedMax }

// BusyUntil returns when the resource frees up given current commitments.
func (r *Resource) BusyUntil() float64 { return r.busyUntil }
