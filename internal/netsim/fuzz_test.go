package netsim

import (
	"math"
	"testing"
)

// FuzzEventOrder feeds the kernel arbitrary (possibly equal, possibly
// denormal) event times and asserts the determinism contract: events fire
// in non-decreasing time, and events with equal timestamps fire in the
// order they were scheduled (seq tie-break).
func FuzzEventOrder(f *testing.F) {
	f.Add(1.0, 1.0, 1.0, 2.0, uint8(4))
	f.Add(0.0, 0.0, 0.0, 0.0, uint8(8))
	f.Add(5.0, 3.0, 3.0, 1.0, uint8(6))
	f.Add(0.25, 0.25, 0.75, 0.25, uint8(12))
	f.Fuzz(func(t *testing.T, a, b, c, d float64, n uint8) {
		raw := []float64{a, b, c, d}
		times := make([]float64, 0, int(n)+len(raw))
		for i := 0; i < int(n)+len(raw); i++ {
			v := raw[i%len(raw)]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				v = 0
			}
			times = append(times, v)
		}

		s := New()
		type fire struct {
			schedOrder int
			time       float64
		}
		var fired []fire
		for i, tm := range times {
			i, tm := i, tm
			if _, err := s.At(tm, func() {
				fired = append(fired, fire{schedOrder: i, time: tm})
			}); err != nil {
				t.Fatalf("At(%v): %v", tm, err)
			}
		}
		s.RunAll()

		if len(fired) != len(times) {
			t.Fatalf("fired %d of %d events", len(fired), len(times))
		}
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.time < prev.time {
				t.Fatalf("time went backwards: %v after %v", cur.time, prev.time)
			}
			if cur.time == prev.time && cur.schedOrder < prev.schedOrder {
				t.Fatalf("equal-time events fired out of schedule order: %d before %d at t=%v",
					prev.schedOrder, cur.schedOrder, cur.time)
			}
		}
	})
}
