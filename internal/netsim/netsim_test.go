package netsim

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	mustAt := func(tm float64, id int) {
		t.Helper()
		if _, err := s.At(tm, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	mustAt(3, 3)
	mustAt(1, 1)
	mustAt(2, 2)
	// Same time: schedule order wins.
	mustAt(2, 4)
	s.RunAll()
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.EventsRun() != 4 {
		t.Fatalf("EventsRun = %d", s.EventsRun())
	}
}

func TestScheduleDuringRun(t *testing.T) {
	s := New()
	var times []float64
	if _, err := s.At(1, func() {
		times = append(times, s.Now())
		if _, err := s.After(0.5, func() { times = append(times, s.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Fatalf("times = %v", times)
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	s := New()
	fired := false
	if _, err := s.At(10, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	end := s.Run(5)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 5 {
		t.Fatalf("Run returned %v, want horizon 5", end)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	// Continue past it.
	s.Run(20)
	if !fired {
		t.Fatal("event did not fire after extending horizon")
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	s := New()
	if _, err := s.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if s.Now() != 5 {
		t.Fatalf("Now = %v", s.Now())
	}
	if _, err := s.At(1, func() {}); err == nil {
		t.Fatal("past scheduling accepted")
	}
	if _, err := s.After(-1, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := s.At(6, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e, err := s.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.EventsRun() != 0 {
		t.Fatalf("EventsRun = %d", s.EventsRun())
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New()
	r, err := NewResource(s, "downlink", 10) // 10 units/s
	if err != nil {
		t.Fatal(err)
	}
	var finishes []float64
	submit := func(size float64) {
		t.Helper()
		if _, err := r.Submit(size, func(f float64) { finishes = append(finishes, f) }); err != nil {
			t.Fatal(err)
		}
	}
	submit(20) // 2 s
	submit(10) // queues: finishes at 3 s
	submit(5)  // finishes at 3.5 s
	s.RunAll()
	want := []float64{2, 3, 3.5}
	for i := range want {
		if math.Abs(finishes[i]-want[i]) > 1e-9 {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("Served = %d", r.Served())
	}
	if r.MaxQueue() != 3 {
		t.Fatalf("MaxQueue = %d", r.MaxQueue())
	}
	if got := r.Utilization(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1 (fully busy)", got)
	}
	if r.Name() != "downlink" || r.Rate() != 10 {
		t.Fatal("accessors wrong")
	}
}

func TestResourceIdleGaps(t *testing.T) {
	s := New()
	r, err := NewResource(s, "cpu", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Job arrives later via a scheduled event; resource idles until then.
	if _, err := s.At(5, func() {
		if _, err := r.Submit(2, nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if s.Now() != 7 {
		t.Fatalf("Now = %v, want 7", s.Now())
	}
	if got := r.Utilization(); math.Abs(got-2.0/7) > 1e-9 {
		t.Fatalf("Utilization = %v, want 2/7", got)
	}
}

func TestResourcePredictedFinish(t *testing.T) {
	s := New()
	r, _ := NewResource(s, "link", 100)
	f1, err := r.Submit(50, nil)
	if err != nil || f1 != 0.5 {
		t.Fatalf("f1 = %v, %v", f1, err)
	}
	f2, err := r.Submit(100, nil)
	if err != nil || f2 != 1.5 {
		t.Fatalf("f2 = %v, %v", f2, err)
	}
	if r.BusyUntil() != 1.5 {
		t.Fatalf("BusyUntil = %v", r.BusyUntil())
	}
}

func TestResourceValidation(t *testing.T) {
	s := New()
	if _, err := NewResource(s, "x", 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	r, _ := NewResource(s, "x", 1)
	if _, err := r.Submit(-1, nil); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []float64 {
		s := New()
		var out []float64
		for i := 0; i < 1000; i++ {
			tm := float64((i * 7919) % 100)
			if _, err := s.At(tm, func() { out = append(out, s.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		s.RunAll()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	// Monotone non-decreasing times.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("time went backwards")
		}
	}
}

func TestInstrumentedSim(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.Instrument(reg)

	r, err := NewResource(s, "downlink", 10) // 10 units/s
	if err != nil {
		t.Fatal(err)
	}
	// Two back-to-back jobs: the second queues behind the first for 1 s.
	if _, err := r.Submit(10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.After(5, func() {}); err != nil {
		t.Fatal(err)
	}

	depth := reg.Gauge("netsim_event_queue_depth", "")
	if got := depth.Value(); got != 3 {
		t.Fatalf("queue depth gauge = %v, want 3", got)
	}
	s.RunAll()
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue depth after RunAll = %v, want 0", got)
	}
	if got := reg.Counter("netsim_events_run_total", "").Value(); got != 3 {
		t.Fatalf("events run = %d, want 3", got)
	}
	if got := reg.CounterVec("netsim_resource_jobs_total", "", "resource").With("downlink").Value(); got != 2 {
		t.Fatalf("jobs = %d, want 2", got)
	}
	wait := reg.HistogramVec("netsim_resource_queue_wait_seconds", "", queueWaitBuckets, "resource").With("downlink")
	if wait.Count() != 2 || wait.Sum() != 1 {
		t.Fatalf("queue wait count=%d sum=%v, want 2 observations summing 1s", wait.Count(), wait.Sum())
	}
	util := reg.GaugeVec("netsim_resource_utilization", "", "resource").With("downlink")
	if got := util.Value(); got != 1 { // busy 2 s of the 2 s the resource ran
		t.Fatalf("utilization = %v, want 1", got)
	}
}

func TestUninstrumentedSimUnaffected(t *testing.T) {
	s := New()
	fired := false
	if _, err := s.After(1, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestSchedulePooledOrdering(t *testing.T) {
	// Pooled and handle-returning events share one (time, seq) order.
	s := New()
	var order []int
	if err := s.Schedule(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(1, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	want := []int{1, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePooledRecycles(t *testing.T) {
	// A self-scheduling chain on the pooled path should settle on a handful
	// of recycled records rather than one allocation per event.
	s := New()
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if s.Now() < 1000 {
			if err := s.ScheduleAfter(1, hop); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Schedule(0, hop); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if hops != 1001 {
		t.Fatalf("hops = %d, want 1001", hops)
	}
	// The chain keeps one event in flight (each hop reuses its predecessor's
	// record), so the pool settles at two records: the steady-state one plus
	// the final hop's, recycled with nothing left to schedule.
	if len(s.free) != 2 {
		t.Fatalf("free list holds %d records, want 2", len(s.free))
	}
}

func TestScheduleValidation(t *testing.T) {
	s := New()
	if err := s.Schedule(5, func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if err := s.Schedule(1, func() {}); err == nil {
		t.Fatal("past pooled scheduling accepted")
	}
	if err := s.ScheduleAfter(-1, func() {}); err == nil {
		t.Fatal("negative pooled delay accepted")
	}
	if err := s.Schedule(6, nil); err == nil {
		t.Fatal("nil pooled fn accepted")
	}
}

func TestResourceInterrupt(t *testing.T) {
	s := New()
	r, err := NewResource(s, "isl", 10)
	if err != nil {
		t.Fatal(err)
	}
	// An outage on an idle resource pushes the next job's start to the
	// outage end.
	r.Interrupt(5)
	if got := r.OutageTime(); got != 5 {
		t.Fatalf("OutageTime = %v, want 5", got)
	}
	var finish float64
	if _, err := r.Submit(10, func(f float64) { finish = f }); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	if finish != 6 { // starts at 5, serves 10 units at rate 10
		t.Fatalf("job finished at %v, want 6", finish)
	}

	// An interrupt inside an existing commitment extends nothing and adds
	// no outage time, but still counts the event.
	r.Interrupt(3)
	if got, want := r.Outages(), 2; got != want {
		t.Fatalf("Outages = %d, want %d", got, want)
	}
	if got := r.OutageTime(); got != 5 {
		t.Fatalf("OutageTime = %v, want 5 after no-op interrupt", got)
	}

	// Overlapping interrupts extend the outage, never shorten it.
	r.Interrupt(8)
	r.Interrupt(7)
	if got := r.BusyUntil(); got != 8 {
		t.Fatalf("BusyUntil = %v, want 8", got)
	}
	if got := r.OutageTime(); got != 7 { // 5 + (8-6)
		t.Fatalf("OutageTime = %v, want 7", got)
	}
	// Outage time is not busy time: utilisation counts only served work.
	if got := r.Utilization(); got != math.Min(1, 1.0/6.0) {
		t.Fatalf("Utilization = %v, want %v", got, 1.0/6.0)
	}
}
