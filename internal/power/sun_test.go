package power

import (
	"math"
	"testing"
)

func TestSunDirectionUnit(t *testing.T) {
	for _, d := range []int{1, 80, 172, 266, 355, 366} {
		sun, err := SunDirectionECI(d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sun.Norm()-1) > 1e-12 {
			t.Fatalf("day %d: |sun| = %v", d, sun.Norm())
		}
	}
	if _, err := SunDirectionECI(0); err == nil {
		t.Fatal("day 0 accepted")
	}
	if _, err := SunDirectionECI(400); err == nil {
		t.Fatal("day 400 accepted")
	}
}

func TestSunSeasons(t *testing.T) {
	// March equinox: sun near the equatorial plane (Z ≈ 0).
	eq, err := SunDirectionECI(EquinoxDay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq.Z) > 0.05 {
		t.Fatalf("equinox sun Z = %v", eq.Z)
	}
	// June solstice: sun at its northernmost (Z ≈ sin 23.44° ≈ 0.40).
	sol, err := SunDirectionECI(SolsticeDay)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Z < 0.35 || sol.Z > 0.42 {
		t.Fatalf("solstice sun Z = %v", sol.Z)
	}
	// December solstice: southernmost.
	dec, err := SunDirectionECI(355)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Z > -0.35 {
		t.Fatalf("December sun Z = %v", dec.Z)
	}
}

func TestBetaAngle(t *testing.T) {
	// An equatorial orbit at the equinox: sun in the orbit plane, β ≈ 0.
	b, err := BetaAngleDeg(0, 0, EquinoxDay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b) > 3 {
		t.Fatalf("equatorial equinox beta = %v", b)
	}
	// A polar orbit whose plane contains the equinox sun: normal ⟂ sun.
	b2, err := BetaAngleDeg(90, 0, EquinoxDay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b2) > 3 {
		t.Fatalf("polar RAAN-0 equinox beta = %v", b2)
	}
	// A polar dawn-dusk plane (RAAN 90 at equinox): normal ∥ sun, |β| ≈ 90.
	b3, err := BetaAngleDeg(90, 90, EquinoxDay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b3) < 85 {
		t.Fatalf("dawn-dusk beta = %v", b3)
	}
	if _, err := BetaAngleDeg(53, 0, 0); err == nil {
		t.Fatal("bad day accepted")
	}
}

func TestSeasonalSweepShape(t *testing.T) {
	b := DefaultStarlinkBudget()
	load := ServerLoad{Name: "DL325@225", DrawW: 225}
	rows, err := SeasonalSweep(b, load, 550, 53, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EclipseFraction < 0 || r.EclipseFraction > 0.45 {
			t.Fatalf("day %d eclipse fraction %v", r.DayOfYear, r.EclipseFraction)
		}
		if r.AvailableW <= 0 || r.AvailableW > b.SolarOutputW {
			t.Fatalf("day %d available %v", r.DayOfYear, r.AvailableW)
		}
		if math.Abs(r.HeadroomW-(r.AvailableW-b.BusLoadW-load.DrawW)) > 1e-9 {
			t.Fatalf("day %d headroom inconsistent", r.DayOfYear)
		}
	}
	worst := WorstSeasonHeadroom(rows)
	// With the default (strained) budget, worst-season headroom is negative
	// — §4's "power is perhaps the biggest impediment" made seasonal.
	if worst >= 0 {
		t.Fatalf("worst headroom = %v, expected strained", worst)
	}
	// A dawn-dusk-ish plane sees less eclipse than a noon-midnight plane at
	// the same epoch.
	dawnDusk, err := SeasonalSweep(b, load, 550, 90, 90, []int{EquinoxDay})
	if err != nil {
		t.Fatal(err)
	}
	noonMidnight, err := SeasonalSweep(b, load, 550, 90, 0, []int{EquinoxDay})
	if err != nil {
		t.Fatal(err)
	}
	if dawnDusk[0].EclipseFraction >= noonMidnight[0].EclipseFraction {
		t.Fatalf("dawn-dusk eclipse %v not below noon-midnight %v",
			dawnDusk[0].EclipseFraction, noonMidnight[0].EclipseFraction)
	}
	if dawnDusk[0].EclipseFraction != 0 {
		t.Fatalf("dawn-dusk polar orbit should be eclipse-free at equinox, got %v", dawnDusk[0].EclipseFraction)
	}
}

func TestSeasonalSweepValidation(t *testing.T) {
	if _, err := SeasonalSweep(Budget{}, ServerLoad{}, 550, 53, 0, nil); err == nil {
		t.Fatal("invalid budget accepted")
	}
	if _, err := SeasonalSweep(DefaultStarlinkBudget(), ServerLoad{}, -5, 53, 0, nil); err == nil {
		t.Fatal("invalid orbit accepted")
	}
	if _, err := SeasonalSweep(DefaultStarlinkBudget(), ServerLoad{}, 550, 53, 0, []int{999}); err == nil {
		t.Fatal("invalid day accepted")
	}
}
