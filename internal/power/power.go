// Package power models a satellite's electrical budget (§4 "Power"): solar
// array output, battery cycling through Earth-shadow eclipses, and the share
// a compute payload draws. Numbers default to the paper's Starlink v1.0
// estimates (~1.5 kW average solar output) and the HPE DL325 server's
// 225/350 W operating points.
package power

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/orbit"
)

// Budget describes a satellite's power system.
type Budget struct {
	// SolarOutputW is the average solar array output while sunlit.
	SolarOutputW float64
	// BusLoadW is the satellite's own (non-compute) load: transponders,
	// avionics, thermal.
	BusLoadW float64
	// BatteryWh is usable battery capacity.
	BatteryWh float64
	// BatteryEfficiency is round-trip charge/discharge efficiency (0-1].
	BatteryEfficiency float64
}

// DefaultStarlinkBudget returns the paper's rough Starlink v1.0 numbers: an
// average solar output around 1.5 kW (reddit-sourced estimate the paper
// cites), a bus load that leaves roughly the advertised margin, and a
// battery sized for eclipse operation.
func DefaultStarlinkBudget() Budget {
	return Budget{
		SolarOutputW:      1500,
		BusLoadW:          800,
		BatteryWh:         2000,
		BatteryEfficiency: 0.9,
	}
}

// Validate reports whether the budget is self-consistent.
func (b Budget) Validate() error {
	if b.SolarOutputW <= 0 {
		return fmt.Errorf("power: solar output must be positive, got %v", b.SolarOutputW)
	}
	if b.BusLoadW < 0 {
		return fmt.Errorf("power: negative bus load %v", b.BusLoadW)
	}
	if b.BatteryWh < 0 {
		return fmt.Errorf("power: negative battery %v", b.BatteryWh)
	}
	if b.BatteryEfficiency <= 0 || b.BatteryEfficiency > 1 {
		return fmt.Errorf("power: battery efficiency %v outside (0,1]", b.BatteryEfficiency)
	}
	return nil
}

// ServerLoad is a compute payload operating point.
type ServerLoad struct {
	// Name labels the operating point ("DL325 @225W").
	Name string
	// DrawW is the electrical draw.
	DrawW float64
}

// FractionOfAverage returns the paper's headline metric: the server draw as
// a fraction of the orbit-average solar output. The orbit average accounts
// for the eclipse fraction f: average available power = solar × (1-f) ×
// (storing through the battery for the dark arc costs efficiency).
func (b Budget) FractionOfAverage(s ServerLoad, eclipseFraction float64) float64 {
	avg := b.AverageAvailableW(eclipseFraction)
	if avg <= 0 {
		return math.Inf(1)
	}
	return s.DrawW / avg
}

// AverageAvailableW returns the orbit-average power available to loads,
// given the eclipse fraction: sunlit generation is used directly, dark-arc
// consumption pays the battery round-trip penalty.
func (b Budget) AverageAvailableW(eclipseFraction float64) float64 {
	f := math.Min(math.Max(eclipseFraction, 0), 1)
	sunlit := 1 - f
	// Energy balance over one orbit of unit duration: generate S×sunlit;
	// a steady load L consumes L×sunlit directly and L×f/η via battery.
	// Max steady L: S×sunlit = L×(sunlit + f/η).
	den := sunlit + f/b.BatteryEfficiency
	if den == 0 {
		return 0
	}
	return b.SolarOutputW * sunlit / den
}

// Headroom reports whether the budget can sustain the server on top of the
// bus load, and the remaining margin in watts (negative when over budget).
func (b Budget) Headroom(s ServerLoad, eclipseFraction float64) float64 {
	return b.AverageAvailableW(eclipseFraction) - b.BusLoadW - s.DrawW
}

// EclipseSurvivalHours returns how long the battery alone sustains the bus
// plus server load.
func (b Budget) EclipseSurvivalHours(s ServerLoad) float64 {
	load := b.BusLoadW + s.DrawW
	if load <= 0 {
		return math.Inf(1)
	}
	return b.BatteryWh * b.BatteryEfficiency / load
}

// OrbitEclipseFraction computes the eclipse fraction for a circular orbit
// via the shadow-cylinder model, worst case over sun geometry (sun in the
// orbital plane) when sunInPlane is true, otherwise for the given beta-like
// out-of-plane angle in degrees.
func OrbitEclipseFraction(altitudeKm float64, outOfPlaneDeg float64) (float64, error) {
	e := orbit.Elements{AltitudeKm: altitudeKm, InclinationDeg: 0}
	p, err := orbit.NewPropagator(e, orbit.Options{})
	if err != nil {
		return 0, err
	}
	// Sun unit vector at outOfPlaneDeg above the (equatorial) orbit plane.
	beta := outOfPlaneDeg * math.Pi / 180
	sun := geo.Vec3{X: math.Cos(beta), Z: math.Sin(beta)}
	return p.EclipseFraction(sun, 5), nil
}

// DutyCycledDraw returns the average draw of a server that runs at full
// power a fraction of the time and idles otherwise — the "lower wattage
// servers could be used" mitigation in §4.
func DutyCycledDraw(fullW, idleW, dutyFraction float64) float64 {
	d := math.Min(math.Max(dutyFraction, 0), 1)
	return fullW*d + idleW*(1-d)
}
