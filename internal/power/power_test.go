package power

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultBudgetValid(t *testing.T) {
	if err := DefaultStarlinkBudget().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		b    Budget
		ok   bool
	}{
		{"good", Budget{SolarOutputW: 1500, BatteryEfficiency: 0.9}, true},
		{"no-solar", Budget{SolarOutputW: 0, BatteryEfficiency: 0.9}, false},
		{"neg-bus", Budget{SolarOutputW: 1, BusLoadW: -1, BatteryEfficiency: 0.9}, false},
		{"neg-batt", Budget{SolarOutputW: 1, BatteryWh: -1, BatteryEfficiency: 0.9}, false},
		{"bad-eff", Budget{SolarOutputW: 1, BatteryEfficiency: 1.1}, false},
		{"zero-eff", Budget{SolarOutputW: 1, BatteryEfficiency: 0}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.b.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestPaperPowerFractions(t *testing.T) {
	// §4: the 225 W (350 W) server consumes 15% (23%) of the ~1.5 kW
	// average output. The paper divides by average output directly; our
	// FractionOfAverage with zero eclipse matches that.
	b := DefaultStarlinkBudget()
	if got := b.FractionOfAverage(ServerLoad{DrawW: 225}, 0); !almostEq(got, 0.15, 0.001) {
		t.Fatalf("225 W fraction = %v, want 0.15", got)
	}
	if got := b.FractionOfAverage(ServerLoad{DrawW: 350}, 0); !almostEq(got, 0.2333, 0.001) {
		t.Fatalf("350 W fraction = %v, want ~0.23", got)
	}
}

func TestAverageAvailableWithEclipse(t *testing.T) {
	b := Budget{SolarOutputW: 1500, BatteryEfficiency: 1}
	// With perfect battery, available average = solar × sunlit /
	// (sunlit + dark) = solar × (1-f).
	if got := b.AverageAvailableW(0.4); !almostEq(got, 1500*0.6, 1e-9) {
		t.Fatalf("perfect battery available = %v", got)
	}
	// With lossy battery, strictly less.
	lossy := Budget{SolarOutputW: 1500, BatteryEfficiency: 0.8}
	if lossy.AverageAvailableW(0.4) >= b.AverageAvailableW(0.4) {
		t.Fatal("lossy battery should reduce available power")
	}
	// No eclipse: full output either way.
	if got := lossy.AverageAvailableW(0); !almostEq(got, 1500, 1e-9) {
		t.Fatalf("no-eclipse available = %v", got)
	}
	// Eclipse fraction clamps.
	if got := lossy.AverageAvailableW(-1); !almostEq(got, 1500, 1e-9) {
		t.Fatalf("clamped available = %v", got)
	}
}

func TestHeadroom(t *testing.T) {
	b := DefaultStarlinkBudget()
	h := b.Headroom(ServerLoad{DrawW: 225}, 0.33)
	// 1.5kW at 33% eclipse (η=0.9) → avg ≈ 1500×0.67/(0.67+0.367) ≈ 970 W;
	// minus 800 bus minus 225 server → negative: the paper's point that a
	// beefy server strains the budget.
	if h >= 0 {
		t.Fatalf("headroom = %v, expected strained (negative)", h)
	}
	// A lighter edge box fits.
	if b.Headroom(ServerLoad{DrawW: 50}, 0.33) >= h+100 == false {
		t.Fatal("lighter server should have more headroom")
	}
}

func TestEclipseSurvival(t *testing.T) {
	b := DefaultStarlinkBudget()
	h := b.EclipseSurvivalHours(ServerLoad{DrawW: 225})
	// 2000 Wh × 0.9 / 1025 W ≈ 1.76 h — comfortably beyond the ~35 min
	// eclipse arc of a 550 km orbit.
	if h < 1 || h > 3 {
		t.Fatalf("eclipse survival = %v h", h)
	}
	if !math.IsInf(Budget{SolarOutputW: 1, BatteryEfficiency: 1}.EclipseSurvivalHours(ServerLoad{}), 1) {
		t.Fatal("zero load should survive forever")
	}
}

func TestOrbitEclipseFraction(t *testing.T) {
	// Sun in the orbit plane at 550 km: eclipse ≈ 35-40% of the orbit.
	f, err := OrbitEclipseFraction(550, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.3 || f > 0.45 {
		t.Fatalf("in-plane eclipse fraction = %v", f)
	}
	// High out-of-plane angle: no eclipse.
	f2, err := OrbitEclipseFraction(550, 80)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != 0 {
		t.Fatalf("beta=80° eclipse fraction = %v, want 0", f2)
	}
	// Higher orbit has a shorter eclipse arc fraction.
	f3, err := OrbitEclipseFraction(1325, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f3 >= f {
		t.Fatalf("1325 km fraction %v not below 550 km %v", f3, f)
	}
	if _, err := OrbitEclipseFraction(-5, 0); err == nil {
		t.Fatal("negative altitude accepted")
	}
}

func TestFractionOfAverageDegenerate(t *testing.T) {
	b := Budget{SolarOutputW: 1, BatteryEfficiency: 1}
	if !math.IsInf(b.FractionOfAverage(ServerLoad{DrawW: 100}, 1), 1) {
		t.Fatal("full eclipse should give +Inf fraction")
	}
}

func TestDutyCycledDraw(t *testing.T) {
	if got := DutyCycledDraw(350, 50, 0.5); !almostEq(got, 200, 1e-9) {
		t.Fatalf("duty 0.5 = %v", got)
	}
	if got := DutyCycledDraw(350, 50, 2); !almostEq(got, 350, 1e-9) {
		t.Fatalf("clamped duty = %v", got)
	}
	if got := DutyCycledDraw(350, 50, -1); !almostEq(got, 50, 1e-9) {
		t.Fatalf("clamped duty low = %v", got)
	}
}
