package power

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/orbit"
	"repro/internal/units"
)

// SunDirectionECI returns the approximate unit vector from the Earth to the
// Sun in the simulation's inertial frame for a given day of year (1-365).
// The model uses the mean ecliptic longitude and a fixed 23.44° obliquity —
// accurate to about a degree, ample for eclipse-fraction and power-budget
// seasonality.
func SunDirectionECI(dayOfYear int) (geo.Vec3, error) {
	if dayOfYear < 1 || dayOfYear > 366 {
		return geo.Vec3{}, fmt.Errorf("power: day of year %d outside [1,366]", dayOfYear)
	}
	// Mean solar ecliptic longitude: 0 at the March equinox (~day 80).
	lambda := 2 * math.Pi * float64(dayOfYear-80) / 365.25
	const obliquity = 23.44 * math.Pi / 180
	sl, cl := math.Sincos(lambda)
	return geo.Vec3{
		X: cl,
		Y: sl * math.Cos(obliquity),
		Z: sl * math.Sin(obliquity),
	}, nil
}

// SeasonRow is one day's orbit/power outcome for a shell.
type SeasonRow struct {
	DayOfYear       int
	EclipseFraction float64
	// AvailableW is the orbit-average power available to loads.
	AvailableW float64
	// HeadroomW is available minus bus minus server draw.
	HeadroomW float64
}

// SeasonalSweep computes the eclipse fraction and power headroom of a
// circular orbit across the year. RAANDeg orients the orbit plane: a plane
// that tracks near the terminator (dawn-dusk) sees almost no eclipse in
// solstice months; a noon-midnight plane is eclipsed every orbit.
func SeasonalSweep(b Budget, s ServerLoad, altitudeKm, inclinationDeg, raanDeg float64, days []int) ([]SeasonRow, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	prop, err := orbit.NewPropagator(orbit.Elements{
		AltitudeKm:     altitudeKm,
		InclinationDeg: inclinationDeg,
		RAANDeg:        raanDeg,
	}, orbit.Options{})
	if err != nil {
		return nil, err
	}
	if len(days) == 0 {
		days = []int{15, 46, 74, 105, 135, 166, 196, 227, 258, 288, 319, 349}
	}
	var out []SeasonRow
	for _, d := range days {
		sun, err := SunDirectionECI(d)
		if err != nil {
			return nil, err
		}
		f := prop.EclipseFraction(sun, 10)
		avail := b.AverageAvailableW(f)
		out = append(out, SeasonRow{
			DayOfYear:       d,
			EclipseFraction: f,
			AvailableW:      avail,
			HeadroomW:       avail - b.BusLoadW - s.DrawW,
		})
	}
	return out, nil
}

// WorstSeasonHeadroom returns the minimum headroom across the sweep — the
// number a payload engineer actually designs against.
func WorstSeasonHeadroom(rows []SeasonRow) float64 {
	worst := math.Inf(1)
	for _, r := range rows {
		if r.HeadroomW < worst {
			worst = r.HeadroomW
		}
	}
	return worst
}

// EquinoxDay and SolsticeDay mark the reference days used in tests and
// reports.
const (
	EquinoxDay  = 80  // ~March 21
	SolsticeDay = 172 // ~June 21
)

// BetaAngleDeg returns the angle between the orbit plane and the Sun
// direction for the given geometry and day — the standard figure of merit
// for eclipse seasons.
func BetaAngleDeg(inclinationDeg, raanDeg float64, dayOfYear int) (float64, error) {
	sun, err := SunDirectionECI(dayOfYear)
	if err != nil {
		return 0, err
	}
	// Orbit normal in ECI.
	si, ci := math.Sincos(units.Deg2Rad(inclinationDeg))
	sR, cR := math.Sincos(units.Deg2Rad(raanDeg))
	normal := geo.Vec3{X: sR * si, Y: -cR * si, Z: ci}
	return units.Rad2Deg(math.Asin(units.Clamp(normal.Dot(sun), -1, 1))), nil
}
