package visibility

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/units"
)

// RangeRateKmS returns the rate of change of the slant range between a
// fixed ground point and satellite satID at t seconds after epoch, in km/s.
// Negative while the satellite approaches, positive as it recedes; zero at
// culmination.
func (o *Observer) RangeRateKmS(ground geo.Vec3, satID int, tSec float64) (float64, error) {
	if satID < 0 || satID >= o.c.Size() {
		return 0, fmt.Errorf("visibility: satellite %d out of range", satID)
	}
	prop := o.c.Satellites[satID].Prop
	pos := prop.ECEFAt(tSec)
	vel := prop.ECEFVelocityAt(tSec)
	rel := pos.Sub(ground)
	d := rel.Norm()
	if d == 0 {
		return 0, nil
	}
	// Ground is fixed in ECEF, so the relative velocity is the satellite's.
	return vel.Dot(rel) / d, nil
}

// DopplerShiftHz returns the carrier Doppler shift observed at the ground
// point for a downlink at carrierHz from satellite satID at t seconds after
// epoch. Positive while approaching (blueshift).
func (o *Observer) DopplerShiftHz(ground geo.Vec3, satID int, tSec, carrierHz float64) (float64, error) {
	if carrierHz <= 0 {
		return 0, fmt.Errorf("visibility: carrier frequency must be positive, got %v", carrierHz)
	}
	rr, err := o.RangeRateKmS(ground, satID, tSec)
	if err != nil {
		return 0, err
	}
	return -rr / units.SpeedOfLightKmS * carrierHz, nil
}
