package visibility

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
)

func passConst(t *testing.T) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("p", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 8, SatsPerPlane: 8, PhaseFactor: 1, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPassWindowsConsistent(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	prop := c.Satellites[0].Prop

	horizon := 4 * prop.Elements().PeriodSec()
	ws, err := o.PassWindows(g, 0, 0, horizon, 10)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := -1.0
	for _, w := range ws {
		if w.AOSSec >= w.LOSSec {
			t.Fatalf("inverted window %+v", w)
		}
		if w.AOSSec <= prevEnd {
			t.Fatalf("overlapping windows at %v", w.AOSSec)
		}
		prevEnd = w.LOSSec
		// Midpoint is visible; well outside is not.
		mid := (w.AOSSec + w.LOSSec) / 2
		if !o.Visible(g, 0, prop.ECEFAt(mid)) {
			t.Fatalf("mid-pass not visible: %+v", w)
		}
		// AOS/LOS are genuine boundaries (±2 s flips visibility), except at
		// the scan edges.
		if w.AOSSec > 1 {
			if o.Visible(g, 0, prop.ECEFAt(w.AOSSec-2)) {
				t.Fatalf("visible 2 s before AOS: %+v", w)
			}
		}
		if w.LOSSec < horizon-1 {
			if o.Visible(g, 0, prop.ECEFAt(w.LOSSec+2)) {
				t.Fatalf("visible 2 s after LOS: %+v", w)
			}
		}
		// Culmination lies inside the window above the mask.
		if w.MaxElevationSec < w.AOSSec || w.MaxElevationSec > w.LOSSec {
			t.Fatalf("culmination outside window: %+v", w)
		}
		if w.MaxElevationDeg < 25-0.5 {
			t.Fatalf("culmination below mask: %+v", w)
		}
		// LEO passes last minutes, not hours.
		if w.DurationSec() > 900 {
			t.Fatalf("pass too long: %+v", w)
		}
	}
}

func TestPassWindowsValidation(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{}.ECEF()
	if _, err := o.PassWindows(g, -1, 0, 100, 10); err == nil {
		t.Fatal("bad sat accepted")
	}
	if _, err := o.PassWindows(g, 0, 0, 0, 10); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := o.PassWindows(g, 0, 0, 100, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestNextPass(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	prop := c.Satellites[0].Prop
	horizon := 6 * prop.Elements().PeriodSec()

	w, ok, err := o.NextPass(g, 0, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("satellite 0 never passes this site within the horizon")
	}
	if w.AOSSec < 0 || w.LOSSec > horizon {
		t.Fatalf("window out of range: %+v", w)
	}
	// A polar site with a 53° shell never sees a pass.
	pole := geo.LatLon{LatDeg: 89}.ECEF()
	_, ok, err = o.NextPass(pole, 0, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pole should see no pass")
	}
}

func TestNextPassAny(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 20, LonDeg: 40}.ECEF()
	w, ok, err := o.NextPassAny(g, 0, 2*5739, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("sparse toy constellation never covers this site in 2 orbits")
	}
	if w.DurationSec() <= 0 {
		t.Fatalf("degenerate window %+v", w)
	}
	// The returned window's midpoint must indeed be covered by that sat.
	prop := c.Satellites[w.SatID].Prop
	mid := (w.AOSSec + w.LOSSec) / 2
	if !o.Visible(g, w.SatID, prop.ECEFAt(mid)) {
		t.Fatalf("NextPassAny window not actually visible: %+v", w)
	}
	if _, _, err := o.NextPassAny(g, 0, 0, 30); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestPassDurationMatchesGeometry(t *testing.T) {
	// An overhead pass of a 550 km / 25°-mask satellite lasts roughly
	// 2·α/ω where α=8.45° and the angular rate relative to the ground is
	// ~0.068°/s → ≈250 s. Verify culminating passes land in that ballpark.
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	found := false
	for sat := 0; sat < c.Size() && !found; sat++ {
		ws, err := o.PassWindows(g, sat, 0, 3*5739, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if w.MaxElevationDeg > 80 { // near-overhead pass
				if w.DurationSec() < 180 || w.DurationSec() > 330 {
					t.Fatalf("overhead pass duration %v s, want ≈250", w.DurationSec())
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no near-overhead pass in the sampled window")
	}
}
