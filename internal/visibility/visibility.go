// Package visibility answers "which satellites can a ground terminal talk
// to, and at what range" — the geometric core behind the paper's Figures
// 1, 2, 4, and 5. A satellite is reachable from a ground point when its
// elevation angle above the local horizon meets the constellation's minimum
// elevation mask.
package visibility

import (
	"math"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/geo"
	"repro/internal/units"
)

// ElevationDeg returns the elevation angle in degrees of a satellite (ECEF)
// as seen from a ground position (ECEF). Negative values mean below the
// horizon.
func ElevationDeg(ground, sat geo.Vec3) float64 {
	rel := sat.Sub(ground)
	d := rel.Norm()
	if d == 0 {
		return 90
	}
	sinEl := rel.Dot(ground.Unit()) / d
	return units.Rad2Deg(math.Asin(units.Clamp(sinEl, -1, 1)))
}

// SlantRangeKm returns the straight-line distance in kilometres between a
// ground position and a satellite, both in ECEF.
func SlantRangeKm(ground, sat geo.Vec3) float64 {
	return ground.Distance(sat)
}

// MaxSlantRangeKm returns the slant range to a satellite at altitudeKm when
// it sits exactly at elevation elevDeg — the longest usable path to that
// shell. Closed form from the law of sines on the Earth-centre triangle.
func MaxSlantRangeKm(altitudeKm, elevDeg float64) float64 {
	re := units.EarthRadiusKm
	r := re + altitudeKm
	e := units.Deg2Rad(elevDeg)
	cosE := math.Cos(e)
	// d = sqrt(r² − re²cos²e) − re·sin(e)
	return math.Sqrt(r*r-re*re*cosE*cosE) - re*math.Sin(e)
}

// CoverageCentralAngleRad returns the Earth-central angle of the coverage
// cone of a satellite at altitudeKm with elevation mask elevDeg: a ground
// point sees the satellite iff the central angle between the point and the
// satellite's subpoint is below this value.
func CoverageCentralAngleRad(altitudeKm, elevDeg float64) float64 {
	re := units.EarthRadiusKm
	r := re + altitudeKm
	e := units.Deg2Rad(elevDeg)
	return math.Acos(re/r*math.Cos(e)) - e
}

// Pass describes one satellite's visibility from a ground point at an
// instant.
type Pass struct {
	// SatID is the constellation satellite ID.
	SatID int
	// SlantKm is the current slant range.
	SlantKm float64
	// ElevationDeg is the current elevation angle.
	ElevationDeg float64
	// RTTMs is the round-trip propagation delay over the slant path.
	RTTMs float64
}

// Observer evaluates visibility of one constellation from ground points. It
// precomputes per-satellite chord thresholds so the inner loop is a single
// squared-distance compare, which keeps full-constellation × many-ground-point
// sweeps (Fig 1/2/4) fast.
type Observer struct {
	c *constellation.Constellation
	// maxChord2[id] is the squared slant-range threshold: satellite id is
	// visible iff |sat−ground|² ≤ maxChord2[id]. Valid because the elevation
	// constraint is equivalent to a maximum slant range for a fixed shell
	// altitude and ground points on the surface.
	maxChord2 []float64
	eng       *ephem.Engine // optional shared ephemeris for snapshot sweeps
}

// UseEphemeris routes the observer's own snapshot sweeps (NextPassAny)
// through a shared ephemeris engine so they reuse — and parallelise —
// frame propagation. Returns o for chaining.
func (o *Observer) UseEphemeris(eng *ephem.Engine) *Observer {
	o.eng = eng
	return o
}

// snapshotInto fills dst with the constellation at t, through the shared
// engine when one is attached.
func (o *Observer) snapshotInto(t float64, dst []geo.Vec3) {
	if o.eng != nil {
		if err := o.eng.SnapshotInto(t, dst); err == nil {
			return
		}
	}
	o.c.SnapshotInto(t, dst)
}

// NewObserver builds an Observer for the constellation using each shell's
// own elevation mask.
func NewObserver(c *constellation.Constellation) *Observer {
	o := &Observer{c: c, maxChord2: make([]float64, c.Size())}
	for id := range c.Satellites {
		sh := c.Shells[c.Satellites[id].ShellIndex]
		d := MaxSlantRangeKm(sh.AltitudeKm, sh.MinElevationDeg)
		o.maxChord2[id] = d * d
	}
	return o
}

// NewObserverWithMask builds an Observer that overrides every shell's mask
// with a single elevation in degrees (used by the mask-sensitivity ablation).
func NewObserverWithMask(c *constellation.Constellation, elevDeg float64) *Observer {
	o := &Observer{c: c, maxChord2: make([]float64, c.Size())}
	for id := range c.Satellites {
		sh := c.Shells[c.Satellites[id].ShellIndex]
		d := MaxSlantRangeKm(sh.AltitudeKm, elevDeg)
		o.maxChord2[id] = d * d
	}
	return o
}

// Constellation returns the constellation the observer watches.
func (o *Observer) Constellation() *constellation.Constellation { return o.c }

// MaxChord2 returns the per-satellite squared slant-range thresholds the
// visibility test compares against (indexed by satellite ID). The slice is
// shared — callers must treat it as read-only. It lets bulk consumers
// (netgraph's incremental freeze) replicate Visible's exact compare without
// a per-pair method call.
func (o *Observer) MaxChord2() []float64 { return o.maxChord2 }

// Visible reports whether satellite id at position sat (ECEF) is reachable
// from ground (ECEF).
func (o *Observer) Visible(ground geo.Vec3, id int, sat geo.Vec3) bool {
	rel := sat.Sub(ground)
	return rel.Dot(rel) <= o.maxChord2[id]
}

// Reachable appends to dst a Pass for every satellite in snapshot reachable
// from ground, and returns the extended slice. snapshot must be indexed by
// satellite ID (as produced by Constellation.Snapshot).
//
// The dst contract follows append: passing nil allocates a fresh slice;
// passing a recycled buffer (dst[:0]) reuses its backing array so per-query
// allocation is zero once the buffer has grown to the working-set size. The
// returned slice aliases dst's array whenever capacity sufficed — callers
// that hand out the result while also recycling the buffer must copy.
// Existing elements of dst are never modified, only appended after; passes
// are appended in ascending satellite-ID order.
func (o *Observer) Reachable(ground geo.Vec3, snapshot []geo.Vec3, dst []Pass) []Pass {
	for id, sat := range snapshot {
		rel := sat.Sub(ground)
		d2 := rel.Dot(rel)
		if d2 > o.maxChord2[id] {
			continue
		}
		d := math.Sqrt(d2)
		dst = append(dst, Pass{
			SatID:        id,
			SlantKm:      d,
			ElevationDeg: ElevationDeg(ground, sat),
			RTTMs:        units.RTTMs(d),
		})
	}
	return dst
}

// CountReachable returns how many satellites in snapshot are reachable from
// ground without materialising the pass list.
func (o *Observer) CountReachable(ground geo.Vec3, snapshot []geo.Vec3) int {
	n := 0
	for id, sat := range snapshot {
		rel := sat.Sub(ground)
		if rel.Dot(rel) <= o.maxChord2[id] {
			n++
		}
	}
	return n
}

// NearestFarthest returns the slant ranges (km) of the nearest and farthest
// reachable satellites from ground, and ok=false when none is reachable.
func (o *Observer) NearestFarthest(ground geo.Vec3, snapshot []geo.Vec3) (nearKm, farKm float64, ok bool) {
	nearKm = math.Inf(1)
	farKm = math.Inf(-1)
	for id, sat := range snapshot {
		rel := sat.Sub(ground)
		d2 := rel.Dot(rel)
		if d2 > o.maxChord2[id] {
			continue
		}
		ok = true
		d := math.Sqrt(d2)
		if d < nearKm {
			nearKm = d
		}
		if d > farKm {
			farKm = d
		}
	}
	return nearKm, farKm, ok
}

// Nearest returns the ID and slant range of the nearest reachable satellite,
// with ok=false when none is reachable.
func (o *Observer) Nearest(ground geo.Vec3, snapshot []geo.Vec3) (id int, slantKm float64, ok bool) {
	best := math.Inf(1)
	id = -1
	for sid, sat := range snapshot {
		rel := sat.Sub(ground)
		d2 := rel.Dot(rel)
		if d2 > o.maxChord2[sid] || d2 >= best*best {
			continue
		}
		d := math.Sqrt(d2)
		if d < best {
			best = d
			id = sid
		}
	}
	return id, best, id >= 0
}

// MarkVisibleFromAny sets seen[id]=true for every satellite reachable from at
// least one of the ground points. Used by the Fig 4/5 "invisible satellites"
// computation; seen must have length Size().
func (o *Observer) MarkVisibleFromAny(grounds []geo.Vec3, snapshot []geo.Vec3, seen []bool) {
	for id, sat := range snapshot {
		if seen[id] {
			continue
		}
		for _, g := range grounds {
			rel := sat.Sub(g)
			if rel.Dot(rel) <= o.maxChord2[id] {
				seen[id] = true
				break
			}
		}
	}
}

// CountInvisible returns how many satellites in snapshot are reachable from
// none of the ground points.
func (o *Observer) CountInvisible(grounds []geo.Vec3, snapshot []geo.Vec3) int {
	seen := make([]bool, len(snapshot))
	o.MarkVisibleFromAny(grounds, snapshot, seen)
	n := 0
	for _, s := range seen {
		if !s {
			n++
		}
	}
	return n
}
