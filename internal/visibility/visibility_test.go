package visibility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestElevationOverhead(t *testing.T) {
	g := geo.LatLon{LatDeg: 10, LonDeg: 20}.ECEF()
	sat := g.Unit().Scale(units.EarthRadiusKm + 550)
	if got := ElevationDeg(g, sat); !almostEq(got, 90, 1e-6) {
		t.Fatalf("overhead elevation = %v, want 90", got)
	}
}

func TestElevationHorizonAndBelow(t *testing.T) {
	g := geo.LatLon{LatDeg: 0, LonDeg: 0}.ECEF()
	// A satellite at the same radius 90° away sits well below the horizon.
	below := geo.LatLon{LatDeg: 0, LonDeg: 90, AltKm: 550}.ECEF()
	if got := ElevationDeg(g, below); got >= 0 {
		t.Fatalf("far satellite elevation = %v, want negative", got)
	}
}

func TestElevationKnownGeometry(t *testing.T) {
	// Place a satellite so the analytic elevation is recoverable: ground at
	// equator/prime-meridian, satellite at altitude h and central angle α.
	// tan(el) = (cos α − Re/(Re+h)) / sin α.
	g := geo.LatLon{LatDeg: 0, LonDeg: 0}.ECEF()
	for _, tc := range []struct{ alphaDeg, altKm float64 }{
		{5, 550}, {8, 550}, {10, 1110}, {15, 1325},
	} {
		sat := geo.LatLon{LatDeg: 0, LonDeg: tc.alphaDeg, AltKm: tc.altKm}.ECEF()
		alpha := units.Deg2Rad(tc.alphaDeg)
		re := units.EarthRadiusKm
		want := units.Rad2Deg(math.Atan2(math.Cos(alpha)-re/(re+tc.altKm), math.Sin(alpha)))
		if got := ElevationDeg(g, sat); !almostEq(got, want, 1e-6) {
			t.Fatalf("α=%v h=%v: elevation %v, want %v", tc.alphaDeg, tc.altKm, got, want)
		}
	}
}

func TestMaxSlantRangeKnownValues(t *testing.T) {
	tests := []struct {
		alt, elev, want, tol float64
	}{
		// Zenith-limit: at 90° elevation the slant range is the altitude.
		{550, 90, 550, 1e-6},
		{1110, 90, 1110, 1e-6},
		// Starlink 550 km at 25° mask: ≈1,123 km (drives the ~7.5 ms
		// worst-case RTT for the low shell).
		{550, 25, 1123, 5},
		// The paper's 16 ms farthest-reachable RTT corresponds to the
		// 1325 km shell at 25°: ≈2,396 km slant → 2×2396/c ≈ 16 ms.
		{1325, 25, 2396, 5},
	}
	for _, tc := range tests {
		if got := MaxSlantRangeKm(tc.alt, tc.elev); !almostEq(got, tc.want, tc.tol) {
			t.Errorf("MaxSlantRangeKm(%v,%v) = %v, want %v±%v", tc.alt, tc.elev, got, tc.want, tc.tol)
		}
	}
}

func TestFarthestRTTMatchesPaper(t *testing.T) {
	// Fig 1: even the farthest directly reachable Starlink satellite is
	// within 16 ms RTT. The bound comes from the highest shell at the mask.
	d := MaxSlantRangeKm(1325, 25)
	rtt := units.RTTMs(d)
	if rtt < 15 || rtt > 17 {
		t.Fatalf("worst-case Starlink RTT = %.1f ms, want ≈16", rtt)
	}
}

func TestCoverageCentralAngle(t *testing.T) {
	// At the coverage-edge central angle, the elevation equals the mask.
	for _, tc := range []struct{ alt, elev float64 }{{550, 25}, {630, 35}, {1325, 25}, {1015, 10}} {
		alpha := CoverageCentralAngleRad(tc.alt, tc.elev)
		g := geo.LatLon{LatDeg: 0, LonDeg: 0}.ECEF()
		sat := geo.LatLon{LatDeg: 0, LonDeg: units.Rad2Deg(alpha), AltKm: tc.alt}.ECEF()
		if got := ElevationDeg(g, sat); !almostEq(got, tc.elev, 1e-6) {
			t.Fatalf("alt %v mask %v: edge elevation %v", tc.alt, tc.elev, got)
		}
		// And the chord at the edge equals MaxSlantRangeKm.
		if got := SlantRangeKm(g, sat); !almostEq(got, MaxSlantRangeKm(tc.alt, tc.elev), 1e-6) {
			t.Fatalf("edge slant %v vs MaxSlantRangeKm %v", got, MaxSlantRangeKm(tc.alt, tc.elev))
		}
	}
}

func testConstellation(t *testing.T) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("test", []constellation.Shell{
		{Name: "low", AltitudeKm: 550, InclinationDeg: 53, Planes: 12, SatsPerPlane: 12, PhaseFactor: 1, MinElevationDeg: 25},
		{Name: "high", AltitudeKm: 1325, InclinationDeg: 70, Planes: 4, SatsPerPlane: 10, PhaseFactor: 1, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestObserverVisibleMatchesElevation(t *testing.T) {
	c := testConstellation(t)
	o := NewObserver(c)
	snap := c.Snapshot(300)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		g := geo.LatLon{LatDeg: r.Float64()*120 - 60, LonDeg: r.Float64()*360 - 180}.ECEF()
		for id, sat := range snap {
			el := ElevationDeg(g, sat)
			mask := c.MinElevationDeg(id)
			got := o.Visible(g, id, sat)
			want := el >= mask
			// Tolerate disagreement only within numerical slack of the mask.
			if got != want && math.Abs(el-mask) > 1e-6 {
				t.Fatalf("Visible=%v but elevation=%v mask=%v", got, el, mask)
			}
		}
	}
}

func TestReachableConsistency(t *testing.T) {
	c := testConstellation(t)
	o := NewObserver(c)
	snap := c.Snapshot(120)
	g := geo.LatLon{LatDeg: 30, LonDeg: -100}.ECEF()

	passes := o.Reachable(g, snap, nil)
	if got := o.CountReachable(g, snap); got != len(passes) {
		t.Fatalf("CountReachable=%d, len(Reachable)=%d", got, len(passes))
	}
	for _, p := range passes {
		if p.ElevationDeg < c.MinElevationDeg(p.SatID)-1e-9 {
			t.Fatalf("pass below mask: %+v", p)
		}
		if !almostEq(p.RTTMs, units.RTTMs(p.SlantKm), 1e-12) {
			t.Fatalf("RTT inconsistent: %+v", p)
		}
		if !almostEq(p.SlantKm, SlantRangeKm(g, snap[p.SatID]), 1e-9) {
			t.Fatalf("slant inconsistent: %+v", p)
		}
	}
}

func TestNearestFarthestAgainstPasses(t *testing.T) {
	c := testConstellation(t)
	o := NewObserver(c)
	snap := c.Snapshot(45)
	g := geo.LatLon{LatDeg: 40, LonDeg: 10}.ECEF()

	passes := o.Reachable(g, snap, nil)
	near, far, ok := o.NearestFarthest(g, snap)
	if !ok {
		if len(passes) != 0 {
			t.Fatal("NearestFarthest says none reachable but passes exist")
		}
		return
	}
	minP, maxP := math.Inf(1), math.Inf(-1)
	for _, p := range passes {
		minP = math.Min(minP, p.SlantKm)
		maxP = math.Max(maxP, p.SlantKm)
	}
	if !almostEq(near, minP, 1e-9) || !almostEq(far, maxP, 1e-9) {
		t.Fatalf("NearestFarthest (%v,%v) vs passes (%v,%v)", near, far, minP, maxP)
	}

	id, slant, ok := o.Nearest(g, snap)
	if !ok || !almostEq(slant, minP, 1e-9) {
		t.Fatalf("Nearest = (%d,%v,%v), want slant %v", id, slant, ok, minP)
	}
}

func TestNearestNoneReachable(t *testing.T) {
	// A pole observer with an equatorial-only constellation sees nothing.
	c, err := constellation.Build("eq", []constellation.Shell{
		{Name: "eq", AltitudeKm: 550, InclinationDeg: 0, Planes: 1, SatsPerPlane: 20, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(c)
	snap := c.Snapshot(0)
	g := geo.LatLon{LatDeg: 89, LonDeg: 0}.ECEF()
	if _, _, ok := o.NearestFarthest(g, snap); ok {
		t.Fatal("pole observer should not reach equatorial satellites")
	}
	if _, _, ok := o.Nearest(g, snap); ok {
		t.Fatal("Nearest should report none reachable")
	}
	if n := o.CountReachable(g, snap); n != 0 {
		t.Fatalf("CountReachable = %d, want 0", n)
	}
}

func TestMarkVisibleFromAny(t *testing.T) {
	c := testConstellation(t)
	o := NewObserver(c)
	snap := c.Snapshot(60)
	grounds := []geo.Vec3{
		geo.LatLon{LatDeg: 0, LonDeg: 0}.ECEF(),
		geo.LatLon{LatDeg: 45, LonDeg: 90}.ECEF(),
	}
	seen := make([]bool, c.Size())
	o.MarkVisibleFromAny(grounds, snap, seen)
	for id := range snap {
		want := false
		for _, g := range grounds {
			if o.Visible(g, id, snap[id]) {
				want = true
				break
			}
		}
		if seen[id] != want {
			t.Fatalf("seen[%d]=%v, want %v", id, seen[id], want)
		}
	}
	// CountInvisible agrees with the complement.
	inv := o.CountInvisible(grounds, snap)
	n := 0
	for _, s := range seen {
		if !s {
			n++
		}
	}
	if inv != n {
		t.Fatalf("CountInvisible=%d, complement=%d", inv, n)
	}
}

func TestObserverWithMaskMonotonic(t *testing.T) {
	// A stricter (higher) mask never increases the reachable count.
	c := testConstellation(t)
	snap := c.Snapshot(200)
	g := geo.LatLon{LatDeg: 25, LonDeg: 45}.ECEF()
	prev := math.MaxInt
	for _, mask := range []float64{5, 15, 25, 35, 45} {
		o := NewObserverWithMask(c, mask)
		n := o.CountReachable(g, snap)
		if n > prev {
			t.Fatalf("reachable count increased with stricter mask %v: %d > %d", mask, n, prev)
		}
		prev = n
	}
}

func TestPropertySlantWithinBounds(t *testing.T) {
	// Every reachable pass has slant range within [altitude, MaxSlantRange].
	c := testConstellation(t)
	o := NewObserver(c)
	f := func(tSeed, latSeed, lonSeed float64) bool {
		tt := math.Mod(math.Abs(tSeed), 7200)
		lat := math.Mod(latSeed, 90)
		lon := math.Mod(lonSeed, 180)
		if math.IsNaN(tt + lat + lon) {
			return true
		}
		snap := c.Snapshot(tt)
		g := geo.LatLon{LatDeg: lat, LonDeg: lon}.ECEF()
		for _, p := range o.Reachable(g, snap, nil) {
			sh := c.Shells[c.Satellites[p.SatID].ShellIndex]
			if p.SlantKm < sh.AltitudeKm-1e-6 {
				return false
			}
			if p.SlantKm > MaxSlantRangeKm(sh.AltitudeKm, sh.MinElevationDeg)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStarlinkReachableCountsSanity(t *testing.T) {
	// Fig 2 shape: from a mid-latitude point, several tens of Starlink P1
	// satellites are reachable.
	if testing.Short() {
		t.Skip("full constellation test")
	}
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(c)
	snap := c.Snapshot(0)
	n := o.CountReachable(geo.LatLon{LatDeg: 30, LonDeg: 50}.ECEF(), snap)
	if n < 20 || n > 120 {
		t.Fatalf("Starlink reachable at 30°N = %d, want tens", n)
	}
}

// TestReachableDstContract pins the documented append/reuse semantics of
// the dst parameter: nil allocates, a recycled prefix reuses the backing
// array without touching existing elements, and the result aliases dst when
// capacity suffices.
func TestReachableDstContract(t *testing.T) {
	c := testConstellation(t)
	o := NewObserver(c)
	snap := c.Snapshot(120)
	g := geo.LatLon{LatDeg: 30, LonDeg: -100}.ECEF()

	fresh := o.Reachable(g, snap, nil)
	if len(fresh) == 0 {
		t.Fatal("no passes from mid-latitude point")
	}

	// Reuse: recycling the same buffer must produce identical passes with
	// zero growth once warm, and the result must alias the buffer.
	buf := make([]Pass, 0, len(fresh))
	got := o.Reachable(g, snap, buf)
	if len(got) != len(fresh) {
		t.Fatalf("recycled query found %d passes, fresh found %d", len(got), len(fresh))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("result does not alias the recycled buffer despite sufficient capacity")
	}
	for i := range fresh {
		if got[i] != fresh[i] {
			t.Fatalf("pass %d differs between fresh and recycled query", i)
		}
	}

	// Append: existing elements must survive untouched, new passes follow.
	sentinel := Pass{SatID: -7, SlantKm: 1, ElevationDeg: 2, RTTMs: 3}
	withPrefix := o.Reachable(g, snap, []Pass{sentinel})
	if len(withPrefix) != len(fresh)+1 {
		t.Fatalf("append query has %d passes, want %d", len(withPrefix), len(fresh)+1)
	}
	if withPrefix[0] != sentinel {
		t.Fatalf("existing dst element modified: %+v", withPrefix[0])
	}
	for i := range fresh {
		if withPrefix[i+1] != fresh[i] {
			t.Fatalf("appended pass %d differs", i)
		}
	}

	// Order: ascending satellite ID, per the doc comment.
	for i := 1; i < len(fresh); i++ {
		if fresh[i].SatID <= fresh[i-1].SatID {
			t.Fatalf("passes not in ascending ID order at %d: %d after %d", i, fresh[i].SatID, fresh[i-1].SatID)
		}
	}

	// No allocation once the buffer is warm.
	allocs := testing.AllocsPerRun(20, func() {
		buf = o.Reachable(g, snap, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("recycled Reachable allocates %.1f times per run, want 0", allocs)
	}
}
