package visibility

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func TestRangeRateNumericAgreement(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	prop := c.Satellites[0].Prop
	for _, tt := range []float64{0, 137, 1000, 4321} {
		rr, err := o.RangeRateKmS(g, 0, tt)
		if err != nil {
			t.Fatal(err)
		}
		// Central-difference check.
		h := 0.05
		d1 := g.Distance(prop.ECEFAt(tt + h))
		d0 := g.Distance(prop.ECEFAt(tt - h))
		num := (d1 - d0) / (2 * h)
		if math.Abs(rr-num) > 0.01 {
			t.Fatalf("t=%v: analytic %v vs numeric %v", tt, rr, num)
		}
	}
}

func TestRangeRateZeroAtCulmination(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	ws, err := o.PassWindows(g, 0, 0, 4*5739, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Skip("no pass in the window")
	}
	w := ws[0]
	rr, err := o.RangeRateKmS(g, 0, w.MaxElevationSec)
	if err != nil {
		t.Fatal(err)
	}
	// At culmination the range is stationary. Culmination is located on a
	// coarse grid, so allow the residual of ~one grid cell.
	if math.Abs(rr) > 0.5 {
		t.Fatalf("range rate at culmination = %v km/s", rr)
	}
	// Before culmination: approaching; after: receding.
	before, _ := o.RangeRateKmS(g, 0, w.AOSSec+5)
	after, _ := o.RangeRateKmS(g, 0, w.LOSSec-5)
	if before >= 0 || after <= 0 {
		t.Fatalf("range rate signs: before=%v after=%v", before, after)
	}
	// LEO range rates stay below the orbital speed (~7.6 km/s).
	if math.Abs(before) > 7.6 || math.Abs(after) > 7.6 {
		t.Fatalf("range rate exceeds orbital speed: %v / %v", before, after)
	}
}

func TestDopplerShift(t *testing.T) {
	c := passConst(t)
	o := NewObserver(c)
	g := geo.LatLon{LatDeg: 30, LonDeg: 0}.ECEF()
	const kaHz = 20e9
	ws, err := o.PassWindows(g, 0, 0, 4*5739, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Skip("no pass")
	}
	w := ws[0]
	shift, err := o.DopplerShiftHz(g, 0, w.AOSSec+5, kaHz)
	if err != nil {
		t.Fatal(err)
	}
	// Approaching → positive shift; magnitude for Ka at LEO is hundreds of
	// kHz (v/c ≈ 2e-5 × 20 GHz ≈ 400 kHz).
	if shift <= 0 || shift > 1e6 {
		t.Fatalf("AOS Doppler = %v Hz", shift)
	}
	late, err := o.DopplerShiftHz(g, 0, w.LOSSec-5, kaHz)
	if err != nil {
		t.Fatal(err)
	}
	if late >= 0 {
		t.Fatalf("LOS Doppler = %v Hz, want redshift", late)
	}
	if _, err := o.DopplerShiftHz(g, 0, 0, 0); err == nil {
		t.Fatal("zero carrier accepted")
	}
	if _, err := o.RangeRateKmS(g, -1, 0); err == nil {
		t.Fatal("bad satellite accepted")
	}
}
