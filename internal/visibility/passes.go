package visibility

import (
	"fmt"
	"math"

	"repro/internal/geo"
)

// PassWindow is one interval during which a satellite is visible from a
// ground site: acquisition of signal (AOS) to loss of signal (LOS).
type PassWindow struct {
	// SatID identifies the satellite.
	SatID int
	// AOSSec and LOSSec bound the window in seconds after epoch.
	AOSSec, LOSSec float64
	// MaxElevationDeg is the culmination elevation.
	MaxElevationDeg float64
	// MaxElevationSec is when the culmination occurs.
	MaxElevationSec float64
}

// DurationSec returns the pass length.
func (p PassWindow) DurationSec() float64 { return p.LOSSec - p.AOSSec }

// PassWindows predicts the visibility windows of satellite satID from the
// ground point over [t0, t0+horizonSec], scanning at coarseStepSec and
// refining the boundaries by bisection to sub-second accuracy. Windows
// already in progress at t0 are reported with AOS = t0; windows still open
// at the horizon end with LOS = t0+horizonSec.
func (o *Observer) PassWindows(ground geo.Vec3, satID int, t0, horizonSec, coarseStepSec float64) ([]PassWindow, error) {
	if satID < 0 || satID >= o.c.Size() {
		return nil, fmt.Errorf("visibility: satellite %d out of range", satID)
	}
	if horizonSec <= 0 || coarseStepSec <= 0 {
		return nil, fmt.Errorf("visibility: positive horizon and step required")
	}
	prop := o.c.Satellites[satID].Prop
	visAt := func(t float64) bool {
		return o.Visible(ground, satID, prop.ECEFAt(t))
	}
	// Bisect a visibility transition inside (a, b).
	refine := func(a, b float64, visA bool) float64 {
		for i := 0; i < 40 && b-a > 1e-3; i++ {
			mid := (a + b) / 2
			if visAt(mid) == visA {
				a = mid
			} else {
				b = mid
			}
		}
		return (a + b) / 2
	}

	var out []PassWindow
	end := t0 + horizonSec
	prevVis := visAt(t0)
	var cur *PassWindow
	if prevVis {
		cur = &PassWindow{SatID: satID, AOSSec: t0}
	}
	prevT := t0
	for t := t0 + coarseStepSec; ; t += coarseStepSec {
		if t > end {
			t = end
		}
		vis := visAt(t)
		if vis != prevVis {
			cross := refine(prevT, t, prevVis)
			if vis {
				cur = &PassWindow{SatID: satID, AOSSec: cross}
			} else if cur != nil {
				cur.LOSSec = cross
				out = append(out, *cur)
				cur = nil
			}
			prevVis = vis
		}
		prevT = t
		if t >= end {
			break
		}
	}
	if cur != nil {
		cur.LOSSec = end
		out = append(out, *cur)
	}
	// Culminations: sample each window finely for the max elevation.
	for i := range out {
		w := &out[i]
		best, bestT := -90.0, w.AOSSec
		step := math.Max(1, w.DurationSec()/200)
		for t := w.AOSSec; t <= w.LOSSec; t += step {
			if el := ElevationDeg(ground, prop.ECEFAt(t)); el > best {
				best, bestT = el, t
			}
		}
		w.MaxElevationDeg = best
		w.MaxElevationSec = bestT
	}
	return out, nil
}

// NextPass returns the first pass of satID over the ground point at or
// after t0 within horizonSec, with ok=false when none occurs.
func (o *Observer) NextPass(ground geo.Vec3, satID int, t0, horizonSec float64) (PassWindow, bool, error) {
	ws, err := o.PassWindows(ground, satID, t0, horizonSec, 10)
	if err != nil {
		return PassWindow{}, false, err
	}
	if len(ws) == 0 {
		return PassWindow{}, false, nil
	}
	return ws[0], true, nil
}

// NextPassAny returns the earliest upcoming pass of any satellite over the
// ground point — "when am I next covered". It scans coarsely forward and
// refines like PassWindows; for constellations with continuous coverage it
// returns an immediately-open window.
func (o *Observer) NextPassAny(ground geo.Vec3, t0, horizonSec, coarseStepSec float64) (PassWindow, bool, error) {
	if horizonSec <= 0 || coarseStepSec <= 0 {
		return PassWindow{}, false, fmt.Errorf("visibility: positive horizon and step required")
	}
	snap := make([]geo.Vec3, o.c.Size())
	anyVis := func(t float64) (int, bool) {
		o.snapshotInto(t, snap)
		for id, pos := range snap {
			if o.Visible(ground, id, pos) {
				return id, true
			}
		}
		return -1, false
	}
	for t := t0; t <= t0+horizonSec; t += coarseStepSec {
		if id, ok := anyVis(t); ok {
			// Delegate to the per-satellite refinement from just before t.
			start := math.Max(t0, t-coarseStepSec)
			ws, err := o.PassWindows(ground, id, start, horizonSec-(start-t0), coarseStepSec)
			if err != nil {
				return PassWindow{}, false, err
			}
			if len(ws) > 0 {
				return ws[0], true, nil
			}
		}
	}
	return PassWindow{}, false, nil
}
