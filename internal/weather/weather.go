// Package weather models the availability limitation the paper's §6 flags
// but does not analyze: rain attenuation on the ground↔satellite links.
// Ka-band links (Starlink/Kuiper user links) lose multiple dB per km of
// rain-filled path; heavy rain can take a terminal offline entirely, making
// in-orbit compute temporarily unreachable from the affected region.
//
// The model is a simplified ITU-R P.618 chain: specific attenuation
// γ = k·R^α (dB/km) over an effective slant path through the rain layer,
// compared against the link margin. Region-level rain statistics come from
// a coarse climate-zone table.
package weather

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/units"
)

// Band identifies the radio band of the ground↔satellite link.
type Band int

// Supported bands.
const (
	// KuBand is ~12-14 GHz (legacy VSAT, some gateway links).
	KuBand Band = iota
	// KaBand is ~20-30 GHz (Starlink/Kuiper user links).
	KaBand
	// VBand is ~40-50 GHz (proposed gateway links; rain-fragile).
	VBand
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case KuBand:
		return "Ku"
	case KaBand:
		return "Ka"
	case VBand:
		return "V"
	}
	return fmt.Sprintf("band(%d)", int(b))
}

// coefficients returns the k and α of the ITU-style specific-attenuation
// power law γ = k·R^α for rain rate R in mm/h. Values are representative
// mid-band, circular polarisation figures.
func (b Band) coefficients() (k, alpha float64, err error) {
	switch b {
	case KuBand:
		return 0.0188, 1.217, nil
	case KaBand:
		return 0.187, 1.021, nil
	case VBand:
		return 0.536, 0.873, nil
	}
	return 0, 0, fmt.Errorf("weather: unknown band %d", int(b))
}

// SpecificAttenuationDBPerKm returns γ(R) for the band.
func SpecificAttenuationDBPerKm(b Band, rainMmH float64) (float64, error) {
	if rainMmH < 0 {
		return 0, fmt.Errorf("weather: negative rain rate %v", rainMmH)
	}
	k, a, err := b.coefficients()
	if err != nil {
		return 0, err
	}
	return k * math.Pow(rainMmH, a), nil
}

// RainHeightKm is the nominal rain-layer top (melting layer) used for the
// effective path length. 4 km is a mid-latitude compromise.
const RainHeightKm = 4.0

// PathAttenuationDB returns the total rain attenuation of a slant path at
// the given elevation through rain falling at rainMmH. The effective path
// is the rain-layer thickness over sin(elevation), with a path-reduction
// factor for heavy rain cells being small.
func PathAttenuationDB(b Band, rainMmH, elevationDeg float64) (float64, error) {
	if elevationDeg <= 0 || elevationDeg > 90 {
		return 0, fmt.Errorf("weather: elevation %v outside (0,90]", elevationDeg)
	}
	gamma, err := SpecificAttenuationDBPerKm(b, rainMmH)
	if err != nil {
		return 0, err
	}
	slantKm := RainHeightKm / math.Sin(units.Deg2Rad(elevationDeg))
	// Path-reduction: heavy rain cells are a few km across, so long slant
	// paths are not uniformly filled. r = 1/(1 + L/L0(R)).
	l0 := 35 * math.Exp(-0.015*math.Min(rainMmH, 100))
	r := 1 / (1 + slantKm/l0)
	return gamma * slantKm * r, nil
}

// Link describes a ground↔satellite radio link budget.
type Link struct {
	// Band of the link.
	Band Band
	// MarginDB is the clear-sky fade margin: how much extra attenuation the
	// link closes before dropping out. Consumer Ka terminals carry ~6-10 dB.
	MarginDB float64
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.MarginDB < 0 {
		return fmt.Errorf("weather: negative margin %v", l.MarginDB)
	}
	_, _, err := l.Band.coefficients()
	return err
}

// Available reports whether the link closes through rain at rainMmH and the
// given elevation.
func (l Link) Available(rainMmH, elevationDeg float64) (bool, error) {
	if err := l.Validate(); err != nil {
		return false, err
	}
	att, err := PathAttenuationDB(l.Band, rainMmH, elevationDeg)
	if err != nil {
		return false, err
	}
	return att <= l.MarginDB, nil
}

// RainAtOutage returns the rain rate (mm/h) at which the link stops closing
// for the given elevation — the knee of the availability curve.
func (l Link) RainAtOutage(elevationDeg float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	lo, hi := 0.0, 500.0
	attHi, err := PathAttenuationDB(l.Band, hi, elevationDeg)
	if err != nil {
		return 0, err
	}
	if attHi <= l.MarginDB {
		return math.Inf(1), nil // never drops within physical rain rates
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		att, err := PathAttenuationDB(l.Band, mid, elevationDeg)
		if err != nil {
			return 0, err
		}
		if att <= l.MarginDB {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Climate is a coarse rain-climate zone with the parameters of an
// exponential rain-rate exceedance model: P(R > r) = pRain · exp(-r/mean).
type Climate struct {
	Name string
	// RainProb is the fraction of time it rains at all.
	RainProb float64
	// MeanRateMmH is the mean rain rate while raining.
	MeanRateMmH float64
}

// Climate presets, roughly ITU rain-zone equivalents.
var (
	// Temperate is ITU zone E/F-ish (Western Europe).
	Temperate = Climate{Name: "temperate", RainProb: 0.06, MeanRateMmH: 3}
	// Tropical is ITU zone N/P-ish (equatorial convective rain).
	Tropical = Climate{Name: "tropical", RainProb: 0.10, MeanRateMmH: 12}
	// Arid is desert climate.
	Arid = Climate{Name: "arid", RainProb: 0.01, MeanRateMmH: 2}
)

// Validate reports whether the climate parameters are usable.
func (c Climate) Validate() error {
	if c.RainProb < 0 || c.RainProb > 1 {
		return fmt.Errorf("weather: rain probability %v outside [0,1]", c.RainProb)
	}
	if c.MeanRateMmH < 0 {
		return fmt.Errorf("weather: negative mean rain rate")
	}
	return nil
}

// LinkAvailability returns the long-run fraction of time the link closes
// under the climate at the given elevation: 1 − pRain·P(R > R_outage | rain).
func LinkAvailability(l Link, c Climate, elevationDeg float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	rOut, err := l.RainAtOutage(elevationDeg)
	if err != nil {
		return 0, err
	}
	if math.IsInf(rOut, 1) {
		return 1, nil
	}
	if c.MeanRateMmH == 0 || c.RainProb == 0 {
		return 1, nil
	}
	pOutGivenRain := math.Exp(-rOut / c.MeanRateMmH)
	return 1 - c.RainProb*pOutGivenRain, nil
}

// SampleRainMmH draws an instantaneous rain rate from the climate
// (0 when not raining).
func (c Climate) SampleRainMmH(r *rand.Rand) float64 {
	if r.Float64() >= c.RainProb {
		return 0
	}
	return r.ExpFloat64() * c.MeanRateMmH
}

// ComputeAvailability answers the paper's §6 worry quantitatively: given a
// location's climate and N diverse satellites in view at elevations els,
// what fraction of time can the terminal reach at least one satellite?
// Rain is common-cause (one rain cell over the terminal), so per-satellite
// outages are fully correlated in this model except for the elevation
// dependence: the highest-elevation satellite has the shortest rain path
// and drops last.
func ComputeAvailability(l Link, c Climate, els []float64) (float64, error) {
	if len(els) == 0 {
		return 0, nil
	}
	best := els[0]
	for _, e := range els[1:] {
		if e > best {
			best = e
		}
	}
	return LinkAvailability(l, c, best)
}
