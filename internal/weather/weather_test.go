package weather

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandString(t *testing.T) {
	if KuBand.String() != "Ku" || KaBand.String() != "Ka" || VBand.String() != "V" {
		t.Fatal("band names wrong")
	}
	if Band(9).String() == "" {
		t.Fatal("unknown band string empty")
	}
}

func TestSpecificAttenuationOrdering(t *testing.T) {
	// Higher bands attenuate more at the same rain rate.
	for _, rate := range []float64{5, 25, 100} {
		ku, err := SpecificAttenuationDBPerKm(KuBand, rate)
		if err != nil {
			t.Fatal(err)
		}
		ka, err := SpecificAttenuationDBPerKm(KaBand, rate)
		if err != nil {
			t.Fatal(err)
		}
		v, err := SpecificAttenuationDBPerKm(VBand, rate)
		if err != nil {
			t.Fatal(err)
		}
		if !(ku < ka && ka < v) {
			t.Fatalf("attenuation ordering broken at %v mm/h: %v %v %v", rate, ku, ka, v)
		}
	}
	// No rain, no attenuation.
	if got, _ := SpecificAttenuationDBPerKm(KaBand, 0); got != 0 {
		t.Fatalf("dry attenuation = %v", got)
	}
	if _, err := SpecificAttenuationDBPerKm(KaBand, -1); err == nil {
		t.Fatal("negative rain accepted")
	}
	if _, err := SpecificAttenuationDBPerKm(Band(42), 1); err == nil {
		t.Fatal("unknown band accepted")
	}
}

func TestKaBandMagnitude(t *testing.T) {
	// Sanity anchor: Ka at 25 mm/h is ~5 dB/km (ITU figures).
	got, err := SpecificAttenuationDBPerKm(KaBand, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 || got > 8 {
		t.Fatalf("Ka@25mm/h = %v dB/km, want ~5", got)
	}
}

func TestPathAttenuationElevation(t *testing.T) {
	// Lower elevation → longer rain path → more attenuation.
	hi, err := PathAttenuationDB(KaBand, 20, 80)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := PathAttenuationDB(KaBand, 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= hi {
		t.Fatalf("25° attenuation %v not above 80° %v", lo, hi)
	}
	// Validation.
	if _, err := PathAttenuationDB(KaBand, 20, 0); err == nil {
		t.Fatal("zero elevation accepted")
	}
	if _, err := PathAttenuationDB(KaBand, 20, 91); err == nil {
		t.Fatal("elevation > 90 accepted")
	}
}

func TestPathAttenuationMonotoneInRain(t *testing.T) {
	f := func(r1, r2 uint8) bool {
		a := float64(r1 % 150)
		b := float64(r2 % 150)
		if a > b {
			a, b = b, a
		}
		attA, err1 := PathAttenuationDB(KaBand, a, 40)
		attB, err2 := PathAttenuationDB(KaBand, b, 40)
		return err1 == nil && err2 == nil && attA <= attB+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAvailable(t *testing.T) {
	l := Link{Band: KaBand, MarginDB: 8}
	ok, err := l.Available(0, 40)
	if err != nil || !ok {
		t.Fatalf("clear sky should close: %v %v", ok, err)
	}
	ok, err = l.Available(120, 25)
	if err != nil || ok {
		t.Fatalf("violent rain at low elevation should drop: %v %v", ok, err)
	}
	if _, err := (Link{Band: KaBand, MarginDB: -1}).Available(0, 40); err == nil {
		t.Fatal("negative margin accepted")
	}
}

func TestRainAtOutage(t *testing.T) {
	l := Link{Band: KaBand, MarginDB: 8}
	r25, err := l.RainAtOutage(25)
	if err != nil {
		t.Fatal(err)
	}
	r80, err := l.RainAtOutage(80)
	if err != nil {
		t.Fatal(err)
	}
	if r25 <= 0 || r25 >= r80 {
		t.Fatalf("outage rain: 25°=%v should be below 80°=%v", r25, r80)
	}
	// The knee sits at plausible rain rates (moderate-heavy rain).
	if r25 < 2 || r25 > 60 {
		t.Fatalf("Ka 8dB outage at 25° = %v mm/h, implausible", r25)
	}
	// A huge margin holds through anything short of world-record rain.
	never := Link{Band: KuBand, MarginDB: 80}
	r, err := never.RainAtOutage(45)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r, 1) && r < 250 {
		t.Fatalf("80 dB Ku margin dropped at only %v mm/h", r)
	}
	// Consistency: at the returned knee the link is right at the margin.
	att, err := PathAttenuationDB(KaBand, r25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(att-8) > 0.01 {
		t.Fatalf("attenuation at knee = %v, want 8", att)
	}
}

func TestClimateValidate(t *testing.T) {
	for _, c := range []Climate{Temperate, Tropical, Arid} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
	if err := (Climate{RainProb: 1.5}).Validate(); err == nil {
		t.Fatal("bad probability accepted")
	}
	if err := (Climate{RainProb: 0.5, MeanRateMmH: -1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestLinkAvailabilityOrdering(t *testing.T) {
	l := Link{Band: KaBand, MarginDB: 8}
	tro, err := LinkAvailability(l, Tropical, 40)
	if err != nil {
		t.Fatal(err)
	}
	tem, err := LinkAvailability(l, Temperate, 40)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := LinkAvailability(l, Arid, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !(tro < tem && tem < ari) {
		t.Fatalf("availability ordering broken: tropical %v, temperate %v, arid %v", tro, tem, ari)
	}
	// All still "mostly available": the paper's point is temporary, not
	// permanent, unavailability.
	if tro < 0.9 || ari > 1 {
		t.Fatalf("availability out of plausible range: %v..%v", tro, ari)
	}
	// Dry climate: fully available.
	dry := Climate{Name: "dry", RainProb: 0, MeanRateMmH: 0}
	if got, _ := LinkAvailability(l, dry, 40); got != 1 {
		t.Fatalf("dry availability = %v", got)
	}
}

func TestComputeAvailabilityUsesBestElevation(t *testing.T) {
	l := Link{Band: KaBand, MarginDB: 8}
	low, err := ComputeAvailability(l, Tropical, []float64{25})
	if err != nil {
		t.Fatal(err)
	}
	withHigh, err := ComputeAvailability(l, Tropical, []float64{25, 70})
	if err != nil {
		t.Fatal(err)
	}
	if withHigh <= low {
		t.Fatalf("a high-elevation satellite should improve availability: %v vs %v", withHigh, low)
	}
	if got, err := ComputeAvailability(l, Tropical, nil); err != nil || got != 0 {
		t.Fatalf("no satellites should mean unavailable: %v %v", got, err)
	}
}

func TestSampleRain(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	wet, n := 0, 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := Tropical.SampleRainMmH(r)
		if v < 0 {
			t.Fatalf("negative rain %v", v)
		}
		if v > 0 {
			wet++
			sum += v
		}
	}
	frac := float64(wet) / float64(n)
	if math.Abs(frac-Tropical.RainProb) > 0.01 {
		t.Fatalf("wet fraction %v, want %v", frac, Tropical.RainProb)
	}
	if mean := sum / float64(wet); math.Abs(mean-Tropical.MeanRateMmH) > 1 {
		t.Fatalf("mean rate %v, want %v", mean, Tropical.MeanRateMmH)
	}
}
