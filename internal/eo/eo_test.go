package eo

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/orbit"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func validMission() Mission {
	return Mission{
		SensingRateGbps:  5,
		DownlinkRateGbps: 2, // the sensing share of a 10 Gbps link
		StorageGb:        4000,
		PreprocessFactor: 1,
	}
}

func TestMissionValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Mission)
		ok   bool
	}{
		{"valid", func(m *Mission) {}, true},
		{"no-sense", func(m *Mission) { m.SensingRateGbps = 0 }, false},
		{"no-downlink", func(m *Mission) { m.DownlinkRateGbps = 0 }, false},
		{"neg-storage", func(m *Mission) { m.StorageGb = -1 }, false},
		{"bad-factor", func(m *Mission) { m.PreprocessFactor = 0.5 }, false},
		{"factor-no-proc", func(m *Mission) { m.PreprocessFactor = 10; m.ProcessRateGbps = 0 }, false},
		{"factor-with-proc", func(m *Mission) { m.PreprocessFactor = 10; m.ProcessRateGbps = 6 }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := validMission()
			tc.mut(&m)
			if err := m.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSensingDutyDownlinkBound(t *testing.T) {
	// Without preprocessing, a 5 Gbps sensor behind a 2 Gbps downlink with
	// 10% contact time can sense only 2×0.1/5 = 4% of the time — the
	// paper's "sensing time is limited by data transmission capacity".
	m := validMission()
	duty, err := m.MaxSensingDutyCycle(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(duty, 0.04, 1e-9) {
		t.Fatalf("duty = %v, want 0.04", duty)
	}
}

func TestSensingDutyWithPreprocessing(t *testing.T) {
	// A 10x reduction multiplies sensing time 10x (until another limit).
	m := validMission()
	m.PreprocessFactor = 10
	m.ProcessRateGbps = 100
	duty, err := m.MaxSensingDutyCycle(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(duty, 0.4, 1e-9) {
		t.Fatalf("duty = %v, want 0.4 (10x the raw 0.04)", duty)
	}
	// Processing-bound case: a slow onboard server caps the gain.
	m.ProcessRateGbps = 1
	duty, err = m.MaxSensingDutyCycle(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(duty, 0.2, 1e-9) { // 1/5 of sensor rate
		t.Fatalf("processing-bound duty = %v, want 0.2", duty)
	}
	// Duty never exceeds 1.
	m.ProcessRateGbps = 1000
	duty, err = m.MaxSensingDutyCycle(1)
	if err != nil {
		t.Fatal(err)
	}
	if duty != 1 {
		t.Fatalf("duty = %v, want clamp at 1", duty)
	}
}

func TestDownlinkSavings(t *testing.T) {
	m := validMission()
	if got := m.DownlinkSavingsFraction(); got != 0 {
		t.Fatalf("no-preprocess savings = %v", got)
	}
	m.PreprocessFactor = 10
	if got := m.DownlinkSavingsFraction(); !almostEq(got, 0.9, 1e-12) {
		t.Fatalf("savings = %v, want 0.9", got)
	}
}

func TestContactFraction(t *testing.T) {
	// One equatorial ground station under an equatorial orbit: contact a
	// substantial fraction of every orbit; a polar station: never.
	el := orbit.Elements{AltitudeKm: 550, InclinationDeg: 0}
	eq := []geo.LatLon{{LatDeg: 0, LonDeg: 0}}
	cf, err := ContactFraction(el, eq, 25, 2*el.PeriodSec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if cf <= 0.01 || cf >= 0.2 {
		t.Fatalf("equatorial contact fraction = %v", cf)
	}
	pole := []geo.LatLon{{LatDeg: 89, LonDeg: 0}}
	cf, err = ContactFraction(el, pole, 25, el.PeriodSec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 0 {
		t.Fatalf("polar contact fraction = %v, want 0", cf)
	}
	// More stations → more contact.
	many := []geo.LatLon{{LonDeg: 0}, {LonDeg: 90}, {LonDeg: 180}, {LonDeg: -90}}
	cfMany, err := ContactFraction(el, many, 25, el.PeriodSec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfOne, _ := ContactFraction(el, eq, 25, el.PeriodSec(), 5)
	if cfMany <= cfOne {
		t.Fatalf("4 stations (%v) not more contact than 1 (%v)", cfMany, cfOne)
	}
	// Validation.
	if _, err := ContactFraction(el, eq, 25, 0, 5); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ContactFraction(orbit.Elements{AltitudeKm: -1}, eq, 25, 10, 5); err == nil {
		t.Error("bad orbit accepted")
	}
}

func TestStoreAndForwardConservation(t *testing.T) {
	m := validMission()
	contacts := [][2]float64{{100, 200}, {400, 500}}
	res, err := SimulateStoreAndForward(m, contacts, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: sensed/R = downlinked + backlog left (no drops unless
	// storage filled; with 4000 Gb it never does here).
	if res.MissedGb != 0 {
		t.Fatalf("unexpected missed sensing: %+v", res)
	}
	intake := res.SensedGb / m.PreprocessFactor
	if intake < res.DownlinkedGb-1e-6 {
		t.Fatalf("downlinked more than sensed: %+v", res)
	}
	if res.PeakBacklogGb <= 0 || res.PeakBacklogGb > m.StorageGb {
		t.Fatalf("peak backlog out of range: %+v", res)
	}
	if res.SensingSec <= 0 || res.SensingSec > 600 {
		t.Fatalf("sensing time out of range: %+v", res)
	}
}

func TestStoreAndForwardStorageBound(t *testing.T) {
	// Tiny buffer, no contact at all: sensing stops once full, data drops.
	m := validMission()
	m.StorageGb = 50
	res, err := SimulateStoreAndForward(m, nil, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownlinkedGb != 0 {
		t.Fatalf("downlinked without contact: %+v", res)
	}
	if !almostEq(res.PeakBacklogGb, 50, 1e-6) {
		t.Fatalf("peak backlog = %v, want 50", res.PeakBacklogGb)
	}
	// Sensing stops at 10 s (50 Gb / 5 Gbps).
	if !almostEq(res.SensingSec, 10, 0.5) {
		t.Fatalf("sensing = %v s, want ≈10", res.SensingSec)
	}
	if res.MissedGb <= 0 {
		t.Fatal("expected missed sensing once storage filled")
	}
}

func TestStoreAndForwardPreprocessingExtendsSensing(t *testing.T) {
	raw := validMission()
	raw.StorageGb = 100
	proc := raw
	proc.PreprocessFactor = 10
	proc.ProcessRateGbps = 100

	r1, err := SimulateStoreAndForward(raw, [][2]float64{{0, 60}}, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateStoreAndForward(proc, [][2]float64{{0, 60}}, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.SensingSec <= r1.SensingSec*2 {
		t.Fatalf("preprocessing sensing %v s not much above raw %v s", r2.SensingSec, r1.SensingSec)
	}
	if r2.DownlinkedGb >= r1.DownlinkedGb {
		t.Fatalf("preprocessing should downlink less: %v vs %v", r2.DownlinkedGb, r1.DownlinkedGb)
	}
}

func TestStoreAndForwardValidation(t *testing.T) {
	m := validMission()
	if _, err := SimulateStoreAndForward(m, nil, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := SimulateStoreAndForward(m, [][2]float64{{10, 5}}, 100, 1); err == nil {
		t.Error("inverted window accepted")
	}
	bad := m
	bad.SensingRateGbps = 0
	if _, err := SimulateStoreAndForward(bad, nil, 100, 1); err == nil {
		t.Error("invalid mission accepted")
	}
}

func TestCooperativeSpeedup(t *testing.T) {
	// k=1: no speedup.
	s, err := CooperativeSpeedup(100, 1, 1, 20)
	if err != nil || !almostEq(s, 1, 1e-9) {
		t.Fatalf("k=1 speedup = %v, %v", s, err)
	}
	// Fast ISLs: near-linear speedup.
	s4, err := CooperativeSpeedup(100, 4, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s4 < 3 || s4 > 4 {
		t.Fatalf("k=4 fast-ISL speedup = %v, want ≈4", s4)
	}
	// Slow ISLs: distribution dominates; speedup collapses.
	sSlow, err := CooperativeSpeedup(100, 4, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sSlow >= 1 {
		t.Fatalf("slow-ISL speedup = %v, should be < 1", sSlow)
	}
	// More satellites never slow the fast-ISL case down.
	s8, _ := CooperativeSpeedup(100, 8, 1, 1000)
	if s8 <= s4 {
		t.Fatalf("k=8 speedup %v not above k=4 %v", s8, s4)
	}
	// Validation.
	if _, err := CooperativeSpeedup(0, 4, 1, 1); err == nil {
		t.Error("zero job accepted")
	}
	if _, err := CooperativeSpeedup(1, 0, 1, 1); err == nil {
		t.Error("zero k accepted")
	}
}
