// Package eo models §3.3, processing space-native data: imaging satellites
// produce multi-Gbps sensor data but can only downlink during ground-station
// contacts, so sensing time is downlink-bound. In-orbit pre-processing
// shrinks the data before downlink, buying sensing time and saving
// ground-link bandwidth; ISLs allow cooperative processing across
// satellites.
package eo

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/orbit"
	"repro/internal/visibility"
)

// Mission describes one imaging satellite's data pipeline.
type Mission struct {
	// SensingRateGbps is the sensor's raw data rate while actively imaging
	// (the paper cites multi-Gbps imagery platforms).
	SensingRateGbps float64
	// DownlinkRateGbps is the usable satellite→ground rate during contact
	// (the planned networks offer ~10 Gbps down-links, only a fraction of
	// which sensing may claim without compromising network service).
	DownlinkRateGbps float64
	// StorageGb is onboard buffer capacity in gigabits.
	StorageGb float64
	// PreprocessFactor R ≥ 1: in-orbit processing keeps 1/R of the raw
	// volume (cloud filtering, tiling, change detection). R=1 means no
	// processing.
	PreprocessFactor float64
	// ProcessRateGbps is the onboard server's processing throughput; raw
	// data must flow through it when PreprocessFactor > 1.
	ProcessRateGbps float64
}

// Validate reports whether the mission parameters are usable.
func (m Mission) Validate() error {
	if m.SensingRateGbps <= 0 {
		return fmt.Errorf("eo: sensing rate must be positive, got %v", m.SensingRateGbps)
	}
	if m.DownlinkRateGbps <= 0 {
		return fmt.Errorf("eo: downlink rate must be positive, got %v", m.DownlinkRateGbps)
	}
	if m.StorageGb < 0 {
		return fmt.Errorf("eo: negative storage %v", m.StorageGb)
	}
	if m.PreprocessFactor < 1 {
		return fmt.Errorf("eo: preprocess factor %v must be >= 1", m.PreprocessFactor)
	}
	if m.PreprocessFactor > 1 && m.ProcessRateGbps <= 0 {
		return fmt.Errorf("eo: preprocessing requires a positive process rate")
	}
	return nil
}

// MaxSensingDutyCycle returns the steady-state fraction of time the sensor
// can run, given the fraction of time the satellite has ground contact.
// Balance: sensed × (1/R) ≤ downlink × contact, and sensed ≤ processed.
func (m Mission) MaxSensingDutyCycle(contactFraction float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	cf := math.Min(math.Max(contactFraction, 0), 1)
	duty := m.PreprocessFactor * m.DownlinkRateGbps * cf / m.SensingRateGbps
	if m.PreprocessFactor > 1 {
		duty = math.Min(duty, m.ProcessRateGbps/m.SensingRateGbps)
	}
	return math.Min(duty, 1), nil
}

// DownlinkSavingsFraction returns the fraction of ground-link bandwidth the
// preprocessing saves for a fixed amount of sensing (1 - 1/R).
func (m Mission) DownlinkSavingsFraction() float64 {
	return 1 - 1/m.PreprocessFactor
}

// ContactFraction computes the fraction of time a satellite on the given
// orbit sees at least one of the ground stations, sampled at stepSec over
// horizonSec. minElevationDeg is the ground-station dish mask.
func ContactFraction(el orbit.Elements, grounds []geo.LatLon, minElevationDeg, horizonSec, stepSec float64) (float64, error) {
	if stepSec <= 0 || horizonSec <= 0 {
		return 0, fmt.Errorf("eo: positive horizon and step required")
	}
	prop, err := orbit.NewPropagator(el, orbit.Options{})
	if err != nil {
		return 0, err
	}
	ecef := make([]geo.Vec3, len(grounds))
	for i, g := range grounds {
		ecef[i] = g.ECEF()
	}
	maxChord := visibility.MaxSlantRangeKm(el.AltitudeKm, minElevationDeg)
	maxChord2 := maxChord * maxChord
	inContact := 0
	total := 0
	for t := 0.0; t < horizonSec; t += stepSec {
		total++
		pos := prop.ECEFAt(t)
		for _, g := range ecef {
			rel := pos.Sub(g)
			if rel.Dot(rel) <= maxChord2 {
				inContact++
				break
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(inContact) / float64(total), nil
}

// PassResult summarises a store-and-forward simulation.
type PassResult struct {
	// SensedGb is the raw data sensed over the horizon.
	SensedGb float64
	// DownlinkedGb is the volume actually delivered to the ground.
	DownlinkedGb float64
	// MissedGb is the raw-data volume the sensor could NOT capture because
	// the buffer was full — lost sensing opportunity, not lost bytes.
	MissedGb float64
	// PeakBacklogGb is the largest buffered volume.
	PeakBacklogGb float64
	// SensingSec is the achieved sensing time.
	SensingSec float64
}

// SimulateStoreAndForward runs the mission over explicit contact windows on
// the discrete-event engine: the sensor runs whenever the buffer has room,
// data is preprocessed at ingest, and the buffer drains during contacts.
// contacts are [start,end) pairs in seconds; horizonSec bounds the run.
func SimulateStoreAndForward(m Mission, contacts [][2]float64, horizonSec, stepSec float64) (PassResult, error) {
	if err := m.Validate(); err != nil {
		return PassResult{}, err
	}
	if horizonSec <= 0 || stepSec <= 0 {
		return PassResult{}, fmt.Errorf("eo: positive horizon and step required")
	}
	for _, c := range contacts {
		if c[1] < c[0] {
			return PassResult{}, fmt.Errorf("eo: contact window [%v,%v) inverted", c[0], c[1])
		}
	}
	inContact := func(t float64) bool {
		for _, c := range contacts {
			if t >= c[0] && t < c[1] {
				return true
			}
		}
		return false
	}

	sim := netsim.New()
	var res PassResult
	backlog := 0.0 // gigabits buffered (post-preprocessing)

	// Effective sensing intake after preprocessing, bounded by the
	// processing rate.
	intakeRate := m.SensingRateGbps / m.PreprocessFactor
	senseRate := m.SensingRateGbps
	if m.PreprocessFactor > 1 && m.ProcessRateGbps < m.SensingRateGbps {
		// Processing-bound: the sensor throttles to what the server chews.
		senseRate = m.ProcessRateGbps
		intakeRate = m.ProcessRateGbps / m.PreprocessFactor
	}

	var tick func()
	tick = func() {
		t := sim.Now()
		if t >= horizonSec {
			return
		}
		// Sense if the buffer has room for this step's intake.
		intake := intakeRate * stepSec
		if m.StorageGb == 0 || backlog+intake <= m.StorageGb {
			backlog += intake
			res.SensedGb += senseRate * stepSec
			res.SensingSec += stepSec
		} else if room := m.StorageGb - backlog; room > 1e-12 {
			// Partial step of sensing until full.
			frac := room / intake
			backlog = m.StorageGb
			res.SensedGb += senseRate * stepSec * frac
			res.SensingSec += stepSec * frac
			res.MissedGb += senseRate * stepSec * (1 - frac)
		} else {
			res.MissedGb += senseRate * stepSec
		}
		// Drain during contact.
		if inContact(t) {
			drain := math.Min(backlog, m.DownlinkRateGbps*stepSec)
			backlog -= drain
			res.DownlinkedGb += drain
		}
		if backlog > res.PeakBacklogGb {
			res.PeakBacklogGb = backlog
		}
		if _, err := sim.After(stepSec, tick); err != nil {
			panic(err) // cannot happen: positive delay
		}
	}
	if _, err := sim.At(0, tick); err != nil {
		return PassResult{}, err
	}
	sim.Run(horizonSec)
	return res, nil
}

// CooperativeSpeedup returns the completion-time speedup of spreading a
// processing job across k satellites over ISLs versus one satellite:
// Amdahl-style with a per-hop shuffle cost. jobGb is the input volume,
// islGbps the per-link bandwidth, perSatGbps the single-satellite
// processing rate.
func CooperativeSpeedup(jobGb float64, k int, perSatGbps, islGbps float64) (float64, error) {
	if jobGb <= 0 || perSatGbps <= 0 || islGbps <= 0 {
		return 0, fmt.Errorf("eo: positive job, processing and ISL rates required")
	}
	if k <= 0 {
		return 0, fmt.Errorf("eo: k must be positive, got %d", k)
	}
	single := jobGb / perSatGbps
	// Distribute (k-1)/k of the input over ISLs, process in parallel,
	// gather negligible results (post-processing output is small).
	distribute := jobGb * float64(k-1) / float64(k) / islGbps
	parallel := jobGb / (float64(k) * perSatGbps)
	coop := distribute + parallel
	return single / coop, nil
}
