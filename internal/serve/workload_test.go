package serve

import (
	"math"
	"testing"

	"repro/internal/geo"
)

func twoSites() []Site {
	return []Site{
		{Name: "a", Loc: geo.LatLon{LatDeg: 9.06, LonDeg: 7.49}, Weight: 3},
		{Name: "b", Loc: geo.LatLon{LatDeg: -23.53, LonDeg: -46.63}, Weight: 1},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := Workload{Seed: 42, RatePerSec: 50, ServiceMedianMs: 10, DiurnalAmplitude: 0.5}
	a, err := Generate(twoSites(), w, 600)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(twoSites(), w, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	w.Seed = 43
	c, err := Generate(twoSites(), w, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) && len(a) > 0 && c[0] == a[0] {
		t.Fatal("different seeds produced the same trace")
	}
}

func TestGenerateRateAndOrdering(t *testing.T) {
	w := Workload{Seed: 7, RatePerSec: 100, ServiceMedianMs: 5}
	reqs, err := Generate(twoSites(), w, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 100.0 * 300
	if f := float64(len(reqs)); f < want*0.9 || f > want*1.1 {
		t.Fatalf("generated %d requests, want ~%v", len(reqs), want)
	}
	counts := map[int]int{}
	for i, r := range reqs {
		if i > 0 && reqs[i-1].TSec > r.TSec {
			t.Fatalf("trace out of order at %d", i)
		}
		if r.ServiceMs <= 0 {
			t.Fatalf("non-positive service time %v", r.ServiceMs)
		}
		counts[r.Site]++
	}
	// Weight 3:1 split.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("site split ratio %v, want ~3", ratio)
	}
}

func TestGenerateDiurnalModulation(t *testing.T) {
	site := []Site{{Name: "gw", Loc: geo.LatLon{LatDeg: 0, LonDeg: 0}, Weight: 1}}
	w := Workload{Seed: 11, RatePerSec: 20, ServiceMedianMs: 5, DiurnalAmplitude: 0.9, PeakLocalHour: 12}
	reqs, err := Generate(site, w, 86400)
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough int
	for _, r := range reqs {
		h := localHour(r.TSec, 0)
		switch {
		case h >= 9 && h < 15: // around the 12:00 peak
			peak++
		case h >= 21 || h < 3: // around the 00:00 trough
			trough++
		}
	}
	if peak < 5*trough {
		t.Fatalf("diurnal peak %d not well above trough %d", peak, trough)
	}
}

func TestGenerateHeavyTailService(t *testing.T) {
	site := []Site{{Name: "gw", Loc: geo.LatLon{}, Weight: 1}}
	w := Workload{Seed: 3, RatePerSec: 100, ServiceMedianMs: 10, ServiceSigma: 1.0}
	reqs, err := Generate(site, w, 300)
	if err != nil {
		t.Fatal(err)
	}
	var over, under int
	maxMs := 0.0
	for _, r := range reqs {
		if r.ServiceMs > 10 {
			over++
		} else {
			under++
		}
		maxMs = math.Max(maxMs, r.ServiceMs)
	}
	// Median at 10 ms: the two halves are balanced, and sigma=1 lognormal
	// produces multi-x outliers.
	if b := float64(over) / float64(over+under); b < 0.4 || b > 0.6 {
		t.Fatalf("median split %v, want ~0.5", b)
	}
	if maxMs < 30 {
		t.Fatalf("no heavy tail: max service %v ms", maxMs)
	}
}

func TestGenerateValidation(t *testing.T) {
	sites := twoSites()
	good := Workload{Seed: 1, RatePerSec: 10, ServiceMedianMs: 5}
	cases := []struct {
		name string
		w    Workload
		s    []Site
		h    float64
	}{
		{"zero rate", Workload{ServiceMedianMs: 5}, sites, 10},
		{"zero median", Workload{RatePerSec: 1}, sites, 10},
		{"negative sigma", Workload{RatePerSec: 1, ServiceMedianMs: 5, ServiceSigma: -1}, sites, 10},
		{"amplitude 1", Workload{RatePerSec: 1, ServiceMedianMs: 5, DiurnalAmplitude: 1}, sites, 10},
		{"no sites", good, nil, 10},
		{"zero horizon", good, sites, 0},
		{"negative weight", good, []Site{{Weight: -1}}, 10},
		{"all zero weights", good, []Site{{Weight: 0}, {Weight: 0}}, 10},
	}
	for _, c := range cases {
		if _, err := Generate(c.s, c.w, c.h); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if _, err := Generate(sites, good, 10); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
}

func TestSitesFromCities(t *testing.T) {
	sites := SitesFromCities(10)
	if len(sites) != 10 {
		t.Fatalf("got %d sites", len(sites))
	}
	for i, s := range sites {
		if s.Name == "" || s.Weight <= 0 {
			t.Fatalf("site %d malformed: %+v", i, s)
		}
		if !s.Loc.Valid() {
			t.Fatalf("site %d location invalid: %+v", i, s.Loc)
		}
	}
	// Population-ordered list: first site outweighs the last.
	if sites[0].Weight <= sites[9].Weight {
		t.Fatalf("weights not population-ordered: %v vs %v", sites[0].Weight, sites[9].Weight)
	}
}
