package serve

// The original single-threaded netsim-backed serving engine, kept as the
// differential oracle for the sharded Engine: every (constellation, config,
// trace) must produce identical results on both. It schedules one netsim
// event per request arrival and replays the whole run through the kernel's
// global (time, seq) heap — simple, slow, and by construction the reference
// semantics the sharded engine's slice merge must reproduce.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/netgraph"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
)

type legacyEngine struct {
	cfg    Config
	sim    *netsim.Sim
	net    *netgraph.Network
	policy Policy

	coresPerSat int
	queueCap    int // -1 = unbounded

	// ring holds snapshots at now, now+refresh, ..., now+lookahead*refresh;
	// rotated one slot per refresh so steady state freezes one new graph.
	ring []*netgraph.Snapshot

	cands    [][]Candidate // per site, rebuilt each refresh
	downOnly []bool        // per site: visible sats exist but all are down
	prevSat  []int         // per site: satellite that served the last request

	cores       [][]float64 // per sat: busy-until per core (lazy)
	outstanding []int       // per sat: admitted, not completed
	busySec     []float64   // per sat: accumulated service seconds

	offered  int
	served   int
	inflight int
	shed     map[ShedReason]int
	latency  *stats.CDF
	nQueued  int
	peakQ    int

	m         *metricsSet
	reqC      *obs.Counter
	servedC   *obs.Counter
	shedC     map[ShedReason]*obs.Counter
	latQ      *obs.Quantile
	queueG    *obs.Gauge
	inflightG *obs.Gauge
}

// newLegacyEngine builds the oracle engine; same contract as NewEngine.
func newLegacyEngine(c *constellation.Constellation, cfg Config) (*legacyEngine, error) {
	cfg = cfg.withDefaults()
	if c == nil {
		return nil, fmt.Errorf("serve: nil constellation")
	}
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("serve: no sites")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("serve: nil policy")
	}
	if err := cfg.Server.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Faults != nil && cfg.Faults.N() != c.Size() {
		return nil, fmt.Errorf("serve: fault injector sized for %d sats, constellation has %d",
			cfg.Faults.N(), c.Size())
	}
	e := &legacyEngine{
		cfg:         cfg,
		sim:         netsim.New(),
		policy:      cfg.Policy,
		coresPerSat: int(math.Max(1, math.Floor(cfg.Server.EffectiveCores()))),
		queueCap:    cfg.QueueCap,
		cands:       make([][]Candidate, len(cfg.Sites)),
		downOnly:    make([]bool, len(cfg.Sites)),
		prevSat:     make([]int, len(cfg.Sites)),
		cores:       make([][]float64, c.Size()),
		outstanding: make([]int, c.Size()),
		busySec:     make([]float64, c.Size()),
		shed:        make(map[ShedReason]int),
		latency:     stats.NewCDF(),
	}
	for i := range e.prevSat {
		e.prevSat[i] = -1
	}
	gls := make([]geo.LatLon, len(cfg.Sites))
	for i, s := range cfg.Sites {
		gls[i] = s.Loc
	}
	e.net = netgraph.New(c, gls)
	if cfg.Ephem != nil {
		e.net.UseEphemeris(cfg.Ephem)
	}
	if cfg.Registry != nil {
		e.m = newMetricsSet(cfg.Registry)
		name := cfg.Policy.Name()
		e.reqC = e.m.requests.With(name)
		e.servedC = e.m.served.With(name)
		e.shedC = make(map[ShedReason]*obs.Counter, len(ShedReasons))
		for _, r := range ShedReasons {
			e.shedC[r] = e.m.shed.With(name, string(r))
		}
		e.latQ = e.m.latency.With(name)
		e.queueG = e.m.queue.With(name)
		e.inflightG = e.m.inflight.With(name)
	}
	e.refresh(0)
	e.scheduleRefresh(cfg.RefreshSec)
	return e, nil
}

func (e *legacyEngine) scheduleRefresh(t float64) {
	// The chain is infinite by design; Run stops at its horizon, so the
	// one pending refresh beyond it is harmless.
	if err := e.sim.Schedule(t, func() {
		e.refresh(t)
		e.scheduleRefresh(t + e.cfg.RefreshSec)
	}); err != nil {
		panic(fmt.Sprintf("serve: refresh schedule: %v", err))
	}
}

// refresh rebuilds fault state, the snapshot ring, and per-site candidate
// lists at time t.
func (e *legacyEngine) refresh(t float64) {
	if e.cfg.Faults != nil {
		e.cfg.Faults.Advance(t)
	}
	step := e.cfg.RefreshSec
	depth := e.cfg.LookaheadEpochs + 1
	// Ring snapshots chain onto the previously built one, so each refresh
	// freezes as a visibility delta instead of a full rescan (the times are
	// strictly increasing across refreshes by construction).
	if len(e.ring) == 0 {
		e.ring = make([]*netgraph.Snapshot, 0, depth)
		var prev *netgraph.Snapshot
		for k := 0; k < depth; k++ {
			s := e.net.AtAfter(prev, t+float64(k)*step)
			e.ring = append(e.ring, s)
			prev = s
		}
	} else {
		copy(e.ring, e.ring[1:])
		e.ring[depth-1] = e.net.AtAfter(e.ring[depth-2], t+float64(depth-1)*step)
	}
	now := e.ring[0]
	for si := range e.cfg.Sites {
		vis := now.VisibleSats(si)
		futures := make([][]int, len(e.ring)-1)
		for k := 1; k < len(e.ring); k++ {
			futures[k-1] = e.ring[k].VisibleSats(si)
		}
		gpos := now.Position(e.net.GroundNode(si))
		cands := e.cands[si][:0]
		for _, sat := range vis {
			if e.cfg.Faults != nil && !e.cfg.Faults.SatUp(sat) {
				continue
			}
			life := 0.0
			for _, fut := range futures {
				if !containsSorted(fut, sat) {
					break
				}
				life += step
			}
			cands = append(cands, Candidate{
				SatID:    sat,
				OneWayMs: units.PropagationDelayMs(gpos.Distance(now.Position(e.net.SatNode(sat)))),
				LifeSec:  life,
			})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].OneWayMs != cands[j].OneWayMs {
				return cands[i].OneWayMs < cands[j].OneWayMs
			}
			return cands[i].SatID < cands[j].SatID
		})
		e.cands[si] = cands
		e.downOnly[si] = len(cands) == 0 && len(vis) > 0
	}
}

// Feed schedules requests into the simulation. Requests must not predate
// the current simulation time; multiple Feeds accumulate.
func (e *legacyEngine) Feed(reqs []Request) error {
	for i := range reqs {
		r := reqs[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
		if r.Site >= len(e.cfg.Sites) {
			return fmt.Errorf("serve: request %d: site %d out of range (%d sites)",
				i, r.Site, len(e.cfg.Sites))
		}
		req := r
		if err := e.sim.Schedule(r.TSec, func() { e.arrive(req) }); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
	}
	return nil
}

// RunUntil advances the simulation to tSec (inclusive of events at tSec).
func (e *legacyEngine) RunUntil(tSec float64) {
	e.sim.Run(tSec)
}

// Now returns the engine's simulation time.
func (e *legacyEngine) Now() float64 { return e.sim.Now() }

func (e *legacyEngine) arrive(r Request) {
	now := e.sim.Now()
	e.offered++
	if e.reqC != nil {
		e.reqC.Inc()
	}
	cands := e.cands[r.Site]
	if len(cands) == 0 {
		if e.downOnly[r.Site] {
			e.reject(ShedSatDown)
		} else {
			e.reject(ShedNoCoverage)
		}
		return
	}
	for i := range cands {
		cands[i].FreeAtSec = e.earliestFree(cands[i].SatID)
		cands[i].Queued = e.outstanding[cands[i].SatID]
	}
	idx := e.policy.Pick(now, e.prevSat[r.Site], cands)
	if idx < 0 || idx >= len(cands) {
		e.reject(ShedRefused)
		return
	}
	sat := cands[idx].SatID
	if e.queueCap >= 0 && e.outstanding[sat] >= e.coresPerSat+e.queueCap {
		e.reject(ShedQueueFull)
		return
	}
	e.prevSat[r.Site] = sat
	e.outstanding[sat]++
	e.inflight++
	if e.inflightG != nil {
		e.inflightG.Set(float64(e.inflight))
	}
	oneWaySec := cands[idx].OneWayMs / 1000
	svcSec := r.ServiceMs / 1000
	arrival := now
	// Uplink, then a core: queue depth covers the wait between reaching
	// the satellite and service start.
	e.mustAfter(oneWaySec, func() {
		up := e.sim.Now()
		ci := e.pickCore(sat)
		start := math.Max(up, e.cores[sat][ci])
		e.cores[sat][ci] = start + svcSec
		e.busySec[sat] += svcSec
		if start > up {
			e.queueDelta(+1)
			e.mustAt(start, func() { e.queueDelta(-1) })
		}
		e.mustAt(start+svcSec, func() {
			e.outstanding[sat]--
			e.inflight--
			e.served++
			respMs := (e.sim.Now() - arrival + oneWaySec) * 1000
			e.latency.Add(respMs)
			if e.servedC != nil {
				e.servedC.Inc()
				e.latQ.Observe(respMs)
				e.inflightG.Set(float64(e.inflight))
			}
		})
	})
}

func (e *legacyEngine) queueDelta(d int) {
	e.nQueued += d
	if e.nQueued > e.peakQ {
		e.peakQ = e.nQueued
	}
	if e.queueG != nil {
		e.queueG.Set(float64(e.nQueued))
	}
}

func (e *legacyEngine) reject(reason ShedReason) {
	e.shed[reason]++
	if e.shedC != nil {
		e.shedC[reason].Inc()
	}
}

// pickCore returns the satellite's earliest-free core index (lowest index
// on ties, keeping runs deterministic).
func (e *legacyEngine) pickCore(sat int) int {
	if e.cores[sat] == nil {
		e.cores[sat] = make([]float64, e.coresPerSat)
	}
	ci, best := 0, e.cores[sat][0]
	for i := 1; i < len(e.cores[sat]); i++ {
		if e.cores[sat][i] < best {
			best = e.cores[sat][i]
			ci = i
		}
	}
	return ci
}

func (e *legacyEngine) earliestFree(sat int) float64 {
	if e.cores[sat] == nil {
		return 0
	}
	best := e.cores[sat][0]
	for _, b := range e.cores[sat][1:] {
		if b < best {
			best = b
		}
	}
	return best
}

func (e *legacyEngine) mustAfter(d float64, fn func()) {
	if err := e.sim.ScheduleAfter(d, fn); err != nil {
		panic(fmt.Sprintf("serve: schedule: %v", err))
	}
}

func (e *legacyEngine) mustAt(t float64, fn func()) {
	if err := e.sim.Schedule(t, fn); err != nil {
		panic(fmt.Sprintf("serve: schedule: %v", err))
	}
}

// Result snapshots the engine's accounting at the current simulation time.
func (e *legacyEngine) Result() Result {
	shed := make(map[ShedReason]int, len(e.shed))
	for k, v := range e.shed {
		shed[k] = v
	}
	util := make([]float64, len(e.busySec))
	if now := e.sim.Now(); now > 0 {
		denom := now * float64(e.coresPerSat)
		for i, b := range e.busySec {
			util[i] = b / denom
		}
	}
	used := 0
	for _, b := range e.busySec {
		if b > 0 {
			used++
		}
	}
	return Result{
		Policy:      e.policy.Name(),
		Offered:     e.offered,
		Served:      e.served,
		InFlight:    e.inflight,
		Shed:        shed,
		LatencyMs:   e.latency,
		Utilization: util,
		SatsUsed:    used,
		PeakQueued:  e.peakQ,
	}
}
