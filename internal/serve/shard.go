package serve

// The sharded discrete-event serving engine. The netsim-backed legacy
// engine (legacy.go) replays one global (time, seq) heap; this engine gets
// the same answers from a parallel plan, the playbook that scaled the fleet
// planner: simulate in refresh-aligned time slices, fan each slice out
// across workers, and merge worker results in a deterministic order so
// every per-seed output byte matches the serial run.
//
// Why slices compose exactly:
//
//   - Candidate lists, fault state, and the snapshot ring change only at
//     refresh boundaries, so within a slice every arrival at a site sees
//     the same candidates.
//   - All mutable simulation state (core busy-until, outstanding count,
//     busy seconds, in-flight records) is per-satellite; requests on
//     different satellites never interact. Once each arrival's satellite is
//     known, satellites simulate independently in per-satellite (time, seq)
//     order and the global replay order is irrelevant.
//   - For slice-local policies (nearest, sticky — Pick reads neither the
//     clock nor the load signals and re-picks its own choice), the picked
//     satellite is constant per site within a slice, so the assignment is
//     known up front: phase A classifies arrivals and memoizes one pick per
//     site, phase B shards satellites across workers and runs each
//     satellite's event heap. Site affinity (prev) commits at the slice
//     barrier — within the slice the pick is a fixed point, so the legacy
//     engine's per-arrival updates observe the same value.
//   - Least-loaded (and any external policy) reads global load signals at
//     every arrival, so its slices run a zero-alloc serial loop in exact
//     global (time, seq) order instead — same semantics, no fan-out.
//
// Two merged artifacts are order-canonicalized rather than replayed: the
// latency sample stream and the queue-depth delta stream, both keyed by
// (event time, arrival index). Those keys are unique per request, so the
// merge is a total order and identical for every worker count. Against the
// legacy engine the key reproduces its event order except when two
// *distinct* requests collide at an identical float64 timestamp on
// different satellites — a measure-zero coincidence for the continuous
// workloads the generator produces.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
)

// serveSerialWork is the slice arrival count below which adaptive mode
// (Workers == 0) keeps the serial loop: under ~2k arrivals the fan-out
// barriers cost more than the parallel phase saves.
const serveSerialWork = 2048

// Shed slots in ShedReasons order, for the engine's fixed-size counters.
const (
	shedNoCov = iota
	shedDown
	shedQFull
	shedRefuse
)

// pendingReq is a fed request in the arrival arena: feed order is the
// global arrival sequence (Feed enforces monotonic times).
type pendingReq struct {
	t    float64 // arrival, seconds
	svc  float64 // service, seconds
	site int32
}

// Event kinds on a satellite's heap.
const (
	evUplink  uint8 = iota // request reaches the satellite, claims a core
	evRelease              // queued request leaves the queue (service starts)
	evDone                 // service + downlink complete
)

// satEvent is one simulation event, ordered by (t, seq). seq is per-heap
// schedule order; arrivals always precede events at equal times, matching
// the legacy kernel where feed-time sequence numbers are the lowest.
type satEvent struct {
	t    float64
	seq  uint32
	kind uint8
	sat  int32 // owning satellite (drives dispatch on the serial global heap)
	ref  int32 // slab record (evUplink/evDone) or owner arrival (evRelease)
}

// reqRec is an admitted in-flight request in its satellite's slab.
type reqRec struct {
	t     float64 // arrival time
	d     float64 // one-way propagation, seconds
	svc   float64 // service, seconds
	owner int32   // global arrival index: the deterministic merge key
}

// satShard is one satellite's simulation state. Each satellite is owned by
// exactly one worker per slice, so none of this is locked; the slab + free
// list recycle records across slices without churning the allocator.
type satShard struct {
	heap        []satEvent
	seq         uint32
	cores       []float64 // busy-until per core (lazy)
	outstanding int
	busySec     float64
	slab        []reqRec
	free        []int32
}

func (st *satShard) allocRec(r reqRec) int32 {
	if n := len(st.free); n > 0 {
		i := st.free[n-1]
		st.free = st.free[:n-1]
		st.slab[i] = r
		return i
	}
	st.slab = append(st.slab, r)
	return int32(len(st.slab) - 1)
}

func (st *satShard) earliestFree() float64 {
	if st.cores == nil {
		return 0
	}
	best := st.cores[0]
	for _, b := range st.cores[1:] {
		if b < best {
			best = b
		}
	}
	return best
}

// deltaEvt is a queue-depth change; the merge replays all shards' deltas in
// (t, owner) order to recover the global peak depth.
type deltaEvt struct {
	t     float64
	owner int32
	d     int8
}

// sampleRec is a served-request latency observation with its merge key.
type sampleRec struct {
	t     float64 // completion time
	owner int32
	ms    float64
}

// shardAcct is one worker's per-slice scratch: counters merged in worker
// order, streams merged in key order. Padded so concurrent workers do not
// share cache lines.
type shardAcct struct {
	served    int
	inflightD int
	shed      [4]int
	samples   []sampleRec
	deltas    []deltaEvt
	_         [64]byte
}

// evLess orders events by (t, seq).
func evLess(a, b satEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func heapPush(h *[]satEvent, e satEvent) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func heapPop(h *[]satEvent) satEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && evLess(s[l], s[m]) {
			m = l
		}
		if r < n && evLess(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Engine simulates request serving for one routing policy. Drive it with
// Feed (workload) and RunUntil (time); read Result anytime. All behaviour
// is deterministic in (constellation, config, fed requests) and identical
// for every Workers setting and GOMAXPROCS value.
type Engine struct {
	cfg    Config
	net    *netgraph.Network
	policy Policy
	local  bool // policy picks are slice-local: slices may fan out

	coresPerSat int
	queueCap    int // -1 = unbounded
	nsats       int

	now      float64
	refreshN int     // refreshes performed; the next is due at refreshN*RefreshSec
	lastFed  float64 // monotonic-feed floor

	// ring holds snapshots at now, now+refresh, ..., now+lookahead*refresh;
	// rotated one slot per refresh so steady state freezes one new graph.
	ring []*netgraph.Snapshot

	cands    [][]Candidate // per site, rebuilt each refresh
	downOnly []bool        // per site: visible sats exist but all are down
	prevSat  []int         // per site: satellite that served the last request

	pending []pendingReq // arrival arena, consumed by cursor
	cursor  int

	sats []satShard

	// Serial-path global heap (least-loaded and external policies): exact
	// legacy (time, seq) replay, slab-backed instead of closure-backed.
	gheap []satEvent
	gseq  uint32

	// Per-slice scratch for the fan-out path.
	segGen    uint32
	siteGen   []uint32  // per site: memo generation
	siteAdmit []uint32  // per site: generation of the last admitted slice
	sitePick  []int32   // per site: sat (>=0) or -(1+shed slot)
	sitePickD []float64 // per site: one-way seconds of the picked sat
	acct      []shardAcct
	segDeltas []deltaEvt
	segSamps  []sampleRec

	offered  int
	served   int
	inflight int
	shedN    [4]int
	latency  *stats.CDF
	nQueued  int
	peakQ    int

	workersUsed    int
	parallelSlices int
	serialSlices   int

	// Metric deltas since the last flush (RunUntil boundaries).
	pendSamples []float64
	repOffered  int
	repServed   int
	repShed     [4]int
	repParallel int
	repSerial   int

	m          *metricsSet
	reqC       *obs.Counter
	servedC    *obs.Counter
	shedC      map[ShedReason]*obs.Counter
	latQ       *obs.Quantile
	queueG     *obs.Gauge
	inflightG  *obs.Gauge
	slicesParC *obs.Counter
	slicesSerC *obs.Counter
	workersG   *obs.Gauge
}

// NewEngine builds a serving engine over the constellation. The refresh
// chain starts at t=0; call Feed then RunUntil.
func NewEngine(c *constellation.Constellation, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if c == nil {
		return nil, fmt.Errorf("serve: nil constellation")
	}
	if err := validateConfig(c.Size(), cfg); err != nil {
		return nil, err
	}
	_, local := cfg.Policy.(sliceLocalPolicy)
	e := &Engine{
		cfg:         cfg,
		policy:      cfg.Policy,
		local:       local,
		coresPerSat: int(math.Max(1, math.Floor(cfg.Server.EffectiveCores()))),
		queueCap:    cfg.QueueCap,
		nsats:       c.Size(),
		cands:       make([][]Candidate, len(cfg.Sites)),
		downOnly:    make([]bool, len(cfg.Sites)),
		prevSat:     make([]int, len(cfg.Sites)),
		sats:        make([]satShard, c.Size()),
		siteGen:     make([]uint32, len(cfg.Sites)),
		siteAdmit:   make([]uint32, len(cfg.Sites)),
		sitePick:    make([]int32, len(cfg.Sites)),
		sitePickD:   make([]float64, len(cfg.Sites)),
		latency:     stats.NewCDF(),
	}
	for i := range e.prevSat {
		e.prevSat[i] = -1
	}
	gls := make([]geo.LatLon, len(cfg.Sites))
	for i, s := range cfg.Sites {
		gls[i] = s.Loc
	}
	e.net = netgraph.New(c, gls)
	if cfg.Ephem != nil {
		e.net.UseEphemeris(cfg.Ephem)
	}
	if cfg.Registry != nil {
		e.m = newMetricsSet(cfg.Registry)
		name := cfg.Policy.Name()
		e.reqC = e.m.requests.With(name)
		e.servedC = e.m.served.With(name)
		e.shedC = make(map[ShedReason]*obs.Counter, len(ShedReasons))
		for _, r := range ShedReasons {
			e.shedC[r] = e.m.shed.With(name, string(r))
		}
		e.latQ = e.m.latency.With(name)
		e.queueG = e.m.queue.With(name)
		e.inflightG = e.m.inflight.With(name)
		e.slicesParC = e.m.slices.With(name, "parallel")
		e.slicesSerC = e.m.slices.With(name, "serial")
		e.workersG = e.m.workers.With(name)
	}
	e.refresh(0)
	e.refreshN = 1
	return e, nil
}

// refresh rebuilds fault state, the snapshot ring, and per-site candidate
// lists at time t — the per-slice batch that replaces per-arrival lookups.
func (e *Engine) refresh(t float64) {
	if e.cfg.Faults != nil {
		e.cfg.Faults.Advance(t)
	}
	step := e.cfg.RefreshSec
	depth := e.cfg.LookaheadEpochs + 1
	// Ring snapshots chain onto the previously built one, so each refresh
	// freezes as a visibility delta instead of a full rescan (the times are
	// strictly increasing across refreshes by construction).
	if len(e.ring) == 0 {
		e.ring = make([]*netgraph.Snapshot, 0, depth)
		var prev *netgraph.Snapshot
		for k := 0; k < depth; k++ {
			s := e.net.AtAfter(prev, t+float64(k)*step)
			e.ring = append(e.ring, s)
			prev = s
		}
	} else {
		copy(e.ring, e.ring[1:])
		e.ring[depth-1] = e.net.AtAfter(e.ring[depth-2], t+float64(depth-1)*step)
	}
	now := e.ring[0]
	for si := range e.cfg.Sites {
		vis := now.VisibleSats(si)
		futures := make([][]int, len(e.ring)-1)
		for k := 1; k < len(e.ring); k++ {
			futures[k-1] = e.ring[k].VisibleSats(si)
		}
		gpos := now.Position(e.net.GroundNode(si))
		cands := e.cands[si][:0]
		for _, sat := range vis {
			if e.cfg.Faults != nil && !e.cfg.Faults.SatUp(sat) {
				continue
			}
			life := 0.0
			for _, fut := range futures {
				if !containsSorted(fut, sat) {
					break
				}
				life += step
			}
			cands = append(cands, Candidate{
				SatID:    sat,
				OneWayMs: units.PropagationDelayMs(gpos.Distance(now.Position(e.net.SatNode(sat)))),
				LifeSec:  life,
			})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].OneWayMs != cands[j].OneWayMs {
				return cands[i].OneWayMs < cands[j].OneWayMs
			}
			return cands[i].SatID < cands[j].SatID
		})
		e.cands[si] = cands
		e.downOnly[si] = len(cands) == 0 && len(vis) > 0
	}
}

// Feed appends requests to the arrival arena. Arrival times must be
// non-decreasing across all Feed calls and must not predate the current
// simulation time; violations return an error wrapping ErrNonMonotonic.
func (e *Engine) Feed(reqs []Request) error {
	for i := range reqs {
		r := reqs[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
		if r.Site >= len(e.cfg.Sites) {
			return fmt.Errorf("serve: request %d: site %d out of range (%d sites)",
				i, r.Site, len(e.cfg.Sites))
		}
		if r.TSec < e.lastFed {
			return fmt.Errorf("serve: request %d at t=%gs before already-fed t=%gs: %w",
				i, r.TSec, e.lastFed, ErrNonMonotonic)
		}
		if r.TSec < e.now {
			return fmt.Errorf("serve: request %d at t=%gs before simulation time %gs: %w",
				i, r.TSec, e.now, ErrNonMonotonic)
		}
		e.lastFed = r.TSec
		e.pending = append(e.pending, pendingReq{t: r.TSec, svc: r.ServiceMs / 1000, site: int32(r.Site)})
	}
	return nil
}

// RunUntil advances the simulation to tSec (inclusive of events at tSec),
// slice by slice with a refresh at each boundary.
func (e *Engine) RunUntil(tSec float64) {
	for {
		next := float64(e.refreshN) * e.cfg.RefreshSec
		if next <= tSec {
			// Arrivals at exactly the first boundary land after that refresh
			// (its event predates every feed in the legacy order); later
			// boundaries are scheduled mid-run and lose the tie to arrivals.
			e.runSegment(next, e.refreshN == 1)
			e.now = next
			e.refresh(next)
			e.refreshN++
			continue
		}
		e.runSegment(tSec, false)
		if tSec > e.now {
			e.now = tSec
		}
		break
	}
	e.flushMetrics()
}

// Now returns the engine's simulation time.
func (e *Engine) Now() float64 { return e.now }

// runSegment consumes arrivals up to hi and advances every satellite's
// event heap to hi (inclusive).
func (e *Engine) runSegment(hi float64, excludeAtHi bool) {
	lo := e.cursor
	j := lo
	for j < len(e.pending) {
		t := e.pending[j].t
		if t > hi || (excludeAtHi && t == hi) {
			break
		}
		j++
	}
	e.cursor = j
	n := j - lo
	if !e.local {
		if n > 0 {
			e.serialSlices++
			if e.workersUsed < 1 {
				e.workersUsed = 1
			}
		}
		e.runSerialSegment(lo, j, hi)
		return
	}
	shards := e.shardsFor(n)
	if n > 0 {
		if shards > 1 {
			e.parallelSlices++
		} else {
			e.serialSlices++
		}
		if e.workersUsed < shards {
			e.workersUsed = shards
		}
	}
	e.runLocalSegment(lo, j, hi, shards)
}

// shardsFor resolves the slice fan-out for n arrivals.
func (e *Engine) shardsFor(n int) int {
	w := e.cfg.Workers
	switch {
	case n == 0, w == 1:
		return 1
	case w > 1:
		return w
	}
	if n < serveSerialWork {
		return 1
	}
	w = runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); w > c {
		w = c
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ---- fan-out path (slice-local policies) ----

func (e *Engine) runLocalSegment(lo, hi int, end float64, shards int) {
	e.segGen++
	for len(e.acct) < shards {
		e.acct = append(e.acct, shardAcct{})
	}
	if shards == 1 {
		e.localClassify(lo, hi, 0, 1)
		e.localSimulate(lo, hi, end, 0, 1)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e.localClassify(lo, hi, w, shards)
			}(w)
		}
		wg.Wait() // memo barrier: phase B reads every shard's site picks
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e.localSimulate(lo, hi, end, w, shards)
			}(w)
		}
		wg.Wait()
	}
	e.mergeSegment(lo, hi, shards)
}

// localClassify (phase A, sites sharded site%shards): memoize the one pick
// every arrival at a site resolves to this slice, and count the sheds that
// need no simulation.
func (e *Engine) localClassify(lo, hi, w, shards int) {
	a := &e.acct[w]
	gen := e.segGen
	for i := lo; i < hi; i++ {
		site := int(e.pending[i].site)
		if site%shards != w {
			continue
		}
		if e.siteGen[site] != gen {
			e.memoSite(site, e.pending[i].t, gen)
		}
		if pick := e.sitePick[site]; pick < 0 {
			a.shed[-pick-1]++
		}
	}
}

// memoSite resolves a site's slice pick. Slice-local picks ignore the clock
// and load signals, and re-pick their own previous choice, so one call
// stands in for every arrival the site gets this slice — including the
// legacy engine's mid-slice prev updates, which only ever install this same
// fixed point.
func (e *Engine) memoSite(site int, tArr float64, gen uint32) {
	cands := e.cands[site]
	var pick int32
	var d float64
	switch {
	case len(cands) == 0 && e.downOnly[site]:
		pick = -(1 + shedDown)
	case len(cands) == 0:
		pick = -(1 + shedNoCov)
	default:
		idx := e.policy.Pick(tArr, e.prevSat[site], cands)
		if idx < 0 || idx >= len(cands) {
			pick = -(1 + shedRefuse)
		} else {
			pick = int32(cands[idx].SatID)
			d = cands[idx].OneWayMs / 1000
		}
	}
	e.sitePick[site] = pick
	e.sitePickD[site] = d
	e.siteGen[site] = gen
}

// localSimulate (phase B, satellites sharded sat%shards): admit this
// worker's satellites' arrivals in global feed order, interleaved with
// their event heaps in per-satellite (time, seq) order.
func (e *Engine) localSimulate(lo, hi int, end float64, w, shards int) {
	a := &e.acct[w]
	gen := e.segGen
	for i := lo; i < hi; i++ {
		p := e.pending[i]
		pick := e.sitePick[p.site]
		if pick < 0 {
			continue
		}
		sat := int(pick)
		if sat%shards != w {
			continue
		}
		st := &e.sats[sat]
		e.drainSat(st, a, p.t, false) // events strictly before the arrival
		if e.queueCap >= 0 && st.outstanding >= e.coresPerSat+e.queueCap {
			a.shed[shedQFull]++
			continue
		}
		e.siteAdmit[p.site] = gen // single writer: this sat owns the site's slice
		st.outstanding++
		a.inflightD++
		d := e.sitePickD[p.site]
		ref := st.allocRec(reqRec{t: p.t, d: d, svc: p.svc, owner: int32(i)})
		heapPush(&st.heap, satEvent{t: p.t + d, seq: st.seq, kind: evUplink, sat: pick, ref: ref})
		st.seq++
	}
	for sat := w; sat < e.nsats; sat += shards {
		e.drainSat(&e.sats[sat], a, end, true)
	}
}

// drainSat runs one satellite's events up to limit (exclusive before an
// arrival — arrivals win ties — inclusive at the slice end).
func (e *Engine) drainSat(st *satShard, a *shardAcct, limit float64, inclusive bool) {
	for len(st.heap) > 0 {
		t := st.heap[0].t
		if inclusive {
			if t > limit {
				break
			}
		} else if t >= limit {
			break
		}
		ev := heapPop(&st.heap)
		switch ev.kind {
		case evUplink:
			rec := st.slab[ev.ref]
			ci := e.pickCore(st)
			start := math.Max(ev.t, st.cores[ci])
			st.cores[ci] = start + rec.svc
			st.busySec += rec.svc
			if start > ev.t {
				a.deltas = append(a.deltas, deltaEvt{t: ev.t, owner: rec.owner, d: 1})
				heapPush(&st.heap, satEvent{t: start, seq: st.seq, kind: evRelease, sat: ev.sat, ref: rec.owner})
				st.seq++
			}
			heapPush(&st.heap, satEvent{t: start + rec.svc, seq: st.seq, kind: evDone, sat: ev.sat, ref: ev.ref})
			st.seq++
		case evRelease:
			a.deltas = append(a.deltas, deltaEvt{t: ev.t, owner: ev.ref, d: -1})
		case evDone:
			rec := st.slab[ev.ref]
			st.outstanding--
			a.inflightD--
			a.served++
			a.samples = append(a.samples, sampleRec{t: ev.t, owner: rec.owner, ms: (ev.t - rec.t + rec.d) * 1000})
			st.free = append(st.free, ev.ref)
		}
	}
}

// pickCore returns the satellite's earliest-free core index (lowest index
// on ties, keeping runs deterministic).
func (e *Engine) pickCore(st *satShard) int {
	if st.cores == nil {
		st.cores = make([]float64, e.coresPerSat)
	}
	ci, best := 0, st.cores[0]
	for i := 1; i < len(st.cores); i++ {
		if st.cores[i] < best {
			best = st.cores[i]
			ci = i
		}
	}
	return ci
}

// mergeSegment folds worker results into the engine in deterministic order:
// counters in worker order (sums commute), streams in (t, owner) key order,
// site affinity at the barrier.
func (e *Engine) mergeSegment(lo, hi, shards int) {
	e.offered += hi - lo
	e.segDeltas = e.segDeltas[:0]
	e.segSamps = e.segSamps[:0]
	for w := 0; w < shards; w++ {
		a := &e.acct[w]
		e.served += a.served
		e.inflight += a.inflightD
		for r := range e.shedN {
			e.shedN[r] += a.shed[r]
		}
		e.segSamps = append(e.segSamps, a.samples...)
		e.segDeltas = append(e.segDeltas, a.deltas...)
		a.served, a.inflightD, a.shed = 0, 0, [4]int{}
		a.samples = a.samples[:0]
		a.deltas = a.deltas[:0]
	}
	// (t, owner) is unique per record — one completion per request, and a
	// request's queue entry and exit never coincide — so both sorts induce
	// a total order independent of the fan-out that produced the slices.
	sort.Slice(e.segSamps, func(i, j int) bool {
		if e.segSamps[i].t != e.segSamps[j].t {
			return e.segSamps[i].t < e.segSamps[j].t
		}
		return e.segSamps[i].owner < e.segSamps[j].owner
	})
	for _, s := range e.segSamps {
		e.latency.Add(s.ms)
		e.pendSamples = append(e.pendSamples, s.ms)
	}
	sort.Slice(e.segDeltas, func(i, j int) bool {
		if e.segDeltas[i].t != e.segDeltas[j].t {
			return e.segDeltas[i].t < e.segDeltas[j].t
		}
		return e.segDeltas[i].owner < e.segDeltas[j].owner
	})
	for _, d := range e.segDeltas {
		e.nQueued += int(d.d)
		if e.nQueued > e.peakQ {
			e.peakQ = e.nQueued
		}
	}
	gen := e.segGen
	for site := range e.sitePick {
		if e.siteGen[site] == gen && e.siteAdmit[site] == gen {
			e.prevSat[site] = int(e.sitePick[site])
		}
	}
}

// ---- serial path (globally load-coupled policies) ----

// runSerialSegment replays the slice on one goroutine in exact global
// (time, seq) order: what the legacy engine does, minus its per-event
// closure allocations.
func (e *Engine) runSerialSegment(lo, hi int, end float64) {
	for i := lo; i < hi; i++ {
		p := e.pending[i]
		e.serialDrain(p.t, false)
		e.serialArrive(i, p)
	}
	e.serialDrain(end, true)
}

func (e *Engine) serialArrive(idx int, p pendingReq) {
	e.offered++
	site := int(p.site)
	cands := e.cands[site]
	if len(cands) == 0 {
		if e.downOnly[site] {
			e.shedN[shedDown]++
		} else {
			e.shedN[shedNoCov]++
		}
		return
	}
	for i := range cands {
		st := &e.sats[cands[i].SatID]
		cands[i].FreeAtSec = st.earliestFree()
		cands[i].Queued = st.outstanding
	}
	pi := e.policy.Pick(p.t, e.prevSat[site], cands)
	if pi < 0 || pi >= len(cands) {
		e.shedN[shedRefuse]++
		return
	}
	sat := cands[pi].SatID
	st := &e.sats[sat]
	if e.queueCap >= 0 && st.outstanding >= e.coresPerSat+e.queueCap {
		e.shedN[shedQFull]++
		return
	}
	e.prevSat[site] = sat
	st.outstanding++
	e.inflight++
	d := cands[pi].OneWayMs / 1000
	ref := st.allocRec(reqRec{t: p.t, d: d, svc: p.svc, owner: int32(idx)})
	heapPush(&e.gheap, satEvent{t: p.t + d, seq: e.gseq, kind: evUplink, sat: int32(sat), ref: ref})
	e.gseq++
}

func (e *Engine) serialDrain(limit float64, inclusive bool) {
	for len(e.gheap) > 0 {
		t := e.gheap[0].t
		if inclusive {
			if t > limit {
				break
			}
		} else if t >= limit {
			break
		}
		ev := heapPop(&e.gheap)
		st := &e.sats[ev.sat]
		switch ev.kind {
		case evUplink:
			rec := st.slab[ev.ref]
			ci := e.pickCore(st)
			start := math.Max(ev.t, st.cores[ci])
			st.cores[ci] = start + rec.svc
			st.busySec += rec.svc
			if start > ev.t {
				e.queueDelta(+1)
				heapPush(&e.gheap, satEvent{t: start, seq: e.gseq, kind: evRelease, sat: ev.sat, ref: rec.owner})
				e.gseq++
			}
			heapPush(&e.gheap, satEvent{t: start + rec.svc, seq: e.gseq, kind: evDone, sat: ev.sat, ref: ev.ref})
			e.gseq++
		case evRelease:
			e.queueDelta(-1)
		case evDone:
			rec := st.slab[ev.ref]
			st.outstanding--
			e.inflight--
			e.served++
			respMs := (ev.t - rec.t + rec.d) * 1000
			e.latency.Add(respMs)
			e.pendSamples = append(e.pendSamples, respMs)
			st.free = append(st.free, ev.ref)
		}
	}
}

func (e *Engine) queueDelta(d int) {
	e.nQueued += d
	if e.nQueued > e.peakQ {
		e.peakQ = e.nQueued
	}
}

// ---- reporting ----

// flushMetrics reconciles the obs registry with the engine's accounting at
// RunUntil boundaries — the points the flight recorder samples.
func (e *Engine) flushMetrics() {
	if e.m == nil {
		e.pendSamples = e.pendSamples[:0]
		return
	}
	if d := e.offered - e.repOffered; d > 0 {
		e.reqC.Add(uint64(d))
		e.repOffered = e.offered
	}
	if d := e.served - e.repServed; d > 0 {
		e.servedC.Add(uint64(d))
		e.repServed = e.served
	}
	for i, r := range ShedReasons {
		if d := e.shedN[i] - e.repShed[i]; d > 0 {
			e.shedC[r].Add(uint64(d))
			e.repShed[i] = e.shedN[i]
		}
	}
	for _, s := range e.pendSamples {
		e.latQ.Observe(s)
	}
	e.pendSamples = e.pendSamples[:0]
	if d := e.parallelSlices - e.repParallel; d > 0 {
		e.slicesParC.Add(uint64(d))
		e.repParallel = e.parallelSlices
	}
	if d := e.serialSlices - e.repSerial; d > 0 {
		e.slicesSerC.Add(uint64(d))
		e.repSerial = e.serialSlices
	}
	e.queueG.Set(float64(e.nQueued))
	e.inflightG.Set(float64(e.inflight))
	e.workersG.Set(float64(e.Stats().Workers))
}

// Stats reports the run's execution shape (fan-out and slice modes).
func (e *Engine) Stats() EngineStats {
	w := e.workersUsed
	if w < 1 {
		w = 1
	}
	return EngineStats{
		Workers:        w,
		ParallelSlices: e.parallelSlices,
		SerialSlices:   e.serialSlices,
	}
}

// Result snapshots the engine's accounting at the current simulation time.
func (e *Engine) Result() Result {
	shed := make(map[ShedReason]int, len(ShedReasons))
	for i, r := range ShedReasons {
		if e.shedN[i] > 0 {
			shed[r] = e.shedN[i]
		}
	}
	util := make([]float64, e.nsats)
	if e.now > 0 {
		denom := e.now * float64(e.coresPerSat)
		for i := range e.sats {
			util[i] = e.sats[i].busySec / denom
		}
	}
	used := 0
	for i := range e.sats {
		if e.sats[i].busySec > 0 {
			used++
		}
	}
	return Result{
		Policy:      e.policy.Name(),
		Offered:     e.offered,
		Served:      e.served,
		InFlight:    e.inflight,
		Shed:        shed,
		LatencyMs:   e.latency,
		Utilization: util,
		SatsUsed:    used,
		PeakQueued:  e.peakQ,
	}
}
