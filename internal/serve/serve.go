// Package serve is the constellation-wide request-serving layer: the
// discrete-event model of the paper's "compute as a service" claim. Ground
// sites emit requests (diurnal Poisson arrivals, heavy-tailed service
// times); a pluggable routing policy picks a visible satellite for each
// request; per-satellite admission control bounds the queue and sheds the
// rest with typed reasons. It runs on the netsim kernel over the frozen
// netgraph visibility snapshots, shares the ephemeris engine with the fleet
// orchestrator, and reports into the obs registry / flight recorder.
package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/netgraph"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
)

// ShedReason classifies why admission rejected a request.
type ShedReason string

const (
	// ShedNoCoverage: no satellite is above the site's elevation mask.
	ShedNoCoverage ShedReason = "no_coverage"
	// ShedSatDown: satellites are visible but every one is failed.
	ShedSatDown ShedReason = "sat_down"
	// ShedQueueFull: the chosen satellite's bounded queue is at capacity.
	ShedQueueFull ShedReason = "queue_full"
	// ShedRefused: the routing policy declined every candidate.
	ShedRefused ShedReason = "refused"
)

// ShedReasons lists the reasons in report order.
var ShedReasons = []ShedReason{ShedNoCoverage, ShedSatDown, ShedQueueFull, ShedRefused}

// Config configures a serving engine for one policy.
type Config struct {
	// Sites are the request-originating ground locations (required).
	Sites []Site
	// Policy routes each request (required).
	Policy Policy
	// Server is the per-satellite hardware (zero value: DefaultServerSpec).
	// EffectiveCores (power-capped) sets the number of request cores.
	Server compute.ServerSpec
	// QueueCap bounds requests admitted per satellite beyond its cores;
	// at capacity further requests are shed (default 64, -1 = unbounded).
	QueueCap int
	// RefreshSec is the cadence at which visibility snapshots and fault
	// state are refreshed (default 60, matching the fleet epoch).
	RefreshSec float64
	// LookaheadEpochs is how many future refresh intervals the engine
	// scans to estimate candidate visibility lifetime for affinity
	// policies (default 3).
	LookaheadEpochs int
	// Registry, when set, receives the serve_* metric families.
	Registry *obs.Registry
	// Faults, when set, marks failed satellites unroutable at each
	// refresh. The engine owns Advance; give each engine its own
	// injector (same seed = same schedule).
	Faults *faults.Injector
	// Ephem, when set, supplies cached position frames to the network
	// snapshots (share the fleet orchestrator's engine).
	Ephem *ephem.Engine
}

func (c Config) withDefaults() Config {
	if c.Server == (compute.ServerSpec{}) {
		c.Server = compute.DefaultServerSpec()
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.RefreshSec <= 0 {
		c.RefreshSec = 60
	}
	if c.LookaheadEpochs <= 0 {
		c.LookaheadEpochs = 3
	}
	return c
}

// Result summarises a finished (or in-progress) run for one policy.
type Result struct {
	// Policy is the routing policy name.
	Policy string
	// Offered counts requests fed whose arrival time has passed.
	Offered int
	// Served counts requests completed end to end.
	Served int
	// InFlight counts requests admitted but not yet completed.
	InFlight int
	// Shed counts admission rejections by reason.
	Shed map[ShedReason]int
	// LatencyMs is the end-to-end latency distribution (uplink + queue +
	// service + downlink) over served requests.
	LatencyMs *stats.CDF
	// Utilization is each satellite's busy-core-seconds divided by
	// elapsed core-seconds (indexed by satellite ID).
	Utilization []float64
	// SatsUsed counts satellites that served at least one request.
	SatsUsed int
	// PeakQueued is the maximum simultaneous queue depth summed over
	// satellites.
	PeakQueued int
}

// ShedTotal sums sheds across reasons.
func (r Result) ShedTotal() int {
	n := 0
	for _, v := range r.Shed {
		n += v
	}
	return n
}

// Engine simulates request serving for one routing policy. Drive it with
// Feed (workload) and RunUntil (time); read Result anytime. All behaviour
// is deterministic in (constellation, config, fed requests).
type Engine struct {
	cfg    Config
	sim    *netsim.Sim
	net    *netgraph.Network
	policy Policy

	coresPerSat int
	queueCap    int // -1 = unbounded

	// ring holds snapshots at now, now+refresh, ..., now+lookahead*refresh;
	// rotated one slot per refresh so steady state freezes one new graph.
	ring []*netgraph.Snapshot

	cands    [][]Candidate // per site, rebuilt each refresh
	downOnly []bool        // per site: visible sats exist but all are down
	prevSat  []int         // per site: satellite that served the last request

	cores       [][]float64 // per sat: busy-until per core (lazy)
	outstanding []int       // per sat: admitted, not completed
	busySec     []float64   // per sat: accumulated service seconds

	offered  int
	served   int
	inflight int
	shed     map[ShedReason]int
	latency  *stats.CDF
	nQueued  int
	peakQ    int

	m         *metricsSet
	reqC      *obs.Counter
	servedC   *obs.Counter
	shedC     map[ShedReason]*obs.Counter
	latQ      *obs.Quantile
	queueG    *obs.Gauge
	inflightG *obs.Gauge
}

// NewEngine builds a serving engine over the constellation. The refresh
// chain starts at t=0; call Feed then RunUntil.
func NewEngine(c *constellation.Constellation, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if c == nil {
		return nil, fmt.Errorf("serve: nil constellation")
	}
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("serve: no sites")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("serve: nil policy")
	}
	if err := cfg.Server.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Faults != nil && cfg.Faults.N() != c.Size() {
		return nil, fmt.Errorf("serve: fault injector sized for %d sats, constellation has %d",
			cfg.Faults.N(), c.Size())
	}
	e := &Engine{
		cfg:         cfg,
		sim:         netsim.New(),
		policy:      cfg.Policy,
		coresPerSat: int(math.Max(1, math.Floor(cfg.Server.EffectiveCores()))),
		queueCap:    cfg.QueueCap,
		cands:       make([][]Candidate, len(cfg.Sites)),
		downOnly:    make([]bool, len(cfg.Sites)),
		prevSat:     make([]int, len(cfg.Sites)),
		cores:       make([][]float64, c.Size()),
		outstanding: make([]int, c.Size()),
		busySec:     make([]float64, c.Size()),
		shed:        make(map[ShedReason]int),
		latency:     stats.NewCDF(),
	}
	for i := range e.prevSat {
		e.prevSat[i] = -1
	}
	gls := make([]geo.LatLon, len(cfg.Sites))
	for i, s := range cfg.Sites {
		gls[i] = s.Loc
	}
	e.net = netgraph.New(c, gls)
	if cfg.Ephem != nil {
		e.net.UseEphemeris(cfg.Ephem)
	}
	if cfg.Registry != nil {
		e.m = newMetricsSet(cfg.Registry)
		name := cfg.Policy.Name()
		e.reqC = e.m.requests.With(name)
		e.servedC = e.m.served.With(name)
		e.shedC = make(map[ShedReason]*obs.Counter, len(ShedReasons))
		for _, r := range ShedReasons {
			e.shedC[r] = e.m.shed.With(name, string(r))
		}
		e.latQ = e.m.latency.With(name)
		e.queueG = e.m.queue.With(name)
		e.inflightG = e.m.inflight.With(name)
	}
	e.refresh(0)
	e.scheduleRefresh(cfg.RefreshSec)
	return e, nil
}

func (e *Engine) scheduleRefresh(t float64) {
	// The chain is infinite by design; Run stops at its horizon, so the
	// one pending refresh beyond it is harmless.
	if _, err := e.sim.At(t, func() {
		e.refresh(t)
		e.scheduleRefresh(t + e.cfg.RefreshSec)
	}); err != nil {
		panic(fmt.Sprintf("serve: refresh schedule: %v", err))
	}
}

// refresh rebuilds fault state, the snapshot ring, and per-site candidate
// lists at time t.
func (e *Engine) refresh(t float64) {
	if e.cfg.Faults != nil {
		e.cfg.Faults.Advance(t)
	}
	step := e.cfg.RefreshSec
	depth := e.cfg.LookaheadEpochs + 1
	// Ring snapshots chain onto the previously built one, so each refresh
	// freezes as a visibility delta instead of a full rescan (the times are
	// strictly increasing across refreshes by construction).
	if len(e.ring) == 0 {
		e.ring = make([]*netgraph.Snapshot, 0, depth)
		var prev *netgraph.Snapshot
		for k := 0; k < depth; k++ {
			s := e.net.AtAfter(prev, t+float64(k)*step)
			e.ring = append(e.ring, s)
			prev = s
		}
	} else {
		copy(e.ring, e.ring[1:])
		e.ring[depth-1] = e.net.AtAfter(e.ring[depth-2], t+float64(depth-1)*step)
	}
	now := e.ring[0]
	for si := range e.cfg.Sites {
		vis := now.VisibleSats(si)
		futures := make([][]int, len(e.ring)-1)
		for k := 1; k < len(e.ring); k++ {
			futures[k-1] = e.ring[k].VisibleSats(si)
		}
		gpos := now.Position(e.net.GroundNode(si))
		cands := e.cands[si][:0]
		for _, sat := range vis {
			if e.cfg.Faults != nil && !e.cfg.Faults.SatUp(sat) {
				continue
			}
			life := 0.0
			for _, fut := range futures {
				if !containsSorted(fut, sat) {
					break
				}
				life += step
			}
			cands = append(cands, Candidate{
				SatID:    sat,
				OneWayMs: units.PropagationDelayMs(gpos.Distance(now.Position(e.net.SatNode(sat)))),
				LifeSec:  life,
			})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].OneWayMs != cands[j].OneWayMs {
				return cands[i].OneWayMs < cands[j].OneWayMs
			}
			return cands[i].SatID < cands[j].SatID
		})
		e.cands[si] = cands
		e.downOnly[si] = len(cands) == 0 && len(vis) > 0
	}
}

// containsSorted reports whether sorted ascending xs contains v.
func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// Feed schedules requests into the simulation. Requests must not predate
// the current simulation time; multiple Feeds accumulate.
func (e *Engine) Feed(reqs []Request) error {
	for i := range reqs {
		r := reqs[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
		if r.Site >= len(e.cfg.Sites) {
			return fmt.Errorf("serve: request %d: site %d out of range (%d sites)",
				i, r.Site, len(e.cfg.Sites))
		}
		req := r
		if _, err := e.sim.At(r.TSec, func() { e.arrive(req) }); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
	}
	return nil
}

// RunUntil advances the simulation to tSec (inclusive of events at tSec).
func (e *Engine) RunUntil(tSec float64) {
	e.sim.Run(tSec)
}

// Now returns the engine's simulation time.
func (e *Engine) Now() float64 { return e.sim.Now() }

func (e *Engine) arrive(r Request) {
	now := e.sim.Now()
	e.offered++
	if e.reqC != nil {
		e.reqC.Inc()
	}
	cands := e.cands[r.Site]
	if len(cands) == 0 {
		if e.downOnly[r.Site] {
			e.reject(ShedSatDown)
		} else {
			e.reject(ShedNoCoverage)
		}
		return
	}
	for i := range cands {
		cands[i].FreeAtSec = e.earliestFree(cands[i].SatID)
		cands[i].Queued = e.outstanding[cands[i].SatID]
	}
	idx := e.policy.Pick(now, e.prevSat[r.Site], cands)
	if idx < 0 || idx >= len(cands) {
		e.reject(ShedRefused)
		return
	}
	sat := cands[idx].SatID
	if e.queueCap >= 0 && e.outstanding[sat] >= e.coresPerSat+e.queueCap {
		e.reject(ShedQueueFull)
		return
	}
	e.prevSat[r.Site] = sat
	e.outstanding[sat]++
	e.inflight++
	if e.inflightG != nil {
		e.inflightG.Set(float64(e.inflight))
	}
	oneWaySec := cands[idx].OneWayMs / 1000
	svcSec := r.ServiceMs / 1000
	arrival := now
	// Uplink, then a core: queue depth covers the wait between reaching
	// the satellite and service start.
	e.mustAfter(oneWaySec, func() {
		up := e.sim.Now()
		ci := e.pickCore(sat)
		start := math.Max(up, e.cores[sat][ci])
		e.cores[sat][ci] = start + svcSec
		e.busySec[sat] += svcSec
		if start > up {
			e.queueDelta(+1)
			e.mustAt(start, func() { e.queueDelta(-1) })
		}
		e.mustAt(start+svcSec, func() {
			e.outstanding[sat]--
			e.inflight--
			e.served++
			respMs := (e.sim.Now() - arrival + oneWaySec) * 1000
			e.latency.Add(respMs)
			if e.servedC != nil {
				e.servedC.Inc()
				e.latQ.Observe(respMs)
				e.inflightG.Set(float64(e.inflight))
			}
		})
	})
}

func (e *Engine) queueDelta(d int) {
	e.nQueued += d
	if e.nQueued > e.peakQ {
		e.peakQ = e.nQueued
	}
	if e.queueG != nil {
		e.queueG.Set(float64(e.nQueued))
	}
}

func (e *Engine) reject(reason ShedReason) {
	e.shed[reason]++
	if e.shedC != nil {
		e.shedC[reason].Inc()
	}
}

// pickCore returns the satellite's earliest-free core index (lowest index
// on ties, keeping runs deterministic).
func (e *Engine) pickCore(sat int) int {
	if e.cores[sat] == nil {
		e.cores[sat] = make([]float64, e.coresPerSat)
	}
	ci, best := 0, e.cores[sat][0]
	for i := 1; i < len(e.cores[sat]); i++ {
		if e.cores[sat][i] < best {
			best = e.cores[sat][i]
			ci = i
		}
	}
	return ci
}

func (e *Engine) earliestFree(sat int) float64 {
	if e.cores[sat] == nil {
		return 0
	}
	best := e.cores[sat][0]
	for _, b := range e.cores[sat][1:] {
		if b < best {
			best = b
		}
	}
	return best
}

func (e *Engine) mustAfter(d float64, fn func()) {
	if _, err := e.sim.After(d, fn); err != nil {
		panic(fmt.Sprintf("serve: schedule: %v", err))
	}
}

func (e *Engine) mustAt(t float64, fn func()) {
	if _, err := e.sim.At(t, fn); err != nil {
		panic(fmt.Sprintf("serve: schedule: %v", err))
	}
}

// Result snapshots the engine's accounting at the current simulation time.
func (e *Engine) Result() Result {
	shed := make(map[ShedReason]int, len(e.shed))
	for k, v := range e.shed {
		shed[k] = v
	}
	util := make([]float64, len(e.busySec))
	if now := e.sim.Now(); now > 0 {
		denom := now * float64(e.coresPerSat)
		for i, b := range e.busySec {
			util[i] = b / denom
		}
	}
	used := 0
	for _, b := range e.busySec {
		if b > 0 {
			used++
		}
	}
	return Result{
		Policy:      e.policy.Name(),
		Offered:     e.offered,
		Served:      e.served,
		InFlight:    e.inflight,
		Shed:        shed,
		LatencyMs:   e.latency,
		Utilization: util,
		SatsUsed:    used,
		PeakQueued:  e.peakQ,
	}
}
