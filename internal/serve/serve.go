// Package serve is the constellation-wide request-serving layer: the
// discrete-event model of the paper's "compute as a service" claim. Ground
// sites emit requests (diurnal Poisson arrivals, heavy-tailed service
// times); a pluggable routing policy picks a visible satellite for each
// request; per-satellite admission control bounds the queue and sheds the
// rest with typed reasons. The engine shards the event simulation across
// workers at refresh-aligned time slices (see shard.go) while staying
// byte-identical to the serial reference for every seed; it runs over the
// frozen netgraph visibility snapshots, shares the ephemeris engine with
// the fleet orchestrator, and reports into the obs registry / flight
// recorder.
package serve

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/compute"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ShedReason classifies why admission rejected a request.
type ShedReason string

const (
	// ShedNoCoverage: no satellite is above the site's elevation mask.
	ShedNoCoverage ShedReason = "no_coverage"
	// ShedSatDown: satellites are visible but every one is failed.
	ShedSatDown ShedReason = "sat_down"
	// ShedQueueFull: the chosen satellite's bounded queue is at capacity.
	ShedQueueFull ShedReason = "queue_full"
	// ShedRefused: the routing policy declined every candidate.
	ShedRefused ShedReason = "refused"
)

// ShedReasons lists the reasons in report order.
var ShedReasons = []ShedReason{ShedNoCoverage, ShedSatDown, ShedQueueFull, ShedRefused}

// shedIdx maps a reason to its slot in the engine's fixed-size counters.
func shedIdx(r ShedReason) int {
	for i, v := range ShedReasons {
		if v == r {
			return i
		}
	}
	return -1
}

// ErrNonMonotonic is returned by Engine.Feed when a request's arrival time
// precedes an already-fed request or the engine's current simulation time.
// The sharded engine assigns per-slice event order from feed order, so an
// out-of-order feed would silently corrupt the (time, seq) contract the
// determinism guarantees rest on; it is rejected instead.
var ErrNonMonotonic = errors.New("non-monotonic request feed")

// Config configures a serving engine for one policy.
type Config struct {
	// Sites are the request-originating ground locations (required).
	Sites []Site
	// Policy routes each request (required).
	Policy Policy
	// Server is the per-satellite hardware (zero value: DefaultServerSpec).
	// EffectiveCores (power-capped) sets the number of request cores.
	Server compute.ServerSpec
	// QueueCap bounds requests admitted per satellite beyond its cores;
	// at capacity further requests are shed (default 64, -1 = unbounded).
	QueueCap int
	// RefreshSec is the cadence at which visibility snapshots and fault
	// state are refreshed (default 60, matching the fleet epoch). It is
	// also the engine's parallel slice width: workers synchronize at
	// every refresh boundary.
	RefreshSec float64
	// LookaheadEpochs is how many future refresh intervals the engine
	// scans to estimate candidate visibility lifetime for affinity
	// policies (default 3).
	LookaheadEpochs int
	// Workers is the event-simulation fan-out per slice: 0 picks
	// min(GOMAXPROCS, NumCPU) with a serial fallback below a work
	// threshold, 1 forces the serial loop, >1 forces that shard count.
	// Every worker count produces byte-identical results; only policies
	// whose picks are slice-local (nearest, sticky) fan out — globally
	// load-coupled policies (least-loaded) always run the serial merge.
	Workers int
	// Registry, when set, receives the serve_* metric families.
	Registry *obs.Registry
	// Faults, when set, marks failed satellites unroutable at each
	// refresh. The engine owns Advance; give each engine its own
	// injector (same seed = same schedule).
	Faults *faults.Injector
	// Ephem, when set, supplies cached position frames to the network
	// snapshots (share the fleet orchestrator's engine).
	Ephem *ephem.Engine
}

func (c Config) withDefaults() Config {
	if c.Server == (compute.ServerSpec{}) {
		c.Server = compute.DefaultServerSpec()
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.RefreshSec <= 0 {
		c.RefreshSec = 60
	}
	if c.LookaheadEpochs <= 0 {
		c.LookaheadEpochs = 3
	}
	return c
}

// Result summarises a finished (or in-progress) run for one policy.
type Result struct {
	// Policy is the routing policy name.
	Policy string
	// Offered counts requests fed whose arrival time has passed.
	Offered int
	// Served counts requests completed end to end.
	Served int
	// InFlight counts requests admitted but not yet completed.
	InFlight int
	// Shed counts admission rejections by reason.
	Shed map[ShedReason]int
	// LatencyMs is the end-to-end latency distribution (uplink + queue +
	// service + downlink) over served requests.
	LatencyMs *stats.CDF
	// Utilization is each satellite's busy-core-seconds divided by
	// elapsed core-seconds (indexed by satellite ID).
	Utilization []float64
	// SatsUsed counts satellites that served at least one request.
	SatsUsed int
	// PeakQueued is the maximum simultaneous queue depth summed over
	// satellites.
	PeakQueued int
}

// ShedTotal sums sheds across reasons.
func (r Result) ShedTotal() int {
	n := 0
	for _, v := range r.Shed {
		n += v
	}
	return n
}

// EngineStats reports how the sharded engine executed a run: the widest
// slice fan-out it used and how many slices went parallel vs serial. Purely
// informational — results are identical either way.
type EngineStats struct {
	// Workers is the largest shard count any slice fanned out to (1 when
	// every slice ran the serial loop).
	Workers int
	// ParallelSlices counts slices simulated across >1 worker.
	ParallelSlices int
	// SerialSlices counts slices that ran the serial loop (forced, below
	// the work threshold, or a globally load-coupled policy).
	SerialSlices int
}

// containsSorted reports whether sorted ascending xs contains v.
func containsSorted(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// validate rejects configurations both engine implementations refuse.
func validateConfig(size int, cfg Config) error {
	if len(cfg.Sites) == 0 {
		return fmt.Errorf("serve: no sites")
	}
	if cfg.Policy == nil {
		return fmt.Errorf("serve: nil policy")
	}
	if err := cfg.Server.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("serve: workers %d must be non-negative", cfg.Workers)
	}
	if cfg.Faults != nil && cfg.Faults.N() != size {
		return fmt.Errorf("serve: fault injector sized for %d sats, constellation has %d",
			cfg.Faults.N(), size)
	}
	return nil
}
