package serve

import (
	"fmt"
	"math"
)

// Candidate is one satellite a request could be routed to: its current
// ground-to-satellite propagation delay plus the dynamic load signals the
// engine refreshes before every policy decision.
type Candidate struct {
	// SatID is the satellite.
	SatID int
	// OneWayMs is the ground-to-satellite propagation delay.
	OneWayMs float64
	// FreeAtSec is the earliest simulated time a core on the satellite
	// frees up (<= now when a core is idle).
	FreeAtSec float64
	// Queued is the number of requests admitted to the satellite but not
	// yet completed.
	Queued int
	// LifeSec is how long the satellite stays visible from the requesting
	// site, at the engine's refresh granularity (capped at the lookahead
	// horizon). Zero when it sets before the next refresh.
	LifeSec float64
}

// Policy selects which candidate satellite serves a request. Pick returns
// an index into cands, or -1 to refuse (the engine then sheds the request).
// prev is the satellite that served the site's previous request (-1 for
// none); policies that keep affinity use it. cands is never empty and is
// ordered by ascending OneWayMs; implementations must be deterministic
// functions of their arguments.
type Policy interface {
	Name() string
	Pick(nowSec float64, prev int, cands []Candidate) int
}

// sliceLocalPolicy marks built-in policies whose Pick is a pure function of
// (prev, cands): it reads neither nowSec nor the FreeAtSec/Queued load
// signals, and re-picks its own previous choice (Pick(Pick(prev, cands),
// cands) selects the same satellite). Those properties make the pick
// constant per site within a refresh slice, which is what lets the sharded
// engine resolve routing once per (site, slice) and fan the simulation out
// across satellites. The marker is deliberately unexported: external
// policies cannot claim it, so they always get the order-exact serial loop.
type sliceLocalPolicy interface{ sliceLocal() }

// Nearest always routes to the lowest-propagation visible satellite — the
// §3.1 edge-computing baseline: minimal propagation, but one server absorbs
// a whole site's load.
func Nearest() Policy { return nearest{} }

type nearest struct{}

func (nearest) Name() string { return "nearest" }

func (nearest) sliceLocal() {}

func (nearest) Pick(nowSec float64, prev int, cands []Candidate) int {
	idx, best := -1, math.Inf(1)
	for i := range cands {
		if cands[i].OneWayMs < best {
			best = cands[i].OneWayMs
			idx = i
		}
	}
	return idx
}

// LeastLoaded routes to the satellite with the earliest predicted
// completion, counting both the queue ahead and the propagation to reach
// it — spreads a hot site across its footprint at a small propagation cost.
func LeastLoaded() Policy { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(nowSec float64, prev int, cands []Candidate) int {
	idx, best := -1, math.Inf(1)
	for i := range cands {
		// Earliest predicted service start including propagation: the same
		// ETA the single-site edge simulation has always used.
		eta := math.Max(cands[i].FreeAtSec, nowSec) + cands[i].OneWayMs/1000
		if eta < best {
			best = eta
			idx = i
		}
	}
	return idx
}

// DefaultStickyBand is the fractional latency slack Sticky trades for
// affinity longevity — the paper's hand-off Sticky band.
const DefaultStickyBand = 0.10

// Sticky keeps a site attached to the satellite that served it last for as
// long as it stays visible, and re-attaches by remaining visibility when it
// sets — the request-serving mirror of the fleet planner's Sticky
// re-placement, so request affinity follows the same hand-off cadence.
// band is the fractional latency slack a longer-lived candidate may cost
// over the nearest (<= 0 uses DefaultStickyBand).
func Sticky(band float64) Policy {
	if band <= 0 {
		band = DefaultStickyBand
	}
	return sticky{band: band}
}

type sticky struct{ band float64 }

func (sticky) Name() string { return "sticky" }

func (sticky) sliceLocal() {}

func (s sticky) Pick(nowSec float64, prev int, cands []Candidate) int {
	minMs := math.Inf(1)
	for i := range cands {
		if cands[i].SatID == prev {
			return i // still visible: hold the affinity
		}
		if cands[i].OneWayMs < minMs {
			minMs = cands[i].OneWayMs
		}
	}
	// Hand-off moment: re-attach to the longest-visible candidate inside
	// the latency band (ties: lower latency, then lower ID) so the next
	// hand-off is as far away as the band allows.
	bound := minMs * (1 + s.band)
	idx := -1
	for i := range cands {
		c := cands[i]
		if c.OneWayMs > bound {
			continue
		}
		if idx < 0 {
			idx = i
			continue
		}
		b := cands[idx]
		if c.LifeSec != b.LifeSec {
			if c.LifeSec > b.LifeSec {
				idx = i
			}
			continue
		}
		if c.OneWayMs != b.OneWayMs {
			if c.OneWayMs < b.OneWayMs {
				idx = i
			}
			continue
		}
		if c.SatID < b.SatID {
			idx = i
		}
	}
	return idx
}

// Policies returns the three built-in routing policies in comparison order.
func Policies() []Policy {
	return []Policy{Nearest(), LeastLoaded(), Sticky(0)}
}

// ByName resolves a built-in policy name (as reported by Policy.Name).
func ByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("serve: unknown policy %q (want nearest, least-loaded, sticky)", name)
}
