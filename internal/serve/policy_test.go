package serve

import "testing"

func TestNearestPicksMinPropagation(t *testing.T) {
	p := Nearest()
	cands := []Candidate{
		{SatID: 4, OneWayMs: 2.0},
		{SatID: 1, OneWayMs: 3.5},
		{SatID: 9, OneWayMs: 5.0},
	}
	if got := p.Pick(0, -1, cands); got != 0 {
		t.Fatalf("nearest picked %d, want 0", got)
	}
	// Ties break to the first (lowest-index) candidate.
	cands[1].OneWayMs = 2.0
	if got := p.Pick(0, -1, cands); got != 0 {
		t.Fatalf("nearest tie picked %d, want 0", got)
	}
}

func TestLeastLoadedPrefersIdleOverNear(t *testing.T) {
	p := LeastLoaded()
	now := 100.0
	cands := []Candidate{
		{SatID: 0, OneWayMs: 2.0, FreeAtSec: 103.0}, // near but backlogged
		{SatID: 1, OneWayMs: 4.0, FreeAtSec: 0},     // idle, slightly farther
	}
	if got := p.Pick(now, -1, cands); got != 1 {
		t.Fatalf("least-loaded picked %d, want idle candidate 1", got)
	}
	// With equal backlog the nearer one wins (smaller propagation term).
	cands[1].FreeAtSec = 103.0
	if got := p.Pick(now, -1, cands); got != 0 {
		t.Fatalf("least-loaded picked %d, want nearer candidate 0", got)
	}
}

func TestStickyHoldsPrevWhileVisible(t *testing.T) {
	p := Sticky(0)
	cands := []Candidate{
		{SatID: 2, OneWayMs: 2.0, LifeSec: 60},
		{SatID: 7, OneWayMs: 3.0, LifeSec: 180},
	}
	if got := p.Pick(0, 7, cands); got != 1 {
		t.Fatalf("sticky abandoned visible prev: got %d", got)
	}
}

func TestStickyHandoffPicksLongestLivedInBand(t *testing.T) {
	p := Sticky(0.10)
	cands := []Candidate{
		{SatID: 2, OneWayMs: 2.00, LifeSec: 60},
		{SatID: 7, OneWayMs: 2.10, LifeSec: 180}, // within 10% band, lives longest
		{SatID: 9, OneWayMs: 2.50, LifeSec: 600}, // outside the band
	}
	if got := p.Pick(0, -1, cands); got != 1 {
		t.Fatalf("sticky hand-off picked %d, want 1", got)
	}
	// Life ties inside the band break to lower latency, then lower ID.
	cands[1].LifeSec = 60
	if got := p.Pick(0, -1, cands); got != 0 {
		t.Fatalf("sticky tie picked %d, want 0", got)
	}
}

func TestPoliciesAndByName(t *testing.T) {
	want := []string{"nearest", "least-loaded", "sticky"}
	ps := Policies()
	if len(ps) != len(want) {
		t.Fatalf("Policies() returned %d policies", len(ps))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Fatalf("policy %d = %q, want %q", i, p.Name(), want[i])
		}
		got, err := ByName(want[i])
		if err != nil || got.Name() != want[i] {
			t.Fatalf("ByName(%q) = %v, %v", want[i], got, err)
		}
	}
	if _, err := ByName("random"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}
