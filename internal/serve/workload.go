package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cities"
	"repro/internal/geo"
)

// Site is one request-originating ground location.
type Site struct {
	// Name labels the site in traces and reports.
	Name string
	// Loc is the site's location; ECEF its surface vector.
	Loc  geo.LatLon
	ECEF geo.Vec3
	// Weight is the site's share of the aggregate arrival rate (any
	// positive scale; the generator normalises).
	Weight float64
}

// SitesFromCities builds request sites at the n largest population centers,
// weighted by metro population — the same city list behind Figures 4/5, so
// the request load lands where the paper's users are.
func SitesFromCities(n int) []Site {
	cs := cities.TopN(n)
	out := make([]Site, len(cs))
	for i, c := range cs {
		out[i] = Site{
			Name:   c.Name,
			Loc:    c.Loc,
			ECEF:   c.Loc.ECEF(),
			Weight: float64(c.Population),
		}
	}
	return out
}

// Workload describes the synthetic request stream over a set of sites.
// Arrivals are a per-site Poisson process modulated by a diurnal curve in
// local solar time; service times are log-normal (heavy-tailed, like real
// request mixes). Everything is drawn from Seed: the same (sites, workload,
// horizon) triple reproduces the same request trace bit-for-bit.
type Workload struct {
	// Seed fixes every draw.
	Seed int64
	// RatePerSec is the aggregate mean arrival rate across all sites
	// (site i receives the Weight-proportional share).
	RatePerSec float64
	// ServiceMedianMs is the log-normal median service time on one core.
	ServiceMedianMs float64
	// ServiceSigma is the log-normal shape (default 0.5; larger = heavier
	// tail).
	ServiceSigma float64
	// DiurnalAmplitude in [0,1) swings each site's rate by ±amplitude
	// around its mean over the local solar day (0 = flat). The mean rate
	// is preserved.
	DiurnalAmplitude float64
	// PeakLocalHour is the local solar hour of peak demand (default 20,
	// the evening peak of interactive services).
	PeakLocalHour float64
}

func (w Workload) withDefaults() Workload {
	if w.ServiceSigma == 0 {
		w.ServiceSigma = 0.5
	}
	if w.PeakLocalHour == 0 {
		w.PeakLocalHour = 20
	}
	return w
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if w.RatePerSec <= 0 {
		return fmt.Errorf("serve: arrival rate %v must be positive", w.RatePerSec)
	}
	if w.ServiceMedianMs <= 0 {
		return fmt.Errorf("serve: service median %v ms must be positive", w.ServiceMedianMs)
	}
	if w.ServiceSigma < 0 {
		return fmt.Errorf("serve: service sigma %v must be non-negative", w.ServiceSigma)
	}
	if w.DiurnalAmplitude < 0 || w.DiurnalAmplitude >= 1 {
		return fmt.Errorf("serve: diurnal amplitude %v outside [0,1)", w.DiurnalAmplitude)
	}
	return nil
}

// Request is one request in a workload trace: arrival time, originating
// site index, and the CPU time it needs on one core.
type Request struct {
	TSec      float64 `json:"t_sec"`
	Site      int     `json:"site"`
	ServiceMs float64 `json:"service_ms"`
}

// localHour returns the local solar hour of day at a longitude.
func localHour(tSec, lonDeg float64) float64 {
	h := math.Mod(tSec/3600+lonDeg/15, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// diurnalFactor is the rate multiplier at time t for a site: 1 ±
// amplitude on a cosine over the local solar day, peaking at peakHour.
func diurnalFactor(tSec, lonDeg, amplitude, peakHour float64) float64 {
	if amplitude == 0 {
		return 1
	}
	phase := 2 * math.Pi * (localHour(tSec, lonDeg) - peakHour) / 24
	return 1 + amplitude*math.Cos(phase)
}

// Generate draws the request trace for the workload over [0, horizonSec):
// per-site thinned Poisson arrivals under the diurnal curve, log-normal
// service times, merged in time order (ties broken by site). The trace is
// deterministic in (sites, w, horizonSec).
func Generate(sites []Site, w Workload, horizonSec float64) ([]Request, error) {
	w = w.withDefaults()
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("serve: no sites")
	}
	if horizonSec <= 0 {
		return nil, fmt.Errorf("serve: horizon %v must be positive", horizonSec)
	}
	totalW := 0.0
	for i, s := range sites {
		if s.Weight < 0 {
			return nil, fmt.Errorf("serve: site %d (%s) has negative weight", i, s.Name)
		}
		totalW += s.Weight
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("serve: all site weights are zero")
	}

	var out []Request
	for si, s := range sites {
		rate := w.RatePerSec * s.Weight / totalW
		if rate == 0 {
			continue
		}
		// Per-site stream with its own deterministic sub-seed, so adding or
		// reordering sites never perturbs another site's draw.
		r := rand.New(rand.NewSource(w.Seed*1_000_003 + int64(si)))
		// Thinning: draw a homogeneous process at the diurnal peak rate and
		// keep each arrival with probability rate(t)/peak.
		peak := rate * (1 + w.DiurnalAmplitude)
		sigma := w.ServiceSigma
		for t := 0.0; ; {
			t += r.ExpFloat64() / peak
			if t >= horizonSec {
				break
			}
			keep := diurnalFactor(t, s.Loc.LonDeg, w.DiurnalAmplitude, w.PeakLocalHour) / (1 + w.DiurnalAmplitude)
			if r.Float64() >= keep {
				continue
			}
			out = append(out, Request{
				TSec:      t,
				Site:      si,
				ServiceMs: w.ServiceMedianMs * math.Exp(r.NormFloat64()*sigma),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TSec != out[j].TSec {
			return out[i].TSec < out[j].TSec
		}
		return out[i].Site < out[j].Site
	})
	return out, nil
}
