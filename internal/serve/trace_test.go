package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestTraceRoundTrip(t *testing.T) {
	w := Workload{Seed: 5, RatePerSec: 40, ServiceMedianMs: 8}
	sites := []Site{{Name: "gw", Loc: geo.LatLon{LatDeg: 1, LonDeg: 2}, Weight: 1}}
	orig, err := Generate(sites, w, 120)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("request %d changed: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := "{\"t_sec\":1,\"site\":0,\"service_ms\":5}\n\n{\"t_sec\":2,\"site\":1,\"service_ms\":6}\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Site != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := []string{
		"not json\n",
		"{\"t_sec\":-1,\"site\":0,\"service_ms\":5}\n", // negative arrival
		"{\"t_sec\":1,\"site\":-2,\"service_ms\":5}\n", // negative site
		"{\"t_sec\":1,\"site\":0,\"service_ms\":0}\n",  // zero service
		"{\"t_sec\":1,\"site\":0,\"service_ms\":-3}\n", // negative service
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}
