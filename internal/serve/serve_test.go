package serve

import (
	"testing"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/obs"
)

func testConst(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("e", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 15},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testSites() []Site {
	return []Site{
		{Name: "abuja", Loc: geo.LatLon{LatDeg: 9.06, LonDeg: 7.49}, Weight: 1},
		{Name: "sao-paulo", Loc: geo.LatLon{LatDeg: -23.53, LonDeg: -46.63}, Weight: 1},
	}
}

func testServer() compute.ServerSpec {
	return compute.ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1}
}

func testTrace(t testing.TB, rate float64, horizonSec float64) []Request {
	t.Helper()
	reqs, err := Generate(testSites(), Workload{Seed: 21, RatePerSec: rate, ServiceMedianMs: 5}, horizonSec)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func runPolicy(t testing.TB, p Policy, rate float64, cfg Config) Result {
	t.Helper()
	c := testConst(t)
	cfg.Sites = testSites()
	cfg.Policy = p
	if cfg.Server == (compute.ServerSpec{}) {
		cfg.Server = testServer()
	}
	if cfg.RefreshSec == 0 {
		cfg.RefreshSec = 15
	}
	eng, err := NewEngine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(testTrace(t, rate, 60)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(90)
	return eng.Result()
}

func TestEngineLightLoad(t *testing.T) {
	r := runPolicy(t, Nearest(), 20, Config{})
	if r.Offered < 60*20/2 {
		t.Fatalf("offered only %d requests", r.Offered)
	}
	if r.Served != r.Offered-r.ShedTotal()-r.InFlight {
		t.Fatalf("accounting broken: %+v", r)
	}
	if r.ShedTotal() > 0 {
		t.Fatalf("light load shed %d requests: %v", r.ShedTotal(), r.Shed)
	}
	// End-to-end = 2x propagation + service: above the physical floor
	// (550 km at lightspeed, twice) and far below any queueing regime.
	med := r.LatencyMs.Median()
	if med < 2*550.0/299792.458*1000 {
		t.Fatalf("median %v ms below the physical floor", med)
	}
	if med > 50 {
		t.Fatalf("light-load median %v ms implies queueing", med)
	}
	if r.SatsUsed < 1 || r.SatsUsed > 8 {
		t.Fatalf("nearest policy used %d satellites", r.SatsUsed)
	}
	for id, u := range r.Utilization {
		if u < 0 || u > 1 {
			t.Fatalf("satellite %d utilization %v out of range", id, u)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	for _, p := range Policies() {
		a := runPolicy(t, p, 100, Config{})
		b := runPolicy(t, p, 100, Config{})
		if a.Served != b.Served || a.ShedTotal() != b.ShedTotal() ||
			a.LatencyMs.Quantile(0.99) != b.LatencyMs.Quantile(0.99) ||
			a.SatsUsed != b.SatsUsed {
			t.Fatalf("%s not deterministic: %+v vs %+v", p.Name(), a, b)
		}
	}
}

func TestLeastLoadedSpreadsOverload(t *testing.T) {
	// One core per satellite at 5 ms/request sustains 200 req/s; offer ~600
	// per site so nearest saturates its single footprint satellite.
	srv := compute.ServerSpec{Cores: 1, MemoryGB: 8, PowerCapFraction: 1}
	rn := runPolicy(t, Nearest(), 1200, Config{Server: srv})
	rl := runPolicy(t, LeastLoaded(), 1200, Config{Server: srv})
	if rl.SatsUsed <= rn.SatsUsed {
		t.Fatalf("least-loaded used %d satellites vs nearest %d", rl.SatsUsed, rn.SatsUsed)
	}
	if rl.LatencyMs.Quantile(0.99) >= rn.LatencyMs.Quantile(0.99) {
		t.Fatalf("least-loaded p99 %v not below nearest %v",
			rl.LatencyMs.Quantile(0.99), rn.LatencyMs.Quantile(0.99))
	}
}

func TestQueueFullSheds(t *testing.T) {
	srv := compute.ServerSpec{Cores: 1, MemoryGB: 8, PowerCapFraction: 1}
	r := runPolicy(t, Nearest(), 2000, Config{Server: srv, QueueCap: 4})
	if r.Shed[ShedQueueFull] == 0 {
		t.Fatalf("bounded queue never shed under overload: %+v", r)
	}
	if r.PeakQueued == 0 {
		t.Fatal("no queueing observed under overload")
	}
	// Unbounded queue absorbs the same load without shedding.
	u := runPolicy(t, Nearest(), 2000, Config{Server: srv, QueueCap: -1})
	if u.Shed[ShedQueueFull] != 0 {
		t.Fatalf("unbounded queue shed %d requests", u.Shed[ShedQueueFull])
	}
}

func TestNoCoverageSheds(t *testing.T) {
	c := testConst(t)
	eng, err := NewEngine(c, Config{
		Sites:  []Site{{Name: "pole", Loc: geo.LatLon{LatDeg: 89.0}, Weight: 1}},
		Policy: Nearest(),
		Server: testServer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed([]Request{{TSec: 1, Site: 0, ServiceMs: 5}, {TSec: 2, Site: 0, ServiceMs: 5}}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10)
	r := eng.Result()
	if r.Shed[ShedNoCoverage] != 2 || r.Served != 0 {
		t.Fatalf("polar site: %+v", r)
	}
}

func TestFaultsShedGracefully(t *testing.T) {
	c := testConst(t)
	// Seconds-scale MTBF with an hour-long MTTR: the whole constellation is
	// down by the first refresh, so every later request sheds as sat_down.
	inj, err := faults.New(c.Size(), faults.Config{Seed: 9, SatMTBFHours: 0.0005, SatMTTRSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(c, Config{
		Sites:      testSites(),
		Policy:     LeastLoaded(),
		Server:     testServer(),
		RefreshSec: 15,
		Faults:     inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(testTrace(t, 50, 60)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(90)
	r := eng.Result()
	if r.Shed[ShedSatDown] == 0 {
		t.Fatalf("no sat_down sheds under total failure: %+v", r)
	}
	if r.Served+r.ShedTotal()+r.InFlight != r.Offered {
		t.Fatalf("accounting broken under faults: %+v", r)
	}
}

func TestStickyHoldsAffinity(t *testing.T) {
	r := runPolicy(t, Sticky(0), 50, Config{})
	if r.Served == 0 {
		t.Fatalf("sticky served nothing: %+v", r)
	}
	// Affinity means fewer distinct satellites than request spreading.
	if r.SatsUsed > 2*len(testSites())+2 {
		t.Fatalf("sticky used %d satellites", r.SatsUsed)
	}
}

func TestEngineMetrics(t *testing.T) {
	c := testConst(t)
	reg := obs.NewRegistry()
	eng, err := NewEngine(c, Config{
		Sites:    testSites(),
		Policy:   Nearest(),
		Server:   testServer(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(testTrace(t, 20, 30)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(60)
	r := eng.Result()
	req := reg.CounterVec("serve_requests_total", "", "policy").With("nearest")
	srv := reg.CounterVec("serve_served_total", "", "policy").With("nearest")
	if int(req.Value()) != r.Offered || int(srv.Value()) != r.Served {
		t.Fatalf("metrics disagree with result: req=%d srv=%d vs %+v",
			req.Value(), srv.Value(), r)
	}
	q := reg.QuantileVec("serve_request_ms", "", "policy").With("nearest")
	if int(q.Count()) != r.Served {
		t.Fatalf("latency quantile count %d, served %d", q.Count(), r.Served)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	c := testConst(t)
	if _, err := NewEngine(nil, Config{Sites: testSites(), Policy: Nearest()}); err == nil {
		t.Fatal("nil constellation accepted")
	}
	if _, err := NewEngine(c, Config{Policy: Nearest()}); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := NewEngine(c, Config{Sites: testSites()}); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := compute.ServerSpec{Cores: 4, MemoryGB: 64, PowerCapFraction: 2}
	if _, err := NewEngine(c, Config{Sites: testSites(), Policy: Nearest(), Server: bad}); err == nil {
		t.Fatal("invalid server spec accepted")
	}
	inj, err := faults.New(3, faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(c, Config{Sites: testSites(), Policy: Nearest(), Faults: inj}); err == nil {
		t.Fatal("mis-sized fault injector accepted")
	}
	eng, err := NewEngine(c, Config{Sites: testSites(), Policy: Nearest(), Server: testServer()})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed([]Request{{TSec: 1, Site: 99, ServiceMs: 5}}); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if err := eng.Feed([]Request{{TSec: 1, Site: 0, ServiceMs: 0}}); err == nil {
		t.Fatal("invalid request accepted")
	}
}
