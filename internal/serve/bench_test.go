package serve

import (
	"testing"

	"repro/internal/compute"
)

// benchServe drives one policy over a fixed 2-minute trace and reports
// wall-clock request throughput plus the simulated p99 latency — the pair
// CI records into BENCH_serve.json.
func benchServe(b *testing.B, p Policy) {
	c := testConst(b)
	sites := SitesFromCities(12)
	reqs, err := Generate(sites, Workload{Seed: 5, RatePerSec: 400, ServiceMedianMs: 10, DiurnalAmplitude: 0.3}, 120)
	if err != nil {
		b.Fatal(err)
	}
	srv := compute.ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1}
	var last Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(c, Config{Sites: sites, Policy: p, Server: srv, RefreshSec: 30})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Feed(reqs); err != nil {
			b.Fatal(err)
		}
		eng.RunUntil(150)
		last = eng.Result()
	}
	b.StopTimer()
	if last.Served == 0 {
		b.Fatal("benchmark served no requests")
	}
	b.ReportMetric(float64(last.Offered*b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(last.LatencyMs.Quantile(0.99), "p99-ms")
}

func BenchmarkServeNearest(b *testing.B)     { benchServe(b, Nearest()) }
func BenchmarkServeLeastLoaded(b *testing.B) { benchServe(b, LeastLoaded()) }
func BenchmarkServeSticky(b *testing.B)      { benchServe(b, Sticky(0)) }
