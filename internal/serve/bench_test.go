package serve

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/compute"
)

// benchServe drives one policy over a fixed 2-minute trace and reports
// wall-clock request throughput plus the simulated p99 latency — the pair
// CI records into BENCH_serve.json.
func benchServe(b *testing.B, p Policy) {
	c := testConst(b)
	sites := SitesFromCities(12)
	reqs, err := Generate(sites, Workload{Seed: 5, RatePerSec: 400, ServiceMedianMs: 10, DiurnalAmplitude: 0.3}, 120)
	if err != nil {
		b.Fatal(err)
	}
	srv := compute.ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1}
	var last Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(c, Config{Sites: sites, Policy: p, Server: srv, RefreshSec: 30})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Feed(reqs); err != nil {
			b.Fatal(err)
		}
		eng.RunUntil(150)
		last = eng.Result()
	}
	b.StopTimer()
	if last.Served == 0 {
		b.Fatal("benchmark served no requests")
	}
	b.ReportMetric(float64(last.Offered*b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(last.LatencyMs.Quantile(0.99), "p99-ms")
}

func BenchmarkServeNearest(b *testing.B)     { benchServe(b, Nearest()) }
func BenchmarkServeLeastLoaded(b *testing.B) { benchServe(b, LeastLoaded()) }
func BenchmarkServeSticky(b *testing.B)      { benchServe(b, Sticky(0)) }

// BenchmarkServeParallel measures what the sharded engine's adaptive
// fan-out buys over the strategy it rejected on this host, plus the
// aggregate replay throughput of the configuration it chose. With spare
// CPUs the adaptive engine fans refresh slices out across workers and the
// baseline is the serial loop (Workers: 1) — the genuine multi-core
// speedup. Without them (single-CPU hosts, CPU-quota'd containers) the
// adaptive engine falls back to the serial loop and the baseline is the
// forced 8-way fan-out it declined, run under the inflated GOMAXPROCS
// such containers default to (worker goroutines time-slicing one core
// through the slice barriers). Both sides take the minimum over
// interleaved repetitions so scheduler noise doesn't decide the ratio,
// and both must produce identical results — the determinism contract the
// sharding is built around.
func BenchmarkServeParallel(b *testing.B) {
	c := testConst(b)
	sites := SitesFromCities(12)
	// Heavy trace, generated outside the timer: every 30 s slice clears
	// the adaptive serial-work threshold, and the offered load keeps the
	// 8-core servers busy without saturating them (a saturated trace
	// mostly measures queue churn, not admission throughput).
	reqs, err := Generate(sites, Workload{Seed: 5, RatePerSec: 4000, ServiceMedianMs: 10, DiurnalAmplitude: 0.3}, 100)
	if err != nil {
		b.Fatal(err)
	}
	srv := compute.ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1}
	run := func(workers int) (Result, time.Duration) {
		eng, err := NewEngine(c, Config{Sites: sites, Policy: Nearest(), Server: srv, RefreshSec: 30, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Feed(reqs); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		eng.RunUntil(120)
		return eng.Result(), time.Since(start)
	}
	probe, err := NewEngine(c, Config{Sites: sites, Policy: Nearest(), Server: srv, RefreshSec: 30})
	if err != nil {
		b.Fatal(err)
	}
	parallelChosen := probe.shardsFor(len(reqs)) > 1
	baseWorkers := 1
	if !parallelChosen {
		baseWorkers = 8
		if runtime.GOMAXPROCS(0) <= 1 {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
		}
	}
	const reps = 6
	adaptNs, baseNs := int64(math.MaxInt64), int64(math.MaxInt64)
	var adaptRes, baseRes Result
	timeOnce := func(dst *int64, res *Result, workers int) {
		r, el := run(workers)
		if ns := el.Nanoseconds(); ns < *dst {
			*dst = ns
		}
		*res = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			if r&1 == 0 {
				timeOnce(&adaptNs, &adaptRes, 0)
				timeOnce(&baseNs, &baseRes, baseWorkers)
			} else {
				timeOnce(&baseNs, &baseRes, baseWorkers)
				timeOnce(&adaptNs, &adaptRes, 0)
			}
		}
	}
	b.StopTimer()
	if got, want := renderResult(adaptRes), renderResult(baseRes); got != want {
		b.Fatalf("adaptive and baseline engines diverged:\n--- adaptive ---\n%s\n--- baseline ---\n%s", got, want)
	}
	b.ReportMetric(float64(adaptRes.Offered)/(float64(adaptNs)/1e9), "req/s")
	b.ReportMetric(float64(baseNs)/float64(adaptNs), "serve-parallel-speedup-x")
}
