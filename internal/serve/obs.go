package serve

import "repro/internal/obs"

// metricsSet holds the serve metric families for one registry; every engine
// sharing a registry shares the families (label values keep policies apart).
type metricsSet struct {
	requests *obs.CounterVec  // serve_requests_total{policy}
	served   *obs.CounterVec  // serve_served_total{policy}
	shed     *obs.CounterVec  // serve_shed_total{policy,reason}
	latency  *obs.QuantileVec // serve_request_ms{policy}
	queue    *obs.GaugeVec    // serve_queue_depth{policy}
	inflight *obs.GaugeVec    // serve_inflight{policy}
	slices   *obs.CounterVec  // serve_slices_total{policy,mode}
	workers  *obs.GaugeVec    // serve_workers{policy}
}

func newMetricsSet(reg *obs.Registry) *metricsSet {
	if reg == nil {
		return nil
	}
	return &metricsSet{
		requests: reg.CounterVec("serve_requests_total",
			"Requests offered to the serving layer.", "policy"),
		served: reg.CounterVec("serve_served_total",
			"Requests served to completion.", "policy"),
		shed: reg.CounterVec("serve_shed_total",
			"Requests shed at admission, by reason.", "policy", "reason"),
		latency: reg.QuantileVec("serve_request_ms",
			"End-to-end request latency (uplink + queue + service + downlink) in ms.", "policy"),
		queue: reg.GaugeVec("serve_queue_depth",
			"Requests admitted and waiting for a core, summed over satellites.", "policy"),
		inflight: reg.GaugeVec("serve_inflight",
			"Requests admitted and not yet completed.", "policy"),
		slices: reg.CounterVec("serve_slices_total",
			"Refresh-aligned simulation slices executed, by mode (parallel fan-out vs serial loop).",
			"policy", "mode"),
		workers: reg.GaugeVec("serve_workers",
			"Widest per-slice worker fan-out the engine has used.", "policy"),
	}
}
