package serve

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/faults"
	"repro/internal/obs"
)

// diffScenario is one differential configuration: the sharded engine must
// match the legacy oracle byte for byte on every derived quantity.
type diffScenario struct {
	name     string
	server   compute.ServerSpec
	queueCap int
	chaos    bool
}

func diffScenarios() []diffScenario {
	return []diffScenario{
		{name: "plain", server: compute.ServerSpec{Cores: 8, MemoryGB: 64, PowerCapFraction: 1}},
		{name: "tight", server: compute.ServerSpec{Cores: 1, MemoryGB: 8, PowerCapFraction: 1}, queueCap: 2},
		{name: "chaos", server: compute.ServerSpec{Cores: 2, MemoryGB: 16, PowerCapFraction: 1}, chaos: true},
	}
}

func (sc diffScenario) config(t testing.TB, c *constellation.Constellation, p Policy, workers int) Config {
	t.Helper()
	cfg := Config{
		Sites:      testSites(),
		Policy:     p,
		Server:     sc.server,
		QueueCap:   sc.queueCap,
		RefreshSec: 15,
		Workers:    workers,
	}
	if sc.chaos {
		// Moderate failure pressure: a changing mix of up and down
		// satellites at each refresh, so sat_down shedding and candidate
		// churn both happen without killing the whole constellation.
		inj, err := faults.New(c.Size(), faults.Config{Seed: 9, SatMTBFHours: 0.02, SatMTTRSec: 120})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	return cfg
}

// runShardedSteps drives the sharded engine like fleetsim does: fed once,
// advanced in fixed steps (deliberately unaligned with RefreshSec so slices
// split across RunUntil calls).
func runShardedSteps(t testing.TB, c *constellation.Constellation, cfg Config, reqs []Request, horizon, step float64) Result {
	t.Helper()
	eng, err := NewEngine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(reqs); err != nil {
		t.Fatal(err)
	}
	for ts := step; ts < horizon; ts += step {
		eng.RunUntil(ts)
	}
	eng.RunUntil(horizon)
	return eng.Result()
}

func runLegacyOracle(t testing.TB, c *constellation.Constellation, cfg Config, reqs []Request, horizon float64) Result {
	t.Helper()
	eng, err := newLegacyEngine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(reqs); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(horizon)
	return eng.Result()
}

// renderResult canonicalizes a Result into a byte string: every counter,
// per-reason sheds in report order, latency quantiles, and per-satellite
// utilization, all at full float precision.
func renderResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s offered=%d served=%d inflight=%d sats=%d peakq=%d\n",
		r.Policy, r.Offered, r.Served, r.InFlight, r.SatsUsed, r.PeakQueued)
	for _, reason := range ShedReasons {
		fmt.Fprintf(&b, "shed[%s]=%d\n", reason, r.Shed[reason])
	}
	fmt.Fprintf(&b, "lat n=%d", r.LatencyMs.N())
	if r.LatencyMs.N() > 0 {
		fmt.Fprintf(&b, " min=%x max=%x mean=%x p50=%x p90=%x p99=%x p999=%x",
			r.LatencyMs.Min(), r.LatencyMs.Max(), r.LatencyMs.Mean(),
			r.LatencyMs.Quantile(0.5), r.LatencyMs.Quantile(0.9),
			r.LatencyMs.Quantile(0.99), r.LatencyMs.Quantile(0.999))
	}
	b.WriteString("\nutil=")
	for i, u := range r.Utilization {
		if u != 0 {
			fmt.Fprintf(&b, "%d:%x ", i, u)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// TestShardedMatchesLegacy is the differential pin: for every policy,
// scenario, and worker count, the sharded engine's results are identical to
// the single-threaded netsim oracle — counters, shed reasons, peak queue,
// utilization, and the full shape of the latency distribution.
func TestShardedMatchesLegacy(t *testing.T) {
	c := testConst(t)
	reqs := testTrace(t, 300, 60)
	for _, p := range Policies() {
		for _, sc := range diffScenarios() {
			oracle := renderResult(runLegacyOracle(t, c, sc.config(t, c, p, 0), reqs, 90))
			for _, workers := range []int{1, 2, 8} {
				got := renderResult(runShardedSteps(t, c, sc.config(t, c, p, workers), reqs, 90, 10))
				if got != oracle {
					t.Errorf("%s/%s workers=%d diverged from legacy:\n got: %s\nwant: %s",
						p.Name(), sc.name, workers, got, oracle)
				}
			}
		}
	}
}

// TestShardedGOMAXPROCSInvariant pins byte-identical results across
// GOMAXPROCS 1/2/8 at a forced 8-way fan-out: scheduling freedom must never
// leak into outputs.
func TestShardedGOMAXPROCSInvariant(t *testing.T) {
	c := testConst(t)
	reqs := testTrace(t, 300, 60)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, p := range Policies() {
		sc := diffScenarios()[1] // tight: queueing + shedding active
		var want string
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			got := renderResult(runShardedSteps(t, c, sc.config(t, c, p, 8), reqs, 90, 15))
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("%s GOMAXPROCS=%d diverged:\n got: %s\nwant: %s", p.Name(), procs, got, want)
			}
		}
	}
}

// TestTraceReplayShardingDeterminism replays one JSONL trace at workers=1
// and workers=8 and byte-compares the reports and shed-reason counts — the
// round-trip a recorded production trace would take.
func TestTraceReplayShardingDeterminism(t *testing.T) {
	c := testConst(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, testTrace(t, 400, 60)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	srv := compute.ServerSpec{Cores: 2, MemoryGB: 16, PowerCapFraction: 1}
	run := func(workers int) string {
		reqs, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		for _, p := range Policies() {
			eng, err := NewEngine(c, Config{
				Sites: testSites(), Policy: p, Server: srv,
				QueueCap: 4, RefreshSec: 15, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Feed(reqs); err != nil {
				t.Fatal(err)
			}
			eng.RunUntil(90)
			out.WriteString(renderResult(eng.Result()))
		}
		return out.String()
	}
	serial, sharded := run(1), run(8)
	if serial != sharded {
		t.Fatalf("trace replay diverged between workers=1 and workers=8:\n%s\nvs\n%s", serial, sharded)
	}
}

// TestFeedNonMonotonic pins the typed error: out-of-order feeds are
// rejected instead of silently corrupting slice order.
func TestFeedNonMonotonic(t *testing.T) {
	c := testConst(t)
	eng, err := NewEngine(c, Config{Sites: testSites(), Policy: Nearest(), Server: testServer()})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed([]Request{
		{TSec: 1, Site: 0, ServiceMs: 5},
		{TSec: 1, Site: 1, ServiceMs: 5}, // equal timestamps are fine
		{TSec: 2, Site: 0, ServiceMs: 5},
	}); err != nil {
		t.Fatalf("monotonic feed rejected: %v", err)
	}
	err = eng.Feed([]Request{{TSec: 1.5, Site: 0, ServiceMs: 5}})
	if !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("out-of-order feed: got %v, want ErrNonMonotonic", err)
	}
	eng.RunUntil(10)
	// Feeding behind the simulation clock is equally out of order.
	err = eng.Feed([]Request{{TSec: 5, Site: 0, ServiceMs: 5}})
	if !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("feed behind sim time: got %v, want ErrNonMonotonic", err)
	}
	if err := eng.Feed([]Request{{TSec: 12, Site: 0, ServiceMs: 5}}); err != nil {
		t.Fatalf("future feed after run rejected: %v", err)
	}
}

// TestEngineStats pins the execution-shape accounting: forced fan-out goes
// parallel for slice-local policies, stays serial for load-coupled ones,
// and adaptive mode falls back to serial under light load.
func TestEngineStats(t *testing.T) {
	c := testConst(t)
	reqs := testTrace(t, 300, 60)
	run := func(p Policy, workers int) EngineStats {
		eng, err := NewEngine(c, Config{
			Sites: testSites(), Policy: p, Server: testServer(),
			RefreshSec: 15, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Feed(reqs); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(90)
		return eng.Stats()
	}
	if st := run(Nearest(), 4); st.Workers != 4 || st.ParallelSlices == 0 || st.SerialSlices != 0 {
		t.Fatalf("forced fan-out stats: %+v", st)
	}
	if st := run(LeastLoaded(), 4); st.Workers != 1 || st.ParallelSlices != 0 || st.SerialSlices == 0 {
		t.Fatalf("load-coupled policy must run serial: %+v", st)
	}
	if st := run(Sticky(0), 1); st.Workers != 1 || st.ParallelSlices != 0 {
		t.Fatalf("workers=1 stats: %+v", st)
	}
	// ~4.5k arrivals per 15 s slice: adaptive mode crosses the work
	// threshold only when spare CPUs exist.
	if st := run(Nearest(), 0); st.Workers > 1 && runtime.NumCPU() == 1 {
		t.Fatalf("adaptive fan-out on a single-CPU host: %+v", st)
	}
	if _, err := NewEngine(c, Config{Sites: testSites(), Policy: Nearest(), Server: testServer(), Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// TestShardedMetricsMatchLegacy compares the obs registry contents the two
// engines produce for an identical run.
func TestShardedMetricsMatchLegacy(t *testing.T) {
	c := testConst(t)
	reqs := testTrace(t, 200, 60)
	srv := compute.ServerSpec{Cores: 1, MemoryGB: 8, PowerCapFraction: 1}

	regL := obs.NewRegistry()
	lcfg := Config{Sites: testSites(), Policy: Nearest(), Server: srv, QueueCap: 2, RefreshSec: 15, Registry: regL}
	_ = runLegacyOracle(t, c, lcfg, reqs, 90)

	regS := obs.NewRegistry()
	scfg := lcfg
	scfg.Registry = regS
	scfg.Workers = 8
	_ = runShardedSteps(t, c, scfg, reqs, 90, 15)

	for _, name := range []string{"serve_requests_total", "serve_served_total"} {
		l := regL.CounterVec(name, "", "policy").With("nearest").Value()
		s := regS.CounterVec(name, "", "policy").With("nearest").Value()
		if l != s {
			t.Errorf("%s: legacy %d, sharded %d", name, l, s)
		}
	}
	for _, reason := range ShedReasons {
		l := regL.CounterVec("serve_shed_total", "", "policy", "reason").With("nearest", string(reason)).Value()
		s := regS.CounterVec("serve_shed_total", "", "policy", "reason").With("nearest", string(reason)).Value()
		if l != s {
			t.Errorf("serve_shed_total{%s}: legacy %d, sharded %d", reason, l, s)
		}
	}
	lq := regL.QuantileVec("serve_request_ms", "", "policy").With("nearest")
	sq := regS.QuantileVec("serve_request_ms", "", "policy").With("nearest")
	if lq.Count() != sq.Count() {
		t.Errorf("latency observations: legacy %d, sharded %d", lq.Count(), sq.Count())
	}
}
