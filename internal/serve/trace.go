package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTrace serialises a request trace as JSON Lines — one Request object
// per line — the interchange format for replaying a workload across runs
// or feeding externally captured traces into the engine.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range reqs {
		if err := enc.Encode(&reqs[i]); err != nil {
			return fmt.Errorf("serve: write trace line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL request trace written by WriteTrace (blank lines
// are skipped). It validates each record. Arrival times must be
// non-decreasing to be accepted by Engine.Feed, which rejects out-of-order
// feeds with ErrNonMonotonic; traces written by WriteTrace from Generate
// are already time-sorted.
func ReadTrace(r io.Reader) ([]Request, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Request
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(b, &req); err != nil {
			return nil, fmt.Errorf("serve: trace line %d: %w", line, err)
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("serve: trace line %d: %w", line, err)
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: read trace: %w", err)
	}
	return out, nil
}

// Validate reports whether the request is well-formed (site bounds are
// checked against the engine's site list at Feed time).
func (r Request) Validate() error {
	if r.TSec < 0 {
		return fmt.Errorf("request arrival %v before t=0", r.TSec)
	}
	if r.Site < 0 {
		return fmt.Errorf("request site %d negative", r.Site)
	}
	if r.ServiceMs <= 0 {
		return fmt.Errorf("request service time %v ms must be positive", r.ServiceMs)
	}
	return nil
}
