package feasibility

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperHeadlineNumbers(t *testing.T) {
	// §4's summary quantities with the paper's defaults.
	r, err := Analyze(Default())
	if err != nil {
		t.Fatal(err)
	}
	// "the weight is 6% of a satellite's weight"
	if !almostEq(r.WeightFraction, 0.06, 0.005) {
		t.Errorf("weight fraction = %.3f, want ≈0.06", r.WeightFraction)
	}
	// "the volume is 1%"
	if !almostEq(r.VolumeFraction, 0.01, 0.003) {
		t.Errorf("volume fraction = %.3f, want ≈0.01", r.VolumeFraction)
	}
	// "operating at 225 W (350 W) would consume 15% (23%) of this power"
	if !almostEq(r.PowerFractionTypical, 0.15, 0.005) {
		t.Errorf("power fraction = %.3f, want 0.15", r.PowerFractionTypical)
	}
	if !almostEq(r.PowerFractionMax, 0.233, 0.005) {
		t.Errorf("max power fraction = %.3f, want ≈0.23", r.PowerFractionMax)
	}
	// "the cost of launching the server is ~42,000 USD"
	if math.Abs(r.LaunchCostUSD-42000) > 2000 {
		t.Errorf("launch cost = %.0f, want ≈42,000", r.LaunchCostUSD)
	}
	// "roughly 3x as expensive as a data center server" over 3 years
	if r.CostRatio < 2.5 || r.CostRatio > 4.5 {
		t.Errorf("cost ratio = %.2f, want ≈3x", r.CostRatio)
	}
	// 550 km is below the inner Van Allen belt: commodity hardware viable.
	if !r.CommodityHardwareOK {
		t.Error("550 km should permit software-hardened commodity hardware")
	}
	if r.ServerLifeYears != 3 {
		t.Errorf("service life = %v, want min(3,5)=3", r.ServerLifeYears)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	base := Default()

	s := base
	s.Server.WeightKg = 0
	if _, err := Analyze(s); err == nil {
		t.Error("zero server weight accepted")
	}

	s = base
	s.Satellite.VolumeL = 0
	if _, err := Analyze(s); err == nil {
		t.Error("zero satellite volume accepted")
	}

	s = base
	s.DC.TCOPerServerYearUSD = 0
	if _, err := Analyze(s); err == nil {
		t.Error("zero DC TCO accepted")
	}

	s = base
	s.Server.LifeYears = 0
	s.Satellite.LifeYears = 0
	if _, err := Analyze(s); err == nil {
		t.Error("zero life accepted")
	}

	s = base
	s.Power.BatteryEfficiency = 2
	if _, err := Analyze(s); err == nil {
		t.Error("bad power budget accepted")
	}
}

func TestHigherOrbitLosesCommodityHardware(t *testing.T) {
	s := Default()
	s.Satellite.AltitudeKm = 1110 // above the 643 km inner-belt boundary
	r, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.CommodityHardwareOK {
		t.Fatal("1110 km should not be flagged commodity-safe")
	}
}

func TestCostScalesWithLaunchPrice(t *testing.T) {
	cheap := Default()
	cheap.Launch.CostPerKg = 1000
	expensive := Default()
	expensive.Launch.CostPerKg = 10000
	rc, err := Analyze(cheap)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Analyze(expensive)
	if err != nil {
		t.Fatal(err)
	}
	if re.CostRatio <= rc.CostRatio {
		t.Fatal("higher launch price should raise the cost ratio")
	}
}

func TestFleetSurvival(t *testing.T) {
	// Zero failures → everyone alive.
	if got, err := FleetSurvival(0, 5); err != nil || got != 1 {
		t.Fatalf("FleetSurvival(0) = %v, %v", got, err)
	}
	// 10%/yr over 5-year life: average survival ≈ (1-0.9^5)/(5·ln(1/0.9))
	got, err := FleetSurvival(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := (math.Pow(0.9, 5) - 1) / (math.Log(0.9) * 5)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("FleetSurvival = %v, want %v", got, want)
	}
	if got < 0.7 || got > 0.85 {
		t.Fatalf("survival %v implausible for 10%%/yr", got)
	}
	// More failures → lower survival.
	worse, err := FleetSurvival(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= got {
		t.Fatal("higher failure rate should reduce survival")
	}
	// Validation.
	if _, err := FleetSurvival(-0.1, 5); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := FleetSurvival(1, 5); err == nil {
		t.Error("certain failure accepted")
	}
	if _, err := FleetSurvival(0.1, 0); err == nil {
		t.Error("zero life accepted")
	}
}

func TestConstellationServerCount(t *testing.T) {
	// The paper: Starlink at 40,000 satellites with one server each would
	// be ~7x smaller than Akamai's ~325k-server CDN.
	got := ConstellationServerCount(40000, 1)
	if got != 40000 {
		t.Fatalf("count = %d", got)
	}
	ratio := 325000.0 / float64(got)
	if ratio < 6 || ratio > 9 {
		t.Fatalf("Akamai ratio = %.1f, want ≈7-8x", ratio)
	}
	if ConstellationServerCount(-1, 1) != 0 || ConstellationServerCount(1, -1) != 0 {
		t.Fatal("negative inputs should yield 0")
	}
}
