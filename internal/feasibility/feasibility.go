// Package feasibility reproduces §4's back-of-envelope analysis: the
// weight, volume, radiation, power, life-cycle, and cost of adding a
// commodity server to each satellite of a mega-constellation. Every input
// defaults to the paper's published numbers and is overridable, and the
// package produces the §4 summary table.
package feasibility

import (
	"fmt"
	"math"

	"repro/internal/power"
)

// Server describes the compute payload. Defaults: HPE ProLiant DL325 Gen10,
// the paper's reference server.
type Server struct {
	Name      string
	WeightKg  float64
	VolumeL   float64
	Cores     int
	MemoryGB  int
	DrawW     float64 // typical operating point
	DrawMaxW  float64 // high operating point
	PriceUSD  float64
	LifeYears float64
}

// DefaultServer returns the paper's HPE DL325 Gen10 reference: 64 cores,
// up to 2 TB memory, 15.6 kg, 1U (~12.6 L), 225/350 W operating points.
func DefaultServer() Server {
	return Server{
		Name:      "HPE ProLiant DL325 Gen10",
		WeightKg:  15.6,
		VolumeL:   12.6, // 1U: 4.4 x 43.5 x 65.9 cm
		Cores:     64,
		MemoryGB:  2048,
		DrawW:     225,
		DrawMaxW:  350,
		PriceUSD:  12000,
		LifeYears: 3, // the paper's typical data-center server life
	}
}

// Satellite describes the host platform. Defaults: Starlink v1.0.
type Satellite struct {
	Name       string
	MassKg     float64
	VolumeL    float64
	SolarAvgW  float64
	LifeYears  float64
	AltitudeKm float64
}

// DefaultSatellite returns Starlink v1.0-class numbers: 260 kg, a flat-panel
// bus around 1.3 m³ including the stowed array allocation, ~1.5 kW average
// solar output, ~5-year design life at 550 km.
func DefaultSatellite() Satellite {
	return Satellite{
		Name:       "Starlink v1.0",
		MassKg:     260,
		VolumeL:    1260,
		SolarAvgW:  1500,
		LifeYears:  5,
		AltitudeKm: 550,
	}
}

// Launch describes launch economics. Defaults: Falcon 9 reusable pricing.
type Launch struct {
	Name      string
	CostPerKg float64
	// InnerVanAllenKm is where the inner radiation belt begins; orbits
	// below it can plausibly fly software-hardened commodity hardware (the
	// HPE Spaceborne precedent the paper cites).
	InnerVanAllenKm float64
}

// DefaultLaunch returns Falcon 9 economics: ~$2,700/kg to LEO (the paper's
// ~42,000 USD for a 15.6 kg server).
func DefaultLaunch() Launch {
	return Launch{Name: "Falcon 9 (reusable)", CostPerKg: 2700, InnerVanAllenKm: 643}
}

// DataCenter describes the terrestrial comparison point.
type DataCenter struct {
	// TCOPerServerYearUSD is the per-server total cost of ownership per
	// year (the paper cites ~5,000 USD/yr from the Uptime Institute model).
	TCOPerServerYearUSD float64
}

// DefaultDataCenter returns the paper's data-center cost model.
func DefaultDataCenter() DataCenter {
	return DataCenter{TCOPerServerYearUSD: 5000}
}

// Study bundles the inputs of a feasibility analysis.
type Study struct {
	Server    Server
	Satellite Satellite
	Launch    Launch
	DC        DataCenter
	Power     power.Budget
	// EclipseFraction is the orbit-average Earth-shadow fraction used in
	// the power analysis; default 0.33 (550 km worst case).
	EclipseFraction float64
}

// Default returns the paper's §4 inputs.
func Default() Study {
	return Study{
		Server:          DefaultServer(),
		Satellite:       DefaultSatellite(),
		Launch:          DefaultLaunch(),
		DC:              DefaultDataCenter(),
		Power:           power.DefaultStarlinkBudget(),
		EclipseFraction: 0.33,
	}
}

// Report is the computed §4 table.
type Report struct {
	// WeightFraction is server weight / satellite mass (paper: ~6%).
	WeightFraction float64
	// VolumeFraction is server volume / satellite volume (paper: ~1%).
	VolumeFraction float64
	// PowerFractionTypical and PowerFractionMax are server draw / average
	// solar output (paper: 15% at 225 W, 23% at 350 W).
	PowerFractionTypical, PowerFractionMax float64
	// CommodityHardwareOK: orbit below the inner Van Allen belt.
	CommodityHardwareOK bool
	// LaunchCostUSD is the cost of launching the server's mass (paper:
	// ~42,000 USD).
	LaunchCostUSD float64
	// OrbitCost3yUSD is server price + launch, amortised over min(server
	// life, satellite life) and normalised to 3 years of service.
	OrbitCost3yUSD float64
	// DCCost3yUSD is 3 years of terrestrial TCO.
	DCCost3yUSD float64
	// CostRatio is orbit/DC over the 3-year window (paper: ~3x).
	CostRatio float64
	// ServerLifeYears is the effective in-orbit service life used.
	ServerLifeYears float64
}

// Analyze computes the report.
func Analyze(s Study) (Report, error) {
	if s.Server.WeightKg <= 0 || s.Satellite.MassKg <= 0 {
		return Report{}, fmt.Errorf("feasibility: non-positive masses (server %v kg, satellite %v kg)", s.Server.WeightKg, s.Satellite.MassKg)
	}
	if s.Server.VolumeL <= 0 || s.Satellite.VolumeL <= 0 {
		return Report{}, fmt.Errorf("feasibility: non-positive volumes")
	}
	if s.DC.TCOPerServerYearUSD <= 0 {
		return Report{}, fmt.Errorf("feasibility: non-positive DC TCO")
	}
	if err := s.Power.Validate(); err != nil {
		return Report{}, err
	}
	r := Report{
		WeightFraction: s.Server.WeightKg / s.Satellite.MassKg,
		VolumeFraction: s.Server.VolumeL / s.Satellite.VolumeL,
	}
	// The paper divides server draw by the 1.5 kW average output directly.
	r.PowerFractionTypical = s.Server.DrawW / s.Satellite.SolarAvgW
	r.PowerFractionMax = s.Server.DrawMaxW / s.Satellite.SolarAvgW
	r.CommodityHardwareOK = s.Satellite.AltitudeKm < s.Launch.InnerVanAllenKm
	r.LaunchCostUSD = s.Server.WeightKg * s.Launch.CostPerKg

	life := math.Min(s.Server.LifeYears, s.Satellite.LifeYears)
	if life <= 0 {
		return Report{}, fmt.Errorf("feasibility: non-positive service life")
	}
	r.ServerLifeYears = life
	perYear := (s.Server.PriceUSD + r.LaunchCostUSD) / life
	r.OrbitCost3yUSD = perYear * 3
	r.DCCost3yUSD = s.DC.TCOPerServerYearUSD * 3
	r.CostRatio = r.OrbitCost3yUSD / r.DCCost3yUSD
	return r, nil
}

// FleetSurvival models the life-cycle point: with an annual server failure
// probability and no in-orbit repair, what fraction of the fleet still
// offers compute after years of service? Operators replenish satellites
// continuously, so the steady-state fraction is the average over a
// satellite's life.
func FleetSurvival(annualFailureProb, satelliteLifeYears float64) (steadyStateAlive float64, err error) {
	if annualFailureProb < 0 || annualFailureProb >= 1 {
		return 0, fmt.Errorf("feasibility: annual failure probability %v outside [0,1)", annualFailureProb)
	}
	if satelliteLifeYears <= 0 {
		return 0, fmt.Errorf("feasibility: non-positive satellite life")
	}
	if annualFailureProb == 0 {
		return 1, nil
	}
	// Survival S(t) = (1-p)^t; fleet age uniform over [0, life] at steady
	// state (continuous replenishment) → average survival = ∫S/life.
	lnS := math.Log(1 - annualFailureProb)
	return (math.Exp(lnS*satelliteLifeYears) - 1) / (lnS * satelliteLifeYears), nil
}

// ConstellationServerCount compares fleet scale to a CDN: the paper notes
// Starlink's full 40,000-satellite buildout with one server each would be
// only ~7x smaller than Akamai (~325,000 servers).
func ConstellationServerCount(satellites int, serversPerSat int) int {
	if satellites < 0 || serversPerSat < 0 {
		return 0
	}
	return satellites * serversPerSat
}
