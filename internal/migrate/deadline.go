package migrate

import (
	"io"
	"time"
)

// DeadlineConn is the subset of net.Conn the deadline wrappers need. Any
// net.Conn satisfies it.
type DeadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// TimeoutReader returns a reader that arms conn's read deadline before
// every Read, so a stalled peer fails with a timeout error instead of
// blocking forever. r may be the conn itself or a bufio.Reader layered
// over it — buffered reads that never touch the conn are unaffected.
// A non-positive timeout returns r unchanged.
func TimeoutReader(r io.Reader, conn DeadlineConn, timeout time.Duration) io.Reader {
	if timeout <= 0 {
		return r
	}
	return &timeoutReader{r: r, conn: conn, d: timeout}
}

type timeoutReader struct {
	r    io.Reader
	conn DeadlineConn
	d    time.Duration
}

func (t *timeoutReader) Read(p []byte) (int, error) {
	if err := t.conn.SetReadDeadline(time.Now().Add(t.d)); err != nil {
		return 0, err
	}
	return t.r.Read(p)
}

// TimeoutWriter returns a writer that arms conn's write deadline before
// every Write — the write-side counterpart of TimeoutReader. A
// non-positive timeout returns w unchanged.
func TimeoutWriter(w io.Writer, conn DeadlineConn, timeout time.Duration) io.Writer {
	if timeout <= 0 {
		return w
	}
	return &timeoutWriter{w: w, conn: conn, d: timeout}
}

type timeoutWriter struct {
	w    io.Writer
	conn DeadlineConn
	d    time.Duration
}

func (t *timeoutWriter) Write(p []byte) (int, error) {
	if err := t.conn.SetWriteDeadline(time.Now().Add(t.d)); err != nil {
		return 0, err
	}
	return t.w.Write(p)
}
