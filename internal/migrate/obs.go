package migrate

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Wire-protocol instrumentation: frame/byte counters on the process-wide
// obs registry, and transfer-phase spans on an optionally installed tracer.
// Everything is lazy and lock-cheap so the uninstrumented path costs one
// atomic load.

type wireMetrics struct {
	frames   *obs.CounterVec // migrate_frames_total{dir,kind}
	bytesOut *obs.Counter    // migrate_frame_bytes_total{dir} — wire bytes incl. framing
	bytesIn  *obs.Counter
	errors   *obs.CounterVec // migrate_frame_errors_total{dir}
	sendQ    *obs.Quantile   // migrate_send_ms — whole-transfer wall latency
}

var (
	metricsOnce sync.Once
	metrics     *wireMetrics
)

func wire() *wireMetrics {
	metricsOnce.Do(func() {
		reg := obs.Default()
		bytes := reg.CounterVec("migrate_frame_bytes_total",
			"Wire bytes moved by the migration protocol, including framing overhead.", "dir")
		metrics = &wireMetrics{
			frames: reg.CounterVec("migrate_frames_total",
				"Wire-protocol frames by direction and kind.", "dir", "kind"),
			bytesOut: bytes.With("out"),
			bytesIn:  bytes.With("in"),
			errors: reg.CounterVec("migrate_frame_errors_total",
				"Frame encode/decode failures by direction.", "dir"),
			sendQ: reg.Quantile("migrate_send_ms",
				"Streaming quantile of whole state-transfer send latency in wall-clock ms."),
		}
	})
	return metrics
}

func (k FrameKind) String() string {
	switch k {
	case FrameSession:
		return "session"
	case FrameGeneric:
		return "generic"
	case FrameCutover:
		return "cutover"
	}
	return "unknown"
}

// tracer is the package tracer for SendState/ReceiveState phase spans. The
// obs tracer is nil-safe, so an unset tracer costs a single atomic load.
var tracer atomic.Pointer[obs.Tracer]

// SetTracer installs (or, with nil, removes) the tracer that records
// migration transfer phases as spans.
func SetTracer(t *obs.Tracer) { tracer.Store(t) }
