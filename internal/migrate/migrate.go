// Package migrate models the state migration that makes "virtual
// stationarity" (§5) work: before a meetup server's satellite sets below the
// group's horizon, its application state must move to the successor. The
// package provides the analytic live-migration model used by the simulation
// experiments, and a wire protocol (see protocol.go) used by the real TCP
// demo binaries.
package migrate

import (
	"fmt"
	"math"
)

// State describes an application's migratable state, split the way §5
// suggests: session-specific state (player and game state) that must move on
// the critical path, and generic state (the game world) that can be
// replicated ahead of time.
type State struct {
	// SessionMB is the session-specific state in megabytes.
	SessionMB float64
	// GenericMB is the generic application state in megabytes.
	GenericMB float64
	// DirtyRateMBps is how fast the session state changes while the
	// application keeps running during live migration.
	DirtyRateMBps float64
}

// Validate reports whether the state sizes are usable.
func (s State) Validate() error {
	if s.SessionMB < 0 || s.GenericMB < 0 || s.DirtyRateMBps < 0 {
		return fmt.Errorf("migrate: negative state parameters %+v", s)
	}
	return nil
}

// Link describes the transfer path to the successor.
type Link struct {
	// BandwidthMBps is the usable throughput in megabytes per second.
	BandwidthMBps float64
	// OneWayMs is the propagation latency of the path.
	OneWayMs float64
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.BandwidthMBps <= 0 {
		return fmt.Errorf("migrate: bandwidth must be positive, got %v", l.BandwidthMBps)
	}
	if l.OneWayMs < 0 {
		return fmt.Errorf("migrate: negative latency %v", l.OneWayMs)
	}
	return nil
}

// GbpsToMBps converts link rate units.
func GbpsToMBps(gbps float64) float64 { return gbps * 1000 / 8 }

// Result summarises one migration.
type Result struct {
	// TotalSec is the wall-clock duration from migration start to
	// completion.
	TotalSec float64
	// DowntimeSec is how long the application was paused (the stop-and-copy
	// round of live migration, or the whole transfer for cold migration).
	DowntimeSec float64
	// Rounds is the number of iterative pre-copy rounds performed.
	Rounds int
	// TransferredMB is the total volume moved, including re-sent dirty
	// state.
	TransferredMB float64
}

// Cold computes a stop-the-world migration: pause, copy everything, resume.
func Cold(s State, l Link) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	size := s.SessionMB + s.GenericMB
	t := l.OneWayMs/1000 + size/l.BandwidthMBps
	return Result{TotalSec: t, DowntimeSec: t, Rounds: 1, TransferredMB: size}, nil
}

// LiveConfig tunes iterative live migration.
type LiveConfig struct {
	// MaxRounds caps the pre-copy iterations before the final
	// stop-and-copy (default 10).
	MaxRounds int
	// StopConditionMB: when the remaining dirty set falls below this, do the
	// final stop-and-copy (default 1 MB).
	StopConditionMB float64
	// GenericReplicatedAhead marks the generic state as already present on
	// the successor (§5's "generic state is replicated even further ahead"),
	// leaving only session state on the critical path.
	GenericReplicatedAhead bool
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10
	}
	if c.StopConditionMB <= 0 {
		c.StopConditionMB = 1
	}
	return c
}

// ErrDiverges is returned when the dirty rate matches or exceeds the link
// bandwidth, so iterative pre-copy cannot converge.
var ErrDiverges = fmt.Errorf("migrate: dirty rate >= bandwidth; live migration cannot converge")

// Live computes an iterative pre-copy live migration (pre-copy rounds while
// the application runs, then a brief stop-and-copy of the residual dirty
// set).
func Live(s State, l Link, cfg LiveConfig) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()

	res := Result{}
	toSend := s.SessionMB
	if !cfg.GenericReplicatedAhead {
		toSend += s.GenericMB
	}
	if toSend == 0 {
		res.DowntimeSec = l.OneWayMs / 1000 // still need the cut-over signal
		res.TotalSec = res.DowntimeSec
		res.Rounds = 1
		return res, nil
	}
	ratio := s.DirtyRateMBps / l.BandwidthMBps
	if ratio >= 1 {
		return Result{}, ErrDiverges
	}

	dirty := toSend
	for round := 0; round < cfg.MaxRounds; round++ {
		res.Rounds++
		sendSec := dirty / l.BandwidthMBps
		res.TotalSec += sendSec
		res.TransferredMB += dirty
		// While that round was in flight, the app dirtied more state.
		dirty = sendSec * s.DirtyRateMBps
		if dirty <= cfg.StopConditionMB {
			break
		}
	}
	// Final stop-and-copy of the residual dirty set, plus the cut-over
	// propagation delay.
	stopSec := dirty/l.BandwidthMBps + l.OneWayMs/1000
	res.TotalSec += stopSec + l.OneWayMs/1000 // initial round also rides the link
	res.TransferredMB += dirty
	res.DowntimeSec = stopSec
	return res, nil
}

// HandoffBudget answers the planning question behind §5: given a hand-off
// must complete within budgetSec (the warning time before the current
// satellite sets), what is the largest session state that can be migrated
// live over the link? Returns 0 when even empty state cannot cut over in
// time.
func HandoffBudget(budgetSec float64, dirtyRateMBps float64, l Link, cfg LiveConfig) float64 {
	if err := l.Validate(); err != nil || budgetSec <= 0 {
		return 0
	}
	// Binary search over session size: Live() duration is monotone in size.
	lo, hi := 0.0, l.BandwidthMBps*budgetSec
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		r, err := Live(State{SessionMB: mid, DirtyRateMBps: dirtyRateMBps}, l, cfg)
		if err != nil {
			return 0
		}
		if r.TotalSec <= budgetSec {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GEOComparison quantifies the abstraction the paper highlights: a series of
// LEO meetup servers behaves like a GEO satellite hovering over the group,
// at a fraction of the latency. It returns the LEO:GEO RTT ratio for a
// given LEO RTT (GEO zenith RTT is ~239 ms).
func GEOComparison(leoRTTMs float64) float64 {
	const geoZenithRTTMs = 2 * 35786.0 / 299792.458 * 1000
	if leoRTTMs <= 0 {
		return math.Inf(1)
	}
	return geoZenithRTTMs / leoRTTMs
}
