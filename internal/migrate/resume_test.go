package migrate

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// truncWriter accepts at most n bytes, then fails — a transfer dying
// mid-stream.
type truncWriter struct {
	buf bytes.Buffer
	n   int
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if w.buf.Len()+len(p) > w.n {
		keep := w.n - w.buf.Len()
		if keep > 0 {
			w.buf.Write(p[:keep])
		}
		return keep, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func TestSendStateResumableRoundTrip(t *testing.T) {
	generic := bytes.Repeat([]byte("g"), 1000)
	session := bytes.Repeat([]byte("s"), 2500)

	var buf bytes.Buffer
	if err := SendStateResumable(&buf, generic, session, 0, 0, 512); err != nil {
		t.Fatal(err)
	}
	var rx Receiver
	if err := rx.Receive(&buf); err != nil {
		t.Fatal(err)
	}
	if !rx.Done {
		t.Fatal("receiver not done after cut-over")
	}
	if !bytes.Equal(rx.Generic, generic) || !bytes.Equal(rx.Session, session) {
		t.Fatal("chunked round trip corrupted the state")
	}
}

func TestSendStateResumableEmptySession(t *testing.T) {
	// Even an empty session must arrive as a session frame before cut-over.
	var buf bytes.Buffer
	if err := SendStateResumable(&buf, nil, nil, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	var rx Receiver
	if err := rx.Receive(&buf); err != nil {
		t.Fatal(err)
	}
	if !rx.Done {
		t.Fatal("empty transfer did not complete")
	}
}

func TestSendStateResumableBadOffsets(t *testing.T) {
	session := []byte("abc")
	for _, off := range [][2]int{{-1, 0}, {0, -1}, {1, 0}, {0, 4}} {
		if err := SendStateResumable(io.Discard, nil, session, off[0], off[1], 0); err == nil {
			t.Errorf("offsets %v accepted", off)
		}
	}
}

// TestResumeAfterInterruptedTransfer is the end-to-end resume story: the
// first attempt dies mid-stream, the receiver keeps the partial state, and
// a second attempt starting from Offsets delivers the rest — no bytes
// duplicated, none lost.
func TestResumeAfterInterruptedTransfer(t *testing.T) {
	generic := bytes.Repeat([]byte{0xAA}, 3000)
	session := bytes.Repeat([]byte{0xBB}, 5000)

	// Attempt 1: the link dies after 2 KiB on the wire.
	w1 := &truncWriter{n: 2048}
	if err := SendStateResumable(w1, generic, session, 0, 0, 1024); err == nil {
		t.Fatal("send over a dying link succeeded")
	}
	var rx Receiver
	// The receiver sees a truncated stream: partial state is retained.
	if err := rx.Receive(iotest.DataErrReader(&w1.buf)); err == nil {
		t.Fatal("receive of a truncated stream succeeded")
	}
	if rx.Done {
		t.Fatal("receiver done without a cut-over marker")
	}
	gOff, sOff := rx.Offsets()
	if gOff == 0 {
		t.Fatal("no partial state survived the first attempt")
	}
	if !bytes.Equal(rx.Generic, generic[:gOff]) || !bytes.Equal(rx.Session, session[:sOff]) {
		t.Fatal("partial state does not match the sent prefix")
	}

	// Attempt 2: resume from the receiver's offsets over a good link.
	var w2 bytes.Buffer
	if err := SendStateResumable(&w2, generic, session, gOff, sOff, 1024); err != nil {
		t.Fatal(err)
	}
	if err := rx.Receive(&w2); err != nil {
		t.Fatal(err)
	}
	if !rx.Done {
		t.Fatal("resume did not complete")
	}
	if !bytes.Equal(rx.Generic, generic) || !bytes.Equal(rx.Session, session) {
		t.Fatal("resumed transfer corrupted the state")
	}

	// A completed receiver refuses further transfers.
	if err := rx.Receive(&bytes.Buffer{}); err == nil {
		t.Fatal("completed receiver accepted another transfer")
	}
}
