package migrate

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
)

func TestColdMigration(t *testing.T) {
	// 100 MB over 250 MB/s with 6 ms latency: 0.006 + 0.4 = 0.406 s, all
	// downtime.
	r, err := Cold(State{SessionMB: 40, GenericMB: 60}, Link{BandwidthMBps: 250, OneWayMs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalSec-0.406) > 1e-9 {
		t.Fatalf("TotalSec = %v", r.TotalSec)
	}
	if r.DowntimeSec != r.TotalSec {
		t.Fatal("cold migration downtime must equal total")
	}
	if r.TransferredMB != 100 {
		t.Fatalf("TransferredMB = %v", r.TransferredMB)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Cold(State{SessionMB: -1}, Link{BandwidthMBps: 1}); err == nil {
		t.Fatal("negative state accepted")
	}
	if _, err := Cold(State{}, Link{BandwidthMBps: 0}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := Live(State{}, Link{BandwidthMBps: 10, OneWayMs: -1}, LiveConfig{}); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestLiveBeatsColdOnDowntime(t *testing.T) {
	s := State{SessionMB: 200, DirtyRateMBps: 20}
	l := Link{BandwidthMBps: 250, OneWayMs: 6}
	live, err := Live(s, l, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Cold(s, l)
	if err != nil {
		t.Fatal(err)
	}
	if live.DowntimeSec >= cold.DowntimeSec {
		t.Fatalf("live downtime %v not below cold %v", live.DowntimeSec, cold.DowntimeSec)
	}
	// But live sends more bytes (re-sent dirty state).
	if live.TransferredMB < cold.TransferredMB {
		t.Fatalf("live transferred %v less than cold %v", live.TransferredMB, cold.TransferredMB)
	}
	if live.Rounds < 2 {
		t.Fatalf("expected multiple pre-copy rounds, got %d", live.Rounds)
	}
}

func TestLiveDiverges(t *testing.T) {
	_, err := Live(State{SessionMB: 10, DirtyRateMBps: 300}, Link{BandwidthMBps: 250, OneWayMs: 1}, LiveConfig{})
	if !errors.Is(err, ErrDiverges) {
		t.Fatalf("err = %v, want ErrDiverges", err)
	}
}

func TestLiveEmptyState(t *testing.T) {
	r, err := Live(State{}, Link{BandwidthMBps: 100, OneWayMs: 8}, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.DowntimeSec-0.008) > 1e-12 {
		t.Fatalf("empty-state downtime = %v, want just the cut-over delay", r.DowntimeSec)
	}
}

func TestGenericReplicatedAheadShrinksMigration(t *testing.T) {
	s := State{SessionMB: 20, GenericMB: 500, DirtyRateMBps: 5}
	l := Link{BandwidthMBps: 250, OneWayMs: 6}
	full, err := Live(s, l, LiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ahead, err := Live(s, l, LiveConfig{GenericReplicatedAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	if ahead.TotalSec >= full.TotalSec/2 {
		t.Fatalf("replicate-ahead total %v not much below full %v", ahead.TotalSec, full.TotalSec)
	}
}

func TestLiveDowntimeShrinksWithBandwidth(t *testing.T) {
	s := State{SessionMB: 100, DirtyRateMBps: 10}
	// Downtime approaches the propagation floor as bandwidth grows; assert
	// a near-monotone trend (the stop-condition quantises the residual
	// copy, so allow 1 ms of slack) and a large first-to-last drop.
	var first, last float64
	prev := math.Inf(1)
	for i, bw := range []float64{50, 100, 500, 2500} {
		r, err := Live(s, Link{BandwidthMBps: bw, OneWayMs: 6}, LiveConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if r.DowntimeSec > prev+0.001 {
			t.Fatalf("downtime grew at bw=%v: %v > %v", bw, r.DowntimeSec, prev)
		}
		prev = r.DowntimeSec
		if i == 0 {
			first = r.DowntimeSec
		}
		last = r.DowntimeSec
	}
	if last > first/2 {
		t.Fatalf("downtime barely improved: %v -> %v", first, last)
	}
}

func TestHandoffBudgetMonotone(t *testing.T) {
	l := Link{BandwidthMBps: 250, OneWayMs: 6}
	small := HandoffBudget(1, 10, l, LiveConfig{})
	big := HandoffBudget(10, 10, l, LiveConfig{})
	if small <= 0 || big <= small {
		t.Fatalf("budgets: 1s→%v MB, 10s→%v MB", small, big)
	}
	// Sanity: a 10 s budget on a 250 MB/s link moves GBs.
	if big < 1000 {
		t.Fatalf("10s budget only %v MB", big)
	}
	if HandoffBudget(0, 1, l, LiveConfig{}) != 0 {
		t.Fatal("zero budget should yield zero")
	}
	if HandoffBudget(1, 1, Link{}, LiveConfig{}) != 0 {
		t.Fatal("invalid link should yield zero")
	}
}

func TestHandoffBudgetRespectsBudget(t *testing.T) {
	f := func(budgetSeed, dirtySeed uint8) bool {
		budget := 0.5 + float64(budgetSeed%40)/4
		dirty := float64(dirtySeed % 100)
		l := Link{BandwidthMBps: 250, OneWayMs: 6}
		size := HandoffBudget(budget, dirty, l, LiveConfig{})
		if size == 0 {
			return true
		}
		r, err := Live(State{SessionMB: size, DirtyRateMBps: dirty}, l, LiveConfig{})
		return err == nil && r.TotalSec <= budget*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGEOComparison(t *testing.T) {
	// The paper: LEO constellations offer GEO-like stationarity with ~65%
	// lower latency than GEO — i.e. a LEO RTT of 16 ms vs GEO's ~239 ms is
	// ~15x better; against 85 ms (worst LEO multi-hop) still >2x.
	if r := GEOComparison(16); r < 14 || r > 16 {
		t.Fatalf("GEO/LEO ratio at 16 ms = %v", r)
	}
	if !math.IsInf(GEOComparison(0), 1) {
		t.Fatal("zero RTT should give +Inf")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("in-orbit state")
	if err := WriteFrame(&buf, FrameSession, payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameSession || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: kind=%v payload=%q", kind, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameCutover, nil); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadFrame(&buf)
	if err != nil || kind != FrameCutover || len(got) != 0 {
		t.Fatalf("cutover round trip: %v %q %v", kind, got, err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSession, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[12] ^= 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Bad magic.
	bad2 := append([]byte(nil), raw...)
	bad2[0] = 'X'
	if _, _, err := ReadFrame(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Bad version.
	bad3 := append([]byte(nil), raw...)
	bad3[4] = 99
	if _, _, err := ReadFrame(bytes.NewReader(bad3)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated stream.
	if _, _, err := ReadFrame(bytes.NewReader(raw[:5])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameSession, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversize payload accepted on write")
	}
	// Hand-craft an oversize header.
	hdr := []byte{'I', 'O', 'S', 'M', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversize length accepted on read")
	}
}

func TestSendReceiveState(t *testing.T) {
	var buf bytes.Buffer
	generic := bytes.Repeat([]byte("world"), 1000)
	session := []byte("players")
	if err := SendState(&buf, generic, session); err != nil {
		t.Fatal(err)
	}
	g, s, err := ReceiveState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, generic) || !bytes.Equal(s, session) {
		t.Fatal("state mismatch after round trip")
	}
}

func TestSendReceiveStateNoGeneric(t *testing.T) {
	var buf bytes.Buffer
	if err := SendState(&buf, nil, []byte("s")); err != nil {
		t.Fatal(err)
	}
	g, s, err := ReceiveState(&buf)
	if err != nil || g != nil || !bytes.Equal(s, []byte("s")) {
		t.Fatalf("got %q %q %v", g, s, err)
	}
}

func TestReceiveStateEOF(t *testing.T) {
	_, _, err := ReceiveState(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestStateOverRealTCP(t *testing.T) {
	// End to end over actual sockets, the way cmd/meetupd migrates.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	r := rand.New(rand.NewSource(42))
	generic := make([]byte, 1<<20)
	session := make([]byte, 64<<10)
	r.Read(generic)
	r.Read(session)

	errc := make(chan error, 1)
	gotc := make(chan [2][]byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		g, s, err := ReceiveState(conn)
		if err != nil {
			errc <- err
			return
		}
		gotc <- [2][]byte{g, s}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := SendState(conn, generic, session); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	select {
	case err := <-errc:
		t.Fatal(err)
	case got := <-gotc:
		if !bytes.Equal(got[0], generic) || !bytes.Equal(got[1], session) {
			t.Fatal("TCP round trip mismatch")
		}
	}
}
