package migrate

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire parser: arbitrary bytes must never panic
// or over-allocate, and valid frames must round-trip.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, FrameSession, []byte("seed-state")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("IOSM"))
	f.Add([]byte{})
	f.Add([]byte{'I', 'O', 'S', 'M', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-serialise to an equivalent frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, kind, payload); err != nil {
			t.Fatalf("re-write of accepted frame failed: %v", err)
		}
		k2, p2, err := ReadFrame(&buf)
		if err != nil || k2 != kind || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip mismatch: %v %v", k2, err)
		}
	})
}

// FuzzReceiveState drives the full state stream parser.
func FuzzReceiveState(f *testing.F) {
	var good bytes.Buffer
	if err := SendState(&good, []byte("generic"), []byte("session")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("IOSMxxxx"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, s, err := ReceiveState(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted streams round-trip.
		var buf bytes.Buffer
		if err := SendState(&buf, g, s); err != nil {
			t.Fatalf("re-send failed: %v", err)
		}
		g2, s2, err := ReceiveState(&buf)
		if err != nil || !bytes.Equal(g, g2) || !bytes.Equal(s, s2) {
			t.Fatalf("round trip mismatch: %v", err)
		}
	})
}
