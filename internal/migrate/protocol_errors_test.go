package migrate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Deterministic regression cases for the wire protocol's error paths,
// complementing the coverage-by-accident of the fuzz tests: short writes,
// truncated frames mid-stream, and oversized length prefixes must surface
// as errors (never panics) through SendState/ReceiveState.

// frameBytes renders one valid frame for surgery.
func frameBytes(t *testing.T, kind FrameKind, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, kind, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// failAfter is a writer that accepts n bytes and then errors.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

func TestWriteFrameShortWrite(t *testing.T) {
	wireErr := errors.New("link dropped")
	full := len(frameBytes(t, FrameSession, []byte("payload")))
	// Fail at every byte offset: header, payload, and checksum writes must
	// all propagate the sink's error.
	for n := 0; n < full; n++ {
		err := WriteFrame(&failAfter{n: n, err: wireErr}, FrameSession, []byte("payload"))
		if !errors.Is(err, wireErr) {
			t.Fatalf("accept %d bytes: err = %v, want wrapped %v", n, err, wireErr)
		}
	}
	if err := WriteFrame(&failAfter{n: full, err: wireErr}, FrameSession, []byte("payload")); err != nil {
		t.Fatalf("full frame written but err = %v", err)
	}
}

func TestSendStateShortWrite(t *testing.T) {
	wireErr := errors.New("link dropped")
	for _, n := range []int{0, 5, 20, 40} {
		if err := SendState(&failAfter{n: n, err: wireErr}, []byte("generic"), []byte("session")); !errors.Is(err, wireErr) {
			t.Fatalf("accept %d bytes: err = %v, want wrapped %v", n, err, wireErr)
		}
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := frameBytes(t, FrameSession, []byte("some session state"))
	// Cut the stream at every point inside the frame. Offset 0 is a clean
	// EOF (stream ended between frames); every other cut is an error too,
	// just with the position-specific wrapping.
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
		if cut == 0 && err != io.EOF {
			t.Fatalf("cut at 0: err = %v, want io.EOF", err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(full)); err != nil {
		t.Fatalf("intact frame: %v", err)
	}
}

func TestReceiveStateTruncatedMidStream(t *testing.T) {
	var stream bytes.Buffer
	if err := SendState(&stream, []byte("generic"), []byte("session")); err != nil {
		t.Fatal(err)
	}
	full := stream.Bytes()
	// Drop the trailing cut-over frame and some of the session frame: the
	// receiver must error out rather than return partial state as success.
	for _, cut := range []int{len(full) - 1, len(full) - frameOverhead, len(full) - frameOverhead - 3} {
		_, _, err := ReceiveState(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: ReceiveState returned partial state without error", cut)
		}
	}
}

func TestReadFrameOversizedLength(t *testing.T) {
	frame := frameBytes(t, FrameSession, []byte("x"))
	binary.BigEndian.PutUint32(frame[6:10], maxFrame+1)
	_, _, err := ReadFrame(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized length: err = %v", err)
	}
	// A length of 2^32-1 must be rejected before allocation, not OOM.
	binary.BigEndian.PutUint32(frame[6:10], ^uint32(0))
	if _, _, err := ReadFrame(bytes.NewReader(frame)); err == nil {
		t.Fatal("4 GiB length prefix accepted")
	}
}

func TestWriteFrameOversizedPayload(t *testing.T) {
	// The payload cap is checked before any bytes hit the wire.
	sink := &failAfter{n: 0, err: errors.New("should not be written")}
	err := WriteFrame(sink, FrameSession, make([]byte, maxFrame+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized payload: err = %v", err)
	}
}

func TestReadFrameCorruptHeaderAndChecksum(t *testing.T) {
	good := frameBytes(t, FrameSession, []byte("abc"))

	bad := append([]byte(nil), good...)
	copy(bad[:4], "XOSM")
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[10] ^= 0xff // flip a payload byte; stored CRC now mismatches
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bad checksum: err = %v", err)
	}
}

func TestReceiveStateUnknownFrameKind(t *testing.T) {
	var stream bytes.Buffer
	payload := []byte("p")
	header := []byte{'I', 'O', 'S', 'M', protocolVersion, 200, 0, 0, 0, 1}
	stream.Write(header)
	stream.Write(payload)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	stream.Write(crc[:])
	_, _, err := ReceiveState(&stream)
	if err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("unknown kind: err = %v", err)
	}
}

func TestWireMetricsAndSpans(t *testing.T) {
	m := wire()
	outBefore := m.bytesOut.Value()
	inBefore := m.bytesIn.Value()
	errBefore := m.errors.With("in").Value()

	clock := 0.0
	tr := obs.NewTracer(func() float64 { return clock })
	SetTracer(tr)
	defer SetTracer(nil)

	var stream bytes.Buffer
	if err := SendState(&stream, []byte("ggg"), []byte("ssss")); err != nil {
		t.Fatal(err)
	}
	wireLen := uint64(stream.Len())
	if _, _, err := ReceiveState(bytes.NewReader(stream.Bytes())); err != nil {
		t.Fatal(err)
	}

	if got := m.bytesOut.Value() - outBefore; got != wireLen {
		t.Fatalf("bytes out delta = %d, want %d", got, wireLen)
	}
	if got := m.bytesIn.Value() - inBefore; got != wireLen {
		t.Fatalf("bytes in delta = %d, want %d", got, wireLen)
	}

	// A truncated stream bumps the decode-error counter.
	if _, _, err := ReceiveState(bytes.NewReader(stream.Bytes()[:5])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if got := m.errors.With("in").Value(); got <= errBefore {
		t.Fatalf("decode errors = %d, want > %d", got, errBefore)
	}

	// Spans: a send root with three phases, a receive root.
	var names []string
	for _, r := range tr.Records() {
		names = append(names, r.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"migrate.send", "send.generic", "send.session", "send.cutover", "migrate.receive"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("spans missing %q: %v", want, names)
		}
	}
}
