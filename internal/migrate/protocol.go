package migrate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/obs"
)

// Wire protocol for real state transfers (used by cmd/meetupd): a tiny
// framed format over any io stream (normally TCP):
//
//	magic   [4]byte  "IOSM" (In-Orbit State Migration)
//	version uint8    (1)
//	kind    uint8    frame kind
//	length  uint32   payload byte count (big endian)
//	payload [length]byte
//	crc     uint32   CRC-32 (IEEE) of payload
//
// Frames are written atomically per call; the receiver validates magic,
// version, and checksum.

// FrameKind tags the payload semantics.
type FrameKind uint8

const (
	// FrameSession carries session-specific state.
	FrameSession FrameKind = 1
	// FrameGeneric carries generic (pre-replicated) state.
	FrameGeneric FrameKind = 2
	// FrameCutover signals the handover point: the receiver becomes the
	// authoritative server after this frame.
	FrameCutover FrameKind = 3
)

var magic = [4]byte{'I', 'O', 'S', 'M'}

const protocolVersion = 1

// maxFrame bounds a frame payload (64 MiB) so a corrupted length cannot make
// the receiver allocate unbounded memory.
const maxFrame = 64 << 20

// frameOverhead is the non-payload wire cost per frame: header + checksum.
const frameOverhead = 14

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind FrameKind, payload []byte) error {
	if err := writeFrame(w, kind, payload); err != nil {
		wire().errors.With("out").Inc()
		return err
	}
	m := wire()
	m.frames.With("out", kind.String()).Inc()
	m.bytesOut.Add(uint64(len(payload)) + frameOverhead)
	return nil
}

func writeFrame(w io.Writer, kind FrameKind, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("migrate: frame payload %d exceeds %d bytes", len(payload), maxFrame)
	}
	header := make([]byte, 10)
	copy(header[:4], magic[:])
	header[4] = protocolVersion
	header[5] = byte(kind)
	binary.BigEndian.PutUint32(header[6:10], uint32(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("migrate: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("migrate: write payload: %w", err)
		}
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("migrate: write checksum: %w", err)
	}
	return nil
}

// ReadFrame reads and validates one frame from r.
func ReadFrame(r io.Reader) (FrameKind, []byte, error) {
	kind, payload, err := readFrame(r)
	if err != nil {
		if err != io.EOF { // a clean EOF between frames is not a decode error
			wire().errors.With("in").Inc()
		}
		return kind, payload, err
	}
	m := wire()
	m.frames.With("in", kind.String()).Inc()
	m.bytesIn.Add(uint64(len(payload)) + frameOverhead)
	return kind, payload, nil
}

func readFrame(r io.Reader) (FrameKind, []byte, error) {
	header := make([]byte, 10)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, err // propagate io.EOF unchanged for clean shutdown
	}
	if [4]byte(header[:4]) != magic {
		return 0, nil, fmt.Errorf("migrate: bad magic %q", header[:4])
	}
	if header[4] != protocolVersion {
		return 0, nil, fmt.Errorf("migrate: unsupported version %d", header[4])
	}
	kind := FrameKind(header[5])
	length := binary.BigEndian.Uint32(header[6:10])
	if length > maxFrame {
		return 0, nil, fmt.Errorf("migrate: frame length %d exceeds %d", length, maxFrame)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("migrate: read payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, nil, fmt.Errorf("migrate: read checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(crc[:]); got != want {
		return 0, nil, fmt.Errorf("migrate: checksum mismatch (got %08x, want %08x)", got, want)
	}
	return kind, payload, nil
}

// SendState streams a full migration over w: generic state first (may be
// empty), then session state, then the cut-over marker. Each phase is
// recorded as a child span on the tracer installed via SetTracer.
func SendState(w io.Writer, generic, session []byte) error {
	start := time.Now()
	defer func() { wire().sendQ.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	root := tracer.Load().Start("migrate.send")
	root.SetAttr("generic_bytes", fmt.Sprint(len(generic)))
	root.SetAttr("session_bytes", fmt.Sprint(len(session)))
	defer root.End()

	if len(generic) > 0 {
		sp := root.Child("send.generic")
		err := WriteFrame(w, FrameGeneric, generic)
		sp.End()
		if err != nil {
			return err
		}
	}
	sp := root.Child("send.session")
	err := WriteFrame(w, FrameSession, session)
	sp.End()
	if err != nil {
		return err
	}
	sp = root.Child("send.cutover")
	err = WriteFrame(w, FrameCutover, nil)
	sp.End()
	return err
}

// ReceiveState consumes frames until the cut-over marker and returns the
// reassembled generic and session state.
func ReceiveState(r io.Reader) (generic, session []byte, err error) {
	var rx Receiver
	if err := rx.Receive(r); err != nil {
		return nil, nil, err
	}
	return rx.Generic, rx.Session, nil
}

// SendStateResumable streams a migration like SendState, but chunks both
// payloads into frames of at most chunk bytes (0 means DefaultChunk) and
// skips the first genericOff/sessionOff bytes — the prefix a receiver
// already holds from an earlier, interrupted attempt (Receiver.Offsets).
// Offsets outside [0, len] are an error: they indicate the two sides
// disagree about the transfer.
func SendStateResumable(w io.Writer, generic, session []byte, genericOff, sessionOff, chunk int) error {
	if genericOff < 0 || genericOff > len(generic) || sessionOff < 0 || sessionOff > len(session) {
		return fmt.Errorf("migrate: resume offsets %d/%d outside payloads %d/%d",
			genericOff, sessionOff, len(generic), len(session))
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	start := time.Now()
	defer func() { wire().sendQ.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	root := tracer.Load().Start("migrate.send")
	root.SetAttr("generic_bytes", fmt.Sprint(len(generic)-genericOff))
	root.SetAttr("session_bytes", fmt.Sprint(len(session)-sessionOff))
	root.SetAttr("resumed", fmt.Sprint(genericOff+sessionOff > 0))
	defer root.End()

	if err := sendChunked(root, "send.generic", w, FrameGeneric, generic[genericOff:], chunk); err != nil {
		return err
	}
	// The session frame is always written, even when empty or fully
	// resumed, so the receiver's session buffer is marked present.
	if err := sendChunked(root, "send.session", w, FrameSession, session[sessionOff:], chunk); err != nil {
		return err
	}
	sp := root.Child("send.cutover")
	err := WriteFrame(w, FrameCutover, nil)
	sp.End()
	return err
}

// DefaultChunk is the resumable-send frame payload size: small enough that
// an interrupted transfer loses at most one chunk of progress, large
// enough that frame overhead stays negligible.
const DefaultChunk = 256 << 10

// sendChunked writes payload as ceil(len/chunk) frames of the given kind
// (at least one frame for FrameSession so an empty session still appears).
func sendChunked(root *obs.Span, label string, w io.Writer, kind FrameKind, payload []byte, chunk int) error {
	if len(payload) == 0 && kind != FrameSession {
		return nil
	}
	sp := root.Child(label)
	defer sp.End()
	for {
		n := len(payload)
		if n > chunk {
			n = chunk
		}
		if err := WriteFrame(w, kind, payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
		if len(payload) == 0 {
			return nil
		}
	}
}

// Receiver reassembles a migration across one or more connections: frames
// accumulate into Generic and Session, and when a transfer attempt dies
// mid-stream the partial state is retained so the sender can resume from
// Offsets instead of starting over.
type Receiver struct {
	// Generic and Session hold the bytes received so far.
	Generic, Session []byte
	// Done is true once the cut-over marker arrived.
	Done bool
}

// Offsets returns how many generic and session bytes the receiver already
// holds — what a resuming sender passes to SendStateResumable.
func (rx *Receiver) Offsets() (generic, session int) {
	return len(rx.Generic), len(rx.Session)
}

// Receive consumes frames from r until the cut-over marker. On error the
// partially received state stays in the receiver for a later resume; on
// success Done is set and the assembled state is in Generic/Session.
func (rx *Receiver) Receive(r io.Reader) error {
	if rx.Done {
		return fmt.Errorf("migrate: receiver already completed")
	}
	root := tracer.Load().Start("migrate.receive")
	defer func() {
		root.SetAttr("generic_bytes", fmt.Sprint(len(rx.Generic)))
		root.SetAttr("session_bytes", fmt.Sprint(len(rx.Session)))
		root.End()
	}()
	for {
		kind, payload, err := ReadFrame(r)
		if err != nil {
			return err
		}
		switch kind {
		case FrameGeneric:
			rx.Generic = append(rx.Generic, payload...)
		case FrameSession:
			rx.Session = append(rx.Session, payload...)
		case FrameCutover:
			rx.Done = true
			return nil
		default:
			return fmt.Errorf("migrate: unknown frame kind %d", kind)
		}
	}
}
