package migrate

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// tcpPair returns both ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	<-done
	if derr != nil {
		t.Fatal(derr)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestTimeoutReaderStalledPeer: a receive from a peer that sends a partial
// frame and then goes silent must fail with a timeout, not block forever.
func TestTimeoutReaderStalledPeer(t *testing.T) {
	client, server := tcpPair(t)

	// The "wedged sender": half a frame header, then silence.
	go func() {
		client.Write([]byte("IOSM\x01"))
		// Keep the conn open so the stall is a hang, not an EOF.
	}()

	start := time.Now()
	_, _, err := ReceiveState(TimeoutReader(bufio.NewReader(server), server, 50*time.Millisecond))
	if err == nil {
		t.Fatal("receive from a stalled peer succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not armed", elapsed)
	}
}

// TestTimeoutWriterStalledPeer: writing to a peer that never reads must
// eventually trip the write deadline once the kernel buffers fill.
func TestTimeoutWriterStalledPeer(t *testing.T) {
	client, _ := tcpPair(t)
	// The server end never reads.

	payload := bytes.Repeat([]byte("x"), 1<<20)
	w := TimeoutWriter(client, client, 50*time.Millisecond)
	var err error
	for i := 0; i < 64 && err == nil; i++ { // ~64 MB >> any socket buffer
		err = WriteFrame(w, FrameSession, payload)
	}
	if err == nil {
		t.Fatal("writes to a stalled peer never failed")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}

// TestTimeoutDisabled: non-positive timeouts return the stream unchanged.
func TestTimeoutDisabled(t *testing.T) {
	var buf bytes.Buffer
	if r := TimeoutReader(&buf, nil, 0); r != &buf {
		t.Error("TimeoutReader(0) wrapped the reader")
	}
	if w := TimeoutWriter(&buf, nil, -time.Second); w != &buf {
		t.Error("TimeoutWriter(<0) wrapped the writer")
	}
}
