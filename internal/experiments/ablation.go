package experiments

import (
	"fmt"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/meetup"
	"repro/internal/netgraph"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/visibility"
)

// StickyAblationRow is one configuration's outcome.
type StickyAblationRow struct {
	LatencyBand float64
	PoolSize    int
	// MedianHoldSec is the median time between hand-offs.
	MedianHoldSec float64
	// Handoffs counts total hand-offs across groups.
	Handoffs int
	// MeanRTTMs is the average group RTT paid.
	MeanRTTMs float64
}

// StickyAblation sweeps the Sticky knobs (latency band, pool size) the
// paper fixes at 10%/5, exposing the stationarity-vs-latency trade-off.
func StickyAblation(bands []float64, pools []int, base Fig67Config) ([]StickyAblationRow, error) {
	if len(bands) == 0 {
		bands = []float64{0.05, 0.10, 0.25, 0.50}
	}
	if len(pools) == 0 {
		pools = []int{1, 3, 5, 10}
	}
	var out []StickyAblationRow
	for _, band := range bands {
		for _, pool := range pools {
			cfg := base
			cfg.Meetup = meetup.Config{LatencyBand: band, PoolSize: pool}
			res, err := Fig67(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation band=%v pool=%d: %w", band, pool, err)
			}
			row := StickyAblationRow{
				LatencyBand: band,
				PoolSize:    pool,
				Handoffs:    res.HandoffsSticky,
				MeanRTTMs:   res.MeanRTTSticky,
			}
			if res.IntervalsSticky.N() > 0 {
				row.MedianHoldSec = res.IntervalsSticky.Median()
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// TransferAblationResult compares state-transfer latency over the +grid ISL
// path versus the (unrealisable) direct line-of-sight bound, for successor
// pairs drawn from real hand-offs.
type TransferAblationResult struct {
	ISL, LineOfSight *stats.CDF
	// MeanInflation is mean(ISL / LoS) over pairs.
	MeanInflation float64
}

// TransferAblation measures how much the +grid topology inflates transfer
// latency over the free-space bound (DESIGN.md ablation "ISL vs LoS").
func TransferAblation(cfg Fig67Config) (TransferAblationResult, error) {
	cfg = cfg.withDefaults()
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return TransferAblationResult{}, err
	}
	c := consts[0]
	grid := isl.NewPlusGrid(c)
	groups, err := trace.Groups(trace.GroupConfig{
		Seed: cfg.Seed, Groups: cfg.Groups, MinUsers: cfg.UsersMin, MaxUsers: cfg.UsersMax,
		SpreadKm: cfg.SpreadKm, MaxAbsLatDeg: 52,
	})
	if err != nil {
		return TransferAblationResult{}, err
	}
	res := TransferAblationResult{ISL: stats.NewCDF(), LineOfSight: stats.NewCDF()}
	sumInfl, nInfl := 0.0, 0
	for _, g := range groups {
		p, err := meetup.NewPlanner(c, grid, g.Users, cfg.Meetup)
		if err != nil {
			return TransferAblationResult{}, err
		}
		prov := meetup.NewProviderFor(engineFor(c))
		sr, err := p.Simulate(prov, meetup.Sticky, 0, cfg.DurationSec, cfg.StepSec)
		if err != nil {
			continue
		}
		for _, h := range sr.Handoffs {
			snap := prov.At(h.TimeSec)
			islPath, err := netgraph.ISLShortest(grid, snap, h.From, h.To)
			if err != nil {
				continue // cross-shell pair: no ISL path exists
			}
			los := units.PropagationDelayMs(snap[h.From].Distance(snap[h.To]))
			res.ISL.Add(islPath.OneWayMs)
			res.LineOfSight.Add(los)
			if los > 0 {
				sumInfl += islPath.OneWayMs / los
				nInfl++
			}
		}
	}
	if nInfl > 0 {
		res.MeanInflation = sumInfl / float64(nInfl)
	}
	return res, nil
}

// MaskAblationRow is one elevation-mask configuration's coverage outcome.
type MaskAblationRow struct {
	MaskDeg float64
	// MeanReachable is the mean reachable-satellite count at the sample
	// latitudes.
	MeanReachable float64
	// WorstNearestRTTMs is the worst nearest-satellite RTT over samples.
	WorstNearestRTTMs float64
	// UncoveredSamples counts latitude/time samples with no satellite.
	UncoveredSamples int
}

// MaskAblation sweeps the minimum elevation mask (DESIGN.md ablation):
// lower masks widen coverage cones (more reachable satellites, longer
// slant paths), higher masks do the opposite.
func MaskAblation(masks []float64, latStep float64, samples int) ([]MaskAblationRow, error) {
	if len(masks) == 0 {
		masks = []float64{15, 25, 35, 45}
	}
	if latStep <= 0 {
		latStep = 5
	}
	if samples <= 0 {
		samples = 10
	}
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		return nil, err
	}
	var out []MaskAblationRow
	for _, mask := range masks {
		obs := visibility.NewObserverWithMask(c, mask)
		row := MaskAblationRow{MaskDeg: mask}
		total, count := 0, 0
		for s := 0; s < samples; s++ {
			snap := engineFor(c).SnapshotAt(float64(s) * 60)
			for lat := 0.0; lat <= 60; lat += latStep {
				g := geo.LatLon{LatDeg: lat}.ECEF()
				n := obs.CountReachable(g, snap)
				total += n
				count++
				if n == 0 {
					row.UncoveredSamples++
					continue
				}
				near, _, _ := obs.NearestFarthest(g, snap)
				if rtt := units.RTTMs(near); rtt > row.WorstNearestRTTMs {
					row.WorstNearestRTTMs = rtt
				}
			}
		}
		row.MeanReachable = float64(total) / float64(count)
		out = append(out, row)
	}
	return out, nil
}
