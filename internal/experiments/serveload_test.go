package experiments

import "testing"

func TestServePolicyStudy(t *testing.T) {
	rows, err := ServePolicyStudy([]float64{300})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want one per policy", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Policy] = true
		if r.RatePerSec != 300 {
			t.Fatalf("row rate %v", r.RatePerSec)
		}
		if r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
			t.Fatalf("bad latency quantiles: %+v", r)
		}
		if r.ShedPct < 0 || r.ShedPct > 100 {
			t.Fatalf("shed pct %v out of range", r.ShedPct)
		}
		if r.SatsUsed <= 0 || r.MaxUtilPct <= 0 {
			t.Fatalf("no load reached the satellites: %+v", r)
		}
	}
	for _, name := range []string{"nearest", "least-loaded", "sticky"} {
		if !seen[name] {
			t.Fatalf("policy %s missing from study", name)
		}
	}
}

func TestServePolicyStudyDeterministic(t *testing.T) {
	a, err := ServePolicyStudy([]float64{200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServePolicyStudy([]float64{200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
