package experiments

import (
	"fmt"
	"math"

	"repro/internal/cdn"
	"repro/internal/dcs"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/trace"
	"repro/internal/weather"
)

// The extension experiments go beyond the paper's figures, covering the
// §6 discussion items the paper flags but does not analyze (weather) and
// the §3.2 matchmaking framing.

// WeatherRow is one climate/margin configuration's availability.
type WeatherRow struct {
	Climate  string
	Band     weather.Band
	MarginDB float64
	// Availability is the fraction of time the in-orbit service is
	// reachable through rain, using the best-elevation satellite in view.
	Availability float64
	// OutageMmH is the rain rate at which the best-elevation link drops.
	OutageMmH float64
}

// WeatherStudy quantifies §6's weather caveat: for each climate zone and
// link margin, the availability of in-orbit compute through rain. The
// elevation of the best satellite in view is taken from the Starlink Fig 2
// geometry (a satellite near zenith is almost always available, so the
// effective elevation is high).
func WeatherStudy(margins []float64) ([]WeatherRow, error) {
	if len(margins) == 0 {
		margins = []float64{4, 8, 12}
	}
	climates := []weather.Climate{weather.Arid, weather.Temperate, weather.Tropical}
	// Best-elevation satellite from a mid-latitude point with 40+ Starlink
	// satellites in view: typically 60-80°; use a conservative 55°.
	const bestElevation = 55.0
	var out []WeatherRow
	for _, cl := range climates {
		for _, m := range margins {
			l := weather.Link{Band: weather.KaBand, MarginDB: m}
			avail, err := weather.ComputeAvailability(l, cl, []float64{bestElevation})
			if err != nil {
				return nil, err
			}
			knee, err := l.RainAtOutage(bestElevation)
			if err != nil {
				return nil, err
			}
			out = append(out, WeatherRow{
				Climate:      cl.Name,
				Band:         weather.KaBand,
				MarginDB:     m,
				Availability: avail,
				OutageMmH:    knee,
			})
		}
	}
	return out, nil
}

// MatchmakingRow is one separation bucket's outcome.
type MatchmakingRow struct {
	SeparationKm float64
	// PlayableTerrestrial is the fraction of groups whose best terrestrial
	// meetup server keeps every member under the latency cap.
	PlayableTerrestrial float64
	// PlayableInOrbit is the same with an in-orbit meetup server.
	PlayableInOrbit float64
	// MeanTerrestrialMs / MeanInOrbitMs average the group's worst-member
	// RTT for each placement.
	MeanTerrestrialMs, MeanInOrbitMs float64
}

// MatchmakingConfig tunes the study.
type MatchmakingConfig struct {
	// LatencyCapMs is the playability threshold (competitive games:
	// 50-80 ms RTT).
	LatencyCapMs float64
	// PairsPerBucket is how many two-player groups to sample per
	// separation.
	PairsPerBucket int
	// Separations lists the player separations to test, in km.
	Separations []float64
	// Seed fixes the sampling.
	Seed int64
}

func (c MatchmakingConfig) withDefaults() MatchmakingConfig {
	if c.LatencyCapMs <= 0 {
		c.LatencyCapMs = 80
	}
	if c.PairsPerBucket <= 0 {
		c.PairsPerBucket = 20
	}
	if len(c.Separations) == 0 {
		c.Separations = []float64{1000, 3000, 6000, 10000, 15000}
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Matchmaking reproduces the §3.2 framing quantitatively: matchmaking
// today restricts who can play together because a terrestrial server must
// be acceptable to everyone; an in-orbit meetup server relaxes that. For
// each separation bucket we sample player pairs anchored at population
// centers and compare playable fractions.
func Matchmaking(cfg MatchmakingConfig) ([]MatchmakingRow, error) {
	cfg = cfg.withDefaults()
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]
	prov := meetup.NewProviderFor(engineFor(c))

	// Terrestrial path model: fiber to the data center.
	var popLocs []geo.LatLon
	for _, r := range dcs.Regions() {
		popLocs = append(popLocs, r.Loc)
	}
	fiber := cdn.Terrestrial{PoPs: popLocs}.Defaults()

	// Anchors: seeded population-weighted cities, one per pair.
	anchors, err := trace.Groups(trace.GroupConfig{
		Seed: cfg.Seed, Groups: cfg.PairsPerBucket, MinUsers: 1, MaxUsers: 1,
		SpreadKm: 1, MaxAbsLatDeg: 50,
	})
	if err != nil {
		return nil, err
	}

	var out []MatchmakingRow
	for bi, sep := range cfg.Separations {
		row := MatchmakingRow{SeparationKm: sep}
		var playT, playO, n int
		var sumT, sumO float64
		for pi, g := range anchors {
			a := g.Users[0]
			// Partner at the bucket separation, deterministic bearing per
			// pair and bucket.
			brg := float64((pi*73 + bi*131) % 360)
			b := geo.Destination(a, brg, sep)
			if math.Abs(b.LatDeg) > 55 {
				continue // keep both players inside robust coverage
			}
			users := []geo.LatLon{a, b}

			// Terrestrial: the minimax cloud region over the fiber model.
			_, worstKm := dcs.MinimaxRegion(users)
			terOneWay := worstKm*fiber.PathInflation/(299792.458*fiber.FiberSpeedFraction)*1000 + fiber.LastMileMs
			ter := 2 * terOneWay

			// In-orbit: routed meetup placement at one snapshot.
			net := meetup.GroupNetwork(prov, users, nil)
			placed, err := meetup.BestRouted(net.At(0), len(users))
			if err != nil {
				continue // coverage gap; skip the pair
			}
			orb := placed.GroupRTTMs

			n++
			sumT += ter
			sumO += orb
			if ter <= cfg.LatencyCapMs {
				playT++
			}
			if orb <= cfg.LatencyCapMs {
				playO++
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: no valid pairs at %v km", sep)
		}
		row.PlayableTerrestrial = float64(playT) / float64(n)
		row.PlayableInOrbit = float64(playO) / float64(n)
		row.MeanTerrestrialMs = sumT / float64(n)
		row.MeanInOrbitMs = sumO / float64(n)
		out = append(out, row)
	}
	return out, nil
}
