package experiments

import (
	"fmt"
	"math"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/units"
	"repro/internal/visibility"
)

// LatitudeSweepConfig parameterises the Fig 1/2 sweeps.
type LatitudeSweepConfig struct {
	// Constellations to sweep (default: Starlink + Kuiper).
	Constellations ConstellationSet
	// LatStepDeg is the latitude grid step (default 1°).
	LatStepDeg float64
	// SampleEverySec and DurationSec define the time sampling (paper:
	// every minute over two hours).
	SampleEverySec, DurationSec float64
	// LonDeg fixes the ground longitude (the sweep is longitude-invariant
	// in distribution; the paper uses a fixed meridian).
	LonDeg float64
}

func (c LatitudeSweepConfig) withDefaults() LatitudeSweepConfig {
	if !c.Constellations.Starlink && !c.Constellations.Kuiper && !c.Constellations.Telesat {
		c.Constellations = Both()
	}
	if c.LatStepDeg <= 0 {
		c.LatStepDeg = 1
	}
	if c.SampleEverySec <= 0 {
		c.SampleEverySec = 60
	}
	if c.DurationSec <= 0 {
		c.DurationSec = 7200
	}
	return c
}

// Fig1Row is one latitude's result for one constellation.
type Fig1Row struct {
	LatDeg float64
	// MinRTTMs is the max-over-time of the nearest-satellite RTT.
	MinRTTMs float64
	// MaxRTTMs is the max-over-time of the farthest-reachable RTT.
	MaxRTTMs float64
	// Covered is false when some sample instant had no reachable satellite.
	Covered bool
}

// Fig1Result holds one constellation's curve.
type Fig1Result struct {
	Constellation string
	Rows          []Fig1Row
}

// Series converts the result to plot series (uncovered rows skipped).
func (r Fig1Result) Series() (minS, maxS plot.Series) {
	minS.Name = r.Constellation + " min RTT"
	maxS.Name = r.Constellation + " max RTT"
	for _, row := range r.Rows {
		if !row.Covered {
			continue
		}
		minS.X = append(minS.X, row.LatDeg)
		minS.Y = append(minS.Y, row.MinRTTMs)
		maxS.X = append(maxS.X, row.LatDeg)
		maxS.Y = append(maxS.Y, row.MaxRTTMs)
	}
	return minS, maxS
}

// Fig1 reproduces Figure 1: max and min RTT to reachable satellite-servers
// versus ground latitude, worst case over the sampled window.
func Fig1(cfg LatitudeSweepConfig) ([]Fig1Result, error) {
	cfg = cfg.withDefaults()
	consts, err := cfg.Constellations.build()
	if err != nil {
		return nil, err
	}
	var out []Fig1Result
	for _, c := range consts {
		res, err := fig1One(c, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func fig1One(c *constellation.Constellation, cfg LatitudeSweepConfig) (Fig1Result, error) {
	obs := visibility.NewObserver(c)
	eng := engineFor(c)
	steps := int(cfg.DurationSec/cfg.SampleEverySec) + 1
	snapshots := make([][]geo.Vec3, steps)
	for i := 0; i < steps; i++ {
		snapshots[i] = eng.SnapshotAt(float64(i) * cfg.SampleEverySec)
	}
	nLats := int(90/cfg.LatStepDeg) + 1
	rows := make([]Fig1Row, nLats)
	err := parallelFor(nLats, func(li int) error {
		lat := float64(li) * cfg.LatStepDeg
		g := geo.LatLon{LatDeg: lat, LonDeg: cfg.LonDeg}.ECEF()
		row := Fig1Row{LatDeg: lat, Covered: true}
		for _, snap := range snapshots {
			near, far, ok := obs.NearestFarthest(g, snap)
			if !ok {
				row.Covered = false
				break
			}
			row.MinRTTMs = math.Max(row.MinRTTMs, units.RTTMs(near))
			row.MaxRTTMs = math.Max(row.MaxRTTMs, units.RTTMs(far))
		}
		rows[li] = row
		return nil
	})
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{Constellation: c.Name, Rows: rows}, nil
}

// Fig2Row is one latitude's reachable-count statistics.
type Fig2Row struct {
	LatDeg             float64
	MeanCount          float64
	MinCount, MaxCount int
}

// Fig2Result holds one constellation's curve.
type Fig2Result struct {
	Constellation string
	Rows          []Fig2Row
}

// Series converts the result to avg/min/max plot series.
func (r Fig2Result) Series() (avg, minS, maxS plot.Series) {
	avg.Name = r.Constellation + " avg"
	minS.Name = r.Constellation + " min"
	maxS.Name = r.Constellation + " max"
	for _, row := range r.Rows {
		avg.X = append(avg.X, row.LatDeg)
		avg.Y = append(avg.Y, row.MeanCount)
		minS.X = append(minS.X, row.LatDeg)
		minS.Y = append(minS.Y, float64(row.MinCount))
		maxS.X = append(maxS.X, row.LatDeg)
		maxS.Y = append(maxS.Y, float64(row.MaxCount))
	}
	return avg, minS, maxS
}

// Fig2 reproduces Figure 2: the number of satellite-servers within range
// versus latitude (average, minimum, and maximum across time).
func Fig2(cfg LatitudeSweepConfig) ([]Fig2Result, error) {
	cfg = cfg.withDefaults()
	consts, err := cfg.Constellations.build()
	if err != nil {
		return nil, err
	}
	var out []Fig2Result
	for _, c := range consts {
		obs := visibility.NewObserver(c)
		eng := engineFor(c)
		steps := int(cfg.DurationSec/cfg.SampleEverySec) + 1
		snapshots := make([][]geo.Vec3, steps)
		for i := 0; i < steps; i++ {
			snapshots[i] = eng.SnapshotAt(float64(i) * cfg.SampleEverySec)
		}
		nLats := int(90/cfg.LatStepDeg) + 1
		rows := make([]Fig2Row, nLats)
		err := parallelFor(nLats, func(li int) error {
			lat := float64(li) * cfg.LatStepDeg
			g := geo.LatLon{LatDeg: lat, LonDeg: cfg.LonDeg}.ECEF()
			row := Fig2Row{LatDeg: lat, MinCount: 1 << 30}
			sum := 0
			for _, snap := range snapshots {
				n := obs.CountReachable(g, snap)
				sum += n
				if n < row.MinCount {
					row.MinCount = n
				}
				if n > row.MaxCount {
					row.MaxCount = n
				}
			}
			row.MeanCount = float64(sum) / float64(len(snapshots))
			rows[li] = row
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2Result{Constellation: c.Name, Rows: rows})
	}
	return out, nil
}

// Fig1Check verifies the paper's prose claims against a Fig 1 result and
// returns a human-readable summary (used by EXPERIMENTS.md generation).
func Fig1Check(r Fig1Result) string {
	worstNear, worstFar := 0.0, 0.0
	for _, row := range r.Rows {
		if !row.Covered {
			continue
		}
		worstNear = math.Max(worstNear, row.MinRTTMs)
		worstFar = math.Max(worstFar, row.MaxRTTMs)
	}
	return fmt.Sprintf("%s: nearest-satellite RTT <= %.1f ms everywhere covered; farthest-reachable <= %.1f ms",
		r.Constellation, worstNear, worstFar)
}
