package experiments

import (
	"math"
	"strings"
	"testing"
)

// The tests here run the real experiments at reduced time resolution so the
// full suite stays in tens of seconds; cmd/figures runs paper scale.

func fastSweep() LatitudeSweepConfig {
	return LatitudeSweepConfig{
		LatStepDeg:     5,
		SampleEverySec: 600,
		DurationSec:    3600,
	}
}

func TestFig1PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellations")
	}
	results, err := Fig1(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	var starlink, kuiper Fig1Result
	for _, r := range results {
		if strings.Contains(r.Constellation, "Starlink") {
			starlink = r
		} else {
			kuiper = r
		}
	}
	// Paper: Starlink's nearest satellite is within 11 ms RTT across all
	// ground locations; farthest within 16 ms.
	for _, row := range starlink.Rows {
		if !row.Covered {
			t.Fatalf("Starlink uncovered at lat %v", row.LatDeg)
		}
		if row.MinRTTMs > 12 {
			t.Errorf("Starlink nearest RTT %v ms at lat %v exceeds ~11", row.MinRTTMs, row.LatDeg)
		}
		if row.MaxRTTMs > 17 {
			t.Errorf("Starlink farthest RTT %v ms at lat %v exceeds ~16", row.MaxRTTMs, row.LatDeg)
		}
	}
	// Paper: the nearest satellite is within ~4 ms at most latitudes.
	lowLatCount := 0
	for _, row := range starlink.Rows {
		if row.LatDeg <= 55 && row.MinRTTMs <= 5 {
			lowLatCount++
		}
	}
	if lowLatCount < 8 {
		t.Errorf("only %d low latitudes with ≤5 ms nearest RTT", lowLatCount)
	}
	// Paper: Kuiper provides no service beyond 60° latitude.
	for _, row := range kuiper.Rows {
		if row.LatDeg > 62 && row.Covered {
			t.Errorf("Kuiper covered at lat %v, should cut off near 60°", row.LatDeg)
		}
		if row.LatDeg < 40 && !row.Covered {
			t.Errorf("Kuiper uncovered at low latitude %v", row.LatDeg)
		}
	}
	if s := Fig1Check(starlink); !strings.Contains(s, "Starlink") {
		t.Errorf("Fig1Check output: %q", s)
	}
	// Series round trip.
	minS, maxS := starlink.Series()
	if !minS.Valid() || !maxS.Valid() {
		t.Fatal("invalid series")
	}
}

func TestFig2PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellations")
	}
	results, err := Fig2(fastSweep())
	if err != nil {
		t.Fatal(err)
	}
	var starlink, kuiper Fig2Result
	for _, r := range results {
		if strings.Contains(r.Constellation, "Starlink") {
			starlink = r
		} else {
			kuiper = r
		}
	}
	// Paper: for Starlink, 30+ satellites reachable from almost all
	// locations at all times; typically more than 40.
	okLats, typ40 := 0, 0
	for _, row := range starlink.Rows {
		if row.LatDeg > 58 {
			continue // the paper's "almost all" excludes the polar fringe
		}
		if row.MinCount >= 25 {
			okLats++
		}
		if row.MeanCount > 40 {
			typ40++
		}
	}
	if okLats < 9 {
		t.Errorf("Starlink: only %d/12 mid-latitudes with min reachable ≥25", okLats)
	}
	if typ40 < 6 {
		t.Errorf("Starlink: only %d latitudes averaging >40 reachable", typ40)
	}
	// Paper: for Kuiper, 10+ satellites for most serviced latitudes.
	served10 := 0
	for _, row := range kuiper.Rows {
		if row.LatDeg <= 50 && row.MeanCount >= 10 {
			served10++
		}
	}
	if served10 < 7 {
		t.Errorf("Kuiper: only %d latitudes with mean ≥10 reachable", served10)
	}
	avg, minS, maxS := starlink.Series()
	if !avg.Valid() || !minS.Valid() || !maxS.Valid() {
		t.Fatal("invalid series")
	}
}

func TestFig3WestAfrica(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation + routing")
	}
	res, err := Fig3(WestAfricaScenario(), Fig3Config{SampleEverySec: 600, DurationSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: in-orbit 16 ms vs hybrid 46 ms, "almost 3x".
	if res.InOrbitRTTMs < 8 || res.InOrbitRTTMs > 22 {
		t.Errorf("in-orbit RTT = %.1f ms, want ≈16", res.InOrbitRTTMs)
	}
	if res.TerrestrialRTTMs < 30 || res.TerrestrialRTTMs > 70 {
		t.Errorf("terrestrial RTT = %.1f ms, want ≈46", res.TerrestrialRTTMs)
	}
	if res.Improvement < 1.8 {
		t.Errorf("improvement = %.2fx, want ≥1.8 (paper ~3x)", res.Improvement)
	}
	// Paper: 9,200 km round trip to the farthest user → ~4,600 one way.
	if res.GeodesicKm < 3500 || res.GeodesicKm > 5500 {
		t.Errorf("geodesic = %.0f km, want ≈4,600", res.GeodesicKm)
	}
	// Paper: Sticky costs ~1.4 ms extra.
	if res.StickyPremiumMs < 0 || res.StickyPremiumMs > 5 {
		t.Errorf("sticky premium = %.2f ms, want small positive", res.StickyPremiumMs)
	}
}

func TestFig3TriContinent(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation + routing")
	}
	res, err := Fig3(TriContinentScenario(), Fig3Config{SampleEverySec: 900, DurationSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: best terrestrial 97 ms vs in-orbit 66 ms on Kuiper.
	if res.InOrbitRTTMs < 50 || res.InOrbitRTTMs > 90 {
		t.Errorf("in-orbit RTT = %.1f ms, want ≈66", res.InOrbitRTTMs)
	}
	if res.TerrestrialRTTMs < 80 || res.TerrestrialRTTMs > 130 {
		t.Errorf("terrestrial RTT = %.1f ms, want ≈97", res.TerrestrialRTTMs)
	}
	if res.Improvement <= 1 {
		t.Errorf("in-orbit should win: improvement = %.2f", res.Improvement)
	}
}

func TestFig3Validation(t *testing.T) {
	if _, err := Fig3(Fig3Scenario{Constellation: "nope"}, Fig3Config{}); err == nil {
		t.Fatal("unknown constellation accepted")
	}
	sc := WestAfricaScenario()
	sc.DCNames = []string{"Atlantis"}
	if _, err := Fig3(sc, Fig3Config{SampleEverySec: 600, DurationSec: 600}); err == nil {
		t.Fatal("unknown region accepted")
	}
}

func TestFig4PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellations")
	}
	results, err := Fig4(Fig4Config{})
	if err != nil {
		t.Fatal(err)
	}
	var starlink, kuiper Fig4Result
	for _, r := range results {
		if strings.Contains(r.Constellation, "Starlink") {
			starlink = r
		} else {
			kuiper = r
		}
	}
	// Monotone: more cities can only see more satellites.
	for _, r := range results {
		for i := 1; i < len(r.Invisible); i++ {
			if r.Invisible[i] > r.Invisible[i-1] {
				t.Errorf("%s: invisible count not monotone at n=%d", r.Constellation, r.NValues[i])
			}
		}
	}
	// Paper: at n=1000, more than a third of Starlink's and more than half
	// of Kuiper's satellites are invisible.
	sFrac := float64(starlink.Invisible[len(starlink.Invisible)-1]) / float64(starlink.Total)
	kFrac := float64(kuiper.Invisible[len(kuiper.Invisible)-1]) / float64(kuiper.Total)
	if sFrac < 0.28 || sFrac > 0.6 {
		t.Errorf("Starlink invisible fraction at n=1000 = %.2f, paper: >1/3", sFrac)
	}
	if kFrac < 0.42 || kFrac > 0.75 {
		t.Errorf("Kuiper invisible fraction at n=1000 = %.2f, paper: >1/2", kFrac)
	}
	if kFrac <= sFrac {
		t.Errorf("Kuiper (%.2f) should have more invisible than Starlink (%.2f)", kFrac, sFrac)
	}
	if s := starlink.Series(); !s.Valid() {
		t.Fatal("invalid Fig4 series")
	}
}

func TestFig4Validation(t *testing.T) {
	if _, err := Fig4(Fig4Config{NValues: []int{-5}}); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestFig5SouthernSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	results, err := Fig5(ConstellationSet{Starlink: true}, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if len(r.InvisibleSats) == 0 {
		t.Fatal("no invisible satellites")
	}
	// Paper (Fig 5): the vast majority of invisible satellites sit south
	// of the world's population.
	south := 0
	for _, s := range r.InvisibleSats {
		if s.LatDeg < 0 {
			south++
		}
	}
	if frac := float64(south) / float64(len(r.InvisibleSats)); frac < 0.55 {
		t.Errorf("southern invisible fraction = %.2f, expected majority south", frac)
	}
	// The map renders without panicking and contains both glyphs.
	m := RenderFig5(r, 120, 40)
	var sb strings.Builder
	if err := m.Render(&sb, "fig5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "O") || !strings.Contains(sb.String(), "+") {
		t.Fatal("map missing glyphs")
	}
}

func TestFig5Validation(t *testing.T) {
	if _, err := Fig5(ConstellationSet{Starlink: true}, 0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFig67PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := Fig67(Fig67Config{Groups: 6, DurationSec: 3600, StepSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupsSimulated == 0 {
		t.Fatal("no groups simulated")
	}
	// Fig 6 shape: Sticky hand-offs are less frequent and last longer.
	if res.HandoffsSticky >= res.HandoffsMinMax {
		t.Errorf("Sticky handoffs (%d) not fewer than MinMax (%d)", res.HandoffsSticky, res.HandoffsMinMax)
	}
	if ratio := res.MedianRatio(); ratio < 1.2 {
		t.Errorf("median hold ratio = %.2f, want > 1.2 (paper ~4)", ratio)
	}
	// Fig 7 shape: transfer latencies similar and low for both.
	mmMed := res.TransfersMinMax.Median()
	stMed := res.TransfersSticky.Median()
	if mmMed <= 0 || mmMed > 20 || stMed <= 0 || stMed > 20 {
		t.Errorf("transfer medians %v / %v ms out of the paper's low range", mmMed, stMed)
	}
	if math.Abs(mmMed-stMed) > 10 {
		t.Errorf("transfer medians diverge: %v vs %v", mmMed, stMed)
	}
	// Sticky's latency premium stays small.
	if res.MeanRTTSticky-res.MeanRTTMinMax > 5 {
		t.Errorf("sticky premium %.2f ms too large", res.MeanRTTSticky-res.MeanRTTMinMax)
	}
	mm6, st6 := res.Fig6Series()
	mm7, st7 := res.Fig7Series()
	for _, s := range []struct {
		name string
		ok   bool
	}{{"mm6", mm6.Valid()}, {"st6", st6.Valid()}, {"mm7", mm7.Valid()}, {"st7", st7.Valid()}} {
		if !s.ok {
			t.Errorf("series %s invalid", s.name)
		}
	}
}

func TestFeasibilityTable(t *testing.T) {
	table, rep, err := FeasibilityTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "Cost ratio") || !strings.Contains(table, "42") {
		t.Errorf("table missing rows:\n%s", table)
	}
	if rep.CostRatio < 2.5 || rep.CostRatio > 4.5 {
		t.Errorf("cost ratio %.2f out of the paper's ~3x", rep.CostRatio)
	}
}

func TestEOSweep(t *testing.T) {
	rows, err := EOSweep(0.08, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sensing duty grows with preprocessing until processing-bound.
	for i := 1; i < len(rows); i++ {
		if rows[i].SensingDuty < rows[i-1].SensingDuty-1e-9 {
			t.Errorf("duty fell at factor %v", rows[i].PreprocessFactor)
		}
	}
	if rows[0].PreprocessFactor != 1 || rows[0].DownlinkSavings != 0 {
		t.Errorf("baseline row wrong: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.SensingDuty < 3*rows[0].SensingDuty {
		t.Errorf("preprocessing gain too small: %v vs %v", last.SensingDuty, rows[0].SensingDuty)
	}
}

func TestMaskAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	rows, err := MaskAblation([]float64{15, 25, 40}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lower mask → more reachable satellites.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanReachable >= rows[i-1].MeanReachable {
			t.Errorf("reachable count did not fall from mask %v to %v",
				rows[i-1].MaskDeg, rows[i].MaskDeg)
		}
	}
}

func TestConstellationSetValidation(t *testing.T) {
	if _, err := (ConstellationSet{}).build(); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestParallelForErrors(t *testing.T) {
	err := parallelFor(10, func(i int) error {
		if i == 5 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("err = %v", err)
	}
	// Single-element path.
	if err := parallelFor(1, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }

func TestWeatherStudy(t *testing.T) {
	rows, err := WeatherStudy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 3 climates x 3 margins", len(rows))
	}
	byKey := map[string]WeatherRow{}
	for _, r := range rows {
		byKey[r.Climate+"/"+fmtMargin(r.MarginDB)] = r
		if r.Availability <= 0.8 || r.Availability > 1 {
			t.Fatalf("availability out of range: %+v", r)
		}
		if r.OutageMmH <= 0 {
			t.Fatalf("no outage knee: %+v", r)
		}
	}
	// More margin → more availability; wetter climate → less.
	if byKey["tropical/4"].Availability >= byKey["tropical/12"].Availability {
		t.Fatal("margin should raise availability")
	}
	if byKey["tropical/8"].Availability >= byKey["arid/8"].Availability {
		t.Fatal("tropical should be less available than arid")
	}
}

func fmtMargin(m float64) string {
	return map[float64]string{4: "4", 8: "8", 12: "12"}[m]
}

func TestMatchmaking(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation routing")
	}
	rows, err := Matchmaking(MatchmakingConfig{PairsPerBucket: 8, Separations: []float64{1000, 8000, 15000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PlayableInOrbit < r.PlayableTerrestrial {
			t.Fatalf("in-orbit should never be less playable: %+v", r)
		}
		if r.MeanInOrbitMs <= 0 || r.MeanTerrestrialMs <= 0 {
			t.Fatalf("degenerate means: %+v", r)
		}
	}
	// Nearby players: both work. Far players: orbit wins on playability or
	// at least on mean latency.
	near, far := rows[0], rows[len(rows)-1]
	if near.PlayableInOrbit < 0.9 {
		t.Fatalf("nearby pairs should almost always be playable in orbit: %+v", near)
	}
	if far.MeanInOrbitMs >= far.MeanTerrestrialMs {
		t.Fatalf("orbit should beat fiber at %v km: %+v", far.SeparationKm, far)
	}
}

func TestChurnStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation routing")
	}
	rows, err := ChurnStudy(600, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanLatencyMs <= 0 {
			t.Fatalf("%s: no latency", r.Name)
		}
		if r.Stretch < 1 || r.Stretch > 6 {
			t.Fatalf("%s: stretch %v implausible", r.Name, r.Stretch)
		}
		if r.MedianPathLifeS <= 0 {
			t.Fatalf("%s: no path lifetime", r.Name)
		}
	}
	// Longer routes carry more absolute latency.
	byName := map[string]ChurnRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["Frankfurt-Singapore"].MeanLatencyMs <= byName["Abuja-Accra"].MeanLatencyMs {
		t.Fatal("long route should have higher latency than the short one")
	}
}

func TestCapacityStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	rows, err := CapacityStudy(nil, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Satisfaction falls and utilization grows with adoption.
	for i := 1; i < len(rows); i++ {
		if rows[i].SatisfiedPct > rows[i-1].SatisfiedPct+1e-9 {
			t.Fatalf("satisfaction rose with adoption: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].FleetUtilPct < rows[i-1].FleetUtilPct-1e-9 {
			t.Fatalf("utilization fell with adoption")
		}
	}
	// Idle fleet is adoption-independent (geometry only).
	for _, r := range rows[1:] {
		if r.IdleSats != rows[0].IdleSats {
			t.Fatalf("idle sats changed with adoption")
		}
	}
	if rows[0].IdleSats < 1000 {
		t.Fatalf("idle sats = %d, expected a large idle fleet (Fig 4)", rows[0].IdleSats)
	}
}

func TestEdgeLoadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	rows, err := EdgeLoadStudy([]float64{100, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var nearestHigh, leastHigh EdgeLoadRow
	for _, r := range rows {
		if r.ArrivalPerSec == 8000 {
			if r.Policy == "nearest" {
				nearestHigh = r
			} else {
				leastHigh = r
			}
		}
	}
	// Overload: nearest collapses, least-busy holds by spreading.
	if nearestHigh.P99Ms < 10*leastHigh.P99Ms {
		t.Fatalf("nearest p99 %v should dwarf least-busy %v under overload",
			nearestHigh.P99Ms, leastHigh.P99Ms)
	}
	if leastHigh.ServersUsed <= nearestHigh.ServersUsed {
		t.Fatalf("least-busy should use more servers: %d vs %d",
			leastHigh.ServersUsed, nearestHigh.ServersUsed)
	}
}

func TestCDNStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	rows, err := CDNStudy(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ter, orb := rows[0], rows[1]
	// The paper's §3.1 shape: terrestrial latency has a heavy tail (p95
	// approaching the 100 ms line); the in-orbit edge is single-digit
	// everywhere covered.
	if ter.P95Ms < 50 || ter.MaxMs < 90 {
		t.Fatalf("terrestrial tail too light: %+v", ter)
	}
	if orb.Over100msPct != 0 {
		t.Fatalf("in-orbit cities over 100 ms: %+v", orb)
	}
	if orb.P95Ms >= ter.P50Ms {
		t.Fatalf("orbital p95 %v not below terrestrial p50 %v", orb.P95Ms, ter.P50Ms)
	}
	if orb.MaxMs > 20 {
		t.Fatalf("orbital max %v ms implausible", orb.MaxMs)
	}
}

func TestTelesatSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full constellation")
	}
	// Telesat's 10° mask + polar shell: global coverage including poles.
	results, err := Fig1(LatitudeSweepConfig{
		Constellations: ConstellationSet{Telesat: true},
		LatStepDeg:     15,
		SampleEverySec: 1200,
		DurationSec:    3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Constellation != "Telesat" {
		t.Fatalf("results = %+v", results)
	}
	for _, row := range results[0].Rows {
		if !row.Covered {
			t.Fatalf("Telesat uncovered at lat %v — polar shell should cover everything", row.LatDeg)
		}
	}
}

func TestConfigDefaultBranches(t *testing.T) {
	// Fig67Config: UsersMax below UsersMin gets lifted.
	c := Fig67Config{UsersMin: 4, UsersMax: 2}.withDefaults()
	if c.UsersMax < c.UsersMin {
		t.Fatalf("defaults left inverted bounds: %+v", c)
	}
	// LatitudeSweepConfig fills everything.
	s := LatitudeSweepConfig{}.withDefaults()
	if s.LatStepDeg != 1 || s.SampleEverySec != 60 || s.DurationSec != 7200 {
		t.Fatalf("sweep defaults: %+v", s)
	}
	if !s.Constellations.Starlink || !s.Constellations.Kuiper {
		t.Fatal("sweep defaults should select both constellations")
	}
	// Fig3Config.
	f3 := Fig3Config{}.withDefaults()
	if f3.SampleEverySec != 60 || f3.DurationSec != 7200 {
		t.Fatalf("fig3 defaults: %+v", f3)
	}
	// MatchmakingConfig.
	mm := MatchmakingConfig{}.withDefaults()
	if mm.LatencyCapMs != 80 || mm.PairsPerBucket != 20 || len(mm.Separations) == 0 || mm.Seed == 0 {
		t.Fatalf("matchmaking defaults: %+v", mm)
	}
}

func TestStickyAblationDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// Default bands (4) x explicit pools (1) = 4 rows; exercise the
	// default-argument path without the full 16-config sweep.
	rows, err := StickyAblation(nil, []int{5}, Fig67Config{Groups: 2, DurationSec: 600, StepSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 default bands", len(rows))
	}
	for _, r := range rows {
		if r.PoolSize != 5 {
			t.Fatalf("pool = %d", r.PoolSize)
		}
	}
}

func TestParallelForProgress(t *testing.T) {
	before := Progress()
	if err := parallelFor(17, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := Progress() - before; got != 17 {
		t.Fatalf("progress delta = %d, want 17", got)
	}
	// An erroring iteration still counts as run. The serial path stops at
	// the first error (3 iterations); the parallel path drains the feed (4).
	before = Progress()
	_ = parallelFor(4, func(i int) error {
		if i == 2 {
			return errTest
		}
		return nil
	})
	if got := Progress() - before; got < 3 || got > 4 {
		t.Fatalf("progress delta with error = %d, want 3 or 4", got)
	}
}
