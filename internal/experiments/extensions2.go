package experiments

import (
	"fmt"

	"repro/internal/capacity"
	"repro/internal/cdn"
	"repro/internal/cities"
	"repro/internal/compute"
	"repro/internal/dcs"
	"repro/internal/edgesim"
	"repro/internal/geo"
	"repro/internal/netgraph"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/visibility"
)

// ChurnRow is one ground-pair's route-dynamics summary.
type ChurnRow struct {
	Name            string
	GeodesicKm      float64
	MedianPathLifeS float64
	PathChanges     int
	MeanLatencyMs   float64
	JitterMs        float64
	Stretch         float64
}

// ChurnStudy monitors representative ground-to-ground routes over Starlink
// and reports path lifetime, latency jitter, and stretch over the geodesic
// bound — the network-transit face of "highly dynamic yet predictable".
func ChurnStudy(durationSec, stepSec float64) ([]ChurnRow, error) {
	if durationSec <= 0 {
		durationSec = 1800
	}
	if stepSec <= 0 {
		stepSec = 15
	}
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]

	pairs := []struct {
		name string
		a, b geo.LatLon
	}{
		{"NewYork-London", geo.LatLon{LatDeg: 40.71, LonDeg: -74.01}, geo.LatLon{LatDeg: 51.51, LonDeg: -0.13}},
		{"Frankfurt-Singapore", geo.LatLon{LatDeg: 50.11, LonDeg: 8.68}, geo.LatLon{LatDeg: 1.35, LonDeg: 103.82}},
		{"SaoPaulo-Lagos", geo.LatLon{LatDeg: -23.55, LonDeg: -46.63}, geo.LatLon{LatDeg: 6.52, LonDeg: 3.38}},
		{"Abuja-Accra", geo.LatLon{LatDeg: 9.06, LonDeg: 7.49}, geo.LatLon{LatDeg: 5.60, LonDeg: -0.19}},
	}
	var out []ChurnRow
	for _, p := range pairs {
		net := netgraph.New(c, []geo.LatLon{p.a, p.b})
		rep, err := routing.MonitorPair(net, 0, 1, 0, durationSec, stepSec)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn %s: %w", p.name, err)
		}
		geodesic := geo.GreatCircleKm(p.a, p.b)
		row := ChurnRow{
			Name:          p.name,
			GeodesicKm:    geodesic,
			PathChanges:   len(rep.Changes),
			MeanLatencyMs: rep.Latency.Mean(),
			JitterMs:      rep.JitterMs(),
			Stretch:       routing.CompareWithGeodesic(rep, geodesic),
		}
		if rep.PathLifetimes.N() > 0 {
			row.MedianPathLifeS = rep.PathLifetimes.Median()
		}
		out = append(out, row)
	}
	return out, nil
}

// CapacityRow is one adoption level's fleet balance.
type CapacityRow struct {
	AdoptionPct       float64
	SatisfiedPct      float64
	FleetUtilPct      float64
	IdleSats          int
	WorstCity         string
	WorstSatisfiedPct float64
}

// CapacityStudy sweeps service adoption and balances urban core demand
// against the fleet's servers (one DL325 per satellite), quantifying both
// metro oversubscription and the idle southern fleet in one table.
func CapacityStudy(adoptions []float64, topN int) ([]CapacityRow, error) {
	if len(adoptions) == 0 {
		adoptions = []float64{0.001, 0.01, 0.05, 0.2}
	}
	if topN <= 0 {
		topN = 500
	}
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]
	spec := compute.DefaultServerSpec()

	var out []CapacityRow
	for _, a := range adoptions {
		rep, err := capacity.Balance(c, spec, capacity.Demand{
			AdoptionFraction:      a,
			CoresPerThousandUsers: 1,
		}, topN, 0)
		if err != nil {
			return nil, err
		}
		row := CapacityRow{
			AdoptionPct:  a * 100,
			SatisfiedPct: rep.SatisfiedFraction() * 100,
			FleetUtilPct: rep.FleetUtilization * 100,
			IdleSats:     rep.IdleSats,
		}
		if worst, ok := rep.WorstCity(); ok {
			row.WorstCity = worst.Name
			row.WorstSatisfiedPct = worst.SatisfiedFraction() * 100
		}
		out = append(out, row)
	}
	return out, nil
}

// EdgeLoadRow is one load point of the request-level edge study.
type EdgeLoadRow struct {
	ArrivalPerSec  float64
	Policy         string
	P50Ms, P99Ms   float64
	ServersUsed    int
	MaxUtilization float64
}

// EdgeLoadStudy runs the request-level simulation (§3.1 under load): a
// city-scale request stream against the satellites in view, comparing the
// nearest-satellite attachment with least-busy spreading.
func EdgeLoadStudy(rates []float64) ([]EdgeLoadRow, error) {
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]
	base := edgesim.Workload{ServiceSec: 0.01, Seed: 11}
	if len(rates) == 0 {
		rates = []float64{100, 1000, 4000, 8000}
	}
	var out []EdgeLoadRow
	for _, pol := range []edgesim.Policy{edgesim.Nearest, edgesim.LeastBusy} {
		cfg := edgesim.Config{
			Site:        geo.LatLon{LatDeg: 6.52, LonDeg: 3.38}, // Lagos
			CoresPerSat: 64,
			Policy:      pol,
			DurationSec: 20,
		}
		rows, err := edgesim.LoadSweep(c, cfg, base, rates)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			out = append(out, EdgeLoadRow{
				ArrivalPerSec:  r.ArrivalPerSec,
				Policy:         pol.String(),
				P50Ms:          r.P50Ms,
				P99Ms:          r.P99Ms,
				ServersUsed:    r.ServersUsed,
				MaxUtilization: r.MaxUtilization,
			})
		}
	}
	return out, nil
}

// CDNRow summarises the §3.1 latency distributions over population centers.
type CDNRow struct {
	Name string
	// P50Ms/P95Ms/MaxMs summarise the RTT distribution over cities,
	// population-unweighted.
	P50Ms, P95Ms, MaxMs float64
	// Over100msPct is the fraction of cities beyond the paper's 100 ms
	// line.
	Over100msPct float64
}

// CDNStudy computes the city-level RTT distribution to the terrestrial CDN
// (PoPs at the cloud regions) versus the in-orbit edge, quantifying the
// paper's "CDN edge latencies still exceed 100 ms" in distribution form.
func CDNStudy(topN int) ([]CDNRow, error) {
	if topN <= 0 {
		topN = 1000
	}
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]
	var pops []geo.LatLon
	for _, r := range dcs.Regions() {
		pops = append(pops, r.Loc)
	}
	ter := cdn.Terrestrial{PoPs: pops}.Defaults()
	orb := cdn.Orbital{Observer: visibility.NewObserver(c)}
	snap := engineFor(c).SnapshotAt(0)

	terCDF, orbCDF := stats.NewCDF(), stats.NewCDF()
	over100T, over100O, covered := 0, 0, 0
	for _, city := range cities.TopN(topN) {
		t, err := ter.RTTMs(city.Loc)
		if err != nil {
			return nil, err
		}
		terCDF.Add(t)
		if t > 100 {
			over100T++
		}
		if o, ok := orb.RTTMs(city.Loc, snap); ok {
			covered++
			orbCDF.Add(o)
			if o > 100 {
				over100O++
			}
		}
	}
	mk := func(name string, cdf *stats.CDF, over int, n int) CDNRow {
		row := CDNRow{Name: name}
		if cdf.N() > 0 {
			row.P50Ms = cdf.Median()
			row.P95Ms = cdf.Quantile(0.95)
			row.MaxMs = cdf.Max()
		}
		if n > 0 {
			row.Over100msPct = 100 * float64(over) / float64(n)
		}
		return row
	}
	return []CDNRow{
		mk("terrestrial CDN", terCDF, over100T, topN),
		mk("in-orbit edge", orbCDF, over100O, covered),
	}, nil
}
