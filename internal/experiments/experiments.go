// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig* function is parameterised by a scale config so the
// same code serves the full paper-scale run (cmd/figures) and the scaled
// benchmark harness (bench_test.go). Results come back as plot-ready series
// plus the summary quantities the paper quotes in prose.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/constellation"
)

// ConstellationSet names the constellations a sweep covers.
type ConstellationSet struct {
	Starlink bool
	Kuiper   bool
	Telesat  bool
}

// Both returns the paper's default pair: Starlink Phase I and Kuiper.
func Both() ConstellationSet { return ConstellationSet{Starlink: true, Kuiper: true} }

// build materialises the selected constellations in order.
func (cs ConstellationSet) build() ([]*constellation.Constellation, error) {
	var out []*constellation.Constellation
	if cs.Starlink {
		c, err := constellation.StarlinkPhase1(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Kuiper {
		c, err := constellation.Kuiper(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Telesat {
		c, err := constellation.Telesat(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty constellation set")
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0,n) across CPUs, collecting the first
// error. Experiment sweeps are embarrassingly parallel across latitudes and
// user groups.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
