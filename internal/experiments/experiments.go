// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig* function is parameterised by a scale config so the
// same code serves the full paper-scale run (cmd/figures) and the scaled
// benchmark harness (bench_test.go). Results come back as plot-ready series
// plus the summary quantities the paper quotes in prose.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/obs"
)

// ConstellationSet names the constellations a sweep covers.
type ConstellationSet struct {
	Starlink bool
	Kuiper   bool
	Telesat  bool
}

// Both returns the paper's default pair: Starlink Phase I and Kuiper.
func Both() ConstellationSet { return ConstellationSet{Starlink: true, Kuiper: true} }

// build materialises the selected constellations in order. Presets are
// memoised process-wide so every figure sweeps the same constellation
// object and therefore shares one ephemeris engine (see engineFor):
// Fig 2 re-requests the instants Fig 1 propagated, Fig 5 the snapshot
// Fig 4 used, and so on across the whole suite.
func (cs ConstellationSet) build() ([]*constellation.Constellation, error) {
	var out []*constellation.Constellation
	if cs.Starlink {
		c, err := pooledPreset("starlink", constellation.StarlinkPhase1)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Kuiper {
		c, err := pooledPreset("kuiper", constellation.Kuiper)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Telesat {
		c, err := pooledPreset("telesat", constellation.Telesat)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty constellation set")
	}
	return out, nil
}

var (
	poolMu     sync.Mutex
	constPool  = map[string]*constellation.Constellation{}
	enginePool = map[*constellation.Constellation]*ephem.Engine{}
)

func pooledPreset(name string, build func(constellation.Config) (*constellation.Constellation, error)) (*constellation.Constellation, error) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if c, ok := constPool[name]; ok {
		return c, nil
	}
	c, err := build(constellation.Config{})
	if err != nil {
		return nil, err
	}
	constPool[name] = c
	return c, nil
}

// Sweep-sized shared-engine caches. A figure-scale session sweep touches a
// few hundred distinct instants; holding them all lets MinMax and Sticky
// passes (and later figures) replay each other's frames instead of
// re-propagating. 384 Starlink-scale frames is ~40 MiB — acceptable for
// the batch figure/benchmark binaries that are this package's only
// consumers. The protected grid tier additionally pins the 60 s keyframes
// that Sticky lookahead sampling keeps revisiting.
const (
	sweepCacheFrames = 384
	sweepGridFrames  = 128
)

// EphemStats sums cache statistics across the pooled per-constellation
// ephemeris engines — the figure runner reports it so a run shows how much
// propagation work the shared cache absorbed.
func EphemStats() ephem.Stats {
	poolMu.Lock()
	defer poolMu.Unlock()
	var total ephem.Stats
	for _, e := range enginePool {
		s := e.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Frames += s.Frames
		total.PropagatedSats += s.PropagatedSats
		total.Interpolations += s.Interpolations
	}
	return total
}

// engineFor returns the process-wide shared ephemeris engine for a
// constellation produced by build(). Safe for concurrent sweep workers.
func engineFor(c *constellation.Constellation) *ephem.Engine {
	poolMu.Lock()
	defer poolMu.Unlock()
	if e, ok := enginePool[c]; ok {
		return e
	}
	e := ephem.New(c, ephem.Config{CacheFrames: sweepCacheFrames, GridFrames: sweepGridFrames})
	enginePool[c] = e
	return e
}

// progressDone counts completed parallelFor iterations process-wide; it is
// the progress signal a long cmd/figures run exposes (each latitude, group,
// or satellite sweep iteration bumps it once).
var (
	progressOnce sync.Once
	progressDone *obs.Counter
)

func progress() *obs.Counter {
	progressOnce.Do(func() {
		progressDone = obs.Default().Counter("experiments_parallelfor_iterations_total",
			"Completed parallelFor sweep iterations across all experiments.")
	})
	return progressDone
}

// Progress returns the cumulative number of sweep iterations completed by
// all experiments in this process; callers diff it around a run to get a
// sample count.
func Progress() uint64 { return progress().Value() }

// parallelFor runs fn(i) for i in [0,n) across CPUs, collecting the first
// error. Experiment sweeps are embarrassingly parallel across latitudes and
// user groups.
func parallelFor(n int, fn func(i int) error) error {
	done := progress()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			err := fn(i)
			done.Inc()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				done.Inc()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
