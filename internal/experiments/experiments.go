// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig* function is parameterised by a scale config so the
// same code serves the full paper-scale run (cmd/figures) and the scaled
// benchmark harness (bench_test.go). Results come back as plot-ready series
// plus the summary quantities the paper quotes in prose.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/constellation"
	"repro/internal/obs"
)

// ConstellationSet names the constellations a sweep covers.
type ConstellationSet struct {
	Starlink bool
	Kuiper   bool
	Telesat  bool
}

// Both returns the paper's default pair: Starlink Phase I and Kuiper.
func Both() ConstellationSet { return ConstellationSet{Starlink: true, Kuiper: true} }

// build materialises the selected constellations in order.
func (cs ConstellationSet) build() ([]*constellation.Constellation, error) {
	var out []*constellation.Constellation
	if cs.Starlink {
		c, err := constellation.StarlinkPhase1(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Kuiper {
		c, err := constellation.Kuiper(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if cs.Telesat {
		c, err := constellation.Telesat(constellation.Config{})
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty constellation set")
	}
	return out, nil
}

// progressDone counts completed parallelFor iterations process-wide; it is
// the progress signal a long cmd/figures run exposes (each latitude, group,
// or satellite sweep iteration bumps it once).
var (
	progressOnce sync.Once
	progressDone *obs.Counter
)

func progress() *obs.Counter {
	progressOnce.Do(func() {
		progressDone = obs.Default().Counter("experiments_parallelfor_iterations_total",
			"Completed parallelFor sweep iterations across all experiments.")
	})
	return progressDone
}

// Progress returns the cumulative number of sweep iterations completed by
// all experiments in this process; callers diff it around a run to get a
// sample count.
func Progress() uint64 { return progress().Value() }

// parallelFor runs fn(i) for i in [0,n) across CPUs, collecting the first
// error. Experiment sweeps are embarrassingly parallel across latitudes and
// user groups.
func parallelFor(n int, fn func(i int) error) error {
	done := progress()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			err := fn(i)
			done.Inc()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				done.Inc()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
