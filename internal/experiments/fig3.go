package experiments

import (
	"fmt"
	"math"

	"repro/internal/dcs"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/netgraph"
	"repro/internal/trace"
)

// Fig3Config parameterises the meetup-server placement comparison.
type Fig3Config struct {
	// SampleEverySec and DurationSec define the time sampling (paper:
	// every minute over two hours; the quoted numbers are worst case).
	SampleEverySec, DurationSec float64
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.SampleEverySec <= 0 {
		c.SampleEverySec = 60
	}
	if c.DurationSec <= 0 {
		c.DurationSec = 7200
	}
	return c
}

// Fig3Scenario is one user-group/constellation case.
type Fig3Scenario struct {
	Name          string
	Constellation string
	Users         []geo.LatLon
	// DCNames restricts the terrestrial baseline to named cloud regions
	// (nil = all regions).
	DCNames []string
}

// WestAfricaScenario returns the paper's Fig 3 case: three users in West
// Africa on Starlink, against Azure's African regions.
func WestAfricaScenario() Fig3Scenario {
	g := trace.WestAfricaGroup()
	return Fig3Scenario{
		Name:          g.Name,
		Constellation: "starlink",
		Users:         g.Users,
		// The nearest viable Azure regions per the paper's figure.
		DCNames: []string{"South Africa North", "South Africa West", "West Europe", "North Europe", "France Central", "UAE North"},
	}
}

// TriContinentScenario returns the §3.2 Kuiper example: users near South
// Central US, Brazil South, and Australia East.
func TriContinentScenario() Fig3Scenario {
	g := trace.TriContinentGroup()
	return Fig3Scenario{
		Name:          g.Name,
		Constellation: "kuiper",
		Users:         g.Users,
		DCNames:       nil, // all regions compete; the paper names the best three
	}
}

// Fig3Result reports a scenario's worst-case-over-time numbers.
type Fig3Result struct {
	Scenario Fig3Scenario
	// TerrestrialRTTMs is the best achievable hybrid RTT (users →
	// constellation → terrestrial DC), worst case over the window.
	TerrestrialRTTMs float64
	// TerrestrialDC names the winning data-center region.
	TerrestrialDC string
	// InOrbitRTTMs is the in-orbit meetup RTT a served session actually
	// experiences, worst case over the window: a held (Sticky) server
	// drifts toward the coverage edge before handing off, so this
	// approaches the farthest-reachable bound (the paper's 16 ms). For
	// groups with no common footprint the routed placement's worst case is
	// used instead (the §3.2 Kuiper case's 66 ms).
	InOrbitRTTMs float64
	// InOrbitBestRTTMs is the per-instant optimal placement's worst case —
	// the lower bound an oracle scheduler could reach.
	InOrbitBestRTTMs float64
	// Improvement is terrestrial / in-orbit.
	Improvement float64
	// StickyPremiumMs is the mean extra latency Sticky pays over MinMax
	// for this group (the paper: 1.4 ms in the West Africa case).
	StickyPremiumMs float64
	// GeodesicKm is the minimax great-circle distance to the best region —
	// the paper's "9,200 km round-trip" quote is 2x this.
	GeodesicKm float64
}

// Fig3 runs one scenario.
func Fig3(sc Fig3Scenario, cfg Fig3Config) (Fig3Result, error) {
	cfg = cfg.withDefaults()
	set := ConstellationSet{}
	switch sc.Constellation {
	case "starlink":
		set.Starlink = true
	case "kuiper":
		set.Kuiper = true
	case "telesat":
		set.Telesat = true
	default:
		return Fig3Result{}, fmt.Errorf("experiments: unknown constellation %q", sc.Constellation)
	}
	consts, err := set.build()
	if err != nil {
		return Fig3Result{}, err
	}
	c := consts[0]

	// Terrestrial candidate sites.
	var sites []geo.LatLon
	var siteNames []string
	if len(sc.DCNames) > 0 {
		for _, name := range sc.DCNames {
			r, ok := dcs.ByName(name)
			if !ok {
				return Fig3Result{}, fmt.Errorf("experiments: unknown region %q", name)
			}
			sites = append(sites, r.Loc)
			siteNames = append(siteNames, r.Name)
		}
	} else {
		for _, r := range dcs.Regions() {
			sites = append(sites, r.Loc)
			siteNames = append(siteNames, r.Name)
		}
	}

	prov := meetup.NewProviderFor(engineFor(c))
	net := meetup.GroupNetwork(prov, sc.Users, sites)

	res := Fig3Result{Scenario: sc}
	perDCWorst := make([]float64, len(sites))
	userNodes := make([]netgraph.NodeID, len(sc.Users))
	for u := range userNodes {
		userNodes[u] = net.GroundNode(u)
	}
	var snap *netgraph.Snapshot
	for t := 0.0; t <= cfg.DurationSec; t += cfg.SampleEverySec {
		// Chain each sweep instant onto the previous one so the visibility
		// freeze runs as an incremental delta rather than a full rescan.
		snap = net.AtAfter(snap, t)
		// In-orbit: best routed placement at this instant; paper quotes the
		// worst instant of the best placement.
		routed, err := meetup.BestRouted(snap, len(sc.Users))
		if err != nil {
			return Fig3Result{}, fmt.Errorf("experiments: routed placement at t=%.0f: %w", t, err)
		}
		res.InOrbitBestRTTMs = math.Max(res.InOrbitBestRTTMs, routed.GroupRTTMs)

		// Terrestrial: track each DC's worst-over-time group RTT; the best
		// DC is chosen after the window (a meetup server cannot hop between
		// data centers mid-session). One SSSP per user prices that user
		// against every data centre at once (2*dist is exactly what
		// GroundToGroundRTTMs returned per pair; +Inf where disconnected).
		perUserDist := snap.AllSourcesNodeLatencies(userNodes)
		for d := range sites {
			dcNode := net.GroundNode(len(sc.Users) + d)
			worstUser := 0.0
			for u := range sc.Users {
				worstUser = math.Max(worstUser, 2*perUserDist[u][dcNode])
			}
			perDCWorst[d] = math.Max(perDCWorst[d], worstUser)
		}
	}
	res.TerrestrialRTTMs = math.Inf(1)
	for d, v := range perDCWorst {
		if v < res.TerrestrialRTTMs {
			res.TerrestrialRTTMs = v
			res.TerrestrialDC = siteNames[d]
		}
	}
	// Served in-orbit latency: a Sticky session's worst instant (the held
	// server ends each hold at the coverage edge). Falls back to the
	// routed optimum when the group shares no satellite footprint.
	res.InOrbitRTTMs = res.InOrbitBestRTTMs
	grid := net.Grid
	pm, err := meetup.NewPlanner(c, grid, sc.Users, meetup.Config{})
	if err == nil {
		mm, errM := pm.Simulate(prov, meetup.MinMax, 0, cfg.DurationSec, 5)
		st, errS := pm.Simulate(prov, meetup.Sticky, 0, cfg.DurationSec, 5)
		if errM == nil && errS == nil {
			res.StickyPremiumMs = st.RTT.Mean() - mm.RTT.Mean()
			res.InOrbitRTTMs = st.RTT.Max()
		}
	}
	if res.InOrbitRTTMs > 0 {
		res.Improvement = res.TerrestrialRTTMs / res.InOrbitRTTMs
	}

	_, worstKm := dcs.MinimaxRegion(sc.Users)
	res.GeodesicKm = worstKm
	return res, nil
}
