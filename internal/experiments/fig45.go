package experiments

import (
	"fmt"

	"repro/internal/cities"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/visibility"
)

// Fig4Config parameterises the invisible-satellite counts.
type Fig4Config struct {
	// Constellations to evaluate (default Starlink + Kuiper).
	Constellations ConstellationSet
	// NValues are the city-count grid points (default 100..1000 step 100).
	NValues []int
	// SnapshotSec is the evaluation instant (paper: one snapshot).
	SnapshotSec float64
}

func (c Fig4Config) withDefaults() Fig4Config {
	if !c.Constellations.Starlink && !c.Constellations.Kuiper && !c.Constellations.Telesat {
		c.Constellations = Both()
	}
	if len(c.NValues) == 0 {
		for n := 100; n <= 1000; n += 100 {
			c.NValues = append(c.NValues, n)
		}
	}
	return c
}

// Fig4Result holds one constellation's invisible counts.
type Fig4Result struct {
	Constellation string
	Total         int
	NValues       []int
	Invisible     []int
}

// Series converts the result to a plot series.
func (r Fig4Result) Series() plot.Series {
	s := plot.Series{Name: r.Constellation}
	for i, n := range r.NValues {
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, float64(r.Invisible[i]))
	}
	return s
}

// Fig4 reproduces Figure 4: for each n, how many satellites are not
// directly reachable from any of the n largest population centers.
func Fig4(cfg Fig4Config) ([]Fig4Result, error) {
	cfg = cfg.withDefaults()
	maxN := 0
	for _, n := range cfg.NValues {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: non-positive n %d", n)
		}
		if n > maxN {
			maxN = n
		}
	}
	grounds := cities.ECEF(cities.TopN(maxN))
	consts, err := cfg.Constellations.build()
	if err != nil {
		return nil, err
	}
	var out []Fig4Result
	for _, c := range consts {
		obs := visibility.NewObserver(c)
		snap := engineFor(c).SnapshotAt(cfg.SnapshotSec)
		// firstSeen[id] = smallest city rank (1-based) that sees sat id,
		// or 0 when no city in the full list does. One pass covers all n.
		firstSeen := make([]int, c.Size())
		err := parallelFor(c.Size(), func(id int) error {
			for rank, g := range grounds {
				if obs.Visible(g, id, snap[id]) {
					firstSeen[id] = rank + 1
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		res := Fig4Result{Constellation: c.Name, Total: c.Size(), NValues: cfg.NValues}
		for _, n := range cfg.NValues {
			inv := 0
			for _, fs := range firstSeen {
				if fs == 0 || fs > n {
					inv++
				}
			}
			res.Invisible = append(res.Invisible, inv)
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig5Result holds the invisible-satellite map data.
type Fig5Result struct {
	Constellation string
	// Cities are the population centers used (their locations).
	Cities []geo.LatLon
	// InvisibleSats are the sub-satellite points of the invisible
	// satellites at the snapshot.
	InvisibleSats []geo.LatLon
	Total         int
}

// Fig5 reproduces Figure 5: the positions of the satellites invisible from
// the top-n cities, for rendering on a world map. The paper plots Starlink
// with n=1000.
func Fig5(set ConstellationSet, n int, snapshotSec float64) ([]Fig5Result, error) {
	if n <= 0 || n > cities.MaxCities {
		return nil, fmt.Errorf("experiments: n=%d out of range", n)
	}
	top := cities.TopN(n)
	grounds := cities.ECEF(top)
	locs := cities.Locations(top)
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	var out []Fig5Result
	for _, c := range consts {
		obs := visibility.NewObserver(c)
		snap := engineFor(c).SnapshotAt(snapshotSec)
		seen := make([]bool, c.Size())
		obs.MarkVisibleFromAny(grounds, snap, seen)
		res := Fig5Result{Constellation: c.Name, Cities: locs, Total: c.Size()}
		for id, s := range seen {
			if !s {
				res.InvisibleSats = append(res.InvisibleSats, geo.FromECEF(snap[id]))
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderFig5 draws the Fig 5 world map (cities as dots, invisible
// satellites as 'O') into a plot.WorldMap.
func RenderFig5(r Fig5Result, width, height int) *plot.WorldMap {
	m := plot.NewWorldMap(width, height)
	var clats, clons, slats, slons []float64
	for _, c := range r.Cities {
		clats = append(clats, c.LatDeg)
		clons = append(clons, c.LonDeg)
	}
	for _, s := range r.InvisibleSats {
		slats = append(slats, s.LatDeg)
		slons = append(slons, s.LonDeg)
	}
	m.Plot(clats, clons, '+')
	m.Plot(slats, slons, 'O')
	return m
}
