package experiments

import (
	"fmt"

	"repro/internal/isl"
	"repro/internal/meetup"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig67Config parameterises the hand-off dynamics study.
type Fig67Config struct {
	// Groups is how many seeded user groups to simulate (default 20).
	Groups int
	// UsersMin/UsersMax bound group size (default 3..5).
	UsersMin, UsersMax int
	// SpreadKm is the group geographic spread (default 600 km — regional
	// friend groups, the paper's West Africa regime).
	SpreadKm float64
	// DurationSec is the session length (default 7200 — the paper's 2 h).
	DurationSec float64
	// StepSec is the simulation step (default 2 s).
	StepSec float64
	// Seed fixes the group draw.
	Seed int64
	// Meetup overrides the Sticky knobs (zero = paper defaults).
	Meetup meetup.Config
}

func (c Fig67Config) withDefaults() Fig67Config {
	if c.Groups <= 0 {
		c.Groups = 20
	}
	if c.UsersMin <= 0 {
		c.UsersMin = 3
	}
	if c.UsersMax < c.UsersMin {
		c.UsersMax = c.UsersMin + 2
	}
	if c.SpreadKm <= 0 {
		c.SpreadKm = 600
	}
	if c.DurationSec <= 0 {
		c.DurationSec = 7200
	}
	if c.StepSec <= 0 {
		c.StepSec = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Fig67Result aggregates the hand-off statistics across groups.
type Fig67Result struct {
	// Intervals are the Fig 6 CDFs: time between hand-offs per policy.
	IntervalsMinMax, IntervalsSticky *stats.CDF
	// Transfers are the Fig 7 CDFs: state-transfer latency per policy.
	TransfersMinMax, TransfersSticky *stats.CDF
	// HandoffsMinMax and HandoffsSticky count total hand-offs.
	HandoffsMinMax, HandoffsSticky int
	// MeanRTTMinMax/Sticky average the group RTT across sessions.
	MeanRTTMinMax, MeanRTTSticky float64
	// GroupsSimulated counts groups that completed both sessions (groups
	// in coverage gaps are skipped).
	GroupsSimulated int
}

// MedianRatio returns Sticky's median inter-hand-off time over MinMax's —
// the paper's headline "4x longer" number.
func (r Fig67Result) MedianRatio() float64 {
	if r.IntervalsMinMax.N() == 0 || r.IntervalsSticky.N() == 0 {
		return 0
	}
	m := r.IntervalsMinMax.Median()
	if m == 0 {
		return 0
	}
	return r.IntervalsSticky.Median() / m
}

// Fig6Series returns the Fig 6 CDF plot series.
func (r Fig67Result) Fig6Series() (mm, st plot.Series) {
	mm.Name, st.Name = "MinMax", "Sticky"
	mm.X, mm.Y = r.IntervalsMinMax.Points()
	st.X, st.Y = r.IntervalsSticky.Points()
	return mm, st
}

// Fig7Series returns the Fig 7 CDF plot series.
func (r Fig67Result) Fig7Series() (mm, st plot.Series) {
	mm.Name, st.Name = "MinMax", "Sticky"
	mm.X, mm.Y = r.TransfersMinMax.Points()
	st.X, st.Y = r.TransfersSticky.Points()
	return mm, st
}

// Fig67 reproduces Figures 6 and 7: simulate meetup sessions for many user
// groups on Starlink Phase I under both policies, collecting the time
// between hand-offs and the per-hand-off state-transfer latency.
func Fig67(cfg Fig67Config) (Fig67Result, error) {
	cfg = cfg.withDefaults()
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return Fig67Result{}, err
	}
	c := consts[0]
	grid := isl.NewPlusGrid(c)

	groups, err := trace.Groups(trace.GroupConfig{
		Seed:         cfg.Seed,
		Groups:       cfg.Groups,
		MinUsers:     cfg.UsersMin,
		MaxUsers:     cfg.UsersMax,
		SpreadKm:     cfg.SpreadKm,
		MaxAbsLatDeg: 52,
	})
	if err != nil {
		return Fig67Result{}, err
	}

	type groupOut struct {
		ok     bool
		mm, st meetup.SessionResult
	}
	outs := make([]groupOut, len(groups))
	err = parallelFor(len(groups), func(i int) error {
		p, err := meetup.NewPlanner(c, grid, groups[i].Users, cfg.Meetup)
		if err != nil {
			return err
		}
		// Workers share the pooled engine: frames one group's session
		// propagates (steps and Sticky lookahead keyframes alike) are
		// cache hits for every other group and for the second policy pass.
		prov := meetup.NewProviderFor(engineFor(c))
		mm, errM := p.Simulate(prov, meetup.MinMax, 0, cfg.DurationSec, cfg.StepSec)
		st, errS := p.Simulate(prov, meetup.Sticky, 0, cfg.DurationSec, cfg.StepSec)
		if errM != nil || errS != nil {
			// Group in a coverage gap at session start — skip it, as the
			// paper's groups implicitly sit in covered regions.
			return nil
		}
		outs[i] = groupOut{ok: true, mm: mm, st: st}
		return nil
	})
	if err != nil {
		return Fig67Result{}, err
	}

	res := Fig67Result{
		IntervalsMinMax: stats.NewCDF(),
		IntervalsSticky: stats.NewCDF(),
		TransfersMinMax: stats.NewCDF(),
		TransfersSticky: stats.NewCDF(),
	}
	sumRTTmm, sumRTTst := 0.0, 0.0
	for _, o := range outs {
		if !o.ok {
			continue
		}
		res.GroupsSimulated++
		res.IntervalsMinMax.AddAll(o.mm.HandoffIntervals())
		res.IntervalsSticky.AddAll(o.st.HandoffIntervals())
		res.TransfersMinMax.AddAll(o.mm.TransferLatencies())
		res.TransfersSticky.AddAll(o.st.TransferLatencies())
		res.HandoffsMinMax += len(o.mm.Handoffs)
		res.HandoffsSticky += len(o.st.Handoffs)
		sumRTTmm += o.mm.RTT.Mean()
		sumRTTst += o.st.RTT.Mean()
	}
	if res.GroupsSimulated == 0 {
		return Fig67Result{}, fmt.Errorf("experiments: every group hit a coverage gap")
	}
	res.MeanRTTMinMax = sumRTTmm / float64(res.GroupsSimulated)
	res.MeanRTTSticky = sumRTTst / float64(res.GroupsSimulated)
	return res, nil
}
