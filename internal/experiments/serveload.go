package experiments

import (
	"fmt"

	"repro/internal/compute"
	"repro/internal/serve"
)

// ServePolicyRow is one (routing policy, offered load) point of the
// constellation-wide request-serving study.
type ServePolicyRow struct {
	Policy       string
	RatePerSec   float64
	P50Ms, P99Ms float64
	// ShedPct is the fraction of offered requests rejected at admission.
	ShedPct float64
	// SatsUsed counts satellites that served at least one request.
	SatsUsed int
	// MeanUtilPct / MaxUtilPct summarise utilisation over the satellites
	// that served traffic.
	MeanUtilPct, MaxUtilPct float64
}

// serveStudySeed fixes the request trace for the policy study.
const serveStudySeed = 17

// ServePolicyStudy runs the constellation-wide serving layer at increasing
// offered load, comparing every built-in routing policy on the same
// city-weighted diurnal request trace: the latency / utilization / shedding
// trade the paper's serverless pitch rests on. Small satellite-servers
// (2 request cores) keep the saturation point inside the swept range.
func ServePolicyStudy(rates []float64) ([]ServePolicyRow, error) {
	set := ConstellationSet{Starlink: true}
	consts, err := set.build()
	if err != nil {
		return nil, err
	}
	c := consts[0]
	eng := engineFor(c)
	sites := serve.SitesFromCities(12)
	if len(rates) == 0 {
		rates = []float64{250, 1000, 4000}
	}
	const horizonSec = 120
	server := compute.DefaultServerSpec()
	server.Cores = 2

	var out []ServePolicyRow
	for _, rate := range rates {
		reqs, err := serve.Generate(sites, serve.Workload{
			Seed:             serveStudySeed,
			RatePerSec:       rate,
			ServiceMedianMs:  20,
			DiurnalAmplitude: 0.6,
		}, horizonSec)
		if err != nil {
			return nil, err
		}
		for _, p := range serve.Policies() {
			e, err := serve.NewEngine(c, serve.Config{
				Sites:      sites,
				Policy:     p,
				Server:     server,
				QueueCap:   16,
				RefreshSec: 30,
				Ephem:      eng,
			})
			if err != nil {
				return nil, err
			}
			if err := e.Feed(reqs); err != nil {
				return nil, err
			}
			// Run past the horizon so tail requests drain.
			e.RunUntil(horizonSec + 30)
			r := e.Result()
			if r.Offered == 0 {
				return nil, fmt.Errorf("experiments: serve study offered no requests at rate %v", rate)
			}
			row := ServePolicyRow{
				Policy:     r.Policy,
				RatePerSec: rate,
				ShedPct:    100 * float64(r.ShedTotal()) / float64(r.Offered),
				SatsUsed:   r.SatsUsed,
			}
			if r.LatencyMs.N() > 0 {
				row.P50Ms = r.LatencyMs.Median()
				row.P99Ms = r.LatencyMs.Quantile(0.99)
			}
			sum, max := 0.0, 0.0
			for _, u := range r.Utilization {
				if u <= 0 {
					continue
				}
				sum += u
				if u > max {
					max = u
				}
			}
			if r.SatsUsed > 0 {
				row.MeanUtilPct = 100 * sum / float64(r.SatsUsed)
			}
			row.MaxUtilPct = 100 * max
			out = append(out, row)
		}
	}
	return out, nil
}
