package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eo"
	"repro/internal/feasibility"
	"repro/internal/plot"
)

// FeasibilityTable renders the §4 analysis as aligned rows matching the
// paper's prose numbers.
func FeasibilityTable() (string, feasibility.Report, error) {
	rep, err := feasibility.Analyze(feasibility.Default())
	if err != nil {
		return "", feasibility.Report{}, err
	}
	var b strings.Builder
	rows := [][]string{
		{"Weight (server/satellite)", fmt.Sprintf("%.1f%%", rep.WeightFraction*100), "~6%"},
		{"Volume (server/satellite)", fmt.Sprintf("%.1f%%", rep.VolumeFraction*100), "~1%"},
		{"Power @225 W / avg solar", fmt.Sprintf("%.0f%%", rep.PowerFractionTypical*100), "15%"},
		{"Power @350 W / avg solar", fmt.Sprintf("%.0f%%", rep.PowerFractionMax*100), "23%"},
		{"Radiation: commodity HW ok", fmt.Sprintf("%v", rep.CommodityHardwareOK), "yes (below inner belt)"},
		{"Launch cost of server", fmt.Sprintf("$%.0f", rep.LaunchCostUSD), "~$42,000"},
		{"3-year in-orbit cost", fmt.Sprintf("$%.0f", rep.OrbitCost3yUSD), "-"},
		{"3-year DC TCO", fmt.Sprintf("$%.0f", rep.DCCost3yUSD), "$15,000"},
		{"Cost ratio (orbit/DC)", fmt.Sprintf("%.1fx", rep.CostRatio), "~3x"},
	}
	if err := plot.Table(&b, []string{"quantity", "measured", "paper"}, rows); err != nil {
		return "", feasibility.Report{}, err
	}
	return b.String(), rep, nil
}

// EOSweepRow is one point of the §3.3 preprocessing sweep.
type EOSweepRow struct {
	PreprocessFactor float64
	SensingDuty      float64
	DownlinkSavings  float64
}

// EOSweep evaluates sensing duty cycle versus preprocessing factor for a
// representative imaging mission: 5 Gbps sensor, a 2 Gbps slice of the
// ground link, and the given ground-contact fraction.
func EOSweep(contactFraction float64, factors []float64) ([]EOSweepRow, error) {
	if len(factors) == 0 {
		factors = []float64{1, 2, 5, 10, 20, 50}
	}
	var out []EOSweepRow
	for _, f := range factors {
		m := eo.Mission{
			SensingRateGbps:  5,
			DownlinkRateGbps: 2,
			StorageGb:        4000,
			PreprocessFactor: f,
			ProcessRateGbps:  8,
		}
		duty, err := m.MaxSensingDutyCycle(contactFraction)
		if err != nil {
			return nil, err
		}
		out = append(out, EOSweepRow{PreprocessFactor: f, SensingDuty: duty, DownlinkSavings: m.DownlinkSavingsFraction()})
	}
	return out, nil
}
