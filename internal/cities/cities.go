// Package cities provides the population-center dataset behind the paper's
// Figures 4 and 5 ("largest n cities by population"). It embeds a curated
// list of the world's major cities with approximate coordinates and
// metro-area populations, and deterministically synthesises a long tail of
// smaller centers so callers can request up to MaxCities entries.
//
// Substitution note (DESIGN.md §5.1): the paper does not name its city-list
// source. The figures depend only on the *geographic distribution* of
// population centers — heavily northern-hemisphere, clustered on coasts and
// river plains — which the curated list preserves. The synthetic tail
// continues the population power law and clusters new entries near real
// anchors, mimicking how real secondary cities cluster around primary ones.
package cities

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
)

// City is one population center.
type City struct {
	// Name of the city; synthetic entries are named "<anchor>-satellite-<k>".
	Name string
	// Country holds an ISO-ish country label.
	Country string
	// Loc is the city's location.
	Loc geo.LatLon
	// Population is the approximate metro population.
	Population int
}

// MaxCities is the largest n accepted by TopN.
const MaxCities = 1200

// synthSeed fixes the synthetic-tail generation, keeping every run of every
// experiment identical.
const synthSeed = 20201104 // HotNets'20 presentation date

// Real returns the embedded real-city list sorted by descending population.
// The returned slice is a fresh copy.
func Real() []City {
	out := make([]City, len(realCities))
	copy(out, realCities)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Population > out[j].Population })
	return out
}

// TopN returns the n largest population centers, synthesising the tail
// beyond the embedded real list. It panics if n is out of (0, MaxCities].
func TopN(n int) []City {
	if n <= 0 || n > MaxCities {
		panic(fmt.Sprintf("cities: TopN(%d) outside (0,%d]", n, MaxCities))
	}
	all := withSyntheticTail(MaxCities)
	return all[:n]
}

// Locations projects a city slice onto its coordinates.
func Locations(cs []City) []geo.LatLon {
	out := make([]geo.LatLon, len(cs))
	for i, c := range cs {
		out[i] = c.Loc
	}
	return out
}

// ECEF projects a city slice onto surface ECEF vectors, the form the
// visibility fast paths consume.
func ECEF(cs []City) []geo.Vec3 {
	out := make([]geo.Vec3, len(cs))
	for i, c := range cs {
		out[i] = c.Loc.ECEF()
	}
	return out
}

// withSyntheticTail extends the real list to exactly n entries with
// deterministic synthetic cities.
func withSyntheticTail(n int) []City {
	real := Real()
	if n <= len(real) {
		return real[:n]
	}
	out := make([]City, 0, n)
	out = append(out, real...)

	r := rand.New(rand.NewSource(synthSeed))
	// Population-weighted anchor sampling: big metros spawn more secondary
	// centers around them, matching real urban geography.
	cum := make([]float64, len(real))
	total := 0.0
	for i, c := range real {
		total += float64(c.Population)
		cum[i] = total
	}
	pickAnchor := func() City {
		x := r.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(real) {
			i = len(real) - 1
		}
		return real[i]
	}

	lastPop := real[len(real)-1].Population
	for k := 0; len(out) < n; k++ {
		a := pickAnchor()
		// 80-700 km away at a random bearing: the belt where secondary
		// cities of a metro region live.
		dist := 80 + r.Float64()*620
		brg := r.Float64() * 360
		loc := geo.Destination(a.Loc, brg, dist)
		if !loc.Valid() {
			continue
		}
		// Continue the population power law downward with mild noise,
		// keeping the list sorted by construction.
		pop := int(float64(lastPop) * (0.988 + r.Float64()*0.01))
		if pop < 5000 {
			pop = 5000
		}
		lastPop = pop
		out = append(out, City{
			Name:       fmt.Sprintf("%s-satellite-%d", a.Name, k),
			Country:    a.Country,
			Loc:        loc,
			Population: pop,
		})
	}
	return out
}
