package cities

import (
	"math"
	"strings"
	"testing"
)

func TestRealAllValid(t *testing.T) {
	real := Real()
	if len(real) < 300 {
		t.Fatalf("embedded list has %d cities, want ≥300", len(real))
	}
	seen := map[string]bool{}
	for _, c := range real {
		if !c.Loc.Valid() {
			t.Errorf("city %s has invalid location %v", c.Name, c.Loc)
		}
		if c.Population <= 0 {
			t.Errorf("city %s has population %d", c.Name, c.Population)
		}
		if c.Name == "" || c.Country == "" {
			t.Errorf("city with empty name/country: %+v", c)
		}
		key := c.Name + "/" + c.Country
		if seen[key] {
			t.Errorf("duplicate city %s", key)
		}
		seen[key] = true
	}
}

func TestRealSortedByPopulation(t *testing.T) {
	real := Real()
	for i := 1; i < len(real); i++ {
		if real[i].Population > real[i-1].Population {
			t.Fatalf("not sorted: %s(%d) after %s(%d)",
				real[i].Name, real[i].Population, real[i-1].Name, real[i-1].Population)
		}
	}
	// The biggest metro on Earth leads the list.
	if real[0].Name != "Tokyo" {
		t.Fatalf("largest city = %s, want Tokyo", real[0].Name)
	}
}

func TestNorthernHemisphereSkew(t *testing.T) {
	// Fig 5's point — most invisible satellites sit south of the world's
	// population — depends on the dataset's hemispheric skew. Check that
	// at least 75% of the top-500 population lives north of the equator.
	top := TopN(500)
	var north, total float64
	for _, c := range top {
		total += float64(c.Population)
		if c.Loc.LatDeg > 0 {
			north += float64(c.Population)
		}
	}
	if frac := north / total; frac < 0.75 {
		t.Fatalf("northern population fraction = %.2f, want ≥0.75", frac)
	}
}

func TestTopNSizesAndOrder(t *testing.T) {
	for _, n := range []int{1, 10, 100, 500, 1000, MaxCities} {
		got := TopN(n)
		if len(got) != n {
			t.Fatalf("TopN(%d) returned %d", n, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Population > got[i-1].Population {
				t.Fatalf("TopN(%d) not sorted at %d", n, i)
			}
		}
	}
}

func TestTopNDeterministic(t *testing.T) {
	a := TopN(1000)
	b := TopN(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopN not deterministic at index %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTopNPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, MaxCities + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopN(%d) should panic", n)
				}
			}()
			TopN(n)
		}()
	}
}

func TestSyntheticTailProperties(t *testing.T) {
	all := TopN(MaxCities)
	real := Real()
	if len(all) <= len(real) {
		t.Skip("no synthetic tail needed")
	}
	for _, c := range all[len(real):] {
		if !c.Loc.Valid() {
			t.Fatalf("synthetic city invalid: %+v", c)
		}
		if !strings.Contains(c.Name, "-satellite-") {
			t.Fatalf("synthetic city name %q lacks marker", c.Name)
		}
		if c.Population < 5000 {
			t.Fatalf("synthetic city population too small: %+v", c)
		}
		if c.Population > real[len(real)-1].Population {
			t.Fatalf("synthetic city larger than smallest real city: %+v", c)
		}
	}
}

func TestLocationsAndECEF(t *testing.T) {
	top := TopN(50)
	locs := Locations(top)
	vecs := ECEF(top)
	if len(locs) != 50 || len(vecs) != 50 {
		t.Fatal("projection lengths wrong")
	}
	for i := range top {
		if locs[i] != top[i].Loc {
			t.Fatalf("Locations[%d] mismatch", i)
		}
		want := top[i].Loc.ECEF()
		if math.Abs(vecs[i].X-want.X) > 1e-9 {
			t.Fatalf("ECEF[%d] mismatch", i)
		}
	}
}

func TestContainsPaperCities(t *testing.T) {
	// The Fig 3 scenarios reference these exact cities; make sure the
	// dataset carries them with plausible coordinates.
	wants := map[string][2]float64{
		"Abuja":       {9.06, 7.49},
		"Yaounde":     {3.87, 11.52},
		"Accra":       {5.60, -0.19},
		"San Antonio": {29.42, -98.49},
		"Sao Paulo":   {-23.55, -46.63},
		"Sydney":      {-33.87, 151.21},
	}
	real := Real()
	for name, ll := range wants {
		found := false
		for _, c := range real {
			if c.Name == name {
				found = true
				if math.Abs(c.Loc.LatDeg-ll[0]) > 0.2 || math.Abs(c.Loc.LonDeg-ll[1]) > 0.2 {
					t.Errorf("%s at %v, want ≈%v", name, c.Loc, ll)
				}
			}
		}
		if !found {
			t.Errorf("dataset missing %s", name)
		}
	}
}
