package meetup

// BestRouted benchmark feeding BENCH_netgraph.json: repeated same-snapshot
// group placement on the Starlink preset, timing the parallel multi-source
// fan-out against a serial per-user loop internally so CI's -benchtime 1x
// run still reports the speedup.

import (
	"math"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
)

// BenchmarkBestRouted places a six-user transcontinental group on a warm
// frozen snapshot. serial-ns/op re-runs the same placement with sequential
// per-user SSSPs; parallel-speedup-x is what AllSourcesLatencies buys.
func BenchmarkBestRouted(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	users := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01},  // New York
		{LatDeg: 51.51, LonDeg: -0.13},   // London
		{LatDeg: -33.92, LonDeg: 18.42},  // Cape Town
		{LatDeg: 35.68, LonDeg: 139.69},  // Tokyo
		{LatDeg: -23.55, LonDeg: -46.63}, // São Paulo
		{LatDeg: 28.61, LonDeg: 77.21},   // Delhi
	}
	net := GroupNetwork(NewProvider(c), users, nil)
	snap := net.At(0)
	snap.Freeze()
	if _, err := BestRouted(snap, len(users)); err != nil { // warm the context pool
		b.Fatal(err)
	}
	var parNs, serialNs int64
	var parSum, serialSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		placed, err := BestRouted(snap, len(users))
		parNs += time.Since(start).Nanoseconds()
		if err != nil {
			b.Fatal(err)
		}
		parSum += placed.GroupRTTMs

		// Serial reference: the pre-parallel per-user loop.
		start = time.Now()
		worstBest := math.Inf(1)
		perUser := make([][]float64, len(users))
		for u := range users {
			perUser[u] = snap.LatencyToAllSats(u)
		}
		for id := range perUser[0] {
			worst := 0.0
			for u := range users {
				worst = math.Max(worst, 2*perUser[u][id])
			}
			worstBest = math.Min(worstBest, worst)
		}
		serialNs += time.Since(start).Nanoseconds()
		serialSum += worstBest
	}
	b.StopTimer()
	if parSum != serialSum {
		b.Fatalf("parallel/serial placement diverged: %.17g vs %.17g", parSum, serialSum)
	}
	b.ReportMetric(float64(parNs)/float64(b.N), "parallel-ns/op")
	b.ReportMetric(float64(serialNs)/float64(b.N), "serial-ns/op")
	b.ReportMetric(float64(serialNs)/float64(parNs), "parallel-speedup-x")
}
