package meetup

// BestRouted benchmark feeding BENCH_netgraph.json: repeated same-snapshot
// group placement on the Starlink preset, timing the adaptive multi-source
// fan-out against the strategy it rejects on this host (see the netgraph
// AllSourcesLatencies benchmark for the rationale): with spare CPUs the
// baseline is a serial per-user loop, without them it is the naive
// goroutine-per-user fan-out under the inflated GOMAXPROCS that CPU-quota'd
// containers default to. Minimum over interleaved repetitions keeps
// scheduler noise out of the ratio.

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
)

// BenchmarkBestRouted places a six-user transcontinental group on a warm
// frozen snapshot.
func BenchmarkBestRouted(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	users := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01},  // New York
		{LatDeg: 51.51, LonDeg: -0.13},   // London
		{LatDeg: -33.92, LonDeg: 18.42},  // Cape Town
		{LatDeg: 35.68, LonDeg: 139.69},  // Tokyo
		{LatDeg: -23.55, LonDeg: -46.63}, // São Paulo
		{LatDeg: 28.61, LonDeg: 77.21},   // Delhi
	}
	net := GroupNetwork(NewProvider(c), users, nil)
	snap := net.At(0)
	snap.Freeze()
	if _, err := BestRouted(snap, len(users)); err != nil { // warm the context pool
		b.Fatal(err)
	}
	parallelAvail := runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1
	if !parallelAvail && runtime.GOMAXPROCS(0) <= 1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}

	// scan reduces per-user latency rows to the placement's group RTT the
	// same way BestRouted does, so checksums compare.
	scan := func(perUser [][]float64) float64 {
		best := math.Inf(1)
		for id := range perUser[0] {
			worst := 0.0
			feasible := true
			for u := range perUser {
				ow := perUser[u][id]
				if math.IsInf(ow, 1) {
					feasible = false
					break
				}
				worst = math.Max(worst, 2*ow)
			}
			if feasible {
				best = math.Min(best, worst)
			}
		}
		return best
	}
	baseline := func() float64 {
		perUser := make([][]float64, len(users))
		if parallelAvail {
			for u := range users {
				perUser[u] = snap.LatencyToAllSats(u)
			}
		} else {
			var wg sync.WaitGroup
			wg.Add(len(users))
			for u := range users {
				go func(u int) {
					defer wg.Done()
					perUser[u] = snap.LatencyToAllSats(u)
				}(u)
			}
			wg.Wait()
		}
		return scan(perUser)
	}

	const reps = 32
	parNs, baseNs := int64(math.MaxInt64), int64(math.MaxInt64)
	var parSum, baseSum float64
	timePar := func() {
		start := time.Now()
		placed, err := BestRouted(snap, len(users))
		if ns := time.Since(start).Nanoseconds(); ns < parNs {
			parNs = ns
		}
		if err != nil {
			b.Fatal(err)
		}
		parSum = placed.GroupRTTMs
	}
	timeBase := func() {
		start := time.Now()
		got := baseline()
		if ns := time.Since(start).Nanoseconds(); ns < baseNs {
			baseNs = ns
		}
		baseSum = got
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			if r&1 == 0 {
				timePar()
				timeBase()
			} else {
				timeBase()
				timePar()
			}
		}
	}
	b.StopTimer()
	if parSum != baseSum {
		b.Fatalf("fan-out/baseline placement diverged: %.17g vs %.17g", parSum, baseSum)
	}
	b.ReportMetric(float64(parNs), "parallel-ns/op")
	b.ReportMetric(float64(baseNs), "serial-ns/op")
	b.ReportMetric(float64(baseNs)/float64(parNs), "parallel-speedup-x")
}
