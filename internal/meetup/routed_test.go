package meetup

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/netgraph"
)

func routedNet(t *testing.T, users, dcs []geo.LatLon) *netgraph.Network {
	t.Helper()
	c, err := constellation.Build("r", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 10},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return GroupNetwork(NewProvider(c), users, dcs)
}

func TestBestRoutedSingleUser(t *testing.T) {
	users := []geo.LatLon{{LatDeg: 20, LonDeg: 30}}
	net := routedNet(t, users, nil)
	snap := net.At(0)
	placed, err := BestRouted(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For one user the best routed server is the nearest visible
	// satellite: RTT equals twice the one-hop latency.
	if len(placed.PerUserRTTMs) != 1 || math.Abs(placed.PerUserRTTMs[0]-placed.GroupRTTMs) > 1e-9 {
		t.Fatalf("single-user placement inconsistent: %+v", placed)
	}
	if placed.GroupRTTMs < 3.5 || placed.GroupRTTMs > 15 {
		t.Fatalf("single-user RTT %v out of range", placed.GroupRTTMs)
	}
	if placed.SpreadMs() != 0 {
		t.Fatalf("single-user spread %v", placed.SpreadMs())
	}
}

func TestBestRoutedOptimality(t *testing.T) {
	users := []geo.LatLon{
		{LatDeg: 10, LonDeg: 0},
		{LatDeg: -10, LonDeg: 40},
	}
	net := routedNet(t, users, nil)
	snap := net.At(0)
	placed, err := BestRouted(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	// No satellite offers a lower max RTT: cross-check against the raw
	// per-user latency vectors.
	l0 := snap.LatencyToAllSats(0)
	l1 := snap.LatencyToAllSats(1)
	for id := range l0 {
		if math.IsInf(l0[id], 1) || math.IsInf(l1[id], 1) {
			continue
		}
		worst := 2 * math.Max(l0[id], l1[id])
		if worst < placed.GroupRTTMs-1e-9 {
			t.Fatalf("sat %d at %v ms beats placement %v ms", id, worst, placed.GroupRTTMs)
		}
	}
	// Spread is consistent with the per-user values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range placed.PerUserRTTMs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if math.Abs(placed.SpreadMs()-(hi-lo)) > 1e-9 {
		t.Fatalf("spread mismatch: %v vs %v", placed.SpreadMs(), hi-lo)
	}
}

func TestSpreadMsEdgeCases(t *testing.T) {
	// A zero-user placement (e.g. a zero value carried through an error
	// path) and a single-user placement both have zero spread by definition.
	if got := (RoutedPlacement{}).SpreadMs(); got != 0 {
		t.Fatalf("zero-user spread = %v", got)
	}
	if got := (RoutedPlacement{PerUserRTTMs: []float64{12.5}}).SpreadMs(); got != 0 {
		t.Fatalf("one-user spread = %v", got)
	}
	if got := (RoutedPlacement{PerUserRTTMs: []float64{12.5, 10, 14}}).SpreadMs(); got != 4 {
		t.Fatalf("spread = %v, want 4", got)
	}
}

func TestBestRoutedValidation(t *testing.T) {
	users := []geo.LatLon{{LatDeg: 0, LonDeg: 0}}
	net := routedNet(t, users, nil)
	if _, err := BestRouted(net.At(0), 0); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestBestRoutedNoCoverage(t *testing.T) {
	users := []geo.LatLon{{LatDeg: 89.5, LonDeg: 0}}
	net := routedNet(t, users, nil)
	snap := net.At(0)
	if len(snap.VisibleSats(0)) > 0 {
		t.Skip("pole unexpectedly covered")
	}
	if _, err := BestRouted(snap, 1); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
}

func TestBestTerrestrial(t *testing.T) {
	users := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 5.60, LonDeg: -0.19},
	}
	dcSites := []geo.LatLon{
		{LatDeg: -26.20, LonDeg: 28.05}, // Johannesburg
		{LatDeg: 50.11, LonDeg: 8.68},   // Frankfurt
	}
	net := routedNet(t, users, dcSites)
	snap := net.At(0)
	placed, err := BestTerrestrial(snap, len(users), len(dcSites))
	if err != nil {
		t.Fatal(err)
	}
	if placed.DCIndex < 0 || placed.DCIndex >= len(dcSites) {
		t.Fatalf("DCIndex = %d", placed.DCIndex)
	}
	if len(placed.PerUserRTTMs) != len(users) {
		t.Fatalf("per-user list = %d", len(placed.PerUserRTTMs))
	}
	// The group RTT is the max of the per-user values.
	worst := 0.0
	for _, v := range placed.PerUserRTTMs {
		worst = math.Max(worst, v)
	}
	if math.Abs(worst-placed.GroupRTTMs) > 1e-9 {
		t.Fatalf("group RTT %v vs per-user max %v", placed.GroupRTTMs, worst)
	}
	// The alternative DC must not be better.
	other := 1 - placed.DCIndex
	otherWorst := 0.0
	for u := range users {
		rtt, err := snap.GroundToGroundRTTMs(u, len(users)+other)
		if err != nil {
			t.Fatal(err)
		}
		otherWorst = math.Max(otherWorst, rtt)
	}
	if otherWorst < placed.GroupRTTMs-1e-9 {
		t.Fatalf("BestTerrestrial picked DC %d (%v ms) but DC %d has %v ms",
			placed.DCIndex, placed.GroupRTTMs, other, otherWorst)
	}
	// In-orbit beats the terrestrial bounce for this regional group.
	routed, err := BestRouted(snap, len(users))
	if err != nil {
		t.Fatal(err)
	}
	if routed.GroupRTTMs >= placed.GroupRTTMs {
		t.Fatalf("in-orbit %v ms should beat terrestrial %v ms", routed.GroupRTTMs, placed.GroupRTTMs)
	}
}

func TestBestTerrestrialValidation(t *testing.T) {
	users := []geo.LatLon{{LatDeg: 0, LonDeg: 0}}
	net := routedNet(t, users, []geo.LatLon{{LatDeg: 10, LonDeg: 10}})
	if _, err := BestTerrestrial(net.At(0), 0, 1); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := BestTerrestrial(net.At(0), 1, 0); err == nil {
		t.Fatal("zero dcs accepted")
	}
}
