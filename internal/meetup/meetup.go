// Package meetup implements the paper's §5 meetup-server selection: the
// MinMax baseline (latency-optimal satellite at each instant) and the Sticky
// heuristic (prioritise stationarity by planning ahead over the predictable
// satellite motion). It also computes routed meetup placements for user
// groups too spread out to share one satellite's footprint (the §3.2 Kuiper
// example).
package meetup

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/netgraph"
	"repro/internal/units"
	"repro/internal/visibility"
)

// Policy selects how the meetup server is (re)chosen over time.
type Policy int

const (
	// MinMax re-picks the satellite minimising the group's maximum RTT at
	// every instant — the paper's baseline.
	MinMax Policy = iota
	// Sticky holds a carefully chosen satellite as long as possible: pick
	// from the near-optimal latency band the candidates that stay visible
	// longest, tie-broken by cheapest hand-off to their successor.
	Sticky
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case MinMax:
		return "minmax"
	case Sticky:
		return "sticky"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config holds the Sticky knobs, with the paper's defaults.
type Config struct {
	// LatencyBand is the fractional latency slack over the MinMax optimum a
	// candidate may have (paper: 10%).
	LatencyBand float64
	// PoolSize is how many longest-visible candidates survive to the
	// tie-break (paper: 5).
	PoolSize int
	// LookaheadStepSec is the time resolution of the visibility lookahead.
	LookaheadStepSec float64
	// LookaheadHorizonSec caps the lookahead; candidates still visible at
	// the horizon are treated as equally long-lived.
	LookaheadHorizonSec float64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		LatencyBand:         0.10,
		PoolSize:            5,
		LookaheadStepSec:    5,
		LookaheadHorizonSec: 1200,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LatencyBand <= 0 {
		c.LatencyBand = d.LatencyBand
	}
	if c.PoolSize <= 0 {
		c.PoolSize = d.PoolSize
	}
	if c.LookaheadStepSec <= 0 {
		c.LookaheadStepSec = d.LookaheadStepSec
	}
	if c.LookaheadHorizonSec <= 0 {
		c.LookaheadHorizonSec = d.LookaheadHorizonSec
	}
	return c
}

// Candidate is a satellite eligible to host the group's meetup server.
type Candidate struct {
	// SatID identifies the satellite.
	SatID int
	// GroupRTTMs is the maximum round-trip time over the group's users,
	// each talking directly to the satellite.
	GroupRTTMs float64
}

// Provider supplies constellation snapshots by time. It lets many planners
// share one propagation pass per time step.
type Provider struct {
	eng *ephem.Engine
}

// NewProvider wraps a constellation in a caching snapshot provider backed
// by a private ephemeris engine.
func NewProvider(c *constellation.Constellation) *Provider {
	return NewProviderFor(ephem.New(c, ephem.Config{}))
}

// NewProviderFor wraps a shared ephemeris engine. Planners on the same
// engine — across sessions, policies, and goroutines — reuse each other's
// propagated frames.
func NewProviderFor(eng *ephem.Engine) *Provider { return &Provider{eng: eng} }

// At returns the ECEF snapshot at tSec. The returned slice is shared and
// immutable: callers may retain it but must not modify it.
func (p *Provider) At(tSec float64) []geo.Vec3 { return p.eng.SnapshotAt(tSec) }

// Ephemeris returns the backing engine.
func (p *Provider) Ephemeris() *ephem.Engine { return p.eng }

// Constellation returns the underlying constellation.
func (p *Provider) Constellation() *constellation.Constellation { return p.eng.Constellation() }

// Planner evaluates meetup-server choices for one user group against one
// constellation. Eligibility means direct visibility from every user — the
// regime of the paper's Fig 6/7 regional groups.
type Planner struct {
	c    *constellation.Constellation
	obs  *visibility.Observer
	grid *isl.Grid
	cfg  Config

	users    []geo.Vec3
	centroid geo.Vec3
	// prefilterChord2[id]: a satellite farther (squared chord) than this
	// from the group centroid cannot be visible to all users; used to prune
	// the per-step candidate scan.
	prefilterChord2 []float64
}

// NewPlanner builds a planner for the group. The grid may be shared across
// planners of the same constellation.
func NewPlanner(c *constellation.Constellation, grid *isl.Grid, users []geo.LatLon, cfg Config) (*Planner, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("meetup: empty user group")
	}
	p := &Planner{
		c:    c,
		obs:  visibility.NewObserver(c),
		grid: grid,
		cfg:  cfg.withDefaults(),
	}
	for _, u := range users {
		if !u.Valid() {
			return nil, fmt.Errorf("meetup: invalid user location %v", u)
		}
		p.users = append(p.users, u.ECEF())
	}
	p.centroid = geo.Centroid(users).ECEF()
	maxSpread := 0.0
	for _, u := range p.users {
		if d := u.Distance(p.centroid); d > maxSpread {
			maxSpread = d
		}
	}
	p.prefilterChord2 = make([]float64, c.Size())
	for id := range c.Satellites {
		sh := c.Shells[c.Satellites[id].ShellIndex]
		d := visibility.MaxSlantRangeKm(sh.AltitudeKm, sh.MinElevationDeg) + maxSpread
		p.prefilterChord2[id] = d * d
	}
	return p, nil
}

// Users returns the group size.
func (p *Planner) Users() int { return len(p.users) }

// groupRTT returns the max RTT over users to satellite id, and whether the
// satellite is visible to every user.
func (p *Planner) groupRTT(snap []geo.Vec3, id int) (float64, bool) {
	pos := snap[id]
	worst := 0.0
	for _, u := range p.users {
		rel := pos.Sub(u)
		d2 := rel.Dot(rel)
		if !p.obs.Visible(u, id, pos) {
			return 0, false
		}
		if rtt := units.RTTMs(math.Sqrt(d2)); rtt > worst {
			worst = rtt
		}
	}
	return worst, true
}

// Eligible appends all candidates at the snapshot to dst and returns it.
func (p *Planner) Eligible(snap []geo.Vec3, dst []Candidate) []Candidate {
	for id, pos := range snap {
		rel := pos.Sub(p.centroid)
		if rel.Dot(rel) > p.prefilterChord2[id] {
			continue
		}
		if rtt, ok := p.groupRTT(snap, id); ok {
			dst = append(dst, Candidate{SatID: id, GroupRTTMs: rtt})
		}
	}
	return dst
}

// ErrNoCandidate is returned when no satellite is visible to all users.
var ErrNoCandidate = fmt.Errorf("meetup: no satellite visible to the whole group")

// SelectMinMax returns the candidate minimising the group's max RTT.
func (p *Planner) SelectMinMax(snap []geo.Vec3) (Candidate, error) {
	best := Candidate{SatID: -1, GroupRTTMs: math.Inf(1)}
	for id, pos := range snap {
		rel := pos.Sub(p.centroid)
		if rel.Dot(rel) > p.prefilterChord2[id] {
			continue
		}
		if rtt, ok := p.groupRTT(snap, id); ok && rtt < best.GroupRTTMs {
			best = Candidate{SatID: id, GroupRTTMs: rtt}
		}
	}
	if best.SatID < 0 {
		return Candidate{}, ErrNoCandidate
	}
	return best, nil
}

// SelectSticky runs the paper's three-step heuristic at time t0:
//
//  1. candidates within LatencyBand of the MinMax optimum,
//  2. the PoolSize candidates with the longest time until hand-off,
//  3. among those, the one whose eventual hand-off to its successor is
//     cheapest (lowest state-transfer latency).
func (p *Planner) SelectSticky(prov *Provider, t0 float64) (Candidate, error) {
	snap := prov.At(t0)
	elig := p.Eligible(snap, nil)
	if len(elig) == 0 {
		return Candidate{}, ErrNoCandidate
	}
	minRTT := math.Inf(1)
	for _, c := range elig {
		if c.GroupRTTMs < minRTT {
			minRTT = c.GroupRTTMs
		}
	}
	var band []Candidate
	for _, c := range elig {
		if c.GroupRTTMs <= minRTT*(1+p.cfg.LatencyBand) {
			band = append(band, c)
		}
	}

	// Lookahead: march forward in time, dropping band members as they lose
	// full-group visibility; record each member's end time.
	end := make(map[int]float64, len(band))
	alive := make([]Candidate, len(band))
	copy(alive, band)
	horizon := t0 + p.cfg.LookaheadHorizonSec
	for t := t0 + p.cfg.LookaheadStepSec; t <= horizon && len(alive) > 0; t += p.cfg.LookaheadStepSec {
		fsnap := prov.At(t)
		keep := alive[:0]
		for _, c := range alive {
			if _, ok := p.groupRTT(fsnap, c.SatID); ok {
				keep = append(keep, c)
			} else {
				end[c.SatID] = t
			}
		}
		alive = keep
	}
	for _, c := range alive { // censored at the horizon
		end[c.SatID] = horizon
	}

	// Top PoolSize by time-until-hand-off (stable on RTT then ID for
	// determinism).
	sort.SliceStable(band, func(i, j int) bool {
		ei, ej := end[band[i].SatID], end[band[j].SatID]
		if ei != ej {
			return ei > ej
		}
		if band[i].GroupRTTMs != band[j].GroupRTTMs {
			return band[i].GroupRTTMs < band[j].GroupRTTMs
		}
		return band[i].SatID < band[j].SatID
	})
	pool := band
	if len(pool) > p.cfg.PoolSize {
		pool = pool[:p.cfg.PoolSize]
	}

	// Tie-break: cheapest hand-off to the successor at each candidate's end
	// time. Successor = the MinMax choice then (excluding the candidate).
	best := pool[0]
	bestTransfer := math.Inf(1)
	for _, c := range pool {
		te := end[c.SatID]
		fsnap := prov.At(te)
		succ, err := p.selectMinMaxExcluding(fsnap, c.SatID)
		if err != nil {
			continue
		}
		tr, err := p.TransferLatencyMs(fsnap, c.SatID, succ.SatID)
		if err != nil {
			continue
		}
		if tr < bestTransfer {
			bestTransfer = tr
			best = c
		}
	}
	// Re-evaluate the chosen candidate's RTT at t0 (snap may have been
	// overwritten by lookahead reuse).
	snap = prov.At(t0)
	if rtt, ok := p.groupRTT(snap, best.SatID); ok {
		best.GroupRTTMs = rtt
	}
	return best, nil
}

func (p *Planner) selectMinMaxExcluding(snap []geo.Vec3, exclude int) (Candidate, error) {
	best := Candidate{SatID: -1, GroupRTTMs: math.Inf(1)}
	for id, pos := range snap {
		if id == exclude {
			continue
		}
		rel := pos.Sub(p.centroid)
		if rel.Dot(rel) > p.prefilterChord2[id] {
			continue
		}
		if rtt, ok := p.groupRTT(snap, id); ok && rtt < best.GroupRTTMs {
			best = Candidate{SatID: id, GroupRTTMs: rtt}
		}
	}
	if best.SatID < 0 {
		return Candidate{}, ErrNoCandidate
	}
	return best, nil
}

// TransferLatencyMs returns the one-way state-transfer latency from sat a to
// sat b at the snapshot: the cheaper of (1) the shortest ISL path and (2) a
// ground relay through the group's region (down to a ground station at the
// group centroid, back up). The relay covers cross-shell pairs — the +grid
// does not link shells — and the long-way-around +grid cases where an
// ascending and a descending satellite cover the same region from distant
// planes.
func (p *Planner) TransferLatencyMs(snap []geo.Vec3, a, b int) (float64, error) {
	if a < 0 || a >= len(snap) || b < 0 || b >= len(snap) {
		return 0, fmt.Errorf("meetup: transfer satellites out of range (a=%d b=%d sats=%d)", a, b, len(snap))
	}
	if a == b {
		return 0, nil
	}
	relay := units.PropagationDelayMs(snap[a].Distance(p.centroid) + p.centroid.Distance(snap[b]))
	path, err := netgraph.ISLShortest(p.grid, snap, a, b)
	if err != nil {
		// Different shells: the grid has no path; the relay is the route.
		return relay, nil
	}
	return math.Min(path.OneWayMs, relay), nil
}

// TimeToExpiry returns how long satellite satID remains visible to the
// whole group after t0 — the warning time a migration planner has before
// the hand-off must complete. Scans forward at the Sticky lookahead step;
// capped at the lookahead horizon (returned with capped=true).
func (p *Planner) TimeToExpiry(prov *Provider, satID int, t0 float64) (warnSec float64, capped bool) {
	horizon := t0 + p.cfg.LookaheadHorizonSec
	for t := t0 + p.cfg.LookaheadStepSec; t <= horizon; t += p.cfg.LookaheadStepSec {
		if _, ok := p.groupRTT(prov.At(t), satID); !ok {
			return t - t0, false
		}
	}
	return p.cfg.LookaheadHorizonSec, true
}
