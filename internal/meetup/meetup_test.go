package meetup

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/isl"
)

// toyConst builds a dense-enough single shell so small regional groups
// always have several eligible satellites.
func toyConst(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("toy", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 32, SatsPerPlane: 32, PhaseFactor: 11, MinElevationDeg: 20},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func westAfrica() []geo.LatLon {
	return []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 3.87, LonDeg: 11.52},
		{LatDeg: 5.60, LonDeg: -0.19},
	}
}

func newPlanner(t testing.TB, c *constellation.Constellation, users []geo.LatLon, cfg Config) (*Planner, *Provider) {
	t.Helper()
	grid := isl.NewPlusGrid(c)
	p, err := NewPlanner(c, grid, users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, NewProvider(c)
}

func TestNewPlannerValidation(t *testing.T) {
	c := toyConst(t)
	grid := isl.NewPlusGrid(c)
	if _, err := NewPlanner(c, grid, nil, Config{}); err == nil {
		t.Fatal("empty group should fail")
	}
	if _, err := NewPlanner(c, grid, []geo.LatLon{{LatDeg: 91}}, Config{}); err == nil {
		t.Fatal("invalid location should fail")
	}
}

func TestPolicyString(t *testing.T) {
	if MinMax.String() != "minmax" || Sticky.String() != "sticky" {
		t.Fatal("Policy.String wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy string empty")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.LatencyBand != 0.10 || c.PoolSize != 5 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{LatencyBand: 0.2, PoolSize: 3, LookaheadStepSec: 1, LookaheadHorizonSec: 60}.withDefaults()
	if c2.LatencyBand != 0.2 || c2.PoolSize != 3 || c2.LookaheadStepSec != 1 || c2.LookaheadHorizonSec != 60 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
}

func TestEligibleAllVisible(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	snap := prov.At(0)
	elig := p.Eligible(snap, nil)
	if len(elig) == 0 {
		t.Fatal("no eligible satellite for a compact group on a dense shell")
	}
	for _, cand := range elig {
		rtt, ok := p.groupRTT(snap, cand.SatID)
		if !ok {
			t.Fatalf("eligible sat %d not visible to all", cand.SatID)
		}
		if math.Abs(rtt-cand.GroupRTTMs) > 1e-9 {
			t.Fatalf("RTT mismatch for %d", cand.SatID)
		}
		// Group RTT bounded: at least the overhead RTT, at most the mask
		// worst-case.
		if cand.GroupRTTMs < 3.6 || cand.GroupRTTMs > 20 {
			t.Fatalf("group RTT %v ms out of plausible range", cand.GroupRTTMs)
		}
	}
}

func TestSelectMinMaxIsOptimal(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	snap := prov.At(120)
	best, err := p.SelectMinMax(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range p.Eligible(snap, nil) {
		if cand.GroupRTTMs < best.GroupRTTMs-1e-9 {
			t.Fatalf("MinMax %v beaten by %v", best, cand)
		}
	}
}

func TestSelectMinMaxNoCandidate(t *testing.T) {
	// An equatorial-only shell cannot serve a polar group.
	c, err := constellation.Build("eq", []constellation.Shell{
		{Name: "eq", AltitudeKm: 550, InclinationDeg: 0, Planes: 2, SatsPerPlane: 10, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, prov := newPlanner(t, c, []geo.LatLon{{LatDeg: 80, LonDeg: 0}}, Config{})
	if _, err := p.SelectMinMax(prov.At(0)); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("err = %v, want ErrNoCandidate", err)
	}
	if _, err := p.SelectSticky(prov, 0); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("sticky err = %v, want ErrNoCandidate", err)
	}
}

func TestStickyWithinLatencyBand(t *testing.T) {
	c := toyConst(t)
	cfg := DefaultConfig()
	p, prov := newPlanner(t, c, westAfrica(), cfg)
	mm, err := p.SelectMinMax(prov.At(0))
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.SelectSticky(prov, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupRTTMs > mm.GroupRTTMs*(1+cfg.LatencyBand)+1e-9 {
		t.Fatalf("Sticky RTT %v exceeds band over MinMax %v", st.GroupRTTMs, mm.GroupRTTMs)
	}
}

func TestStickyHoldsLongerThanMinMax(t *testing.T) {
	// The paper's core claim (Fig 6): Sticky's time between hand-offs is a
	// multiple of MinMax's. Needs the real multi-shell constellation —
	// single sparse shells leave only one eligible satellite at a time and
	// the policies degenerate to the same behaviour.
	if testing.Short() {
		t.Skip("full constellation simulation")
	}
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A regional friend group around Abuja (few hundred km spread).
	tight := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 8.50, LonDeg: 9.00},
		{LatDeg: 10.20, LonDeg: 6.30},
	}
	p, prov := newPlanner(t, c, tight, Config{})

	mm, err := p.Simulate(prov, MinMax, 0, 3600, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Simulate(prov, Sticky, 0, 3600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Handoffs) == 0 {
		t.Fatal("MinMax produced no hand-offs in an hour")
	}
	if len(st.Handoffs) >= len(mm.Handoffs) {
		t.Fatalf("Sticky hand-offs (%d) not fewer than MinMax (%d)", len(st.Handoffs), len(mm.Handoffs))
	}
	mean := func(r SessionResult) float64 {
		if len(r.Handoffs) == 0 {
			return r.DurationSec
		}
		sum := 0.0
		for _, h := range r.Handoffs {
			sum += h.HeldSec
		}
		return sum / float64(len(r.Handoffs))
	}
	if mean(st) < 1.4*mean(mm) {
		t.Fatalf("Sticky mean hold %.0fs vs MinMax %.0fs — expected ≥1.4x", mean(st), mean(mm))
	}
	// And the latency premium stays small (the paper: ~1.4 ms for the West
	// Africa group).
	if st.RTT.Mean() > mm.RTT.Mean()+4 {
		t.Fatalf("Sticky mean RTT %.2f ms too far above MinMax %.2f ms", st.RTT.Mean(), mm.RTT.Mean())
	}
}

func TestSimulateAccounting(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	res, err := p.Simulate(prov, MinMax, 0, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != MinMax || res.DurationSec != 1200 {
		t.Fatalf("result header wrong: %+v", res)
	}
	prevT := 0.0
	for _, h := range res.Handoffs {
		if h.TimeSec <= prevT {
			t.Fatalf("hand-offs out of order at %v", h.TimeSec)
		}
		if h.From == h.To {
			t.Fatalf("self hand-off: %+v", h)
		}
		if h.HeldSec <= 0 {
			t.Fatalf("non-positive hold: %+v", h)
		}
		if h.TransferMs < 0 || h.TransferMs > 50 {
			t.Fatalf("transfer latency implausible: %+v", h)
		}
		prevT = h.TimeSec
	}
	// Intervals + final hold = duration.
	sum := res.FinalHoldSec
	for _, h := range res.Handoffs {
		sum += h.HeldSec
	}
	if math.Abs(sum-res.DurationSec) > 1e-6 {
		t.Fatalf("hold times sum to %v, want %v", sum, res.DurationSec)
	}
	if res.RTT.N() == 0 {
		t.Fatal("no RTT samples")
	}
	ints := res.HandoffIntervals()
	trs := res.TransferLatencies()
	if len(ints) != len(res.Handoffs) || len(trs) != len(res.Handoffs) {
		t.Fatal("sample projections wrong length")
	}
}

func TestSimulateValidation(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	if _, err := p.Simulate(prov, MinMax, 0, 0, 1); err == nil {
		t.Fatal("zero duration should fail")
	}
	if _, err := p.Simulate(prov, MinMax, 0, 10, 0); err == nil {
		t.Fatal("zero step should fail")
	}
	if _, err := p.Simulate(prov, Policy(42), 0, 10, 1); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestTransferLatency(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	snap := prov.At(0)
	// Adjacent satellites: transfer latency equals one ISL hop.
	got, err := p.TransferLatencyMs(snap, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 10 {
		t.Fatalf("adjacent transfer = %v ms", got)
	}
	// Self-transfer is free.
	if self, err := p.TransferLatencyMs(snap, 3, 3); err != nil || self != 0 {
		t.Fatalf("self transfer = %v, %v", self, err)
	}
	if _, err := p.TransferLatencyMs(snap, -1, 0); err == nil {
		t.Fatal("range error expected")
	}
}

func TestProviderCaching(t *testing.T) {
	c := toyConst(t)
	prov := NewProvider(c)
	a := prov.At(100)
	b := prov.At(100)
	if &a[0] != &b[0] {
		t.Fatal("same-time snapshots should share the buffer")
	}
	first := a[0]
	_ = prov.At(200)
	back := prov.At(100)
	if back[0] != first {
		t.Fatal("re-requested snapshot differs")
	}
	if prov.Constellation() != c {
		t.Fatal("Constellation accessor wrong")
	}
}

func TestUsersAccessor(t *testing.T) {
	c := toyConst(t)
	p, _ := newPlanner(t, c, westAfrica(), Config{})
	if p.Users() != 3 {
		t.Fatalf("Users = %d", p.Users())
	}
}

func TestTimeToExpiry(t *testing.T) {
	c := toyConst(t)
	p, prov := newPlanner(t, c, westAfrica(), Config{})
	snap := prov.At(0)
	cand, err := p.SelectMinMax(snap)
	if err != nil {
		t.Fatal(err)
	}
	warn, capped := p.TimeToExpiry(prov, cand.SatID, 0)
	if capped {
		t.Skip("candidate visible beyond the lookahead horizon")
	}
	if warn <= 0 || warn > 1200 {
		t.Fatalf("warning time %v s implausible", warn)
	}
	// At t0+warn the satellite is no longer fully visible; just before, it is.
	if _, ok := p.groupRTT(prov.At(warn+p.cfg.LookaheadStepSec), cand.SatID); ok {
		t.Fatal("satellite still visible after reported expiry")
	}
	// A satellite that is already invisible expires within one step.
	for id := 0; id < c.Size(); id++ {
		if _, ok := p.groupRTT(prov.At(0), id); !ok {
			w, capped2 := p.TimeToExpiry(prov, id, 0)
			if capped2 || w > p.cfg.LookaheadStepSec {
				t.Fatalf("invisible sat %d has warning %v", id, w)
			}
			break
		}
	}
}
