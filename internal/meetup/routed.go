package meetup

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/netgraph"
)

// RoutedPlacement is the result of meetup placement when users reach the
// server over the constellation (uplink + ISL hops), so the server need not
// sit in every user's footprint. This is the §3.2 regime for groups spread
// across continents.
type RoutedPlacement struct {
	// SatID hosts the meetup server.
	SatID int
	// GroupRTTMs is the maximum round-trip latency over users.
	GroupRTTMs float64
	// PerUserRTTMs lists each user's RTT to the server.
	PerUserRTTMs []float64
}

// SpreadMs returns the max-min RTT difference across users — the paper's
// latency-consistency concern for competitive games.
func (r RoutedPlacement) SpreadMs() float64 {
	if len(r.PerUserRTTMs) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range r.PerUserRTTMs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// BestRouted finds the satellite minimising the group's maximum routed RTT
// at the snapshot. The network's ground stations must be exactly the user
// terminals (in group order).
func BestRouted(s *netgraph.Snapshot, users int) (RoutedPlacement, error) {
	if users <= 0 {
		return RoutedPlacement{}, fmt.Errorf("meetup: users must be positive")
	}
	// One Dijkstra per user gives latency to every satellite; the sources
	// fan out across GOMAXPROCS over the shared frozen snapshot.
	gis := make([]int, users)
	for u := range gis {
		gis[u] = u
	}
	perUser := s.AllSourcesLatencies(gis)
	sats := len(perUser[0])
	best := RoutedPlacement{SatID: -1, GroupRTTMs: math.Inf(1)}
	for id := 0; id < sats; id++ {
		worst := 0.0
		feasible := true
		for u := 0; u < users; u++ {
			ow := perUser[u][id]
			if math.IsInf(ow, 1) {
				feasible = false
				break
			}
			if rtt := 2 * ow; rtt > worst {
				worst = rtt
			}
		}
		if feasible && worst < best.GroupRTTMs {
			best.SatID = id
			best.GroupRTTMs = worst
		}
	}
	if best.SatID < 0 {
		return RoutedPlacement{}, ErrNoCandidate
	}
	best.PerUserRTTMs = make([]float64, users)
	for u := 0; u < users; u++ {
		best.PerUserRTTMs[u] = 2 * perUser[u][best.SatID]
	}
	return best, nil
}

// TerrestrialPlacement is the baseline: the meetup server sits in a
// terrestrial data center, and users reach it over the constellation
// (the paper's "hybrid approach" in Fig 3).
type TerrestrialPlacement struct {
	// DCIndex is the chosen data-center ground index (see BestTerrestrial).
	DCIndex int
	// GroupRTTMs is the max RTT over users to that data center.
	GroupRTTMs float64
	// PerUserRTTMs lists each user's RTT.
	PerUserRTTMs []float64
}

// BestTerrestrial picks the data-center ground station minimising the
// group's max RTT. The network's grounds must be users followed by DC sites:
// grounds[0:users] are user terminals, grounds[users:] are data centers.
// The returned DCIndex is relative to the DC sub-slice.
func BestTerrestrial(s *netgraph.Snapshot, users, dcs int) (TerrestrialPlacement, error) {
	if users <= 0 || dcs <= 0 {
		return TerrestrialPlacement{}, fmt.Errorf("meetup: users and dcs must be positive")
	}
	best := TerrestrialPlacement{DCIndex: -1, GroupRTTMs: math.Inf(1)}
	rtts := make([][]float64, users) // per user: RTT to each DC
	for u := 0; u < users; u++ {
		rtts[u] = make([]float64, dcs)
		for d := 0; d < dcs; d++ {
			rtt, err := s.GroundToGroundRTTMs(u, users+d)
			if err != nil {
				rtt = math.Inf(1)
			}
			rtts[u][d] = rtt
		}
	}
	for d := 0; d < dcs; d++ {
		worst := 0.0
		for u := 0; u < users; u++ {
			if rtts[u][d] > worst {
				worst = rtts[u][d]
			}
		}
		if worst < best.GroupRTTMs {
			best.DCIndex = d
			best.GroupRTTMs = worst
		}
	}
	if best.DCIndex < 0 || math.IsInf(best.GroupRTTMs, 1) {
		return TerrestrialPlacement{}, ErrNoCandidate
	}
	best.PerUserRTTMs = make([]float64, users)
	for u := 0; u < users; u++ {
		best.PerUserRTTMs[u] = rtts[u][best.DCIndex]
	}
	return best, nil
}

// GroupNetwork builds a netgraph over the constellation with the given user
// terminals (and optionally data-center sites) as ground stations, in the
// layout BestRouted/BestTerrestrial expect.
func GroupNetwork(p *Provider, users []geo.LatLon, dcSites []geo.LatLon) *netgraph.Network {
	grounds := make([]geo.LatLon, 0, len(users)+len(dcSites))
	grounds = append(grounds, users...)
	grounds = append(grounds, dcSites...)
	return netgraph.New(p.Constellation(), grounds).UseEphemeris(p.Ephemeris())
}
