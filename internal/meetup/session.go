package meetup

import (
	"fmt"

	"repro/internal/stats"
)

// Handoff records one meetup-server migration event during a session.
type Handoff struct {
	// TimeSec is when the hand-off happened (seconds after epoch).
	TimeSec float64
	// From and To are the satellite IDs involved.
	From, To int
	// TransferMs is the one-way state-transfer latency over the ISL grid at
	// hand-off time.
	TransferMs float64
	// HeldSec is how long From had been the meetup server.
	HeldSec float64
}

// SessionResult summarises one simulated session under a policy.
type SessionResult struct {
	// Policy that ran the session.
	Policy Policy
	// StartSec and DurationSec delimit the session.
	StartSec, DurationSec float64
	// Handoffs in time order.
	Handoffs []Handoff
	// RTT aggregates the group max-RTT sampled every step.
	RTT stats.Summary
	// FinalHoldSec is how long the last server had been held at session end
	// (censored — not a hand-off interval).
	FinalHoldSec float64
}

// HandoffIntervals returns the completed times-between-hand-offs (the Fig 6
// samples).
func (r SessionResult) HandoffIntervals() []float64 {
	out := make([]float64, 0, len(r.Handoffs))
	for _, h := range r.Handoffs {
		out = append(out, h.HeldSec)
	}
	return out
}

// TransferLatencies returns the per-hand-off state-transfer latencies (the
// Fig 7 samples).
func (r SessionResult) TransferLatencies() []float64 {
	out := make([]float64, 0, len(r.Handoffs))
	for _, h := range r.Handoffs {
		out = append(out, h.TransferMs)
	}
	return out
}

// Simulate runs one session of the given policy: the group holds a meetup
// server, migrating per policy, from t0 for durationSec, evaluated every
// stepSec.
//
// MinMax switches whenever the latency-optimal satellite changes (the
// paper's "picks the latency-optimal satellite at each instant"). Sticky
// re-runs the Sticky selection only when the current server stops being
// visible to the whole group.
func (p *Planner) Simulate(prov *Provider, policy Policy, t0, durationSec, stepSec float64) (SessionResult, error) {
	if durationSec <= 0 || stepSec <= 0 {
		return SessionResult{}, fmt.Errorf("meetup: bad session bounds duration=%v step=%v", durationSec, stepSec)
	}
	res := SessionResult{Policy: policy, StartSec: t0, DurationSec: durationSec}

	sel := func(t float64) (Candidate, error) {
		if policy == Sticky {
			return p.SelectSticky(prov, t)
		}
		return p.SelectMinMax(prov.At(t))
	}

	cur, err := sel(t0)
	if err != nil {
		return SessionResult{}, fmt.Errorf("meetup: initial selection: %w", err)
	}
	heldSince := t0
	res.RTT.Add(cur.GroupRTTMs)

	for t := t0 + stepSec; t <= t0+durationSec; t += stepSec {
		snap := prov.At(t)
		rtt, visible := p.groupRTT(snap, cur.SatID)

		needSwitch := false
		var next Candidate
		switch policy {
		case MinMax:
			mm, err := p.SelectMinMax(snap)
			if err != nil {
				// Coverage gap: no server for the group at all. Keep the
				// (invisible) current selection pending and retry; counts as
				// a visibility loss below.
				if !visible {
					continue
				}
				res.RTT.Add(rtt)
				continue
			}
			if mm.SatID != cur.SatID {
				needSwitch, next = true, mm
			}
		case Sticky:
			if !visible {
				st, err := p.SelectSticky(prov, t)
				if err != nil {
					continue // coverage gap; retry next step
				}
				needSwitch, next = true, st
			}
		default:
			return SessionResult{}, fmt.Errorf("meetup: unknown policy %v", policy)
		}

		if needSwitch {
			snap = prov.At(t) // SelectSticky lookahead may have moved the buffer
			transfer, terr := p.TransferLatencyMs(snap, cur.SatID, next.SatID)
			if terr != nil {
				transfer = 0 // disconnected grid (degenerate topologies only)
			}
			res.Handoffs = append(res.Handoffs, Handoff{
				TimeSec:    t,
				From:       cur.SatID,
				To:         next.SatID,
				TransferMs: transfer,
				HeldSec:    t - heldSince,
			})
			cur = next
			heldSince = t
			res.RTT.Add(cur.GroupRTTMs)
			continue
		}
		if visible {
			res.RTT.Add(rtt)
		}
	}
	res.FinalHoldSec = t0 + durationSec - heldSince
	return res, nil
}
