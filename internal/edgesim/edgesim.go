// Package edgesim simulates request-level edge computing on the
// constellation: requests arrive from a ground site, ride the uplink to a
// satellite-server, queue for CPU, and return. It answers the §3.1
// operational question the geometric analysis cannot: at what request load
// does the latency advantage of the in-orbit edge survive queueing?
package edgesim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/visibility"
)

// Workload describes the request stream from one ground site.
type Workload struct {
	// ArrivalPerSec is the Poisson request rate.
	ArrivalPerSec float64
	// ServiceSec is the CPU time one request needs on one core.
	ServiceSec float64
	// Seed fixes the arrival/jitter draw.
	Seed int64
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	if w.ArrivalPerSec <= 0 {
		return fmt.Errorf("edgesim: arrival rate must be positive, got %v", w.ArrivalPerSec)
	}
	if w.ServiceSec <= 0 {
		return fmt.Errorf("edgesim: service time must be positive, got %v", w.ServiceSec)
	}
	return nil
}

// Policy selects which visible satellite serves a request. The selection
// logic itself lives in internal/serve; these values are thin adapters over
// the shared routing-policy interface.
type Policy int

const (
	// Nearest always uses the lowest-propagation satellite — minimal
	// propagation, but one server absorbs the whole site.
	Nearest Policy = iota
	// LeastBusy picks the visible satellite whose server frees up first —
	// spreads load across the footprint at a small propagation cost.
	LeastBusy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Nearest {
		return "nearest"
	}
	return "least-busy"
}

// shared returns the internal/serve policy this value adapts.
func (p Policy) shared() serve.Policy {
	if p == LeastBusy {
		return serve.LeastLoaded()
	}
	return serve.Nearest()
}

// Config assembles a simulation.
type Config struct {
	// Site is the requesting ground location.
	Site geo.LatLon
	// CoresPerSat is each satellite-server's parallel capacity: the
	// simulator models CoresPerSat independent cores per satellite, each
	// serving one request at a time (M/G/k, earliest-free-core dispatch).
	CoresPerSat int
	// Policy selects the attachment strategy.
	Policy Policy
	// DurationSec bounds the simulated window; satellite positions are
	// frozen at the snapshot (windows of tens of seconds — a satellite
	// moves ~7.5 km/s, small against the coverage cone).
	DurationSec float64
	// SnapshotSec is the constellation epoch offset for the window.
	SnapshotSec float64
}

// Result summarises the run.
type Result struct {
	// Completed counts requests finished within the window.
	Completed int
	// ResponseMs aggregates end-to-end response times (up + queue +
	// service + down).
	ResponseMs *stats.CDF
	// PropagationMs aggregates the pure network component.
	PropagationMs *stats.CDF
	// ServersUsed counts distinct satellites that served requests.
	ServersUsed int
	// MaxUtilization is the busiest server's utilisation.
	MaxUtilization float64
}

// Run simulates the workload against the constellation.
func Run(c *constellation.Constellation, cfg Config, w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.CoresPerSat <= 0 {
		return Result{}, fmt.Errorf("edgesim: cores must be positive")
	}
	if cfg.DurationSec <= 0 {
		return Result{}, fmt.Errorf("edgesim: duration must be positive")
	}
	if !cfg.Site.Valid() {
		return Result{}, fmt.Errorf("edgesim: invalid site %v", cfg.Site)
	}

	obs := visibility.NewObserver(c)
	snap := c.Snapshot(cfg.SnapshotSec)
	ground := cfg.Site.ECEF()
	passes := obs.Reachable(ground, snap, nil)
	if len(passes) == 0 {
		return Result{}, fmt.Errorf("edgesim: no satellite in view of %v", cfg.Site)
	}
	sort.Slice(passes, func(i, j int) bool { return passes[i].SlantKm < passes[j].SlantKm })

	sim := netsim.New()
	// Per-satellite core banks: each core is a unit-rate FIFO resource, so
	// one request always costs its full ServiceSec on one core.
	servers := make([][]*netsim.Resource, len(passes))
	for i := range passes {
		servers[i] = make([]*netsim.Resource, cfg.CoresPerSat)
		for k := range servers[i] {
			r, err := netsim.NewResource(sim, fmt.Sprintf("sat-%d-core-%d", passes[i].SatID, k), 1)
			if err != nil {
				return Result{}, err
			}
			servers[i][k] = r
		}
	}
	freeAt := func(i int) (int, float64) {
		bestK, best := 0, math.Inf(1)
		for k, r := range servers[i] {
			if b := r.BusyUntil(); b < best {
				best = b
				bestK = k
			}
		}
		return bestK, best
	}

	res := Result{ResponseMs: stats.NewCDF(), PropagationMs: stats.NewCDF()}
	used := make(map[int]bool)
	rng := rand.New(rand.NewSource(w.Seed))

	var arrive func()
	schedule := func() {
		gap := rng.ExpFloat64() / w.ArrivalPerSec
		if sim.Now()+gap < cfg.DurationSec {
			if _, err := sim.After(gap, arrive); err != nil {
				panic(err) // positive delay by construction
			}
		}
	}
	// Candidates for the shared policy, ordered by ascending propagation
	// (passes are slant-sorted above); only the load fields change per
	// arrival.
	policy := cfg.Policy.shared()
	cands := make([]serve.Candidate, len(passes))
	for i, p := range passes {
		cands[i] = serve.Candidate{SatID: p.SatID, OneWayMs: units.PropagationDelayMs(p.SlantKm)}
	}

	arrive = func() {
		start := sim.Now()
		for i := range cands {
			_, cands[i].FreeAtSec = freeAt(i)
		}
		idx := policy.Pick(start, -1, cands)
		if idx < 0 {
			panic("edgesim: policy refused a non-empty candidate set")
		}
		p := passes[idx]
		used[p.SatID] = true
		oneWay := cands[idx].OneWayMs / 1000 // seconds

		// The request reaches the satellite after the uplink delay, then
		// queues for CPU; the response rides back down.
		if _, err := sim.After(oneWay, func() {
			core, _ := freeAt(idx)
			if _, err := servers[idx][core].Submit(w.ServiceSec, func(finish float64) {
				respSec := finish - start + oneWay // add the downlink
				res.Completed++
				res.ResponseMs.Add(respSec * 1000)
				res.PropagationMs.Add(2 * oneWay * 1000)
			}); err != nil {
				panic(err) // non-negative size by validation
			}
		}); err != nil {
			panic(err)
		}
		schedule()
	}
	if _, err := sim.At(0, func() { schedule() }); err != nil {
		return Result{}, err
	}
	sim.RunAll()

	res.ServersUsed = len(used)
	for _, bank := range servers {
		// Server utilisation = mean over its cores.
		sum := 0.0
		for _, r := range bank {
			sum += r.Utilization()
		}
		if u := sum / float64(len(bank)); u > res.MaxUtilization {
			res.MaxUtilization = u
		}
	}
	return res, nil
}

// LoadSweepRow is one arrival-rate point.
type LoadSweepRow struct {
	ArrivalPerSec  float64
	P50Ms, P99Ms   float64
	ServersUsed    int
	MaxUtilization float64
}

// LoadSweep runs the workload at increasing arrival rates under the policy,
// exposing where queueing erodes the propagation advantage.
func LoadSweep(c *constellation.Constellation, cfg Config, base Workload, rates []float64) ([]LoadSweepRow, error) {
	if len(rates) == 0 {
		rates = []float64{10, 50, 100, 200, 400}
	}
	var out []LoadSweepRow
	for _, rate := range rates {
		w := base
		w.ArrivalPerSec = rate
		r, err := Run(c, cfg, w)
		if err != nil {
			return nil, err
		}
		row := LoadSweepRow{
			ArrivalPerSec:  rate,
			ServersUsed:    r.ServersUsed,
			MaxUtilization: r.MaxUtilization,
		}
		if r.ResponseMs.N() > 0 {
			row.P50Ms = r.ResponseMs.Median()
			row.P99Ms = r.ResponseMs.Quantile(0.99)
		}
		out = append(out, row)
	}
	return out, nil
}
