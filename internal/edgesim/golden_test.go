package edgesim

import (
	"bytes"
	"testing"

	"repro/internal/plot"
)

// The load-sweep outputs below were captured before the routing policies
// were rebased onto the shared internal/serve interface. They pin the
// simulation byte-for-byte: any refactor of the policy plumbing must keep
// every float in the sweep identical per seed.
const (
	goldenNearest = `x,p50_ms,p99_ms,servers,max_util
20,14.4731,14.4731,1,0.0235
200,14.4731,14.4731,1,0.2513
2000,22342.8804,44018.4671,1,0.9999
`
	goldenLeastBusy = `x,p50_ms,p99_ms,servers,max_util
20,14.4731,14.4731,1,0.0235
200,14.4731,14.4731,1,0.2513
2000,16.9630,27.0631,5,0.9530
`
)

func sweepCSV(t *testing.T, p Policy) string {
	t.Helper()
	c := testConst(t)
	cfg := baseCfg()
	cfg.Policy = p
	rates := []float64{20, 200, 2000}
	rows, err := LoadSweep(c, cfg, Workload{ServiceSec: 0.01, Seed: 3}, rates)
	if err != nil {
		t.Fatal(err)
	}
	p50 := make([]float64, len(rows))
	p99 := make([]float64, len(rows))
	servers := make([]float64, len(rows))
	util := make([]float64, len(rows))
	for i, r := range rows {
		p50[i] = r.P50Ms
		p99[i] = r.P99Ms
		servers[i] = float64(r.ServersUsed)
		util[i] = r.MaxUtilization
	}
	var buf bytes.Buffer
	err = plot.WriteCSV(&buf,
		plot.Series{Name: "p50_ms", X: rates, Y: p50},
		plot.Series{Name: "p99_ms", X: rates, Y: p99},
		plot.Series{Name: "servers", X: rates, Y: servers},
		plot.Series{Name: "max_util", X: rates, Y: util},
	)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestLoadSweepGoldenNearest(t *testing.T) {
	if got := sweepCSV(t, Nearest); got != goldenNearest {
		t.Fatalf("nearest sweep drifted from golden:\n got:\n%s\nwant:\n%s", got, goldenNearest)
	}
}

func TestLoadSweepGoldenLeastBusy(t *testing.T) {
	if got := sweepCSV(t, LeastBusy); got != goldenLeastBusy {
		t.Fatalf("least-busy sweep drifted from golden:\n got:\n%s\nwant:\n%s", got, goldenLeastBusy)
	}
}
