package edgesim

import (
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
)

func testConst(t testing.TB) *constellation.Constellation {
	t.Helper()
	c, err := constellation.Build("e", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 15},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func baseCfg() Config {
	return Config{
		Site:        geo.LatLon{LatDeg: 9.06, LonDeg: 7.49},
		CoresPerSat: 8,
		Policy:      Nearest,
		DurationSec: 30,
	}
}

func TestValidation(t *testing.T) {
	c := testConst(t)
	good := Workload{ArrivalPerSec: 10, ServiceSec: 0.01, Seed: 1}
	if _, err := Run(c, baseCfg(), Workload{ArrivalPerSec: 0, ServiceSec: 0.01}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(c, baseCfg(), Workload{ArrivalPerSec: 1, ServiceSec: 0}); err == nil {
		t.Fatal("zero service accepted")
	}
	cfg := baseCfg()
	cfg.CoresPerSat = 0
	if _, err := Run(c, cfg, good); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = baseCfg()
	cfg.DurationSec = 0
	if _, err := Run(c, cfg, good); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = baseCfg()
	cfg.Site = geo.LatLon{LatDeg: 120}
	if _, err := Run(c, cfg, good); err == nil {
		t.Fatal("invalid site accepted")
	}
	cfg = baseCfg()
	cfg.Site = geo.LatLon{LatDeg: 89.5}
	if _, err := Run(c, cfg, good); err == nil {
		t.Fatal("uncovered site accepted")
	}
}

func TestLightLoadResponseNearPropagation(t *testing.T) {
	c := testConst(t)
	w := Workload{ArrivalPerSec: 5, ServiceSec: 0.002, Seed: 42}
	r, err := Run(c, baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed < 50 {
		t.Fatalf("only %d requests completed", r.Completed)
	}
	// At light load, response ≈ propagation + service (no queueing):
	// median within ~3 ms of the propagation median plus 2 ms service.
	wantFloor := r.PropagationMs.Median() + w.ServiceSec*1000
	med := r.ResponseMs.Median()
	if med < wantFloor-0.001 {
		t.Fatalf("median response %v below physical floor %v", med, wantFloor)
	}
	if med > wantFloor+3 {
		t.Fatalf("light-load median %v ms far above floor %v ms", med, wantFloor)
	}
	if r.ServersUsed != 1 {
		t.Fatalf("nearest policy used %d servers", r.ServersUsed)
	}
}

func TestOverloadSaturatesNearest(t *testing.T) {
	c := testConst(t)
	// 8 cores at 10 ms/request sustain 800 req/s; offer 1600.
	w := Workload{ArrivalPerSec: 1600, ServiceSec: 0.01, Seed: 7}
	r, err := Run(c, baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxUtilization < 0.95 {
		t.Fatalf("overloaded server utilization %v", r.MaxUtilization)
	}
	// Queueing dominates: p99 far above the propagation floor.
	if r.ResponseMs.Quantile(0.99) < 10*r.PropagationMs.Median() {
		t.Fatalf("overload p99 %v ms suspiciously low", r.ResponseMs.Quantile(0.99))
	}
}

func TestLeastBusySpreadsLoad(t *testing.T) {
	c := testConst(t)
	w := Workload{ArrivalPerSec: 1600, ServiceSec: 0.01, Seed: 7}
	cfgN := baseCfg()
	cfgL := baseCfg()
	cfgL.Policy = LeastBusy
	rn, err := Run(c, cfgN, w)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(c, cfgL, w)
	if err != nil {
		t.Fatal(err)
	}
	if rl.ServersUsed <= rn.ServersUsed {
		t.Fatalf("least-busy used %d servers vs nearest %d", rl.ServersUsed, rn.ServersUsed)
	}
	// Spreading slashes the tail.
	if rl.ResponseMs.Quantile(0.99) >= rn.ResponseMs.Quantile(0.99)/2 {
		t.Fatalf("least-busy p99 %v not well below nearest %v",
			rl.ResponseMs.Quantile(0.99), rn.ResponseMs.Quantile(0.99))
	}
}

func TestPolicyString(t *testing.T) {
	if Nearest.String() != "nearest" || LeastBusy.String() != "least-busy" {
		t.Fatal("policy names wrong")
	}
}

func TestLoadSweepShape(t *testing.T) {
	c := testConst(t)
	cfg := baseCfg()
	cfg.Policy = LeastBusy
	rows, err := LoadSweep(c, cfg, Workload{ServiceSec: 0.01, Seed: 3}, []float64{20, 200, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Utilization rises with load; p99 non-decreasing (allowing noise).
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxUtilization < rows[i-1].MaxUtilization-0.05 {
			t.Fatalf("utilization fell: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	if rows[2].P99Ms < rows[0].P99Ms {
		t.Fatalf("p99 fell under 100x load: %v -> %v", rows[0].P99Ms, rows[2].P99Ms)
	}
	// Default rates path.
	if _, err := LoadSweep(c, cfg, Workload{ServiceSec: 0.005, Seed: 3}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	c := testConst(t)
	w := Workload{ArrivalPerSec: 100, ServiceSec: 0.01, Seed: 99}
	a, err := Run(c, baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, baseCfg(), w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.ResponseMs.Median() != b.ResponseMs.Median() {
		t.Fatal("simulation not deterministic under a fixed seed")
	}
}
