package netgraph

// Freezing a snapshot turns the time-varying topology into flat CSR arrays
// once, so every subsequent query is tight loops over int32/float64 slices
// instead of closure-driven visibility rescans:
//
//   - ISL edges come from the static +grid with weights evaluated at the
//     snapshot's satellite positions;
//   - ground↔satellite edges are discovered by one visibility scan per
//     ground station — the scan the legacy edgeIter repeated on every node
//     expansion — with each uplink weight computed once and shared bitwise
//     with the matching downlink (Vec3.Distance is exactly symmetric).
//
// Row layout reproduces the legacy edge-iteration order exactly, which pins
// tie-breaking: a satellite's row is its +grid neighbours (grid order)
// followed by visible ground stations ascending; a ground row is its
// visible satellites ascending.

import (
	"time"

	"repro/internal/units"
)

// frozen is the per-snapshot CSR adjacency shared by all queries.
type frozen struct {
	sats  int
	nodes int
	g     csr
}

// frozen returns the snapshot's CSR, building it on first use. Safe for
// concurrent callers; the build runs at most once per snapshot.
func (s *Snapshot) frozen() *frozen {
	s.frzOnce.Do(func() {
		m := s.net.metrics()
		start := time.Now()
		var sp spanEnder
		if tr := tracer(); tr != nil {
			span := tr.Start("netgraph.freeze")
			sp = span
		}
		s.frz = buildFrozen(s)
		if sp != nil {
			sp.End()
		}
		sec := time.Since(start).Seconds()
		m.freezes.Inc()
		m.freezeSec.Observe(sec)
		m.frozenEdges.Set(float64(len(s.frz.g.adj)))
		totalFreezes.Add(1)
		totalFrozenEdges.Add(uint64(len(s.frz.g.adj)))
	})
	return s.frz
}

// spanEnder is the slice of obs.Span the freeze path needs.
type spanEnder interface{ End() float64 }

func buildFrozen(s *Snapshot) *frozen {
	net := s.net
	sats := net.Sats()
	nodes := net.Nodes()
	grounds := net.groundECEF
	obsv := net.Observer
	satPos := s.satPos
	grid := net.Grid

	// One visibility scan per ground station — the edges legacy edgeIter
	// re-derived per expansion. visSat rows are ascending by satellite ID.
	visSat := make([][]int32, len(grounds))
	visW := make([][]float64, len(grounds))
	downDeg := make([]int32, sats)
	groundEdges := 0
	for gi, g := range grounds {
		var ids []int32
		var ws []float64
		for id, pos := range satPos {
			if obsv.Visible(g, id, pos) {
				ids = append(ids, int32(id))
				ws = append(ws, units.PropagationDelayMs(g.Distance(pos)))
				downDeg[id]++
			}
		}
		visSat[gi], visW[gi] = ids, ws
		groundEdges += len(ids)
	}

	f := &frozen{sats: sats, nodes: nodes}
	off := make([]int32, nodes+1)
	for u := 0; u < sats; u++ {
		off[u+1] = off[u] + int32(len(grid.Neighbors(u))) + downDeg[u]
	}
	for gi := range grounds {
		off[sats+gi+1] = off[sats+gi] + int32(len(visSat[gi]))
	}
	edges := int(off[nodes])
	adj := make([]int32, edges)
	w := make([]float64, edges)

	// Satellite rows, part 1: +grid ISLs in Grid.Neighbors order.
	cursor := make([]int32, sats)
	for u := 0; u < sats; u++ {
		k := off[u]
		pu := satPos[u]
		for _, nb := range grid.Neighbors(u) {
			adj[k] = int32(nb)
			w[k] = units.PropagationDelayMs(pu.Distance(satPos[nb]))
			k++
		}
		cursor[u] = k
	}
	// Satellite rows, part 2 (downlinks, ascending ground index) and ground
	// rows (uplinks, ascending satellite ID) in one pass. The downlink
	// weight reuses the uplink value: Distance(a,b) == Distance(b,a) bitwise.
	for gi := range grounds {
		base := off[sats+gi]
		for i, sat := range visSat[gi] {
			uw := visW[gi][i]
			adj[base+int32(i)] = sat
			w[base+int32(i)] = uw
			k := cursor[sat]
			adj[k] = int32(sats + gi)
			w[k] = uw
			cursor[sat] = k + 1
		}
	}

	f.g = csr{off: off, adj: adj, w: w}
	return f
}

// groundRow returns the frozen uplink row of ground station gi: visible
// satellite IDs ascending and their one-way weights.
func (f *frozen) groundRow(gi int) (adj []int32, w []float64) {
	lo, hi := f.g.off[f.sats+gi], f.g.off[f.sats+gi+1]
	return f.g.adj[lo:hi], f.g.w[lo:hi]
}
