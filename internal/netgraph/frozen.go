package netgraph

// Freezing a snapshot turns the time-varying topology into flat CSR arrays
// once, so every subsequent query is tight loops over int32/float64 slices
// instead of closure-driven visibility rescans:
//
//   - ISL edges come from the static +grid with weights evaluated at the
//     snapshot's satellite positions;
//   - ground↔satellite edges are discovered by one visibility scan per
//     ground station — the scan the legacy edgeIter repeated on every node
//     expansion — with each uplink weight computed once and shared bitwise
//     with the matching downlink (Vec3.Distance is exactly symmetric).
//
// Row layout reproduces the legacy edge-iteration order exactly, which pins
// tie-breaking: a satellite's row is its +grid neighbours (grid order)
// followed by visible ground stations ascending; a ground row is its
// visible satellites ascending.
//
// Snapshots chained with Network.AtAfter skip the full visibility scan:
// the predecessor's deltaState (delta.go) advances to this snapshot's time
// and hands assembleCSR the same visSat/visW/downDeg a full scan would
// have produced, bit for bit.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geo"
	"repro/internal/units"
)

// ErrGraphTooLarge is the panic value raised when a frozen snapshot's edge
// count would overflow the int32 CSR offsets (mega-constellation configs).
type ErrGraphTooLarge struct {
	Edges int64
}

func (e *ErrGraphTooLarge) Error() string {
	return fmt.Sprintf("netgraph: frozen graph has %d directed edges; CSR offsets are int32 (max %d)", e.Edges, int32(math.MaxInt32))
}

// frozen is the per-snapshot CSR adjacency shared by all queries.
type frozen struct {
	sats  int
	nodes int
	g     csr
	// satPos/groundPos reference (not copy) the node positions — satellite
	// rows first, ground rows after — for goal-directed query heuristics.
	satPos    []geo.Vec3
	groundPos []geo.Vec3
}

// pos returns the position of a node (satellite or ground).
func (f *frozen) pos(node int32) geo.Vec3 {
	if int(node) < f.sats {
		return f.satPos[node]
	}
	return f.groundPos[int(node)-f.sats]
}

// frozen returns the snapshot's CSR, building it on first use. Safe for
// concurrent callers; the build runs at most once per snapshot.
func (s *Snapshot) frozen() *frozen {
	s.frzOnce.Do(func() {
		m := s.net.metrics()

		// Chained snapshot: freeze the predecessor (so its delta state
		// exists), then steal that state. The steal is atomic — if several
		// snapshots chain off the same predecessor, exactly one advances the
		// calendar; the rest fall back to a fresh full scan.
		var st *deltaState
		if p := s.prev; p != nil {
			s.prev = nil
			p.frozen()
			if st = p.delta.Swap(nil); st != nil && !st.advance(s) {
				st = nil
			}
		}

		mode := "netgraph.freeze"
		if st != nil {
			mode = "netgraph.freeze.delta"
		}
		start := time.Now()
		var sp spanEnder
		if tr := tracer(); tr != nil {
			sp = tr.Start(mode)
		}
		switch {
		case st != nil:
			s.frz = assembleCSR(s, st.visSat, st.visW, st.downDeg)
		case s.chained && s.net.chainable():
			// Chain start: the full scan doubles as calendar seeding.
			if st = newDeltaState(s); st != nil {
				s.frz = assembleCSR(s, st.visSat, st.visW, st.downDeg)
			} else {
				s.frz = buildFrozen(s)
			}
		default:
			s.frz = buildFrozen(s)
		}
		if sp != nil {
			sp.End()
		}
		sec := time.Since(start).Seconds()
		m.freezes.Inc()
		m.freezeSec.Observe(sec)
		m.frozenEdges.Set(float64(len(s.frz.g.adj)))
		totalFreezes.Add(1)
		totalFrozenEdges.Add(uint64(len(s.frz.g.adj)))
		if st != nil {
			if st.advanced { // delta advance (vs chain-start full scan)
				m.deltaFreezes.Inc()
				m.deltaPairs.Add(uint64(st.evals))
				m.deltaSec.Observe(sec)
				totalDeltaFreezes.Add(1)
			}
			// Publish for the next snapshot in the chain.
			s.delta.Store(st)
		}
		s.frozenDone.Store(true)
	})
	return s.frz
}

// spanEnder is the slice of obs.Span the freeze path needs.
type spanEnder interface{ End() float64 }

func buildFrozen(s *Snapshot) *frozen {
	net := s.net
	grounds := net.groundECEF
	obsv := net.Observer
	satPos := s.satPos

	// One visibility scan per ground station — the edges legacy edgeIter
	// re-derived per expansion. visSat rows are ascending by satellite ID.
	visSat := make([][]int32, len(grounds))
	visW := make([][]float64, len(grounds))
	downDeg := make([]int32, net.Sats())
	for gi, g := range grounds {
		var ids []int32
		var ws []float64
		for id, pos := range satPos {
			if obsv.Visible(g, id, pos) {
				ids = append(ids, int32(id))
				ws = append(ws, units.PropagationDelayMs(g.Distance(pos)))
				downDeg[id]++
			}
		}
		visSat[gi], visW[gi] = ids, ws
	}
	return assembleCSR(s, visSat, visW, downDeg)
}

// assembleCSR lays out the frozen CSR from per-ground visibility rows. Both
// freeze paths funnel through it — the full scan (buildFrozen) and the
// delta advance (delta.go) — so the array layout is shared by construction.
func assembleCSR(s *Snapshot, visSat [][]int32, visW [][]float64, downDeg []int32) *frozen {
	net := s.net
	sats := net.Sats()
	nodes := net.Nodes()
	grounds := net.groundECEF
	satPos := s.satPos
	ic := islGraph(net.Grid, sats)

	// Guard the int32 offsets before accumulating into them: directed edge
	// count is grid degree sum plus twice the ground links.
	edges64 := int64(ic.off[sats])
	for gi := range grounds {
		edges64 += 2 * int64(len(visSat[gi]))
	}
	checkEdgeBudget(edges64)

	f := &frozen{sats: sats, nodes: nodes}
	off := make([]int32, nodes+1)
	for u := 0; u < sats; u++ {
		off[u+1] = off[u] + (ic.off[u+1] - ic.off[u]) + downDeg[u]
	}
	for gi := range grounds {
		off[sats+gi+1] = off[sats+gi] + int32(len(visSat[gi]))
	}
	edges := int(off[nodes])
	adj := make([]int32, edges)
	w := make([]float64, edges)

	// Satellite rows, part 1: +grid ISLs in the static CSR's (= legacy
	// Neighbors) order. Each undirected link's delay is computed once at
	// its higher-endpoint row and mirrored into the lower one already
	// written — Vec3.Distance is exactly symmetric, so the shared value is
	// the one both slots would have computed.
	cursor := make([]int32, sats)
	for u := 0; u < sats; u++ {
		k := off[u]
		pu := satPos[u]
		for e := ic.off[u]; e < ic.off[u+1]; e++ {
			nb := ic.adj[e]
			adj[k] = nb
			if r := ic.rev[e]; nb < int32(u) && r >= 0 {
				w[k] = w[off[nb]+(r-ic.off[nb])]
			} else {
				w[k] = units.PropagationDelayMs(pu.Distance(satPos[nb]))
			}
			k++
		}
		cursor[u] = k
	}
	// Satellite rows, part 2 (downlinks, ascending ground index) and ground
	// rows (uplinks, ascending satellite ID) in one pass. The downlink
	// weight reuses the uplink value: Distance(a,b) == Distance(b,a) bitwise.
	for gi := range grounds {
		base := off[sats+gi]
		for i, sat := range visSat[gi] {
			uw := visW[gi][i]
			adj[base+int32(i)] = sat
			w[base+int32(i)] = uw
			k := cursor[sat]
			adj[k] = int32(sats + gi)
			w[k] = uw
			cursor[sat] = k + 1
		}
	}

	f.g = csr{off: off, adj: adj, w: w}
	f.satPos = satPos
	f.groundPos = grounds
	return f
}

// checkEdgeBudget panics with *ErrGraphTooLarge when a directed edge count
// cannot be addressed by the int32 CSR offsets.
func checkEdgeBudget(edges int64) {
	if edges > math.MaxInt32 {
		panic(&ErrGraphTooLarge{Edges: edges})
	}
}

// groundRow returns the frozen uplink row of ground station gi: visible
// satellite IDs ascending and their one-way weights.
func (f *frozen) groundRow(gi int) (adj []int32, w []float64) {
	lo, hi := f.g.off[f.sats+gi], f.g.off[f.sats+gi+1]
	return f.g.adj[lo:hi], f.g.w[lo:hi]
}
