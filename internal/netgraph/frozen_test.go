package netgraph

// Differential tests pinning the frozen-graph engine against the legacy
// implementations in legacy.go: bit-identical latencies (==, no tolerance),
// identical tie-broken paths, identical errors — swept across a full
// orbital period on the Starlink and Kuiper presets.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
)

// diffGrounds stresses the visibility scan's geometric corners: both poles,
// both sides of the dateline, and mid-latitude stations an ocean apart.
var diffGrounds = []geo.LatLon{
	{LatDeg: 89.5, LonDeg: 0},       // north pole (uncovered by 53° shells)
	{LatDeg: -89.5, LonDeg: 45},     // south pole
	{LatDeg: 0, LonDeg: 179.9},      // dateline east
	{LatDeg: 5, LonDeg: -179.9},     // dateline west
	{LatDeg: 40.71, LonDeg: -74.01}, // New York
	{LatDeg: -33.92, LonDeg: 18.42}, // Cape Town
}

// orbitalPeriodSec for a 550 km shell (Kepler); both presets' lowest shells
// sit near this altitude, so sweeping [0, period] covers every phase angle.
const orbitalPeriodSec = 5736.0

func presetNet(t *testing.T, name string) *Network {
	t.Helper()
	var c *constellation.Constellation
	var err error
	switch name {
	case "starlink":
		c, err = constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		c, err = constellation.Kuiper(constellation.Config{})
	default:
		t.Fatalf("unknown preset %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return New(c, diffGrounds)
}

func samePath(a, b Path) bool {
	// Bitwise latency equality and identical node sequences; NaN never
	// occurs (weights are finite sums).
	return a.OneWayMs == b.OneWayMs && reflect.DeepEqual(a.Nodes, b.Nodes)
}

func TestDifferentialFrozenVsLegacy(t *testing.T) {
	for _, preset := range []string{"starlink", "kuiper"} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			t.Parallel()
			n := presetNet(t, preset)
			const steps = 8
			for i := 0; i <= steps; i++ {
				tSec := orbitalPeriodSec * float64(i) / steps
				s := n.At(tSec)

				// Ground-side visibility: frozen CSR row vs linear scan,
				// at poles and dateline included.
				for gi := range diffGrounds {
					if got, want := s.VisibleSats(gi), s.legacyVisibleSats(gi); !reflect.DeepEqual(got, want) {
						t.Fatalf("t=%.0f VisibleSats(%d): frozen %d sats vs legacy %d", tSec, gi, len(got), len(want))
					}
				}

				// Point-to-point paths over every ground pair.
				for gi := range diffGrounds {
					for gj := range diffGrounds {
						src, dst := n.GroundNode(gi), n.GroundNode(gj)
						got, gotErr := s.ShortestPath(src, dst)
						want, wantErr := s.legacyShortestPath(src, dst)
						if !errors.Is(gotErr, wantErr) {
							t.Fatalf("t=%.0f path %d->%d: err %v vs legacy %v", tSec, gi, gj, gotErr, wantErr)
						}
						if gotErr == nil && !samePath(got, want) {
							t.Fatalf("t=%.0f path %d->%d: frozen %.17g %v vs legacy %.17g %v",
								tSec, gi, gj, got.OneWayMs, got.Nodes, want.OneWayMs, want.Nodes)
						}
					}
				}

				// Full SSSP per ground: every satellite distance bitwise.
				for gi := range diffGrounds {
					got := s.LatencyToAllSats(gi)
					want := s.legacyLatencyToAllSats(gi)
					for id := range want {
						if got[id] != want[id] && !(math.IsInf(got[id], 1) && math.IsInf(want[id], 1)) {
							t.Fatalf("t=%.0f sssp g%d sat %d: frozen %.17g vs legacy %.17g",
								tSec, gi, id, got[id], want[id])
						}
					}
				}

				// ISL-grid queries over a spread of satellite pairs.
				sats := n.Sats()
				for _, pair := range [][2]int{{0, sats - 1}, {1, sats / 2}, {sats / 3, 2 * sats / 3}, {7, 7}} {
					got, gotErr := ISLShortest(n.Grid, s.SatPositions(), pair[0], pair[1])
					want, wantErr := legacyISLShortest(n.Grid, s.SatPositions(), pair[0], pair[1])
					if !errors.Is(gotErr, wantErr) {
						t.Fatalf("t=%.0f isl %v: err %v vs legacy %v", tSec, pair, gotErr, wantErr)
					}
					if gotErr == nil && !samePath(got, want) {
						t.Fatalf("t=%.0f isl %v: frozen %.17g %v vs legacy %.17g %v",
							tSec, pair, got.OneWayMs, got.Nodes, want.OneWayMs, want.Nodes)
					}
				}
			}
		})
	}
}

// TestVisibleSatsPolesDateline is the toy-shell fast path of the visibility
// differential: frozen CSR ground rows must reproduce the linear Observer
// scan exactly where the geometry is nastiest.
func TestVisibleSatsPolesDateline(t *testing.T) {
	n := testNet(t, diffGrounds)
	for _, tSec := range []float64{0, 97, 1433, 2868, 4301, 5736} {
		s := n.At(tSec)
		for gi := range diffGrounds {
			got := s.VisibleSats(gi)
			want := s.legacyVisibleSats(gi)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("t=%.0f ground %d: frozen %v vs legacy %v", tSec, gi, got, want)
			}
		}
	}
}

func TestLatencyToAllSatsIsolatedGround(t *testing.T) {
	n := testNet(t, []geo.LatLon{{LatDeg: 89.5, LonDeg: 0}})
	s := n.At(0)
	if len(s.VisibleSats(0)) != 0 {
		t.Skip("pole unexpectedly covered — geometry changed")
	}
	for id, d := range s.LatencyToAllSats(0) {
		if !math.IsInf(d, 1) {
			t.Fatalf("isolated ground reaches sat %d at %v ms", id, d)
		}
	}
}

func TestGroundRTTNoPathErrors(t *testing.T) {
	n := testNet(t, []geo.LatLon{
		{LatDeg: 89.5, LonDeg: 0}, // isolated polar station
		{LatDeg: 0, LonDeg: 0},
	})
	s := n.At(0)
	if len(s.VisibleSats(0)) != 0 {
		t.Skip("pole unexpectedly covered — geometry changed")
	}
	if _, err := s.GroundToGroundRTTMs(0, 1); !errors.Is(err, ErrNoPath) {
		t.Fatalf("GroundToGroundRTTMs err = %v, want ErrNoPath", err)
	}
	if _, err := s.GroundToSatRTTMs(0, 3); !errors.Is(err, ErrNoPath) {
		t.Fatalf("GroundToSatRTTMs err = %v, want ErrNoPath", err)
	}
}

func TestLatencyToAllSatsInto(t *testing.T) {
	n := testNet(t, []geo.LatLon{{LatDeg: 10, LonDeg: 20}, {LatDeg: -5, LonDeg: 140}})
	s := n.At(42)
	want := s.LatencyToAllSats(0)
	buf := make([]float64, 0, n.Sats())
	got := s.LatencyToAllSatsInto(0, buf)
	if &got[0] != &buf[:1][0] {
		t.Fatal("Into did not reuse the provided buffer")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Into result differs from LatencyToAllSats")
	}
	// Undersized buffers grow transparently.
	if got := s.LatencyToAllSatsInto(1, make([]float64, 3)); len(got) != n.Sats() {
		t.Fatalf("grown result len = %d", len(got))
	}
}

func TestAllSourcesLatenciesMatchesSerial(t *testing.T) {
	n := testNet(t, diffGrounds)
	s := n.At(1234)
	gis := make([]int, len(diffGrounds))
	for i := range gis {
		gis[i] = i
	}
	par := s.AllSourcesLatencies(gis)
	if len(par) != len(gis) {
		t.Fatalf("rows = %d", len(par))
	}
	for i, gi := range gis {
		if want := s.LatencyToAllSats(gi); !reflect.DeepEqual(par[i], want) {
			t.Fatalf("row %d differs from serial", i)
		}
	}
	if got := s.AllSourcesLatencies(nil); len(got) != 0 {
		t.Fatalf("empty sources -> %d rows", len(got))
	}
}

func TestAllSourcesNodeLatenciesMatchesShortestPath(t *testing.T) {
	n := testNet(t, diffGrounds)
	s := n.At(987)
	srcs := []NodeID{n.GroundNode(4), n.GroundNode(5), n.SatNode(0)}
	rows := s.AllSourcesNodeLatencies(srcs)
	for i, src := range srcs {
		if len(rows[i]) != n.Nodes() {
			t.Fatalf("row %d len = %d", i, len(rows[i]))
		}
		for _, dst := range []NodeID{n.SatNode(3), n.GroundNode(4), n.GroundNode(0)} {
			p, err := s.ShortestPath(src, dst)
			if err != nil {
				if !math.IsInf(rows[i][dst], 1) {
					t.Fatalf("src %v dst %v: SSSP %v but ShortestPath says no path", src, dst, rows[i][dst])
				}
				continue
			}
			if rows[i][dst] != p.OneWayMs {
				t.Fatalf("src %v dst %v: SSSP %.17g vs path %.17g", src, dst, rows[i][dst], p.OneWayMs)
			}
		}
	}
}

// TestConcurrentQueriesSameSnapshot drives mixed queries from many
// goroutines against one snapshot, exercising the freeze sync.Once and the
// context pool under the race detector.
func TestConcurrentQueriesSameSnapshot(t *testing.T) {
	n := testNet(t, diffGrounds)
	s := n.At(300)
	wantPath, wantErr := s.legacyShortestPath(n.GroundNode(4), n.GroundNode(5))
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		w := w
		go func() {
			for i := 0; i < 20; i++ {
				switch (w + i) % 3 {
				case 0:
					p, err := s.ShortestPath(n.GroundNode(4), n.GroundNode(5))
					if err != nil || !samePath(p, wantPath) {
						done <- errors.New("path diverged under concurrency")
						return
					}
				case 1:
					s.LatencyToAllSats(4)
				default:
					s.VisibleSats(w % len(diffGrounds))
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFreezeEdgeCounts sanity-checks the CSR construction: symmetric edge
// budget (every uplink has a downlink), offsets monotone, rows sorted the
// way the legacy iteration order demands.
func TestFreezeEdgeCounts(t *testing.T) {
	n := testNet(t, diffGrounds)
	s := n.At(60)
	f := s.frozen()
	if f.nodes != n.Nodes() || f.sats != n.Sats() {
		t.Fatalf("frozen dims %d/%d", f.sats, f.nodes)
	}
	islEdges := 0
	for u := 0; u < n.Sats(); u++ {
		islEdges += len(n.Grid.Neighbors(u))
	}
	groundEdges := 0
	for gi := range diffGrounds {
		groundEdges += len(s.VisibleSats(gi))
	}
	if want := islEdges + 2*groundEdges; len(f.g.adj) != want {
		t.Fatalf("edge count %d, want %d (%d isl + 2x%d ground)", len(f.g.adj), want, islEdges, groundEdges)
	}
	for u := 0; u < f.nodes; u++ {
		if f.g.off[u] > f.g.off[u+1] {
			t.Fatalf("offsets not monotone at %d", u)
		}
	}
	// Ground rows ascend by satellite ID.
	for gi := range diffGrounds {
		adj, w := f.groundRow(gi)
		if len(adj) != len(w) {
			t.Fatalf("row %d: adj/w length mismatch", gi)
		}
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("ground row %d not ascending at %d", gi, i)
			}
		}
	}
}
