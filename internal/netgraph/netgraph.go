// Package netgraph models the time-varying LEO network as a weighted graph:
// satellites joined by +grid inter-satellite links, ground stations joined
// to every satellite they can currently see. Edge weights are one-way
// propagation delays in milliseconds, matching the paper's
// propagation-only latency accounting.
//
// Routing runs on a frozen-graph engine: each Snapshot freezes its topology
// into CSR adjacency once (frozen.go), queries share a pooled Dijkstra core
// with an index-addressed 4-ary heap (query.go), and multi-source fan-outs
// parallelise across GOMAXPROCS (parallel.go). The public entry points here
// are thin wrappers that return results bit-identical to the pre-freeze
// implementations kept in legacy.go.
package netgraph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/units"
	"repro/internal/visibility"
)

// NodeID identifies a node: satellite IDs are [0, Sats); ground stations
// follow at [Sats, Sats+Grounds).
type NodeID int

// Network is the static description: constellation + ISL grid + ground
// station sites. Build snapshots with At.
type Network struct {
	Constellation *constellation.Constellation
	Grid          *isl.Grid
	Observer      *visibility.Observer
	Grounds       []geo.LatLon

	groundECEF []geo.Vec3
	eng        *ephem.Engine // optional shared ephemeris
	m          *metricsSet   // optional registry override (UseObs)
}

// UseEphemeris routes snapshot propagation through a shared ephemeris
// engine, so network snapshots reuse frames other consumers already
// propagated. Returns n for chaining.
func (n *Network) UseEphemeris(eng *ephem.Engine) *Network {
	n.eng = eng
	return n
}

// New assembles a network over the constellation with a +grid ISL topology
// and the given ground stations.
func New(c *constellation.Constellation, grounds []geo.LatLon) *Network {
	n := &Network{
		Constellation: c,
		Grid:          isl.NewPlusGrid(c),
		Observer:      visibility.NewObserver(c),
		Grounds:       grounds,
		groundECEF:    make([]geo.Vec3, len(grounds)),
	}
	for i, g := range grounds {
		n.groundECEF[i] = g.ECEF()
	}
	return n
}

// Sats returns the number of satellite nodes.
func (n *Network) Sats() int { return n.Constellation.Size() }

// Nodes returns the total node count.
func (n *Network) Nodes() int { return n.Constellation.Size() + len(n.Grounds) }

// SatNode converts a satellite ID to a NodeID.
func (n *Network) SatNode(satID int) NodeID { return NodeID(satID) }

// GroundNode converts a ground-station index to a NodeID.
func (n *Network) GroundNode(i int) NodeID { return NodeID(n.Sats() + i) }

// IsSat reports whether id is a satellite node.
func (n *Network) IsSat(id NodeID) bool { return int(id) < n.Sats() }

// noCopy triggers go vet's copylocks check when embedded in a struct that
// must not be copied by value.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Snapshot freezes the network at one instant; all routing queries run
// against a snapshot. The first query (or an explicit Freeze) builds the
// CSR adjacency every later query reuses, so a Snapshot must not be copied
// (enforced by the noCopy vet guard).
type Snapshot struct {
	noCopy noCopy //nolint:unused // vet copylocks guard

	net  *Network
	tSec float64
	// satPos[id] is the ECEF position of satellite id.
	satPos []geo.Vec3

	// Delta-freeze chain plumbing (delta.go): prev is the predecessor this
	// snapshot was chained onto with AtAfter, chainDepth bounds the freeze
	// recursion over unfrozen ancestors, and delta carries the calendar
	// state exactly one successor may steal after this snapshot freezes.
	prev       *Snapshot
	chained    bool
	chainDepth int
	frozenDone atomic.Bool
	delta      atomic.Pointer[deltaState]

	frzOnce sync.Once
	frz     *frozen
}

// At builds a snapshot at t seconds after epoch. With an ephemeris engine
// attached the positions are a shared cached frame (treat SatPositions as
// immutable); otherwise they are propagated fresh.
func (n *Network) At(tSec float64) *Snapshot {
	if n.eng != nil {
		return &Snapshot{net: n, tSec: tSec, satPos: n.eng.SnapshotAt(tSec)}
	}
	return &Snapshot{net: n, tSec: tSec, satPos: n.Constellation.Snapshot(tSec)}
}

// AtAfter builds a snapshot at tSec chained onto prev, an earlier snapshot
// of the same network. Chained snapshots freeze incrementally: the
// predecessor's visibility state advances by the elapsed time instead of
// rescanning every (ground, satellite) pair, producing a CSR bit-identical
// to At(tSec).Freeze() at a fraction of the cost. Sweep loops and snapshot
// rings should thread each new snapshot through the previous one:
//
//	snap := net.At(t0)
//	for t := t0 + step; t < end; t += step {
//		snap = net.AtAfter(snap, t)
//		// ... query snap ...
//	}
//
// A nil or foreign prev (different network, or time moving backwards) makes
// AtAfter equivalent to At. Only one successor can continue a given chain;
// extra successors of the same prev silently fall back to a full scan.
func (n *Network) AtAfter(prev *Snapshot, tSec float64) *Snapshot {
	s := n.At(tSec)
	if prev == nil || prev.net != n || tSec < prev.tSec {
		return s
	}
	// Freezing a chained snapshot freezes its unfrozen ancestors first;
	// bound that recursion for pathological build-many-freeze-none callers.
	depth := 1
	if !prev.frozenDone.Load() {
		depth = prev.chainDepth + 1
	}
	if depth > maxChainDepth {
		return s
	}
	s.prev = prev
	s.chained = true
	s.chainDepth = depth
	return s
}

// Time returns the snapshot time in seconds after epoch.
func (s *Snapshot) Time() float64 { return s.tSec }

// SatPositions returns the satellite position slice (shared; do not mutate).
func (s *Snapshot) SatPositions() []geo.Vec3 { return s.satPos }

// Position returns the ECEF position of any node.
func (s *Snapshot) Position(id NodeID) geo.Vec3 {
	if s.net.IsSat(id) {
		return s.satPos[id]
	}
	return s.net.groundECEF[int(id)-s.net.Sats()]
}

// Freeze builds the snapshot's CSR adjacency eagerly (it is otherwise built
// on first query). Useful to move the one-time cost off a latency-sensitive
// path, or before timing queries in isolation.
func (s *Snapshot) Freeze() { s.frozen() }

// VisibleSats returns the satellite IDs currently reachable from ground
// station gi, ascending. Served from the frozen CSR ground row — one
// visibility scan per snapshot instead of one per call.
func (s *Snapshot) VisibleSats(gi int) []int {
	adj, _ := s.frozen().groundRow(gi)
	if len(adj) == 0 {
		return nil
	}
	out := make([]int, len(adj))
	for i, v := range adj {
		out[i] = int(v)
	}
	return out
}

// ErrNoPath is returned when two nodes are not connected at the snapshot.
var ErrNoPath = fmt.Errorf("netgraph: no path")

func errOutOfRange(src, dst NodeID, nodes int) error {
	return fmt.Errorf("netgraph: node out of range (src=%d dst=%d nodes=%d)", src, dst, nodes)
}

func errSatOutOfRange(a, b, sats int) error {
	return fmt.Errorf("netgraph: satellite out of range (a=%d b=%d sats=%d)", a, b, sats)
}

// Path is a routed path with its one-way latency.
type Path struct {
	// Nodes from source to destination inclusive.
	Nodes []NodeID
	// OneWayMs is the summed propagation delay.
	OneWayMs float64
}

// RTTMs returns the round-trip latency of the path.
func (p Path) RTTMs() float64 { return 2 * p.OneWayMs }

// Hops returns the number of edges on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// ShortestPath runs Dijkstra from src to dst over the snapshot's frozen
// graph and returns the minimum-propagation-delay path.
func (s *Snapshot) ShortestPath(src, dst NodeID) (Path, error) {
	nNodes := s.net.Nodes()
	if int(src) < 0 || int(src) >= nNodes || int(dst) < 0 || int(dst) >= nNodes {
		return Path{}, errOutOfRange(src, dst, nNodes)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	m := s.net.metrics()
	start := time.Now()
	f := s.frozen()
	c := getCtx(f.nodes)
	d := math.Inf(1)
	if f.sats >= overlayMinSats {
		// Goal-directed two-phase run with the line-of-sight bound (overlay.go):
		// answers are bit-identical to the plain core below.
		h := &losHeur{f: f, dst: f.pos(int32(dst))}
		if c.goalDirected(f.g, int32(src), int32(dst), h) {
			d = c.distAt(int32(dst))
		}
	} else {
		c.dijkstra(f.g, int32(src), int32(dst))
		d = c.distAt(int32(dst))
	}
	var p Path
	if !math.IsInf(d, 1) {
		p = Path{Nodes: c.pathTo(int32(dst)), OneWayMs: d}
	}
	putCtx(c)
	m.pathQueries.Inc()
	m.pathSec.Observe(time.Since(start).Seconds())
	m.pathQ.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	totalPathQueries.Add(1)
	if math.IsInf(d, 1) {
		return Path{}, ErrNoPath
	}
	return p, nil
}

// SatToSatLatencyMs returns the one-way latency between two satellites over
// the ISL grid (no ground bounce).
func (s *Snapshot) SatToSatLatencyMs(a, b int) (float64, error) {
	p, err := s.ISLPath(a, b)
	if err != nil {
		return 0, err
	}
	return p.OneWayMs, nil
}

// ISLPath returns the shortest ISL-only path between two satellites. Having
// the constellation at hand, it builds (once per grid) the ALT landmark
// overlay that prunes long-haul queries; the standalone ISLShortest then
// picks it up from the cache.
func (s *Snapshot) ISLPath(a, b int) (Path, error) {
	if s.net.Sats() >= overlayMinSats {
		s.net.islOverlay()
	}
	return ISLShortest(s.net.Grid, s.satPos, a, b)
}

// islCSR is the static topology of one +grid, frozen once per Grid: the
// adjacency never changes, only the positions (and so the weights) do, so
// queries run the on-the-fly-weight branch of the shared Dijkstra core.
type islCSR struct {
	off []int32
	adj []int32
	// rev[e] is the index of edge e's reverse (v→u for e=u→v), or -1 when
	// the grid is asymmetric there. Link delays are symmetric, so the CSR
	// assembly computes each undirected weight once and writes both slots.
	rev []int32
}

var islCSRCache sync.Map // *isl.Grid -> islCSR

func islGraph(g *isl.Grid, sats int) islCSR {
	if v, ok := islCSRCache.Load(g); ok {
		if ic := v.(islCSR); len(ic.off) == sats+1 {
			return ic
		}
	}
	off := make([]int32, sats+1)
	for u := 0; u < sats; u++ {
		off[u+1] = off[u] + int32(len(g.Neighbors(u)))
	}
	adj := make([]int32, off[sats])
	k := 0
	for u := 0; u < sats; u++ {
		for _, nb := range g.Neighbors(u) {
			adj[k] = int32(nb)
			k++
		}
	}
	rev := make([]int32, off[sats])
	for u := 0; u < sats; u++ {
		for e := off[u]; e < off[u+1]; e++ {
			rev[e] = -1
			v := adj[e]
			for f := off[v]; f < off[v+1]; f++ {
				if adj[f] == int32(u) {
					rev[e] = f
					break
				}
			}
		}
	}
	v, _ := islCSRCache.LoadOrStore(g, islCSR{off: off, adj: adj, rev: rev})
	return v.(islCSR)
}

// ISLShortest runs Dijkstra over the ISL grid alone, with positions given by
// satPos (indexed by satellite ID). It is the standalone form used by
// packages that manage their own snapshots (meetup, migrate); it shares the
// pooled query core, with the grid's static CSR cached per Grid.
func ISLShortest(g *isl.Grid, satPos []geo.Vec3, a, b int) (Path, error) {
	sats := len(satPos)
	if a < 0 || a >= sats || b < 0 || b >= sats {
		return Path{}, errSatOutOfRange(a, b, sats)
	}
	if a == b {
		return Path{Nodes: []NodeID{NodeID(a)}}, nil
	}
	m := defaultMetrics()
	start := time.Now()
	ic := islGraph(g, sats)
	c := getCtx(sats)
	gg := csr{off: ic.off, adj: ic.adj, pos: satPos}
	d := math.Inf(1)
	if sats >= overlayMinSats {
		h := &islHeur{pos: satPos, dst: satPos[b]}
		if ov := cachedOverlay(g, sats); ov != nil && ov.valid {
			h.lm = ov.lm
			base := b * overlayLandmarks
			for i := range h.lt {
				h.lt[i] = ov.lm[base+i]
			}
		}
		if c.goalDirected(gg, int32(a), int32(b), h) {
			d = c.distAt(int32(b))
		}
	} else {
		c.dijkstra(gg, int32(a), int32(b))
		d = c.distAt(int32(b))
	}
	var p Path
	if !math.IsInf(d, 1) {
		p = Path{Nodes: c.pathTo(int32(b)), OneWayMs: d}
	}
	putCtx(c)
	m.islQueries.Inc()
	m.islSec.Observe(time.Since(start).Seconds())
	m.islQ.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	totalISLQueries.Add(1)
	if math.IsInf(d, 1) {
		return Path{}, ErrNoPath
	}
	return p, nil
}

// LatencyToAllSats returns the one-way latency in milliseconds from ground
// station gi to every satellite (indexed by satellite ID), +Inf where no
// path exists. One Dijkstra pass; used by routed meetup-server selection
// where the server need not be directly visible to every user.
func (s *Snapshot) LatencyToAllSats(gi int) []float64 {
	return s.LatencyToAllSatsInto(gi, nil)
}

// LatencyToAllSatsInto is LatencyToAllSats writing into dst (grown if too
// small), so steady-state callers make zero allocations per query.
func (s *Snapshot) LatencyToAllSatsInto(gi int, dst []float64) []float64 {
	m := s.net.metrics()
	start := time.Now()
	f := s.frozen()
	c := getCtx(f.nodes)
	c.dijkstra(f.g, int32(s.net.GroundNode(gi)), -1)
	if cap(dst) < f.sats {
		dst = make([]float64, f.sats)
	}
	dst = dst[:f.sats]
	for v := range dst {
		dst[v] = c.distAt(int32(v))
	}
	putCtx(c)
	m.ssspQueries.Inc()
	m.ssspSec.Observe(time.Since(start).Seconds())
	m.ssspQ.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	totalSSSPQueries.Add(1)
	return dst
}

// LatencyToAllNodes returns the one-way latency from src to every node
// (satellites then ground stations), +Inf where unreachable. Used by fig3
// to price one user against every data centre in a single pass.
func (s *Snapshot) LatencyToAllNodes(src NodeID) []float64 {
	return s.LatencyToAllNodesInto(src, nil)
}

// LatencyToAllNodesInto is LatencyToAllNodes writing into dst (grown if too
// small), for callers batching many sources over one snapshot.
func (s *Snapshot) LatencyToAllNodesInto(src NodeID, dst []float64) []float64 {
	m := s.net.metrics()
	start := time.Now()
	f := s.frozen()
	c := getCtx(f.nodes)
	c.dijkstra(f.g, int32(src), -1)
	if cap(dst) < f.nodes {
		dst = make([]float64, f.nodes)
	}
	out := dst[:f.nodes]
	for v := range out {
		out[v] = c.distAt(int32(v))
	}
	putCtx(c)
	m.ssspQueries.Inc()
	m.ssspSec.Observe(time.Since(start).Seconds())
	m.ssspQ.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	totalSSSPQueries.Add(1)
	return out
}

// GroundToGroundRTTMs returns the round-trip latency between two ground
// stations routed up-ISL-down over the snapshot.
func (s *Snapshot) GroundToGroundRTTMs(gi, gj int) (float64, error) {
	p, err := s.ShortestPath(s.net.GroundNode(gi), s.net.GroundNode(gj))
	if err != nil {
		return 0, err
	}
	return p.RTTMs(), nil
}

// GroundToSatRTTMs returns the round-trip latency from ground station gi to
// satellite satID, routed over the constellation if the satellite is not in
// direct view.
func (s *Snapshot) GroundToSatRTTMs(gi, satID int) (float64, error) {
	p, err := s.ShortestPath(s.net.GroundNode(gi), s.net.SatNode(satID))
	if err != nil {
		return 0, err
	}
	return p.RTTMs(), nil
}

// LineOfSightMs returns the direct free-space one-way latency between two
// nodes, ignoring topology. Used by the ISL-vs-LoS ablation.
func (s *Snapshot) LineOfSightMs(a, b NodeID) float64 {
	return units.PropagationDelayMs(s.Position(a).Distance(s.Position(b)))
}
