// Package netgraph models the time-varying LEO network as a weighted graph:
// satellites joined by +grid inter-satellite links, ground stations joined
// to every satellite they can currently see. Edge weights are one-way
// propagation delays in milliseconds, matching the paper's
// propagation-only latency accounting.
package netgraph

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/units"
	"repro/internal/visibility"
)

// NodeID identifies a node: satellite IDs are [0, Sats); ground stations
// follow at [Sats, Sats+Grounds).
type NodeID int

// Network is the static description: constellation + ISL grid + ground
// station sites. Build snapshots with At.
type Network struct {
	Constellation *constellation.Constellation
	Grid          *isl.Grid
	Observer      *visibility.Observer
	Grounds       []geo.LatLon

	groundECEF []geo.Vec3
	eng        *ephem.Engine // optional shared ephemeris
}

// UseEphemeris routes snapshot propagation through a shared ephemeris
// engine, so network snapshots reuse frames other consumers already
// propagated. Returns n for chaining.
func (n *Network) UseEphemeris(eng *ephem.Engine) *Network {
	n.eng = eng
	return n
}

// New assembles a network over the constellation with a +grid ISL topology
// and the given ground stations.
func New(c *constellation.Constellation, grounds []geo.LatLon) *Network {
	n := &Network{
		Constellation: c,
		Grid:          isl.NewPlusGrid(c),
		Observer:      visibility.NewObserver(c),
		Grounds:       grounds,
		groundECEF:    make([]geo.Vec3, len(grounds)),
	}
	for i, g := range grounds {
		n.groundECEF[i] = g.ECEF()
	}
	return n
}

// Sats returns the number of satellite nodes.
func (n *Network) Sats() int { return n.Constellation.Size() }

// Nodes returns the total node count.
func (n *Network) Nodes() int { return n.Constellation.Size() + len(n.Grounds) }

// SatNode converts a satellite ID to a NodeID.
func (n *Network) SatNode(satID int) NodeID { return NodeID(satID) }

// GroundNode converts a ground-station index to a NodeID.
func (n *Network) GroundNode(i int) NodeID { return NodeID(n.Sats() + i) }

// IsSat reports whether id is a satellite node.
func (n *Network) IsSat(id NodeID) bool { return int(id) < n.Sats() }

// Snapshot freezes the network at one instant; all routing queries run
// against a snapshot.
type Snapshot struct {
	net  *Network
	tSec float64
	// satPos[id] is the ECEF position of satellite id.
	satPos []geo.Vec3
}

// At builds a snapshot at t seconds after epoch. With an ephemeris engine
// attached the positions are a shared cached frame (treat SatPositions as
// immutable); otherwise they are propagated fresh.
func (n *Network) At(tSec float64) *Snapshot {
	if n.eng != nil {
		return &Snapshot{net: n, tSec: tSec, satPos: n.eng.SnapshotAt(tSec)}
	}
	return &Snapshot{net: n, tSec: tSec, satPos: n.Constellation.Snapshot(tSec)}
}

// Time returns the snapshot time in seconds after epoch.
func (s *Snapshot) Time() float64 { return s.tSec }

// SatPositions returns the satellite position slice (shared; do not mutate).
func (s *Snapshot) SatPositions() []geo.Vec3 { return s.satPos }

// Position returns the ECEF position of any node.
func (s *Snapshot) Position(id NodeID) geo.Vec3 {
	if s.net.IsSat(id) {
		return s.satPos[id]
	}
	return s.net.groundECEF[int(id)-s.net.Sats()]
}

// VisibleSats returns the satellite IDs currently reachable from ground
// station gi.
func (s *Snapshot) VisibleSats(gi int) []int {
	var out []int
	g := s.net.groundECEF[gi]
	for id, pos := range s.satPos {
		if s.net.Observer.Visible(g, id, pos) {
			out = append(out, id)
		}
	}
	return out
}

// edgeIter calls fn(neighbour, oneWayMs) for every edge leaving node id.
func (s *Snapshot) edgeIter(id NodeID, fn func(NodeID, float64)) {
	sats := s.net.Sats()
	if s.net.IsSat(id) {
		sat := int(id)
		for _, nb := range s.net.Grid.Neighbors(sat) {
			fn(NodeID(nb), units.PropagationDelayMs(s.satPos[sat].Distance(s.satPos[nb])))
		}
		// Downlinks to every ground station that can see this satellite.
		for gi, g := range s.net.groundECEF {
			if s.net.Observer.Visible(g, sat, s.satPos[sat]) {
				fn(NodeID(sats+gi), units.PropagationDelayMs(g.Distance(s.satPos[sat])))
			}
		}
		return
	}
	gi := int(id) - sats
	g := s.net.groundECEF[gi]
	for satID, pos := range s.satPos {
		if s.net.Observer.Visible(g, satID, pos) {
			fn(NodeID(satID), units.PropagationDelayMs(g.Distance(pos)))
		}
	}
}

// ErrNoPath is returned when two nodes are not connected at the snapshot.
var ErrNoPath = fmt.Errorf("netgraph: no path")

// Path is a routed path with its one-way latency.
type Path struct {
	// Nodes from source to destination inclusive.
	Nodes []NodeID
	// OneWayMs is the summed propagation delay.
	OneWayMs float64
}

// RTTMs returns the round-trip latency of the path.
func (p Path) RTTMs() float64 { return 2 * p.OneWayMs }

// Hops returns the number of edges on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath runs Dijkstra from src to dst over the snapshot and returns
// the minimum-propagation-delay path.
func (s *Snapshot) ShortestPath(src, dst NodeID) (Path, error) {
	nNodes := s.net.Nodes()
	if int(src) < 0 || int(src) >= nNodes || int(dst) < 0 || int(dst) >= nNodes {
		return Path{}, fmt.Errorf("netgraph: node out of range (src=%d dst=%d nodes=%d)", src, dst, nNodes)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	dist := make([]float64, nNodes)
	prev := make([]NodeID, nNodes)
	done := make([]bool, nNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		s.edgeIter(it.node, func(nb NodeID, w float64) {
			if done[nb] {
				return
			}
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(q, pqItem{node: nb, dist: nd})
			}
		})
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, ErrNoPath
	}
	// Reconstruct.
	var rev []NodeID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, OneWayMs: dist[dst]}, nil
}

// SatToSatLatencyMs returns the one-way latency between two satellites over
// the ISL grid (no ground bounce).
func (s *Snapshot) SatToSatLatencyMs(a, b int) (float64, error) {
	p, err := ISLShortest(s.net.Grid, s.satPos, a, b)
	if err != nil {
		return 0, err
	}
	return p.OneWayMs, nil
}

// ISLPath returns the shortest ISL-only path between two satellites.
func (s *Snapshot) ISLPath(a, b int) (Path, error) {
	return ISLShortest(s.net.Grid, s.satPos, a, b)
}

// ISLShortest runs Dijkstra over the ISL grid alone, with positions given by
// satPos (indexed by satellite ID). It is the standalone form used by
// packages that manage their own snapshots (meetup, migrate).
func ISLShortest(g *isl.Grid, satPos []geo.Vec3, a, b int) (Path, error) {
	sats := len(satPos)
	if a < 0 || a >= sats || b < 0 || b >= sats {
		return Path{}, fmt.Errorf("netgraph: satellite out of range (a=%d b=%d sats=%d)", a, b, sats)
	}
	if a == b {
		return Path{Nodes: []NodeID{NodeID(a)}}, nil
	}
	dist := make([]float64, sats)
	prev := make([]int, sats)
	done := make([]bool, sats)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := &pq{{node: NodeID(a)}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := int(it.node)
		if done[u] {
			continue
		}
		done[u] = true
		if u == b {
			break
		}
		for _, nb := range g.Neighbors(u) {
			if done[nb] {
				continue
			}
			w := units.PropagationDelayMs(satPos[u].Distance(satPos[nb]))
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = u
				heap.Push(q, pqItem{node: NodeID(nb), dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return Path{}, ErrNoPath
	}
	var rev []NodeID
	for at := b; at != -1; at = prev[at] {
		rev = append(rev, NodeID(at))
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, OneWayMs: dist[b]}, nil
}

// LatencyToAllSats returns the one-way latency in milliseconds from ground
// station gi to every satellite (indexed by satellite ID), +Inf where no
// path exists. One Dijkstra pass; used by routed meetup-server selection
// where the server need not be directly visible to every user.
func (s *Snapshot) LatencyToAllSats(gi int) []float64 {
	nNodes := s.net.Nodes()
	dist := make([]float64, nNodes)
	done := make([]bool, nNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	src := s.net.GroundNode(gi)
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		s.edgeIter(it.node, func(nb NodeID, w float64) {
			if done[nb] {
				return
			}
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				heap.Push(q, pqItem{node: nb, dist: nd})
			}
		})
	}
	return dist[:s.net.Sats()]
}

// GroundToGroundRTTMs returns the round-trip latency between two ground
// stations routed up-ISL-down over the snapshot.
func (s *Snapshot) GroundToGroundRTTMs(gi, gj int) (float64, error) {
	p, err := s.ShortestPath(s.net.GroundNode(gi), s.net.GroundNode(gj))
	if err != nil {
		return 0, err
	}
	return p.RTTMs(), nil
}

// GroundToSatRTTMs returns the round-trip latency from ground station gi to
// satellite satID, routed over the constellation if the satellite is not in
// direct view.
func (s *Snapshot) GroundToSatRTTMs(gi, satID int) (float64, error) {
	p, err := s.ShortestPath(s.net.GroundNode(gi), s.net.SatNode(satID))
	if err != nil {
		return 0, err
	}
	return p.RTTMs(), nil
}

// LineOfSightMs returns the direct free-space one-way latency between two
// nodes, ignoring topology. Used by the ISL-vs-LoS ablation.
func (s *Snapshot) LineOfSightMs(a, b NodeID) float64 {
	return units.PropagationDelayMs(s.Position(a).Distance(s.Position(b)))
}
