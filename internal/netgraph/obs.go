package netgraph

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Metric families the frozen-graph engine maintains. Registered lazily on
// obs.Default() unless a Network overrides its registry with UseObs;
// several networks on one registry share families, so counters aggregate —
// TotalStats gives the package-wide view the CLIs print.
type metricsSet struct {
	freezes     *obs.Counter   // netgraph_freeze_total
	freezeSec   *obs.Histogram // netgraph_freeze_seconds
	frozenEdges *obs.Gauge     // netgraph_frozen_edges
	// Delta-freeze families (AtAfter chains): freezes served incrementally,
	// exact pair evaluations those freezes performed (the full-scan
	// equivalent is grounds×sats per freeze), and their wall-clock cost.
	deltaFreezes *obs.Counter   // netgraph_freeze_delta_total
	deltaPairs   *obs.Counter   // netgraph_freeze_delta_pairs_total
	deltaSec     *obs.Histogram // netgraph_freeze_delta_seconds

	pathQueries *obs.Counter   // netgraph_queries_total{kind=path}
	ssspQueries *obs.Counter   // netgraph_queries_total{kind=sssp}
	islQueries  *obs.Counter   // netgraph_queries_total{kind=isl}
	pathSec     *obs.Histogram // netgraph_query_seconds{kind=path}
	ssspSec     *obs.Histogram // netgraph_query_seconds{kind=sssp}
	islSec      *obs.Histogram // netgraph_query_seconds{kind=isl}

	// Streaming quantiles over the same query latencies (ms), feeding the
	// timeline recorder without preset bucket bounds.
	pathQ *obs.Quantile // netgraph_query_ms{kind=path}
	ssspQ *obs.Quantile // netgraph_query_ms{kind=sssp}
	islQ  *obs.Quantile // netgraph_query_ms{kind=isl}
}

// A freeze is one visibility scan per ground station plus the CSR fill —
// tens of µs to a few ms at constellation scale; queries on the frozen
// arrays run µs-scale.
var (
	freezeBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2}
	queryBuckets  = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3}
)

func newMetrics(reg *obs.Registry) *metricsSet {
	queries := reg.CounterVec("netgraph_queries_total",
		"Routing queries served from frozen CSR snapshots, by kind.", "kind")
	querySec := reg.HistogramVec("netgraph_query_seconds",
		"Wall-clock time of one routing query on a frozen snapshot.", queryBuckets, "kind")
	queryQ := reg.QuantileVec("netgraph_query_ms",
		"Streaming quantile of routing-query wall-clock latency in ms, by kind.", "kind")
	return &metricsSet{
		freezes: reg.Counter("netgraph_freeze_total",
			"Snapshot topologies frozen into CSR adjacency."),
		freezeSec: reg.Histogram("netgraph_freeze_seconds",
			"Wall-clock time to freeze one snapshot topology.", freezeBuckets),
		frozenEdges: reg.Gauge("netgraph_frozen_edges",
			"Directed edge count of the most recently frozen snapshot."),
		deltaFreezes: reg.Counter("netgraph_freeze_delta_total",
			"Snapshot freezes served incrementally from a predecessor (AtAfter chains)."),
		deltaPairs: reg.Counter("netgraph_freeze_delta_pairs_total",
			"Exact ground-satellite pair evaluations performed by delta freezes."),
		deltaSec: reg.Histogram("netgraph_freeze_delta_seconds",
			"Wall-clock time of one incremental (delta) snapshot freeze.", freezeBuckets),
		pathQueries: queries.With("path"),
		ssspQueries: queries.With("sssp"),
		islQueries:  queries.With("isl"),
		pathSec:     querySec.With("path"),
		ssspSec:     querySec.With("sssp"),
		islSec:      querySec.With("isl"),
		pathQ:       queryQ.With("path"),
		ssspQ:       queryQ.With("sssp"),
		islQ:        queryQ.With("isl"),
	}
}

// QueryQuantiles returns streaming estimates (ms) of query latency for one
// kind ("path", "sssp", "isl") from the package-default metrics — what the
// CLIs put in runinfo without scraping an HTTP endpoint.
func QueryQuantiles(kind string, ps ...float64) []float64 {
	m := defaultMetrics()
	var q *obs.Quantile
	switch kind {
	case "path":
		q = m.pathQ
	case "sssp":
		q = m.ssspQ
	case "isl":
		q = m.islQ
	default:
		return make([]float64, len(ps))
	}
	return q.Quantiles(ps...)
}

var (
	defaultMetricsOnce sync.Once
	defaultMetricsSet  *metricsSet
)

func defaultMetrics() *metricsSet {
	defaultMetricsOnce.Do(func() { defaultMetricsSet = newMetrics(obs.Default()) })
	return defaultMetricsSet
}

// metrics returns the network's metric set (the package default unless
// UseObs overrode it).
func (n *Network) metrics() *metricsSet {
	if n.m != nil {
		return n.m
	}
	return defaultMetrics()
}

// UseObs routes the network's netgraph_* metrics to reg (nil keeps the
// process default registry). Returns n for chaining.
func (n *Network) UseObs(reg *obs.Registry) *Network {
	if reg != nil {
		n.m = newMetrics(reg)
	}
	return n
}

// pkgTracer, when set, records one span per snapshot freeze. Freeze spans
// flow to whatever tracer the hosting binary installed (cmd/figures -trace).
var pkgTracer atomic.Pointer[obs.Tracer]

// SetTracer installs the tracer freeze spans are recorded on (nil disables).
func SetTracer(tr *obs.Tracer) { pkgTracer.Store(tr) }

func tracer() *obs.Tracer { return pkgTracer.Load() }

// Package-wide activity counters, kept separately from the obs registry so
// CLIs can print a routing summary without scraping metric families.
var (
	totalFreezes      atomic.Uint64
	totalDeltaFreezes atomic.Uint64
	totalFrozenEdges  atomic.Uint64
	totalPathQueries  atomic.Uint64
	totalSSSPQueries  atomic.Uint64
	totalISLQueries   atomic.Uint64
)

// Stats is a point-in-time view of the package-wide frozen-graph activity.
type Stats struct {
	// Freezes counts snapshot topologies frozen into CSR form.
	Freezes uint64
	// DeltaFreezes counts the subset of Freezes served incrementally from a
	// chained predecessor (Network.AtAfter) instead of a full scan.
	DeltaFreezes uint64
	// FrozenEdges sums the directed edge counts across those freezes.
	FrozenEdges uint64
	// PathQueries, SSSPQueries, and ISLQueries count point-to-point,
	// single-source-all-destinations, and ISL-grid-only queries.
	PathQueries, SSSPQueries, ISLQueries uint64
}

// Queries returns the total routing queries of all kinds.
func (s Stats) Queries() uint64 { return s.PathQueries + s.SSSPQueries + s.ISLQueries }

// TotalStats returns the process-wide frozen-graph activity since start.
func TotalStats() Stats {
	return Stats{
		Freezes:      totalFreezes.Load(),
		DeltaFreezes: totalDeltaFreezes.Load(),
		FrozenEdges:  totalFrozenEdges.Load(),
		PathQueries:  totalPathQueries.Load(),
		SSSPQueries:  totalSSSPQueries.Load(),
		ISLQueries:   totalISLQueries.Load(),
	}
}
