package netgraph

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
)

// overlayNet builds a full Starlink phase-1 network (5 shells, 4409 sats) —
// large enough to cross the overlayMinSats gate — with a handful of ground
// stations for the frozen-graph queries.
func overlayNet(t *testing.T) *Network {
	t.Helper()
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, []geo.LatLon{
		{LatDeg: 47.6, LonDeg: -122.3},
		{LatDeg: 51.5, LonDeg: -0.1},
		{LatDeg: -33.9, LonDeg: 151.2},
		{LatDeg: 1.3, LonDeg: 103.8},
	})
}

// rawISL is the un-pruned reference: the plain legacy-order Dijkstra over
// the ISL grid, bypassing the overlay entirely.
func rawISL(g csr, a, b int) (Path, bool) {
	c := getCtx(len(g.off) - 1)
	defer putCtx(c)
	c.next()
	c.dijkstra(g, int32(a), int32(b))
	d := c.distAt(int32(b))
	if math.IsInf(d, 1) {
		return Path{}, false
	}
	return Path{Nodes: c.pathTo(int32(b)), OneWayMs: d}, true
}

func pathsEqual(t *testing.T, tag string, got, want Path) {
	t.Helper()
	if got.OneWayMs != want.OneWayMs { // bitwise: same adds in same order
		t.Fatalf("%s: OneWayMs %v != reference %v", tag, got.OneWayMs, want.OneWayMs)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: path length %d != reference %d", tag, len(got.Nodes), len(want.Nodes))
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("%s: node[%d] = %d != reference %d", tag, i, got.Nodes[i], want.Nodes[i])
		}
	}
}

// TestOverlayBuilds asserts the closed-form edge bounds survive sampled
// verification on the real multi-shell preset (J2 and Earth rotation are
// common rotations per shell, so the bounds must hold).
func TestOverlayBuilds(t *testing.T) {
	n := overlayNet(t)
	ov := n.islOverlay()
	if ov.sats != n.Sats() {
		t.Fatalf("overlay sats = %d, want %d", ov.sats, n.Sats())
	}
	if !ov.valid {
		t.Fatal("overlay failed verification on StarlinkPhase1")
	}
	if len(ov.lm) != n.Sats()*overlayLandmarks {
		t.Fatalf("landmark table size %d", len(ov.lm))
	}
	// Landmark tables must be admissible against real snapshot distances:
	// spot-check π(v) ≤ d(v, dst) for a far pair via the reference Dijkstra.
	snap := n.At(137)
	ic := islGraph(n.Grid, n.Sats())
	g := csr{off: ic.off, adj: ic.adj, pos: snap.satPos}
	a, b := 3, n.Sats()/3
	want, ok := rawISL(g, a, b)
	if !ok {
		t.Skip("reference pair unreachable")
	}
	h := &islHeur{pos: snap.satPos, dst: snap.satPos[b], lm: ov.lm}
	base := b * overlayLandmarks
	for i := range h.lt {
		h.lt[i] = ov.lm[base+i]
	}
	if pi := h.eval(int32(a)); pi > want.OneWayMs {
		t.Fatalf("heuristic %v exceeds true distance %v", pi, want.OneWayMs)
	}
}

// TestOverlayISLEquality sweeps satellite pairs (same-shell, cross-shell,
// near, antipodal) and asserts the overlay-pruned ISLPath returns exactly —
// bitwise latency, node for node — what the plain core returns.
func TestOverlayISLEquality(t *testing.T) {
	n := overlayNet(t)
	sats := n.Sats()
	csts := n.Constellation.Satellites
	for _, tSec := range []float64{0, 911, 3604} {
		snap := n.At(tSec)
		ic := islGraph(n.Grid, sats)
		g := csr{off: ic.off, adj: ic.adj, pos: snap.satPos}
		checked, skipped := 0, 0
		for a := 0; a < sats; a += 487 {
			for b := sats - 1; b > a; b -= 613 {
				want, ok := rawISL(g, a, b)
				got, err := snap.ISLPath(a, b)
				if !ok {
					if !errors.Is(err, ErrNoPath) {
						t.Fatalf("(%d,%d) t=%v: want ErrNoPath, got %v", a, b, tSec, err)
					}
					skipped++
					continue
				}
				if err != nil {
					t.Fatalf("(%d,%d) t=%v: %v", a, b, tSec, err)
				}
				pathsEqual(t, "isl", got, want)
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("t=%v: no reachable pairs checked", tSec)
		}
		// Multi-shell grids have no inter-shell ISLs, so at least one sampled
		// pair must have exercised the unreachable branch.
		cross := false
		for a := 0; a < sats && !cross; a += 487 {
			for b := sats - 1; b > a; b -= 613 {
				if csts[a].ShellIndex != csts[b].ShellIndex {
					cross = true
					break
				}
			}
		}
		if cross && skipped == 0 {
			t.Fatalf("t=%v: cross-shell pairs sampled but none unreachable", tSec)
		}
	}
}

// TestOverlayFrozenEquality does the same for ShortestPath on the mixed
// ground+satellite frozen graph, where only the line-of-sight heuristic is
// admissible.
func TestOverlayFrozenEquality(t *testing.T) {
	n := overlayNet(t)
	snap := n.At(1800)
	f := snap.frozen()
	ref := func(src, dst NodeID) (Path, bool) {
		c := getCtx(f.nodes)
		defer putCtx(c)
		c.next()
		c.dijkstra(f.g, int32(src), int32(dst))
		d := c.distAt(int32(dst))
		if math.IsInf(d, 1) {
			return Path{}, false
		}
		return Path{Nodes: c.pathTo(int32(dst)), OneWayMs: d}, true
	}
	var pairs [][2]NodeID
	for gi := 0; gi < len(n.Grounds); gi++ {
		for gj := gi + 1; gj < len(n.Grounds); gj++ {
			pairs = append(pairs, [2]NodeID{n.GroundNode(gi), n.GroundNode(gj)})
		}
	}
	for s := 11; s < n.Sats(); s += 1021 {
		pairs = append(pairs, [2]NodeID{n.GroundNode(0), n.SatNode(s)})
		pairs = append(pairs, [2]NodeID{n.SatNode(s), n.SatNode((s + n.Sats()/2) % n.Sats())})
	}
	checked := 0
	for _, p := range pairs {
		want, ok := ref(p[0], p[1])
		got, err := snap.ShortestPath(p[0], p[1])
		if !ok {
			if !errors.Is(err, ErrNoPath) {
				t.Fatalf("(%d,%d): want ErrNoPath, got %v", p[0], p[1], err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("(%d,%d): %v", p[0], p[1], err)
		}
		pathsEqual(t, "frozen", got, want)
		checked++
	}
	if checked == 0 {
		t.Fatal("no reachable pairs checked")
	}
}

// TestOverlayGate verifies small graphs bypass the two-phase machinery but
// still answer identically (the toy 576-sat net sits above the gate only if
// overlayMinSats allows; keep the gate honest either way).
func TestOverlayGate(t *testing.T) {
	n := testNet(t, []geo.LatLon{{LatDeg: 10, LonDeg: 10}, {LatDeg: -20, LonDeg: 140}})
	snap := n.At(60)
	got, err := snap.ShortestPath(n.GroundNode(0), n.GroundNode(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.OneWayMs <= 0 || got.Hops() < 2 {
		t.Fatalf("implausible path: %+v", got)
	}
	// RTT sanity against the units helper: ground-ground one-way must exceed
	// the straight-line lower bound between the two stations.
	a := geo.LatLon{LatDeg: 10, LonDeg: 10}.ECEF()
	b := geo.LatLon{LatDeg: -20, LonDeg: 140}.ECEF()
	if lb := units.PropagationDelayMs(a.Distance(b)); got.OneWayMs < lb {
		t.Fatalf("one-way %v below line-of-sight bound %v", got.OneWayMs, lb)
	}
}
