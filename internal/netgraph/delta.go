package netgraph

// Incremental (delta) snapshot freezing. A from-scratch freeze spends
// almost all its time testing every (ground, satellite) pair against the
// elevation mask — ~1M squared-distance evaluations on the Starlink preset
// with a realistic gateway fleet. Between adjacent snapshots of a time
// sweep almost none of those pairs change state, so chained snapshots
// (Network.AtAfter) carry a deltaState that certifies most pairs invisible
// without touching them.
//
// Certificates. Ground stations are fixed in ECEF and every satellite's
// ECEF displacement per step is verified against a speed bound vMaxKmS
// (orbital speed plus Earth-rotation carry, with margin), so three sleep
// bounds hold for a pair last evaluated exactly at time t0:
//
//   - linear: slant range changes at most vMax km/s, so a pair whose range
//     exceeded its mask threshold by gap km cannot cross before gap/vMax.
//     Tight near the horizon, loose for far pairs (a satellite's closing
//     speed toward a point it is not heading at is far below vMax);
//   - angular: the satellite's direction vector rotates at most vMax/r
//     rad/s (r is its verified orbit radius), so the central angle to the
//     ground station shrinks at most that fast and the pair sleeps
//     (θ−θvis)·r/vMax. The angle gap uses a table lower bound of acos, so
//     it stays tight all the way to the antipode;
//   - plane: a satellite rides its orbital plane's great circle (verified
//     every step), and in ECEF that circle only rotates about the pole at
//     |RAAN rate − ω⊕|·sin(inc) — an order of magnitude slower than the
//     satellite itself. A pair whose ground station sits further from the
//     plane's circle than the visibility cone cannot become visible until
//     the circle has drifted across the difference, regardless of where
//     the satellite is along the plane. The plane normal is analytic from
//     the epoch elements (a pure Z-rotation in ECEF), so its motion needs
//     no verification — only each satellite's distance from its plane is
//     checked per step.
//
// All three are sound at the discrete freeze instants: each sleep bound is
// an accumulation of per-step bounds the advance verifies before trusting
// the calendar (triangle inequality over the verified steps), so a
// violated assumption degrades to a full rescan, never a stale visible
// set. Each invisible pair sits in a calendar queue bucketed by its
// earliest possible crossing time; a delta freeze exactly re-evaluates
// only the currently visible pairs (their weights move every step anyway)
// plus the pairs whose wake-up buckets have come due.
//
// Exact re-evaluations replicate Observer.Visible bit for bit (same
// squared-chord compare) and uplink weights reuse the same
// PropagationDelayMs(√d²) arithmetic the full scan uses, so the visible
// set, the CSR row order, and every weight are bit-identical to a
// from-scratch freeze — the property the differential sweep tests pin.
//
// The state is handed from snapshot to snapshot by an atomic steal: only
// one successor of a snapshot can continue its chain; any other chained
// successor falls back to a fresh full scan that re-seeds the calendar.

import (
	"math"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/geo"
	"repro/internal/units"
)

const (
	// deltaBucketSec is the calendar bucket width. Pairs are woken at most
	// one bucket early; narrower buckets mean fewer spurious wake-ups but a
	// longer ring.
	deltaBucketSec = 15.0
	invBucketSec   = 1.0 / deltaBucketSec
	// maxRingSec caps the fine ring's horizon: a small ring keeps the
	// bucket headers cache-resident in the schedule path. Sleeps beyond it
	// spill to the coarse ring below.
	maxRingSec = 7200.0
	// The coarse ring holds the long sleepers — plane-certified pairs whose
	// orbital plane is nowhere near their ground station can sleep for many
	// hours, far past the fine ring. Coarse buckets only cost an early
	// wake-up of up to coarseBucketSec on sleeps that were ≥ the fine
	// horizon anyway.
	coarseBucketSec = 960.0
	invCoarseSec    = 1.0 / coarseBucketSec
	coarseRing      = 64 // 64×960 s ≈ 17 h horizon; longer sleeps clamp
	coarseMask      = coarseRing - 1
	// deltaVMargin inflates the analytic ECEF speed bound. Violations are
	// caught by the per-step displacement check and degrade to a full scan,
	// so the margin only needs to cover ordinary propagation/interpolation
	// wobble, not worst cases.
	deltaVMargin = 1.05
	// radiusTolKm is the allowed wobble of a satellite's orbit radius
	// around its shell's nominal value, verified every step; the angular
	// certificate normalises direction vectors by the nominal radius.
	radiusTolKm = 7.5
	// offPlaneTolKm bounds |p·n̂| — how far a satellite may sit off its
	// orbital plane — verified every step for the plane certificate.
	offPlaneTolKm = 7.5
	// cosSlack deflates the angular certificate's cosine gap to absorb the
	// radius wobble's effect on both the measured cosine and the
	// visibility-threshold angle (|∂/∂r| ≤ radiusTol/r on each, r ≥ R⊕).
	cosSlack = 0.0025
	// offPlaneSlackRad is the angular allowance the plane certificate
	// grants a satellite off its plane: asin(offPlaneTolKm/rLo) rounded up.
	offPlaneSlackRad = 1.3e-3
	// linCutSec gates the linear certificate: it beats the angular one only
	// near the visibility threshold (the slant range there changes faster
	// than r·dθ), so its sqrt is skipped whenever the angular bound already
	// certified at least this long a sleep.
	linCutSec = 240.0
	// maxChainDepth bounds how many unfrozen snapshots may stack up in one
	// chain before AtAfter stops linking them (freezing walks the chain).
	maxChainDepth = 64
	// lutN is the resolution of the shared acos/asin bound tables. At 1024
	// the angle quantisation costs a few km of certified gap — noise next
	// to the certificates' built-in slacks.
	lutN = 1024
)

// Shared inverse-trig bound tables. acosLB[i] = acos(-1 + 2i/lutN) so
// looking up the node at-or-above a cosine lower-bounds the true angle
// (acos is decreasing); asinLB[j] = asin(j/lutN) so the node at-or-below a
// sine magnitude lower-bounds the true angle (asin is increasing).
var (
	lutOnce sync.Once
	acosLB  []float64
	asinLB  []float64
)

func buildLUTs() {
	acosLB = make([]float64, lutN+1)
	asinLB = make([]float64, lutN+1)
	for i := 0; i <= lutN; i++ {
		acosLB[i] = math.Acos(-1 + 2*float64(i)/lutN)
		asinLB[i] = math.Asin(float64(i) / lutN)
	}
}

// acosLBAt returns a lower bound of acos(c) for any c (values outside
// [-1,1] clamp conservatively).
func acosLBAt(c float64) float64 {
	i := int((c+1)*(lutN/2)) + 1 // trunc+1 ≥ ceil: rounding up in c rounds θ down
	if i < 0 {
		i = 0
	} else if i > lutN {
		i = lutN
	}
	return acosLB[i]
}

// asinLBAt returns a lower bound of asin(x) for x ≥ 0.
func asinLBAt(x float64) float64 {
	j := int(x * lutN)
	if j < 0 {
		j = 0
	} else if j > lutN {
		j = lutN
	}
	return asinLB[j]
}

// satT packs everything the drain loop dereferences per satellite — the
// mask threshold (squared and plain) and the shell/plane indices — into one
// cache-line touch.
type satT struct {
	c2, c        float64
	shell, plane int32
}

// bandT is a satellite's squared-radius verification band.
type bandT struct {
	lo, hi float64
}

// gsT packs the per-(ground, shell) certificate terms: the cosine scale
// 1/(|g|·rShell) and the upper bound of the visibility-threshold angle.
type gsT struct {
	invRgr, thVis float64
}

// deltaState is the mutable chain state: the current visible rows, the
// wake-up calendar for invisible pairs, and the previous positions the
// soundness check compares against. Owned by exactly one snapshot at a
// time (atomic steal); mutated only inside the owner's freeze.
type deltaState struct {
	net     *Network
	prevT   float64
	prevPos []geo.Vec3

	// visSat/visW are the per-ground visible rows (ascending satellite ID)
	// as of prevT — exactly what the full scan would have produced. spareS/
	// spareW are last step's rows, recycled as build buffers (swap, no copy).
	visSat [][]int32
	visW   [][]float64
	spareS [][]int32
	spareW [][]float64

	sat []satT // per-sat thresholds and shell/plane indices

	// Pair encoding: pair = gi<<satBits | id (shift/mask beats div/mod in
	// the drain loop).
	satBits uint
	satMask int32

	// Angular-certificate precomputation.
	nShells   int
	gs        []gsT     // per gi*nShells+shell: cosine scale, θvis bound
	rLo       []float64 // per shell: nominal radius − tolerance
	band      []bandT   // per sat: squared-radius verification band
	angMaxSec float64   // longest sleep the angular certificate can emit
	angular   bool      // angular certificates usable for this network

	// Plane-certificate state: each orbital plane's ECEF normal is a pure
	// Z-rotation of its epoch value at the (slow) rate lamRate, recomputed
	// analytically every advance; satellites are verified against their
	// plane every step.
	planeCert   bool
	nPlanes     int
	planeN      []geo.Vec3 // current unit normals (recomputed per advance)
	planeLam0   []float64  // ECEF node azimuth at epoch (rad)
	planeLamRW  []float64  // dΛ/dt = RAAN rate − ω⊕ (rad/s)
	planeSinI   []float64
	planeCosI   []float64
	planeInvRot []float64 // 1/(|dΛ/dt|·sin inc): rad of circle drift -> s
	gHat        []geo.Vec3

	vMaxKmS float64
	invVMax float64 // 1/vMax

	// buckets is a power-of-two ring calendar: absolute bucket index ab
	// holds pairs whose earliest possible mask crossing falls in
	// [ab·deltaBucketSec, (ab+1)·deltaBucketSec). nextAb is the first
	// undrained absolute index; hot holds pairs that could cross before the
	// next bucket boundary and are re-checked every freeze. Sleeps past the
	// fine horizon go to the coarse ring (same scheme, wider buckets).
	buckets  [][]int32
	ringMask int64
	nextAb   int64
	hot      []int32
	coarse   [coarseRing][]int32
	nextCab  int64

	// Per-advance schedule context (hoisted out of the per-pair path).
	curAb  int64
	curCab int64
	tNow   float64

	// scratch reused across steps
	dueScratch []int32
	newPairs   []int32
	downDeg    []int32

	// evals counts exact pair evaluations in the last advance (metrics);
	// advanced distinguishes a state that has served a delta advance from a
	// freshly seeded chain start.
	evals    int
	advanced bool
}

// chainable reports whether delta chaining is worth setting up for the
// network: the shifted pair encoding must index into int32.
func (n *Network) chainable() bool {
	sats, grounds := n.Sats(), len(n.Grounds)
	if sats == 0 || grounds == 0 {
		return false
	}
	satBits := uint(bits.Len(uint(sats - 1)))
	return int64(grounds)<<satBits <= math.MaxInt32
}

// newDeltaState runs the full visibility scan at s, returning both the scan
// products (for CSR assembly) and a seeded calendar. It is the chain-start
// path: one-time certificate cost per invisible pair buys certified skips
// on every later step.
func newDeltaState(s *Snapshot) *deltaState {
	lutOnce.Do(buildLUTs)
	net := s.net
	sats := net.Sats()
	grounds := net.groundECEF
	satPos := s.satPos
	maxChord2 := net.Observer.MaxChord2()
	shells := net.Constellation.Shells

	d := &deltaState{
		net:     net,
		prevT:   s.tSec,
		prevPos: satPos,
		visSat:  make([][]int32, len(grounds)),
		visW:    make([][]float64, len(grounds)),
		spareS:  make([][]int32, len(grounds)),
		spareW:  make([][]float64, len(grounds)),
		sat:     make([]satT, sats),
		satBits: uint(bits.Len(uint(sats - 1))),
		downDeg: make([]int32, sats),
	}
	d.satMask = int32(1)<<d.satBits - 1
	for id, c2 := range maxChord2 {
		d.sat[id].c2, d.sat[id].c = c2, math.Sqrt(c2)
	}

	// ECEF speed bound: circular orbital speed at the lowest shell (the
	// fastest), plus the Earth-rotation carry at the highest radius.
	rMax, vOrb := 0.0, 0.0
	for _, sh := range shells {
		r := units.EarthRadiusKm + sh.AltitudeKm
		if r > rMax {
			rMax = r
		}
		if v := math.Sqrt(units.EarthMuKm3S2 / r); v > vOrb {
			vOrb = v
		}
	}
	gMax := 0.0
	for _, g := range grounds {
		if r := g.Norm(); r > gMax {
			gMax = r
		}
	}
	if rMax == 0 {
		return nil
	}
	d.vMaxKmS = deltaVMargin * (vOrb + units.EarthRotationRadS*rMax)
	d.invVMax = 1 / d.vMaxKmS

	d.initAngular(s)
	d.initPlanes(s)

	// The fine ring covers the linear ((rMax+gMax)/vMax) and angular
	// (π·r/vMax) sleep horizons up to the maxRingSec cache cap; anything
	// longer — plane-certified sleeps mostly — spills into the coarse ring,
	// whose own clamp just means an occasional extra re-certification.
	horizon := (rMax + gMax) * d.invVMax
	if ah := math.Pi * rMax * d.invVMax; ah > horizon {
		horizon = ah
	}
	if horizon > maxRingSec {
		horizon = maxRingSec
	}
	ring := int64(1)
	for ring < int64(horizon*invBucketSec)+4 {
		ring <<= 1
	}
	d.buckets = make([][]int32, ring)
	d.ringMask = ring - 1
	d.nextAb = int64(s.tSec*invBucketSec) + 1
	d.curAb = d.nextAb - 1
	d.nextCab = int64(s.tSec*invCoarseSec) + 1
	d.curCab = d.nextCab - 1
	d.tNow = s.tSec

	for gi, g := range grounds {
		var ids []int32
		var ws []float64
		base := int32(gi) << d.satBits
		for id, pos := range satPos {
			rel := pos.Sub(g)
			d2 := rel.Dot(rel)
			if d2 <= maxChord2[id] {
				ids = append(ids, int32(id))
				ws = append(ws, units.PropagationDelayMs(math.Sqrt(d2)))
				d.downDeg[id]++
			} else {
				d.schedule(base|int32(id), d.certSleep(gi, int32(id), g, pos, d2))
			}
		}
		d.visSat[gi], d.visW[gi] = ids, ws
	}
	return d
}

// initAngular precomputes the per-(ground, shell) cosine terms the angular
// certificate needs, and verifies its assumptions hold for this network:
// one mask threshold per shell and every satellite within the radius band
// of its shell. On any mismatch the angular certificate is disabled (the
// linear one alone is still sound, just shorter).
func (d *deltaState) initAngular(s *Snapshot) {
	net := d.net
	shells := net.Constellation.Shells
	csts := net.Constellation.Satellites
	grounds := net.groundECEF
	d.nShells = len(shells)
	d.rLo = make([]float64, d.nShells)
	d.band = make([]bandT, len(csts))

	shellChord2 := make([]float64, d.nShells)
	for i := range shellChord2 {
		shellChord2[i] = -1
	}
	for id := range csts {
		sh := csts[id].ShellIndex
		d.sat[id].shell = int32(sh)
		if shellChord2[sh] < 0 {
			shellChord2[sh] = d.sat[id].c2
		} else if shellChord2[sh] != d.sat[id].c2 {
			return // mixed masks within a shell: angular cert off
		}
		r := units.EarthRadiusKm + shells[sh].AltitudeKm
		lo, hi := r-radiusTolKm, r+radiusTolKm
		d.band[id] = bandT{lo: lo * lo, hi: hi * hi}
		p := s.satPos[id]
		if rr := p.Dot(p); rr < d.band[id].lo || rr > d.band[id].hi {
			return // off-nominal radius: angular cert off
		}
	}

	d.gs = make([]gsT, len(grounds)*d.nShells)
	d.gHat = make([]geo.Vec3, len(grounds))
	for gi, g := range grounds {
		d.gHat[gi] = g.Unit()
	}
	for sh := range shells {
		r := units.EarthRadiusKm + shells[sh].AltitudeKm
		d.rLo[sh] = r - radiusTolKm
		for gi, g := range grounds {
			rg := g.Norm()
			// cos θvis from the law of cosines at the mask threshold; the
			// slack absorbs radius wobble, and acos of the deflated cosine
			// upper-bounds the true threshold angle.
			cv := (rg*rg + r*r - shellChord2[sh]) / (2 * rg * r)
			d.gs[gi*d.nShells+sh] = gsT{
				invRgr: 1 / (rg * r),
				thVis:  math.Acos(units.Clamp(cv-cosSlack, -1, 1)),
			}
		}
	}
	for _, r := range d.rLo {
		if am := math.Pi * r * d.invVMax; am > d.angMaxSec {
			d.angMaxSec = am
		}
	}
	d.angular = true
}

// initPlanes derives each orbital plane's analytic ECEF normal motion from
// the epoch elements and verifies every satellite currently rides its
// plane. Disabled (plane certificates off, everything else still sound)
// when the angular precomputation failed, elements are unavailable, or any
// satellite is off-plane at the chain start.
func (d *deltaState) initPlanes(s *Snapshot) {
	if !d.angular {
		return
	}
	net := d.net
	shells := net.Constellation.Shells
	csts := net.Constellation.Satellites

	base := make([]int32, len(shells)+1)
	for i, sh := range shells {
		if sh.Planes <= 0 {
			return
		}
		base[i+1] = base[i] + int32(sh.Planes)
	}
	d.nPlanes = int(base[len(shells)])
	d.planeLam0 = make([]float64, d.nPlanes)
	d.planeLamRW = make([]float64, d.nPlanes)
	d.planeSinI = make([]float64, d.nPlanes)
	d.planeCosI = make([]float64, d.nPlanes)
	d.planeInvRot = make([]float64, d.nPlanes)
	seen := make([]bool, d.nPlanes)

	for id := range csts {
		sat := &csts[id]
		if sat.Prop == nil || sat.Plane < 0 || int32(sat.Plane) >= base[sat.ShellIndex+1]-base[sat.ShellIndex] {
			return
		}
		p := base[sat.ShellIndex] + int32(sat.Plane)
		d.sat[id].plane = p
		if !seen[p] {
			seen[p] = true
			e := sat.Prop.Elements()
			inc := units.Deg2Rad(e.InclinationDeg)
			si, ci := math.Sincos(inc)
			d.planeLam0[p] = units.Deg2Rad(e.RAANDeg)
			d.planeLamRW[p] = sat.Prop.RAANRateRadS() - units.EarthRotationRadS
			d.planeSinI[p] = si
			d.planeCosI[p] = ci
			rot := math.Abs(d.planeLamRW[p]) * si
			if rot < 1e-12 {
				rot = 1e-12 // a static circle never drifts closer: sleep caps at the ring
			}
			d.planeInvRot[p] = 1 / rot
		}
	}

	d.planeN = make([]geo.Vec3, d.nPlanes)
	d.rotatePlanes(s.tSec)
	for id := range csts {
		dp := s.satPos[id].Dot(d.planeN[d.sat[id].plane])
		if dp > offPlaneTolKm || dp < -offPlaneTolKm {
			return // model mismatch: plane certificates off
		}
	}
	d.planeCert = true
}

// rotatePlanes recomputes every plane's ECEF unit normal at time t. In the
// epoch-aligned ECEF frame the normal is the inclination tilt spun to node
// azimuth Λ(t) = Λ₀ + (RAAN rate − ω⊕)·t — exact for the circular-orbit
// propagator, and checked against real positions every advance.
func (d *deltaState) rotatePlanes(t float64) {
	for p := range d.planeN {
		sl, cl := math.Sincos(d.planeLam0[p] + d.planeLamRW[p]*t)
		si := d.planeSinI[p]
		d.planeN[p] = geo.Vec3{X: sl * si, Y: -cl * si, Z: d.planeCosI[p]}
	}
}

// certSleep returns how long the (gi, id) pair is certified to stay
// invisible, in seconds: the largest of the linear, angular, and plane
// bounds. d2 is the pair's exact squared range, already known to exceed
// the mask threshold. The drain loop inlines the same logic; this method
// serves the colder call sites (seeding, visible-row leavers).
func (d *deltaState) certSleep(gi int, id int32, g geo.Vec3, pos geo.Vec3, d2 float64) float64 {
	sleep := (math.Sqrt(d2) - d.sat[id].c) * d.invVMax
	if !d.angular {
		return sleep
	}
	m := d.sat[id]
	gsk := d.gs[gi*d.nShells+int(m.shell)]
	if th := acosLBAt(g.Dot(pos)*gsk.invRgr+cosSlack) - gsk.thVis; th > 0 {
		if as := th * d.rLo[m.shell] * d.invVMax; as > sleep {
			sleep = as
		}
	}
	if d.planeCert {
		x := d.gHat[gi].Dot(d.planeN[m.plane])
		if x < 0 {
			x = -x
		}
		if dg := asinLBAt(x) - gsk.thVis - offPlaneSlackRad; dg > 0 {
			if ps := dg * d.planeInvRot[m.plane]; ps > sleep {
				sleep = ps
			}
		}
	}
	return sleep
}

// schedule re-inserts an invisible pair at its earliest possible crossing
// time, sleepSec after the current advance's time. Pairs that could cross
// before the next bucket boundary go to the hot list (re-checked every
// freeze).
func (d *deltaState) schedule(pair int32, sleepSec float64) {
	ab := int64((d.tNow + sleepSec) * invBucketSec)
	if ab <= d.curAb {
		d.hot = append(d.hot, pair)
		return
	}
	if ab-d.curAb <= d.ringMask {
		slot := ab & d.ringMask
		d.buckets[slot] = append(d.buckets[slot], pair)
		return
	}
	// Past the fine horizon: coarse ring (sleep ≥ fine horizon ≫ one coarse
	// bucket, so cab > curCab always).
	cab := int64((d.tNow + sleepSec) * invCoarseSec)
	if max := d.curCab + coarseMask; cab > max {
		cab = max
	}
	d.coarse[cab&coarseMask] = append(d.coarse[cab&coarseMask], pair)
}

// advance moves the state from prevT to s (its successor snapshot) and
// leaves visSat/visW/downDeg describing s exactly. It returns false — state
// unusable, caller must full-scan — when time went backwards or a satellite
// broke the speed, radius, or coplanarity bound the certificates assume.
func (d *deltaState) advance(s *Snapshot) bool {
	net := s.net
	if net != d.net || s.tSec < d.prevT {
		return false
	}
	grounds := net.groundECEF
	satPos := s.satPos
	dt := s.tSec - d.prevT

	// Soundness checks: no satellite may have outrun the speed bound; for
	// the angular certificate every orbit radius must stay in band; for the
	// plane certificate every satellite must still ride its (analytically
	// rotated) plane. All checks happen before any calendar entry is
	// trusted, so a violated assumption degrades to a full scan instead of
	// a stale visible set.
	if d.planeCert {
		d.rotatePlanes(s.tSec)
	}
	maxStep := d.vMaxKmS * dt
	maxStep2 := maxStep*maxStep + 1e-9
	prevPos := d.prevPos
	for id, pos := range satPos {
		rel := pos.Sub(prevPos[id])
		if rel.Dot(rel) > maxStep2 {
			return false
		}
		if d.angular {
			if rr := pos.Dot(pos); rr < d.band[id].lo || rr > d.band[id].hi {
				return false
			}
		}
		if d.planeCert {
			dp := pos.Dot(d.planeN[d.sat[id].plane])
			if dp > offPlaneTolKm || dp < -offPlaneTolKm {
				return false
			}
		}
	}

	t := s.tSec
	d.tNow = t
	d.curAb = int64(t * invBucketSec)

	// Collect the hot list and every due bucket into one scratch slice, then
	// drain it in a single loop with everything the certificates touch held
	// in locals. Due slots are reset before the loop, so re-scheduling into
	// a recycled slot (as a future bucket) cannot alias the iteration.
	due := append(d.dueScratch[:0], d.hot...)
	d.hot = d.hot[:0]
	target := d.curAb
	if target-d.nextAb > d.ringMask { // huge jump: every bucket is due
		target = d.nextAb + d.ringMask
	}
	for ab := d.nextAb; ab <= target; ab++ {
		slot := ab & d.ringMask
		b := d.buckets[slot]
		due = append(due, b...)
		d.buckets[slot] = b[:0]
	}
	d.nextAb = target + 1
	d.curCab = int64(t * invCoarseSec)
	ctarget := d.curCab
	if ctarget-d.nextCab > coarseMask {
		ctarget = d.nextCab + coarseMask
	}
	for cab := d.nextCab; cab <= ctarget; cab++ {
		slot := cab & coarseMask
		b := d.coarse[slot]
		due = append(due, b...)
		d.coarse[slot] = b[:0]
	}
	d.nextCab = ctarget + 1
	d.dueScratch = due

	newPairs := d.newPairs[:0]
	{
		chord := d.sat
		gs := d.gs
		rLo := d.rLo
		gHat := d.gHat
		planeN := d.planeN
		planeInvRot := d.planeInvRot
		buckets := d.buckets
		hot := d.hot
		satBits, satMask := d.satBits, d.satMask
		nShells := d.nShells
		invVMax := d.invVMax
		angMaxSec := d.angMaxSec
		angular, planeCert := d.angular, d.planeCert
		curAb, ringMask := d.curAb, d.ringMask
		capCab := d.curCab + coarseMask
		for _, pair := range due {
			gi := int(pair >> satBits)
			id := pair & satMask
			pos := satPos[id]
			g := grounds[gi]
			rel := pos.Sub(g)
			d2 := rel.Dot(rel)
			ch := chord[id]
			if d2 <= ch.c2 {
				newPairs = append(newPairs, pair)
				continue
			}
			// Certificates cheapest-first, skipping the rest once the sleep
			// is already long: the plane bound is a dot product and a table
			// lookup; the angular bound adds another; the linear bound costs
			// a sqrt but only ever wins near the threshold, so it is skipped
			// unless the angular sleep came out short. A shorter-than-optimal
			// sleep is always sound — the pair just re-certifies early.
			var sleep float64
			if angular {
				gsk := gs[gi*nShells+int(ch.shell)]
				if planeCert {
					x := gHat[gi].Dot(planeN[ch.plane])
					if x < 0 {
						x = -x
					}
					if dg := asinLBAt(x) - gsk.thVis - offPlaneSlackRad; dg > 0 {
						sleep = dg * planeInvRot[ch.plane]
					}
				}
				if sleep < angMaxSec {
					if th := acosLBAt(g.Dot(pos)*gsk.invRgr+cosSlack) - gsk.thVis; th > 0 {
						if as := th * rLo[ch.shell] * invVMax; as > sleep {
							sleep = as
						}
					}
					if sleep < linCutSec {
						if lin := (math.Sqrt(d2) - ch.c) * invVMax; lin > sleep {
							sleep = lin
						}
					}
				}
			} else {
				sleep = (math.Sqrt(d2) - ch.c) * invVMax
			}
			ab := int64((t + sleep) * invBucketSec)
			if ab <= curAb {
				hot = append(hot, pair)
				continue
			}
			if ab-curAb <= ringMask {
				slot := ab & ringMask
				buckets[slot] = append(buckets[slot], pair)
				continue
			}
			cab := int64((t + sleep) * invCoarseSec)
			if cab > capCab {
				cab = capCab
			}
			d.coarse[cab&coarseMask] = append(d.coarse[cab&coarseMask], pair)
		}
		d.hot = hot
	}
	d.evals = len(due)
	d.newPairs = newPairs
	slices.Sort(newPairs) // pair = gi<<satBits | id: ground-major, then sat

	// Per ground: re-evaluate the previously visible row exactly (weights
	// move every step), drop leavers into the calendar, and merge the
	// sorted newcomers to keep rows ascending by satellite ID. Rows are
	// double-buffered: last step's arrays become this step's build buffers.
	clear(d.downDeg)
	downDeg := d.downDeg
	chord := d.sat
	satBits, satMask := d.satBits, d.satMask
	np := 0
	for gi, g := range grounds {
		lo := np
		hiPair := int32(gi+1) << satBits
		for np < len(newPairs) && newPairs[np] < hiPair {
			np++
		}
		newcomers := newPairs[lo:np]
		rowS := d.spareS[gi][:0]
		rowW := d.spareW[gi][:0]
		old := d.visSat[gi]
		oi := 0
		for _, pair := range newcomers {
			nid := pair & satMask
			for oi < len(old) && old[oi] < nid {
				id := old[oi]
				oi++
				pos := satPos[id]
				rel := pos.Sub(g)
				d2 := rel.Dot(rel)
				if d2 <= chord[id].c2 {
					rowS = append(rowS, id)
					rowW = append(rowW, units.PropagationDelayMs(math.Sqrt(d2)))
					downDeg[id]++
				} else {
					d.schedule(int32(gi)<<satBits|id, d.certSleep(gi, id, g, pos, d2))
				}
			}
			pos := satPos[nid]
			rel := pos.Sub(g)
			rowS = append(rowS, nid)
			rowW = append(rowW, units.PropagationDelayMs(math.Sqrt(rel.Dot(rel))))
			downDeg[nid]++
		}
		for oi < len(old) {
			id := old[oi]
			oi++
			pos := satPos[id]
			rel := pos.Sub(g)
			d2 := rel.Dot(rel)
			if d2 <= chord[id].c2 {
				rowS = append(rowS, id)
				rowW = append(rowW, units.PropagationDelayMs(math.Sqrt(d2)))
				downDeg[id]++
			} else {
				d.schedule(int32(gi)<<satBits|id, d.certSleep(gi, id, g, pos, d2))
			}
		}
		d.evals += len(old) + len(newcomers)
		d.spareS[gi], d.visSat[gi] = old, rowS
		d.spareW[gi], d.visW[gi] = d.visW[gi], rowW
	}

	d.prevT = t
	d.prevPos = satPos
	d.advanced = true
	return true
}
