package netgraph

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
)

func testNet(t *testing.T, grounds []geo.LatLon) *Network {
	t.Helper()
	// A denser-than-minimum toy shell with a relaxed mask so mid-latitude
	// ground stations always see at least one satellite (the full presets
	// are exercised by the bench harness; tests stay fast).
	c, err := constellation.Build("t", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 24, SatsPerPlane: 24, PhaseFactor: 5, MinElevationDeg: 10},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, grounds)
}

func TestNodeNumbering(t *testing.T) {
	n := testNet(t, []geo.LatLon{{LatDeg: 0, LonDeg: 0}, {LatDeg: 10, LonDeg: 10}})
	if n.Sats() != 576 {
		t.Fatalf("Sats = %d", n.Sats())
	}
	if n.Nodes() != 578 {
		t.Fatalf("Nodes = %d", n.Nodes())
	}
	if !n.IsSat(n.SatNode(5)) {
		t.Fatal("SatNode should be a satellite")
	}
	if n.IsSat(n.GroundNode(0)) {
		t.Fatal("GroundNode should not be a satellite")
	}
	if n.GroundNode(1) != NodeID(577) {
		t.Fatalf("GroundNode(1) = %d", n.GroundNode(1))
	}
}

func TestPositionLookup(t *testing.T) {
	g := geo.LatLon{LatDeg: 30, LonDeg: 60}
	n := testNet(t, []geo.LatLon{g})
	s := n.At(0)
	if got := s.Position(n.GroundNode(0)); got.Distance(g.ECEF()) > 1e-9 {
		t.Fatal("ground position mismatch")
	}
	if got := s.Position(n.SatNode(7)); got.Distance(s.SatPositions()[7]) > 1e-9 {
		t.Fatal("sat position mismatch")
	}
}

func TestSameNodePath(t *testing.T) {
	n := testNet(t, []geo.LatLon{{LatDeg: 0, LonDeg: 0}})
	s := n.At(0)
	p, err := s.ShortestPath(3, 3)
	if err != nil || p.OneWayMs != 0 || p.Hops() != 0 {
		t.Fatalf("same-node path = %+v, %v", p, err)
	}
}

func TestPathOutOfRange(t *testing.T) {
	n := testNet(t, nil)
	s := n.At(0)
	if _, err := s.ShortestPath(-1, 0); err == nil {
		t.Fatal("want range error")
	}
	if _, err := s.ShortestPath(0, NodeID(n.Nodes())); err == nil {
		t.Fatal("want range error")
	}
}

func TestGroundToGroundViaConstellation(t *testing.T) {
	// Two ground stations an ocean apart: path must go up, across, down.
	grounds := []geo.LatLon{
		{LatDeg: 40.71, LonDeg: -74.01}, // New York
		{LatDeg: 51.51, LonDeg: -0.13},  // London
	}
	n := testNet(t, grounds)
	s := n.At(0)
	p, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(1))
	if err != nil {
		t.Fatal(err)
	}
	// Ends are the ground nodes; middle is all satellites.
	if p.Nodes[0] != n.GroundNode(0) || p.Nodes[len(p.Nodes)-1] != n.GroundNode(1) {
		t.Fatalf("path endpoints wrong: %v", p.Nodes)
	}
	for _, mid := range p.Nodes[1 : len(p.Nodes)-1] {
		if !n.IsSat(mid) {
			t.Fatalf("mid-path ground bounce at %v", mid)
		}
	}
	// Latency must be at least the geodesic propagation and at most a
	// generous detour multiple of it.
	geodesic := units.PropagationDelayMs(geo.GreatCircleKm(grounds[0], grounds[1]))
	if p.OneWayMs < geodesic {
		t.Fatalf("one-way %v ms beats the geodesic %v ms", p.OneWayMs, geodesic)
	}
	if p.OneWayMs > 4*geodesic+10 {
		t.Fatalf("one-way %v ms implausibly high vs geodesic %v ms", p.OneWayMs, geodesic)
	}
	rtt, err := s.GroundToGroundRTTMs(0, 1)
	if err != nil || math.Abs(rtt-p.RTTMs()) > 1e-9 {
		t.Fatalf("GroundToGroundRTTMs = %v, %v", rtt, err)
	}
}

func TestPathLatencyMatchesEdgeSum(t *testing.T) {
	grounds := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: -26.20, LonDeg: 28.05},
	}
	n := testNet(t, grounds)
	s := n.At(600)
	p, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(1))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 1; i < len(p.Nodes); i++ {
		sum += s.LineOfSightMs(p.Nodes[i-1], p.Nodes[i])
	}
	if math.Abs(sum-p.OneWayMs) > 1e-9 {
		t.Fatalf("edge sum %v vs path %v", sum, p.OneWayMs)
	}
}

func TestTriangleOptimality(t *testing.T) {
	// Dijkstra result must not exceed any single-satellite relay latency.
	grounds := []geo.LatLon{
		{LatDeg: 5, LonDeg: 5},
		{LatDeg: 15, LonDeg: 15},
	}
	n := testNet(t, grounds)
	s := n.At(0)
	p, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(1))
	if err != nil {
		t.Fatal(err)
	}
	a := s.Position(n.GroundNode(0))
	b := s.Position(n.GroundNode(1))
	for _, satID := range s.VisibleSats(0) {
		if !n.Observer.Visible(b, satID, s.SatPositions()[satID]) {
			continue
		}
		relay := units.PropagationDelayMs(a.Distance(s.SatPositions()[satID])) +
			units.PropagationDelayMs(b.Distance(s.SatPositions()[satID]))
		if p.OneWayMs > relay+1e-9 {
			t.Fatalf("Dijkstra %v ms worse than single relay %v ms", p.OneWayMs, relay)
		}
	}
}

func TestSatToSatViaISL(t *testing.T) {
	n := testNet(t, nil)
	s := n.At(0)
	// Adjacent in-plane sats: one hop.
	p, err := s.ISLPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 1 {
		t.Fatalf("adjacent sats hops = %d", p.Hops())
	}
	lat, err := s.SatToSatLatencyMs(0, 1)
	if err != nil || math.Abs(lat-p.OneWayMs) > 1e-12 {
		t.Fatalf("SatToSatLatencyMs = %v, %v", lat, err)
	}
	// Same sat: zero.
	if lat, err := s.SatToSatLatencyMs(4, 4); err != nil || lat != 0 {
		t.Fatalf("self latency = %v, %v", lat, err)
	}
	// Distant sats: latency at least line-of-sight/c, multiple hops.
	far, err := s.ISLPath(0, n.Sats()/2)
	if err != nil {
		t.Fatal(err)
	}
	if far.Hops() < 2 {
		t.Fatalf("far hops = %d", far.Hops())
	}
	los := s.LineOfSightMs(0, NodeID(n.Sats()/2))
	if far.OneWayMs < los-1e-9 {
		t.Fatalf("ISL path %v beats line of sight %v", far.OneWayMs, los)
	}
}

func TestSatToSatRange(t *testing.T) {
	n := testNet(t, nil)
	s := n.At(0)
	if _, err := s.SatToSatLatencyMs(-1, 0); err == nil {
		t.Fatal("want range error")
	}
	if _, err := s.SatToSatLatencyMs(0, n.Sats()); err == nil {
		t.Fatal("want range error")
	}
}

func TestNoPathFromIsolatedGround(t *testing.T) {
	// A polar ground station that a 53°-inclined low shell cannot see at
	// all: no uplink edges, so no path to anywhere.
	grounds := []geo.LatLon{
		{LatDeg: 89.5, LonDeg: 0},
		{LatDeg: 0, LonDeg: 0},
	}
	n := testNet(t, grounds)
	s := n.At(0)
	if got := len(s.VisibleSats(0)); got != 0 {
		t.Skipf("pole unexpectedly covered (%d sats) — geometry changed", got)
	}
	_, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(1))
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestVisibleSatsMatchesObserver(t *testing.T) {
	grounds := []geo.LatLon{{LatDeg: 20, LonDeg: 120}}
	n := testNet(t, grounds)
	s := n.At(333)
	vis := s.VisibleSats(0)
	g := grounds[0].ECEF()
	want := 0
	for id, pos := range s.SatPositions() {
		if n.Observer.Visible(g, id, pos) {
			want++
			found := false
			for _, v := range vis {
				if v == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sat %d visible but missing", id)
			}
		}
	}
	if len(vis) != want {
		t.Fatalf("VisibleSats len %d, want %d", len(vis), want)
	}
}

func TestGroundToSatRTT(t *testing.T) {
	grounds := []geo.LatLon{{LatDeg: 0, LonDeg: 0}}
	n := testNet(t, grounds)
	s := n.At(0)
	vis := s.VisibleSats(0)
	if len(vis) == 0 {
		t.Skip("no visible satellite at epoch")
	}
	rtt, err := s.GroundToSatRTTMs(0, vis[0])
	if err != nil {
		t.Fatal(err)
	}
	direct := 2 * s.LineOfSightMs(n.GroundNode(0), n.SatNode(vis[0]))
	if math.Abs(rtt-direct) > 1e-9 {
		t.Fatalf("visible sat should be one hop: rtt %v vs direct %v", rtt, direct)
	}
}

func TestSnapshotTimeEvolves(t *testing.T) {
	n := testNet(t, nil)
	s0 := n.At(0)
	s60 := n.At(60)
	if s0.Time() != 0 || s60.Time() != 60 {
		t.Fatal("Time() wrong")
	}
	moved := s0.SatPositions()[0].Distance(s60.SatPositions()[0])
	// 60 s at ~7.6 km/s ≈ 455 km (minus Earth-rotation correction).
	if moved < 300 || moved > 600 {
		t.Fatalf("satellite moved %v km in 60 s", moved)
	}
}

// TestDijkstraAgainstFloydWarshall validates the shortest-path machinery
// against an O(V³) reference on a small constellation.
func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	c, err := constellation.Build("fw", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 4, SatsPerPlane: 4, PhaseFactor: 1, MinElevationDeg: 10},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	grounds := []geo.LatLon{
		{LatDeg: 0, LonDeg: 0},
		{LatDeg: 30, LonDeg: 90},
		{LatDeg: -20, LonDeg: -60},
	}
	n := New(c, grounds)
	s := n.At(100)

	// Build the dense weight matrix from the same edge relation the
	// snapshot uses.
	V := n.Nodes()
	const inf = math.MaxFloat64 / 4
	dist := make([][]float64, V)
	for i := range dist {
		dist[i] = make([]float64, V)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	for sat := 0; sat < n.Sats(); sat++ {
		for _, nb := range n.Grid.Neighbors(sat) {
			w := s.LineOfSightMs(NodeID(sat), NodeID(nb))
			dist[sat][nb] = w
			dist[nb][sat] = w
		}
	}
	for gi := range grounds {
		g := n.GroundNode(gi)
		for _, sat := range s.VisibleSats(gi) {
			w := s.LineOfSightMs(g, NodeID(sat))
			dist[g][sat] = w
			dist[sat][g] = w
		}
	}
	for k := 0; k < V; k++ {
		for i := 0; i < V; i++ {
			for j := 0; j < V; j++ {
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
				}
			}
		}
	}

	// Compare a spread of pairs.
	for i := 0; i < V; i += 3 {
		for j := 1; j < V; j += 5 {
			p, err := s.ShortestPath(NodeID(i), NodeID(j))
			if err != nil {
				if dist[i][j] < inf/2 {
					t.Fatalf("Dijkstra says no path %d->%d but FW found %v", i, j, dist[i][j])
				}
				continue
			}
			if math.Abs(p.OneWayMs-dist[i][j]) > 1e-6 {
				t.Fatalf("pair %d->%d: Dijkstra %v vs FW %v", i, j, p.OneWayMs, dist[i][j])
			}
		}
	}
}
