package netgraph

// The routing overlay: a landmark (ALT) layer precomputed once per ISL grid
// that turns long-haul point-to-point queries into goal-directed searches
// while keeping their answers bit-identical to the plain legacy-order
// Dijkstra.
//
// The ISL +grid's topology is static; only edge lengths move with the
// snapshot. For two satellites riding circular orbits of the same radius
// and rate, the inter-satellite distance is a closed-form harmonic in time:
// with unit position u_i(t) = c_i·cosθ + s_i·sinθ (θ = nt; c_i, s_i the
// ECI position/velocity directions at epoch),
//
//	u_i·u_j = (cc+ss)/2 + [(cc−ss)/2]·cos2θ + [(cs+sc)/2]·sin2θ
//
// whose maximum is M + B with M = (cc+ss)/2, B = hypot(cc−ss, cs+sc)/2 —
// so r·√(2 − 2(M+B)) lower-bounds the link length at every instant (J2
// precession and Earth rotation apply a common rotation to both endpoints
// of a same-shell link, leaving the dot products invariant). Each per-edge
// bound is verified against sampled propagated positions at build time;
// edges the closed form does not cover (cross-shell, missing propagators)
// fall back to a zero bound, which is always sound.
//
// Over the lower-bound metric the overlay picks a handful of landmarks by
// farthest-point traversal and stores exact lower-bound distances from each
// — the classic ALT tables. At query time the triangle inequality turns
// them into an admissible estimate of the remaining ISL distance,
//
//	π(v) = max_L |d_lb(L, v) − d_lb(L, dst)|  ≤  d_lb(v, dst)  ≤  d(v, dst),
//
// combined with the line-of-sight bound |pos(v) − pos(dst)|/c, which also
// holds for ground nodes and is the sole heuristic on the mixed
// ground+satellite graph (a ground bounce may undercut any ISL-only
// metric, so the ALT tables must not prune there).
//
// Queries use the two-phase scheme from query.go: an A* pass obtains a real
// path's length (an upper bound), then an exact legacy-order Dijkstra
// re-runs with relaxations pruned by bound + π — provably reporting the
// same path and length as the unpruned run (see query.go's package
// comment). The overlay only engages above a node-count threshold; small
// graphs run the plain core, and any build-time verification failure
// disables the ALT tables (line-of-sight pruning still applies).

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/units"
)

const (
	// overlayMinSats gates the two-phase goal-directed path: below this the
	// plain core's whole run is cheaper than a second pass.
	overlayMinSats = 512
	// overlayLandmarks is the ALT table width. Eight farthest-point
	// landmarks cover a +grid torus well; the per-node tables are stored
	// node-major so one query evaluation touches one cache line.
	overlayLandmarks = 8
	// overlayVerifySamples is how many instants across the relative-motion
	// period each closed-form edge bound is checked against before the
	// tables are trusted.
	overlayVerifySamples = 8
	// overlayLbSlack relatively deflates each closed-form bound so ulp-level
	// rounding in the propagated positions cannot tip it above the true
	// distance.
	overlayLbSlack = 1e-9
)

// overlay is the per-grid ALT layer: lower-bound edge weights and
// node-major landmark distance tables. valid=false means verification
// failed — only the line-of-sight heuristic may be used.
type overlay struct {
	sats  int
	valid bool
	lm    []float64 // lm[v*overlayLandmarks+i] = d_lb(L_i, v); +Inf unreachable
}

var overlayCache sync.Map // *isl.Grid -> *overlay

// islOverlay returns the network's ALT overlay, building and verifying it
// on first use and caching it per grid (standalone ISLShortest callers
// share it through the cache).
func (n *Network) islOverlay() *overlay {
	if v, ok := overlayCache.Load(n.Grid); ok {
		if ov := v.(*overlay); ov.sats == n.Sats() {
			return ov
		}
	}
	ov := buildOverlay(n)
	overlayCache.Store(n.Grid, ov)
	return ov
}

// cachedOverlay returns the overlay for g only if some network already
// built one (the standalone ISLShortest path, which has no constellation to
// build from).
func cachedOverlay(g *isl.Grid, sats int) *overlay {
	if v, ok := overlayCache.Load(g); ok {
		if ov := v.(*overlay); ov.sats == sats {
			return ov
		}
	}
	return nil
}

func buildOverlay(n *Network) *overlay {
	sats := n.Sats()
	ov := &overlay{sats: sats}
	if sats < overlayMinSats {
		return ov
	}
	csts := n.Constellation.Satellites
	shells := n.Constellation.Shells
	ic := islGraph(n.Grid, sats)

	// Epoch ECI direction bases. The closed form needs both endpoints on
	// the same shell (same radius, rate, precession); cross-shell or
	// propagator-less edges get a zero bound.
	cb := make([]geo.Vec3, sats)
	sb := make([]geo.Vec3, sats)
	for id := range csts {
		p := csts[id].Prop
		if p == nil {
			return ov
		}
		cb[id] = p.ECIAt(0).Unit()
		sb[id] = p.ECIVelocityAt(0).Unit()
	}

	lb := make([]float64, ic.off[sats])
	for u := 0; u < sats; u++ {
		shu := csts[u].ShellIndex
		r := units.EarthRadiusKm + shells[shu].AltitudeKm
		for e := ic.off[u]; e < ic.off[u+1]; e++ {
			v := ic.adj[e]
			if csts[v].ShellIndex != shu {
				continue // lb stays 0: sound for any geometry
			}
			cc := cb[u].Dot(cb[v])
			ss := sb[u].Dot(sb[v])
			cs := cb[u].Dot(sb[v])
			sc := sb[u].Dot(cb[v])
			maxCos := 0.5*(cc+ss) + 0.5*math.Hypot(cc-ss, cs+sc)
			d2 := r * r * (2 - 2*maxCos)
			if d2 < 0 {
				d2 = 0
			}
			lb[e] = units.PropagationDelayMs(math.Sqrt(d2)) * (1 - overlayLbSlack)
		}
	}

	// Verify every bound against propagated positions sampled across the
	// relative-motion period (the harmonic has period π/n). Any violation
	// means the constellation's motion model diverged from the closed form:
	// the ALT tables are not sound, so they stay disabled.
	period := units.OrbitalPeriodSec(shells[0].AltitudeKm)
	for k := 0; k < overlayVerifySamples; k++ {
		t := float64(k) * period / (2 * overlayVerifySamples)
		pos := n.Constellation.Snapshot(t)
		for u := 0; u < sats; u++ {
			pu := pos[u]
			for e := ic.off[u]; e < ic.off[u+1]; e++ {
				if lb[e] > units.PropagationDelayMs(pu.Distance(pos[ic.adj[e]]))+1e-9 {
					return ov
				}
			}
		}
	}

	// Farthest-point landmarks over the lower-bound metric, with exact
	// lower-bound SSSP tables stored node-major. An unreached argmax means
	// another component (multi-shell grids): the next landmark lands there.
	g := csr{off: ic.off, adj: ic.adj, w: lb}
	ov.lm = make([]float64, sats*overlayLandmarks)
	minD := make([]float64, sats)
	for v := range minD {
		minD[v] = math.Inf(1)
	}
	c := getCtx(sats)
	next := int32(0)
	for i := 0; i < overlayLandmarks; i++ {
		c.next()
		c.dijkstra(g, next, -1)
		for v := 0; v < sats; v++ {
			d := c.distAt(int32(v))
			ov.lm[v*overlayLandmarks+i] = d
			if d < minD[v] {
				minD[v] = d
			}
		}
		next = 0
		best := -1.0
		for v := 0; v < sats; v++ {
			if minD[v] > best || math.IsInf(minD[v], 1) && !math.IsInf(best, 1) {
				best = minD[v]
				next = int32(v)
				if math.IsInf(best, 1) {
					break
				}
			}
		}
	}
	putCtx(c)
	ov.valid = true
	return ov
}

// losHeur lower-bounds the remaining distance by straight-line propagation
// delay to the destination — admissible on any graph whose edge weights are
// propagation delays (triangle inequality), ground nodes included.
type losHeur struct {
	f   *frozen
	dst geo.Vec3
}

func (h *losHeur) eval(v int32) float64 {
	return units.PropagationDelayMs(h.f.pos(v).Distance(h.dst))
}

// islHeur combines the line-of-sight bound with the ALT tables on the pure
// ISL graph. Landmarks with an unreachable endpoint contribute nothing
// (Inf−Inf is meaningless; 0 is always admissible).
type islHeur struct {
	pos []geo.Vec3
	dst geo.Vec3
	lm  []float64
	lt  [overlayLandmarks]float64
}

func (h *islHeur) eval(v int32) float64 {
	pi := units.PropagationDelayMs(h.pos[v].Distance(h.dst))
	if h.lm != nil {
		base := int(v) * overlayLandmarks
		for i := 0; i < overlayLandmarks; i++ {
			lv, lt := h.lm[base+i], h.lt[i]
			if math.IsInf(lv, 1) || math.IsInf(lt, 1) {
				continue
			}
			d := lv - lt
			if d < 0 {
				d = -d
			}
			if d > pi {
				pi = d
			}
		}
	}
	return pi
}

// goalDirected runs the two-phase overlay query on g: an A* pass for a real
// path's length, then the exact pruned Dijkstra. Returns false when dst is
// unreachable (c then holds no useful state). On true, c.dist/c.prev hold
// the legacy-order result for dst.
func (c *queryCtx) goalDirected(g csr, src, dst int32, h heuristic) bool {
	c.beginHeur()
	bound := c.astar(g, src, dst, h)
	if math.IsInf(bound, 1) {
		return false
	}
	c.next()
	c.dijkstraPruned(g, src, dst, h, bound)
	return true
}
