package netgraph

// The pre-freeze routing implementations, kept verbatim as the equivalence
// oracle: the differential tests pin the frozen-graph engine against these
// bit for bit (identical OneWayMs, identical tie-broken paths), and the
// benchmarks report the frozen speedup relative to them. They re-discover
// the graph per query — edgeIter runs an Observer.Visible scan per node
// expansion — which is exactly the cost the frozen CSR removes.

import (
	"container/heap"
	"math"

	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/units"
)

// edgeIter calls fn(neighbour, oneWayMs) for every edge leaving node id,
// enumerated in the order the frozen CSR rows reproduce: a satellite's +grid
// neighbours then ground stations ascending; a ground's satellites ascending.
func (s *Snapshot) edgeIter(id NodeID, fn func(NodeID, float64)) {
	sats := s.net.Sats()
	if s.net.IsSat(id) {
		sat := int(id)
		for _, nb := range s.net.Grid.Neighbors(sat) {
			fn(NodeID(nb), units.PropagationDelayMs(s.satPos[sat].Distance(s.satPos[nb])))
		}
		// Downlinks to every ground station that can see this satellite.
		for gi, g := range s.net.groundECEF {
			if s.net.Observer.Visible(g, sat, s.satPos[sat]) {
				fn(NodeID(sats+gi), units.PropagationDelayMs(g.Distance(s.satPos[sat])))
			}
		}
		return
	}
	gi := int(id) - sats
	g := s.net.groundECEF[gi]
	for satID, pos := range s.satPos {
		if s.net.Observer.Visible(g, satID, pos) {
			fn(NodeID(satID), units.PropagationDelayMs(g.Distance(pos)))
		}
	}
}

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// legacyVisibleSats is the linear Observer scan VisibleSats ran per call.
func (s *Snapshot) legacyVisibleSats(gi int) []int {
	var out []int
	g := s.net.groundECEF[gi]
	for id, pos := range s.satPos {
		if s.net.Observer.Visible(g, id, pos) {
			out = append(out, id)
		}
	}
	return out
}

// legacyShortestPath is the closure-driven Dijkstra ShortestPath wrapped.
func (s *Snapshot) legacyShortestPath(src, dst NodeID) (Path, error) {
	nNodes := s.net.Nodes()
	if int(src) < 0 || int(src) >= nNodes || int(dst) < 0 || int(dst) >= nNodes {
		return Path{}, errOutOfRange(src, dst, nNodes)
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, nil
	}
	dist := make([]float64, nNodes)
	prev := make([]NodeID, nNodes)
	done := make([]bool, nNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == dst {
			break
		}
		s.edgeIter(it.node, func(nb NodeID, w float64) {
			if done[nb] {
				return
			}
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = it.node
				heap.Push(q, pqItem{node: nb, dist: nd})
			}
		})
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, ErrNoPath
	}
	// Reconstruct.
	var rev []NodeID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, OneWayMs: dist[dst]}, nil
}

// legacyLatencyToAllSats is the per-call-allocating SSSP LatencyToAllSats
// wrapped.
func (s *Snapshot) legacyLatencyToAllSats(gi int) []float64 {
	nNodes := s.net.Nodes()
	dist := make([]float64, nNodes)
	done := make([]bool, nNodes)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	src := s.net.GroundNode(gi)
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		s.edgeIter(it.node, func(nb NodeID, w float64) {
			if done[nb] {
				return
			}
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				heap.Push(q, pqItem{node: nb, dist: nd})
			}
		})
	}
	return dist[:s.net.Sats()]
}

// legacyISLShortest is the hand-rolled ISL-grid Dijkstra ISLShortest wrapped.
func legacyISLShortest(g *isl.Grid, satPos []geo.Vec3, a, b int) (Path, error) {
	sats := len(satPos)
	if a < 0 || a >= sats || b < 0 || b >= sats {
		return Path{}, errSatOutOfRange(a, b, sats)
	}
	if a == b {
		return Path{Nodes: []NodeID{NodeID(a)}}, nil
	}
	dist := make([]float64, sats)
	prev := make([]int, sats)
	done := make([]bool, sats)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := &pq{{node: NodeID(a)}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := int(it.node)
		if done[u] {
			continue
		}
		done[u] = true
		if u == b {
			break
		}
		for _, nb := range g.Neighbors(u) {
			if done[nb] {
				continue
			}
			w := units.PropagationDelayMs(satPos[u].Distance(satPos[nb]))
			if nd := it.dist + w; nd < dist[nb] {
				dist[nb] = nd
				prev[nb] = u
				heap.Push(q, pqItem{node: NodeID(nb), dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return Path{}, ErrNoPath
	}
	var rev []NodeID
	for at := b; at != -1; at = prev[at] {
		rev = append(rev, NodeID(at))
	}
	nodes := make([]NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes, OneWayMs: dist[b]}, nil
}
