package netgraph

// The frozen-graph query core: one Dijkstra implementation shared by every
// routing entry point — ShortestPath, LatencyToAllSats, ISLShortest, and
// the parallel multi-source fan-outs — running over flat CSR arrays with a
// pooled, generation-stamped scratch context and an index-addressed 4-ary
// heap with decrease-key. The core is equivalence-pinned against the
// pre-freeze closure-driven Dijkstra (see legacy.go and the differential
// tests): identical latencies bit for bit, identical tie-broken paths.
//
// On top of the plain core sit two goal-directed variants used by the
// overlay (overlay.go) for long-haul point-to-point queries:
//
//   - astar: best-first search keyed by dist+π for an admissible heuristic
//     π, stopping at the first settle of dst. Its result is the length of a
//     real path, so it is an upper bound on the true distance (and equal to
//     it whenever π is consistent, the common case). It runs on a separate
//     lazy-deletion heap whose entries embed their keys, because its keys
//     are not the dist[] values the decrease-key heap orders by.
//   - dijkstraPruned: the exact legacy-order Dijkstra with one extra skip —
//     a relaxation whose candidate distance nd has nd+π(v) > bound cannot
//     lie on any path better than bound. With bound ≥ the true distance and
//     π admissible, every relaxation that determines the unpruned run's
//     reported path survives (each such node u lies on a shortest path, so
//     dist[u]+π(u) ≤ d* ≤ bound), so the pruned run's reported path and
//     length are bit-identical to the unpruned legacy order.

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/units"
)

// csr is adjacency in compressed-sparse-row form. Edge k of node u
// (adj[off[u]:off[u+1]]) has weight w[k] when w is non-nil; otherwise the
// weight is derived on the fly from the node positions pos — the ISL-only
// case, where the topology is static but distances move with the snapshot.
type csr struct {
	off []int32
	adj []int32
	w   []float64
	pos []geo.Vec3
}

// queryCtx is the reusable Dijkstra scratch: dist/prev/heap arrays sized to
// the graph, validity tracked by a generation stamp so starting a new query
// is O(1) instead of an O(n) clear. A node's dist/prev/hpos entries are
// meaningful only when stamp[v] == gen. The pi arrays memoise heuristic
// evaluations for the goal-directed variants under their own generation, so
// a two-phase query (astar then dijkstraPruned against the same
// destination) evaluates π once per node across both phases.
type queryCtx struct {
	dist  []float64
	prev  []int32
	stamp []uint32
	hpos  []int32 // heap index of a queued node; -1 once popped
	heap  []int32 // 4-ary min-heap of node ids keyed by dist
	gen   uint32

	// A* scratch: lazy-deletion heap of (key, node) entries plus the
	// heuristic memo shared with the pruned pass.
	fheap   []hentry
	pi      []float64
	piStamp []uint32
	piGen   uint32
}

// hentry is one pending A* heap entry: a node and the key it was pushed
// with. Entries are never updated in place — an improvement pushes a fresh
// entry and the superseded one is discarded when popped (its key no longer
// matches the node's current dist+π).
type hentry struct {
	d float64
	v int32
}

var ctxPool = sync.Pool{New: func() any { return new(queryCtx) }}

// getCtx fetches a pooled context sized for n nodes and opens a fresh
// generation; pair with putCtx.
func getCtx(n int) *queryCtx {
	c := ctxPool.Get().(*queryCtx)
	if cap(c.dist) < n {
		c.dist = make([]float64, n)
		c.prev = make([]int32, n)
		c.stamp = make([]uint32, n)
		c.hpos = make([]int32, n)
		c.pi = make([]float64, n)
		c.piStamp = make([]uint32, n)
	}
	c.dist = c.dist[:n]
	c.prev = c.prev[:n]
	c.stamp = c.stamp[:n]
	c.hpos = c.hpos[:n]
	c.pi = c.pi[:n]
	c.piStamp = c.piStamp[:n]
	c.next()
	return c
}

// next opens a fresh query generation on an already-sized context — the
// batched fan-outs call it between sources to skip the pool round-trip.
func (c *queryCtx) next() {
	c.heap = c.heap[:0]
	c.gen++
	if c.gen == 0 { // wrapped: stale stamps could alias the new generation
		clear(c.stamp[:cap(c.stamp)])
		c.gen = 1
	}
}

func putCtx(c *queryCtx) { ctxPool.Put(c) }

// less orders heap entries by distance, ties broken on node id so pop order
// is deterministic.
func (c *queryCtx) less(a, b int32) bool {
	da, db := c.dist[a], c.dist[b]
	if da != db {
		return da < db
	}
	return a < b
}

func (c *queryCtx) push(v int32) {
	c.heap = append(c.heap, v)
	c.siftUp(len(c.heap) - 1)
}

func (c *queryCtx) siftUp(i int) {
	h := c.heap
	v := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !c.less(v, h[p]) {
			break
		}
		h[i] = h[p]
		c.hpos[h[p]] = int32(i)
		i = p
	}
	h[i] = v
	c.hpos[v] = int32(i)
}

func (c *queryCtx) siftDown(i int) {
	h := c.heap
	n := len(h)
	v := h[i]
	for {
		lo := i<<2 + 1
		if lo >= n {
			break
		}
		hi := lo + 4
		if hi > n {
			hi = n
		}
		m := lo
		for k := lo + 1; k < hi; k++ {
			if c.less(h[k], h[m]) {
				m = k
			}
		}
		if !c.less(h[m], v) {
			break
		}
		h[i] = h[m]
		c.hpos[h[m]] = int32(i)
		i = m
	}
	h[i] = v
	c.hpos[v] = int32(i)
}

func (c *queryCtx) popMin() int32 {
	h := c.heap
	v := h[0]
	last := len(h) - 1
	tail := h[last]
	c.heap = h[:last]
	if last > 0 {
		c.heap[0] = tail
		c.hpos[tail] = 0
		c.siftDown(0)
	}
	c.hpos[v] = -1
	return v
}

// relax offers the candidate distance nd to v via predecessor u. Strict
// improvement only, matching the legacy relaxation: on an exact tie the
// first-seen predecessor keeps the node.
func (c *queryCtx) relax(u, v int32, nd float64) {
	if c.stamp[v] != c.gen {
		c.stamp[v] = c.gen
		c.dist[v] = nd
		c.prev[v] = u
		c.push(v)
		return
	}
	if nd < c.dist[v] {
		// Non-negative weights mean a settled node can never improve, so a
		// successful decrease always finds v still queued (hpos >= 0).
		c.dist[v] = nd
		c.prev[v] = u
		c.siftUp(int(c.hpos[v]))
	}
}

// dijkstra runs from src until dst is settled (dst >= 0) or the reachable
// graph is exhausted (dst < 0: full single-source shortest paths). Results
// live in c.dist/c.prev for nodes stamped with the current generation.
func (c *queryCtx) dijkstra(g csr, src, dst int32) {
	c.stamp[src] = c.gen
	c.dist[src] = 0
	c.prev[src] = -1
	c.push(src)
	for len(c.heap) > 0 {
		u := c.popMin()
		if u == dst {
			return
		}
		du := c.dist[u]
		lo, hi := g.off[u], g.off[u+1]
		if g.w != nil {
			for k := lo; k < hi; k++ {
				c.relax(u, g.adj[k], du+g.w[k])
			}
		} else {
			pu := g.pos[u]
			for k := lo; k < hi; k++ {
				v := g.adj[k]
				c.relax(u, v, du+units.PropagationDelayMs(pu.Distance(g.pos[v])))
			}
		}
	}
}

// heuristic is a lower bound on the remaining distance to a fixed query
// destination; evaluations are memoised per node in the context's pi cache.
type heuristic interface {
	eval(v int32) float64
}

// beginHeur opens a fresh heuristic-memo generation (one per two-phase
// query: astar and the following dijkstraPruned share the cache).
func (c *queryCtx) beginHeur() {
	c.piGen++
	if c.piGen == 0 {
		clear(c.piStamp[:cap(c.piStamp)])
		c.piGen = 1
	}
}

func (c *queryCtx) hval(v int32, h heuristic) float64 {
	if c.piStamp[v] != c.piGen {
		c.pi[v] = h.eval(v)
		c.piStamp[v] = c.piGen
	}
	return c.pi[v]
}

func (a hentry) fless(b hentry) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.v < b.v
}

func (c *queryCtx) pushF(e hentry) {
	h := append(c.fheap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.fless(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	c.fheap = h
}

func (c *queryCtx) popF() hentry {
	h := c.fheap
	e := h[0]
	last := len(h) - 1
	tail := h[last]
	h = h[:last]
	i := 0
	for last > 0 {
		lo := i<<2 + 1
		if lo >= last {
			break
		}
		hi := lo + 4
		if hi > last {
			hi = last
		}
		m := lo
		for k := lo + 1; k < hi; k++ {
			if h[k].fless(h[m]) {
				m = k
			}
		}
		if !h[m].fless(tail) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if last > 0 {
		h[i] = tail
	}
	c.fheap = h
	return e
}

// astar runs best-first search from src keyed by dist+π and returns the
// distance label of dst at its first settle, or +Inf when dst is
// unreachable. With π admissible the label is the length of a real path —
// an upper bound on the true distance, exact when π is also consistent.
// Improvements re-push (lazy deletion), so a slightly inconsistent π (e.g.
// floating-point rounding at the ulp level) still terminates and still
// returns a genuine path length. dist/prev are left populated for the
// explored region but callers must not treat them as settled shortest
// paths; the exact answer comes from the dijkstraPruned pass that follows.
func (c *queryCtx) astar(g csr, src, dst int32, h heuristic) float64 {
	c.fheap = c.fheap[:0]
	c.stamp[src] = c.gen
	c.dist[src] = 0
	c.prev[src] = -1
	c.pushF(hentry{c.hval(src, h), src})
	for len(c.fheap) > 0 {
		e := c.popF()
		u := e.v
		if e.d != c.dist[u]+c.hval(u, h) {
			continue // stale: superseded by a later, better push
		}
		if u == dst {
			return c.dist[u]
		}
		du := c.dist[u]
		lo, hi := g.off[u], g.off[u+1]
		if g.w != nil {
			for k := lo; k < hi; k++ {
				c.relaxAstar(u, g.adj[k], du+g.w[k], h)
			}
		} else {
			pu := g.pos[u]
			for k := lo; k < hi; k++ {
				v := g.adj[k]
				c.relaxAstar(u, v, du+units.PropagationDelayMs(pu.Distance(g.pos[v])), h)
			}
		}
	}
	return math.Inf(1)
}

func (c *queryCtx) relaxAstar(u, v int32, nd float64, h heuristic) {
	if c.stamp[v] != c.gen {
		c.stamp[v] = c.gen
		c.dist[v] = nd
		c.prev[v] = u
		c.pushF(hentry{nd + c.hval(v, h), v})
		return
	}
	if nd < c.dist[v] {
		c.dist[v] = nd
		c.prev[v] = u
		c.pushF(hentry{nd + c.hval(v, h), v})
	}
}

// dijkstraPruned is dijkstra with goal-directed pruning: a relaxation is
// skipped when its candidate distance plus the heuristic's lower bound on
// the remaining leg already exceeds bound. See the package comment above
// for why the reported path stays bit-identical.
func (c *queryCtx) dijkstraPruned(g csr, src, dst int32, h heuristic, bound float64) {
	c.stamp[src] = c.gen
	c.dist[src] = 0
	c.prev[src] = -1
	c.push(src)
	for len(c.heap) > 0 {
		u := c.popMin()
		if u == dst {
			return
		}
		du := c.dist[u]
		lo, hi := g.off[u], g.off[u+1]
		if g.w != nil {
			for k := lo; k < hi; k++ {
				v := g.adj[k]
				nd := du + g.w[k]
				if nd+c.hval(v, h) > bound {
					continue
				}
				c.relax(u, v, nd)
			}
		} else {
			pu := g.pos[u]
			for k := lo; k < hi; k++ {
				v := g.adj[k]
				nd := du + units.PropagationDelayMs(pu.Distance(g.pos[v]))
				if nd+c.hval(v, h) > bound {
					continue
				}
				c.relax(u, v, nd)
			}
		}
	}
}

// distAt returns the computed distance of v, +Inf when unreached.
func (c *queryCtx) distAt(v int32) float64 {
	if c.stamp[v] != c.gen {
		return math.Inf(1)
	}
	return c.dist[v]
}

// pathTo rebuilds the src→dst node sequence from the prev chain; call only
// after dijkstra settled dst.
func (c *queryCtx) pathTo(dst int32) []NodeID {
	n := 0
	for at := dst; at != -1; at = c.prev[at] {
		n++
	}
	nodes := make([]NodeID, n)
	for at := dst; at != -1; at = c.prev[at] {
		n--
		nodes[n] = NodeID(at)
	}
	return nodes
}
