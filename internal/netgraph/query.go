package netgraph

// The frozen-graph query core: one Dijkstra implementation shared by every
// routing entry point — ShortestPath, LatencyToAllSats, ISLShortest, and
// the parallel multi-source fan-outs — running over flat CSR arrays with a
// pooled, generation-stamped scratch context and an index-addressed 4-ary
// heap with decrease-key. The core is equivalence-pinned against the
// pre-freeze closure-driven Dijkstra (see legacy.go and the differential
// tests): identical latencies bit for bit, identical tie-broken paths.

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/units"
)

// csr is adjacency in compressed-sparse-row form. Edge k of node u
// (adj[off[u]:off[u+1]]) has weight w[k] when w is non-nil; otherwise the
// weight is derived on the fly from the node positions pos — the ISL-only
// case, where the topology is static but distances move with the snapshot.
type csr struct {
	off []int32
	adj []int32
	w   []float64
	pos []geo.Vec3
}

// queryCtx is the reusable Dijkstra scratch: dist/prev/heap arrays sized to
// the graph, validity tracked by a generation stamp so starting a new query
// is O(1) instead of an O(n) clear. A node's dist/prev/hpos entries are
// meaningful only when stamp[v] == gen.
type queryCtx struct {
	dist  []float64
	prev  []int32
	stamp []uint32
	hpos  []int32 // heap index of a queued node; -1 once popped
	heap  []int32 // 4-ary min-heap of node ids keyed by dist
	gen   uint32
}

var ctxPool = sync.Pool{New: func() any { return new(queryCtx) }}

// getCtx fetches a pooled context sized for n nodes and opens a fresh
// generation; pair with putCtx.
func getCtx(n int) *queryCtx {
	c := ctxPool.Get().(*queryCtx)
	if cap(c.dist) < n {
		c.dist = make([]float64, n)
		c.prev = make([]int32, n)
		c.stamp = make([]uint32, n)
		c.hpos = make([]int32, n)
	}
	c.dist = c.dist[:n]
	c.prev = c.prev[:n]
	c.stamp = c.stamp[:n]
	c.hpos = c.hpos[:n]
	c.heap = c.heap[:0]
	c.gen++
	if c.gen == 0 { // wrapped: stale stamps could alias the new generation
		clear(c.stamp[:cap(c.stamp)])
		c.gen = 1
	}
	return c
}

func putCtx(c *queryCtx) { ctxPool.Put(c) }

// less orders heap entries by distance, ties broken on node id so pop order
// is deterministic.
func (c *queryCtx) less(a, b int32) bool {
	da, db := c.dist[a], c.dist[b]
	if da != db {
		return da < db
	}
	return a < b
}

func (c *queryCtx) push(v int32) {
	c.heap = append(c.heap, v)
	c.siftUp(len(c.heap) - 1)
}

func (c *queryCtx) siftUp(i int) {
	h := c.heap
	v := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !c.less(v, h[p]) {
			break
		}
		h[i] = h[p]
		c.hpos[h[p]] = int32(i)
		i = p
	}
	h[i] = v
	c.hpos[v] = int32(i)
}

func (c *queryCtx) siftDown(i int) {
	h := c.heap
	n := len(h)
	v := h[i]
	for {
		lo := i<<2 + 1
		if lo >= n {
			break
		}
		hi := lo + 4
		if hi > n {
			hi = n
		}
		m := lo
		for k := lo + 1; k < hi; k++ {
			if c.less(h[k], h[m]) {
				m = k
			}
		}
		if !c.less(h[m], v) {
			break
		}
		h[i] = h[m]
		c.hpos[h[m]] = int32(i)
		i = m
	}
	h[i] = v
	c.hpos[v] = int32(i)
}

func (c *queryCtx) popMin() int32 {
	h := c.heap
	v := h[0]
	last := len(h) - 1
	tail := h[last]
	c.heap = h[:last]
	if last > 0 {
		c.heap[0] = tail
		c.hpos[tail] = 0
		c.siftDown(0)
	}
	c.hpos[v] = -1
	return v
}

// relax offers the candidate distance nd to v via predecessor u. Strict
// improvement only, matching the legacy relaxation: on an exact tie the
// first-seen predecessor keeps the node.
func (c *queryCtx) relax(u, v int32, nd float64) {
	if c.stamp[v] != c.gen {
		c.stamp[v] = c.gen
		c.dist[v] = nd
		c.prev[v] = u
		c.push(v)
		return
	}
	if nd < c.dist[v] {
		// Non-negative weights mean a settled node can never improve, so a
		// successful decrease always finds v still queued (hpos >= 0).
		c.dist[v] = nd
		c.prev[v] = u
		c.siftUp(int(c.hpos[v]))
	}
}

// dijkstra runs from src until dst is settled (dst >= 0) or the reachable
// graph is exhausted (dst < 0: full single-source shortest paths). Results
// live in c.dist/c.prev for nodes stamped with the current generation.
func (c *queryCtx) dijkstra(g csr, src, dst int32) {
	c.stamp[src] = c.gen
	c.dist[src] = 0
	c.prev[src] = -1
	c.push(src)
	for len(c.heap) > 0 {
		u := c.popMin()
		if u == dst {
			return
		}
		du := c.dist[u]
		lo, hi := g.off[u], g.off[u+1]
		if g.w != nil {
			for k := lo; k < hi; k++ {
				c.relax(u, g.adj[k], du+g.w[k])
			}
		} else {
			pu := g.pos[u]
			for k := lo; k < hi; k++ {
				v := g.adj[k]
				c.relax(u, v, du+units.PropagationDelayMs(pu.Distance(g.pos[v])))
			}
		}
	}
}

// distAt returns the computed distance of v, +Inf when unreached.
func (c *queryCtx) distAt(v int32) float64 {
	if c.stamp[v] != c.gen {
		return math.Inf(1)
	}
	return c.dist[v]
}

// pathTo rebuilds the src→dst node sequence from the prev chain; call only
// after dijkstra settled dst.
func (c *queryCtx) pathTo(dst int32) []NodeID {
	n := 0
	for at := dst; at != -1; at = c.prev[at] {
		n++
	}
	nodes := make([]NodeID, n)
	for at := dst; at != -1; at = c.prev[at] {
		n--
		nodes[n] = NodeID(at)
	}
	return nodes
}
