package netgraph

// Differential tests for incremental (delta) snapshot freezing: a chain of
// AtAfter snapshots swept across a full orbital period must produce CSR
// arrays byte-identical to from-scratch freezes at every step — including
// the mask-crossing churn the poles and dateline stations in diffGrounds
// provoke — and every fallback path (foreign prev, backwards time, stolen
// chain state) must silently degrade to a correct full scan.

import (
	"math"
	"testing"
)

// sameCSR asserts byte identity of two frozen graphs: offsets and adjacency
// by integer equality, weights by exact bit pattern.
func sameCSR(t *testing.T, label string, got, want *frozen) {
	t.Helper()
	if got.sats != want.sats || got.nodes != want.nodes {
		t.Fatalf("%s: dims %d/%d vs %d/%d", label, got.sats, got.nodes, want.sats, want.nodes)
	}
	if len(got.g.off) != len(want.g.off) || len(got.g.adj) != len(want.g.adj) || len(got.g.w) != len(want.g.w) {
		t.Fatalf("%s: lengths off %d/%d adj %d/%d w %d/%d", label,
			len(got.g.off), len(want.g.off), len(got.g.adj), len(want.g.adj), len(got.g.w), len(want.g.w))
	}
	for i := range got.g.off {
		if got.g.off[i] != want.g.off[i] {
			t.Fatalf("%s: off[%d] = %d, want %d", label, i, got.g.off[i], want.g.off[i])
		}
	}
	for i := range got.g.adj {
		if got.g.adj[i] != want.g.adj[i] {
			t.Fatalf("%s: adj[%d] = %d, want %d", label, i, got.g.adj[i], want.g.adj[i])
		}
	}
	for i := range got.g.w {
		if math.Float64bits(got.g.w[i]) != math.Float64bits(want.g.w[i]) {
			t.Fatalf("%s: w[%d] = %.17g (bits %x), want %.17g (bits %x)", label, i,
				got.g.w[i], math.Float64bits(got.g.w[i]), want.g.w[i], math.Float64bits(want.g.w[i]))
		}
	}
}

// TestDeltaFreezeBitIdenticalSweep chains snapshots across a full orbital
// period on both presets and pins every delta-built CSR to a from-scratch
// freeze. Not parallel: it asserts on the package-wide delta counter to
// prove the incremental path (not a silent fallback) actually served the
// chain.
func TestDeltaFreezeBitIdenticalSweep(t *testing.T) {
	for _, preset := range []string{"starlink", "kuiper"} {
		t.Run(preset, func(t *testing.T) {
			n := presetNet(t, preset)
			const stepSec = 60.0
			steps := int(math.Floor(orbitalPeriodSec/stepSec)) + 1

			before := totalDeltaFreezes.Load()
			snap := n.At(0)
			for i := 0; i < steps; i++ {
				tSec := float64(i) * stepSec
				if i > 0 {
					snap = n.AtAfter(snap, tSec)
				}
				got := snap.frozen()
				want := n.At(tSec).frozen() // plain At: always a full scan
				sameCSR(t, preset+" t="+itoa(int(tSec)), got, want)
			}
			// Step 0 is a plain At and step 1 is the chain-start full scan;
			// every later step must have taken the delta path.
			if got, want := totalDeltaFreezes.Load()-before, uint64(steps-2); got != want {
				t.Fatalf("delta freezes = %d, want %d (chain fell back to full scans)", got, want)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestDeltaFreezeIrregularSteps exercises uneven, tiny, zero, and large time
// steps in one chain — bucket drains of varying widths, dt=0 re-freezes, and
// jumps long enough to wrap most of the calendar ring.
func TestDeltaFreezeIrregularSteps(t *testing.T) {
	n := presetNet(t, "starlink")
	offsets := []float64{0, 1, 1, 16, 75, 75.5, 300, 1800, 1801, 5000, 5736}
	var snap *Snapshot
	for i, tSec := range offsets {
		if i == 0 {
			snap = n.At(tSec)
		} else {
			snap = n.AtAfter(snap, tSec)
		}
		sameCSR(t, "t="+itoa(int(tSec)), snap.frozen(), n.At(tSec).frozen())
	}
}

// TestAtAfterFallbacks: every misuse must degrade to a correct full freeze,
// never a wrong graph.
func TestAtAfterFallbacks(t *testing.T) {
	n := presetNet(t, "starlink")
	other := presetNet(t, "starlink")

	// nil prev.
	s := n.AtAfter(nil, 120)
	sameCSR(t, "nil prev", s.frozen(), n.At(120).frozen())

	// Foreign prev (different Network).
	s = n.AtAfter(other.At(0), 180)
	sameCSR(t, "foreign prev", s.frozen(), n.At(180).frozen())

	// Backwards time.
	p := n.At(600)
	s = n.AtAfter(p, 540)
	sameCSR(t, "backwards", s.frozen(), n.At(540).frozen())
}

// TestDeltaChainSteal: two successors chained onto the same predecessor.
// Exactly one can steal the calendar; both must be bit-identical to full
// freezes.
func TestDeltaChainSteal(t *testing.T) {
	n := presetNet(t, "starlink")
	p := n.AtAfter(n.At(0), 60) // chain start: owns delta state after freezing
	p.Freeze()
	s1 := n.AtAfter(p, 120)
	s2 := n.AtAfter(p, 180)
	sameCSR(t, "s1", s1.frozen(), n.At(120).frozen())
	sameCSR(t, "s2", s2.frozen(), n.At(180).frozen())
}

// TestCheckEdgeBudget pins the int32 CSR offset guard at the boundary.
func TestCheckEdgeBudget(t *testing.T) {
	checkEdgeBudget(0)
	checkEdgeBudget(math.MaxInt32) // largest representable: must not panic

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("checkEdgeBudget(MaxInt32+1) did not panic")
		}
		err, ok := r.(*ErrGraphTooLarge)
		if !ok {
			t.Fatalf("panic value %T, want *ErrGraphTooLarge", r)
		}
		if err.Edges != math.MaxInt32+1 {
			t.Fatalf("Edges = %d", err.Edges)
		}
		if err.Error() == "" {
			t.Fatal("empty error message")
		}
	}()
	checkEdgeBudget(math.MaxInt32 + 1)
}
