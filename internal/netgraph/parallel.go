package netgraph

// Parallel multi-source SSSP for the fan-out callers: meetup.BestRouted runs
// one source per user, fig3 one per user against every data centre, the
// fleet hand-off planner one per session. Sources share the frozen CSR
// (built once, before the workers start) and draw pooled query contexts, so
// the fan-out is embarrassingly parallel with deterministic per-slot output.
//
// Goroutines only help when there is enough work to amortise them: on a
// single-CPU host, or for a handful of sources over a small graph, the
// spawn/atomic/scheduler overhead is pure loss (the original always-spawn
// version clocked in *slower* than the caller's own serial loop). The
// fan-out therefore runs serially unless both spare parallelism and a
// minimum work volume (sources × nodes) are present. Either way the batch
// entry points beat the per-call loop: rows come from one slab allocation
// instead of one zeroed make per source.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// serialFanoutWork is the sources×nodes volume below which the goroutine
// fan-out cannot recoup its setup cost and the batch runs serially. A
// settled node costs a few hundred nanoseconds; the fan-out machinery costs
// tens of microseconds in spawns, atomics, and cross-worker cache traffic.
const serialFanoutWork = 1 << 12

// AllSourcesLatencies runs LatencyToAllSats for every ground station index
// in gis concurrently (up to GOMAXPROCS workers) and returns the results in
// matching order: out[i][satID] is the one-way latency from gis[i]. Rows
// share one backing slab.
func (s *Snapshot) AllSourcesLatencies(gis []int) [][]float64 {
	if len(gis) == 0 {
		return nil
	}
	f := s.frozen()
	out := slabRows(len(gis), f.sats)
	s.forEachSource(len(gis), f.nodes, func(slot int) {
		s.LatencyToAllSatsInto(gis[slot], out[slot])
	})
	return out
}

// AllSourcesNodeLatencies runs LatencyToAllNodes for every source node
// concurrently: out[i][node] is the one-way latency from srcs[i] to node.
// Rows share one backing slab.
func (s *Snapshot) AllSourcesNodeLatencies(srcs []NodeID) [][]float64 {
	if len(srcs) == 0 {
		return nil
	}
	f := s.frozen()
	out := slabRows(len(srcs), f.nodes)
	s.forEachSource(len(srcs), f.nodes, func(slot int) {
		s.LatencyToAllNodesInto(srcs[slot], out[slot])
	})
	return out
}

// slabRows carves n rows of width w out of a single allocation. Rows are
// full-capacity slices, so the Into query paths fill them in place.
func slabRows(n, w int) [][]float64 {
	slab := make([]float64, n*w)
	out := make([][]float64, n)
	for i := range out {
		out[i] = slab[i*w : (i+1)*w : (i+1)*w]
	}
	return out
}

// fanoutWorkers is the worker count forEachSource will use for a batch of n
// sources over a nodes-node graph: 1 means the serial fallback. GOMAXPROCS
// routinely exceeds the CPUs actually available (container quotas, taskset
// pins); NumCPU is the parallelism that exists, and spawning past it just
// time-slices CPU-bound Dijkstras on one core.
func fanoutWorkers(n, nodes int) int {
	workers := runtime.GOMAXPROCS(0)
	if cpus := runtime.NumCPU(); workers > cpus {
		workers = cpus
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n*nodes < serialFanoutWork {
		return 1
	}
	return workers
}

// forEachSource invokes run(0..n-1), fanning out over fanoutWorkers
// goroutines when parallelism exists and the batch is big enough to pay for
// it. The snapshot is frozen up front so workers never contend on the
// sync.Once.
func (s *Snapshot) forEachSource(n, nodes int, run func(int)) {
	if n == 0 {
		return
	}
	s.frozen()
	workers := fanoutWorkers(n, nodes)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
