package netgraph

// Parallel multi-source SSSP for the fan-out callers: meetup.BestRouted runs
// one source per user, fig3 one per user against every data centre, the
// fleet hand-off planner one per session. Sources share the frozen CSR
// (built once, before the workers start) and draw pooled query contexts, so
// the fan-out is embarrassingly parallel with deterministic per-slot output.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// AllSourcesLatencies runs LatencyToAllSats for every ground station index
// in gis concurrently (up to GOMAXPROCS workers) and returns the results in
// matching order: out[i][satID] is the one-way latency from gis[i].
func (s *Snapshot) AllSourcesLatencies(gis []int) [][]float64 {
	out := make([][]float64, len(gis))
	s.forEachSource(len(gis), func(slot int) {
		out[slot] = s.LatencyToAllSats(gis[slot])
	})
	return out
}

// AllSourcesNodeLatencies runs LatencyToAllNodes for every source node
// concurrently: out[i][node] is the one-way latency from srcs[i] to node.
func (s *Snapshot) AllSourcesNodeLatencies(srcs []NodeID) [][]float64 {
	out := make([][]float64, len(srcs))
	s.forEachSource(len(srcs), func(slot int) {
		out[slot] = s.LatencyToAllNodes(srcs[slot])
	})
	return out
}

// forEachSource invokes run(0..n-1), fanning out over GOMAXPROCS goroutines
// when that wins. The snapshot is frozen up front so workers never contend
// on the sync.Once.
func (s *Snapshot) forEachSource(n int, run func(int)) {
	if n == 0 {
		return
	}
	s.frozen()
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
