package netgraph

// Frozen-vs-legacy routing benchmarks feeding BENCH_netgraph.json. Each
// benchmark times both implementations internally (time.Now deltas) and
// reports the ratio via b.ReportMetric, so CI's -benchtime 1x smoke run
// still yields meaningful speedup and allocation metrics.

import (
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
)

// benchCities are the queried sources; the full ground set adds a world
// grid of passive stations so the graph has a realistic ground segment
// (real LEO operators run hundreds of gateway sites) where the legacy
// per-expansion visibility rescan actually bites.
var benchCities = []geo.LatLon{
	{LatDeg: 40.71, LonDeg: -74.01},  // New York
	{LatDeg: 51.51, LonDeg: -0.13},   // London
	{LatDeg: -33.92, LonDeg: 18.42},  // Cape Town
	{LatDeg: 35.68, LonDeg: 139.69},  // Tokyo
	{LatDeg: -23.55, LonDeg: -46.63}, // São Paulo
}

func benchGrounds() []geo.LatLon {
	grounds := append([]geo.LatLon(nil), benchCities...)
	for lat := -60.0; lat <= 60; lat += 15 {
		for lon := -180.0; lon < 180; lon += 15 {
			grounds = append(grounds, geo.LatLon{LatDeg: lat, LonDeg: lon})
		}
	}
	return grounds
}

func benchSnapshot(b *testing.B) (*Network, *Snapshot) {
	b.Helper()
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := New(c, benchGrounds())
	s := n.At(0)
	s.Freeze() // steady-state comparison: the one-time freeze is timed separately
	return n, s
}

// BenchmarkShortestPath compares warm frozen-graph point-to-point queries
// against the legacy closure-driven Dijkstra on the Starlink preset.
func BenchmarkShortestPath(b *testing.B) {
	n, s := benchSnapshot(b)
	const reps = 4
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for gi := 1; gi < len(benchCities); gi++ {
				p, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(gi))
				if err != nil {
					b.Fatal(err)
				}
				frozenSum += p.OneWayMs
			}
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for r := 0; r < reps; r++ {
			for gi := 1; gi < len(benchCities); gi++ {
				p, err := s.legacyShortestPath(n.GroundNode(0), n.GroundNode(gi))
				if err != nil {
					b.Fatal(err)
				}
				legacySum += p.OneWayMs
			}
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy latency sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * reps * (len(benchCities) - 1))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
}

// BenchmarkLatencyToAllSats compares warm frozen SSSP against the legacy
// per-call-allocating pass, and reports the steady-state allocations of the
// pooled Into path (must stay at zero).
func BenchmarkLatencyToAllSats(b *testing.B) {
	_, s := benchSnapshot(b)
	buf := make([]float64, 0, s.net.Sats())
	const reps = 2
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for gi := range benchCities {
				out := s.LatencyToAllSatsInto(gi, buf)
				frozenSum += out[0] + out[len(out)-1]
			}
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for r := 0; r < reps; r++ {
			for gi := range benchCities {
				out := s.legacyLatencyToAllSats(gi)
				legacySum += out[0] + out[len(out)-1]
			}
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy SSSP sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * reps * len(benchCities))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
	allocs := testing.AllocsPerRun(20, func() { s.LatencyToAllSatsInto(0, buf) })
	b.ReportMetric(allocs, "steady-allocs/op")
}

// BenchmarkAllSourcesLatencies compares the GOMAXPROCS fan-out against the
// serial per-source loop over the same warm snapshot.
func BenchmarkAllSourcesLatencies(b *testing.B) {
	_, s := benchSnapshot(b)
	gis := make([]int, len(benchCities))
	for i := range gis {
		gis[i] = i
	}
	var parNs, serialNs int64
	var parSum, serialSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rows := s.AllSourcesLatencies(gis)
		parNs += time.Since(start).Nanoseconds()
		for _, r := range rows {
			parSum += r[0]
		}
		start = time.Now()
		for _, gi := range gis {
			out := s.LatencyToAllSats(gi)
			serialSum += out[0]
		}
		serialNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if parSum != serialSum {
		b.Fatalf("parallel/serial sums diverged: %.17g vs %.17g", parSum, serialSum)
	}
	b.ReportMetric(float64(parNs)/float64(b.N), "parallel-ns/op")
	b.ReportMetric(float64(serialNs)/float64(b.N), "serial-ns/op")
	b.ReportMetric(float64(serialNs)/float64(parNs), "parallel-speedup-x")
}

// BenchmarkISLShortest compares the pooled static-CSR ISL query against the
// legacy hand-rolled grid Dijkstra.
func BenchmarkISLShortest(b *testing.B) {
	n, s := benchSnapshot(b)
	// Pairs within the first shell: the +grid has no cross-shell links, so
	// cross-shell pairs would be ErrNoPath.
	shell0 := n.Constellation.Shells[0].Planes * n.Constellation.Shells[0].SatsPerPlane
	pairs := [][2]int{{0, shell0 - 1}, {1, shell0 / 2}, {shell0 / 3, 2 * shell0 / 3}}
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, pr := range pairs {
			p, err := ISLShortest(n.Grid, s.SatPositions(), pr[0], pr[1])
			if err != nil {
				b.Fatal(err)
			}
			frozenSum += p.OneWayMs
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, pr := range pairs {
			p, err := legacyISLShortest(n.Grid, s.SatPositions(), pr[0], pr[1])
			if err != nil {
				b.Fatal(err)
			}
			legacySum += p.OneWayMs
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy ISL sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * len(pairs))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
}

// BenchmarkSnapshotFreeze times the one-time per-snapshot CSR build that
// every later query amortises.
func BenchmarkSnapshotFreeze(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := New(c, benchGrounds())
	snaps := make([]*Snapshot, b.N)
	for i := range snaps {
		snaps[i] = n.At(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps[i].Freeze()
	}
}
