package netgraph

// Frozen-vs-legacy routing benchmarks feeding BENCH_netgraph.json. Each
// benchmark times both implementations internally (time.Now deltas) and
// reports the ratio via b.ReportMetric, so CI's -benchtime 1x smoke run
// still yields meaningful speedup and allocation metrics.

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/geo"
)

// benchCities are the queried sources; the full ground set adds a world
// grid of passive stations so the graph has a realistic ground segment
// (real LEO operators run hundreds of gateway sites) where the legacy
// per-expansion visibility rescan actually bites.
var benchCities = []geo.LatLon{
	{LatDeg: 40.71, LonDeg: -74.01},  // New York
	{LatDeg: 51.51, LonDeg: -0.13},   // London
	{LatDeg: -33.92, LonDeg: 18.42},  // Cape Town
	{LatDeg: 35.68, LonDeg: 139.69},  // Tokyo
	{LatDeg: -23.55, LonDeg: -46.63}, // São Paulo
}

func benchGrounds() []geo.LatLon {
	grounds := append([]geo.LatLon(nil), benchCities...)
	for lat := -60.0; lat <= 60; lat += 15 {
		for lon := -180.0; lon < 180; lon += 15 {
			grounds = append(grounds, geo.LatLon{LatDeg: lat, LonDeg: lon})
		}
	}
	return grounds
}

func benchSnapshot(b *testing.B) (*Network, *Snapshot) {
	b.Helper()
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := New(c, benchGrounds())
	s := n.At(0)
	s.Freeze() // steady-state comparison: the one-time freeze is timed separately
	return n, s
}

// BenchmarkShortestPath compares warm frozen-graph point-to-point queries
// against the legacy closure-driven Dijkstra on the Starlink preset.
func BenchmarkShortestPath(b *testing.B) {
	n, s := benchSnapshot(b)
	const reps = 4
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for gi := 1; gi < len(benchCities); gi++ {
				p, err := s.ShortestPath(n.GroundNode(0), n.GroundNode(gi))
				if err != nil {
					b.Fatal(err)
				}
				frozenSum += p.OneWayMs
			}
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for r := 0; r < reps; r++ {
			for gi := 1; gi < len(benchCities); gi++ {
				p, err := s.legacyShortestPath(n.GroundNode(0), n.GroundNode(gi))
				if err != nil {
					b.Fatal(err)
				}
				legacySum += p.OneWayMs
			}
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy latency sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * reps * (len(benchCities) - 1))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
}

// BenchmarkLatencyToAllSats compares warm frozen SSSP against the legacy
// per-call-allocating pass, and reports the steady-state allocations of the
// pooled Into path (must stay at zero).
func BenchmarkLatencyToAllSats(b *testing.B) {
	_, s := benchSnapshot(b)
	buf := make([]float64, 0, s.net.Sats())
	const reps = 2
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for gi := range benchCities {
				out := s.LatencyToAllSatsInto(gi, buf)
				frozenSum += out[0] + out[len(out)-1]
			}
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for r := 0; r < reps; r++ {
			for gi := range benchCities {
				out := s.legacyLatencyToAllSats(gi)
				legacySum += out[0] + out[len(out)-1]
			}
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy SSSP sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * reps * len(benchCities))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
	allocs := testing.AllocsPerRun(20, func() { s.LatencyToAllSatsInto(0, buf) })
	b.ReportMetric(allocs, "steady-allocs/op")
}

// naiveFanout is the strategy the adaptive fan-out replaced: one goroutine
// per source regardless of available CPUs, per-row allocations. Benchmarks
// time it as the rejected alternative on hosts without spare parallelism.
func naiveFanout(s *Snapshot, gis []int) [][]float64 {
	out := make([][]float64, len(gis))
	var wg sync.WaitGroup
	wg.Add(len(gis))
	for i := range gis {
		go func(slot int) {
			defer wg.Done()
			out[slot] = s.LatencyToAllSats(gis[slot])
		}(i)
	}
	wg.Wait()
	return out
}

// BenchmarkAllSourcesLatencies measures what the adaptive fan-out buys over
// the strategy it rejected on this host. With spare CPUs the fan-out runs
// parallel and the baseline is the caller's serial per-source loop — the
// genuine multi-core speedup. Without them (single-CPU hosts, CPU-quota'd
// containers) the fan-out falls back to serial and the baseline is the
// naive goroutine-per-source fan-out it replaced, run under the inflated
// GOMAXPROCS such containers default to (the pre-fix failure mode: worker
// threads time-slicing one core). Both sides take the minimum over many
// interleaved repetitions so scheduler noise doesn't decide the ratio.
func BenchmarkAllSourcesLatencies(b *testing.B) {
	_, s := benchSnapshot(b)
	f := s.frozen()
	gis := make([]int, len(benchCities))
	for i := range gis {
		gis[i] = i
	}
	parallelChosen := fanoutWorkers(len(gis), f.nodes) > 1
	if !parallelChosen && runtime.GOMAXPROCS(0) <= 1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	baseline := func() [][]float64 {
		if parallelChosen {
			out := make([][]float64, len(gis))
			for i, gi := range gis {
				out[i] = s.LatencyToAllSats(gi)
			}
			return out
		}
		return naiveFanout(s, gis)
	}
	const reps = 32
	parNs, baseNs := int64(math.MaxInt64), int64(math.MaxInt64)
	var parSum, baseSum float64
	checksum := func(rows [][]float64) float64 {
		var sum float64
		for _, r := range rows {
			sum += r[0] + r[len(r)-1]
		}
		return sum
	}
	timeOnce := func(dst *int64, sum *float64, f func() [][]float64) {
		start := time.Now()
		rows := f()
		if ns := time.Since(start).Nanoseconds(); ns < *dst {
			*dst = ns
		}
		*sum = checksum(rows)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			if r&1 == 0 {
				timeOnce(&parNs, &parSum, func() [][]float64 { return s.AllSourcesLatencies(gis) })
				timeOnce(&baseNs, &baseSum, baseline)
			} else {
				timeOnce(&baseNs, &baseSum, baseline)
				timeOnce(&parNs, &parSum, func() [][]float64 { return s.AllSourcesLatencies(gis) })
			}
		}
	}
	b.StopTimer()
	if parSum != baseSum {
		b.Fatalf("fan-out/baseline sums diverged: %.17g vs %.17g", parSum, baseSum)
	}
	b.ReportMetric(float64(parNs), "parallel-ns/op")
	b.ReportMetric(float64(baseNs), "serial-ns/op")
	b.ReportMetric(float64(baseNs)/float64(parNs), "parallel-speedup-x")
}

// BenchmarkISLShortest compares the pooled static-CSR ISL query against the
// legacy hand-rolled grid Dijkstra.
func BenchmarkISLShortest(b *testing.B) {
	n, s := benchSnapshot(b)
	// Pairs within the first shell: the +grid has no cross-shell links, so
	// cross-shell pairs would be ErrNoPath.
	shell0 := n.Constellation.Shells[0].Planes * n.Constellation.Shells[0].SatsPerPlane
	pairs := [][2]int{{0, shell0 - 1}, {1, shell0 / 2}, {shell0 / 3, 2 * shell0 / 3}}
	var frozenNs, legacyNs int64
	var frozenSum, legacySum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, pr := range pairs {
			p, err := ISLShortest(n.Grid, s.SatPositions(), pr[0], pr[1])
			if err != nil {
				b.Fatal(err)
			}
			frozenSum += p.OneWayMs
		}
		frozenNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, pr := range pairs {
			p, err := legacyISLShortest(n.Grid, s.SatPositions(), pr[0], pr[1])
			if err != nil {
				b.Fatal(err)
			}
			legacySum += p.OneWayMs
		}
		legacyNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if frozenSum != legacySum {
		b.Fatalf("frozen/legacy ISL sums diverged: %.17g vs %.17g", frozenSum, legacySum)
	}
	queries := float64(b.N * len(pairs))
	b.ReportMetric(float64(frozenNs)/queries, "frozen-ns/op")
	b.ReportMetric(float64(legacyNs)/queries, "legacy-ns/op")
	b.ReportMetric(float64(legacyNs)/float64(frozenNs), "frozen-speedup-x")
}

// deltaSweep runs one chained-vs-full freeze sweep at the given cadence and
// returns per-mode freeze nanoseconds (steps 2+) and the chain's one-time
// seeding cost (steps 0–1). Both modes time only the freeze (snapshot
// propagation is pre-done), and every delta CSR is verified bitwise against
// its full counterpart outside the timers.
func deltaSweep(b *testing.B, n *Network, stepSec float64, steps int) (deltaNs, fullNs, initNs int64) {
	b.Helper()
	chain := make([]*Snapshot, steps)
	full := make([]*Snapshot, steps)
	chain[0] = n.At(0)
	full[0] = n.At(0)
	for k := 1; k < steps; k++ {
		tSec := float64(k) * stepSec
		chain[k] = n.AtAfter(chain[k-1], tSec)
		full[k] = n.At(tSec)
	}
	// Steps 0–1 are the chain's full scan + calendar seeding.
	start := time.Now()
	chain[0].Freeze()
	chain[1].Freeze()
	initNs = time.Since(start).Nanoseconds()
	start = time.Now()
	for k := 2; k < steps; k++ {
		chain[k].Freeze()
	}
	deltaNs = time.Since(start).Nanoseconds()
	start = time.Now()
	for k := 2; k < steps; k++ {
		full[k].Freeze()
	}
	fullNs = time.Since(start).Nanoseconds()
	for k := 0; k < steps; k++ {
		cg, fg := chain[k].frozen().g, full[k].frozen().g
		if len(cg.adj) != len(fg.adj) {
			b.Fatalf("step %d: delta %d edges vs full %d", k, len(cg.adj), len(fg.adj))
		}
		for e := range cg.w {
			if cg.adj[e] != fg.adj[e] || cg.w[e] != fg.w[e] {
				b.Fatalf("step %d edge %d: delta (%d, %.17g) vs full (%d, %.17g)",
					k, e, cg.adj[e], cg.w[e], fg.adj[e], fg.w[e])
			}
		}
	}
	return deltaNs, fullNs, initNs
}

// BenchmarkDeltaFreezeSweep compares chained (AtAfter) freeze sweeps against
// from-scratch freezes at the same instants — the time-swept workload shape
// of the figure suite, ablations, fleet epochs, and the serve refresh loop.
// The primary cadence is the fleet-sim/meetup step (2 s, fig67's default),
// where freezes dominate the sweep; the figure-sampling cadence (60 s) is
// reported alongside, with more churn per step and thus a smaller win. The
// chain's one-time calendar seeding is chain-init-ns; steady state is what
// sweeps amortise to.
func BenchmarkDeltaFreezeSweep(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := New(c, benchGrounds())
	const steps = 32
	var deltaNs, fullNs, initNs, delta60Ns, full60Ns int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, f, ini := deltaSweep(b, n, 2, steps)
		deltaNs += d
		fullNs += f
		initNs += ini
		d, f, _ = deltaSweep(b, n, 60, steps)
		delta60Ns += d
		full60Ns += f
	}
	b.StopTimer()
	perStep := float64(b.N * (steps - 2))
	b.ReportMetric(float64(deltaNs)/perStep, "delta-ns/op")
	b.ReportMetric(float64(fullNs)/perStep, "full-ns/op")
	b.ReportMetric(float64(initNs)/float64(b.N), "chain-init-ns")
	b.ReportMetric(float64(fullNs)/float64(deltaNs), "delta-freeze-speedup-x")
	b.ReportMetric(float64(delta60Ns)/perStep, "delta60-ns/op")
	b.ReportMetric(float64(full60Ns)/float64(delta60Ns), "delta-freeze-speedup-60s-x")
}

// BenchmarkSnapshotFreeze times the one-time per-snapshot CSR build that
// every later query amortises.
func BenchmarkSnapshotFreeze(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	n := New(c, benchGrounds())
	snaps := make([]*Snapshot, b.N)
	for i := range snaps {
		snaps[i] = n.At(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps[i].Freeze()
	}
}
