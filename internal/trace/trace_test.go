package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestPaperGroups(t *testing.T) {
	wa := WestAfricaGroup()
	if wa.Name != "west-africa" || len(wa.Users) != 3 {
		t.Fatalf("WestAfricaGroup = %+v", wa)
	}
	// Abuja leads the list.
	if math.Abs(wa.Users[0].LatDeg-9.06) > 0.01 {
		t.Fatalf("first user should be Abuja: %v", wa.Users[0])
	}
	tc := TriContinentGroup()
	if tc.Name != "tri-continent" || len(tc.Users) != 3 {
		t.Fatalf("TriContinentGroup = %+v", tc)
	}
	// Spread across hemispheres.
	north, south := 0, 0
	for _, u := range tc.Users {
		if u.LatDeg > 0 {
			north++
		} else {
			south++
		}
	}
	if north == 0 || south == 0 {
		t.Fatal("tri-continent group should straddle the equator")
	}
}

func TestGroupsValidation(t *testing.T) {
	if _, err := Groups(GroupConfig{Groups: 0, MinUsers: 1, MaxUsers: 2}); err == nil {
		t.Fatal("zero groups accepted")
	}
	if _, err := Groups(GroupConfig{Groups: 1, MinUsers: 0, MaxUsers: 2}); err == nil {
		t.Fatal("zero min users accepted")
	}
	if _, err := Groups(GroupConfig{Groups: 1, MinUsers: 3, MaxUsers: 2}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestGroupsShape(t *testing.T) {
	cfg := GroupConfig{Seed: 7, Groups: 30, MinUsers: 3, MaxUsers: 5, SpreadKm: 500, MaxAbsLatDeg: 52}
	groups, err := Groups(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 30 {
		t.Fatalf("got %d groups", len(groups))
	}
	for _, g := range groups {
		if len(g.Users) < 3 || len(g.Users) > 5 {
			t.Fatalf("group %s has %d users", g.Name, len(g.Users))
		}
		if !strings.HasPrefix(g.Name, "group-") {
			t.Fatalf("group name %q", g.Name)
		}
		c := geo.Centroid(g.Users)
		for _, u := range g.Users {
			if !u.Valid() {
				t.Fatalf("invalid user in %s: %v", g.Name, u)
			}
			if math.Abs(u.LatDeg) > 52.01 {
				t.Fatalf("user outside latitude band in %s: %v", g.Name, u)
			}
			// Users sit near their anchor: centroid distance bounded by
			// spread (plus slack for the clamping at the band edge).
			if d := geo.GreatCircleKm(c, u); d > 2*cfg.SpreadKm+100 {
				t.Fatalf("user %v is %0.f km from centroid of %s", u, d, g.Name)
			}
		}
	}
}

func TestGroupsDeterministic(t *testing.T) {
	cfg := GroupConfig{Seed: 11, Groups: 5, MinUsers: 3, MaxUsers: 3, SpreadKm: 300}
	a, err := Groups(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Groups(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("names diverge at %d", i)
		}
		for j := range a[i].Users {
			if a[i].Users[j] != b[i].Users[j] {
				t.Fatalf("user %d/%d diverges", i, j)
			}
		}
	}
	// Different seed → different draw.
	c, err := Groups(GroupConfig{Seed: 12, Groups: 5, MinUsers: 3, MaxUsers: 3, SpreadKm: 300})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for j := range a[i].Users {
			if a[i].Users[j] != c[i].Users[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical groups")
	}
}

func TestGroupsDefaultLatBand(t *testing.T) {
	groups, err := Groups(GroupConfig{Seed: 3, Groups: 50, MinUsers: 1, MaxUsers: 1, SpreadKm: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if math.Abs(g.Users[0].LatDeg) > 60.01 {
			t.Fatalf("default band violated: %v", g.Users[0])
		}
	}
}

func TestPoisson(t *testing.T) {
	events := Poisson(5, 0.1, 10000)
	// Expect ≈1000 events ±20%.
	if len(events) < 800 || len(events) > 1200 {
		t.Fatalf("Poisson produced %d events, want ≈1000", len(events))
	}
	prev := 0.0
	for _, e := range events {
		if e <= prev || e >= 10000 {
			t.Fatalf("event time %v out of order or horizon", e)
		}
		prev = e
	}
	// Deterministic under seed.
	again := Poisson(5, 0.1, 10000)
	if len(again) != len(events) || again[0] != events[0] {
		t.Fatal("Poisson not deterministic")
	}
	// Degenerate inputs.
	if Poisson(1, 0, 100) != nil || Poisson(1, 1, 0) != nil {
		t.Fatal("degenerate Poisson should be empty")
	}
}

func TestStateSizeMB(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := StateSizeMB(r, 64, 0.5)
		if v <= 0 {
			t.Fatalf("non-positive state size %v", v)
		}
		sum += math.Log(v)
	}
	// Log-normal around median 64: mean of logs ≈ log(64).
	if got := sum / float64(n); math.Abs(got-math.Log(64)) > 0.05 {
		t.Fatalf("log-mean = %v, want ≈%v", got, math.Log(64))
	}
}
