// Package trace generates the deterministic synthetic workloads the
// experiments run on: multi-user groups for meetup-server studies, request
// arrival processes for edge workloads, and state-size distributions for
// migration. All generators are seeded; the same seed reproduces the same
// trace bit-for-bit.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cities"
	"repro/internal/geo"
)

// UserGroup is a set of endpoints that want a common meetup server.
type UserGroup struct {
	// Name labels the group in reports.
	Name string
	// Users holds the endpoint locations.
	Users []geo.LatLon
}

// WestAfricaGroup returns the paper's Fig 3 scenario: three users in West
// Africa (Abuja, Yaoundé, Accra).
func WestAfricaGroup() UserGroup {
	return UserGroup{
		Name: "west-africa",
		Users: []geo.LatLon{
			{LatDeg: 9.06, LonDeg: 7.49},  // Abuja, Nigeria
			{LatDeg: 3.87, LonDeg: 11.52}, // Yaoundé, Cameroon
			{LatDeg: 5.60, LonDeg: -0.19}, // Accra, Ghana
		},
	}
}

// TriContinentGroup returns the paper's §3.2 Kuiper scenario: users at
// South Central US, Brazil South, and Australia East.
func TriContinentGroup() UserGroup {
	return UserGroup{
		Name: "tri-continent",
		Users: []geo.LatLon{
			{LatDeg: 29.42, LonDeg: -98.49},  // San Antonio (South Central US)
			{LatDeg: -23.55, LonDeg: -46.63}, // São Paulo (Brazil South)
			{LatDeg: -33.87, LonDeg: 151.21}, // Sydney (Australia East)
		},
	}
}

// GroupConfig controls random group generation.
type GroupConfig struct {
	// Seed fixes the RNG.
	Seed int64
	// Groups is how many groups to generate.
	Groups int
	// MinUsers and MaxUsers bound group size (inclusive).
	MinUsers, MaxUsers int
	// SpreadKm bounds how far group members sit from the group's anchor
	// city. Small spreads model regional friend groups; large spreads model
	// intercontinental ones.
	SpreadKm float64
	// MaxAbsLatDeg clips anchors to a latitude band (Kuiper serves nothing
	// above ~56°; pass 50 to stay well inside coverage). Zero means 60.
	MaxAbsLatDeg float64
}

// Groups draws user groups anchored at population centers: an anchor city is
// sampled population-weighted, then each member is placed within SpreadKm of
// it. This mirrors the paper's framing of groups of friends in and around
// real population centers.
func Groups(cfg GroupConfig) ([]UserGroup, error) {
	if cfg.Groups <= 0 {
		return nil, fmt.Errorf("trace: Groups must be positive, got %d", cfg.Groups)
	}
	if cfg.MinUsers <= 0 || cfg.MaxUsers < cfg.MinUsers {
		return nil, fmt.Errorf("trace: bad user bounds [%d,%d]", cfg.MinUsers, cfg.MaxUsers)
	}
	maxLat := cfg.MaxAbsLatDeg
	if maxLat == 0 {
		maxLat = 60
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	pool := cities.TopN(500)
	var cum []float64
	total := 0.0
	for _, c := range pool {
		total += float64(c.Population)
		cum = append(cum, total)
	}
	pickCity := func() cities.City {
		x := r.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return pool[lo]
	}

	out := make([]UserGroup, 0, cfg.Groups)
	for gi := 0; gi < cfg.Groups; gi++ {
		var anchor cities.City
		for tries := 0; ; tries++ {
			anchor = pickCity()
			if math.Abs(anchor.Loc.LatDeg) <= maxLat {
				break
			}
			if tries > 1000 {
				return nil, fmt.Errorf("trace: cannot find anchor within |lat|<=%v", maxLat)
			}
		}
		n := cfg.MinUsers + r.Intn(cfg.MaxUsers-cfg.MinUsers+1)
		g := UserGroup{Name: fmt.Sprintf("group-%03d-%s", gi, anchor.Name)}
		for u := 0; u < n; u++ {
			dist := r.Float64() * cfg.SpreadKm
			brg := r.Float64() * 360
			loc := geo.Destination(anchor.Loc, brg, dist)
			// Keep members inside the latitude band too.
			if math.Abs(loc.LatDeg) > maxLat {
				loc.LatDeg = math.Copysign(maxLat, loc.LatDeg)
			}
			g.Users = append(g.Users, loc)
		}
		out = append(out, g)
	}
	return out, nil
}

// Poisson draws inter-arrival times (seconds) of a Poisson process with the
// given rate (events/second) until horizonSec, returning absolute event
// times. Deterministic under seed.
func Poisson(seed int64, rate, horizonSec float64) []float64 {
	if rate <= 0 || horizonSec <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	var out []float64
	t := 0.0
	for {
		t += r.ExpFloat64() / rate
		if t >= horizonSec {
			return out
		}
		out = append(out, t)
	}
}

// StateSizeMB draws an application state size in megabytes: log-normal
// around a session-state scale (player + world-delta state of a game
// session, per §5's session-specific state discussion).
func StateSizeMB(r *rand.Rand, medianMB, sigma float64) float64 {
	return medianMB * math.Exp(r.NormFloat64()*sigma)
}
