// Package core is the paper's primary contribution assembled as a usable
// system: in-orbit computing as a service over a LEO mega-constellation.
// A Service wraps a constellation with satellite-servers and answers the
// three questions the paper poses:
//
//   - edge computing (§3.1): what compute can this ground location reach,
//     at what latency, right now?
//   - multi-user interaction (§3.2/§5): where should a user group's meetup
//     server run, and how does it stay "virtually stationary" as satellites
//     pass?
//   - space-native data (§3.3): how much sensing does in-orbit processing
//     unlock?
package core

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/feasibility"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/meetup"
	"repro/internal/migrate"
	"repro/internal/units"
	"repro/internal/visibility"
)

// ConstellationChoice selects a preset constellation.
type ConstellationChoice string

// Preset constellation names.
const (
	Starlink ConstellationChoice = "starlink-phase1"
	Kuiper   ConstellationChoice = "kuiper"
	Telesat  ConstellationChoice = "telesat"
)

// Options configures a Service.
type Options struct {
	// Server is the per-satellite compute payload; zero value means the
	// paper's HPE DL325 reference.
	Server compute.ServerSpec
	// Meetup holds the Sticky parameters; zero value means the paper's.
	Meetup meetup.Config
	// ISLBandwidthGbps is the inter-satellite link capacity used for state
	// migration; zero means the default laser-terminal class rate.
	ISLBandwidthGbps float64
	// Ephem tunes the service-wide ephemeris engine (workers, cache
	// frames, interpolation); the zero value uses the ephem defaults.
	Ephem ephem.Config
}

// Service is the in-orbit computing service over one constellation.
type Service struct {
	constellation *constellation.Constellation
	observer      *visibility.Observer
	grid          *isl.Grid
	ephem         *ephem.Engine
	provider      *meetup.Provider
	opts          Options
}

// NewService builds the service for a preset constellation.
func NewService(choice ConstellationChoice, opts Options) (*Service, error) {
	var (
		c   *constellation.Constellation
		err error
	)
	switch choice {
	case Starlink:
		c, err = constellation.StarlinkPhase1(constellation.Config{})
	case Kuiper:
		c, err = constellation.Kuiper(constellation.Config{})
	case Telesat:
		c, err = constellation.Telesat(constellation.Config{})
	default:
		return nil, fmt.Errorf("core: unknown constellation %q", choice)
	}
	if err != nil {
		return nil, err
	}
	return NewServiceFor(c, opts)
}

// NewServiceFor builds the service over a caller-provided constellation.
func NewServiceFor(c *constellation.Constellation, opts Options) (*Service, error) {
	if c == nil || c.Size() == 0 {
		return nil, fmt.Errorf("core: empty constellation")
	}
	if opts.Server == (compute.ServerSpec{}) {
		opts.Server = compute.DefaultServerSpec()
	}
	if err := opts.Server.Validate(); err != nil {
		return nil, err
	}
	if opts.ISLBandwidthGbps == 0 {
		opts.ISLBandwidthGbps = isl.BandwidthGbps
	}
	if opts.ISLBandwidthGbps < 0 {
		return nil, fmt.Errorf("core: negative ISL bandwidth")
	}
	// One engine serves every snapshot consumer in the service: the
	// provider (meetup planners, virtual servers), the observer's pass
	// sweeps, and group networks built over the provider.
	eng := ephem.New(c, opts.Ephem)
	return &Service{
		constellation: c,
		observer:      visibility.NewObserver(c).UseEphemeris(eng),
		grid:          isl.NewPlusGrid(c),
		ephem:         eng,
		provider:      meetup.NewProviderFor(eng),
		opts:          opts,
	}, nil
}

// Constellation exposes the underlying constellation.
func (s *Service) Constellation() *constellation.Constellation { return s.constellation }

// Observer exposes the visibility evaluator.
func (s *Service) Observer() *visibility.Observer { return s.observer }

// Grid exposes the ISL topology.
func (s *Service) Grid() *isl.Grid { return s.grid }

// Provider exposes the shared snapshot provider.
func (s *Service) Provider() *meetup.Provider { return s.provider }

// Ephemeris exposes the service-wide ephemeris engine.
func (s *Service) Ephemeris() *ephem.Engine { return s.ephem }

// Servers returns the total number of satellite-servers.
func (s *Service) Servers() int { return s.constellation.Size() }

// EdgeView is the answer to "what compute can I reach from here, now".
type EdgeView struct {
	// Reachable lists every satellite-server in view, nearest first not
	// guaranteed — use Nearest for the optimum.
	Reachable []visibility.Pass
	// NearestRTTMs is the RTT to the closest server; +Inf when uncovered.
	NearestRTTMs float64
	// FarthestRTTMs is the RTT to the farthest directly reachable server.
	FarthestRTTMs float64
	// TotalCores is the aggregate effective core count in view.
	TotalCores float64
}

// Edge evaluates the edge-computing view from a ground location at tSec.
func (s *Service) Edge(tSec float64, loc geo.LatLon) (EdgeView, error) {
	if !loc.Valid() {
		return EdgeView{}, fmt.Errorf("core: invalid location %v", loc)
	}
	snap := s.provider.At(tSec)
	g := loc.ECEF()
	passes := s.observer.Reachable(g, snap, nil)
	view := EdgeView{Reachable: passes}
	near, far, ok := s.observer.NearestFarthest(g, snap)
	if !ok {
		view.NearestRTTMs = math.Inf(1)
		view.FarthestRTTMs = math.Inf(1)
		return view, nil
	}
	view.NearestRTTMs = units.RTTMs(near)
	view.FarthestRTTMs = units.RTTMs(far)
	view.TotalCores = float64(len(passes)) * s.opts.Server.EffectiveCores()
	return view, nil
}

// Covered reports whether the location can reach any server at tSec.
func (s *Service) Covered(tSec float64, loc geo.LatLon) bool {
	snap := s.provider.At(tSec)
	_, _, ok := s.observer.Nearest(loc.ECEF(), snap)
	return ok
}

// Meetup builds a meetup planner for a user group, sharing the service's
// grid and snapshot provider.
func (s *Service) Meetup(users []geo.LatLon) (*meetup.Planner, error) {
	return meetup.NewPlanner(s.constellation, s.grid, users, s.opts.Meetup)
}

// Feasibility runs the §4 analysis with the paper's defaults.
func (s *Service) Feasibility() (feasibility.Report, error) {
	return feasibility.Analyze(feasibility.Default())
}

// VirtualServer is the paper's headline abstraction: a logical server that
// appears stationary above a user group while physically hopping between
// satellites, with state migrated ahead of every hand-off.
type VirtualServer struct {
	svc     *Service
	planner *meetup.Planner
	policy  meetup.Policy
	state   migrate.State
}

// PlaceVirtualServer creates a virtual server for the group under the given
// selection policy and application state profile.
func (s *Service) PlaceVirtualServer(users []geo.LatLon, policy meetup.Policy, state migrate.State) (*VirtualServer, error) {
	if err := state.Validate(); err != nil {
		return nil, err
	}
	p, err := s.Meetup(users)
	if err != nil {
		return nil, err
	}
	return &VirtualServer{svc: s, planner: p, policy: policy, state: state}, nil
}

// RunReport extends the meetup session result with migration costs.
type RunReport struct {
	meetup.SessionResult
	// Migrations holds the per-hand-off live-migration results, aligned
	// with SessionResult.Handoffs.
	Migrations []migrate.Result
	// TotalDowntimeSec sums the stop-and-copy pauses over the session.
	TotalDowntimeSec float64
	// GEOAdvantage is how many times lower the session's mean RTT is than
	// a GEO hop — the "GEO-like stationarity without the GEO latency
	// penalty" number.
	GEOAdvantage float64
}

// Run simulates the virtual server from t0 for durationSec at stepSec
// resolution: server selection + hand-offs per policy, and a live migration
// of the application state at every hand-off.
func (v *VirtualServer) Run(t0, durationSec, stepSec float64) (RunReport, error) {
	res, err := v.planner.Simulate(v.svc.provider, v.policy, t0, durationSec, stepSec)
	if err != nil {
		return RunReport{}, err
	}
	rep := RunReport{SessionResult: res}
	bw := migrate.GbpsToMBps(v.svc.opts.ISLBandwidthGbps)
	for _, h := range res.Handoffs {
		m, err := migrate.Live(v.state, migrate.Link{BandwidthMBps: bw, OneWayMs: h.TransferMs},
			migrate.LiveConfig{GenericReplicatedAhead: true})
		if err != nil {
			return RunReport{}, fmt.Errorf("core: migration at t=%.0fs: %w", h.TimeSec, err)
		}
		rep.Migrations = append(rep.Migrations, m)
		rep.TotalDowntimeSec += m.DowntimeSec
	}
	if res.RTT.Mean() > 0 {
		rep.GEOAdvantage = migrate.GEOComparison(res.RTT.Mean())
	}
	return rep, nil
}

// Policy returns the virtual server's selection policy.
func (v *VirtualServer) Policy() meetup.Policy { return v.policy }
