package core

import (
	"math"
	"testing"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/migrate"
)

// testService builds a service over a moderate constellation so the
// integration tests stay fast; preset-constellation behaviour is covered by
// the bench harness and the skippable tests below.
func testService(t testing.TB) *Service {
	t.Helper()
	c, err := constellation.Build("test", []constellation.Shell{
		{Name: "low", AltitudeKm: 550, InclinationDeg: 53, Planes: 32, SatsPerPlane: 32, PhaseFactor: 11, MinElevationDeg: 20},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServiceFor(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService("atlantis", Options{}); err == nil {
		t.Fatal("unknown constellation accepted")
	}
	if _, err := NewServiceFor(nil, Options{}); err == nil {
		t.Fatal("nil constellation accepted")
	}
	c, err := constellation.Build("x", []constellation.Shell{
		{Name: "s", AltitudeKm: 550, InclinationDeg: 53, Planes: 2, SatsPerPlane: 2, MinElevationDeg: 25},
	}, constellation.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServiceFor(c, Options{Server: compute.ServerSpec{Cores: -1, MemoryGB: 1, PowerCapFraction: 1}}); err == nil {
		t.Fatal("invalid server spec accepted")
	}
	if _, err := NewServiceFor(c, Options{ISLBandwidthGbps: -1}); err == nil {
		t.Fatal("negative ISL bandwidth accepted")
	}
}

func TestPresetConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full constellations")
	}
	for _, choice := range []ConstellationChoice{Starlink, Kuiper, Telesat} {
		s, err := NewService(choice, Options{})
		if err != nil {
			t.Fatalf("%s: %v", choice, err)
		}
		if s.Servers() == 0 {
			t.Fatalf("%s: no servers", choice)
		}
	}
}

func TestEdgeView(t *testing.T) {
	s := testService(t)
	loc := geo.LatLon{LatDeg: 9.06, LonDeg: 7.49}
	view, err := s.Edge(0, loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Reachable) == 0 {
		t.Fatal("no reachable servers over a dense shell")
	}
	if view.NearestRTTMs <= 3.5 || view.NearestRTTMs > 10 {
		t.Fatalf("nearest RTT = %v", view.NearestRTTMs)
	}
	if view.FarthestRTTMs < view.NearestRTTMs {
		t.Fatal("farthest below nearest")
	}
	if view.TotalCores != float64(len(view.Reachable))*64 {
		t.Fatalf("TotalCores = %v", view.TotalCores)
	}
	if !s.Covered(0, loc) {
		t.Fatal("Covered disagrees with Edge")
	}
}

func TestEdgeUncovered(t *testing.T) {
	s := testService(t)
	pole := geo.LatLon{LatDeg: 89.9, LonDeg: 0}
	view, err := s.Edge(0, pole)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Reachable) != 0 {
		t.Skip("pole unexpectedly covered")
	}
	if !math.IsInf(view.NearestRTTMs, 1) || !math.IsInf(view.FarthestRTTMs, 1) {
		t.Fatalf("uncovered RTTs = %v/%v, want +Inf", view.NearestRTTMs, view.FarthestRTTMs)
	}
	if s.Covered(0, pole) {
		t.Fatal("pole should not be covered")
	}
}

func TestEdgeInvalidLocation(t *testing.T) {
	s := testService(t)
	if _, err := s.Edge(0, geo.LatLon{LatDeg: 120}); err == nil {
		t.Fatal("invalid location accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := testService(t)
	if s.Constellation() == nil || s.Observer() == nil || s.Grid() == nil || s.Provider() == nil {
		t.Fatal("nil accessor")
	}
	if s.Servers() != 1024 {
		t.Fatalf("Servers = %d", s.Servers())
	}
}

func TestFeasibilityPassthrough(t *testing.T) {
	s := testService(t)
	r, err := s.Feasibility()
	if err != nil {
		t.Fatal(err)
	}
	if r.CostRatio <= 0 {
		t.Fatal("empty feasibility report")
	}
}

func TestVirtualServerLifecycle(t *testing.T) {
	s := testService(t)
	users := []geo.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 8.50, LonDeg: 9.00},
	}
	state := migrate.State{SessionMB: 64, GenericMB: 1024, DirtyRateMBps: 8}
	vs, err := s.PlaceVirtualServer(users, meetup.Sticky, state)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Policy() != meetup.Sticky {
		t.Fatal("policy accessor wrong")
	}
	rep, err := vs.Run(0, 1800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != len(rep.Handoffs) {
		t.Fatalf("migrations (%d) misaligned with handoffs (%d)", len(rep.Migrations), len(rep.Handoffs))
	}
	for i, m := range rep.Migrations {
		if m.DowntimeSec <= 0 {
			t.Fatalf("migration %d zero downtime: %+v", i, m)
		}
		// Live migration with replicate-ahead keeps downtime well under a
		// second for 64 MB of session state over a multi-Gbps ISL.
		if m.DowntimeSec > 1 {
			t.Fatalf("migration %d downtime %v s too large", i, m.DowntimeSec)
		}
	}
	sum := 0.0
	for _, m := range rep.Migrations {
		sum += m.DowntimeSec
	}
	if math.Abs(sum-rep.TotalDowntimeSec) > 1e-9 {
		t.Fatal("TotalDowntimeSec mismatch")
	}
	if rep.RTT.N() > 0 && rep.GEOAdvantage < 10 {
		t.Fatalf("GEO advantage = %v, expected LEO to win big", rep.GEOAdvantage)
	}
}

func TestVirtualServerValidation(t *testing.T) {
	s := testService(t)
	users := []geo.LatLon{{LatDeg: 9.06, LonDeg: 7.49}}
	if _, err := s.PlaceVirtualServer(users, meetup.MinMax, migrate.State{SessionMB: -1}); err == nil {
		t.Fatal("invalid state accepted")
	}
	if _, err := s.PlaceVirtualServer(nil, meetup.MinMax, migrate.State{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestMeetupIntegration(t *testing.T) {
	s := testService(t)
	p, err := s.Meetup([]geo.LatLon{{LatDeg: 9.06, LonDeg: 7.49}})
	if err != nil {
		t.Fatal(err)
	}
	cand, err := p.SelectMinMax(s.Provider().At(0))
	if err != nil {
		t.Fatal(err)
	}
	if cand.GroupRTTMs <= 0 {
		t.Fatal("no RTT for single-user group")
	}
}
