package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	g := reg.Gauge("queue_depth", "depth")
	h := reg.Histogram("job_seconds", "latency", []float64{1, 10})
	q := reg.Quantile("job_ms", "latency sketch")
	tl := NewTimeline(reg, TimelineConfig{CadenceSec: 10})

	c.Add(5)
	g.Set(3)
	h.Observe(0.5)
	h.Observe(5)
	q.Observe(2)
	tl.Record(10)

	c.Add(2)
	g.Set(7)
	h.Observe(20)
	q.Observe(8)
	tl.Record(20)

	frames := tl.Frames()
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	first, second := frames[0], frames[1]
	if first.DtSec != 0 || second.DtSec != 10 {
		t.Errorf("dt = %g/%g, want 0/10", first.DtSec, second.DtSec)
	}

	get := func(fr Frame, name string) Point {
		p, ok := findPoint(fr, name, nil)
		if !ok {
			t.Fatalf("frame t=%g missing %s", fr.TSec, name)
		}
		return p
	}

	// Counters: cumulative on the first frame, per-interval delta after.
	if p := get(first, "jobs_total"); p.Value != 5 {
		t.Errorf("first counter delta = %g, want 5", p.Value)
	}
	if p := get(second, "jobs_total"); p.Value != 2 || p.Rate != 0.2 {
		t.Errorf("second counter delta/rate = %g/%g, want 2/0.2", p.Value, p.Rate)
	}
	// Gauges: levels, never deltas.
	if p := get(second, "queue_depth"); p.Value != 7 || p.Rate != 0 {
		t.Errorf("gauge = %g (rate %g), want 7 (rate 0)", p.Value, p.Rate)
	}
	// Histograms: count deltas plus non-cumulative bucket increments.
	if p := get(second, "job_seconds"); p.Value != 1 || p.Sum != 20 {
		t.Errorf("histogram count/sum delta = %g/%g, want 1/20", p.Value, p.Sum)
	} else if len(p.Buckets) != 1 || p.Buckets[0].Count != 1 {
		// Only the +Inf overflow bucket grew in the second interval.
		t.Errorf("histogram bucket deltas = %+v, want one bucket with count 1", p.Buckets)
	}
	// Quantiles: count delta plus the sketch's current estimates.
	if p := get(second, "job_ms"); p.Value != 1 || len(p.Quantiles) == 0 {
		t.Errorf("quantile point = %+v, want count delta 1 with estimates", p)
	}
}

func TestTimelineRingBound(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	tl := NewTimeline(reg, TimelineConfig{CadenceSec: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		tl.Record(float64(i))
	}
	st := tl.Stats()
	if st.Frames != 4 || st.Capacity != 4 || st.Dropped != 6 {
		t.Errorf("stats = %+v, want 4 frames, 6 dropped", st)
	}
	frames := tl.Frames()
	if frames[0].TSec != 6 || frames[len(frames)-1].TSec != 9 {
		t.Errorf("ring holds t=%g..%g, want 6..9 (oldest evicted)", frames[0].TSec, frames[len(frames)-1].TSec)
	}
	if st.OldestT != 6 || st.NewestT != 9 {
		t.Errorf("stats window %g..%g, want 6..9", st.OldestT, st.NewestT)
	}
}

func TestTimelineMaybeRecordCadence(t *testing.T) {
	reg := NewRegistry()
	tl := NewTimeline(reg, TimelineConfig{CadenceSec: 60})
	recorded := 0
	for tick := 0; tick <= 120; tick += 15 {
		if tl.MaybeRecord(float64(tick)) {
			recorded++
		}
	}
	if recorded != 3 { // t=0, 60, 120
		t.Errorf("recorded %d frames over 120s at 60s cadence, want 3", recorded)
	}
}

func TestTimelineJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.CounterVec("req_total", "requests", "code")
	c.With("200").Add(9)
	c.With("500").Add(1)
	tl := NewTimeline(reg, TimelineConfig{})
	tl.Record(30)
	tl.Record(60)

	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tl.Frames()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].TSec != want[i].TSec || len(got[i].Points) != len(want[i].Points) {
			t.Errorf("frame %d: t=%g points=%d, want t=%g points=%d",
				i, got[i].TSec, len(got[i].Points), want[i].TSec, len(want[i].Points))
		}
	}
	if _, ok := findPoint(got[0], "req_total", map[string]string{"code": "500"}); !ok {
		t.Error("labels lost in round trip")
	}

	if _, err := ReadFramesJSONL(strings.NewReader("{not json\n")); err == nil {
		t.Error("bad JSONL line not rejected")
	}
}

func TestTimelineCSVAndHTML(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("level", "a level").Set(4)
	reg.Quantile("lat_ms", "latency").Observe(2)
	tl := NewTimeline(reg, TimelineConfig{})
	tl.Record(1)
	tl.Record(2)

	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t_sec,name,labels,field,value", "level,,value,4", "lat_ms,,p50,2"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("CSV missing %q in:\n%s", want, csv.String())
		}
	}

	var html bytes.Buffer
	if err := tl.WriteHTML(&html, "unit test"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "unit test", "<svg", "lat_ms"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}
