package obs

// Streaming quantiles. A Quantile is a log-bucketed (DDSketch/HDR-style)
// sketch: observations land in geometrically spaced buckets, so p50/p95/p99
// estimates carry a bounded *relative* error (~1%) with no preset bucket
// bounds — unlike Histogram, which is only as good as its configured
// cumulative buckets. Observe is lock-free (two atomic adds plus a CAS
// float sum), making it safe on the same hot paths as Counter.

import (
	"math"
	"sync/atomic"
)

const (
	// quantileGamma is the geometric bucket growth factor. The quantile
	// estimate for a bucket is its geometric midpoint, so the worst-case
	// relative error is (sqrt(gamma)-1) ≈ 1%.
	quantileGamma = 1.02
	// quantileMinValue is the smallest distinguishable positive value;
	// anything at or below it (zero and negatives included) lands in the
	// underflow bucket and reports as 0.
	quantileMinValue = 1e-9
	// quantileBuckets spans [1e-9, ~2.6e12) at gamma growth: index
	// 1 + log(max/min)/log(gamma) with max/min = 2.6e21 needs ~2493
	// buckets. Values beyond the top clamp into the last bucket.
	quantileBuckets = 2496
)

var invLogQuantileGamma = 1 / math.Log(quantileGamma)

// ExportQuantiles is the quantile set rendered in snapshots and the
// Prometheus summary exposition.
var ExportQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// Quantile is a streaming-quantile metric. Create via Registry.Quantile or
// QuantileVec; the zero value is ready to use in isolation.
type Quantile struct {
	counts  [quantileBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits of the observed minimum
	maxBits atomic.Uint64 // math.Float64bits of the observed maximum
	hasMM   atomic.Uint32 // min/max initialised
}

// quantileIndex maps a value to its bucket.
func quantileIndex(v float64) int {
	if !(v > quantileMinValue) { // NaN, zero, negatives, denormals → underflow
		return 0
	}
	i := 1 + int(math.Log(v/quantileMinValue)*invLogQuantileGamma)
	if i >= quantileBuckets {
		return quantileBuckets - 1
	}
	return i
}

// quantileBucketValue is the representative (geometric midpoint) value of a
// bucket: the estimate returned for any rank landing in it.
func quantileBucketValue(i int) float64 {
	if i == 0 {
		return 0
	}
	return quantileMinValue * math.Pow(quantileGamma, float64(i)-0.5)
}

// Observe records one value.
func (q *Quantile) Observe(v float64) {
	q.counts[quantileIndex(v)].Add(1)
	q.count.Add(1)
	for {
		old := q.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if q.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if q.hasMM.Load() == 0 && q.hasMM.CompareAndSwap(0, 1) {
		q.minBits.Store(math.Float64bits(v))
		q.maxBits.Store(math.Float64bits(v))
		return
	}
	casFloatIf(&q.minBits, v, func(cur float64) bool { return v < cur })
	casFloatIf(&q.maxBits, v, func(cur float64) bool { return v > cur })
}

func casFloatIf(bits *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (q *Quantile) Count() uint64 { return q.count.Load() }

// Sum returns the sum of all observed values.
func (q *Quantile) Sum() float64 { return math.Float64frombits(q.sumBits.Load()) }

// Min and Max return the exact observed extremes (0 before any Observe).
func (q *Quantile) Min() float64 {
	if q.hasMM.Load() == 0 {
		return 0
	}
	return math.Float64frombits(q.minBits.Load())
}

// Max returns the largest observed value (0 before any Observe).
func (q *Quantile) Max() float64 {
	if q.hasMM.Load() == 0 {
		return 0
	}
	return math.Float64frombits(q.maxBits.Load())
}

// Quantile returns the streaming estimate of the p-quantile (p in [0,1]).
// An empty sketch returns 0. Estimates are clamped to the exact observed
// [Min, Max] so p=0 and p=1 never stray outside the data.
func (q *Quantile) Quantile(p float64) float64 {
	return q.Quantiles(p)[0]
}

// Quantiles returns estimates for several probabilities in one pass over
// the buckets. Each p must be in [0,1]; it panics otherwise.
func (q *Quantile) Quantiles(ps ...float64) []float64 {
	for _, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			panic("obs: quantile probability outside [0,1]")
		}
	}
	out := make([]float64, len(ps))
	total := q.count.Load()
	if total == 0 {
		return out
	}
	lo, hi := q.Min(), q.Max()
	for k, p := range ps {
		// rank in [1, total]: the smallest bucket whose cumulative count
		// reaches it holds the estimate.
		rank := uint64(math.Ceil(p * float64(total)))
		if rank < 1 {
			rank = 1
		}
		cum := uint64(0)
		v := hi
		for i := 0; i < quantileBuckets; i++ {
			cum += q.counts[i].Load()
			if cum >= rank {
				v = quantileBucketValue(i)
				break
			}
		}
		out[k] = math.Min(math.Max(v, lo), hi)
	}
	return out
}

// QuantilePoint is one exported quantile estimate in a snapshot.
type QuantilePoint struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// snapshotQuantiles renders the ExportQuantiles estimates.
func (q *Quantile) snapshotQuantiles() []QuantilePoint {
	vs := q.Quantiles(ExportQuantiles...)
	out := make([]QuantilePoint, len(vs))
	for i, v := range vs {
		out[i] = QuantilePoint{P: ExportQuantiles[i], Value: v}
	}
	return out
}

// QuantileVec is a streaming-quantile family with labels.
type QuantileVec struct{ f *family }

// With returns the sketch for the given label values (created on first use).
func (v *QuantileVec) With(values ...string) *Quantile {
	return v.f.child(values, func() any { return &Quantile{} }).(*Quantile)
}

// Quantile registers (or fetches) an unlabelled streaming-quantile metric.
func (r *Registry) Quantile(name, help string) *Quantile {
	f := r.register(name, help, KindQuantile, nil, nil, nil)
	return f.child(nil, func() any { return &Quantile{} }).(*Quantile)
}

// QuantileVec registers (or fetches) a labelled streaming-quantile family.
func (r *Registry) QuantileVec(name, help string, labels ...string) *QuantileVec {
	return &QuantileVec{r.register(name, help, KindQuantile, labels, nil, nil)}
}
