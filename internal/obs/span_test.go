package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fakeClock is a hand-advanced clock for deterministic spans.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64      { return c.t }
func (c *fakeClock) advance(d float64) { c.t += d }

func TestSpanParentChild(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now)

	root := tr.Start("fig1")
	clk.advance(1)
	child := root.Child("sweep")
	child.SetAttr("constellation", "starlink")
	clk.advance(2)
	if d := child.End(); d != 2 {
		t.Fatalf("child duration = %v, want 2", d)
	}
	clk.advance(0.5)
	if d := root.End(); d != 3.5 {
		t.Fatalf("root duration = %v, want 3.5", d)
	}

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Completion order: child first.
	if recs[0].Name != "sweep" || recs[1].Name != "fig1" {
		t.Fatalf("order = %s, %s", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child parent = %d, root id = %d", recs[0].Parent, recs[1].ID)
	}
	if recs[0].Attrs["constellation"] != "starlink" {
		t.Fatalf("attrs = %v", recs[0].Attrs)
	}
	if recs[0].Start != 1 || recs[0].End != 3 {
		t.Fatalf("child times = [%v, %v], want [1, 3]", recs[0].Start, recs[0].End)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now)
	s := tr.Start("x")
	s.End()
	s.End()
	if tr.Len() != 1 {
		t.Fatalf("double End recorded %d spans", tr.Len())
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	s := tr.Start("ignored")
	s.SetAttr("k", "v")
	c := s.Child("also ignored")
	c.End()
	if d := s.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	if tr.Len() != 0 || tr.Records() != nil {
		t.Fatal("nil tracer accumulated state")
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil tracer trace = %q", b.String())
	}
}

func TestChromeTraceExport(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now)
	a := tr.Start("outer")
	clk.advance(0.001)
	bSpan := a.Child("inner")
	clk.advance(0.002)
	bSpan.End()
	a.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var events []map[string]any
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, out)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Sorted by start time: outer first.
	if events[0]["name"] != "outer" || events[0]["ph"] != "X" {
		t.Fatalf("event[0] = %v", events[0])
	}
	if dur := events[1]["dur"].(float64); dur != 2000 { // 2 ms in µs
		t.Fatalf("inner dur = %v µs, want 2000", dur)
	}
	// One event per line: line count = events + 2 brackets.
	if got := strings.Count(strings.TrimSpace(out), "\n"); got != 3 {
		t.Fatalf("trace not line-oriented (%d newlines):\n%s", got, out)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := tr.Start("work")
				s.Child("sub").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*200*2 {
		t.Fatalf("spans = %d, want %d", tr.Len(), 8*200*2)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	tr := NewTracer(nil)
	s := tr.Start("tick")
	if d := s.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
}
