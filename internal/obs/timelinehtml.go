package obs

// Self-contained HTML timeline report: one inline-SVG chart per series,
// no external scripts or styles, so the file can be archived next to a
// BENCH_*.json and opened years later. Counters plot as rates, gauges as
// levels, histograms as observation rates, quantile sketches as p50 and
// p99 curves.

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"
)

// htmlSeries is one chart: a named sequence of (t, v) plus an optional
// second curve (quantile p99 over p50).
type htmlSeries struct {
	title  string
	unit   string
	t      []float64
	v      []float64 // primary curve
	v2     []float64 // secondary curve (NaN where absent)
	legend [2]string
}

// WriteFramesHTML renders frames as a standalone HTML report.
func WriteFramesHTML(w io.Writer, title string, frames []Frame) error {
	series := buildHTMLSeries(frames)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body{font:13px/1.4 system-ui,sans-serif;margin:24px;background:#fafafa;color:#222}
h1{font-size:18px} .grid{display:flex;flex-wrap:wrap;gap:12px}
.card{background:#fff;border:1px solid #ddd;border-radius:6px;padding:8px 10px}
.card h2{font-size:12px;margin:0 0 4px;font-weight:600;word-break:break-all}
.meta{color:#777;font-size:11px}
svg{display:block} .l1{stroke:#2563eb} .l2{stroke:#dc2626}
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title))
	if len(frames) > 0 {
		fmt.Fprintf(bw, `<p class="meta">%d frames, t = %g s … %g s, %d series</p>`+"\n",
			len(frames), frames[0].TSec, frames[len(frames)-1].TSec, len(series))
	} else {
		fmt.Fprintln(bw, `<p class="meta">empty timeline</p>`)
	}
	fmt.Fprintln(bw, `<div class="grid">`)
	for _, s := range series {
		writeChart(bw, s)
	}
	fmt.Fprintln(bw, `</div></body></html>`)
	return bw.Flush()
}

func buildHTMLSeries(frames []Frame) []htmlSeries {
	type acc struct {
		s    htmlSeries
		seen int
	}
	byKey := map[string]*acc{}
	var order []string
	for _, fr := range frames {
		for _, p := range fr.Points {
			key := p.Name + "\xff" + labelKey(sortedLabelValues(p.Labels))
			a, ok := byKey[key]
			if !ok {
				title := p.Name
				if len(p.Labels) > 0 {
					title += "{" + csvLabels(p.Labels) + "}"
				}
				a = &acc{s: htmlSeries{title: title}}
				switch p.Kind {
				case KindGauge:
					a.s.unit, a.s.legend = "level", [2]string{"value", ""}
				case KindCounter:
					a.s.unit, a.s.legend = "per second", [2]string{"rate", ""}
				case KindHistogram:
					a.s.unit, a.s.legend = "obs per second", [2]string{"rate", ""}
				case KindQuantile:
					a.s.unit, a.s.legend = "value", [2]string{"p50", "p99"}
				}
				byKey[key] = a
				order = append(order, key)
			}
			v, v2 := math.NaN(), math.NaN()
			switch p.Kind {
			case KindGauge:
				v = p.Value
			case KindCounter, KindHistogram:
				v = p.Rate
			case KindQuantile:
				for _, qp := range p.Quantiles {
					if qp.P == 0.5 {
						v = qp.Value
					}
					if qp.P == 0.99 {
						v2 = qp.Value
					}
				}
			}
			a.s.t = append(a.s.t, fr.TSec)
			a.s.v = append(a.s.v, v)
			a.s.v2 = append(a.s.v2, v2)
		}
	}
	out := make([]htmlSeries, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k].s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].title < out[j].title })
	return out
}

const chartW, chartH, padX, padY = 300, 70, 4, 6

func writeChart(w io.Writer, s htmlSeries) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range s.v {
		for _, v := range []float64{s.v[i], s.v2[i]} {
			if !math.IsNaN(v) {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
	}
	if lo > hi { // no finite points at all
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	fmt.Fprintf(w, `<div class="card"><h2>%s</h2>`+"\n", html.EscapeString(s.title))
	fmt.Fprintf(w, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`, chartW, chartH, chartW, chartH)
	writePolyline(w, s, s.v, lo, hi, "l1")
	if s.legend[1] != "" {
		writePolyline(w, s, s.v2, lo, hi, "l2")
	}
	fmt.Fprint(w, `</svg>`)
	last := lastFinite(s.v)
	label := fmt.Sprintf("min %s · max %s · last %s %s", fmtShort(lo), fmtShort(hi), fmtShort(last), s.unit)
	if s.legend[1] != "" {
		label = fmt.Sprintf("p50 last %s · p99 last %s · max %s %s",
			fmtShort(last), fmtShort(lastFinite(s.v2)), fmtShort(hi), s.unit)
	}
	fmt.Fprintf(w, "\n<div class=\"meta\">%s</div></div>\n", html.EscapeString(label))
}

func writePolyline(w io.Writer, s htmlSeries, vs []float64, lo, hi float64, class string) {
	t0, t1 := s.t[0], s.t[len(s.t)-1]
	if t1 == t0 {
		t1 = t0 + 1
	}
	var b strings.Builder
	n := 0
	for i, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		x := padX + (s.t[i]-t0)/(t1-t0)*(chartW-2*padX)
		y := float64(chartH-padY) - (v-lo)/(hi-lo)*(chartH-2*padY)
		fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
		n++
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(w, `<polyline class="%s" fill="none" stroke-width="1.5" points="%s"/>`, class, strings.TrimSpace(b.String()))
}

func lastFinite(vs []float64) float64 {
	for i := len(vs) - 1; i >= 0; i-- {
		if !math.IsNaN(vs[i]) {
			return vs[i]
		}
	}
	return math.NaN()
}

// fmtShort renders a value compactly for chart captions.
func fmtShort(v float64) string {
	switch {
	case math.IsNaN(v):
		return "—"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
