package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// ServeHTTP exposes the registry at its mount point: Prometheus text by
// default, JSON with ?format=json.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// DebugMux builds the standard debug surface for a daemon:
//
//	/metrics        the registry (Prometheus text; ?format=json for JSON)
//	/healthz        liveness ("ok")
//	/debug/vars     expvar
//	/debug/pprof/*  net/http/pprof profiles
//
// Mount it on a loopback or otherwise access-controlled listener: pprof and
// expvar expose process internals.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RuntimeMetrics is a set of Go runtime gauges (goroutines, heap bytes, GC
// cycles). Call Collect from a scrape hook or periodically — the gauges are
// snapshots, not self-updating.
type RuntimeMetrics struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	totalAlloc *Gauge
	numGC      *Gauge
}

// RegisterRuntimeMetrics registers the go_* gauge families on reg.
func RegisterRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	return &RuntimeMetrics{
		goroutines: reg.Gauge("go_goroutines", "Number of live goroutines."),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		totalAlloc: reg.Gauge("go_total_alloc_bytes", "Cumulative bytes allocated on the heap."),
		numGC:      reg.Gauge("go_gc_cycles", "Completed GC cycles."),
	}
}

// Collect refreshes the runtime gauges from runtime.ReadMemStats.
func (m *RuntimeMetrics) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.Set(float64(runtime.NumGoroutine()))
	m.heapAlloc.Set(float64(ms.HeapAlloc))
	m.totalAlloc.Set(float64(ms.TotalAlloc))
	m.numGC.Set(float64(ms.NumGC))
}
