package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// ServeHTTP exposes the registry at its mount point: Prometheus text by
// default, JSON with ?format=json. Scrape hooks (OnScrape) run first, so
// pull-style collectors like RuntimeMetrics are fresh at scrape time.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.runScrapeHooks()
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// DebugOption extends DebugMux with optional surfaces.
type DebugOption func(*debugConf)

type debugConf struct {
	tl   *Timeline
	slos []SLO
}

// WithTimeline mounts the flight recorder at /timeline (JSONL by default;
// ?format=csv and ?format=html select the other exports).
func WithTimeline(tl *Timeline) DebugOption { return func(c *debugConf) { c.tl = tl } }

// WithSLOs mounts /slo, evaluating the objectives against the timeline
// configured via WithTimeline on every request (text; ?format=json).
func WithSLOs(slos ...SLO) DebugOption {
	return func(c *debugConf) { c.slos = append(c.slos, slos...) }
}

// DebugMux builds the standard debug surface for a daemon:
//
//	/metrics        the registry (Prometheus text; ?format=json for JSON)
//	/healthz        liveness ("ok")
//	/timeline       flight-recorder frames (with WithTimeline; ?format=csv|html)
//	/slo            SLO compliance report (with WithTimeline + WithSLOs; ?format=json)
//	/debug/vars     expvar
//	/debug/pprof/*  net/http/pprof profiles
//
// Mount it on a loopback or otherwise access-controlled listener: pprof and
// expvar expose process internals.
func DebugMux(reg *Registry, opts ...DebugOption) *http.ServeMux {
	var conf debugConf
	for _, o := range opts {
		o(&conf)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if conf.tl != nil {
		mux.HandleFunc("/timeline", func(w http.ResponseWriter, req *http.Request) {
			switch req.URL.Query().Get("format") {
			case "csv":
				w.Header().Set("Content-Type", "text/csv; charset=utf-8")
				_ = conf.tl.WriteCSV(w)
			case "html":
				w.Header().Set("Content-Type", "text/html; charset=utf-8")
				_ = conf.tl.WriteHTML(w, "timeline")
			default:
				w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
				_ = conf.tl.WriteJSONL(w)
			}
		})
		if len(conf.slos) > 0 {
			mux.HandleFunc("/slo", func(w http.ResponseWriter, req *http.Request) {
				results := EvalSLOs(conf.tl, conf.slos...)
				if req.URL.Query().Get("format") == "json" {
					w.Header().Set("Content-Type", "application/json; charset=utf-8")
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					_ = enc.Encode(results)
					return
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_ = WriteSLOTable(w, results)
			})
		}
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RuntimeMetrics is a set of Go runtime gauges (goroutines, heap bytes, GC
// cycles). RegisterRuntimeMetrics hooks Collect into the registry's scrape
// path, so /metrics always serves fresh values; call Collect directly only
// when reading the gauges without a scrape.
type RuntimeMetrics struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	totalAlloc *Gauge
	numGC      *Gauge
}

// RegisterRuntimeMetrics registers the go_* gauge families on reg and
// installs a pre-scrape hook that refreshes them (once per registry, no
// matter how often it is called).
func RegisterRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	m := &RuntimeMetrics{
		goroutines: reg.Gauge("go_goroutines", "Number of live goroutines."),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects."),
		totalAlloc: reg.Gauge("go_total_alloc_bytes", "Cumulative bytes allocated on the heap."),
		numGC:      reg.Gauge("go_gc_cycles", "Completed GC cycles."),
	}
	reg.hookMu.Lock()
	hooked := reg.runtimeHooked
	reg.runtimeHooked = true
	reg.hookMu.Unlock()
	if !hooked {
		reg.OnScrape(m.Collect)
	}
	return m
}

// Collect refreshes the runtime gauges from runtime.ReadMemStats.
func (m *RuntimeMetrics) Collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.Set(float64(runtime.NumGoroutine()))
	m.heapAlloc.Set(float64(ms.HeapAlloc))
	m.totalAlloc.Set(float64(ms.TotalAlloc))
	m.numGC.Set(float64(ms.NumGC))
}
