package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func timelineMux(t *testing.T) (*httptest.Server, *Timeline) {
	t.Helper()
	reg := NewRegistry()
	q := reg.Quantile("replan_ms", "replan latency")
	for i := 0; i < 10; i++ {
		q.Observe(5)
	}
	tl := NewTimeline(reg, TimelineConfig{CadenceSec: 60})
	tl.Record(60)
	tl.Record(120)
	slo := SLO{Name: "p99 replan <= 50ms", Kind: SLOLatency, Metric: "replan_ms", Objective: 50}
	srv := httptest.NewServer(DebugMux(reg, WithTimeline(tl), WithSLOs(slo)))
	t.Cleanup(srv.Close)
	return srv, tl
}

func TestTimelineEndpoint(t *testing.T) {
	srv, tl := timelineMux(t)

	code, body := get(t, srv, "/timeline")
	if code != 200 {
		t.Fatalf("/timeline = %d", code)
	}
	frames, err := ReadFramesJSONL(strings.NewReader(body))
	if err != nil || len(frames) != len(tl.Frames()) {
		t.Fatalf("served JSONL: %d frames, err %v", len(frames), err)
	}

	code, body = get(t, srv, "/timeline?format=csv")
	if code != 200 || !strings.HasPrefix(body, "t_sec,name,labels,field,value") {
		t.Errorf("/timeline?format=csv = %d, body %q…", code, body[:min(len(body), 40)])
	}

	code, body = get(t, srv, "/timeline?format=html")
	if code != 200 || !strings.Contains(body, "<svg") {
		t.Errorf("/timeline?format=html = %d, no chart", code)
	}
}

func TestSLOEndpoint(t *testing.T) {
	srv, _ := timelineMux(t)

	code, body := get(t, srv, "/slo")
	if code != 200 || !strings.Contains(body, "p99 replan <= 50ms") || !strings.Contains(body, "MET") {
		t.Errorf("/slo = %d, body:\n%s", code, body)
	}

	code, body = get(t, srv, "/slo?format=json")
	if code != 200 {
		t.Fatalf("/slo?format=json = %d", code)
	}
	var results []SLOResult
	if err := json.Unmarshal([]byte(body), &results); err != nil || len(results) != 1 {
		t.Fatalf("JSON results: %v (%d)", err, len(results))
	}
	if !results[0].Met || results[0].Frames != 2 {
		t.Errorf("result = %+v, want met over 2 frames", results[0])
	}
}

func TestEndpointsAbsentWithoutTimeline(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()
	if code, _ := get(t, srv, "/timeline"); code != 404 {
		t.Errorf("/timeline without recorder = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/slo"); code != 404 {
		t.Errorf("/slo without recorder = %d, want 404", code)
	}
}

// TestRuntimeMetricsFreshAtScrape locks in the pre-scrape hook: gauges must
// reflect allocation that happened after RegisterRuntimeMetrics, with no
// manual Collect call.
func TestRuntimeMetricsFreshAtScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	sink = make([]byte, 1<<20) // allocate after registration
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "go_heap_alloc_bytes ") {
			if strings.TrimPrefix(line, "go_heap_alloc_bytes ") == "0" {
				t.Error("heap gauge still zero at scrape: pre-scrape hook did not run")
			}
			return
		}
	}
	t.Error("go_heap_alloc_bytes missing from scrape")
}

// sink keeps the test allocation live so the collector can see it.
var sink []byte
