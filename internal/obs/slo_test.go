package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// latencyFrame builds one frame carrying a single quantile series whose p99
// estimate is p99ms.
func latencyFrame(t float64, name string, p99ms float64) Frame {
	return Frame{TSec: t, Points: []Point{{
		Name: name, Kind: KindQuantile, Value: 1,
		Quantiles: []QuantilePoint{{P: 0.5, Value: p99ms / 2}, {P: 0.99, Value: p99ms}},
	}}}
}

// ratioFrame builds one frame with numerator and denominator gauges.
func ratioFrame(t, num, den float64) Frame {
	return Frame{TSec: t, Points: []Point{
		{Name: "assigned", Kind: KindGauge, Value: num},
		{Name: "sessions", Kind: KindGauge, Value: den},
	}}
}

func TestSLOLatency(t *testing.T) {
	slo := SLO{Name: "p99 replan", Kind: SLOLatency, Metric: "replan_ms", Objective: 50, Target: 0.75}
	frames := []Frame{
		latencyFrame(60, "replan_ms", 10),
		latencyFrame(120, "replan_ms", 40),
		latencyFrame(180, "replan_ms", 90), // violation
		latencyFrame(240, "replan_ms", 20),
	}
	res := slo.Eval(frames)
	if res.Frames != 4 || res.Violations != 1 {
		t.Fatalf("frames/violations = %d/%d, want 4/1", res.Frames, res.Violations)
	}
	if res.Compliance != 0.75 || !res.Met {
		t.Errorf("compliance %g met=%v, want 0.75 met at target 0.75", res.Compliance, res.Met)
	}
	if res.BudgetBurn != 1 { // (1-0.75)/(1-0.75)
		t.Errorf("burn = %g, want exactly the full budget (1)", res.BudgetBurn)
	}
	if res.Worst != 90 {
		t.Errorf("worst = %g, want 90 (highest latency)", res.Worst)
	}
}

func TestSLORatio(t *testing.T) {
	slo := SLO{Name: "availability", Kind: SLORatio, Metric: "assigned",
		TotalMetric: "sessions", Objective: 0.999, Target: 0.5}
	frames := []Frame{
		ratioFrame(60, 1000, 1000),
		ratioFrame(120, 990, 1000), // violation: 0.99 < 0.999
		ratioFrame(180, 0, 0),      // zero denominator: skipped
	}
	res := slo.Eval(frames)
	if res.Frames != 2 || res.Violations != 1 {
		t.Fatalf("frames/violations = %d/%d, want 2/1 (zero-den frame skipped)", res.Frames, res.Violations)
	}
	if res.Worst != 0.99 {
		t.Errorf("worst = %g, want 0.99 (lowest ratio)", res.Worst)
	}
	if !res.Met {
		t.Error("0.5 compliance should meet a 0.5 target")
	}
}

func TestSLOWindow(t *testing.T) {
	slo := SLO{Kind: SLOLatency, Metric: "m", Objective: 50, Target: 0.99, WindowSec: 100}
	frames := []Frame{
		latencyFrame(0, "m", 999), // outside the trailing 100s window
		latencyFrame(150, "m", 10),
		latencyFrame(200, "m", 10),
	}
	res := slo.Eval(frames)
	if res.Frames != 2 || res.Violations != 0 {
		t.Errorf("windowed frames/violations = %d/%d, want 2/0", res.Frames, res.Violations)
	}
}

func TestSLOEmptyAndMissing(t *testing.T) {
	slo := SLO{Kind: SLOLatency, Metric: "absent_ms", Objective: 1}
	res := slo.Eval([]Frame{latencyFrame(60, "other_ms", 5)})
	if res.Frames != 0 || res.Compliance != 1 || !res.Met || res.BudgetBurn != 0 {
		t.Errorf("metric-less eval = %+v, want vacuous compliance", res)
	}
	if !math.IsNaN(res.Worst) {
		t.Errorf("worst = %g, want NaN with no frames", res.Worst)
	}
}

func TestSLOBurnInfiniteAtFullTarget(t *testing.T) {
	slo := SLO{Kind: SLOLatency, Metric: "m", Objective: 50, Target: 1}
	res := slo.Eval([]Frame{latencyFrame(60, "m", 100)})
	if !math.IsInf(res.BudgetBurn, 1) {
		t.Errorf("burn = %g, want +Inf (any violation with zero budget)", res.BudgetBurn)
	}
	if res.Met {
		t.Error("violated SLO at target 1 reported as met")
	}
}

func TestSLODefaultsAndLabels(t *testing.T) {
	// Q and Target default to 0.99; label selectors must match.
	fr := Frame{TSec: 60, Points: []Point{{
		Name: "query_ms", Kind: KindQuantile, Labels: map[string]string{"kind": "path"},
		Quantiles: []QuantilePoint{{P: 0.99, Value: 3}},
	}}}
	match := SLO{Kind: SLOLatency, Metric: "query_ms",
		Labels: map[string]string{"kind": "path"}, Objective: 5}
	if res := match.Eval([]Frame{fr}); res.Frames != 1 || res.Violations != 0 {
		t.Errorf("label-matched eval = %+v", res)
	}
	miss := SLO{Kind: SLOLatency, Metric: "query_ms",
		Labels: map[string]string{"kind": "sssp"}, Objective: 5}
	if res := miss.Eval([]Frame{fr}); res.Frames != 0 {
		t.Errorf("label-mismatched eval saw %d frames, want 0", res.Frames)
	}
}

func TestEvalSLOsAndTable(t *testing.T) {
	reg := NewRegistry()
	q := reg.Quantile("replan_ms", "replan latency")
	for i := 0; i < 100; i++ {
		q.Observe(5)
	}
	tl := NewTimeline(reg, TimelineConfig{})
	tl.Record(60)
	tl.Record(120)

	results := EvalSLOs(tl,
		SLO{Name: "p99 replan <= 50ms", Kind: SLOLatency, Metric: "replan_ms", Objective: 50},
		SLO{Name: "p99 replan <= 1ms", Kind: SLOLatency, Metric: "replan_ms", Objective: 1},
	)
	if len(results) != 2 || !results[0].Met || results[1].Met {
		t.Fatalf("results = %+v, want first met and second missed", results)
	}

	var buf bytes.Buffer
	if err := WriteSLOTable(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"objective", "MET", "MISSED", "100.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q in:\n%s", want, out)
		}
	}
}
