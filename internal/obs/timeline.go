package obs

// The flight recorder. A Timeline samples every family of a Registry at a
// fixed simulated-time cadence into a bounded in-memory ring: counters are
// stored as per-interval deltas (and rates), gauges as levels, histograms
// as bucket deltas, quantile sketches as their current p50..p99 estimates.
// The result is a time-resolved record of a multi-hour run — when hand-off
// latency spiked, whether p99 stayed inside budget during a chaos window —
// exportable as JSONL, CSV, and a self-contained HTML report, and servable
// live from the /timeline debug endpoint.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// TimelineConfig tunes the recorder. The zero value picks the defaults
// noted on each field.
type TimelineConfig struct {
	// CadenceSec is the minimum simulated-time spacing MaybeRecord enforces
	// between frames (default 60). Record ignores it.
	CadenceSec float64
	// Capacity bounds the ring in frames (default 4096). Once full, each
	// new frame evicts the oldest and Dropped grows.
	Capacity int
}

// DefaultTimelineCapacity bounds the frame ring unless overridden.
const DefaultTimelineCapacity = 4096

// Timeline records registry snapshots over (simulated) time. Safe for
// concurrent use: a run loop can Record while an HTTP handler exports.
type Timeline struct {
	reg *Registry
	cfg TimelineConfig

	mu      sync.Mutex
	ring    []Frame // circular; oldest at head once len == Capacity
	head    int
	dropped uint64
	lastT   float64
	started bool
	// prev holds the last cumulative value per series+field so counters,
	// histogram counts/sums, and bucket counts can be emitted as deltas.
	prevScalar map[string]float64
	prevCount  map[string]uint64
	prevBucket map[string][]uint64
}

// Frame is one timeline sample: every series of the registry at one
// instant, monotonic families already converted to per-interval deltas.
type Frame struct {
	// TSec is the (simulated) timestamp of the frame; DtSec the spacing to
	// the previous frame (0 on the first, where all deltas are cumulative
	// since process start).
	TSec   float64 `json:"t_sec"`
	DtSec  float64 `json:"dt_sec"`
	Points []Point `json:"points"`
}

// Point is one series inside a Frame.
type Point struct {
	Name   string            `json:"name"`
	Kind   Kind              `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the gauge level, the counter increment over the interval,
	// or the histogram/quantile observation-count increment.
	Value float64 `json:"value"`
	// Rate is Value per simulated second (0 on the first frame).
	Rate float64 `json:"rate,omitempty"`
	// Sum is the histogram/quantile sum increment over the interval.
	Sum float64 `json:"sum,omitempty"`
	// Buckets are per-interval (non-cumulative) histogram bucket counts.
	Buckets []Bucket `json:"buckets,omitempty"`
	// Quantiles are the sketch's current estimates (not deltas: a
	// streaming quantile summarises everything observed so far).
	Quantiles []QuantilePoint `json:"quantiles,omitempty"`
}

// NewTimeline builds a recorder over reg.
func NewTimeline(reg *Registry, cfg TimelineConfig) *Timeline {
	if cfg.CadenceSec <= 0 {
		cfg.CadenceSec = 60
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultTimelineCapacity
	}
	return &Timeline{
		reg:        reg,
		cfg:        cfg,
		prevScalar: map[string]float64{},
		prevCount:  map[string]uint64{},
		prevBucket: map[string][]uint64{},
	}
}

// Cadence returns the configured sampling cadence in simulated seconds.
func (tl *Timeline) Cadence() float64 { return tl.cfg.CadenceSec }

// MaybeRecord samples the registry iff at least one cadence interval has
// passed since the last frame (or none exists yet). Returns whether a
// frame was recorded. Call it every epoch; it self-paces.
func (tl *Timeline) MaybeRecord(tSec float64) bool {
	tl.mu.Lock()
	due := !tl.started || tSec-tl.lastT >= tl.cfg.CadenceSec
	tl.mu.Unlock()
	if !due {
		return false
	}
	tl.Record(tSec)
	return true
}

// Record unconditionally samples the registry into a new frame at tSec.
func (tl *Timeline) Record(tSec float64) {
	snap := tl.reg.Snapshot() // outside the lock: Snapshot takes registry locks
	tl.mu.Lock()
	defer tl.mu.Unlock()

	dt := 0.0
	if tl.started {
		dt = tSec - tl.lastT
	}
	fr := Frame{TSec: tSec, DtSec: dt}
	for _, fam := range snap {
		for _, s := range fam.Samples {
			key := fam.Name + "\xff" + labelKey(sortedLabelValues(s.Labels))
			p := Point{Name: fam.Name, Kind: fam.Kind, Labels: s.Labels}
			switch fam.Kind {
			case KindGauge:
				p.Value = s.Value
			case KindCounter:
				p.Value = s.Value - tl.prevScalar[key]
				tl.prevScalar[key] = s.Value
			case KindHistogram, KindQuantile:
				p.Value = float64(s.Count - tl.prevCount[key])
				tl.prevCount[key] = s.Count
				p.Sum = s.Value - tl.prevScalar[key]
				tl.prevScalar[key] = s.Value
				if fam.Kind == KindHistogram {
					prev := tl.prevBucket[key]
					cur := make([]uint64, len(s.Buckets))
					for i, b := range s.Buckets {
						cur[i] = b.Count
						// De-cumulate across bounds, then diff against the
						// previous frame's de-cumulated counts.
						n := b.Count
						if i > 0 {
							n -= s.Buckets[i-1].Count
						}
						pn := uint64(0)
						if i < len(prev) {
							pn = prev[i]
							if i > 0 {
								pn -= prev[i-1]
							}
						}
						if n > pn {
							p.Buckets = append(p.Buckets, Bucket{UpperBound: b.UpperBound, Count: n - pn})
						}
					}
					tl.prevBucket[key] = cur
				} else {
					p.Quantiles = s.Quantiles
				}
			}
			if dt > 0 && fam.Kind != KindGauge {
				p.Rate = p.Value / dt
			}
			fr.Points = append(fr.Points, p)
		}
	}

	if len(tl.ring) < tl.cfg.Capacity {
		tl.ring = append(tl.ring, fr)
	} else {
		tl.ring[tl.head] = fr
		tl.head = (tl.head + 1) % len(tl.ring)
		tl.dropped++
	}
	tl.lastT = tSec
	tl.started = true
}

func sortedLabelValues(labels map[string]string) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		out = append(out, k, labels[k])
	}
	return out
}

// Frames returns a copy of the recorded frames, oldest first.
func (tl *Timeline) Frames() []Frame {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]Frame, 0, len(tl.ring))
	out = append(out, tl.ring[tl.head:]...)
	out = append(out, tl.ring[:tl.head]...)
	return out
}

// TimelineStats summarises ring occupancy — the bounded-memory story a
// long-run report should print.
type TimelineStats struct {
	Frames   int     `json:"frames"`
	Capacity int     `json:"capacity"`
	Dropped  uint64  `json:"dropped"`
	OldestT  float64 `json:"oldest_t_sec"`
	NewestT  float64 `json:"newest_t_sec"`
}

// Stats returns the recorder's ring occupancy.
func (tl *Timeline) Stats() TimelineStats {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	st := TimelineStats{Frames: len(tl.ring), Capacity: tl.cfg.Capacity, Dropped: tl.dropped}
	if len(tl.ring) > 0 {
		st.OldestT = tl.ring[tl.head].TSec
		st.NewestT = tl.ring[(tl.head+len(tl.ring)-1)%len(tl.ring)].TSec
	}
	return st
}

// WriteJSONL writes the frames one JSON document per line — the canonical
// export cmd/obsreport reads back.
func (tl *Timeline) WriteJSONL(w io.Writer) error { return WriteFramesJSONL(w, tl.Frames()) }

// WriteCSV writes the frames in long form (t_sec,name,labels,field,value).
func (tl *Timeline) WriteCSV(w io.Writer) error { return WriteFramesCSV(w, tl.Frames()) }

// WriteHTML renders the self-contained HTML timeline report.
func (tl *Timeline) WriteHTML(w io.Writer, title string) error {
	return WriteFramesHTML(w, title, tl.Frames())
}

// WriteFramesJSONL writes frames one JSON document per line.
func WriteFramesJSONL(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, fr := range frames {
		if err := enc.Encode(fr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFramesJSONL parses a JSONL timeline export, tolerating blank lines.
func ReadFramesJSONL(r io.Reader) ([]Frame, error) {
	var out []Frame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var fr Frame
		if err := json.Unmarshal([]byte(line), &fr); err != nil {
			return nil, fmt.Errorf("obs: bad timeline line %q: %w", truncate(line, 80), err)
		}
		out = append(out, fr)
	}
	return out, sc.Err()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// WriteFramesCSV writes frames in long form: one row per series field per
// frame, so any spreadsheet or pandas one-liner can pivot it.
func WriteFramesCSV(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t_sec,name,labels,field,value"); err != nil {
		return err
	}
	for _, fr := range frames {
		for _, p := range fr.Points {
			ls := csvLabels(p.Labels)
			row := func(field string, v float64) {
				fmt.Fprintf(bw, "%g,%s,%s,%s,%g\n", fr.TSec, p.Name, ls, field, v)
			}
			switch p.Kind {
			case KindGauge:
				row("value", p.Value)
			case KindCounter:
				row("delta", p.Value)
				row("rate", p.Rate)
			case KindHistogram:
				row("count_delta", p.Value)
				row("sum_delta", p.Sum)
			case KindQuantile:
				row("count_delta", p.Value)
				for _, qp := range p.Quantiles {
					row(fmt.Sprintf("p%g", qp.P*100), qp.Value)
				}
			}
		}
	}
	return bw.Flush()
}

// csvLabels renders labels as k=v pairs joined by ';' (comma-free so the
// long-form CSV stays trivially parseable).
func csvLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strings.NewReplacer(",", "_", ";", "_", "\n", "_").Replace(labels[k])
	}
	return strings.Join(parts, ";")
}
